// Command l25gc runs a complete 5GC unit — L²5GC, the free5GC baseline, or
// the ONVM-UPF hybrid — together with the built-in UE/RAN simulator, then
// drives the paper's four UE events and prints an annotated trace with
// event completion times.
//
// Usage:
//
//	l25gc -mode l25gc -ues 2
//	l25gc -mode free5gc
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/metrics"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/telemetry"
	"l25gc/internal/trace"
)

func main() {
	mode := flag.String("mode", "l25gc", "deployment mode: l25gc | free5gc | onvm-upf")
	ues := flag.Int("ues", 1, "number of UEs to run through the event sequence")
	cls := flag.String("classifier", "", "PDR classifier: ll | tss | ps (default per mode)")
	doTrace := flag.Bool("trace", false, "record spans and print a stage breakdown + metrics snapshot")
	traceOut := flag.String("trace-out", "", "write the Chrome trace JSON here (implies -trace)")
	resilience := flag.Bool("resilience", false, "arm the §3.5 supervisor over the AMF and SMF (checkpointed units with frozen standbys)")
	overloadCtl := flag.Bool("overload", false, "arm per-NF admission control (priority-classed shedding with NAS/SBI/PFCP pushback)")
	switchWorkers := flag.Int("switch-workers", 0, "descriptor-switch workers in the NF manager (0 = min(GOMAXPROCS, 4))")
	flightDump := flag.String("flight-dump", "", "arm the telemetry pipeline and write an on-demand flight-recorder dump (JSON) here at the end of the run (implies -trace)")
	n4assoc := flag.Bool("n4assoc", false, "arm the PFCP association lifecycle on N4 (SMF heartbeats, path-down detection, degraded mode, post-heal reconciliation)")
	nfShards := flag.Int("nf-shards", runtime.GOMAXPROCS(0), "AMF/SMF UE-state shards (per-shard maps, locks and ID allocators; 1 = legacy single-lock layout)")
	flag.Parse()
	if *traceOut != "" || *flightDump != "" {
		*doTrace = true
	}

	var m core.Mode
	switch *mode {
	case "l25gc":
		m = core.ModeL25GC
	case "free5gc":
		m = core.ModeFree5GC
	case "onvm-upf":
		m = core.ModeONVMUPF
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}

	subs := make([]udr.Subscriber, *ues)
	for i := range subs {
		subs[i] = udr.Subscriber{
			Supi: fmt.Sprintf("imsi-20893000000000%d", i+1),
			K:    []byte("0123456789abcdef"),
			Opc:  []byte("fedcba9876543210"),
			Dnn:  "internet", Sst: 1,
		}
	}
	var tr *trace.Tracer
	var reg *metrics.Registry
	if *doTrace {
		tr = trace.New()
		reg = metrics.NewRegistry()
	}
	var tel *telemetry.Pipeline
	if *flightDump != "" {
		tel = telemetry.New(telemetry.Config{SampleInterval: 100 * time.Millisecond})
	}
	c, err := core.New(core.Config{
		Mode: m, ClsAlgo: *cls, Subscribers: subs, Tracer: tr, Metrics: reg,
		Resilience: *resilience, SwitchWorkers: *switchWorkers,
		Overload: *overloadCtl, Telemetry: tel, NFShards: *nfShards,
		N4Assoc: *n4assoc, N4HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "core start: %v\n", err)
		os.Exit(1)
	}
	defer c.Stop()
	if *resilience {
		fmt.Println("resiliency armed: AMF and SMF run as supervised units (active + frozen standby)")
	}
	if *overloadCtl {
		fmt.Println("overload control armed: per-NF admission with priority shedding and backoff pushback")
	}
	if *n4assoc {
		fmt.Printf("N4 association armed: state %s toward %s (50ms heartbeats)\n",
			c.N4Association().State(), c.N4Association().PeerNodeID())
	}
	c.AMF.Logf = func(format string, args ...any) {
		fmt.Printf("  | "+format+"\n", args...)
	}
	fmt.Printf("5GC unit up (mode %s), AMF N2 at %s\n", m, c.N2Addr())

	g1, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer g1.Close()
	g2, err := ranue.NewGNB(2, pkt.AddrFrom(10, 100, 0, 11), c.N2Addr(), c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer g2.Close()
	fmt.Println("gNB 1 and gNB 2 attached")

	dn := pkt.AddrFrom(1, 1, 1, 1)
	c.SetN6Sink(func(ipPkt []byte) {
		var p pkt.Parsed
		if p.ParseIPv4(ipPkt) == nil {
			fmt.Printf("  | DN received uplink %s -> %s (%d bytes)\n", p.IP.Src, p.IP.Dst, len(ipPkt))
		}
	})

	for i := 0; i < *ues; i++ {
		supi := subs[i].Supi
		fmt.Printf("\n=== UE %s ===\n", supi)
		ue := ranue.NewUE(supi, subs[i].K, subs[i].Opc)
		d, err := ue.Register(g1)
		exitOn(err)
		fmt.Printf("registration complete in %v\n", d)
		d, err = ue.EstablishSession(5, "internet")
		exitOn(err)
		fmt.Printf("PDU session established in %v (UE IP %s)\n", d, ue.IP())
		time.Sleep(30 * time.Millisecond)

		exitOn(ue.SendUplink(dn, 40000, 9000, []byte("hello-from-"+supi)))
		time.Sleep(20 * time.Millisecond)

		d, err = ue.Handover(g2)
		exitOn(err)
		fmt.Printf("N2 handover to gNB 2 in %v\n", d)

		exitOn(ue.GoIdle())
		fmt.Println("UE idle (UPF buffering armed)")
		dl := make([]byte, 96)
		n, _ := pkt.BuildUDPv4(dl, dn, ue.IP(), 9000, 40000, 0, []byte("wake"))
		exitOn(c.InjectDL(dl[:n]))
		d, err = ue.AwaitPagingAndReconnect(3 * time.Second)
		exitOn(err)
		fmt.Printf("paged and reconnected in %v\n", d)
	}
	fmt.Println("\nall UE events completed")

	if *doTrace {
		if bd := tr.Breakdown("pfcp.request.session_establishment"); bd != nil {
			fmt.Println("\nPFCP session establishment stage breakdown:")
			bd.Table().Write(os.Stdout)
		}
		fmt.Println("\nmetrics snapshot:")
		reg.Snapshot().Table().Write(os.Stdout)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		exitOn(err)
		exitOn(tr.WriteChrome(f))
		exitOn(f.Close())
		fmt.Printf("\nChrome trace written to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
	if *flightDump != "" {
		d := tel.DumpNow("cli.flight-dump")
		f, err := os.Create(*flightDump)
		exitOn(err)
		exitOn(d.WriteJSON(f))
		exitOn(f.Close())
		fmt.Printf("flight-recorder dump (%d events, %d samples) written to %s\n",
			len(d.Events), len(d.Samples), *flightDump)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
