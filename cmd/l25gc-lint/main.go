// Command l25gc-lint runs the repo's invariant analyzers (DESIGN §13)
// over the module:
//
//	determinism  — no ambient time/randomness/map-order leaks in
//	               replay-path packages
//	replaysafe   — nothing reachable from //l25gc:replay roots does I/O
//	               or reads wall clocks
//	nomutexhold  — no blocking operations inside mutex critical sections
//	metricnames  — metric/trace name literals must match the LintNames
//	               tables
//
// Usage:
//
//	l25gc-lint [-json] [packages]
//
// With no package patterns, ./... is linted. Diagnostics print as
// file:line:col: message (rule), one per line, and the exit status is 1
// when any diagnostic (including a malformed or unused //l25gc:allow)
// survives directive filtering. -json emits a machine-readable array
// instead, for CI annotation tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"os"
	"sort"

	"l25gc/internal/lint/analysis"
	"l25gc/internal/lint/determinism"
	"l25gc/internal/lint/directive"
	"l25gc/internal/lint/load"
	"l25gc/internal/lint/metricnames"
	"l25gc/internal/lint/nomutexhold"
	"l25gc/internal/lint/replaysafe"
)

// analyzers is the fixed suite; order only affects tie-breaking of
// diagnostics at identical positions.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	replaysafe.Analyzer,
	nomutexhold.Analyzer,
	metricnames.Analyzer,
}

// jsonDiagnostic is the -json output shape, one element per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: l25gc-lint [-json] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	prog, err := load.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "l25gc-lint:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ProgramLevel {
			pass := &analysis.Pass{Analyzer: a, Fset: prog.Fset, Program: prog, Report: report}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "l25gc-lint: %s: %v\n", a.Name, err)
				os.Exit(2)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			if !pkg.Requested {
				continue
			}
			pass := &analysis.Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Program: prog, Report: report}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "l25gc-lint: %s: %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}

	// Directive filtering sees every loaded file: program-level walks may
	// report into dependency packages, and an allow lives next to the
	// code it excuses, wherever that is.
	set := directive.Scan(prog.Fset, allFiles(prog))
	diags = directive.Filter(prog.Fset, set, diags)

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			p := prog.Fset.Position(d.Pos)
			out = append(out, jsonDiagnostic{
				File: p.Filename, Line: p.Line, Column: p.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "l25gc-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", prog.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func allFiles(prog *analysis.Program) []*ast.File {
	var files []*ast.File
	for _, pkg := range prog.Packages {
		if pkg.Requested {
			files = append(files, pkg.Files...)
		}
	}
	return files
}
