package main

import (
	"testing"

	"l25gc/internal/lint/analysis"
	"l25gc/internal/lint/directive"
	"l25gc/internal/lint/load"
)

// TestTreeIsLintClean runs the full analyzer suite over the real module
// and requires zero surviving diagnostics — the ISSUE-level invariant
// that `make lint` enforces in CI, duplicated here so plain
// `go test ./...` catches a regression (a reverted clock fix, a stray
// time.Now on a replayed path, an unregistered metric name) even when
// the lint target is skipped.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ProgramLevel {
			pass := &analysis.Pass{Analyzer: a, Fset: prog.Fset, Program: prog, Report: report}
			if _, err := a.Run(pass); err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			if !pkg.Requested {
				continue
			}
			pass := &analysis.Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Program: prog, Report: report}
			if _, err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	set := directive.Scan(prog.Fset, allFiles(prog))
	for _, d := range directive.Filter(prog.Fset, set, diags) {
		t.Errorf("%s: %s (%s)", prog.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
