// Command bench5gc regenerates the paper's evaluation: every table and
// figure of §5 (and Appendix C) has an experiment that reproduces its
// workload on this repository's implementations and prints the same rows
// the paper reports.
//
// Usage:
//
//	bench5gc -exp fig6          # one experiment
//	bench5gc -exp all           # the whole evaluation
//	bench5gc -list              # catalogue
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"l25gc/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment ID (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	traceOut := flag.String("trace-out", "", "Chrome trace JSON path prefix for the 'trace' experiment")
	flag.Parse()
	bench.TraceOut = *traceOut

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}
	var toRun []bench.Experiment
	if *exp == "all" {
		toRun = bench.Experiments()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		toRun = []bench.Experiment{e}
	}
	for _, e := range toRun {
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
