// Command bench5gc regenerates the paper's evaluation: every table and
// figure of §5 (and Appendix C) has an experiment that reproduces its
// workload on this repository's implementations and prints the same rows
// the paper reports.
//
// Usage:
//
//	bench5gc -exp fig6          # one experiment
//	bench5gc -exp all           # the whole evaluation
//	bench5gc -list              # catalogue
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"l25gc/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment ID (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	traceOut := flag.String("trace-out", "", "Chrome trace JSON path prefix for the 'trace' experiment")
	benchOut := flag.String("bench-out", "", "write machine-readable results (BENCH_<n>.json) to this path")
	flag.Parse()
	bench.TraceOut = *traceOut

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}
	var toRun []bench.Experiment
	if *exp == "all" {
		toRun = bench.Experiments()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		toRun = []bench.Experiment{e}
	}
	summary := map[string]any{}
	for _, e := range toRun {
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if res.JSON != nil {
			summary[e.ID] = res.JSON
		}
	}
	if *benchOut != "" {
		doc := map[string]any{
			// schemaVersion makes checked-in BENCH_<n>.json files
			// comparable across PRs: bump it when the envelope (not an
			// experiment's payload) changes shape.
			"schemaVersion": bench.SchemaVersion,
			"goVersion":     runtime.Version(),
			"goMaxProcs":    runtime.GOMAXPROCS(0),
			"generatedAt":   time.Now().UTC().Format(time.RFC3339),
			"experiments":   summary,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*benchOut, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
}
