// Command classgen generates synthetic PDR rule sets (the ClassBench
// substitute of §5.3) and prints them as flow descriptions, or reports the
// tuple-space structure a set induces.
//
// Usage:
//
//	classgen -n 100 -mode realistic
//	classgen -n 1000 -mode tss-worst -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"l25gc/internal/classifier"
)

func main() {
	n := flag.Int("n", 100, "number of PDRs")
	mode := flag.String("mode", "realistic", "realistic | tss-best | tss-worst")
	seed := flag.Int64("seed", 1, "generator seed")
	stats := flag.Bool("stats", false, "print classifier structure statistics instead of rules")
	flag.Parse()

	var gm classifier.GenMode
	switch *mode {
	case "realistic":
		gm = classifier.GenRealistic
	case "tss-best":
		gm = classifier.GenTSSBest
	case "tss-worst":
		gm = classifier.GenTSSWorst
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	ruleSet := classifier.NewGenerator(gm, *seed).Generate(*n)
	if *stats {
		tss := classifier.NewTSS()
		ps := classifier.NewPartitionSort()
		for _, p := range ruleSet {
			tss.Insert(p)
			ps.Insert(p)
		}
		fmt.Printf("rules:            %d\n", len(ruleSet))
		fmt.Printf("TSS sub-tables:   %d\n", tss.NumTables())
		fmt.Printf("PS partitions:    %d\n", ps.NumPartitions())
		return
	}
	for _, p := range ruleSet {
		f := p.PDI.SDF
		fmt.Printf("pdr id=%d prec=%d qfi=%d app=%s sdf=%q src=%s dst=%s sport=%d-%d dport=%d-%d proto=%d\n",
			p.ID, p.Precedence, p.PDI.QFI, p.PDI.ApplicationID, f.FlowDesc,
			f.Src, f.Dst, f.SrcPorts.Lo, f.SrcPorts.Hi, f.DstPorts.Lo, f.DstPorts.Hi, f.Protocol)
	}
}
