// Package l25gc_test holds the repository-level benchmark suite: one
// testing.B benchmark (or family) per table and figure of the paper's
// evaluation, driving the same code paths as cmd/bench5gc. Run with
//
//	go test -bench=. -benchmem
//
// Fig. 6  -> BenchmarkFig06_*   (serialization cost per codec)
// Fig. 7  -> BenchmarkFig07_*   (single PFCP message, UDP vs shm)
// Fig. 8  -> BenchmarkFig08_*   (UE event completion per mode)
// Fig. 9  -> BenchmarkFig09_*   (SBI invoke, HTTP vs shm)
// Fig. 10 -> BenchmarkFig10_*   (data plane one-way delivery per mode)
// Fig. 11 -> BenchmarkFig11_*   (PDR lookup per classifier)
// §5.3    -> BenchmarkPDRUpdate_* (rule update per classifier)
// Fig. 12 -> BenchmarkFig12_*   (page load under handovers, simulated)
// Tbl 1/2 -> covered by Fig08 paging/handover events (live) and cmd/bench5gc
// Fig. 15 -> BenchmarkFig15_*   (failover vs reattach, live)
// Fig. 16/17 -> BenchmarkFig16_PageStream / BenchmarkFig17_TenFlows
package l25gc_test

import (
	"testing"
	"time"

	"l25gc/internal/bench"
	"l25gc/internal/classifier"
	"l25gc/internal/codec"
	"l25gc/internal/core"
	"l25gc/internal/netsim"
	"l25gc/internal/pfcp"
	"l25gc/internal/sbi"
)

// --- Fig. 6: serialization ---

func fig6Msg() *sbi.SmContextCreateRequest {
	return &sbi.SmContextCreateRequest{
		Supi: "imsi-208930000000001", PduSessionID: 5, Dnn: "internet",
		Sst: 1, Guami: "5G:mnc093.mcc208", RequestType: "INITIAL_REQUEST",
		N1SmMsg: make([]byte, 96), AnType: "3GPP_ACCESS", RatType: "NR",
	}
}

func benchCodec(b *testing.B, c codec.Codec) {
	msg := fig6Msg()
	wire, err := c.Marshal(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Marshal(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deserialize", func(b *testing.B) {
		out := &sbi.SmContextCreateRequest{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Unmarshal(wire, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig06_JSON(b *testing.B)  { benchCodec(b, codec.JSON{}) }
func BenchmarkFig06_Flat(b *testing.B)  { benchCodec(b, codec.Flat{}) }
func BenchmarkFig06_Proto(b *testing.B) { benchCodec(b, codec.Proto{}) }

func BenchmarkFig06_ShmPass(b *testing.B) {
	conn, srv := sbi.NewShmPair(256, func(op sbi.OpID, req codec.Message) (codec.Message, error) {
		return req, nil
	})
	defer srv.Close()
	defer conn.Close()
	msg := fig6Msg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Invoke(sbi.OpPostSmContexts, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7: single PFCP message ---

func benchPFCP(b *testing.B, smf, upf pfcp.Endpoint) {
	upf.SetHandler(func(seid uint64, req pfcp.Message) (pfcp.Message, error) {
		return &pfcp.HeartbeatResponse{}, nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smf.Request(0, false, &pfcp.HeartbeatRequest{RecoveryTimestamp: uint32(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07_PFCP_KernelUDP(b *testing.B) {
	upf, err := pfcp.NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer upf.Close()
	smf, err := pfcp.NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer smf.Close()
	if err := smf.Connect(upf.Addr()); err != nil {
		b.Fatal(err)
	}
	benchPFCP(b, smf, upf)
}

func BenchmarkFig07_PFCP_SharedMemory(b *testing.B) {
	smf, upf := pfcp.NewMemPair(256)
	defer smf.Close()
	defer upf.Close()
	benchPFCP(b, smf, upf)
}

// --- Fig. 8: UE event completion (one full event set per iteration) ---

func benchEvents(b *testing.B, mode core.Mode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunEventTimes(mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08_Events_Free5GC(b *testing.B) { benchEvents(b, core.ModeFree5GC) }
func BenchmarkFig08_Events_ONVMUPF(b *testing.B) { benchEvents(b, core.ModeONVMUPF) }
func BenchmarkFig08_Events_L25GC(b *testing.B)   { benchEvents(b, core.ModeL25GC) }

// --- Fig. 9: SBI invoke ---

func sbiEcho(op sbi.OpID, req codec.Message) (codec.Message, error) {
	return op.NewResponse(), nil
}

func BenchmarkFig09_SBI_HTTPJSON(b *testing.B) {
	srv, err := sbi.NewHTTPServer("127.0.0.1:0", codec.JSON{}, sbiEcho)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn := sbi.NewHTTPConn(srv.Addr(), codec.JSON{})
	defer conn.Close()
	msg := fig6Msg()
	if _, err := conn.Invoke(sbi.OpPostSmContexts, msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Invoke(sbi.OpPostSmContexts, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09_SBI_SharedMemory(b *testing.B) {
	conn, srv := sbi.NewShmPair(256, sbiEcho)
	defer srv.Close()
	defer conn.Close()
	msg := fig6Msg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Invoke(sbi.OpPostSmContexts, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 10: data plane one-way delivery ---

func benchDataPlane(b *testing.B, mode core.Mode, payload int) {
	h, cleanup, err := bench.NewDataPlaneHarness(mode)
	if err != nil {
		b.Fatal(err)
	}
	defer cleanup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.OneWayDL(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_DL64B_Free5GC(b *testing.B)   { benchDataPlane(b, core.ModeFree5GC, 64) }
func BenchmarkFig10_DL64B_L25GC(b *testing.B)     { benchDataPlane(b, core.ModeL25GC, 64) }
func BenchmarkFig10_DL1400B_Free5GC(b *testing.B) { benchDataPlane(b, core.ModeFree5GC, 1400) }
func BenchmarkFig10_DL1400B_L25GC(b *testing.B)   { benchDataPlane(b, core.ModeL25GC, 1400) }

// --- Fig. 11 and §5.3 are benchmarked in internal/classifier; aliases
// here drive the identical code path at the 1000-rule point. ---

func benchLookup(b *testing.B, algo string, mode classifier.GenMode) {
	c := classifier.New(algo)
	ruleSet := classifier.NewGenerator(mode, 1).Generate(1000)
	for _, p := range ruleSet {
		c.Insert(p)
	}
	key := classifier.KeyFor(ruleSet[750])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(&key)
	}
}

func BenchmarkFig11_LookupLL(b *testing.B)      { benchLookup(b, "ll", classifier.GenRealistic) }
func BenchmarkFig11_LookupTSSBest(b *testing.B) { benchLookup(b, "tss", classifier.GenTSSBest) }
func BenchmarkFig11_LookupTSSWorst(b *testing.B) {
	benchLookup(b, "tss", classifier.GenTSSWorst)
}
func BenchmarkFig11_LookupPS(b *testing.B) { benchLookup(b, "ps", classifier.GenRealistic) }

func benchUpdate(b *testing.B, algo string) {
	c := classifier.New(algo)
	for _, p := range classifier.NewGenerator(classifier.GenRealistic, 1).Generate(1000) {
		c.Insert(p)
	}
	extra := classifier.NewGenerator(classifier.GenRealistic, 2).Generate(1)[0]
	extra.ID = 1 << 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(extra)
		c.Remove(extra.ID)
	}
}

func BenchmarkPDRUpdate_LL(b *testing.B)  { benchUpdate(b, "ll") }
func BenchmarkPDRUpdate_TSS(b *testing.B) { benchUpdate(b, "tss") }
func BenchmarkPDRUpdate_PS(b *testing.B)  { benchUpdate(b, "ps") }

// --- Fig. 12 / 17: simulated application impact ---

func benchPageLoad(b *testing.B, hoDur time.Duration) {
	cfg := netsim.PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
	page := []int64{4 << 20, 4 << 20, 2 << 20, 1 << 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plt, _ := netsim.PageLoad(cfg, page, []time.Duration{time.Second}, hoDur)
		if plt <= 0 {
			b.Fatal("bad PLT")
		}
	}
}

func BenchmarkFig12_PageLoad_FastHO(b *testing.B) { benchPageLoad(b, 96*time.Millisecond) }
func BenchmarkFig12_PageLoad_SlowHO(b *testing.B) { benchPageLoad(b, 463*time.Millisecond) }

// --- Fig. 15 / 16: failover ---

func BenchmarkFig15_FailoverRestoreReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := bench.RunFailoverScenario(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_ReattachBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunReattach(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16_FailureDuringHandover(b *testing.B) {
	cfg := netsim.PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := netsim.NewSim()
		p := netsim.NewTCPPath(s, 0, cfg, 0)
		p.HandoverAt(time.Second, 65*time.Millisecond)
		p.BlackoutAt(time.Second+65*time.Millisecond, 401*time.Millisecond)
		p.Sender.Start()
		s.Run(3 * time.Second)
	}
}

func BenchmarkFig17_TenFlowsRepeatedHO(b *testing.B) {
	cfg := netsim.PathConfig{BottleneckBps: 100e6, RTT: 50 * time.Millisecond, QueueCap: 400, CoreBufCap: 8000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := netsim.NewSim()
		for f := 0; f < 10; f++ {
			p := netsim.NewTCPPath(s, f, cfg, 0)
			p.HandoverAt(time.Second, 328*time.Millisecond)
			p.Sender.Start()
		}
		s.Run(3 * time.Second)
	}
}
