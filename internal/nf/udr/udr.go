// Package udr implements the Unified Data Repository: the subscriber
// document store (free5GC keeps this in MongoDB; here it is an in-memory
// store with the same query surface, per the DESIGN.md substitution).
package udr

import (
	"fmt"
	"sync"

	"l25gc/internal/codec"
	"l25gc/internal/sbi"
)

// Subscriber is one provisioned SIM record.
type Subscriber struct {
	Supi   string
	K      []byte // permanent key
	Opc    []byte
	Dnn    string
	AmbrUL uint64
	AmbrDL uint64
	Sst    uint32
	Sd     string
}

// UDR is the repository NF.
type UDR struct {
	mu   sync.RWMutex
	subs map[string]*Subscriber
	sqn  map[string]uint64
}

// New creates an empty repository.
func New() *UDR {
	return &UDR{subs: make(map[string]*Subscriber), sqn: make(map[string]uint64)}
}

// Provision inserts or replaces a subscriber record.
func (u *UDR) Provision(s Subscriber) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.subs[s.Supi] = &s
}

// NextSQN returns and advances the subscriber's sequence number (used for
// authentication vector freshness).
func (u *UDR) NextSQN(supi string) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sqn[supi]++
	return u.sqn[supi]
}

// Lookup returns the subscriber record.
func (u *UDR) Lookup(supi string) (*Subscriber, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	s, ok := u.subs[supi]
	return s, ok
}

// Handle implements sbi.Handler for Nudr_DataRepository.
func (u *UDR) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpQuerySubscriberData:
		q := req.(*sbi.SubscriptionDataRequest)
		rec := &sbi.SubscriberRecord{Supi: q.Supi}
		if s, ok := u.Lookup(q.Supi); ok {
			rec.Found = true
			rec.K = s.K
			rec.Opc = s.Opc
			rec.Dnn = s.Dnn
			rec.AmbrUL = s.AmbrUL
			rec.AmbrDL = s.AmbrDL
			rec.Sst = s.Sst
			rec.Sd = s.Sd
			rec.Sqn = u.NextSQN(q.Supi)
		}
		return rec, nil
	default:
		return nil, fmt.Errorf("udr: unsupported operation %s", op.Name())
	}
}
