// Package udm implements the Unified Data Management NF: home-network
// authentication vector generation (5G-AKA), subscription data retrieval,
// and serving-AMF registration (UECM).
//
// Vector derivation substitutes HMAC-SHA256 for Milenage (stdlib-only),
// preserving the protocol structure: RAND/AUTN challenge, XRES*
// comparison, KAUSF derivation. The UE side (internal/ranue) derives the
// same quantities from its provisioned key.
package udm

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"l25gc/internal/codec"
	"l25gc/internal/sbi"
)

// Vector is a 5G-AKA home-network authentication vector.
type Vector struct {
	Rand     []byte
	Autn     []byte
	XresStar []byte
	Kausf    []byte
}

// DeriveVector computes the vector for key k and sequence number sqn.
// Exported so the UE simulator derives the matching RES*.
func DeriveVector(k, opc []byte, sqn uint64) Vector {
	var sq [8]byte
	binary.BigEndian.PutUint64(sq[:], sqn)
	rnd := prf(k, "rand", opc, sq[:])[:16]
	return Vector{
		Rand:     rnd,
		Autn:     prf(k, "autn", rnd, sq[:])[:16],
		XresStar: DeriveRes(k, rnd),
		Kausf:    prf(k, "kausf", rnd, nil),
	}
}

// DeriveRes computes RES* for a challenge (UE side and XRES* home side).
func DeriveRes(k, rnd []byte) []byte {
	return prf(k, "res", rnd, nil)[:16]
}

// prf is the HMAC-SHA256 pseudo-random function used for all derivations.
func prf(key []byte, label string, parts ...[]byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(label))
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

// registration records the serving AMF for a UE.
type registration struct {
	AmfID string
	Guami string
}

// UDM is the data-management NF. It reaches subscriber documents through
// the UDR connection.
type UDM struct {
	udr sbi.Conn

	mu   sync.RWMutex
	regs map[string]registration
}

// New creates a UDM backed by the given UDR connection.
func New(udr sbi.Conn) *UDM {
	return &UDM{udr: udr, regs: make(map[string]registration)}
}

// ServingAMF returns the registered serving AMF for a SUPI.
func (u *UDM) ServingAMF(supi string) (string, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	r, ok := u.regs[supi]
	return r.AmfID, ok
}

// Handle implements sbi.Handler for the Nudm services.
func (u *UDM) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpGenerateAuthData:
		r := req.(*sbi.AuthInfoRequest)
		rec, err := u.subscriber(r.SuciOrSupi)
		if err != nil {
			return nil, err
		}
		v := DeriveVector(rec.K, rec.Opc, rec.Sqn)
		return &sbi.AuthInfoResponse{
			AuthType: "5G_AKA",
			Rand:     v.Rand, Autn: v.Autn, XresStar: v.XresStar, Kausf: v.Kausf,
			Supi: rec.Supi,
		}, nil
	case sbi.OpGetAMSubscriptionData:
		r := req.(*sbi.SubscriptionDataRequest)
		rec, err := u.subscriber(r.Supi)
		if err != nil {
			return nil, err
		}
		return &sbi.AMSubscriptionData{
			Supi: rec.Supi, SubscribedSst: rec.Sst, SubscribedSd: rec.Sd,
			UeAmbrUL: rec.AmbrUL, UeAmbrDL: rec.AmbrDL,
		}, nil
	case sbi.OpGetSMSubscriptionData:
		r := req.(*sbi.SubscriptionDataRequest)
		rec, err := u.subscriber(r.Supi)
		if err != nil {
			return nil, err
		}
		return &sbi.SMSubscriptionData{
			Supi: rec.Supi, Dnn: rec.Dnn,
			SessAmbrUL: rec.AmbrUL, SessAmbrDL: rec.AmbrDL,
			Default5QI: 9, AllowedSscCnt: 1,
		}, nil
	case sbi.OpRegisterAMF3GPPAccess:
		r := req.(*sbi.AMFRegistrationRequest)
		u.mu.Lock()
		u.regs[r.Supi] = registration{AmfID: r.AmfID, Guami: r.Guami}
		u.mu.Unlock()
		return &sbi.AMFRegistrationResponse{Accepted: true}, nil
	default:
		return nil, fmt.Errorf("udm: unsupported operation %s", op.Name())
	}
}

func (u *UDM) subscriber(supi string) (*sbi.SubscriberRecord, error) {
	resp, err := u.udr.Invoke(sbi.OpQuerySubscriberData, &sbi.SubscriptionDataRequest{Supi: supi})
	if err != nil {
		return nil, fmt.Errorf("udm: UDR query: %w", err)
	}
	rec := resp.(*sbi.SubscriberRecord)
	if !rec.Found {
		return nil, fmt.Errorf("udm: unknown subscriber %s", supi)
	}
	return rec, nil
}
