// Package pcf implements the Policy Control Function: access-and-mobility
// and session-management policy associations with static operator policy.
package pcf

import (
	"fmt"
	"sync/atomic"

	"l25gc/internal/codec"
	"l25gc/internal/sbi"
)

// Policy holds the operator defaults the PCF hands out.
type Policy struct {
	RfspIndex  uint32
	MbrUL      uint64 // kbit/s
	MbrDL      uint64
	Default5QI uint32
}

// PCF is the policy NF.
type PCF struct {
	policy Policy
	nextID atomic.Uint64
}

// New creates a PCF with the given operator policy. Zero MBRs mean
// unlimited.
func New(p Policy) *PCF {
	if p.Default5QI == 0 {
		p.Default5QI = 9
	}
	return &PCF{policy: p}
}

// Handle implements sbi.Handler for the Npcf services.
func (p *PCF) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpAMPolicyCreate:
		return &sbi.AMPolicyCreateResponse{
			PolicyID: fmt.Sprintf("am-%d", p.nextID.Add(1)),
			Rfsp:     p.policy.RfspIndex,
		}, nil
	case sbi.OpSMPolicyCreate:
		r := req.(*sbi.SMPolicyCreateRequest)
		return &sbi.SMPolicyCreateResponse{
			PolicyID:   fmt.Sprintf("sm-%d", p.nextID.Add(1)),
			SessRuleID: fmt.Sprintf("rule-%s-%d", r.Supi, r.PduSessionID),
			MbrUL:      p.policy.MbrUL, MbrDL: p.policy.MbrDL,
			Default5QI: p.policy.Default5QI,
		}, nil
	default:
		return nil, fmt.Errorf("pcf: unsupported operation %s", op.Name())
	}
}
