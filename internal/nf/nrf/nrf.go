// Package nrf implements the Network Repository Function: NF instance
// registration and discovery. In free5GC every consumer resolves producers
// through the NRF at setup time; the same flow exists here so the
// control-plane wiring matches the 3GPP service-based architecture.
package nrf

import (
	"fmt"
	"strings"
	"sync"

	"l25gc/internal/codec"
	"l25gc/internal/sbi"
)

// instance is one registered NF.
type instance struct {
	id     string
	nfType string
	addr   string
}

// NRF is the repository function.
type NRF struct {
	mu        sync.RWMutex
	instances map[string]instance // keyed by instance ID
}

// New creates an empty NRF.
func New() *NRF {
	return &NRF{instances: make(map[string]instance)}
}

// Handle implements sbi.Handler for Nnrf services.
func (n *NRF) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpNFRegister:
		r := req.(*sbi.NFRegisterRequest)
		n.mu.Lock()
		n.instances[r.NfInstanceID] = instance{id: r.NfInstanceID, nfType: strings.ToUpper(r.NfType), addr: r.Addr}
		n.mu.Unlock()
		return &sbi.NFRegisterResponse{HeartbeatTimer: 10}, nil
	case sbi.OpNFDiscover:
		r := req.(*sbi.NFDiscoveryRequest)
		want := strings.ToUpper(r.TargetNfType)
		n.mu.RLock()
		var addrs []string
		for _, in := range n.instances {
			if in.nfType == want {
				addrs = append(addrs, in.addr)
			}
		}
		n.mu.RUnlock()
		return &sbi.NFDiscoveryResponse{Addrs: strings.Join(addrs, ",")}, nil
	default:
		return nil, fmt.Errorf("nrf: unsupported operation %s", op.Name())
	}
}

// Registered reports the number of registered instances.
func (n *NRF) Registered() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.instances)
}
