// Package nf_test exercises the control-plane network functions together:
// the UDR document store, UDM vector derivation, AUSF 5G-AKA state
// machine, PCF policies and NRF discovery — each through its SBI handler,
// the way the AMF and SMF invoke them.
package nf_test

import (
	"bytes"
	"strings"
	"testing"

	"l25gc/internal/codec"
	"l25gc/internal/nf/ausf"
	"l25gc/internal/nf/nrf"
	"l25gc/internal/nf/pcf"
	"l25gc/internal/nf/udm"
	"l25gc/internal/nf/udr"
	"l25gc/internal/sbi"
)

// directConn adapts an sbi.Handler to sbi.Conn without a transport (unit
// tests bypass the wire).
type directConn struct{ h sbi.Handler }

func (d directConn) Invoke(op sbi.OpID, req codec.Message) (codec.Message, error) {
	return d.h(op, req)
}
func (d directConn) Close() error { return nil }

func provisionedUDR() *udr.UDR {
	u := udr.New()
	u.Provision(udr.Subscriber{
		Supi: "imsi-1", K: []byte("0123456789abcdef"), Opc: []byte("fedcba9876543210"),
		Dnn: "internet", AmbrUL: 1e9, AmbrDL: 2e9, Sst: 1, Sd: "010203",
	})
	return u
}

func TestUDRQuery(t *testing.T) {
	u := provisionedUDR()
	resp, err := u.Handle(sbi.OpQuerySubscriberData, &sbi.SubscriptionDataRequest{Supi: "imsi-1"})
	if err != nil {
		t.Fatal(err)
	}
	rec := resp.(*sbi.SubscriberRecord)
	if !rec.Found || rec.Dnn != "internet" || rec.AmbrDL != 2e9 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Sqn != 1 {
		t.Fatalf("first SQN = %d, want 1", rec.Sqn)
	}
	// SQN advances per query (authentication freshness).
	resp, _ = u.Handle(sbi.OpQuerySubscriberData, &sbi.SubscriptionDataRequest{Supi: "imsi-1"})
	if resp.(*sbi.SubscriberRecord).Sqn != 2 {
		t.Fatal("SQN did not advance")
	}
	// Unknown subscriber: Found=false, no error.
	resp, err = u.Handle(sbi.OpQuerySubscriberData, &sbi.SubscriptionDataRequest{Supi: "imsi-404"})
	if err != nil || resp.(*sbi.SubscriberRecord).Found {
		t.Fatalf("unknown subscriber: %v %+v", err, resp)
	}
	if _, err := u.Handle(sbi.OpNFDiscover, &sbi.NFDiscoveryRequest{}); err == nil {
		t.Fatal("unsupported op should error")
	}
}

func TestUDMVectorDerivationDeterministic(t *testing.T) {
	k := []byte("0123456789abcdef")
	opc := []byte("fedcba9876543210")
	v1 := udm.DeriveVector(k, opc, 1)
	v2 := udm.DeriveVector(k, opc, 1)
	if !bytes.Equal(v1.Rand, v2.Rand) || !bytes.Equal(v1.XresStar, v2.XresStar) {
		t.Fatal("vector derivation must be deterministic per (K, SQN)")
	}
	v3 := udm.DeriveVector(k, opc, 2)
	if bytes.Equal(v1.Rand, v3.Rand) {
		t.Fatal("different SQN must give a fresh RAND")
	}
	// The UE-side derivation agrees with the home network's XRES*.
	if !bytes.Equal(udm.DeriveRes(k, v1.Rand), v1.XresStar) {
		t.Fatal("UE RES* != home XRES*")
	}
	if len(v1.Rand) != 16 || len(v1.Autn) != 16 || len(v1.XresStar) != 16 {
		t.Fatalf("vector lengths: %d/%d/%d", len(v1.Rand), len(v1.Autn), len(v1.XresStar))
	}
}

func TestUDMHandlers(t *testing.T) {
	u := udm.New(directConn{provisionedUDR().Handle})
	resp, err := u.Handle(sbi.OpGenerateAuthData, &sbi.AuthInfoRequest{SuciOrSupi: "imsi-1"})
	if err != nil {
		t.Fatal(err)
	}
	ai := resp.(*sbi.AuthInfoResponse)
	if ai.AuthType != "5G_AKA" || len(ai.Rand) != 16 || ai.Supi != "imsi-1" {
		t.Fatalf("auth info %+v", ai)
	}
	resp, err = u.Handle(sbi.OpGetAMSubscriptionData, &sbi.SubscriptionDataRequest{Supi: "imsi-1"})
	if err != nil || resp.(*sbi.AMSubscriptionData).UeAmbrUL != 1e9 {
		t.Fatalf("AM data: %v %+v", err, resp)
	}
	resp, err = u.Handle(sbi.OpGetSMSubscriptionData, &sbi.SubscriptionDataRequest{Supi: "imsi-1"})
	if err != nil || resp.(*sbi.SMSubscriptionData).Dnn != "internet" {
		t.Fatalf("SM data: %v %+v", err, resp)
	}
	resp, err = u.Handle(sbi.OpRegisterAMF3GPPAccess, &sbi.AMFRegistrationRequest{Supi: "imsi-1", AmfID: "amf-7"})
	if err != nil || !resp.(*sbi.AMFRegistrationResponse).Accepted {
		t.Fatalf("UECM: %v %+v", err, resp)
	}
	if amfID, ok := u.ServingAMF("imsi-1"); !ok || amfID != "amf-7" {
		t.Fatalf("serving AMF %q %v", amfID, ok)
	}
	if _, err := u.Handle(sbi.OpGenerateAuthData, &sbi.AuthInfoRequest{SuciOrSupi: "imsi-404"}); err == nil {
		t.Fatal("unknown subscriber must fail")
	}
}

func TestAUSF5GAKAFlow(t *testing.T) {
	u := udm.New(directConn{provisionedUDR().Handle})
	a := ausf.New(directConn{u.Handle})

	resp, err := a.Handle(sbi.OpUEAuthenticationsPost, &sbi.AuthenticationRequest{
		SuciOrSupi: "imsi-1", ServingNetworkName: "5G:mnc093.mcc208",
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := resp.(*sbi.AuthenticationResponse)
	if ch.AuthCtxID == "" || len(ch.Rand) != 16 || len(ch.HxresStar) != 16 {
		t.Fatalf("challenge %+v", ch)
	}
	// The UE computes RES* from its key; confirmation succeeds.
	res := udm.DeriveRes([]byte("0123456789abcdef"), ch.Rand)
	resp, err = a.Handle(sbi.OpUEAuthenticationsConfirm, &sbi.AuthConfirmRequest{
		AuthCtxID: ch.AuthCtxID, ResStar: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf := resp.(*sbi.AuthConfirmResponse)
	if conf.AuthResult != "AUTHENTICATION_SUCCESS" || conf.Supi != "imsi-1" || len(conf.Kseaf) == 0 {
		t.Fatalf("confirm %+v", conf)
	}
	// Context is single-use.
	if _, err := a.Handle(sbi.OpUEAuthenticationsConfirm, &sbi.AuthConfirmRequest{
		AuthCtxID: ch.AuthCtxID, ResStar: res,
	}); err == nil {
		t.Fatal("auth context must be single-use")
	}
}

func TestAUSFRejectsWrongRes(t *testing.T) {
	u := udm.New(directConn{provisionedUDR().Handle})
	a := ausf.New(directConn{u.Handle})
	resp, _ := a.Handle(sbi.OpUEAuthenticationsPost, &sbi.AuthenticationRequest{SuciOrSupi: "imsi-1"})
	ch := resp.(*sbi.AuthenticationResponse)
	resp, err := a.Handle(sbi.OpUEAuthenticationsConfirm, &sbi.AuthConfirmRequest{
		AuthCtxID: ch.AuthCtxID, ResStar: []byte("wrong-res-wrong-r"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*sbi.AuthConfirmResponse).AuthResult != "AUTHENTICATION_FAILURE" {
		t.Fatal("wrong RES* must be rejected")
	}
}

func TestPCFPolicies(t *testing.T) {
	p := pcf.New(pcf.Policy{RfspIndex: 2, MbrUL: 100000, MbrDL: 300000})
	resp, err := p.Handle(sbi.OpAMPolicyCreate, &sbi.AMPolicyCreateRequest{Supi: "imsi-1"})
	if err != nil || resp.(*sbi.AMPolicyCreateResponse).Rfsp != 2 {
		t.Fatalf("AM policy: %v %+v", err, resp)
	}
	resp, err = p.Handle(sbi.OpSMPolicyCreate, &sbi.SMPolicyCreateRequest{Supi: "imsi-1", PduSessionID: 5})
	if err != nil {
		t.Fatal(err)
	}
	sm := resp.(*sbi.SMPolicyCreateResponse)
	if sm.MbrUL != 100000 || sm.MbrDL != 300000 || sm.Default5QI != 9 {
		t.Fatalf("SM policy %+v", sm)
	}
	if !strings.Contains(sm.SessRuleID, "imsi-1") {
		t.Fatalf("rule ID %q", sm.SessRuleID)
	}
	// Distinct policy IDs per association.
	resp2, _ := p.Handle(sbi.OpSMPolicyCreate, &sbi.SMPolicyCreateRequest{Supi: "imsi-2"})
	if resp2.(*sbi.SMPolicyCreateResponse).PolicyID == sm.PolicyID {
		t.Fatal("policy IDs must be unique")
	}
}

func TestNRFRegisterDiscover(t *testing.T) {
	n := nrf.New()
	for _, reg := range []sbi.NFRegisterRequest{
		{NfInstanceID: "smf-1", NfType: "SMF", Addr: "127.0.0.1:1001"},
		{NfInstanceID: "smf-2", NfType: "smf", Addr: "127.0.0.1:1002"}, // case-insensitive
		{NfInstanceID: "upf-1", NfType: "UPF", Addr: "127.0.0.1:2001"},
	} {
		reg := reg
		if _, err := n.Handle(sbi.OpNFRegister, &reg); err != nil {
			t.Fatal(err)
		}
	}
	if n.Registered() != 3 {
		t.Fatalf("registered = %d", n.Registered())
	}
	resp, err := n.Handle(sbi.OpNFDiscover, &sbi.NFDiscoveryRequest{TargetNfType: "SMF"})
	if err != nil {
		t.Fatal(err)
	}
	addrs := resp.(*sbi.NFDiscoveryResponse).Addrs
	if !strings.Contains(addrs, "127.0.0.1:1001") || !strings.Contains(addrs, "127.0.0.1:1002") {
		t.Fatalf("discovery %q", addrs)
	}
	resp, _ = n.Handle(sbi.OpNFDiscover, &sbi.NFDiscoveryRequest{TargetNfType: "PCF"})
	if resp.(*sbi.NFDiscoveryResponse).Addrs != "" {
		t.Fatal("no PCF registered, discovery should be empty")
	}
	// Re-registration replaces (same instance ID).
	n.Handle(sbi.OpNFRegister, &sbi.NFRegisterRequest{NfInstanceID: "smf-1", NfType: "SMF", Addr: "127.0.0.1:9999"})
	if n.Registered() != 3 {
		t.Fatal("re-registration must not duplicate")
	}
}
