// Package amf implements the Access and Mobility Management Function: the
// N2 (NGAP) server terminating gNB connections, per-UE state machines for
// the paper's four events — registration, PDU session establishment, N2
// handover and paging — and the SBI consumer side toward AUSF, UDM, PCF
// and SMF.
package amf

import (
	"crypto/sha256"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/nas"
	"l25gc/internal/nfid"
	"l25gc/internal/ngap"
	"l25gc/internal/overload"
	"l25gc/internal/sbi"
	"l25gc/internal/trace"
)

// regState tracks registration progress.
type regState int

const (
	regIdle regState = iota
	regAuthPending
	regSecurityPending
	regContextPending
	regDone
)

// gnbConn is one known gNB. conn is nil while the gNB is detached — a
// state that exists only on a restored AMF replica, whose snapshot knows
// the RAN topology but whose TCP connections died with the failed
// primary; the gNB re-binds on its next NGSetup.
type gnbConn struct {
	id   uint32
	name string

	mu   sync.Mutex
	conn *ngap.Conn
}

// send transmits on the gNB's live connection; a detached gNB swallows
// the message (the RAN side re-drives its procedure after re-attach).
//
//l25gc:commit replayed downlink NGAP re-transmits here intentionally; a detached or re-attached gNB deduplicates by procedure
func (g *gnbConn) send(m ngap.Message) error {
	if g == nil {
		return fmt.Errorf("amf: send to unknown gNB")
	}
	g.mu.Lock()
	conn := g.conn
	g.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("amf: gNB %d detached", g.id)
	}
	return conn.Send(m)
}

// setConn re-binds the gNB to a live connection (NGSetup after failover).
func (g *gnbConn) setConn(c *ngap.Conn) {
	g.mu.Lock()
	g.conn = c
	g.mu.Unlock()
}

// closeConn closes the live connection, if any.
func (g *gnbConn) closeConn() {
	g.mu.Lock()
	conn := g.conn
	g.conn = nil
	g.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// ueContext is the AMF's per-UE state.
type ueContext struct {
	mu sync.Mutex

	amfUeID uint64
	ranUeID uint64
	gnb     *gnbConn

	suci, supi, guti string
	authCtxID        string
	state            regState

	pduSessionID uint32
	smRef        string
	upfTEID      uint32
	upfAddr      string

	idle bool

	// regPending marks a held registration admission token; regStart
	// anchors the latency sample fed back to the overload controller
	// (clock reading; zero = not sampled).
	regPending bool
	regStart   time.Duration

	// Handover bookkeeping.
	hoSrcGnb     *gnbConn
	hoSrcRanUeID uint64
	hoTarget     *gnbConn
}

// Config parameterizes the AMF.
type Config struct {
	Name  string
	Guami string
	Addr  string // N2 listen address ("127.0.0.1:0" for ephemeral)
	// Shards is the UE-state shard count (DESIGN §16). <=1 keeps the
	// single-shard layout, whose allocation sequence is byte-identical to
	// the historical global-counter one.
	Shards int
}

// AMF is the access-and-mobility NF.
type AMF struct {
	cfg  Config
	ausf sbi.Conn
	udm  sbi.Conn
	pcf  sbi.Conn
	smf  sbi.Conn

	ln net.Listener

	gmu  sync.Mutex
	gnbs map[uint32]*gnbConn

	// Per-UE state, sharded by fmix64(ID) (shard.go): ueShards holds the
	// primary amfUeID table plus pending-HO tunnels, idxShards the
	// SUPI/GUTI/(gnbID,ranUeID) lookup indexes.
	ueShards  []*ueShard
	idxShards []*idxShard
	ueAlloc   *nfid.Alloc

	closed atomic.Bool
	wg     sync.WaitGroup
	tracec atomic.Pointer[trace.Track]
	tap    atomic.Pointer[IngressTap]
	ctrl   atomic.Pointer[overload.Controller]
	// clock supplies monotonic elapsed time for latency samples fed to
	// the overload controller; injectable so replayed registrations
	// observe the same durations the live run did.
	clock func() time.Duration

	// Logf receives procedure traces; defaults to a silent logger.
	Logf func(format string, args ...any)
}

// IngressTap intercepts every inbound NGAP message before dispatch. The
// supervisor installs one to stamp the message through the packet-log
// counter; apply performs the dispatch and must run inside the tap's
// consistency section so a checkpoint never covers a half-applied
// message. A tap error drops the message here — it is already logged and
// reaches the replica via replay.
type IngressTap func(gnbID uint32, wire []byte, apply func() error) error

// SetIngressTap installs (or, with nil, removes) the ingress tap.
func (a *AMF) SetIngressTap(t IngressTap) {
	if t == nil {
		a.tap.Store(nil)
		return
	}
	a.tap.Store(&t)
}

// New starts an AMF listening for gNB (N2) connections.
func New(cfg Config, ausf, udm, pcf, smf sbi.Conn) (*AMF, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	a := &AMF{
		cfg: cfg, ausf: ausf, udm: udm, pcf: pcf, smf: smf, ln: ln,
		gnbs:      make(map[uint32]*gnbConn),
		ueShards:  newUeShards(shards),
		idxShards: newIdxShards(shards),
		ueAlloc:   nfid.New(0, shards),
		Logf:      func(string, ...any) {},
	}
	base := time.Now()
	a.clock = func() time.Duration { return time.Since(base) }
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// SetTracer installs a trace track for control-plane procedure spans
// (amf.registration.*, amf.session.*, amf.ho.*, amf.paging.trigger);
// nil disables tracing.
func (a *AMF) SetTracer(tk *trace.Track) { a.tracec.Store(tk) }

// SetClock replaces the monotonic clock behind overload latency samples
// (simulated-time harnesses inject theirs before traffic starts).
func (a *AMF) SetClock(clock func() time.Duration) { a.clock = clock }

// N2Addr returns the NGAP listen address gNBs should dial.
func (a *AMF) N2Addr() string { return a.ln.Addr().String() }

// Close shuts the AMF down.
func (a *AMF) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	a.ln.Close()
	a.gmu.Lock()
	for _, g := range a.gnbs {
		g.closeConn()
	}
	a.gmu.Unlock()
	a.wg.Wait()
	return nil
}

func (a *AMF) acceptLoop() {
	defer a.wg.Done()
	for {
		c, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go a.serveGnb(ngap.NewConn(c))
	}
}

func (a *AMF) serveGnb(conn *ngap.Conn) {
	defer a.wg.Done()
	var g *gnbConn
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		gnbID := uint32(0)
		if setup, ok := msg.(*ngap.NGSetupRequest); ok {
			gnbID = setup.GnbID
		} else if g != nil {
			gnbID = g.id
		}
		// Admission runs before the ingress tap: shed work must never be
		// counter-stamped into the packet log, or replay would re-execute
		// rejected requests on the promoted replica.
		release, ok := a.gateNGAP(conn, g, msg)
		if !ok {
			continue
		}
		apply := func() error {
			g = a.dispatch(conn, g, msg)
			return nil
		}
		if tap := a.tap.Load(); tap == nil {
			apply()
		} else if wire, werr := ngap.Marshal(msg); werr != nil {
			a.Logf("amf: re-marshal for ingress log failed: %v", werr)
			apply()
		} else if err := (*tap)(gnbID, wire, apply); err != nil {
			a.Logf("amf: inbound NGAP dropped at ingress: %v", err)
		}
		if release != nil {
			release()
		}
	}
}

// DeliverNGAP re-injects one inbound NGAP message — the supervisor's
// replay path. The message is dispatched exactly as a live one, bound to
// the gNB's conn if that gNB is currently attached (detached otherwise).
//
//l25gc:replay
func (a *AMF) DeliverNGAP(gnbID uint32, wire []byte) error {
	msg, err := ngap.Unmarshal(wire)
	if err != nil {
		return fmt.Errorf("amf: replayed NGAP: %w", err)
	}
	g := a.gnbByID(gnbID)
	a.dispatch(nil, g, msg)
	return nil
}

// gnbByID returns the gNB record for id, creating a detached one on
// first sight (replayed traffic can reference a gNB that has not yet
// re-attached to this replica).
func (a *AMF) gnbByID(id uint32) *gnbConn {
	a.gmu.Lock()
	defer a.gmu.Unlock()
	g := a.gnbs[id]
	if g == nil {
		g = &gnbConn{id: id}
		a.gnbs[id] = g
	}
	return g
}

// bindGnb records an NGSetup: a known gNB is re-bound to the new live
// connection (preserving every ueContext pointer at it), an unknown one
// is created. conn is nil when the NGSetup itself is a replay — a replica
// must never clobber a live binding with a dead one.
func (a *AMF) bindGnb(id uint32, name string, conn *ngap.Conn) *gnbConn {
	a.gmu.Lock()
	g := a.gnbs[id]
	if g == nil {
		g = &gnbConn{id: id}
		a.gnbs[id] = g
	}
	g.name = name
	a.gmu.Unlock()
	if conn != nil {
		g.setConn(conn)
	}
	return g
}

// dispatch applies one inbound NGAP message, live or replayed. It
// returns the connection's gNB binding (updated by NGSetup).
func (a *AMF) dispatch(conn *ngap.Conn, g *gnbConn, msg ngap.Message) *gnbConn {
	switch m := msg.(type) {
	case *ngap.NGSetupRequest:
		g = a.bindGnb(m.GnbID, m.GnbName, conn)
		g.send(&ngap.NGSetupResponse{AmfName: a.cfg.Name, Accepted: true})
		a.Logf("amf: gNB %d (%s) attached", m.GnbID, m.GnbName)
	case *ngap.InitialUEMessage:
		a.handleInitialUE(g, m)
	case *ngap.UplinkNASTransport:
		a.handleUplinkNAS(g, m)
	case *ngap.InitialContextSetupResponse:
		// Context active at the gNB; nothing further required here.
	case *ngap.PDUSessionResourceSetupResponse:
		a.handleSessionResourceResponse(g, m)
	case *ngap.HandoverRequired:
		a.handleHandoverRequired(g, m)
	case *ngap.HandoverRequestAck:
		a.handleHandoverRequestAck(g, m)
	case *ngap.HandoverNotify:
		a.handleHandoverNotify(g, m)
	case *ngap.UEContextReleaseRequest:
		a.handleReleaseRequest(g, m)
	case *ngap.UEContextReleaseComplete:
		// Release finished at the gNB.
	default:
		a.Logf("amf: unhandled NGAP message %T", m)
	}
	return g
}

func (a *AMF) ueByAmfID(id uint64) *ueContext {
	sh := a.ueShardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ues[id]
}

// lookupRan resolves a UE by its RAN-side coordinates — the index that
// replaced the old O(n) scan over the whole UE table on every PDU session
// resource response.
func (a *AMF) lookupRan(k ranKey) *ueContext {
	sh := a.idxShards[a.ranShardIdx(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.byRan[k]
}

// bindRan indexes ue under (gnbID, ranUeID). If a different context was
// already bound there, that context is a superseded attachment of the same
// RAN identity (a re-registration without deregistration) — it is dropped
// whole, which is the stale-entry leak fix: before the byRan index existed
// such contexts sat in the UE table forever.
func (a *AMF) bindRan(ue *ueContext, k ranKey) {
	sh := a.idxShards[a.ranShardIdx(k)]
	sh.mu.Lock()
	old := sh.byRan[k]
	sh.byRan[k] = ue
	sh.mu.Unlock()
	if old != nil && old != ue {
		a.releaseReg(old)
		a.dropUE(old)
	}
}

// rebindRan moves ue's byRan entry from its old coordinates to new ones
// (service request from a new cell, handover to the target cell). Both
// shards are taken in ascending index order per the lock-order rule; the
// old entry is removed only if it still points at ue.
func (a *AMF) rebindRan(ue *ueContext, oldK, newK ranKey) {
	if oldK == newK {
		a.bindRan(ue, newK)
		return
	}
	oi, ni := a.ranShardIdx(oldK), a.ranShardIdx(newK)
	a.lockIdxPair(oi, ni)
	if a.idxShards[oi].byRan[oldK] == ue {
		delete(a.idxShards[oi].byRan, oldK)
	}
	old := a.idxShards[ni].byRan[newK]
	a.idxShards[ni].byRan[newK] = ue
	a.unlockIdxPair(oi, ni)
	if old != nil && old != ue {
		a.releaseReg(old)
		a.dropUE(old)
	}
}

// ranKeyOf reads ue's current RAN coordinates under its leaf lock.
func ranKeyOf(ue *ueContext) ranKey {
	ue.mu.Lock()
	defer ue.mu.Unlock()
	k := ranKey{ranUeID: ue.ranUeID}
	if ue.gnb != nil {
		k.gnbID = ue.gnb.id
	}
	return k
}

// dropUE removes ue and every secondary-index entry that still points at
// it — primary table, pending HO tunnel, SUPI/GUTI pair, byRan. All
// deletes are identity-guarded so dropping a superseded context never
// evicts its replacement. This is the one cleanup path shared by
// deregistration, failed registrations (which previously leaked their
// table entry), and supersession.
func (a *AMF) dropUE(ue *ueContext) {
	ue.mu.Lock()
	supi, guti := ue.supi, ue.guti
	ue.mu.Unlock()
	k := ranKeyOf(ue)

	sh := a.ueShardOf(ue.amfUeID)
	sh.mu.Lock()
	if sh.ues[ue.amfUeID] == ue {
		delete(sh.ues, ue.amfUeID)
		delete(sh.hoTunnels, ue.amfUeID)
	}
	sh.mu.Unlock()

	if supi != "" || guti != "" {
		si, gi := a.supiShardIdx(supi), a.gutiShardIdx(guti)
		a.lockIdxPair(si, gi)
		if supi != "" && a.idxShards[si].bySupi[supi] == ue {
			delete(a.idxShards[si].bySupi, supi)
		}
		if guti != "" && a.idxShards[gi].byGuti[guti] == ue {
			delete(a.idxShards[gi].byGuti, guti)
		}
		a.unlockIdxPair(si, gi)
	}

	rsh := a.idxShards[a.ranShardIdx(k)]
	rsh.mu.Lock()
	if rsh.byRan[k] == ue {
		delete(rsh.byRan, k)
	}
	rsh.mu.Unlock()
}

// --- registration ---

func (a *AMF) handleInitialUE(g *gnbConn, m *ngap.InitialUEMessage) {
	dec := a.tracec.Load().Start("amf.nas.decode")
	nasMsg, err := nas.Unmarshal(m.NasPdu)
	if err == nil {
		dec.Attr("msg", nas.MsgName(nasMsg.NASType()))
	}
	dec.End()
	if err != nil {
		a.Logf("amf: bad NAS in InitialUEMessage: %v", err)
		return
	}
	switch n := nasMsg.(type) {
	case *nas.RegistrationRequest:
		a.startRegistration(g, m.RanUeID, n)
	case *nas.ServiceRequest:
		a.handleServiceRequest(g, m.RanUeID, n)
	default:
		a.Logf("amf: unexpected initial NAS %T", n)
	}
}

func (a *AMF) startRegistration(g *gnbConn, ranUeID uint64, r *nas.RegistrationRequest) {
	sp := a.tracec.Load().Start("amf.registration.auth")
	defer sp.End()
	k := ranKey{ranUeID: ranUeID}
	if g != nil {
		k.gnbID = g.id
	}
	ue := &ueContext{
		// The allocation stripe is derived from the RAN coordinates, so
		// concurrent registrations across gNBs spread over stripes instead
		// of serializing on one counter.
		amfUeID: a.ueAlloc.Next(k.hash()),
		ranUeID: ranUeID,
		gnb:     g,
		suci:    r.Suci,
		state:   regAuthPending,
	}
	if a.ctrl.Load() != nil {
		// The admission token taken at the N2 gate spans the whole
		// handshake; it rides the UE context (and its snapshot) so the
		// generation that finishes the registration releases it.
		ue.regPending = true
		ue.regStart = a.clock()
	}
	sh := a.ueShardOf(ue.amfUeID)
	sh.mu.Lock()
	sh.ues[ue.amfUeID] = ue
	sh.mu.Unlock()
	a.bindRan(ue, k)

	resp, err := a.ausf.Invoke(sbi.OpUEAuthenticationsPost, &sbi.AuthenticationRequest{
		SuciOrSupi: r.Suci, ServingNetworkName: a.cfg.Guami,
	})
	if err != nil {
		a.Logf("amf: AUSF authentication failed: %v", err)
		a.releaseReg(ue)
		a.dropUE(ue)
		return
	}
	ar := resp.(*sbi.AuthenticationResponse)
	// The UE is already published in the shard map, so a concurrent
	// snapshotter may be reading it: every field write from here on
	// happens under ue.mu (the AUSF/UDM round trips stay outside it).
	ue.mu.Lock()
	ue.authCtxID = ar.AuthCtxID
	ue.mu.Unlock()
	bp := nasBuf()
	pdu, _ := nas.AppendMarshal(*bp, &nas.AuthenticationRequest{Rand: ar.Rand, Autn: ar.Autn})
	g.send(&ngap.DownlinkNASTransport{RanUeID: ranUeID, AmfUeID: ue.amfUeID, NasPdu: pdu})
	putNASBuf(bp, pdu)
}

func (a *AMF) handleUplinkNAS(g *gnbConn, m *ngap.UplinkNASTransport) {
	ue := a.ueByAmfID(m.AmfUeID)
	if ue == nil {
		a.Logf("amf: uplink NAS for unknown UE %d", m.AmfUeID)
		return
	}
	dec := a.tracec.Load().Start("amf.nas.decode")
	nasMsg, err := nas.Unmarshal(m.NasPdu)
	if err == nil {
		dec.Attr("msg", nas.MsgName(nasMsg.NASType()))
	}
	dec.End()
	if err != nil {
		a.Logf("amf: bad uplink NAS: %v", err)
		return
	}
	switch n := nasMsg.(type) {
	case *nas.AuthenticationResponse:
		a.continueAuth(ue, n)
	case *nas.SecurityModeComplete:
		a.completeRegistration(ue)
	case *nas.RegistrationComplete:
		// Registration fully acknowledged by the UE.
	case *nas.PDUSessionEstablishmentRequest:
		a.establishSession(ue, n)
	case *nas.DeregistrationRequest:
		a.deregister(ue, m.RanUeID)
	default:
		a.Logf("amf: unexpected uplink NAS %T", n)
	}
}

func (a *AMF) continueAuth(ue *ueContext, n *nas.AuthenticationResponse) {
	sp := a.tracec.Load().Start("amf.registration.confirm")
	defer sp.End()
	resp, err := a.ausf.Invoke(sbi.OpUEAuthenticationsConfirm, &sbi.AuthConfirmRequest{
		AuthCtxID: ue.authCtxID, ResStar: n.ResStar,
	})
	if err != nil {
		a.Logf("amf: auth confirm failed: %v", err)
		a.releaseReg(ue)
		a.dropUE(ue)
		return
	}
	cr := resp.(*sbi.AuthConfirmResponse)
	if cr.AuthResult != "AUTHENTICATION_SUCCESS" {
		a.Logf("amf: authentication rejected for %s", ue.suci)
		a.releaseReg(ue)
		a.dropUE(ue)
		return
	}
	ue.mu.Lock()
	ue.supi = cr.Supi
	ue.state = regSecurityPending
	ue.mu.Unlock()
	bp := nasBuf()
	pdu, _ := nas.AppendMarshal(*bp, &nas.SecurityModeCommand{CipherAlg: 1, IntegrityAlg: 2})
	ue.gnb.send(&ngap.DownlinkNASTransport{RanUeID: ue.ranUeID, AmfUeID: ue.amfUeID, NasPdu: pdu})
	putNASBuf(bp, pdu)
}

func (a *AMF) completeRegistration(ue *ueContext) {
	sp := a.tracec.Load().Start("amf.registration.context")
	defer sp.End()
	// UECM registration + subscription + policy, as free5GC does.
	if _, err := a.udm.Invoke(sbi.OpRegisterAMF3GPPAccess, &sbi.AMFRegistrationRequest{
		Supi: ue.supi, AmfID: a.cfg.Name, Guami: a.cfg.Guami, RatType: "NR",
	}); err != nil {
		a.Logf("amf: UECM registration failed: %v", err)
		a.releaseReg(ue)
		a.dropUE(ue)
		return
	}
	if _, err := a.udm.Invoke(sbi.OpGetAMSubscriptionData, &sbi.SubscriptionDataRequest{Supi: ue.supi}); err != nil {
		a.Logf("amf: AM subscription failed: %v", err)
		a.releaseReg(ue)
		a.dropUE(ue)
		return
	}
	if _, err := a.pcf.Invoke(sbi.OpAMPolicyCreate, &sbi.AMPolicyCreateRequest{
		Supi: ue.supi, Guami: a.cfg.Guami, RatType: "NR",
	}); err != nil {
		a.Logf("amf: AM policy failed: %v", err)
		a.releaseReg(ue)
		a.dropUE(ue)
		return
	}
	sum := sha256.Sum256([]byte(ue.supi))
	ue.mu.Lock()
	ue.guti = fmt.Sprintf("5g-guti-%x", sum[:6])
	ue.state = regDone
	ue.mu.Unlock()
	// SUPI and GUTI index entries appear together under the ordered
	// two-shard lock; a re-registration simply overwrites (the previous
	// context, if any, is dropped by the byRan supersede path).
	si, gi := a.supiShardIdx(ue.supi), a.gutiShardIdx(ue.guti)
	a.lockIdxPair(si, gi)
	a.idxShards[si].bySupi[ue.supi] = ue
	a.idxShards[gi].byGuti[ue.guti] = ue
	a.unlockIdxPair(si, gi)
	bp := nasBuf()
	pdu, _ := nas.AppendMarshal(*bp, &nas.RegistrationAccept{Guti: ue.guti, TaiList: "tai-1", AllowedSst: 1})
	ue.gnb.send(&ngap.InitialContextSetupRequest{RanUeID: ue.ranUeID, AmfUeID: ue.amfUeID, NasPdu: pdu})
	putNASBuf(bp, pdu)
	a.releaseReg(ue)
	a.Logf("amf: UE %s registered as %s", ue.supi, ue.guti)
}

// --- PDU session establishment ---

func (a *AMF) establishSession(ue *ueContext, n *nas.PDUSessionEstablishmentRequest) {
	sp := a.tracec.Load().Start("amf.session.establish")
	defer sp.End()
	if ctrl := a.ctrl.Load(); ctrl != nil {
		start := a.clock()
		defer func() { ctrl.Observe(a.clock() - start) }()
	}
	resp, err := a.smf.Invoke(sbi.OpPostSmContexts, &sbi.SmContextCreateRequest{
		Supi: ue.supi, PduSessionID: n.PduSessionID, Dnn: n.Dnn,
		Sst: 1, ServingNfID: a.cfg.Name, Guami: a.cfg.Guami,
		RequestType: "INITIAL_REQUEST", AnType: "3GPP_ACCESS", RatType: "NR",
	})
	if err != nil {
		a.Logf("amf: SM context create failed: %v", err)
		if ra, shed := sbi.RetryAfterOf(err); shed {
			// SMF-side overload: propagate the pushback to the UE as a
			// session reject with the SMF's advised backoff.
			ms := uint32(ra.Milliseconds())
			if ms == 0 {
				ms = 1
			}
			bp := nasBuf()
			pdu, _ := nas.AppendMarshal(*bp, &nas.PDUSessionEstablishmentReject{
				PduSessionID: n.PduSessionID,
				Cause:        nas.CauseInsufficientResources, BackoffMs: ms,
			})
			ue.gnb.send(&ngap.DownlinkNASTransport{
				RanUeID: ue.ranUeID, AmfUeID: ue.amfUeID, NasPdu: pdu,
			})
			putNASBuf(bp, pdu)
		}
		return
	}
	sm := resp.(*sbi.SmContextCreateResponse)
	ue.mu.Lock()
	ue.smRef = sm.SmContextRef
	ue.pduSessionID = n.PduSessionID
	ue.upfTEID = sm.UpfTEID
	ue.upfAddr = sm.UpfAddr
	ue.mu.Unlock()

	bp := nasBuf()
	pdu, _ := nas.AppendMarshal(*bp, &nas.PDUSessionEstablishmentAccept{
		PduSessionID: n.PduSessionID, UeIPv4: sm.UeIPv4, Qfi: 9,
	})
	ue.gnb.send(&ngap.PDUSessionResourceSetupRequest{
		RanUeID: ue.ranUeID, AmfUeID: ue.amfUeID, PduSessionID: n.PduSessionID,
		UpfTEID: sm.UpfTEID, UpfAddr: sm.UpfAddr, Qfi: 9, NasPdu: pdu,
	})
	putNASBuf(bp, pdu)
}

func (a *AMF) handleSessionResourceResponse(g *gnbConn, m *ngap.PDUSessionResourceSetupResponse) {
	k := ranKey{ranUeID: m.RanUeID}
	if g != nil {
		k.gnbID = g.id
	}
	ue := a.lookupRan(k)
	if ue == nil {
		a.Logf("amf: resource response for unknown RAN UE %d", m.RanUeID)
		return
	}
	sp := a.tracec.Load().Start("amf.session.activate")
	defer sp.End()
	// Activate the DL path at the SMF with the gNB's tunnel endpoint.
	if _, err := a.smf.Invoke(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
		SmContextRef: ue.smRef, UpCnxState: "ACTIVATED",
		TargetGnbAddr: m.GnbAddr, TargetGnbTEID: m.GnbTEID,
	}); err != nil {
		a.Logf("amf: SM activate failed: %v", err)
	}
}

// deregister releases the UE's session at the SMF and its contexts at the
// AMF and gNB (UE-initiated detach).
func (a *AMF) deregister(ue *ueContext, ranUeID uint64) {
	a.releaseReg(ue)
	ue.mu.Lock()
	smRef := ue.smRef
	ue.smRef = ""
	g := ue.gnb
	ue.mu.Unlock()
	if smRef != "" {
		if _, err := a.smf.Invoke(sbi.OpReleaseSmContext, &sbi.SmContextReleaseRequest{
			SmContextRef: smRef, Cause: "deregistration",
		}); err != nil {
			a.Logf("amf: SM release failed: %v", err)
		}
	}
	// Primary entry, SUPI/GUTI indexes, pending HO tunnel, and byRan
	// entry all drop together — deregistration must leave no stale
	// secondary-index entries behind.
	a.dropUE(ue)
	if g != nil {
		g.send(&ngap.UEContextReleaseCommand{RanUeID: ranUeID, AmfUeID: ue.amfUeID})
	}
	a.Logf("amf: UE %s deregistered", ue.supi)
}

// --- idle transition and paging ---

func (a *AMF) handleReleaseRequest(g *gnbConn, m *ngap.UEContextReleaseRequest) {
	ue := a.ueByAmfID(m.AmfUeID)
	if ue == nil {
		return
	}
	sp := a.tracec.Load().Start("amf.idle.release")
	defer sp.End()
	if ue.smRef != "" {
		if _, err := a.smf.Invoke(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
			SmContextRef: ue.smRef, UpCnxState: "DEACTIVATED",
		}); err != nil {
			a.Logf("amf: SM deactivate failed: %v", err)
			return
		}
	}
	ue.mu.Lock()
	ue.idle = true
	ue.mu.Unlock()
	g.send(&ngap.UEContextReleaseCommand{RanUeID: m.RanUeID, AmfUeID: m.AmfUeID})
	a.Logf("amf: UE %s idle", ue.supi)
}

// Handle implements sbi.Handler for Namf_Communication: the SMF invokes
// N1N2MessageTransfer to trigger paging for DL data to an idle UE.
//
//l25gc:replay
func (a *AMF) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpN1N2MessageTransfer:
		sp := a.tracec.Load().Start("amf.paging.trigger")
		defer sp.End()
		r := req.(*sbi.N1N2MessageTransferRequest)
		ish := a.idxShards[a.supiShardIdx(r.Supi)]
		ish.mu.Lock()
		ue := ish.bySupi[r.Supi]
		ish.mu.Unlock()
		if ue == nil {
			return &sbi.N1N2MessageTransferResponse{Cause: "UE_NOT_FOUND"}, nil
		}
		ue.mu.Lock()
		idle := ue.idle
		g := ue.gnb
		guti := ue.guti
		ue.mu.Unlock()
		if !idle {
			return &sbi.N1N2MessageTransferResponse{Cause: "N1_N2_TRANSFER_INITIATED"}, nil
		}
		if err := g.send(&ngap.Paging{Guti: guti}); err != nil {
			return nil, fmt.Errorf("amf: paging send: %w", err)
		}
		a.Logf("amf: paging %s via gNB %d", guti, g.id)
		return &sbi.N1N2MessageTransferResponse{Cause: "ATTEMPTING_TO_REACH_UE"}, nil
	default:
		return nil, fmt.Errorf("amf: unsupported operation %s", op.Name())
	}
}

func (a *AMF) handleServiceRequest(g *gnbConn, ranUeID uint64, n *nas.ServiceRequest) {
	ish := a.idxShards[a.gutiShardIdx(n.Guti)]
	ish.mu.Lock()
	ue := ish.byGuti[n.Guti]
	ish.mu.Unlock()
	if ue == nil {
		a.Logf("amf: service request for unknown GUTI %s", n.Guti)
		return
	}
	sp := a.tracec.Load().Start("amf.service.request")
	defer sp.End()
	oldK := ranKeyOf(ue)
	ue.mu.Lock()
	ue.gnb = g
	ue.ranUeID = ranUeID
	ue.idle = false
	upfTEID, upfAddr := ue.upfTEID, ue.upfAddr
	sessID := ue.pduSessionID
	ue.mu.Unlock()
	newK := ranKey{ranUeID: ranUeID}
	if g != nil {
		newK.gnbID = g.id
	}
	a.rebindRan(ue, oldK, newK)
	// Re-establish the RAN-side tunnel; the gNB answers with its DL TEID
	// and handleSessionResourceResponse re-activates the UPF path.
	bp := nasBuf()
	pdu, _ := nas.AppendMarshal(*bp, &nas.ServiceAccept{PduSessionID: sessID})
	g.send(&ngap.PDUSessionResourceSetupRequest{
		RanUeID: ranUeID, AmfUeID: ue.amfUeID, PduSessionID: sessID,
		UpfTEID: upfTEID, UpfAddr: upfAddr, Qfi: 9, NasPdu: pdu,
	})
	putNASBuf(bp, pdu)
}

// --- N2 handover ---

func (a *AMF) handleHandoverRequired(g *gnbConn, m *ngap.HandoverRequired) {
	ue := a.ueByAmfID(m.AmfUeID)
	if ue == nil {
		return
	}
	a.gmu.Lock()
	target := a.gnbs[m.TargetGnbID]
	a.gmu.Unlock()
	if target == nil {
		a.Logf("amf: handover to unknown gNB %d", m.TargetGnbID)
		return
	}
	sp := a.tracec.Load().Start("amf.ho.prepare")
	defer sp.End()
	// Smart buffering: start parking DL packets at the UPF before the UE
	// detaches from the source cell (§3.3).
	if _, err := a.smf.Invoke(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
		SmContextRef: ue.smRef, HoState: "PREPARING", DataForwarding: true,
	}); err != nil {
		a.Logf("amf: HO prepare failed: %v", err)
		return
	}
	ue.mu.Lock()
	ue.hoSrcGnb = g
	ue.hoSrcRanUeID = m.RanUeID
	ue.hoTarget = target
	ue.mu.Unlock()
	target.send(&ngap.HandoverRequest{
		AmfUeID: ue.amfUeID, PduSessionID: ue.pduSessionID,
		UpfTEID: ue.upfTEID, UpfAddr: ue.upfAddr,
	})
}

func (a *AMF) handleHandoverRequestAck(g *gnbConn, m *ngap.HandoverRequestAck) {
	ue := a.ueByAmfID(m.AmfUeID)
	if ue == nil {
		return
	}
	sp := a.tracec.Load().Start("amf.ho.command")
	defer sp.End()
	oldK := ranKeyOf(ue)
	ue.mu.Lock()
	src := ue.hoSrcGnb
	srcRanUeID := ue.hoSrcRanUeID
	ue.ranUeID = m.NewRanUeID
	ue.gnb = g
	// Stash the target tunnel for the completion step.
	targetTEID, targetAddr := m.GnbTEID, m.GnbAddr
	ue.mu.Unlock()
	newK := ranKey{ranUeID: m.NewRanUeID}
	if g != nil {
		newK.gnbID = g.id
	}
	a.rebindRan(ue, oldK, newK)
	// The tunnel stash lives in the UE's own shard (same key, same lock).
	sh := a.ueShardOf(ue.amfUeID)
	sh.mu.Lock()
	sh.hoTunnels[ue.amfUeID] = hoTunnel{teid: targetTEID, addr: targetAddr}
	sh.mu.Unlock()
	if src != nil {
		src.send(&ngap.HandoverCommand{RanUeID: srcRanUeID, TargetGnbID: g.id})
	}
}

func (a *AMF) handleHandoverNotify(g *gnbConn, m *ngap.HandoverNotify) {
	ue := a.ueByAmfID(m.AmfUeID)
	if ue == nil {
		return
	}
	sp := a.tracec.Load().Start("amf.ho.switch")
	defer sp.End()
	sh := a.ueShardOf(ue.amfUeID)
	sh.mu.Lock()
	tun := sh.hoTunnels[ue.amfUeID]
	delete(sh.hoTunnels, ue.amfUeID)
	sh.mu.Unlock()
	// Path switch: flip the UPF's DL FAR to the target gNB; buffered
	// packets drain in order toward the new cell.
	if _, err := a.smf.Invoke(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
		SmContextRef: ue.smRef, HoState: "COMPLETED",
		TargetGnbAddr: tun.addr, TargetGnbTEID: tun.teid,
	}); err != nil {
		a.Logf("amf: HO complete failed: %v", err)
		return
	}
	// Release the UE context at the source gNB.
	ue.mu.Lock()
	src := ue.hoSrcGnb
	srcRanUeID := ue.hoSrcRanUeID
	ue.hoSrcGnb, ue.hoTarget = nil, nil
	ue.mu.Unlock()
	if src != nil {
		src.send(&ngap.UEContextReleaseCommand{RanUeID: srcRanUeID, AmfUeID: ue.amfUeID})
	}
	a.Logf("amf: handover of %s to gNB %d complete", ue.supi, g.id)
}

// hoTunnel stashes a target gNB tunnel between HO ack and notify.
type hoTunnel struct {
	teid uint32
	addr string
}
