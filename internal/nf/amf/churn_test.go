// Churn and hammer tests for the sharded UE state: full
// register→establish→deregister cycles must leave zero residue in any
// shard or secondary index, the UE-IP free list must actually recycle,
// restored allocators must resume above everything they restored, and
// all of it must hold under concurrent mutation with a snapshotter
// racing the churn (the million-UE-storm shape of §5.4, shrunk to CI
// scale).
package amf_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"l25gc/internal/nas"
	"l25gc/internal/nf/amf"
	"l25gc/internal/nf/udm"
	"l25gc/internal/ngap"
	"l25gc/internal/testutil"
)

// dialGnbLong is dialGnb with a caller-chosen deadline: churn runs push
// thousands of procedures through one connection and outlive the default
// 20s budget under the race detector.
func dialGnbLong(t *testing.T, addr string, id uint32, deadline time.Duration) *rawGnb {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial gNB %d: %v", id, err)
	}
	c.SetDeadline(time.Now().Add(deadline))
	g := &rawGnb{t: t, id: id, conn: ngap.NewConn(c)}
	t.Cleanup(func() { g.conn.Close() })
	g.send(&ngap.NGSetupRequest{GnbID: id, GnbName: "gnb-churn", Tac: 1})
	if resp := recvMsg[*ngap.NGSetupResponse](g); !resp.Accepted {
		t.Fatalf("gNB %d: NGSetup rejected", id)
	}
	return g
}

// registerUE walks one UE through registration and returns its IDs.
func registerUE(t *testing.T, g *rawGnb, ranUeID uint64, supi string) (amfUeID uint64, guti string) {
	t.Helper()
	pdu, _ := nas.Marshal(&nas.RegistrationRequest{Suci: supi, Capabilities: 0xf})
	g.send(&ngap.InitialUEMessage{RanUeID: ranUeID, NasPdu: pdu})
	chal, amfUeID := recvNAS(g, nas.MsgAuthenticationRequest)
	sendNAS(g, ranUeID, amfUeID, &nas.AuthenticationResponse{
		ResStar: udm.DeriveRes(testK, chal.(*nas.AuthenticationRequest).Rand),
	})
	recvNAS(g, nas.MsgSecurityModeCommand)
	sendNAS(g, ranUeID, amfUeID, &nas.SecurityModeComplete{IMEISV: "imeisv-" + supi})
	acc, _ := recvNAS(g, nas.MsgRegistrationAccept)
	guti = acc.(*nas.RegistrationAccept).Guti
	if guti == "" {
		t.Fatalf("UE %s: registered without GUTI", supi)
	}
	sendNAS(g, ranUeID, amfUeID, &nas.RegistrationComplete{Ack: true})
	return amfUeID, guti
}

// establishSession sets up the PDU session and returns the UE IP the SMF
// allocated — the observable the free-list reuse assertions key on.
func establishSession(t *testing.T, g *rawGnb, ranUeID, amfUeID uint64, gnbTEID uint32) string {
	t.Helper()
	sendNAS(g, ranUeID, amfUeID, &nas.PDUSessionEstablishmentRequest{
		PduSessionID: 5, Dnn: "internet", SscMode: 1,
	})
	acc, _ := recvNAS(g, nas.MsgPDUSessionEstablishmentAccept)
	g.send(&ngap.PDUSessionResourceSetupResponse{
		RanUeID: ranUeID, PduSessionID: 5, GnbTEID: gnbTEID, GnbAddr: "192.168.1.9",
	})
	return acc.(*nas.PDUSessionEstablishmentAccept).UeIPv4
}

// deregisterUE detaches the UE and waits for the release command, so the
// whole cycle is synchronous from the test's point of view.
func deregisterUE(t *testing.T, g *rawGnb, ranUeID, amfUeID uint64, guti string) {
	t.Helper()
	sendNAS(g, ranUeID, amfUeID, &nas.DeregistrationRequest{Guti: guti})
	recvMsg[*ngap.UEContextReleaseCommand](g)
}

func churnUEs(t *testing.T) int {
	if v := os.Getenv("L25GC_CHURN_UES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad L25GC_CHURN_UES=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 500
	}
	return 10000
}

// TestChurnNoStaleState runs full register→establish→deregister cycles
// at 10k UEs (L25GC_CHURN_UES to override, 500 under -short) and asserts
// the two bugs the global locks used to hide stay fixed: every map —
// primary and secondary index alike — converges back to zero
// cardinality, and the SMF's UE-IP free list recycles instead of
// marching through the pool.
func TestChurnNoStaleState(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	n := churnUEs(t)
	m := newMesh(t)
	m.provision(2, n) // imsi-2 .. imsi-<n+1>; imsi-1 is pre-provisioned
	a, err := amf.New(amf.Config{
		Name: "amf-churn", Guami: "guami-1", Addr: "127.0.0.1:0", Shards: 4,
	}, m.ausf, m.udm, m.pcf, m.smf)
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}
	defer a.Close()
	g := dialGnbLong(t, a.N2Addr(), 1, 10*time.Minute)

	ips := make(map[string]int)
	for i := 0; i < n; i++ {
		supi := fmt.Sprintf("imsi-%d", i+2)
		ranUeID := uint64(i + 1)
		amfUeID, guti := registerUE(t, g, ranUeID, supi)
		ip := establishSession(t, g, ranUeID, amfUeID, uint32(0x4000+i))
		if ip == "" {
			t.Fatalf("UE %s: session accepted without an IP", supi)
		}
		ips[ip]++
		deregisterUE(t, g, ranUeID, amfUeID, guti)
	}

	// Sequential churn must ride the free list: every cycle reuses the
	// one released address instead of consuming a fresh one.
	if len(ips) != 1 {
		t.Fatalf("sequential churn consumed %d distinct UE IPs, want 1 (free list not reused): %v", len(ips), ips)
	}
	if c := (amf.Cardinalities{}); a.Cardinalities() != c {
		t.Fatalf("stale AMF state after full churn: %+v", a.Cardinalities())
	}
	if s := m.smfNF.Sessions(); s != 0 {
		t.Fatalf("smf sessions = %d after full churn, want 0", s)
	}
	if free := m.smfNF.FreeIPs(); free != 1 {
		t.Fatalf("smf free list holds %d entries after full churn, want 1", free)
	}
}

// TestRestoreReseedsAllocator restores a mid-storm checkpoint into a
// replica with a *different* shard count and keeps registering: the
// striped UE-ID allocator must resume strictly above everything in the
// checkpoint, or a new UE silently overwrites a restored one.
func TestRestoreReseedsAllocator(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := newMesh(t)
	m.provision(2, 8)
	primary, err := amf.New(amf.Config{
		Name: "amf-seed", Guami: "guami-1", Addr: "127.0.0.1:0", Shards: 2,
	}, m.ausf, m.udm, m.pcf, m.smf)
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}
	g := dialGnbLong(t, primary.N2Addr(), 1, time.Minute)

	seen := make(map[uint64]string)
	for i := 0; i < 5; i++ {
		supi := fmt.Sprintf("imsi-%d", i+1)
		amfUeID, _ := registerUE(t, g, uint64(i+1), supi)
		if prev, dup := seen[amfUeID]; dup {
			t.Fatalf("amfUeID %#x assigned to both %s and %s", amfUeID, prev, supi)
		}
		seen[amfUeID] = supi
	}
	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	primary.Close()

	replica, err := amf.New(amf.Config{
		Name: "amf-reseed", Guami: "guami-1", Addr: "127.0.0.1:0", Shards: 4,
	}, m.ausf, m.udm, m.pcf, m.smf)
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}
	defer replica.Close()
	if err := replica.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := replica.Cardinalities().Ues; got != 5 {
		t.Fatalf("replica restored %d UEs, want 5", got)
	}

	// Registrations continue on the replica mid-storm. Any allocator
	// that restarted from its zero point would hand out an ID already
	// owned by a restored UE and the cardinality would stall.
	g2 := dialGnbLong(t, replica.N2Addr(), 1, time.Minute)
	for i := 5; i < 8; i++ {
		supi := fmt.Sprintf("imsi-%d", i+1)
		amfUeID, _ := registerUE(t, g2, uint64(i+1), supi)
		if prev, dup := seen[amfUeID]; dup {
			t.Fatalf("post-restore amfUeID %#x collides with restored UE %s", amfUeID, prev)
		}
		seen[amfUeID] = supi
	}
	if got := replica.Cardinalities().Ues; got != 8 {
		t.Fatalf("replica holds %d UEs after post-restore registrations, want 8", got)
	}
}

// TestChurnHammer races concurrent registration/session/handover/detach
// cycles across shards against a snapshotter loop, then proves nothing
// was lost, duplicated, or left dangling: cardinalities match the UEs
// deliberately left registered, snapshots are byte-deterministic, and a
// restore round-trips to the identical encoding. Run under -race this is
// the lock-order proof for the two-shard handover path.
func TestChurnHammer(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	const workers = 4
	cycles := 8
	if testing.Short() {
		cycles = 3
	}
	m := newMesh(t)
	m.provision(100, workers*cycles+workers)
	a, err := amf.New(amf.Config{
		Name: "amf-hammer", Guami: "guami-1", Addr: "127.0.0.1:0", Shards: 4,
	}, m.ausf, m.udm, m.pcf, m.smf)
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}
	defer a.Close()

	var wg sync.WaitGroup
	done := make(chan struct{})
	// Snapshotter races the churn: it must never deadlock against the
	// two-shard handover lock order and never observe a torn state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := a.Snapshot(); err != nil {
				t.Errorf("snapshot during churn: %v", err)
				return
			}
		}
	}()

	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := dialGnbLong(t, a.N2Addr(), uint32(100+2*w), 5*time.Minute)
			dst := dialGnbLong(t, a.N2Addr(), uint32(101+2*w), 5*time.Minute)
			for c := 0; c < cycles; c++ {
				supi := fmt.Sprintf("imsi-%d", 100+w*cycles+c)
				srcRan := uint64(1000*w + 2*c + 1)
				dstRan := uint64(1000*w + 2*c + 2)
				amfUeID, guti := registerUE(t, src, srcRan, supi)
				establishSession(t, src, srcRan, amfUeID, uint32(0x5000+w*cycles+c))
				// N2 handover src→dst: the cross-shard path.
				src.send(&ngap.HandoverRequired{RanUeID: srcRan, AmfUeID: amfUeID, TargetGnbID: uint32(101 + 2*w), Cause: "radio"})
				recvMsg[*ngap.HandoverRequest](dst)
				dst.send(&ngap.HandoverRequestAck{
					AmfUeID: amfUeID, NewRanUeID: dstRan, GnbTEID: uint32(0x6000 + w*cycles + c), GnbAddr: "192.168.1.10",
				})
				recvMsg[*ngap.HandoverCommand](src)
				dst.send(&ngap.HandoverNotify{AmfUeID: amfUeID, RanUeID: dstRan})
				recvMsg[*ngap.UEContextReleaseCommand](src)
				deregisterUE(t, dst, dstRan, amfUeID, guti)
			}
			// Leave one UE registered per worker so the final snapshot
			// has real state to prove determinism on.
			supi := fmt.Sprintf("imsi-%d", 100+workers*cycles+w)
			ranUeID := uint64(1000*w + 999)
			amfUeID, _ := registerUE(t, src, ranUeID, supi)
			establishSession(t, src, ranUeID, amfUeID, uint32(0x7000+w))
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-errc
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	card := a.Cardinalities()
	if card.Ues != workers || card.BySupi != workers || card.ByGuti != workers ||
		card.ByRan != workers || card.HoTunnels != 0 {
		t.Fatalf("hammer left wrong residue, want %d registered UEs and nothing else: %+v", workers, card)
	}
	if s := m.smfNF.Sessions(); s != workers {
		t.Fatalf("smf sessions = %d after hammer, want %d", s, workers)
	}

	snap1, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	snap2, _ := a.Snapshot()
	if !bytes.Equal(snap1, snap2) {
		t.Fatal("quiesced snapshot is not byte-deterministic")
	}
	// Restore round trip: the replica must re-encode the identical bytes
	// even at a different shard count (shard layout is memory-only).
	replica, err := amf.New(amf.Config{
		Name: "amf-hammer-replica", Guami: "guami-1", Addr: "127.0.0.1:0", Shards: 2,
	}, m.ausf, m.udm, m.pcf, m.smf)
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}
	defer replica.Close()
	if err := replica.Restore(snap1); err != nil {
		t.Fatalf("restore: %v", err)
	}
	snap3, err := replica.Snapshot()
	if err != nil {
		t.Fatalf("replica snapshot: %v", err)
	}
	if !bytes.Equal(snap1, snap3) {
		t.Fatal("snapshot does not round-trip byte-identically through restore at a different shard count")
	}
}
