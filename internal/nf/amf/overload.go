package amf

import (
	"time"

	"l25gc/internal/nas"
	"l25gc/internal/ngap"
	"l25gc/internal/overload"
)

// N2 admission: every inbound NGAP message is classified before the
// supervisor's ingress tap, so shed work is never counter-stamped into
// the packet log (replay must only re-execute admitted work). Shed
// requests get explicit NAS pushback — RegistrationReject /
// ServiceReject / PDUSessionEstablishmentReject with a T3346-style
// backoff timer from the controller's deterministic schedule — instead of
// silently starving behind a growing queue.

// SetOverload installs (or, with nil, removes) the admission controller
// gating this AMF's N2 ingress. The controller is shared across
// supervised generations: tokens admitted by a failed instance are
// released by its promoted replica through the snapshot's regPending
// flags.
func (a *AMF) SetOverload(c *overload.Controller) {
	if c == nil {
		a.ctrl.Store(nil)
		return
	}
	a.ctrl.Store(c)
}

// Overload returns the installed controller (nil when ungated).
func (a *AMF) Overload() *overload.Controller { return a.ctrl.Load() }

// classifyNGAP maps one inbound NGAP message to its admission class,
// peeking the NAS type byte where the class depends on the N1 payload.
// Mid-procedure messages and everything that reduces load (deregistration,
// UE context release) classify as Drain and are never shed.
func classifyNGAP(msg ngap.Message) (overload.Class, nas.MsgType) {
	switch m := msg.(type) {
	case *ngap.InitialUEMessage:
		if len(m.NasPdu) > 0 {
			switch nas.MsgType(m.NasPdu[0]) {
			case nas.MsgRegistrationRequest:
				return overload.ClassRegistration, nas.MsgRegistrationRequest
			case nas.MsgServiceRequest:
				return overload.ClassEmergency, nas.MsgServiceRequest
			}
		}
	case *ngap.UplinkNASTransport:
		if len(m.NasPdu) > 0 && nas.MsgType(m.NasPdu[0]) == nas.MsgPDUSessionEstablishmentRequest {
			return overload.ClassSession, nas.MsgPDUSessionEstablishmentRequest
		}
	case *ngap.HandoverRequired:
		return overload.ClassEmergency, 0
	}
	return overload.ClassDrain, 0
}

// gateNGAP runs the admission decision for one live inbound message.
// It returns ok=false when the message was shed (pushback already sent);
// release, when non-nil, must run after the message has been applied.
// Registration admissions return a nil release: their token spans the
// whole multi-message handshake and is released through regPending.
func (a *AMF) gateNGAP(conn *ngap.Conn, g *gnbConn, msg ngap.Message) (release func(), ok bool) {
	ctrl := a.ctrl.Load()
	if ctrl == nil {
		return nil, true
	}
	cl, nt := classifyNGAP(msg)
	if cl == overload.ClassDrain {
		return nil, true
	}
	if !ctrl.Admit(cl) {
		a.sendShedReject(conn, g, msg, ctrl.Backoff(cl), nt)
		return nil, false
	}
	if nt == nas.MsgRegistrationRequest {
		return nil, true
	}
	return func() { ctrl.Release(cl) }, true
}

// sendShedReject pushes an explicit NAS reject (with backoff timer) back
// to the UE whose request was shed. Shed handover preparation has no NAS
// counterpart; it is dropped and the source RAN re-attempts.
func (a *AMF) sendShedReject(conn *ngap.Conn, g *gnbConn, msg ngap.Message, backoff time.Duration, nt nas.MsgType) {
	ms := uint32(backoff.Milliseconds())
	if ms == 0 {
		ms = 1
	}
	bp := nasBuf()
	var (
		pdu     []byte
		ranUeID uint64
		amfUeID uint64
	)
	switch m := msg.(type) {
	case *ngap.InitialUEMessage:
		ranUeID = m.RanUeID
		switch nt {
		case nas.MsgRegistrationRequest:
			pdu, _ = nas.AppendMarshal(*bp, &nas.RegistrationReject{
				Cause: nas.CauseCongestion, BackoffMs: ms,
			})
		case nas.MsgServiceRequest:
			pdu, _ = nas.AppendMarshal(*bp, &nas.ServiceReject{
				Cause: nas.CauseCongestion, BackoffMs: ms,
			})
		}
	case *ngap.UplinkNASTransport:
		ranUeID, amfUeID = m.RanUeID, m.AmfUeID
		sessID := uint32(0)
		if n, err := nas.Unmarshal(m.NasPdu); err == nil {
			if req, okReq := n.(*nas.PDUSessionEstablishmentRequest); okReq {
				sessID = req.PduSessionID
			}
		}
		pdu, _ = nas.AppendMarshal(*bp, &nas.PDUSessionEstablishmentReject{
			PduSessionID: sessID, Cause: nas.CauseInsufficientResources, BackoffMs: ms,
		})
	}
	if pdu == nil {
		putNASBuf(bp, *bp)
		a.Logf("amf: shed %T without NAS pushback", msg)
		return
	}
	defer putNASBuf(bp, pdu)
	down := &ngap.DownlinkNASTransport{RanUeID: ranUeID, AmfUeID: amfUeID, NasPdu: pdu}
	var err error
	if g != nil {
		err = g.send(down)
	} else if conn != nil {
		err = conn.Send(down)
	}
	if err != nil {
		a.Logf("amf: shed reject send failed: %v", err)
	}
}

// releaseReg returns the UE's registration admission token, exactly once.
func (a *AMF) releaseReg(ue *ueContext) {
	ue.mu.Lock()
	pending := ue.regPending
	ue.regPending = false
	start := ue.regStart
	ue.mu.Unlock()
	if !pending {
		return
	}
	if ctrl := a.ctrl.Load(); ctrl != nil {
		ctrl.Release(overload.ClassRegistration)
		if start != 0 {
			ctrl.Observe(a.clock() - start)
		}
	}
}
