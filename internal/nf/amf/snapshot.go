//l25gc:deterministic — snapshot encoding must be byte-stable (checkpoint digests compare across generations)

package amf

import (
	"encoding/json"
	"sort"

	"l25gc/internal/ring"
)

// The AMF's snapshot is the §3.5.2 control-plane checkpoint: every UE
// context (registration state, GUTI, serving cell, session anchors,
// in-flight handover bookkeeping) plus the known RAN topology and the
// UE-ID allocator, serialized deterministically — records are sorted by
// ID so identical state always encodes to identical bytes, which the
// replica-sync tests rely on. gNB connections are deliberately absent:
// sockets die with the failed instance, so a restored replica holds
// detached gNB records that re-bind on the next NGSetup.

type gnbRecord struct {
	ID   uint32 `json:"id"`
	Name string `json:"name,omitempty"`
}

type ueRecord struct {
	AmfUeID uint64 `json:"amfUeId"`
	RanUeID uint64 `json:"ranUeId"`
	GnbID   uint32 `json:"gnbId,omitempty"`
	HasGnb  bool   `json:"hasGnb,omitempty"`

	Suci      string `json:"suci,omitempty"`
	Supi      string `json:"supi,omitempty"`
	Guti      string `json:"guti,omitempty"`
	AuthCtxID string `json:"authCtxId,omitempty"`
	State     int    `json:"state"`

	PduSessionID uint32 `json:"pduSessionId,omitempty"`
	SmRef        string `json:"smRef,omitempty"`
	UpfTEID      uint32 `json:"upfTeid,omitempty"`
	UpfAddr      string `json:"upfAddr,omitempty"`

	Idle bool `json:"idle,omitempty"`
	// RegPending carries the held registration admission token across a
	// failover: the promoted generation releases it when the replayed
	// handshake finishes (or fails), keeping the shared overload
	// controller's depth accounting balanced.
	RegPending bool `json:"regPending,omitempty"`

	HasHoSrc     bool   `json:"hasHoSrc,omitempty"`
	HoSrcGnbID   uint32 `json:"hoSrcGnbId,omitempty"`
	HoSrcRanUeID uint64 `json:"hoSrcRanUeId,omitempty"`
	HasHoTarget  bool   `json:"hasHoTarget,omitempty"`
	HoTargetID   uint32 `json:"hoTargetId,omitempty"`
}

type hoTunnelRecord struct {
	AmfUeID uint64 `json:"amfUeId"`
	TEID    uint32 `json:"teid"`
	Addr    string `json:"addr"`
}

type amfSnapshot struct {
	NextUeID  uint64           `json:"nextUeId"`
	Gnbs      []gnbRecord      `json:"gnbs,omitempty"`
	Ues       []ueRecord       `json:"ues,omitempty"`
	HoTunnels []hoTunnelRecord `json:"hoTunnels,omitempty"`
}

// Snapshot implements resilience.Snapshotter with a deterministic
// encoding of the full mobility-management state. Shards are visited in
// index order (one lock at a time) and the collected records are sorted
// by ID, so identical state encodes to identical bytes regardless of the
// shard count or map iteration order. NextUeID persists the allocator's
// high-water mark — at one shard exactly the legacy counter value.
func (a *AMF) Snapshot() ([]byte, error) {
	snap := amfSnapshot{NextUeID: a.ueAlloc.HighWater()}
	a.gmu.Lock()
	for _, g := range a.gnbs {
		snap.Gnbs = append(snap.Gnbs, gnbRecord{ID: g.id, Name: g.name})
	}
	a.gmu.Unlock()
	var ues []*ueContext
	for _, sh := range a.ueShards {
		sh.mu.Lock()
		for _, ue := range sh.ues {
			ues = append(ues, ue)
		}
		for id, t := range sh.hoTunnels {
			snap.HoTunnels = append(snap.HoTunnels, hoTunnelRecord{AmfUeID: id, TEID: t.teid, Addr: t.addr})
		}
		sh.mu.Unlock()
	}
	// Deterministic per-UE lock order for the marshal loop below (the
	// final record sort alone would leave the locking order map-random).
	sort.Slice(ues, func(i, j int) bool { return ues[i].amfUeID < ues[j].amfUeID })

	for _, ue := range ues {
		ue.mu.Lock()
		rec := ueRecord{
			AmfUeID: ue.amfUeID, RanUeID: ue.ranUeID,
			Suci: ue.suci, Supi: ue.supi, Guti: ue.guti,
			AuthCtxID: ue.authCtxID, State: int(ue.state),
			PduSessionID: ue.pduSessionID, SmRef: ue.smRef,
			UpfTEID: ue.upfTEID, UpfAddr: ue.upfAddr,
			Idle: ue.idle, RegPending: ue.regPending,
		}
		if ue.gnb != nil {
			rec.HasGnb, rec.GnbID = true, ue.gnb.id
		}
		if ue.hoSrcGnb != nil {
			rec.HasHoSrc, rec.HoSrcGnbID = true, ue.hoSrcGnb.id
			rec.HoSrcRanUeID = ue.hoSrcRanUeID
		}
		if ue.hoTarget != nil {
			rec.HasHoTarget, rec.HoTargetID = true, ue.hoTarget.id
		}
		ue.mu.Unlock()
		snap.Ues = append(snap.Ues, rec)
	}

	sort.Slice(snap.Gnbs, func(i, j int) bool { return snap.Gnbs[i].ID < snap.Gnbs[j].ID })
	sort.Slice(snap.Ues, func(i, j int) bool { return snap.Ues[i].AmfUeID < snap.Ues[j].AmfUeID })
	sort.Slice(snap.HoTunnels, func(i, j int) bool { return snap.HoTunnels[i].AmfUeID < snap.HoTunnels[j].AmfUeID })
	return json.Marshal(snap)
}

// Restore implements resilience.Snapshotter: the AMF's state becomes the
// snapshot's. gNB records already attached to this instance keep their
// live connections; everything else is detached until the RAN re-binds.
// The ID allocator is re-seeded strictly above both the persisted
// high-water mark and the largest restored UE ID, so a promoted replica
// can never hand out an amfUeID colliding with restored state — even when
// its shard count differs from the snapshotting instance's.
func (a *AMF) Restore(b []byte) error {
	var snap amfSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return err
	}

	a.gmu.Lock()
	for _, gr := range snap.Gnbs {
		g := a.gnbs[gr.ID]
		if g == nil {
			g = &gnbConn{id: gr.ID}
			a.gnbs[gr.ID] = g
		}
		g.name = gr.Name
	}
	resolve := func(id uint32) *gnbConn {
		g := a.gnbs[id]
		if g == nil {
			g = &gnbConn{id: id}
			a.gnbs[id] = g
		}
		return g
	}

	shards := len(a.ueShards)
	ueShards := newUeShards(shards)
	idxShards := newIdxShards(shards)
	hw := snap.NextUeID
	for _, rec := range snap.Ues {
		ue := &ueContext{
			amfUeID: rec.AmfUeID, ranUeID: rec.RanUeID,
			suci: rec.Suci, supi: rec.Supi, guti: rec.Guti,
			authCtxID: rec.AuthCtxID, state: regState(rec.State),
			pduSessionID: rec.PduSessionID, smRef: rec.SmRef,
			upfTEID: rec.UpfTEID, upfAddr: rec.UpfAddr,
			idle: rec.Idle, regPending: rec.RegPending,
		}
		if rec.HasGnb {
			ue.gnb = resolve(rec.GnbID)
		}
		if rec.HasHoSrc {
			ue.hoSrcGnb = resolve(rec.HoSrcGnbID)
			ue.hoSrcRanUeID = rec.HoSrcRanUeID
		}
		if rec.HasHoTarget {
			ue.hoTarget = resolve(rec.HoTargetID)
		}
		if ue.amfUeID > hw {
			hw = ue.amfUeID
		}
		ueShards[ring.Fmix64(ue.amfUeID)%uint64(shards)].ues[ue.amfUeID] = ue
		if ue.supi != "" {
			idxShards[a.supiShardIdx(ue.supi)].bySupi[ue.supi] = ue
		}
		if ue.guti != "" {
			idxShards[a.gutiShardIdx(ue.guti)].byGuti[ue.guti] = ue
		}
		if rec.HasGnb {
			k := ranKey{gnbID: rec.GnbID, ranUeID: rec.RanUeID}
			idxShards[a.ranShardIdx(k)].byRan[k] = ue
		}
	}
	for _, tr := range snap.HoTunnels {
		sh := ueShards[ring.Fmix64(tr.AmfUeID)%uint64(shards)]
		sh.hoTunnels[tr.AmfUeID] = hoTunnel{teid: tr.TEID, addr: tr.Addr}
	}
	// Swap the rebuilt maps in shard by shard under each shard's lock —
	// the shard slices themselves are immutable after New.
	for i, sh := range a.ueShards {
		sh.mu.Lock()
		sh.ues = ueShards[i].ues
		sh.hoTunnels = ueShards[i].hoTunnels
		sh.mu.Unlock()
	}
	for i, sh := range a.idxShards {
		sh.mu.Lock()
		sh.bySupi = idxShards[i].bySupi
		sh.byGuti = idxShards[i].byGuti
		sh.byRan = idxShards[i].byRan
		sh.mu.Unlock()
	}
	a.ueAlloc.Seed(hw)
	a.gmu.Unlock()
	return nil
}
