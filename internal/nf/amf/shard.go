package amf

import (
	"sync"

	"l25gc/internal/nfid"
	"l25gc/internal/ring"
)

// Sharded UE state (DESIGN §16). The AMF's per-UE tables are split into N
// independent shards so a registration storm contends on N mutexes instead
// of one. Two shard families exist:
//
//   - ueShard holds the primary amfUeID→ueContext map and the pending-HO
//     tunnel stash (keyed by amfUeID, so a UE and its HO tunnel always
//     share one shard and one lock);
//   - idxShard holds the secondary lookup indexes: SUPI, GUTI, and the
//     (gnbID, ranUeID) index that replaced the old O(n) scan on PDU
//     session resource responses.
//
// Lock-order rule: ueShard.mu before idxShard.mu; within one family,
// ascending shard index (lockIdxPair). ueContext.mu is a leaf. The gnbs
// table keeps its own mutex (a.gmu), taken alone.

// ueShard is one slice of the primary UE table.
type ueShard struct {
	mu        sync.Mutex
	ues       map[uint64]*ueContext
	hoTunnels map[uint64]hoTunnel
}

// ranKey identifies a UE by its RAN-side coordinates.
type ranKey struct {
	gnbID   uint32
	ranUeID uint64
}

// idxShard is one slice of the secondary indexes.
type idxShard struct {
	mu     sync.Mutex
	bySupi map[string]*ueContext
	byGuti map[string]*ueContext
	byRan  map[ranKey]*ueContext
}

func newUeShards(n int) []*ueShard {
	s := make([]*ueShard, n)
	for i := range s {
		s[i] = &ueShard{
			ues:       make(map[uint64]*ueContext),
			hoTunnels: make(map[uint64]hoTunnel),
		}
	}
	return s
}

func newIdxShards(n int) []*idxShard {
	s := make([]*idxShard, n)
	for i := range s {
		s[i] = &idxShard{
			bySupi: make(map[string]*ueContext),
			byGuti: make(map[string]*ueContext),
			byRan:  make(map[ranKey]*ueContext),
		}
	}
	return s
}

func (k ranKey) hash() uint64 {
	return ring.Fmix64(uint64(k.gnbID)) ^ k.ranUeID
}

func (a *AMF) ueShardOf(amfUeID uint64) *ueShard {
	return a.ueShards[ring.Fmix64(amfUeID)%uint64(len(a.ueShards))]
}

func (a *AMF) idxShardIdx(hash uint64) int {
	return int(ring.Fmix64(hash) % uint64(len(a.idxShards)))
}

func (a *AMF) supiShardIdx(supi string) int { return a.idxShardIdx(nfid.StrHash(supi)) }
func (a *AMF) gutiShardIdx(guti string) int { return a.idxShardIdx(nfid.StrHash(guti)) }
func (a *AMF) ranShardIdx(k ranKey) int     { return a.idxShardIdx(k.hash()) }

// lockIdxPair acquires two index shards in ascending index order — the
// deterministic two-shard lock-order rule for cross-index operations
// (SUPI+GUTI pair insert/delete, byRan rebind). i == j locks once.
func (a *AMF) lockIdxPair(i, j int) {
	if j < i {
		i, j = j, i
	}
	a.idxShards[i].mu.Lock()
	if j != i {
		a.idxShards[j].mu.Lock()
	}
}

// unlockIdxPair releases what lockIdxPair acquired.
func (a *AMF) unlockIdxPair(i, j int) {
	if j < i {
		i, j = j, i
	}
	if j != i {
		a.idxShards[j].mu.Unlock()
	}
	a.idxShards[i].mu.Unlock()
}

// Cardinalities reports the sizes of the primary table and every
// secondary index — the leak audit surface: after a full
// register→deregister cycle all five must converge to zero.
type Cardinalities struct {
	Ues, BySupi, ByGuti, ByRan, HoTunnels int
}

// Cardinalities sums map sizes across shards (shards locked one at a
// time in index order; the result is exact only on a quiesced AMF).
func (a *AMF) Cardinalities() Cardinalities {
	var c Cardinalities
	for _, sh := range a.ueShards {
		sh.mu.Lock()
		c.Ues += len(sh.ues)
		c.HoTunnels += len(sh.hoTunnels)
		sh.mu.Unlock()
	}
	for _, sh := range a.idxShards {
		sh.mu.Lock()
		c.BySupi += len(sh.bySupi)
		c.ByGuti += len(sh.byGuti)
		c.ByRan += len(sh.byRan)
		sh.mu.Unlock()
	}
	return c
}

// Shards reports the configured shard count.
func (a *AMF) Shards() int { return len(a.ueShards) }
