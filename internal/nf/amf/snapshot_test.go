// Package amf_test drives snapshot/restore round trips against a live
// control-plane mesh: a raw NGAP gNB walks a UE part-way through a
// procedure, the AMF is checkpointed mid-flight, the checkpoint is
// restored into a *fresh* AMF instance, and the procedure then completes
// against the replica — no NAS step repeated, no re-registration. This
// is the §3.5.2 control-plane resiliency claim at the single-NF level
// (the supervisor tests exercise the full detect/promote/replay loop).
package amf_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/nas"
	"l25gc/internal/nf/amf"
	"l25gc/internal/nf/ausf"
	"l25gc/internal/nf/pcf"
	"l25gc/internal/nf/smf"
	"l25gc/internal/nf/udm"
	"l25gc/internal/nf/udr"
	"l25gc/internal/ngap"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
	"l25gc/internal/sbi"
	"l25gc/internal/testutil"
	"l25gc/internal/upf"
)

var (
	testK   = []byte("0123456789abcdef")
	testOpc = []byte("fedcba9876543210")
)

// directConn adapts an sbi.Handler to sbi.Conn without a transport.
type directConn struct{ h sbi.Handler }

func (d directConn) Invoke(op sbi.OpID, req codec.Message) (codec.Message, error) {
	return d.h(op, req)
}
func (d directConn) Close() error { return nil }

// mesh is the control-plane neighborhood an AMF needs: AUSF/UDM/PCF/SMF
// plus a real UPF behind the SMF's N4. The mesh is shared across AMF
// generations — exactly the deployment shape under the supervisor, where
// only the failed NF is replaced.
type mesh struct {
	ausf, udm, pcf, smf sbi.Conn
	smfNF               *smf.SMF
	upfState            *upf.State
	subs                *udr.UDR
}

// provision adds n subscribers imsi-<from>..imsi-<from+n-1> for churn and
// hammer tests that need a population beyond the default imsi-1.
func (m *mesh) provision(from, n int) {
	for i := 0; i < n; i++ {
		m.subs.Provision(udr.Subscriber{
			Supi: fmt.Sprintf("imsi-%d", from+i), K: testK, Opc: testOpc,
			Dnn: "internet", AmbrUL: 1e9, AmbrDL: 2e9, Sst: 1, Sd: "010203",
		})
	}
}

func newMesh(t *testing.T) *mesh {
	t.Helper()
	u := udr.New()
	u.Provision(udr.Subscriber{
		Supi: "imsi-1", K: testK, Opc: testOpc,
		Dnn: "internet", AmbrUL: 1e9, AmbrDL: 2e9, Sst: 1, Sd: "010203",
	})
	um := udm.New(directConn{u.Handle})
	au := ausf.New(directConn{um.Handle})
	pc := pcf.New(pcf.Policy{RfspIndex: 1, MbrUL: 1e6, MbrDL: 1e6, Default5QI: 9})

	n3 := pkt.Addr{192, 168, 0, 1}
	smfEP, upfEP := pfcp.NewMemPair(256)
	t.Cleanup(func() { smfEP.Close(); upfEP.Close() })
	st := upf.NewState("ps", 64)
	upf.NewUPFC(st, n3, upfEP)
	s := smf.New(smf.Config{
		NodeID: "smf-test", UPFN3IP: n3, UEPoolBase: pkt.Addr{10, 60, 0, 1},
	}, directConn{um.Handle}, directConn{pc.Handle}, smfEP, func() sbi.Conn { return nil })

	return &mesh{
		ausf: directConn{au.Handle}, udm: directConn{um.Handle},
		pcf: directConn{pc.Handle}, smf: directConn{s.Handle},
		smfNF: s, upfState: st, subs: u,
	}
}

func (m *mesh) newAMF(t *testing.T) *amf.AMF {
	t.Helper()
	a, err := amf.New(amf.Config{Name: "amf-test", Guami: "guami-1", Addr: "127.0.0.1:0"},
		m.ausf, m.udm, m.pcf, m.smf)
	if err != nil {
		t.Fatalf("amf.New: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// rawGnb is a scripted gNB speaking wire NGAP, so tests control exactly
// where in a procedure the snapshot is taken.
type rawGnb struct {
	t    *testing.T
	id   uint32
	conn *ngap.Conn
}

func dialGnb(t *testing.T, addr string, id uint32) *rawGnb {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial gNB %d: %v", id, err)
	}
	c.SetDeadline(time.Now().Add(20 * time.Second))
	g := &rawGnb{t: t, id: id, conn: ngap.NewConn(c)}
	t.Cleanup(func() { g.conn.Close() })
	g.send(&ngap.NGSetupRequest{GnbID: id, GnbName: "gnb-raw", Tac: 1})
	resp := recvMsg[*ngap.NGSetupResponse](g)
	if !resp.Accepted {
		t.Fatalf("gNB %d: NGSetup rejected", id)
	}
	return g
}

func (g *rawGnb) send(m ngap.Message) {
	g.t.Helper()
	if err := g.conn.Send(m); err != nil {
		g.t.Fatalf("gNB %d: send %T: %v", g.id, m, err)
	}
}

// recvMsg reads until a message of type T arrives (other traffic on the
// connection is skipped, as a real gNB would route it elsewhere).
func recvMsg[T ngap.Message](g *rawGnb) T {
	g.t.Helper()
	for {
		m, err := g.conn.Recv()
		if err != nil {
			g.t.Fatalf("gNB %d: recv: %v", g.id, err)
		}
		if want, ok := m.(T); ok {
			return want
		}
	}
}

// recvNAS reads downlink NAS of a specific type, from either transport
// message that carries NAS (DownlinkNASTransport or context setup).
func recvNAS(g *rawGnb, want nas.MsgType) (nas.Message, uint64) {
	g.t.Helper()
	for {
		m, err := g.conn.Recv()
		if err != nil {
			g.t.Fatalf("gNB %d: recv: %v", g.id, err)
		}
		var pdu []byte
		var amfUeID uint64
		switch d := m.(type) {
		case *ngap.DownlinkNASTransport:
			pdu, amfUeID = d.NasPdu, d.AmfUeID
		case *ngap.InitialContextSetupRequest:
			pdu, amfUeID = d.NasPdu, d.AmfUeID
		case *ngap.PDUSessionResourceSetupRequest:
			pdu, amfUeID = d.NasPdu, d.AmfUeID
		default:
			continue
		}
		n, err := nas.Unmarshal(pdu)
		if err != nil {
			g.t.Fatalf("gNB %d: bad NAS: %v", g.id, err)
		}
		if n.NASType() == want {
			return n, amfUeID
		}
	}
}

func sendNAS(g *rawGnb, ranUeID, amfUeID uint64, m nas.Message) {
	g.t.Helper()
	pdu, err := nas.Marshal(m)
	if err != nil {
		g.t.Fatalf("marshal NAS: %v", err)
	}
	g.send(&ngap.UplinkNASTransport{RanUeID: ranUeID, AmfUeID: amfUeID, NasPdu: pdu})
}

// TestAMFSnapshotMidRegistration snapshots the AMF between the
// authentication challenge and the UE's response, restores into a fresh
// AMF, and completes registration there: the challenge is never
// re-issued and the UE never re-registers.
func TestAMFSnapshotMidRegistration(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := newMesh(t)
	primary := m.newAMF(t)
	g := dialGnb(t, primary.N2Addr(), 1)

	pdu, _ := nas.Marshal(&nas.RegistrationRequest{Suci: "imsi-1", Capabilities: 0xf})
	g.send(&ngap.InitialUEMessage{RanUeID: 1, NasPdu: pdu})
	chal, amfUeID := recvNAS(g, nas.MsgAuthenticationRequest)
	auth := chal.(*nas.AuthenticationRequest)

	// Mid-registration checkpoint: the UE context is auth-pending with a
	// live AUSF auth context.
	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	primary.Close()

	replica := m.newAMF(t)
	if err := replica.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The RAN re-attaches to the replica (S-BFD would have steered it);
	// same gNB identity, fresh TCP connection.
	g2 := dialGnb(t, replica.N2Addr(), 1)

	// The UE answers the original challenge — against the replica.
	sendNAS(g2, 1, amfUeID, &nas.AuthenticationResponse{ResStar: udm.DeriveRes(testK, auth.Rand)})
	if _, _ = recvNAS(g2, nas.MsgSecurityModeCommand); true {
		sendNAS(g2, 1, amfUeID, &nas.SecurityModeComplete{IMEISV: "imeisv-1"})
	}
	acc, _ := recvNAS(g2, nas.MsgRegistrationAccept)
	if acc.(*nas.RegistrationAccept).Guti == "" {
		t.Fatal("replica completed registration without assigning a GUTI")
	}
	sendNAS(g2, 1, amfUeID, &nas.RegistrationComplete{Ack: true})
}

// establish runs registration + session establishment against a and
// returns (amfUeID, guti, seid-holding smf session count check happens
// by caller). The gNB answers the resource setup with its DL tunnel.
func establish(t *testing.T, g *rawGnb, gnbTEID uint32, gnbAddr string) (amfUeID uint64, guti string) {
	t.Helper()
	pdu, _ := nas.Marshal(&nas.RegistrationRequest{Suci: "imsi-1", Capabilities: 0xf})
	g.send(&ngap.InitialUEMessage{RanUeID: 1, NasPdu: pdu})
	chal, amfUeID := recvNAS(g, nas.MsgAuthenticationRequest)
	sendNAS(g, 1, amfUeID, &nas.AuthenticationResponse{
		ResStar: udm.DeriveRes(testK, chal.(*nas.AuthenticationRequest).Rand),
	})
	recvNAS(g, nas.MsgSecurityModeCommand)
	sendNAS(g, 1, amfUeID, &nas.SecurityModeComplete{IMEISV: "imeisv-1"})
	acc, _ := recvNAS(g, nas.MsgRegistrationAccept)
	guti = acc.(*nas.RegistrationAccept).Guti
	sendNAS(g, 1, amfUeID, &nas.RegistrationComplete{Ack: true})

	sendNAS(g, 1, amfUeID, &nas.PDUSessionEstablishmentRequest{PduSessionID: 5, Dnn: "internet", SscMode: 1})
	recvNAS(g, nas.MsgPDUSessionEstablishmentAccept)
	g.send(&ngap.PDUSessionResourceSetupResponse{
		RanUeID: 1, PduSessionID: 5, GnbTEID: gnbTEID, GnbAddr: gnbAddr,
	})
	return amfUeID, guti
}

// TestAMFSnapshotMidHandover freezes the AMF between HandoverRequest and
// its Ack — source still serving, target prepared, UPF buffering armed —
// restores into a fresh AMF, and completes the handover against the
// replica: path switch, source release, session intact.
func TestAMFSnapshotMidHandover(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := newMesh(t)
	primary := m.newAMF(t)
	src := dialGnb(t, primary.N2Addr(), 1)
	dst := dialGnb(t, primary.N2Addr(), 2)

	amfUeID, guti := establish(t, src, 7001, "192.168.1.1")
	if guti == "" {
		t.Fatal("no GUTI assigned")
	}

	// Kick off the handover; the target receives HandoverRequest (which
	// also armed smart buffering at the UPF via the SMF).
	src.send(&ngap.HandoverRequired{RanUeID: 1, AmfUeID: amfUeID, TargetGnbID: 2, Cause: "radio"})
	hreq := recvMsg[*ngap.HandoverRequest](dst)
	if hreq.AmfUeID != amfUeID {
		t.Fatalf("handover request for UE %d, want %d", hreq.AmfUeID, amfUeID)
	}

	// Mid-handover checkpoint.
	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Determinism: identical state must encode to identical bytes.
	snap2, _ := primary.Snapshot()
	if !bytes.Equal(snap, snap2) {
		t.Fatal("AMF snapshot encoding is not deterministic")
	}
	primary.Close()

	replica := m.newAMF(t)
	if err := replica.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	src2 := dialGnb(t, replica.N2Addr(), 1)
	dst2 := dialGnb(t, replica.N2Addr(), 2)

	// The target acks toward the replica; the source must receive the
	// HandoverCommand from it — the replica knows the in-flight handover.
	dst2.send(&ngap.HandoverRequestAck{
		AmfUeID: amfUeID, NewRanUeID: 2, GnbTEID: 7002, GnbAddr: "192.168.1.2",
	})
	cmd := recvMsg[*ngap.HandoverCommand](src2)
	if cmd.TargetGnbID != 2 {
		t.Fatalf("handover command to gNB %d, want 2", cmd.TargetGnbID)
	}
	dst2.send(&ngap.HandoverNotify{AmfUeID: amfUeID, RanUeID: 2})
	recvMsg[*ngap.UEContextReleaseCommand](src2)

	// The UPF's DL path now forwards to the target tunnel, and the SM
	// context survived with no re-establishment.
	if m.smfNF.Sessions() != 1 {
		t.Fatalf("smf sessions = %d after handover via replica, want 1", m.smfNF.Sessions())
	}
	ctx, ok := m.upfState.Session(0x101)
	if !ok {
		t.Fatal("UPF lost the session across AMF restore")
	}
	far := ctx.Sess.FAR(2)
	if far == nil || far.Action&rules.FARForward == 0 || far.OuterTEID != 7002 {
		t.Fatalf("DL FAR after replica-driven path switch: %+v", far)
	}
}
