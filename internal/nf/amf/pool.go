package amf

import "sync"

// nasPool recycles downlink NAS PDU buffers on the registration and
// session-establishment hot paths. A PDU built here is embedded in an
// NGAP message and copied into the connection's frame buffer by
// ngap.Conn.Send before the send returns, so the buffer is reusable the
// moment the send call completes — nothing downstream retains it.
var nasPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func nasBuf() *[]byte { return nasPool.Get().(*[]byte) }

// putNASBuf recycles bp, adopting the (possibly re-grown) backing array
// of the encoded PDU.
func putNASBuf(bp *[]byte, used []byte) {
	*bp = used[:0]
	nasPool.Put(bp)
}
