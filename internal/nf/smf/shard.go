package smf

import (
	"sort"
	"sync"

	"l25gc/internal/nfid"
	"l25gc/internal/ring"
)

// Sharded session state (DESIGN §16). The SMF's PDU-session tables are
// split into N independent shards so session-establishment storms contend
// on N mutexes instead of one:
//
//   - sessShard holds the SEID→smContext map (the N4-facing index);
//   - refShard holds the SM-context-reference→smContext map (the
//     SBI-facing index).
//
// The two families are only ever locked one at a time (inserts and
// identity-guarded deletes need no cross-family atomicity: a context is
// published to callers only after both inserts, and removal tolerates a
// reader finding the context in one index mid-teardown — smContext.released
// makes teardown idempotent). Lock order: smContext.mu may be held while a
// shard lock is taken (teardown removes the context from the indexes under
// ctx.mu), but no path holds a shard lock while acquiring smContext.mu —
// lookups drop the shard lock before locking the context — so the order
// stays acyclic.

// sessShard is one slice of the SEID index.
type sessShard struct {
	mu     sync.Mutex
	bySEID map[uint64]*smContext
}

// refShard is one slice of the SM-context-reference index.
type refShard struct {
	mu    sync.Mutex
	byRef map[string]*smContext
}

func newSessShards(n int) []*sessShard {
	s := make([]*sessShard, n)
	for i := range s {
		s[i] = &sessShard{bySEID: make(map[uint64]*smContext)}
	}
	return s
}

func newRefShards(n int) []*refShard {
	s := make([]*refShard, n)
	for i := range s {
		s[i] = &refShard{byRef: make(map[string]*smContext)}
	}
	return s
}

func (s *SMF) sessShardOf(seid uint64) *sessShard {
	return s.sessShards[ring.Fmix64(seid)%uint64(len(s.sessShards))]
}

func (s *SMF) refShardOf(ref string) *refShard {
	return s.refShards[ring.Fmix64(nfid.StrHash(ref))%uint64(len(s.refShards))]
}

// sessionBySEID looks a context up by its CP SEID.
func (s *SMF) sessionBySEID(seid uint64) *smContext {
	sh := s.sessShardOf(seid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.bySEID[seid]
}

// sessionByRef looks a context up by its SM-context reference.
func (s *SMF) sessionByRef(ref string) *smContext {
	sh := s.refShardOf(ref)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.byRef[ref]
}

// insertSession publishes ctx in both indexes (one lock at a time; the
// caller hands the ref to the AMF only after this returns).
func (s *SMF) insertSession(ctx *smContext) {
	sh := s.sessShardOf(ctx.seid)
	sh.mu.Lock()
	sh.bySEID[ctx.seid] = ctx
	sh.mu.Unlock()
	rh := s.refShardOf(ctx.ref)
	rh.mu.Lock()
	rh.byRef[ctx.ref] = ctx
	rh.mu.Unlock()
}

// removeSession drops ctx from both indexes (identity-guarded, so a
// concurrent re-create of the same ref/SEID is never collateral damage).
func (s *SMF) removeSession(ctx *smContext) {
	rh := s.refShardOf(ctx.ref)
	rh.mu.Lock()
	if rh.byRef[ctx.ref] == ctx {
		delete(rh.byRef, ctx.ref)
	}
	rh.mu.Unlock()
	sh := s.sessShardOf(ctx.seid)
	sh.mu.Lock()
	if sh.bySEID[ctx.seid] == ctx {
		delete(sh.bySEID, ctx.seid)
	}
	sh.mu.Unlock()
}

// allSessions snapshots every context, visiting shards in index order and
// returning the result sorted by SEID — the deterministic iteration the
// snapshotter and reconciliation build on.
func (s *SMF) allSessions() []*smContext {
	var out []*smContext
	for _, sh := range s.sessShards {
		sh.mu.Lock()
		for _, c := range sh.bySEID {
			out = append(out, c)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seid < out[j].seid })
	return out
}

// ipAlloc is the UE address allocator: a monotonic high-water counter
// plus a sorted free-list so addresses released by churn are reused
// lowest-first (deterministic) instead of leaking forever. Addresses
// released while the N4 association is down park on pendingFree until
// the journaled UPF-side deletion has replayed — reusing such an address
// earlier could alias two sessions' DL PDRs at a UPF that still holds
// the old session.
type ipAlloc struct {
	mu          sync.Mutex
	next        uint32 // next never-used address (monotonic region)
	free        []uint32
	pendingFree []uint32
}

func newIPAlloc(base uint32) *ipAlloc {
	return &ipAlloc{next: base}
}

// alloc returns the lowest free address, falling back to the monotonic
// counter when the free-list is empty.
func (al *ipAlloc) alloc() uint32 {
	al.mu.Lock()
	defer al.mu.Unlock()
	if len(al.free) > 0 {
		v := al.free[0]
		al.free = al.free[1:]
		return v
	}
	v := al.next
	al.next++
	return v
}

// release returns v to the pool; deferred parks it on pendingFree (UPF
// deletion still owed) instead of the reusable free-list.
func (al *ipAlloc) release(v uint32, deferred bool) {
	al.mu.Lock()
	defer al.mu.Unlock()
	if deferred {
		al.pendingFree = append(al.pendingFree, v)
		return
	}
	al.insertFree(v)
}

// insertFree adds v to the sorted free-list. Caller holds al.mu.
func (al *ipAlloc) insertFree(v uint32) {
	i := sort.Search(len(al.free), func(i int) bool { return al.free[i] >= v })
	if i < len(al.free) && al.free[i] == v {
		return // already free — tolerate duplicate releases
	}
	al.free = append(al.free, 0)
	copy(al.free[i+1:], al.free[i:])
	al.free[i] = v
}

// takePending removes and returns the parked addresses. Reconciliation
// captures them before replaying the journal and either frees them
// (success) or parks them again (the pass failed and will rerun).
func (al *ipAlloc) takePending() []uint32 {
	al.mu.Lock()
	defer al.mu.Unlock()
	p := al.pendingFree
	al.pendingFree = nil
	return p
}

// freeAll moves previously taken pending addresses to the free-list.
func (al *ipAlloc) freeAll(vs []uint32) {
	al.mu.Lock()
	defer al.mu.Unlock()
	for _, v := range vs {
		al.insertFree(v)
	}
}

// retainPending parks previously taken addresses again.
func (al *ipAlloc) retainPending(vs []uint32) {
	if len(vs) == 0 {
		return
	}
	al.mu.Lock()
	defer al.mu.Unlock()
	al.pendingFree = append(vs, al.pendingFree...)
}

// snapshot returns (highWater, free, pendingFree) for the snapshotter:
// highWater is the last address the monotonic region handed out — at a
// fresh allocator base-1, exactly the legacy counter encoding.
func (al *ipAlloc) snapshot() (uint32, []uint32, []uint32) {
	al.mu.Lock()
	defer al.mu.Unlock()
	free := append([]uint32(nil), al.free...)
	pending := append([]uint32(nil), al.pendingFree...)
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	return al.next - 1, free, pending
}

// restore rebuilds the allocator from snapshot state. inUse guards
// against a free-list entry that also appears as a live session (a
// corrupt or cross-version snapshot must not double-allocate); the
// monotonic region resumes strictly above both the persisted high-water
// mark and every in-use address.
func (al *ipAlloc) restore(highWater uint32, free, pending []uint32, inUse map[uint32]bool) {
	al.mu.Lock()
	defer al.mu.Unlock()
	next := highWater + 1
	for v := range inUse {
		if v >= next {
			next = v + 1
		}
	}
	al.next = next
	al.free = al.free[:0]
	for _, v := range free {
		if !inUse[v] && v < next {
			al.insertFree(v)
		}
	}
	al.pendingFree = al.pendingFree[:0]
	for _, v := range pending {
		if !inUse[v] && v < next {
			al.pendingFree = append(al.pendingFree, v)
		}
	}
}

// FreeIPs reports the reusable free-list size (tests, bench).
func (s *SMF) FreeIPs() int {
	s.ipa.mu.Lock()
	defer s.ipa.mu.Unlock()
	return len(s.ipa.free)
}

// PendingFreeIPs reports addresses awaiting post-heal reclamation.
func (s *SMF) PendingFreeIPs() int {
	s.ipa.mu.Lock()
	defer s.ipa.mu.Unlock()
	return len(s.ipa.pendingFree)
}

// Shards reports the configured shard count.
func (s *SMF) Shards() int { return len(s.sessShards) }
