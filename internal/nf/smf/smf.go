// Package smf implements the Session Management Function: PDU session
// lifecycle (create / modify / release), the N4 interface toward the UPF,
// session policy retrieval from the PCF, and the paging trigger path
// (UPF Session Report -> SMF -> AMF N1N2 transfer).
//
// The SMF is where L²5GC's smart buffering (§3.3) is provisioned: on
// handover preparation it piggybacks the buffer-action FAR update on the
// PFCP message that handles the tunnel change, and on completion it flips
// the FAR to forward toward the target gNB — no extra message exchanges.
package smf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/nfid"
	"l25gc/internal/overload"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
	"l25gc/internal/sbi"
	"l25gc/internal/trace"
)

// Rule IDs used in the canonical two-PDR session layout.
const (
	pdrUL = 1
	pdrDL = 2
	farUL = 1
	farDL = 2
	qerID = 1
	barID = 1
)

// smContext is one PDU session's control state.
type smContext struct {
	mu sync.Mutex

	ref          string
	supi         string
	pduSessionID uint32
	seid         uint64
	ueIP         pkt.Addr
	upfTEID      uint32 // UL tunnel at the UPF
	upfAddr      string
	gnbTEID      uint32 // current DL tunnel at the serving gNB
	gnbAddr      pkt.Addr
	qfi          uint8
	buffering    bool
	idle         bool
	mbrUL        uint64 // policy MBRs retained so reconciliation can
	mbrDL        uint64 // rebuild the QER without a fresh PCF round trip
	// released makes teardown idempotent: two concurrent releases can
	// both fetch the context before either removes it from the indexes,
	// and only the first may journal the deletion and free the UE IP.
	released bool
}

// Config parameterizes the SMF.
type Config struct {
	NodeID     string
	UPFN3IP    pkt.Addr // UPF N3 address advertised to gNBs
	UEPoolBase pkt.Addr // first UE address (e.g. 10.60.0.1)
	BufferPkts uint16   // suggested UPF buffering (BAR)
	Shards     int      // session-table shards (0 or 1: unsharded)
}

// SMF is the session management NF.
type SMF struct {
	cfg Config

	udm sbi.Conn
	pcf sbi.Conn
	amf func() sbi.Conn // lazy: AMF may start after the SMF
	n4  pfcp.Endpoint

	// Sharded session tables and striped allocators (see shard.go).
	sessShards []*sessShard
	refShards  []*refShard
	ipa        *ipAlloc
	seidAlloc  *nfid.Alloc

	tracec atomic.Pointer[trace.Track]
	n4tap  atomic.Pointer[N4Tap]
	ctrl   atomic.Pointer[overload.Controller]
	// clock supplies monotonic elapsed time for latency samples fed to
	// the overload controller; injectable so replayed session creation
	// observes the same durations the live run did.
	clock func() time.Duration

	// assoc is the N4 association toward the UPF (nil when the
	// deployment runs without the association layer). While it reports
	// Down the SMF operates in degraded mode: see assoc.go.
	assoc atomic.Pointer[pfcp.Association]
	// journal holds intents deferred while the association is down,
	// replayed in sequence order by reconcile. Guarded by jmu, persisted
	// in the resilience snapshot.
	jmu        sync.Mutex
	journal    []journalEntry
	journalSeq uint64
	// pendingAssoc carries an association snapshot restored before
	// SetAssociation ran (supervised spawn order), applied at attach.
	// Guarded by pamu.
	pamu         sync.Mutex
	pendingAssoc *pfcp.AssocSnapshot

	rejectedDown atomic.Uint64
	lastRec      atomic.Pointer[ReconcileStats]
}

// SetOverload installs the SMF's overload controller. The SMF does NOT
// gate admission here — that happens at the transport boundary (WrapSBI
// in plain cores, the unit conn in supervised ones) so supervisor replay
// never re-runs an admission decision. The controller is used for
// latency feedback and for the Retry-After advice attached when the UPF
// answers N4 establishment with CauseCongestion.
func (s *SMF) SetOverload(c *overload.Controller) {
	if c == nil {
		s.ctrl.Store(nil)
		return
	}
	s.ctrl.Store(c)
}

// New creates an SMF. amf is resolved lazily on first paging trigger.
func New(cfg Config, udm, pcf sbi.Conn, n4 pfcp.Endpoint, amf func() sbi.Conn) *SMF {
	if cfg.BufferPkts == 0 {
		cfg.BufferPkts = 3000
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	s := &SMF{
		cfg: cfg, udm: udm, pcf: pcf, amf: amf, n4: n4,
		sessShards: newSessShards(shards),
		refShards:  newRefShards(shards),
		ipa:        newIPAlloc(cfg.UEPoolBase.Uint32()),
		seidAlloc:  nfid.New(0x100, shards),
	}
	base := time.Now()
	s.clock = func() time.Duration { return time.Since(base) }
	if n4 != nil {
		n4.SetHandler(s.tappedN4)
	}
	return s
}

// SetTracer installs a trace track for session-procedure spans
// (smf.sm_context.*, smf.n4.report); nil disables tracing.
func (s *SMF) SetTracer(tk *trace.Track) { s.tracec.Store(tk) }

// SetClock replaces the monotonic clock behind overload latency samples
// (simulated-time harnesses inject theirs before traffic starts).
func (s *SMF) SetClock(clock func() time.Duration) { s.clock = clock }

// handleN4 processes PFCP requests originated by the UPF (session
// reports: the paging trigger).
func (s *SMF) handleN4(seid uint64, req pfcp.Message) (pfcp.Message, error) {
	sp := s.tracec.Load().Start("smf.n4.report")
	defer sp.End()
	rep, ok := req.(*pfcp.SessionReportRequest)
	if !ok {
		return nil, fmt.Errorf("smf: unexpected N4 request type %d", req.PFCPType())
	}
	ctx := s.sessionBySEID(seid)
	if ctx == nil {
		return &pfcp.SessionReportResponse{Cause: pfcp.CauseSessionNotFound}, nil
	}
	if rep.ReportType&pfcp.ReportDLDR != 0 {
		// Downlink data for an idle UE: ask the AMF to page it. The
		// transfer runs async so the report response is not delayed.
		go func() {
			conn := s.amf()
			if conn == nil {
				return
			}
			conn.Invoke(sbi.OpN1N2MessageTransfer, &sbi.N1N2MessageTransferRequest{
				Supi: ctx.supi, PduSessionID: ctx.pduSessionID,
			})
		}()
	}
	return &pfcp.SessionReportResponse{Cause: pfcp.CauseAccepted}, nil
}

// Handle implements sbi.Handler for Nsmf_PDUSession.
//
//l25gc:replay
func (s *SMF) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpPostSmContexts:
		return s.createSmContext(req.(*sbi.SmContextCreateRequest))
	case sbi.OpUpdateSmContext:
		return s.updateSmContext(req.(*sbi.SmContextUpdateRequest))
	case sbi.OpReleaseSmContext:
		return s.releaseSmContext(req.(*sbi.SmContextReleaseRequest))
	default:
		return nil, fmt.Errorf("smf: unsupported operation %s", op.Name())
	}
}

func (s *SMF) createSmContext(r *sbi.SmContextCreateRequest) (codec.Message, error) {
	sp := s.tracec.Load().Start("smf.sm_context.create")
	defer sp.End()
	if ctrl := s.ctrl.Load(); ctrl != nil {
		start := s.clock()
		defer func() { ctrl.Observe(s.clock() - start) }()
	}
	// Degraded mode: while the N4 association is down, new establishments
	// are rejected up front with the same Retry-After pushback the
	// CauseCongestion path uses — the UE backs off instead of burning a
	// full PFCP retry budget against a partitioned UPF.
	if err := s.rejectIfAssocDown(); err != nil {
		return nil, err
	}
	// Subscription and policy lookups (SBI round trips the paper counts in
	// the session establishment event).
	if _, err := s.udm.Invoke(sbi.OpGetSMSubscriptionData, &sbi.SubscriptionDataRequest{Supi: r.Supi, Dnn: r.Dnn}); err != nil {
		return nil, fmt.Errorf("smf: SM subscription: %w", err)
	}
	polResp, err := s.pcf.Invoke(sbi.OpSMPolicyCreate, &sbi.SMPolicyCreateRequest{
		Supi: r.Supi, PduSessionID: r.PduSessionID, Dnn: r.Dnn, Sst: r.Sst, Sd: r.Sd,
	})
	if err != nil {
		return nil, fmt.Errorf("smf: SM policy: %w", err)
	}
	pol := polResp.(*sbi.SMPolicyCreateResponse)

	ueIP32 := s.ipa.alloc()
	ueIP := pkt.AddrFromUint32(ueIP32)
	// SEIDs stripe by SUPI so one subscriber's sessions share a stripe and
	// a storm of distinct subscribers never contends on one counter.
	seid := s.seidAlloc.Next(nfid.StrHash(r.Supi))
	qfi := uint8(pol.Default5QI)

	ctx := &smContext{
		ref:  fmt.Sprintf("smctx-%s-%d", r.Supi, r.PduSessionID),
		supi: r.Supi, pduSessionID: r.PduSessionID,
		seid: seid, ueIP: ueIP, qfi: qfi,
		mbrUL: pol.MbrUL, mbrDL: pol.MbrDL,
	}

	est := s.buildEstablishment(ctx, 0, // TEID 0: UPF chooses
		s.dlFAR(ctx, r.GnbTunnelAddr, r.GnbTunnelTEID))
	resp, err := s.n4.Request(seid, true, est)
	if err != nil {
		// Transport failure: the UPF may or may not hold the half-created
		// session, so the address parks on pendingFree until a post-heal
		// reconciliation has purged any orphan.
		s.ipa.release(ueIP32, true)
		return nil, fmt.Errorf("smf: N4 establishment: %w", err)
	}
	er, ok := resp.(*pfcp.SessionEstablishmentResponse)
	if ok && er.Cause == pfcp.CauseCongestion {
		// The UPF definitively rejected — the address is immediately
		// reusable (same for the rejection path below).
		s.ipa.release(ueIP32, false)
		// N4 throttling: translate the UPF's congestion cause into SBI
		// pushback so the AMF (and the UE behind it) backs off instead
		// of hammering a saturated user plane.
		ra := 200 * time.Millisecond
		if ctrl := s.ctrl.Load(); ctrl != nil {
			ra = ctrl.Backoff(overload.ClassSession)
		}
		return nil, &sbi.StatusError{
			Code: sbi.StatusServiceUnavailable, RetryAfter: ra,
			Reason: "smf: UPF in congestion",
		}
	}
	if !ok || er.Cause != pfcp.CauseAccepted {
		s.ipa.release(ueIP32, false)
		return nil, fmt.Errorf("smf: UPF rejected session (cause %v)", er)
	}
	for _, c := range er.CreatedPDRs {
		if c.PDRID == pdrUL {
			ctx.upfTEID = c.TEID
			ctx.upfAddr = c.Addr.String()
		}
	}

	s.insertSession(ctx)

	return &sbi.SmContextCreateResponse{
		SmContextRef: ctx.ref, Status: 201,
		UeIPv4: ueIP.String(), UpfTEID: ctx.upfTEID, UpfAddr: ctx.upfAddr,
	}, nil
}

// buildEstablishment renders the canonical two-PDR session layout for ctx
// as a PFCP establishment request. teid 0 lets the UPF choose the UL
// F-TEID (initial creation); a non-zero teid pins the previously
// allocated value, which is how post-heal reconciliation rebuilds a
// session without changing the data-plane tunnel the gNB is using.
func (s *SMF) buildEstablishment(ctx *smContext, teid uint32, dl *rules.FAR) *pfcp.SessionEstablishmentRequest {
	return &pfcp.SessionEstablishmentRequest{
		NodeID: s.cfg.NodeID, CPSEID: ctx.seid, UEIP: ctx.ueIP,
		CreatePDRs: []*rules.PDR{
			{
				ID: pdrUL, Precedence: 32,
				PDI: rules.PDI{
					SourceInterface: rules.IfAccess,
					HasTEID:         true, TEID: teid,
					UEIP: ctx.ueIP, HasUEIP: true,
					QFI: ctx.qfi, HasQFI: true,
				},
				OuterHeaderRemoval: true, FARID: farUL, QERID: qerID,
			},
			{
				ID: pdrDL, Precedence: 32,
				PDI: rules.PDI{
					SourceInterface: rules.IfCore,
					UEIP:            ctx.ueIP, HasUEIP: true,
					QFI: ctx.qfi, HasQFI: true,
				},
				FARID: farDL, QERID: qerID, BARID: barID,
			},
		},
		CreateFARs: []*rules.FAR{
			{ID: farUL, Action: rules.FARForward, DestInterface: rules.IfCore},
			dl,
		},
		CreateQERs: []*rules.QER{{
			ID: qerID, QFI: ctx.qfi,
			ULMbrKbps: ctx.mbrUL, DLMbrKbps: ctx.mbrDL,
			GateUL: true, GateDL: true,
		}},
		CreateBARs: []*rules.BAR{{ID: barID, SuggestedPkts: s.cfg.BufferPkts}},
	}
}

// dlFAR builds the initial DL forwarding rule: forward when the gNB tunnel
// is already known, otherwise buffer until the RAN-side setup completes.
func (s *SMF) dlFAR(ctx *smContext, gnbAddr string, gnbTEID uint32) *rules.FAR {
	if gnbTEID != 0 && gnbAddr != "" {
		ctx.gnbTEID = gnbTEID
		ctx.gnbAddr = parseAddr(gnbAddr)
		return &rules.FAR{
			ID: farDL, Action: rules.FARForward, DestInterface: rules.IfAccess,
			HasOuterHeader: true, OuterTEID: gnbTEID, OuterAddr: ctx.gnbAddr,
		}
	}
	ctx.buffering = true
	return &rules.FAR{ID: farDL, Action: rules.FARBuffer, DestInterface: rules.IfAccess}
}

func (s *SMF) updateSmContext(r *sbi.SmContextUpdateRequest) (codec.Message, error) {
	sp := s.tracec.Load().Start("smf.sm_context.update")
	defer sp.End()
	ctx := s.sessionByRef(r.SmContextRef)
	if ctx == nil {
		return nil, fmt.Errorf("smf: unknown SM context %q", r.SmContextRef)
	}
	ctx.mu.Lock()
	defer ctx.mu.Unlock()

	mod := &pfcp.SessionModificationRequest{}
	resp := &sbi.SmContextUpdateResponse{Status: 200}

	switch {
	case r.Release:
		return s.releaseLocked(ctx)
	case r.UpCnxState == "DEACTIVATED":
		// UE went idle: buffer + notify (paging trigger armed).
		ctx.idle = true
		ctx.buffering = true
		mod.UpdateFARs = []*rules.FAR{{
			ID: farDL, Action: rules.FARBuffer | rules.FARNotifyCP,
			DestInterface: rules.IfAccess,
		}}
	case r.UpCnxState == "ACTIVATED":
		// Idle->active (service request): forward to the (possibly new)
		// gNB tunnel; the UPF drains buffered packets in order.
		if r.TargetGnbTEID != 0 {
			ctx.gnbTEID = r.TargetGnbTEID
			ctx.gnbAddr = parseAddr(r.TargetGnbAddr)
		}
		ctx.idle = false
		ctx.buffering = false
		mod.UpdateFARs = []*rules.FAR{{
			ID: farDL, Action: rules.FARForward, DestInterface: rules.IfAccess,
			HasOuterHeader: true, OuterTEID: ctx.gnbTEID, OuterAddr: ctx.gnbAddr,
		}}
	case r.HoState == "PREPARING":
		// Smart buffering: the buffer-action FAR update is piggybacked on
		// the handover-preparation PFCP exchange (§3.3) — no dedicated
		// buffering message.
		if r.DataForwarding {
			ctx.buffering = true
			mod.UpdateFARs = []*rules.FAR{{
				ID: farDL, Action: rules.FARBuffer, DestInterface: rules.IfAccess,
			}}
		}
		resp.HoState = "PREPARED"
	case r.HoState == "COMPLETED":
		if r.TargetGnbTEID != 0 {
			ctx.gnbTEID = r.TargetGnbTEID
			ctx.gnbAddr = parseAddr(r.TargetGnbAddr)
		}
		ctx.buffering = false
		mod.UpdateFARs = []*rules.FAR{{
			ID: farDL, Action: rules.FARForward, DestInterface: rules.IfAccess,
			HasOuterHeader: true, OuterTEID: ctx.gnbTEID, OuterAddr: ctx.gnbAddr,
		}}
		resp.HoState = "COMPLETED"
	default:
		return nil, fmt.Errorf("smf: unsupported update %+v", r)
	}

	if len(mod.UpdateFARs) > 0 || len(mod.UpdatePDRs) > 0 {
		if s.assocDown() {
			// Degraded mode: the context above already reflects the new
			// FAR state; journal a sync intent and let reconciliation
			// push it to the UPF after the heal instead of blocking the
			// control procedure on a dead path.
			s.journalIntent(ctx.seid, intentSync)
			return resp, nil
		}
		//l25gc:allow nomutexhold ctx.mu is a per-session leaf lock held across N4 on purpose: it orders FAR updates toward the UPF during handover
		n4resp, err := s.n4.Request(ctx.seid, true, mod)
		if err != nil {
			return nil, fmt.Errorf("smf: N4 modification: %w", err)
		}
		if mr, ok := n4resp.(*pfcp.SessionModificationResponse); !ok || mr.Cause != pfcp.CauseAccepted {
			return nil, fmt.Errorf("smf: UPF rejected modification")
		}
	}
	return resp, nil
}

func (s *SMF) releaseSmContext(r *sbi.SmContextReleaseRequest) (codec.Message, error) {
	sp := s.tracec.Load().Start("smf.sm_context.release")
	defer sp.End()
	ctx := s.sessionByRef(r.SmContextRef)
	if ctx == nil {
		return &sbi.SmContextReleaseResponse{Status: 404}, nil
	}
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	resp, err := s.releaseLocked(ctx)
	if err != nil {
		return nil, err
	}
	return &sbi.SmContextReleaseResponse{Status: resp.(*sbi.SmContextUpdateResponse).Status}, nil
}

func (s *SMF) releaseLocked(ctx *smContext) (codec.Message, error) {
	if ctx.released {
		// A concurrent release already tore this context down.
		return &sbi.SmContextUpdateResponse{Status: 200}, nil
	}
	down := s.assocDown()
	if down {
		// Degraded mode: drop the context now (the UE is gone either
		// way) and journal the UPF-side deletion for post-heal replay.
		s.journalIntent(ctx.seid, intentDelete)
	} else {
		if _, err := s.n4.Request(ctx.seid, true, &pfcp.SessionDeletionRequest{}); err != nil {
			return nil, fmt.Errorf("smf: N4 deletion: %w", err)
		}
	}
	ctx.released = true
	s.removeSession(ctx)
	// Reclaim the UE address: immediately reusable when the UPF confirmed
	// the deletion, deferred until post-heal replay when it was journaled.
	s.ipa.release(ctx.ueIP.Uint32(), down)
	return &sbi.SmContextUpdateResponse{Status: 200}, nil
}

// Sessions reports the number of active SM contexts.
func (s *SMF) Sessions() int {
	n := 0
	for _, sh := range s.refShards {
		sh.mu.Lock()
		n += len(sh.byRef)
		sh.mu.Unlock()
	}
	return n
}

// SEIDs returns the CP SEIDs of every active SM context in ascending
// order — the SMF half of the divergence check reconciliation tests run
// against upf.State.SEIDs().
func (s *SMF) SEIDs() []uint64 {
	ctxs := s.allSessions()
	out := make([]uint64, len(ctxs))
	for i, c := range ctxs {
		out[i] = c.seid
	}
	return out
}

// parseAddr converts dotted-quad text into an Addr (zero on error).
func parseAddr(s string) pkt.Addr {
	var a pkt.Addr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return pkt.Addr{}
		}
		a[i] = byte(v)
	}
	return a
}
