//l25gc:deterministic — snapshot encoding must be byte-stable (checkpoint digests compare across generations)

package smf

import (
	"encoding/json"
	"fmt"
	"sort"

	"l25gc/internal/pfcp"
)

// The SMF's snapshot is its half of the §3.5.2 control-plane checkpoint:
// every PDU session context (SEID, UE address, UL/DL tunnel endpoints,
// buffering/idle flags) plus the IP and SEID allocators, encoded
// deterministically (contexts sorted by SEID). The restored replica can
// immediately serve updates for every session the primary had
// established — no UE re-attach, no re-established N4 association.

type smRecord struct {
	Ref          string `json:"ref"`
	Supi         string `json:"supi"`
	PduSessionID uint32 `json:"pduSessionId"`
	SEID         uint64 `json:"seid"`
	UeIP         string `json:"ueIp"`
	UpfTEID      uint32 `json:"upfTeid,omitempty"`
	UpfAddr      string `json:"upfAddr,omitempty"`
	GnbTEID      uint32 `json:"gnbTeid,omitempty"`
	GnbAddr      string `json:"gnbAddr,omitempty"`
	Qfi          uint8  `json:"qfi,omitempty"`
	Buffering    bool   `json:"buffering,omitempty"`
	Idle         bool   `json:"idle,omitempty"`
	MbrUL        uint64 `json:"mbrUl,omitempty"`
	MbrDL        uint64 `json:"mbrDl,omitempty"`
}

type smfSnapshot struct {
	NextIP   uint32     `json:"nextIp"`
	NextSEID uint64     `json:"nextSeid"`
	Contexts []smRecord `json:"contexts,omitempty"`
	// Partition-tolerance state (PR 9): a standby promoted while the N4
	// path is down must wake up in degraded mode, still holding the
	// deferred intents — otherwise the failover silently forgets that
	// reconciliation is owed.
	Assoc      *pfcp.AssocSnapshot `json:"assoc,omitempty"`
	Journal    []journalEntry      `json:"journal,omitempty"`
	JournalSeq uint64              `json:"journalSeq,omitempty"`
}

// Snapshot implements resilience.Snapshotter.
func (s *SMF) Snapshot() ([]byte, error) {
	s.mu.Lock()
	ctxs := make([]*smContext, 0, len(s.byRef))
	for _, c := range s.byRef {
		ctxs = append(ctxs, c)
	}
	// Deterministic per-context lock order for the marshal loop below
	// (ref is immutable after creation, so the unlocked read is safe).
	sort.Slice(ctxs, func(i, j int) bool { return ctxs[i].ref < ctxs[j].ref })
	snap := smfSnapshot{NextIP: s.nextIP.Load(), NextSEID: s.seid.Load()}
	s.mu.Unlock()

	if a := s.assoc.Load(); a != nil {
		as := a.Snapshot()
		snap.Assoc = &as
	}
	s.jmu.Lock()
	snap.Journal = append([]journalEntry(nil), s.journal...)
	snap.JournalSeq = s.journalSeq
	s.jmu.Unlock()
	sort.Slice(snap.Journal, func(i, j int) bool { return snap.Journal[i].Seq < snap.Journal[j].Seq })

	for _, c := range ctxs {
		c.mu.Lock()
		snap.Contexts = append(snap.Contexts, smRecord{
			Ref: c.ref, Supi: c.supi, PduSessionID: c.pduSessionID,
			SEID: c.seid, UeIP: c.ueIP.String(),
			UpfTEID: c.upfTEID, UpfAddr: c.upfAddr,
			GnbTEID: c.gnbTEID, GnbAddr: c.gnbAddr.String(),
			Qfi: c.qfi, Buffering: c.buffering, Idle: c.idle,
			MbrUL: c.mbrUL, MbrDL: c.mbrDL,
		})
		c.mu.Unlock()
	}
	sort.Slice(snap.Contexts, func(i, j int) bool { return snap.Contexts[i].SEID < snap.Contexts[j].SEID })
	return json.Marshal(snap)
}

// Restore implements resilience.Snapshotter: the SMF's session table and
// allocators become the snapshot's.
func (s *SMF) Restore(b []byte) error {
	var snap smfSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byRef = make(map[string]*smContext, len(snap.Contexts))
	s.bySEID = make(map[uint64]*smContext, len(snap.Contexts))
	for _, r := range snap.Contexts {
		c := &smContext{
			ref: r.Ref, supi: r.Supi, pduSessionID: r.PduSessionID,
			seid: r.SEID, ueIP: parseAddr(r.UeIP),
			upfTEID: r.UpfTEID, upfAddr: r.UpfAddr,
			gnbTEID: r.GnbTEID, gnbAddr: parseAddr(r.GnbAddr),
			qfi: r.Qfi, buffering: r.Buffering, idle: r.Idle,
			mbrUL: r.MbrUL, mbrDL: r.MbrDL,
		}
		s.byRef[c.ref] = c
		s.bySEID[c.seid] = c
	}
	s.nextIP.Store(snap.NextIP)
	s.seid.Store(snap.NextSEID)
	s.jmu.Lock()
	s.journal = append([]journalEntry(nil), snap.Journal...)
	s.journalSeq = snap.JournalSeq
	s.jmu.Unlock()
	if snap.Assoc != nil {
		if a := s.assoc.Load(); a != nil {
			a.Restore(*snap.Assoc)
		} else {
			s.pendingAssoc = snap.Assoc // applied by SetAssociation
		}
	}
	return nil
}

// N4Tap intercepts inbound N4 requests (UPF session reports) before the
// SMF handles them; the supervisor installs one to stamp the request
// through the packet-log counter. apply performs the handling inside the
// tap's consistency section. A tap error drops the request here — the
// UPF's PFCP retransmission re-delivers it, or replay does.
type N4Tap func(wire []byte, apply func() error) error

// SetN4Tap installs (or, with nil, removes) the N4 ingress tap.
func (s *SMF) SetN4Tap(t N4Tap) {
	if t == nil {
		s.n4tap.Store(nil)
		return
	}
	s.n4tap.Store(&t)
}

// tappedN4 is the installed pfcp handler: it routes the request through
// the tap when one is set, else straight to handleN4.
func (s *SMF) tappedN4(seid uint64, req pfcp.Message) (pfcp.Message, error) {
	tap := s.n4tap.Load()
	if tap == nil {
		return s.handleN4(seid, req)
	}
	wire := pfcp.Marshal(req, seid, true, 0)
	var (
		resp pfcp.Message
		herr error
	)
	if err := (*tap)(wire, func() error {
		resp, herr = s.handleN4(seid, req)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("smf: n4 ingress: %w", err)
	}
	return resp, herr
}

// BindN4 (re-)claims the N4 endpoint's inbound handler for this SMF.
// Supervised deployments share one endpoint across generations and the
// most recently constructed instance holds the handler — the supervisor
// rebinds to the active generation at every promotion so session
// reports reach live state, not the frozen standby.
func (s *SMF) BindN4() { s.n4.SetHandler(s.tappedN4) }

// DeliverN4 re-injects one inbound N4 request — the supervisor's replay
// path. The response is discarded (the UPF either saw it before the
// crash or retransmits the request).
//
//l25gc:replay
func (s *SMF) DeliverN4(wire []byte) error {
	hdr, msg, err := pfcp.Parse(wire)
	if err != nil {
		return fmt.Errorf("smf: replayed N4: %w", err)
	}
	_, herr := s.handleN4(hdr.SEID, msg)
	return herr
}
