//l25gc:deterministic — snapshot encoding must be byte-stable (checkpoint digests compare across generations)

package smf

import (
	"encoding/json"
	"fmt"
	"sort"

	"l25gc/internal/nfid"
	"l25gc/internal/pfcp"
	"l25gc/internal/ring"
)

// The SMF's snapshot is its half of the §3.5.2 control-plane checkpoint:
// every PDU session context (SEID, UE address, UL/DL tunnel endpoints,
// buffering/idle flags) plus the IP and SEID allocators, encoded
// deterministically (contexts sorted by SEID). The restored replica can
// immediately serve updates for every session the primary had
// established — no UE re-attach, no re-established N4 association.

type smRecord struct {
	Ref          string `json:"ref"`
	Supi         string `json:"supi"`
	PduSessionID uint32 `json:"pduSessionId"`
	SEID         uint64 `json:"seid"`
	UeIP         string `json:"ueIp"`
	UpfTEID      uint32 `json:"upfTeid,omitempty"`
	UpfAddr      string `json:"upfAddr,omitempty"`
	GnbTEID      uint32 `json:"gnbTeid,omitempty"`
	GnbAddr      string `json:"gnbAddr,omitempty"`
	Qfi          uint8  `json:"qfi,omitempty"`
	Buffering    bool   `json:"buffering,omitempty"`
	Idle         bool   `json:"idle,omitempty"`
	MbrUL        uint64 `json:"mbrUl,omitempty"`
	MbrDL        uint64 `json:"mbrDl,omitempty"`
}

type smfSnapshot struct {
	NextIP   uint32     `json:"nextIp"`
	NextSEID uint64     `json:"nextSeid"`
	Contexts []smRecord `json:"contexts,omitempty"`
	// IP-pool reclamation state (PR 10): released addresses awaiting
	// reuse, and addresses parked until a post-heal reconciliation
	// replays the journaled UPF-side deletions that still reference
	// them. Both omit when empty, keeping pre-free-list snapshots
	// byte-identical.
	FreeIPs        []uint32 `json:"freeIps,omitempty"`
	PendingFreeIPs []uint32 `json:"pendingFreeIps,omitempty"`
	// Partition-tolerance state (PR 9): a standby promoted while the N4
	// path is down must wake up in degraded mode, still holding the
	// deferred intents — otherwise the failover silently forgets that
	// reconciliation is owed.
	Assoc      *pfcp.AssocSnapshot `json:"assoc,omitempty"`
	Journal    []journalEntry      `json:"journal,omitempty"`
	JournalSeq uint64              `json:"journalSeq,omitempty"`
}

// Snapshot implements resilience.Snapshotter. Shards are visited in
// index order and the collected contexts are SEID-sorted (allSessions),
// so identical state encodes to identical bytes regardless of the shard
// count; NextIP/NextSEID persist the allocators' high-water marks — at
// one shard exactly the legacy counter values.
func (s *SMF) Snapshot() ([]byte, error) {
	// allSessions' SEID order doubles as the deterministic per-context
	// lock order for the marshal loop below.
	ctxs := s.allSessions()
	ipHW, freeIPs, pendingIPs := s.ipa.snapshot()
	snap := smfSnapshot{
		NextIP: ipHW, NextSEID: s.seidAlloc.HighWater(),
		FreeIPs: freeIPs, PendingFreeIPs: pendingIPs,
	}

	if a := s.assoc.Load(); a != nil {
		as := a.Snapshot()
		snap.Assoc = &as
	}
	s.jmu.Lock()
	snap.Journal = append([]journalEntry(nil), s.journal...)
	snap.JournalSeq = s.journalSeq
	s.jmu.Unlock()
	sort.Slice(snap.Journal, func(i, j int) bool { return snap.Journal[i].Seq < snap.Journal[j].Seq })

	for _, c := range ctxs {
		c.mu.Lock()
		snap.Contexts = append(snap.Contexts, smRecord{
			Ref: c.ref, Supi: c.supi, PduSessionID: c.pduSessionID,
			SEID: c.seid, UeIP: c.ueIP.String(),
			UpfTEID: c.upfTEID, UpfAddr: c.upfAddr,
			GnbTEID: c.gnbTEID, GnbAddr: c.gnbAddr.String(),
			Qfi: c.qfi, Buffering: c.buffering, Idle: c.idle,
			MbrUL: c.mbrUL, MbrDL: c.mbrDL,
		})
		c.mu.Unlock()
	}
	return json.Marshal(snap)
}

// Restore implements resilience.Snapshotter: the SMF's session table and
// allocators become the snapshot's. The SEID allocator is re-seeded
// strictly above both the persisted high-water mark and the largest
// restored SEID, and the IP allocator resumes above every in-use
// address, so a promoted replica can never hand out colliding IDs —
// even when its shard count differs from the snapshotting instance's.
func (s *SMF) Restore(b []byte) error {
	var snap smfSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return err
	}
	shards := len(s.sessShards)
	sessShards := newSessShards(shards)
	refShards := newRefShards(shards)
	inUse := make(map[uint32]bool, len(snap.Contexts))
	maxSeid := snap.NextSEID
	for _, r := range snap.Contexts {
		c := &smContext{
			ref: r.Ref, supi: r.Supi, pduSessionID: r.PduSessionID,
			seid: r.SEID, ueIP: parseAddr(r.UeIP),
			upfTEID: r.UpfTEID, upfAddr: r.UpfAddr,
			gnbTEID: r.GnbTEID, gnbAddr: parseAddr(r.GnbAddr),
			qfi: r.Qfi, buffering: r.Buffering, idle: r.Idle,
			mbrUL: r.MbrUL, mbrDL: r.MbrDL,
		}
		sessShards[ring.Fmix64(c.seid)%uint64(shards)].bySEID[c.seid] = c
		refShards[ring.Fmix64(nfid.StrHash(c.ref))%uint64(shards)].byRef[c.ref] = c
		inUse[c.ueIP.Uint32()] = true
		if c.seid > maxSeid {
			maxSeid = c.seid
		}
	}
	// Swap the rebuilt maps in shard by shard under each shard's lock —
	// the shard slices themselves are immutable after New.
	for i, sh := range s.sessShards {
		sh.mu.Lock()
		sh.bySEID = sessShards[i].bySEID
		sh.mu.Unlock()
	}
	for i, sh := range s.refShards {
		sh.mu.Lock()
		sh.byRef = refShards[i].byRef
		sh.mu.Unlock()
	}
	s.ipa.restore(snap.NextIP, snap.FreeIPs, snap.PendingFreeIPs, inUse)
	s.seidAlloc.Seed(maxSeid)
	s.jmu.Lock()
	s.journal = append([]journalEntry(nil), snap.Journal...)
	s.journalSeq = snap.JournalSeq
	s.jmu.Unlock()
	if snap.Assoc != nil {
		if a := s.assoc.Load(); a != nil {
			a.Restore(*snap.Assoc)
		} else {
			s.pamu.Lock()
			s.pendingAssoc = snap.Assoc // applied by SetAssociation
			s.pamu.Unlock()
		}
	}
	return nil
}

// N4Tap intercepts inbound N4 requests (UPF session reports) before the
// SMF handles them; the supervisor installs one to stamp the request
// through the packet-log counter. apply performs the handling inside the
// tap's consistency section. A tap error drops the request here — the
// UPF's PFCP retransmission re-delivers it, or replay does.
type N4Tap func(wire []byte, apply func() error) error

// SetN4Tap installs (or, with nil, removes) the N4 ingress tap.
func (s *SMF) SetN4Tap(t N4Tap) {
	if t == nil {
		s.n4tap.Store(nil)
		return
	}
	s.n4tap.Store(&t)
}

// tappedN4 is the installed pfcp handler: it routes the request through
// the tap when one is set, else straight to handleN4.
func (s *SMF) tappedN4(seid uint64, req pfcp.Message) (pfcp.Message, error) {
	tap := s.n4tap.Load()
	if tap == nil {
		return s.handleN4(seid, req)
	}
	wire := pfcp.Marshal(req, seid, true, 0)
	var (
		resp pfcp.Message
		herr error
	)
	if err := (*tap)(wire, func() error {
		resp, herr = s.handleN4(seid, req)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("smf: n4 ingress: %w", err)
	}
	return resp, herr
}

// BindN4 (re-)claims the N4 endpoint's inbound handler for this SMF.
// Supervised deployments share one endpoint across generations and the
// most recently constructed instance holds the handler — the supervisor
// rebinds to the active generation at every promotion so session
// reports reach live state, not the frozen standby.
func (s *SMF) BindN4() { s.n4.SetHandler(s.tappedN4) }

// DeliverN4 re-injects one inbound N4 request — the supervisor's replay
// path. The response is discarded (the UPF either saw it before the
// crash or retransmits the request).
//
//l25gc:replay
func (s *SMF) DeliverN4(wire []byte) error {
	hdr, msg, err := pfcp.Parse(wire)
	if err != nil {
		return fmt.Errorf("smf: replayed N4: %w", err)
	}
	_, herr := s.handleN4(hdr.SEID, msg)
	return herr
}
