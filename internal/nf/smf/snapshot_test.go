// Package smf_test checkpoints the SMF mid-handover and completes the
// procedure on a restored replica: the PDU session context (SEID, UE IP,
// tunnel endpoints, buffering state) survives the swap and the replica's
// N4 path-switch lands on the same UPF session the primary established.
package smf_test

import (
	"bytes"
	"testing"

	"l25gc/internal/codec"
	"l25gc/internal/nf/pcf"
	"l25gc/internal/nf/smf"
	"l25gc/internal/nf/udm"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
	"l25gc/internal/sbi"
	"l25gc/internal/testutil"
	"l25gc/internal/upf"
)

type directConn struct{ h sbi.Handler }

func (d directConn) Invoke(op sbi.OpID, req codec.Message) (codec.Message, error) {
	return d.h(op, req)
}
func (d directConn) Close() error { return nil }

// newSMF builds an SMF over the shared UDM/PCF/N4 endpoint — the same
// neighborhood a promoted replica inherits from its failed primary.
func newSMF(udmC, pcfC sbi.Conn, n4 pfcp.Endpoint) *smf.SMF {
	return smf.New(smf.Config{
		NodeID: "smf-test", UPFN3IP: pkt.Addr{192, 168, 0, 1},
		UEPoolBase: pkt.Addr{10, 60, 0, 1},
	}, udmC, pcfC, n4, func() sbi.Conn { return nil })
}

func TestSMFSnapshotMidHandoverRoundTrip(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	u := udr.New()
	u.Provision(udr.Subscriber{
		Supi: "imsi-1", K: []byte("0123456789abcdef"), Opc: []byte("fedcba9876543210"),
		Dnn: "internet", AmbrUL: 1e9, AmbrDL: 2e9, Sst: 1, Sd: "010203",
	})
	um := udm.New(directConn{u.Handle})
	pc := pcf.New(pcf.Policy{RfspIndex: 1, MbrUL: 1e6, MbrDL: 1e6, Default5QI: 9})
	udmC, pcfC := sbi.Conn(directConn{um.Handle}), sbi.Conn(directConn{pc.Handle})

	smfEP, upfEP := pfcp.NewMemPair(256)
	t.Cleanup(func() { smfEP.Close(); upfEP.Close() })
	st := upf.NewState("ps", 64)
	upf.NewUPFC(st, pkt.Addr{192, 168, 0, 1}, upfEP)

	primary := newSMF(udmC, pcfC, smfEP)

	// Establish a session with a known source-gNB tunnel.
	cresp, err := primary.Handle(sbi.OpPostSmContexts, &sbi.SmContextCreateRequest{
		Supi: "imsi-1", PduSessionID: 5, Dnn: "internet", Sst: 1, Sd: "010203",
		GnbTunnelAddr: "192.168.1.1", GnbTunnelTEID: 7001,
	})
	if err != nil {
		t.Fatalf("create SM context: %v", err)
	}
	ref := cresp.(*sbi.SmContextCreateResponse).SmContextRef

	// Handover preparation: smart buffering armed at the UPF.
	presp, err := primary.Handle(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
		SmContextRef: ref, HoState: "PREPARING", DataForwarding: true,
	})
	if err != nil {
		t.Fatalf("HO preparation: %v", err)
	}
	if hs := presp.(*sbi.SmContextUpdateResponse).HoState; hs != "PREPARED" {
		t.Fatalf("HoState = %q, want PREPARED", hs)
	}

	// Mid-handover checkpoint; must be byte-deterministic.
	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap2, _ := primary.Snapshot(); !bytes.Equal(snap, snap2) {
		t.Fatal("SMF snapshot encoding is not deterministic")
	}

	// Promote a fresh replica over the same N4 endpoint (re-registering
	// the PFCP handler retires the primary's).
	replica := newSMF(udmC, pcfC, smfEP)
	if err := replica.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n := replica.Sessions(); n != 1 {
		t.Fatalf("replica sessions = %d, want 1", n)
	}

	// The handover completes against the replica: same context ref, path
	// switched to the target tunnel, no re-establishment.
	hresp, err := replica.Handle(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
		SmContextRef: ref, HoState: "COMPLETED",
		TargetGnbAddr: "192.168.1.2", TargetGnbTEID: 7002,
	})
	if err != nil {
		t.Fatalf("HO completion via replica: %v", err)
	}
	if hs := hresp.(*sbi.SmContextUpdateResponse).HoState; hs != "COMPLETED" {
		t.Fatalf("HoState = %q, want COMPLETED", hs)
	}

	// UPF session is the one the primary created, now forwarding DL
	// traffic to the target gNB.
	ctx, ok := st.Session(0x101)
	if !ok {
		t.Fatal("UPF lost the session across SMF restore")
	}
	far := ctx.Sess.FAR(2)
	if far == nil || far.Action&rules.FARForward == 0 || far.OuterTEID != 7002 {
		t.Fatalf("DL FAR after replica path switch: %+v", far)
	}

	// Idle transition still works on the restored context (allocators and
	// flags round-tripped, not just tunnel endpoints).
	if _, err := replica.Handle(sbi.OpUpdateSmContext, &sbi.SmContextUpdateRequest{
		SmContextRef: ref, UpCnxState: "DEACTIVATED",
	}); err != nil {
		t.Fatalf("idle transition via replica: %v", err)
	}
	if far := ctx.Sess.FAR(2); far == nil || far.Action&rules.FARBuffer == 0 {
		t.Fatalf("DL FAR after idle via replica: %+v", far)
	}
}
