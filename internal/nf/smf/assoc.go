package smf

import (
	"fmt"
	"sort"
	"time"

	"l25gc/internal/metrics"
	"l25gc/internal/overload"
	"l25gc/internal/pfcp"
	"l25gc/internal/rules"
	"l25gc/internal/sbi"
)

// Degraded-mode operation and post-heal reconciliation (the SMF half of
// the PFCP association layer; the transport state machine itself lives in
// pfcp.Association).
//
// While the association is Down:
//   - established sessions keep forwarding — the UPF's session table is
//     untouched by a control partition;
//   - new establishments are rejected with SBI 503 + Retry-After (the
//     same pushback surface the overload controller uses), so UEs back
//     off instead of timing out against a dead path;
//   - deletions and FAR-affecting modifications update local context
//     state immediately and append an intent to the journal.
//
// On heal, pfcp.Association calls Reconcile BEFORE flipping Up:
//  1. audit     — SessionSetAudit asks the UPF for its sorted SEID list;
//  2. purge     — UPF sessions the SMF no longer tracks are deleted
//     (ascending SEID order, deterministic);
//  3. rebuild   — SMF sessions the UPF lost (e.g. it restarted) are
//     re-established with their ORIGINAL UL TEID, so the gNB-facing
//     tunnel survives the rebuild;
//  4. replay    — journaled intents run in sequence order (deletes
//     tolerate SessionNotFound: the purge may have won the race).
//
// The journal and the association snapshot ride the SMF resilience
// snapshot, so a standby promoted mid-partition wakes up knowing the path
// is down and still holding the deferred intents.

// intentKind classifies a journaled degraded-mode operation.
type intentKind string

const (
	// intentDelete: the session was released while the path was down;
	// the UPF-side deletion is still owed.
	intentDelete intentKind = "delete"
	// intentSync: the session's FAR state changed while the path was
	// down; the UPF must be brought to the context's CURRENT state (the
	// journal stores no payload — state is read at replay time, so
	// multiple syncs naturally coalesce).
	intentSync intentKind = "sync"
)

// journalEntry is one pending intent, ordered by Seq.
type journalEntry struct {
	Seq  uint64     `json:"seq"`
	SEID uint64     `json:"seid"`
	Kind intentKind `json:"kind"`
}

// ReconcileStats summarizes one post-heal reconciliation pass.
type ReconcileStats struct {
	Audited  int           // SEIDs the UPF reported
	Rebuilt  int           // sessions re-established at the UPF
	Purged   int           // orphan UPF sessions deleted
	Replayed int           // journaled intents applied
	Duration time.Duration // wall time of the pass (SMF clock)
}

// SetAssociation attaches the N4 association state machine. The caller
// wires cfg.OnUp to s.Reconcile and owns Start/Stop; the SMF uses the
// handle for degraded-mode gating and snapshot persistence. An
// association snapshot restored before this call is applied now.
func (s *SMF) SetAssociation(a *pfcp.Association) {
	s.assoc.Store(a)
	s.pamu.Lock()
	pending := s.pendingAssoc
	s.pendingAssoc = nil
	s.pamu.Unlock()
	if a != nil && pending != nil {
		a.Restore(*pending)
	}
}

// Association returns the attached association handle (nil if none).
func (s *SMF) Association() *pfcp.Association { return s.assoc.Load() }

// assocDown reports whether the N4 path is currently declared down.
func (s *SMF) assocDown() bool {
	a := s.assoc.Load()
	return a != nil && a.State() == pfcp.AssocDown
}

// rejectIfAssocDown turns a down association into SBI pushback for new
// session establishment, mirroring the CauseCongestion translation.
func (s *SMF) rejectIfAssocDown() error {
	if !s.assocDown() {
		return nil
	}
	s.rejectedDown.Add(1)
	ra := 200 * time.Millisecond
	if ctrl := s.ctrl.Load(); ctrl != nil {
		ra = ctrl.Backoff(overload.ClassSession)
	}
	return &sbi.StatusError{
		Code: sbi.StatusServiceUnavailable, RetryAfter: ra,
		Reason: "smf: N4 association down",
	}
}

// journalIntent appends (or upgrades) the pending intent for seid. A
// delete overrides any prior sync — the session is going away, its FAR
// state no longer matters; a sync against an already-journaled SEID is a
// no-op because sync payloads are read from context state at replay time.
func (s *SMF) journalIntent(seid uint64, kind intentKind) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	for i := range s.journal {
		if s.journal[i].SEID == seid {
			if kind == intentDelete {
				s.journal[i].Kind = intentDelete
			}
			return
		}
	}
	s.journalSeq++
	s.journal = append(s.journal, journalEntry{Seq: s.journalSeq, SEID: seid, Kind: kind})
}

// JournalLen reports the number of pending intents (tests, bench).
func (s *SMF) JournalLen() int {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return len(s.journal)
}

// RejectedWhileDown reports establishments refused in degraded mode.
func (s *SMF) RejectedWhileDown() uint64 { return s.rejectedDown.Load() }

// LastReconcile returns the stats of the most recent reconciliation pass
// (nil if none has run).
func (s *SMF) LastReconcile() *ReconcileStats { return s.lastRec.Load() }

// ExportAssocMetrics registers the SMF-side pfcp.assoc gauges (the
// transport-side family is registered by pfcp.Association itself).
func (s *SMF) ExportAssocMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".rejected_down", s.rejectedDown.Load)
	reg.RegisterGauge(prefix+".journal", func() uint64 { return uint64(s.JournalLen()) })
	reg.RegisterGauge(prefix+".reconcile.rebuilt", func() uint64 {
		if r := s.lastRec.Load(); r != nil {
			return uint64(r.Rebuilt)
		}
		return 0
	})
	reg.RegisterGauge(prefix+".reconcile.purged", func() uint64 {
		if r := s.lastRec.Load(); r != nil {
			return uint64(r.Purged)
		}
		return 0
	})
}

// dlFARFromState renders ctx's current DL forwarding decision as a FAR —
// the replay payload for sync intents and the DL rule for rebuilds.
// Caller holds ctx.mu.
func dlFARFromState(ctx *smContext) *rules.FAR {
	if ctx.buffering {
		action := rules.FARBuffer
		if ctx.idle {
			action |= rules.FARNotifyCP // paging trigger stays armed
		}
		return &rules.FAR{ID: farDL, Action: action, DestInterface: rules.IfAccess}
	}
	return &rules.FAR{
		ID: farDL, Action: rules.FARForward, DestInterface: rules.IfAccess,
		HasOuterHeader: true, OuterTEID: ctx.gnbTEID, OuterAddr: ctx.gnbAddr,
	}
}

// Reconcile is the post-heal session audit, wired as the association's
// OnUp hook: it runs after a successful AssociationSetup exchange and
// must complete before the association is advertised Up. peerRestarted
// is true when the UPF answered with a changed RecoveryTimestamp (its
// table is a fresh incarnation's — typically empty). Any error leaves
// the association Down; the next Tick retries setup + reconcile whole.
func (s *SMF) Reconcile(peerRestarted bool) error {
	start := s.clock()

	resp, err := s.n4.Request(0, false, &pfcp.SessionSetAuditRequest{NodeID: s.cfg.NodeID})
	if err != nil {
		return fmt.Errorf("smf: reconcile audit: %w", err)
	}
	ar, ok := resp.(*pfcp.SessionSetAuditResponse)
	if !ok || ar.Cause != pfcp.CauseAccepted {
		return fmt.Errorf("smf: reconcile audit rejected (%T)", resp)
	}
	upfHas := make(map[uint64]bool, len(ar.SEIDs))
	for _, seid := range ar.SEIDs {
		upfHas[seid] = true
	}

	// Stable view of our table and journal. New establishments cannot
	// race in (the association is still Down, so createSmContext rejects)
	// and intents journaled after this point keep their entries: only the
	// sequence numbers captured here are cleared at the end. Shards are
	// visited in index order and the result is SEID-sorted, so the pass
	// is deterministic.
	ours := s.allSessions()
	s.jmu.Lock()
	intents := append([]journalEntry(nil), s.journal...)
	s.jmu.Unlock()
	sort.Slice(intents, func(i, j int) bool { return intents[i].Seq < intents[j].Seq })

	// Addresses parked while the path was down become reusable only once
	// this pass has replayed the deletions that still referenced them at
	// the UPF (and purged any half-created orphans). Capture them now; on
	// failure they park again and the retried pass re-captures them.
	pendingIPs := s.ipa.takePending()
	reconciled := false
	defer func() {
		if reconciled {
			s.ipa.freeAll(pendingIPs)
		} else {
			s.ipa.retainPending(pendingIPs)
		}
	}()
	pendingDelete := make(map[uint64]bool)
	for _, in := range intents {
		if in.Kind == intentDelete {
			pendingDelete[in.SEID] = true
		}
	}

	stats := ReconcileStats{Audited: len(ar.SEIDs)}

	// 1) Purge orphans: sessions the UPF holds that we no longer track —
	// unless a journaled delete already owns that SEID (step 3 will send
	// it). ar.SEIDs is sorted by the UPF, so the pass is deterministic.
	orphans := make([]uint64, 0)
	for _, seid := range ar.SEIDs {
		if s.sessionBySEID(seid) == nil && !pendingDelete[seid] {
			orphans = append(orphans, seid)
		}
	}
	for _, seid := range orphans {
		if _, err := s.n4.Request(seid, true, &pfcp.SessionDeletionRequest{}); err != nil {
			return fmt.Errorf("smf: reconcile purge %#x: %w", seid, err)
		}
		stats.Purged++
	}

	// 2) Rebuild missing: sessions we track that the UPF lost. The UL
	// F-TEID is pinned to its original value so the gNB's uplink tunnel
	// and any DL forwarding state keep working without RAN signalling.
	for _, ctx := range ours {
		if !peerRestarted && upfHas[ctx.seid] {
			continue
		}
		if peerRestarted && upfHas[ctx.seid] {
			// A fresh UPF incarnation answering with our SEID means a
			// stale binding from before the restart epoch; rebuild over it.
			if _, err := s.n4.Request(ctx.seid, true, &pfcp.SessionDeletionRequest{}); err != nil {
				return fmt.Errorf("smf: reconcile stale purge %#x: %w", ctx.seid, err)
			}
		}
		ctx.mu.Lock()
		est := s.buildEstablishment(ctx, ctx.upfTEID, dlFARFromState(ctx))
		ctx.mu.Unlock()
		r, err := s.n4.Request(ctx.seid, true, est)
		if err != nil {
			return fmt.Errorf("smf: reconcile rebuild %#x: %w", ctx.seid, err)
		}
		if er, ok := r.(*pfcp.SessionEstablishmentResponse); !ok || er.Cause != pfcp.CauseAccepted {
			return fmt.Errorf("smf: reconcile rebuild %#x rejected", ctx.seid)
		}
		stats.Rebuilt++
	}

	// 3) Replay journaled intents in sequence order.
	var maxSeq uint64
	for _, in := range intents {
		maxSeq = in.Seq
		switch in.Kind {
		case intentDelete:
			r, err := s.n4.Request(in.SEID, true, &pfcp.SessionDeletionRequest{})
			if err != nil {
				return fmt.Errorf("smf: reconcile delete %#x: %w", in.SEID, err)
			}
			// SessionNotFound is fine: the UPF lost it in the restart or
			// the orphan purge got there first.
			if dr, ok := r.(*pfcp.SessionDeletionResponse); ok &&
				dr.Cause != pfcp.CauseAccepted && dr.Cause != pfcp.CauseSessionNotFound {
				return fmt.Errorf("smf: reconcile delete %#x rejected", in.SEID)
			}
		case intentSync:
			ctx := s.sessionBySEID(in.SEID)
			if ctx == nil {
				break // released after journaling; deletion handled above
			}
			ctx.mu.Lock()
			mod := &pfcp.SessionModificationRequest{UpdateFARs: []*rules.FAR{dlFARFromState(ctx)}}
			ctx.mu.Unlock()
			r, err := s.n4.Request(in.SEID, true, mod)
			if err != nil {
				return fmt.Errorf("smf: reconcile sync %#x: %w", in.SEID, err)
			}
			if mr, ok := r.(*pfcp.SessionModificationResponse); !ok || mr.Cause != pfcp.CauseAccepted {
				return fmt.Errorf("smf: reconcile sync %#x rejected", in.SEID)
			}
		}
		stats.Replayed++
	}

	// Clear only what we replayed; intents journaled mid-reconcile stay.
	s.jmu.Lock()
	kept := s.journal[:0]
	for _, in := range s.journal {
		if in.Seq > maxSeq {
			kept = append(kept, in)
		}
	}
	s.journal = kept
	s.jmu.Unlock()

	stats.Duration = s.clock() - start
	s.lastRec.Store(&stats)
	reconciled = true
	return nil
}
