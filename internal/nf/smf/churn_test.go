// Churn tests for the SMF's sharded session tables and the UE-IP
// allocator's reclamation paths: released addresses must come back in
// deterministic sorted order, addresses released while N4 is down must
// park until reconciliation replays the owed deletions, and a restored
// replica's allocators must resume strictly above everything in the
// checkpoint at any shard count.
package smf_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"l25gc/internal/nf/pcf"
	"l25gc/internal/nf/smf"
	"l25gc/internal/nf/udm"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/sbi"
	"l25gc/internal/testutil"
	"l25gc/internal/upf"
)

// smfMesh is the SMF neighborhood for churn tests: subscribers in the
// UDR, a live UPF behind N4, and the endpoint pair to attach an
// association to.
type smfMesh struct {
	udmC, pcfC sbi.Conn
	smfEP      pfcp.Endpoint
	upfState   *upf.State
}

func newSMFMesh(t *testing.T, subscribers int) *smfMesh {
	t.Helper()
	u := udr.New()
	for i := 1; i <= subscribers; i++ {
		u.Provision(udr.Subscriber{
			Supi: fmt.Sprintf("imsi-%d", i), K: []byte("0123456789abcdef"), Opc: []byte("fedcba9876543210"),
			Dnn: "internet", AmbrUL: 1e9, AmbrDL: 2e9, Sst: 1, Sd: "010203",
		})
	}
	um := udm.New(directConn{u.Handle})
	pc := pcf.New(pcf.Policy{RfspIndex: 1, MbrUL: 1e6, MbrDL: 1e6, Default5QI: 9})
	smfEP, upfEP := pfcp.NewMemPair(256)
	t.Cleanup(func() { smfEP.Close(); upfEP.Close() })
	st := upf.NewState("ps", 64)
	upf.NewUPFC(st, pkt.Addr{192, 168, 0, 1}, upfEP)
	return &smfMesh{
		udmC: directConn{um.Handle}, pcfC: directConn{pc.Handle},
		smfEP: smfEP, upfState: st,
	}
}

func (m *smfMesh) newSMF(shards int) *smf.SMF {
	return smf.New(smf.Config{
		NodeID: "smf-churn", UPFN3IP: pkt.Addr{192, 168, 0, 1},
		UEPoolBase: pkt.Addr{10, 60, 0, 1}, Shards: shards,
	}, m.udmC, m.pcfC, m.smfEP, func() sbi.Conn { return nil })
}

// createSession establishes a PDU session for supi and returns (ref, ip).
func createSession(t *testing.T, s *smf.SMF, supi string, teid uint32) (string, string) {
	t.Helper()
	resp, err := s.Handle(sbi.OpPostSmContexts, &sbi.SmContextCreateRequest{
		Supi: supi, PduSessionID: 5, Dnn: "internet", Sst: 1, Sd: "010203",
		GnbTunnelAddr: "192.168.1.1", GnbTunnelTEID: teid,
	})
	if err != nil {
		t.Fatalf("create SM context %s: %v", supi, err)
	}
	cr := resp.(*sbi.SmContextCreateResponse)
	return cr.SmContextRef, cr.UeIPv4
}

func releaseSession(t *testing.T, s *smf.SMF, ref string) {
	t.Helper()
	resp, err := s.Handle(sbi.OpReleaseSmContext, &sbi.SmContextReleaseRequest{SmContextRef: ref})
	if err != nil {
		t.Fatalf("release %s: %v", ref, err)
	}
	if st := resp.(*sbi.SmContextReleaseResponse).Status; st != 200 {
		t.Fatalf("release %s status %d", ref, st)
	}
}

// TestSMFIPFreeListSortedReuse churns sessions through the pool and
// asserts the free list hands addresses back lowest-first — the
// deterministic reuse the snapshot byte-stability depends on — instead
// of marching the pool pointer forward forever.
func TestSMFIPFreeListSortedReuse(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := newSMFMesh(t, 8)
	s := m.newSMF(4)

	refs := make(map[string]string) // supi -> ref
	for i := 1; i <= 4; i++ {
		supi := fmt.Sprintf("imsi-%d", i)
		ref, ip := createSession(t, s, supi, uint32(0x9000+i))
		if want := fmt.Sprintf("10.60.0.%d", i); ip != want {
			t.Fatalf("%s got IP %s, want %s", supi, ip, want)
		}
		refs[supi] = ref
	}

	// Release out of order: 3 then 1. The free list must still hand the
	// lowest address out first.
	releaseSession(t, s, refs["imsi-3"])
	releaseSession(t, s, refs["imsi-1"])
	if free := s.FreeIPs(); free != 2 {
		t.Fatalf("free list holds %d, want 2", free)
	}
	_, ip5 := createSession(t, s, "imsi-5", 0x9005)
	if ip5 != "10.60.0.1" {
		t.Fatalf("first reuse got %s, want 10.60.0.1 (sorted order)", ip5)
	}
	_, ip6 := createSession(t, s, "imsi-6", 0x9006)
	if ip6 != "10.60.0.3" {
		t.Fatalf("second reuse got %s, want 10.60.0.3", ip6)
	}
	// Free list drained: the next allocation extends the pool.
	_, ip7 := createSession(t, s, "imsi-7", 0x9007)
	if ip7 != "10.60.0.5" {
		t.Fatalf("pool extension got %s, want 10.60.0.5", ip7)
	}
}

// TestSMFRestoreReseedsAllocators restores a mid-churn checkpoint — free
// list populated, pool pointer advanced — into a replica with a
// different shard count and keeps allocating: SEIDs and UE IPs must
// never collide with restored sessions, and the snapshot must round-trip
// byte-identically.
func TestSMFRestoreReseedsAllocators(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := newSMFMesh(t, 8)
	primary := m.newSMF(1)

	refs := make(map[string]string)
	ips := make(map[string]string)
	seids := make(map[uint64]bool)
	for i := 1; i <= 4; i++ {
		supi := fmt.Sprintf("imsi-%d", i)
		refs[supi], ips[supi] = createSession(t, primary, supi, uint32(0x9100+i))
	}
	// Free 10.60.0.2 so the checkpoint carries a non-empty free list.
	releaseSession(t, primary, refs["imsi-2"])

	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	replica := m.newSMF(4)
	if err := replica.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	resnap, err := replica.Snapshot()
	if err != nil {
		t.Fatalf("replica snapshot: %v", err)
	}
	if !bytes.Equal(snap, resnap) {
		t.Fatal("SMF snapshot does not round-trip byte-identically at a different shard count")
	}
	for _, seid := range replica.SEIDs() {
		seids[seid] = true
	}

	// Mid-storm continuation on the replica: the freed address comes
	// back first, then the pool extends above the restored high-water —
	// never into an address a restored session still holds.
	_, ip := createSession(t, replica, "imsi-5", 0x9105)
	if ip != "10.60.0.2" {
		t.Fatalf("replica first alloc got %s, want freed 10.60.0.2", ip)
	}
	_, ip = createSession(t, replica, "imsi-6", 0x9106)
	if ip != "10.60.0.5" {
		t.Fatalf("replica pool extension got %s, want 10.60.0.5", ip)
	}
	// New SEIDs must be disjoint from every restored one.
	for _, seid := range replica.SEIDs() {
		if seids[seid] {
			delete(seids, seid)
		} else if seid <= 0x104 {
			t.Fatalf("replica allocated SEID %#x colliding with restored range", seid)
		}
	}
	if replica.Sessions() != 5 {
		t.Fatalf("replica sessions = %d, want 5", replica.Sessions())
	}
}

// TestSMFPendingFreeParksUntilReconcile releases a session while the N4
// association is down: the address must park (not rejoin the free list)
// until the post-heal reconciliation replays the owed UPF deletion, and
// only then become allocatable again.
func TestSMFPendingFreeParksUntilReconcile(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := newSMFMesh(t, 4)
	s := m.newSMF(2)
	a := pfcp.NewAssociation(m.smfEP, pfcp.AssocConfig{
		NodeID: "smf-churn", RecoveryTimestamp: 1, MissThreshold: 2,
		OnUp: func(peerRestarted bool) error { return s.Reconcile(peerRestarted) },
	})
	if err := a.Setup(); err != nil {
		t.Fatalf("association setup: %v", err)
	}
	s.SetAssociation(a)

	ref1, ip1 := createSession(t, s, "imsi-1", 0x9201)
	createSession(t, s, "imsi-2", 0x9202)
	if ip1 != "10.60.0.1" {
		t.Fatalf("imsi-1 got %s", ip1)
	}

	a.MarkDown("test-partition")
	// Release while down: applies locally, journals the deletion, and
	// parks the address — the UPF still forwards for it.
	releaseSession(t, s, ref1)
	if n := s.JournalLen(); n != 1 {
		t.Fatalf("journal holds %d intents, want 1", n)
	}
	if free, pending := s.FreeIPs(), s.PendingFreeIPs(); free != 0 || pending != 1 {
		t.Fatalf("while down: free=%d pending=%d, want 0/1 (address must park)", free, pending)
	}
	// New establishment is pushed back, so the parked address cannot be
	// handed to anyone while the UPF still owns it.
	_, err := s.Handle(sbi.OpPostSmContexts, &sbi.SmContextCreateRequest{
		Supi: "imsi-3", PduSessionID: 5, Dnn: "internet", Sst: 1, Sd: "010203",
		GnbTunnelAddr: "192.168.1.1", GnbTunnelTEID: 0x9203,
	})
	var se *sbi.StatusError
	if !errors.As(err, &se) || se.Code != sbi.StatusServiceUnavailable {
		t.Fatalf("create while down: got %v, want 503 pushback", err)
	}

	// Heal: the probe re-associates and OnUp reconciles — the journaled
	// deletion replays at the UPF, then the parked address is released.
	a.Tick()
	if a.State() != pfcp.AssocUp {
		t.Fatalf("association %v after heal probe", a.State())
	}
	if n := s.JournalLen(); n != 0 {
		t.Fatalf("journal not drained after reconcile: %d", n)
	}
	if free, pending := s.FreeIPs(), s.PendingFreeIPs(); free != 1 || pending != 0 {
		t.Fatalf("after reconcile: free=%d pending=%d, want 1/0", free, pending)
	}
	// And the recycled address is allocatable again.
	_, ip3 := createSession(t, s, "imsi-3", 0x9203)
	if ip3 != ip1 {
		t.Fatalf("post-heal alloc got %s, want recycled %s", ip3, ip1)
	}
	if s.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", s.Sessions())
	}
}
