// Package ausf implements the Authentication Server Function: it fronts
// the UDM for 5G-AKA, holds the per-UE authentication context between the
// challenge and the confirmation, and derives KSEAF on success.
package ausf

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"l25gc/internal/codec"
	"l25gc/internal/sbi"
)

// authCtx is the state between UEAuthentications POST and confirmation.
type authCtx struct {
	supi     string
	rand     []byte
	xresStar []byte
	kausf    []byte
}

// AUSF is the authentication server NF.
type AUSF struct {
	udm sbi.Conn

	mu    sync.Mutex
	ctxs  map[string]*authCtx
	ctxID atomic.Uint64
}

// New creates an AUSF backed by the given UDM connection.
func New(udm sbi.Conn) *AUSF {
	return &AUSF{udm: udm, ctxs: make(map[string]*authCtx)}
}

// Handle implements sbi.Handler for Nausf_UEAuthentication.
func (a *AUSF) Handle(op sbi.OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case sbi.OpUEAuthenticationsPost:
		r := req.(*sbi.AuthenticationRequest)
		resp, err := a.udm.Invoke(sbi.OpGenerateAuthData, &sbi.AuthInfoRequest{
			SuciOrSupi: r.SuciOrSupi, ServingNetworkName: r.ServingNetworkName,
		})
		if err != nil {
			return nil, fmt.Errorf("ausf: UDM auth data: %w", err)
		}
		ai := resp.(*sbi.AuthInfoResponse)
		id := fmt.Sprintf("authctx-%d", a.ctxID.Add(1))
		a.mu.Lock()
		a.ctxs[id] = &authCtx{supi: ai.Supi, rand: ai.Rand, xresStar: ai.XresStar, kausf: ai.Kausf}
		a.mu.Unlock()
		// HXRES* lets the SEAF (AMF) pre-verify without learning XRES*.
		hx := sha256.Sum256(append(append([]byte{}, ai.Rand...), ai.XresStar...))
		return &sbi.AuthenticationResponse{
			AuthType: ai.AuthType, Rand: ai.Rand, Autn: ai.Autn,
			HxresStar: hx[:16], AuthCtxID: id,
			Link: "/nausf-auth/v1/ue-authentications/" + id + "/5g-aka-confirmation",
		}, nil
	case sbi.OpUEAuthenticationsConfirm:
		r := req.(*sbi.AuthConfirmRequest)
		a.mu.Lock()
		ctx := a.ctxs[r.AuthCtxID]
		delete(a.ctxs, r.AuthCtxID)
		a.mu.Unlock()
		if ctx == nil {
			return nil, fmt.Errorf("ausf: unknown auth context %q", r.AuthCtxID)
		}
		if !hmac.Equal(ctx.xresStar, r.ResStar) {
			return &sbi.AuthConfirmResponse{AuthResult: "AUTHENTICATION_FAILURE"}, nil
		}
		kseaf := hmac.New(sha256.New, ctx.kausf)
		kseaf.Write([]byte("kseaf"))
		return &sbi.AuthConfirmResponse{
			AuthResult: "AUTHENTICATION_SUCCESS",
			Supi:       ctx.supi,
			Kseaf:      kseaf.Sum(nil),
		}, nil
	default:
		return nil, fmt.Errorf("ausf: unsupported operation %s", op.Name())
	}
}
