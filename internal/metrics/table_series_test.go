package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTableColumnWidths(t *testing.T) {
	tab := NewTable("op", "latency")
	tab.Row("a", "x")
	tab.Row("a-much-longer-operation-name", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	// Cell wider than header sets the column width: every line pads to it.
	want := len("a-much-longer-operation-name") + len("  ") + len("latency")
	for i, l := range lines {
		if len(l) != want {
			t.Fatalf("line %d width = %d, want %d: %q", i, len(l), want, l)
		}
	}
	// Separator row is dashes sized to the widest cell per column.
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("a-much-longer-operation-name"))) {
		t.Fatalf("separator row wrong: %q", lines[1])
	}
}

func TestTableDurationRounding(t *testing.T) {
	tab := NewTable("d")
	tab.Row(1234567 * time.Nanosecond) // >= 1ms: rounded to 10µs
	tab.Row(12345 * time.Nanosecond)   // >= 1µs: rounded to 10ns
	tab.Row(123 * time.Nanosecond)     // < 1µs: raw
	tab.Row(3.14159)                   // float64: two decimals
	out := tab.String()
	for _, want := range []string{"1.23ms", "12.35µs", "123ns", "3.14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1.234567ms") || strings.Contains(out, "12.345µs") {
		t.Fatalf("durations not rounded:\n%s", out)
	}
}

func TestSeriesConcurrentAdd(t *testing.T) {
	s := NewSeries("rtt")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(1.0)
			}
		}()
	}
	wg.Wait()
	if got := len(s.Points()); got != 800 {
		t.Fatalf("points = %d, want 800", got)
	}
}

func TestSeriesPointsCopy(t *testing.T) {
	s := NewSeriesSim("cwnd")
	s.AddAt(time.Second, 10)
	pts := s.Points()
	pts[0].V = -1
	if got := s.Points()[0].V; got != 10 {
		t.Fatalf("Points did not copy: mutation leaked, got %v", got)
	}
}

func TestSeriesSimRejectsWallClockAdd(t *testing.T) {
	s := NewSeriesSim("goodput")
	s.AddAt(2*time.Second, 42) // sim-time samples are fine
	if got := s.Points(); len(got) != 1 || got[0].T != 2*time.Second {
		t.Fatalf("AddAt on sim series = %+v", got)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Add on simulated-time series did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "goodput") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	s.Add(1)
}
