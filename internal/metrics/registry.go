package metrics

import (
	"sort"
	"sync"
	"time"
)

// Registry centralizes the counters and histograms that were previously
// scattered across components (ONVM ring-overflow drops, PFCP
// retransmits, SBI circuit-breaker state, UPF buffer depth) behind one
// snapshot/reset surface. Components export into it through their
// ExportMetrics methods; the harness reads one Snapshot.
//
// Values are registered as reader functions, so a component keeps its own
// cheap atomics on the hot path and the registry only pays at snapshot
// time. Several readers may share one name (the core wires three UDM
// connections under "sbi.udm.*"); their values sum. Reset records the
// current readings as a baseline and later snapshots report the delta, so
// monotonic sources need no writable reset hook.
//
// A nil *Registry is a valid no-op at every method, letting components
// call ExportMetrics unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string][]func() uint64
	base     map[string]uint64
	hists    map[string]*Histogram
	owned    map[string]*Counter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string][]func() uint64),
		base:     make(map[string]uint64),
		hists:    make(map[string]*Histogram),
		owned:    make(map[string]*Counter),
	}
}

// RegisterGauge registers a reader under name. Multiple readers under one
// name sum in snapshots.
func (r *Registry) RegisterGauge(name string, load func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = append(r.counters[name], load)
	r.mu.Unlock()
}

// RegisterCounter registers an existing counter under its own name.
func (r *Registry) RegisterCounter(c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.RegisterGauge(c.Name(), c.Load)
}

// Counter returns the registry-owned counter with the given name,
// creating and registering it on first use. With a nil registry it
// returns a detached counter, so call sites need no nil checks.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return NewCounter(name)
	}
	r.mu.Lock()
	c := r.owned[name]
	if c == nil {
		c = NewCounter(name)
		r.owned[name] = c
		r.counters[name] = append(r.counters[name], c.Load)
	}
	r.mu.Unlock()
	return c
}

// RegisterHistogram registers h under name (last registration wins).
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Histogram returns the registered histogram with the given name,
// creating one on first use. With a nil registry it returns a detached
// histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// HistStats is a histogram summary inside a Snapshot. All fields are
// computed under one histogram lock (Histogram.Stats), so they describe
// a single consistent sample population.
type HistStats struct {
	Count                     int
	Mean, P50, P90, P99, P999 time.Duration
	Min, Max                  time.Duration
}

// Snapshot is a point-in-time reading of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64
	Histograms map[string]HistStats
}

// Snapshot reads every registered counter/gauge (summing shared names and
// subtracting the Reset baseline) and summarizes every histogram.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Histograms: make(map[string]HistStats),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, loads := range r.counters {
		var v uint64
		for _, load := range loads {
			v += load()
		}
		if base := r.base[name]; v >= base {
			v -= base
		}
		snap.Counters[name] = v
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Stats()
	}
	return snap
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes the registry's view: counter/gauge readings become the new
// baseline and histograms are cleared. Component-side atomics are not
// touched, so concurrent hot paths never observe a reset.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, loads := range r.counters {
		var v uint64
		for _, load := range loads {
			v += load()
		}
		r.base[name] = v
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Table renders the counter part of a snapshot as a sorted two-column
// table, for the harness's summary output.
func (s Snapshot) Table() *Table {
	tab := NewTable("metric", "value")
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tab.Row(n, s.Counters[n])
	}
	return tab
}
