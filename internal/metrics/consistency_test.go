package metrics

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The convenience quantiles must agree with the nearest-rank definition
// on a known distribution: 1..1000µs, inserted shuffled.
func TestHistogramConvenienceQuantiles(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(11))
	for _, i := range rng.Perm(1000) {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	for _, tc := range []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"P50", h.P50(), 500 * time.Microsecond},
		{"P90", h.P90(), 900 * time.Microsecond},
		{"P99", h.P99(), 990 * time.Microsecond},
		// Nearest-rank over binary floats: 99.9/100*1000 lands a hair
		// above 999, and the ceil takes the last sample.
		{"P999", h.P999(), 1000 * time.Microsecond},
	} {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
	if h.P50() > h.P90() || h.P90() > h.P99() || h.P99() > h.P999() {
		t.Error("quantiles not monotone")
	}

	// A single observation answers every quantile identically.
	one := NewHistogram()
	one.Observe(7 * time.Millisecond)
	if one.P50() != 7*time.Millisecond || one.P999() != 7*time.Millisecond {
		t.Errorf("single-sample quantiles: p50=%v p999=%v, want 7ms both", one.P50(), one.P999())
	}

	// Empty histograms answer zero, not panic.
	empty := NewHistogram()
	if empty.P50() != 0 || empty.P999() != 0 {
		t.Error("empty histogram quantiles must be 0")
	}
}

// Stats must describe one population: every summary taken while writers
// hammer the histogram has to be internally ordered (min <= p50 <= p90
// <= p99 <= p999 <= max) with a count covering all of them. Stringing
// Count()/Percentile() calls together would fail this.
func TestHistogramStatsConsistentUnderWriters(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(rng.Int63n(int64(time.Millisecond))))
			}
		}(int64(w))
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	prevCount := 0
	for time.Now().Before(deadline) {
		st := h.Stats()
		if st.Count < prevCount {
			t.Fatalf("count went backwards: %d -> %d", prevCount, st.Count)
		}
		prevCount = st.Count
		if st.Count == 0 {
			continue
		}
		if st.Min > st.P50 || st.P50 > st.P90 || st.P90 > st.P99 ||
			st.P99 > st.P999 || st.P999 > st.Max {
			t.Fatalf("torn summary: %+v", st)
		}
		if st.Mean < st.Min || st.Mean > st.Max {
			t.Fatalf("mean %v outside [min %v, max %v]", st.Mean, st.Min, st.Max)
		}
	}
	close(stop)
	wg.Wait()
}

// Snapshot and Reset racing live writers must stay safe (this test runs
// under -race in the tier-1 gate) and deliver consistent readings:
// counter values never exceed what writers have published, and once the
// writers stop, a Reset followed by known increments reads back exactly.
func TestRegistrySnapshotResetRace(t *testing.T) {
	r := NewRegistry()
	var published atomic.Uint64
	c := r.Counter("race.counter")
	h := r.Histogram("race.latency")
	var hot atomic.Uint64
	r.RegisterGauge("race.gauge", hot.Load)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				published.Add(1)
				c.Add(1)
				hot.Add(1)
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%16 == 0 {
				r.Reset()
			}
			snap := r.Snapshot()
			// The snapshot ran after `published` was read below it, so a
			// post-reset counter can never exceed everything published.
			if got := snap.Counters["race.counter"]; got > published.Load() {
				t.Errorf("snapshot counter %d > published %d", got, published.Load())
				return
			}
			if st, ok := snap.Histograms["race.latency"]; ok && st.Count > 0 && st.P99 != time.Microsecond {
				t.Errorf("histogram p99 %v, want 1µs (uniform input)", st.P99)
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiescent epilogue: exact accounting after a reset.
	r.Reset()
	c.Add(5)
	hot.Add(3)
	h.Observe(2 * time.Millisecond)
	snap := r.Snapshot()
	if got := snap.Counters["race.counter"]; got != 5 {
		t.Errorf("post-reset counter = %d, want 5", got)
	}
	if got := snap.Counters["race.gauge"]; got != 3 {
		t.Errorf("post-reset gauge delta = %d, want 3", got)
	}
	if st := snap.Histograms["race.latency"]; st.Count != 1 || st.P50 != 2*time.Millisecond {
		t.Errorf("post-reset histogram = %+v, want single 2ms sample", st)
	}
}
