// Package metrics provides the measurement utilities used by the
// evaluation harness: latency histograms with percentiles, time-series
// recorders for RTT-over-time plots, and fixed-width table printing that
// mirrors the rows the paper reports.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named monotonic counter, safe for concurrent use. The data
// planes export their drop/overflow counts through Counters so the chaos
// suite and the benches read one consistent surface.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter creates a counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Name returns the counter's label.
func (c *Counter) Name() string { return c.name }

// String renders "name=value".
func (c *Counter) String() string {
	return fmt.Sprintf("%s=%d", c.name, c.v.Load())
}

// Histogram collects duration samples and reports distribution summaries.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	// min/max are tracked incrementally on Observe so reading them never
	// forces a full percentile sort.
	min, max time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if len(h.samples) == 0 || d < h.min {
		h.min = d
	}
	if len(h.samples) == 0 || d > h.max {
		h.max = d
	}
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

func (h *Histogram) percentileLocked(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// P50 returns the median.
func (h *Histogram) P50() time.Duration { return h.Percentile(50) }

// P90 returns the 90th percentile.
func (h *Histogram) P90() time.Duration { return h.Percentile(90) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// P999 returns the 99.9th percentile.
func (h *Histogram) P999() time.Duration { return h.Percentile(99.9) }

// Stats summarizes the histogram under a single lock acquisition, so
// every field describes the same sample set even while writers keep
// observing concurrently. Snapshot readers (the registry, the telemetry
// sampler) must use this instead of stringing Count/Mean/Percentile
// calls together, which would each see a different population.
func (h *Histogram) Stats() HistStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistStats{Count: len(h.samples), Min: h.min, Max: h.max}
	if st.Count == 0 {
		return st
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	st.Mean = sum / time.Duration(st.Count)
	st.P50 = h.percentileLocked(50)
	st.P90 = h.percentileLocked(90)
	st.P99 = h.percentileLocked(99)
	st.P999 = h.percentileLocked(99.9)
	return st
}

// Min returns the smallest sample (0 with no samples) without sorting.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample (0 with no samples) without sorting.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Summary renders "mean p50 p99 max (n)" in a compact line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p99=%v max=%v n=%d",
		h.Mean().Round(time.Microsecond), h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond), h.Max().Round(time.Microsecond), h.Count())
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.min, h.max = 0, 0
	h.mu.Unlock()
}

// Point is one time-series sample.
type Point struct {
	T time.Duration // offset from series start
	V float64
}

// Series is an append-only time series (RTT over time, cwnd over time...).
type Series struct {
	mu     sync.Mutex
	name   string
	start  time.Time
	sim    bool // simulated-time series: offsets come from AddAt only
	points []Point
}

// NewSeries creates a wall-clock series anchored at now; Add stamps
// samples with the offset since creation.
func NewSeries(name string) *Series {
	return &Series{name: name, start: time.Now()}
}

// NewSeriesSim creates a simulated-time series: it takes no wall-clock
// anchor, samples are stamped exclusively through AddAt with offsets from
// the simulation clock. Add panics on such a series — mixing the host
// clock into a netsim timeline is always a bug.
func NewSeriesSim(name string) *Series {
	return &Series{name: name, sim: true}
}

// Add records v at the current wall-clock instant.
func (s *Series) Add(v float64) {
	if s.sim {
		panic("metrics: wall-clock Add on simulated-time series " + s.name)
	}
	s.AddAt(time.Since(s.start), v)
}

// AddAt records v at a specific offset (for simulated time).
func (s *Series) AddAt(t time.Duration, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns a copy of the samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// Name returns the series label.
func (s *Series) Name() string { return s.name }

// MaxV returns the largest value in the series.
func (s *Series) MaxV() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Table prints aligned rows, the way the harness reproduces the paper's
// tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			// Keep two extra digits below the leading unit so sub-µs
			// transport costs stay visible in the tables.
			switch {
			case v >= time.Millisecond:
				row[i] = v.Round(10 * time.Microsecond).String()
			case v >= time.Microsecond:
				row[i] = v.Round(10 * time.Nanosecond).String()
			default:
				row[i] = v.String()
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

// CountAbove returns the number of samples strictly greater than d.
func (h *Histogram) CountAbove(d time.Duration) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, s := range h.samples {
		if s > d {
			n++
		}
	}
	return n
}
