package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if got := h.Min(); got != 1*time.Millisecond {
		t.Fatalf("Min = %v", got)
	}
	if !strings.Contains(h.Summary(), "n=100") {
		t.Fatalf("Summary = %q", h.Summary())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		last := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return h.Min() <= h.Percentile(50) && h.Percentile(50) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("rtt")
	if s.Name() != "rtt" {
		t.Fatal("name")
	}
	if s.MaxV() != 0 {
		t.Fatal("empty MaxV should be 0")
	}
	s.AddAt(time.Second, 1.5)
	s.AddAt(2*time.Second, 3.0)
	s.AddAt(3*time.Second, 2.0)
	pts := s.Points()
	if len(pts) != 3 || pts[1].V != 3.0 || pts[1].T != 2*time.Second {
		t.Fatalf("points %+v", pts)
	}
	if s.MaxV() != 3.0 {
		t.Fatalf("MaxV = %f", s.MaxV())
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("system", "rtt", "drops")
	tab.Row("free5GC", 63*time.Millisecond, 43)
	tab.Row("L25GC", 30*time.Millisecond, 0)
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "system") || !strings.Contains(lines[2], "free5GC") {
		t.Fatalf("layout wrong:\n%s", out)
	}
	// Columns align: the "rtt" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "rtt")
	if !strings.HasPrefix(lines[2][idx:], "63ms") || !strings.HasPrefix(lines[3][idx:], "30ms") {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("drops")
	if c.Load() != 0 || c.Name() != "drops" {
		t.Fatalf("fresh counter: %v", c)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if c.Load() != 8*1000+8*5 {
		t.Fatalf("count = %d", c.Load())
	}
	if c.String() != "drops=8040" {
		t.Fatalf("String() = %q", c.String())
	}
}
