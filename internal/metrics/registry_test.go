package metrics

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryNilIsInert(t *testing.T) {
	var r *Registry
	r.RegisterGauge("x", func() uint64 { return 1 })
	r.RegisterCounter(NewCounter("y"))
	r.RegisterHistogram("h", NewHistogram())
	c := r.Counter("z")
	c.Inc() // detached but usable
	h := r.Histogram("h2")
	h.Observe(time.Millisecond)
	r.Reset()
	if got := r.Snapshot(); len(got.Counters) != 0 || len(got.Histograms) != 0 {
		t.Fatalf("nil registry snapshot = %+v", got)
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
}

func TestRegistrySnapshotSumsSharedNames(t *testing.T) {
	r := NewRegistry()
	// Three readers under one name, as the core's three UDM connections
	// register their invoke counters.
	var a, b atomic.Uint64
	r.RegisterGauge("sbi.udm.invokes", a.Load)
	r.RegisterGauge("sbi.udm.invokes", b.Load)
	c := NewCounter("sbi.udm.invokes")
	r.RegisterCounter(c)
	a.Store(2)
	b.Store(3)
	c.Add(5)
	if got := r.Snapshot().Counters["sbi.udm.invokes"]; got != 10 {
		t.Fatalf("summed value = %d, want 10", got)
	}
}

func TestRegistryCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("onvm.drops")
	c2 := r.Counter("onvm.drops")
	if c1 != c2 {
		t.Fatal("Counter must return the same instance per name")
	}
	c1.Add(7)
	if got := r.Snapshot().Counters["onvm.drops"]; got != 7 {
		t.Fatalf("owned counter snapshot = %d", got)
	}
}

func TestRegistryResetBaselines(t *testing.T) {
	r := NewRegistry()
	var v atomic.Uint64
	r.RegisterGauge("pfcp.retransmits", v.Load)
	h := r.Histogram("lat")
	h.Observe(time.Millisecond)
	v.Store(4)
	r.Reset()
	if got := r.Snapshot().Counters["pfcp.retransmits"]; got != 0 {
		t.Fatalf("post-reset reading = %d, want 0", got)
	}
	if got := r.Snapshot().Histograms["lat"].Count; got != 0 {
		t.Fatalf("post-reset histogram count = %d", got)
	}
	v.Store(9)
	if got := r.Snapshot().Counters["pfcp.retransmits"]; got != 5 {
		t.Fatalf("delta since baseline = %d, want 5", got)
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("upf.lat")
	if h2 := r.Histogram("upf.lat"); h2 != h {
		t.Fatal("Histogram must return the same instance per name")
	}
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	hs := r.Snapshot().Histograms["upf.lat"]
	if hs.Count != 10 || hs.Min != time.Millisecond || hs.Max != 10*time.Millisecond {
		t.Fatalf("hist stats = %+v", hs)
	}
	if hs.P50 != 5*time.Millisecond {
		t.Fatalf("p50 = %v", hs.P50)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two")
	r.Counter("a.one")
	r.RegisterHistogram("c.hist", NewHistogram())
	want := []string{"a.one", "b.two", "c.hist"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestSnapshotTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Add(1)
	out := r.Snapshot().Table().String()
	ai, zi := strings.Index(out, "a.first"), strings.Index(out, "z.last")
	if ai < 0 || zi < 0 || ai > zi {
		t.Fatalf("snapshot table not sorted:\n%s", out)
	}
}
