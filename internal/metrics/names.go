package metrics

// LintNames is the registered-name table for every counter, series,
// gauge and histogram the tree creates — the generalization of
// TestRegistryNameSet that the metricnames analyzer enforces at every
// call site (DESIGN §13). Entries are '*'-globs: a single entry covers a
// per-unit or per-class family ("supervisor.<unit>.detect"). Dashboards
// and bench baselines key on these names; add an entry here (reviewed)
// before introducing a new observable, or the lint gate fails.
var LintNames = []string{
	// Supervisor per-unit recovery figures ("supervisor.<unit>.*").
	"supervisor.*.recoveries",
	"supervisor.*.lost_deliveries",
	"supervisor.*.replay_depth",
	"supervisor.*.detect",
	"supervisor.*.downtime",
	"supervisor.*.generation",
	"supervisor.*.log_depth",

	// SBI transport + retry/breaker counters ("sbi.<service>.*").
	"sbi.*.invokes",
	"sbi.*.errors",
	"sbi.*.retries",
	"sbi.*.shed",
	"sbi.*.pushback",
	"sbi.*.breaker_trips",
	"sbi.*.breaker_open",

	// PFCP endpoint reliability counters ("pfcp.<peer>.*").
	"pfcp.*.retransmits",
	"pfcp.*.timeouts",

	// N4 association lifecycle: state machine gauges, heartbeat/path
	// outcomes, degraded-mode rejections, intent-journal depth and
	// reconciliation figures ("pfcp.assoc.*").
	"pfcp.assoc.*",

	// UPF-U datapath and session-table gauges.
	"upf.ul_fwd",
	"upf.dl_fwd",
	"upf.buffered",
	"upf.dropped",
	"upf.misses",
	"upf.rate_dropped",
	"upf.sessions",
	"upf.buffer_depth",

	// Kernel-path (AF_PACKET emulation) forwarding gauges.
	"kern.ul_fwd",
	"kern.dl_fwd",
	"kern.dropped",
	"kern.injected",

	// ONVM shared-memory switch ("onvm.*"; per-worker rows are built
	// with Sprintf and registered under onvm.worker<N>.*).
	"onvm.switched",
	"onvm.dropped",
	"onvm.tx_drops",
	"onvm.ring_overflow_drops",
	"onvm.workers",
	"onvm.worker*.switched",
	"onvm.worker*.dropped",
	"onvm.pool.size",
	"onvm.pool.in_use",
	// Packet-pool overflow drops carry the pool's security-domain
	// prefix, which is unit-chosen ("l25gc", "amf", ...).
	"*.ring_overflow_drops",

	// Overload-control admission families ("overload.<nf>.*").
	"overload.*.admit.*",
	"overload.*.shed.*",
	"overload.*.depth_hw.*",
	"overload.*.depth.*",
	"overload.*.level",
	"overload.*.tightens",
	"overload.*.relaxes",

	// Fault-injector per-kind totals ("<prefix>.<kind>").
	"fault.*",

	// Traffic/netsim measurement series.
	"rtt_ms",
	"rtt",
	"cwnd",
	"goodput",

	// Continuous-telemetry pipeline: runtime probes
	// (telemetry.heap_bytes, telemetry.goroutines, ...), the dump
	// counter, and per-watched-stage windowed quantile series
	// ("telemetry.stage.<span>.*"). The sampler additionally derives
	// ".count"/".p50_us"/".p99_us"/".mean_us" keys from registered
	// histogram names; TestSamplerReadsOnlyRegisteredNames strips those
	// suffixes before checking this table.
	"telemetry.*",
}
