package codec

import (
	"reflect"
	"testing"
	"testing/quick"
)

// testMsg exercises every field kind.
type testMsg struct {
	A uint32  `json:"a"`
	B uint64  `json:"b"`
	C string  `json:"c"`
	D []byte  `json:"d"`
	E bool    `json:"e"`
	F float64 `json:"f"`
}

func (m *testMsg) Schema() []Field {
	return []Field{
		{Tag: 1, Kind: KindUint32, Ptr: &m.A},
		{Tag: 2, Kind: KindUint64, Ptr: &m.B},
		{Tag: 3, Kind: KindString, Ptr: &m.C},
		{Tag: 4, Kind: KindBytes, Ptr: &m.D},
		{Tag: 5, Kind: KindBool, Ptr: &m.E},
		{Tag: 6, Kind: KindFloat64, Ptr: &m.F},
	}
}

func sample() *testMsg {
	return &testMsg{
		A: 42, B: 1 << 40, C: "imsi-208930000000001",
		D: []byte{0xde, 0xad, 0xbe, 0xef}, E: true, F: 3.25,
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			in := sample()
			b, err := c.Marshal(in)
			if err != nil {
				t.Fatal(err)
			}
			out := &testMsg{}
			if err := c.Unmarshal(b, out); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
			}
		})
	}
}

func TestEmptyMessageAllCodecs(t *testing.T) {
	for _, c := range All() {
		in := &testMsg{}
		b, err := c.Marshal(in)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out := &testMsg{A: 99, C: "stale"} // ensure zero values overwrite
		if err := c.Unmarshal(b, out); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if out.A != 0 || out.C != "" {
			t.Fatalf("%s: zero values not restored: %+v", c.Name(), out)
		}
	}
}

func TestProtoSkipsUnknownFields(t *testing.T) {
	// Encode with full schema, decode into a message whose schema lacks
	// some tags: the decoder must skip gracefully (forward compatibility).
	in := sample()
	b, err := Proto{}.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	partial := &partialMsg{}
	if err := (Proto{}).Unmarshal(b, partial); err != nil {
		t.Fatal(err)
	}
	if partial.C != in.C {
		t.Fatalf("C = %q, want %q", partial.C, in.C)
	}
}

type partialMsg struct {
	C string
}

func (m *partialMsg) Schema() []Field {
	return []Field{{Tag: 3, Kind: KindString, Ptr: &m.C}}
}

func TestFlatTruncated(t *testing.T) {
	in := sample()
	b, _ := Flat{}.Marshal(in)
	out := &testMsg{}
	if err := (Flat{}).Unmarshal(b[:8], out); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Corrupt a string offset to point beyond the buffer.
	bad := append([]byte(nil), b...)
	bad[2*8] = 0xff
	bad[2*8+1] = 0xff
	if err := (Flat{}).Unmarshal(bad, out); err != ErrTruncated {
		t.Fatalf("bad offset err = %v, want ErrTruncated", err)
	}
}

func TestProtoTruncated(t *testing.T) {
	in := sample()
	b, _ := Proto{}.Marshal(in)
	out := &testMsg{}
	if err := (Proto{}).Unmarshal(b[:len(b)-2], out); err == nil {
		t.Fatal("truncated proto should fail")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"json", "proto", "flat"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("xml"); err == nil {
		t.Fatal("unknown codec should error")
	}
}

// Property: all codecs round-trip arbitrary field values identically.
func TestRoundTripProperty(t *testing.T) {
	for _, c := range All() {
		c := c
		f := func(a uint32, b uint64, s string, d []byte, e bool, fl float64) bool {
			in := &testMsg{A: a, B: b, C: s, D: d, E: e, F: fl}
			if in.D == nil {
				in.D = []byte{}
			}
			raw, err := c.Marshal(in)
			if err != nil {
				return false
			}
			out := &testMsg{}
			if err := c.Unmarshal(raw, out); err != nil {
				return false
			}
			if out.D == nil {
				out.D = []byte{}
			}
			return reflect.DeepEqual(in, out)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

// The Fig. 6 ranking on serialized size: flat/proto are binary and compact
// relative to JSON for this message shape.
func TestBinaryCodecsSmallerThanJSON(t *testing.T) {
	in := sample()
	jb, _ := JSON{}.Marshal(in)
	pb, _ := Proto{}.Marshal(in)
	if len(pb) >= len(jb) {
		t.Fatalf("proto (%d bytes) should be smaller than JSON (%d bytes)", len(pb), len(jb))
	}
}

func BenchmarkMarshal(b *testing.B) {
	in := sample()
	for _, c := range All() {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Marshal(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	in := sample()
	for _, c := range All() {
		c := c
		raw, _ := c.Marshal(in)
		b.Run(c.Name(), func(b *testing.B) {
			out := &testMsg{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.Unmarshal(raw, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
