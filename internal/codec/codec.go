// Package codec implements the serialization alternatives compared in
// Fig. 6 of the paper for SBI message exchange:
//
//   - JSON — the de-facto REST encoding used by free5GC (encoding/json).
//   - Proto — a protobuf-style tag/varint wire format (Buyakar et al.'s
//     gRPC approach), hand-implemented so the module stays stdlib-only.
//   - Flat — a FlatBuffers-style fixed-offset format (Neutrino's choice)
//     whose deserialization is near zero-cost: accessors read fields in
//     place without a parse step.
//
// The fourth alternative, L²5GC's shared memory, needs no codec at all —
// message structs are passed by pointer — which is exactly the comparison
// the figure makes. Messages describe themselves with a Schema, so each
// codec is written once and works for every SBI message.
package codec

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Kind enumerates field types supported by schemas.
type Kind uint8

// Field kinds.
const (
	KindUint32 Kind = iota
	KindUint64
	KindString
	KindBytes
	KindBool
	KindFloat64
)

// Field describes one message field: a stable tag, its kind, and a pointer
// to the Go field.
type Field struct {
	Tag  uint32
	Kind Kind
	Ptr  any // *uint32, *uint64, *string, *[]byte, *bool or *float64
}

// Message is any SBI payload that exposes a schema.
type Message interface {
	Schema() []Field
}

// FieldAppender is an optional Message refinement for hot-path types:
// AppendSchema appends the message's fields to fs, letting encoders
// reuse one pooled scratch slice across calls instead of allocating a
// fresh schema per message. Types implementing it conventionally define
// Schema as AppendSchema(nil), keeping one source of truth.
type FieldAppender interface {
	AppendSchema(fs []Field) []Field
}

// Codec serializes schema-described messages.
type Codec interface {
	Name() string
	Marshal(m Message) ([]byte, error)
	Unmarshal(b []byte, m Message) error
}

// Errors returned by the binary codecs.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrBadField  = errors.New("codec: field/kind mismatch")
)

// --- JSON ---

// JSON encodes with encoding/json; struct tags on the message types drive
// the field names as the OpenAPI-generated free5GC models do.
type JSON struct{}

// Name implements Codec.
func (JSON) Name() string { return "json" }

// Marshal implements Codec.
func (JSON) Marshal(m Message) ([]byte, error) { return json.Marshal(m) }

// Unmarshal implements Codec.
func (JSON) Unmarshal(b []byte, m Message) error { return json.Unmarshal(b, m) }

// --- Proto (tag/varint wire format) ---

// Proto is the protobuf-style codec: each field is a varint key
// (tag<<3|wiretype) followed by a varint or length-delimited value.
type Proto struct{}

// Name implements Codec.
func (Proto) Name() string { return "proto" }

const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
)

// Marshal implements Codec.
func (p Proto) Marshal(m Message) ([]byte, error) {
	return p.AppendMarshal(make([]byte, 0, 128), m)
}

// fieldScratch recycles schema slices for FieldAppender messages so the
// append-marshal path performs zero allocations in steady state.
var fieldScratch = sync.Pool{
	New: func() any {
		fs := make([]Field, 0, 16)
		return &fs
	},
}

// AppendMarshal encodes m appended to dst and returns the extended
// slice — the allocation-free spelling hot paths use with pooled
// buffers (Marshal is AppendMarshal into a fresh slice). Messages
// implementing FieldAppender avoid even the schema-slice allocation.
func (Proto) AppendMarshal(dst []byte, m Message) ([]byte, error) {
	var (
		fields  []Field
		scratch *[]Field
	)
	if fa, ok := m.(FieldAppender); ok {
		scratch = fieldScratch.Get().(*[]Field)
		fields = fa.AppendSchema((*scratch)[:0])
		defer func() {
			*scratch = fields[:0]
			fieldScratch.Put(scratch)
		}()
	} else {
		fields = m.Schema()
	}
	b := dst
	for _, f := range fields {
		switch f.Kind {
		case KindUint32:
			b = appendKey(b, f.Tag, wireVarint)
			b = binary.AppendUvarint(b, uint64(*f.Ptr.(*uint32)))
		case KindUint64:
			b = appendKey(b, f.Tag, wireVarint)
			b = binary.AppendUvarint(b, *f.Ptr.(*uint64))
		case KindBool:
			b = appendKey(b, f.Tag, wireVarint)
			v := uint64(0)
			if *f.Ptr.(*bool) {
				v = 1
			}
			b = binary.AppendUvarint(b, v)
		case KindString:
			s := *f.Ptr.(*string)
			b = appendKey(b, f.Tag, wireBytes)
			b = binary.AppendUvarint(b, uint64(len(s)))
			b = append(b, s...)
		case KindBytes:
			s := *f.Ptr.(*[]byte)
			b = appendKey(b, f.Tag, wireBytes)
			b = binary.AppendUvarint(b, uint64(len(s)))
			b = append(b, s...)
		case KindFloat64:
			b = appendKey(b, f.Tag, wireFixed64)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(*f.Ptr.(*float64)))
		default:
			return nil, fmt.Errorf("%w: kind %d", ErrBadField, f.Kind)
		}
	}
	return b, nil
}

func appendKey(b []byte, tag uint32, wt uint8) []byte {
	return binary.AppendUvarint(b, uint64(tag)<<3|uint64(wt))
}

// Unmarshal implements Codec.
func (Proto) Unmarshal(b []byte, m Message) error {
	byTag := make(map[uint32]Field, 16)
	for _, f := range m.Schema() {
		byTag[f.Tag] = f
	}
	for len(b) > 0 {
		key, n := binary.Uvarint(b)
		if n <= 0 {
			return ErrTruncated
		}
		b = b[n:]
		tag := uint32(key >> 3)
		wt := uint8(key & 7)
		f, known := byTag[tag]
		switch wt {
		case wireVarint:
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return ErrTruncated
			}
			b = b[n:]
			if !known {
				continue
			}
			switch f.Kind {
			case KindUint32:
				*f.Ptr.(*uint32) = uint32(v)
			case KindUint64:
				*f.Ptr.(*uint64) = v
			case KindBool:
				*f.Ptr.(*bool) = v != 0
			default:
				return ErrBadField
			}
		case wireFixed64:
			if len(b) < 8 {
				return ErrTruncated
			}
			v := binary.LittleEndian.Uint64(b)
			b = b[8:]
			if !known {
				continue
			}
			if f.Kind != KindFloat64 {
				return ErrBadField
			}
			*f.Ptr.(*float64) = math.Float64frombits(v)
		case wireBytes:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return ErrTruncated
			}
			v := b[n : n+int(l)]
			b = b[n+int(l):]
			if !known {
				continue
			}
			switch f.Kind {
			case KindString:
				*f.Ptr.(*string) = string(v)
			case KindBytes:
				*f.Ptr.(*[]byte) = append([]byte(nil), v...)
			default:
				return ErrBadField
			}
		default:
			return fmt.Errorf("codec: unknown wire type %d", wt)
		}
	}
	return nil
}

// --- Flat (fixed-offset table) ---

// Flat is the FlatBuffers-style codec: a fixed-size slot table (one 8-byte
// slot per schema field, in schema order) followed by a heap for variable
// data. Scalar fields live in the slot; string/bytes slots hold
// offset(4)+len(4) into the heap. "Deserialization" is a bounds check plus
// in-place reads, which is what makes FlatBuffers cheap to decode and is
// faithfully reproduced here.
type Flat struct{}

// Name implements Codec.
func (Flat) Name() string { return "flat" }

const flatSlot = 8

// Marshal implements Codec.
func (Flat) Marshal(m Message) ([]byte, error) {
	fields := m.Schema()
	table := len(fields) * flatSlot
	b := make([]byte, table, table+64)
	for i, f := range fields {
		slot := b[i*flatSlot : i*flatSlot+flatSlot]
		switch f.Kind {
		case KindUint32:
			binary.LittleEndian.PutUint64(slot, uint64(*f.Ptr.(*uint32)))
		case KindUint64:
			binary.LittleEndian.PutUint64(slot, *f.Ptr.(*uint64))
		case KindBool:
			if *f.Ptr.(*bool) {
				slot[0] = 1
			}
		case KindFloat64:
			binary.LittleEndian.PutUint64(slot, math.Float64bits(*f.Ptr.(*float64)))
		case KindString:
			s := *f.Ptr.(*string)
			binary.LittleEndian.PutUint32(slot[0:4], uint32(len(b)))
			binary.LittleEndian.PutUint32(slot[4:8], uint32(len(s)))
			b = append(b, s...)
		case KindBytes:
			s := *f.Ptr.(*[]byte)
			binary.LittleEndian.PutUint32(slot[0:4], uint32(len(b)))
			binary.LittleEndian.PutUint32(slot[4:8], uint32(len(s)))
			b = append(b, s...)
		default:
			return nil, fmt.Errorf("%w: kind %d", ErrBadField, f.Kind)
		}
	}
	return b, nil
}

// Unmarshal implements Codec.
func (Flat) Unmarshal(b []byte, m Message) error {
	fields := m.Schema()
	if len(b) < len(fields)*flatSlot {
		return ErrTruncated
	}
	for i, f := range fields {
		slot := b[i*flatSlot : i*flatSlot+flatSlot]
		switch f.Kind {
		case KindUint32:
			*f.Ptr.(*uint32) = uint32(binary.LittleEndian.Uint64(slot))
		case KindUint64:
			*f.Ptr.(*uint64) = binary.LittleEndian.Uint64(slot)
		case KindBool:
			*f.Ptr.(*bool) = slot[0] != 0
		case KindFloat64:
			*f.Ptr.(*float64) = math.Float64frombits(binary.LittleEndian.Uint64(slot))
		case KindString, KindBytes:
			off := binary.LittleEndian.Uint32(slot[0:4])
			l := binary.LittleEndian.Uint32(slot[4:8])
			if uint64(off)+uint64(l) > uint64(len(b)) {
				return ErrTruncated
			}
			v := b[off : off+l]
			if f.Kind == KindString {
				*f.Ptr.(*string) = string(v)
			} else {
				*f.Ptr.(*[]byte) = append([]byte(nil), v...)
			}
		default:
			return ErrBadField
		}
	}
	return nil
}

// All returns the codecs in the order Fig. 6 compares them.
func All() []Codec { return []Codec{JSON{}, Flat{}, Proto{}} }

// ByName returns the codec with the given name.
func ByName(name string) (Codec, error) {
	for _, c := range All() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("codec: unknown codec %q", name)
}
