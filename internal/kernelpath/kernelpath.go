// Package kernelpath is the free5GC-style baseline data plane: the UPF
// forwards through real kernel UDP sockets on loopback, paying the
// syscall, copy and interrupt-driven wakeup costs that Appendix B
// attributes to the gtp5g kernel-module implementation. It reuses the same
// session state, classifiers and smart-buffering logic as the
// shared-memory UPF, so throughput and latency comparisons against the
// ONVM path (Fig. 10) isolate exactly the transport difference.
package kernelpath

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/classifier"
	"l25gc/internal/faults"
	"l25gc/internal/gtp"
	"l25gc/internal/metrics"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/rules"
	"l25gc/internal/trace"
	"l25gc/internal/upf"
)

// injConf groups a fault injector with the data-path point names; it is
// installed atomically so the socket loops never race SetInjector.
type injConf struct {
	inj  *faults.Injector
	n3rx faults.Point // GTP-U frames arriving from gNBs
	n6rx faults.Point // IP packets arriving from the DN
	n3tx faults.Point // encapsulated DL frames toward gNBs
	n6tx faults.Point // decapsulated UL packets toward the DN
}

// KernelUPF is the kernel-socket UPF data path.
type KernelUPF struct {
	state *upf.State
	upfc  *upf.UPFC
	pool  *pktbuf.Pool

	n3 *net.UDPConn // GTP-U side (gNB <-> UPF)
	n6 *net.UDPConn // plain IP side (UPF <-> DN)

	mu       sync.RWMutex
	gnbAddrs map[pkt.Addr]*net.UDPAddr // FAR outer addr -> gNB socket addr
	dnAddr   *net.UDPAddr

	ulFwd, dlFwd atomic.Uint64
	dropped      atomic.Uint64
	injected     atomic.Uint64 // packets dropped/corrupted by the injector

	faultc atomic.Pointer[injConf]
	tracec atomic.Pointer[trace.Track]

	closed atomic.Bool
	wg     sync.WaitGroup
}

// New creates a kernel-path UPF listening on two ephemeral loopback
// sockets. upfc must be built over the same state (it provides PFCP
// handling and the drain hook wiring).
func New(state *upf.State, upfc *upf.UPFC) (*KernelUPF, error) {
	n3, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	n6, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		n3.Close()
		return nil, err
	}
	// Size the socket buffers for line-rate bursts, as a production
	// deployment would (sysctl net.core.rmem_max tuning).
	for _, c := range []*net.UDPConn{n3, n6} {
		c.SetReadBuffer(4 << 20)
		c.SetWriteBuffer(4 << 20)
	}
	k := &KernelUPF{
		state:    state,
		upfc:     upfc,
		pool:     pktbuf.NewPool(4096, "kernelpath"),
		n3:       n3,
		n6:       n6,
		gnbAddrs: make(map[pkt.Addr]*net.UDPAddr),
	}
	if upfc != nil {
		upfc.OnDrain(k.drainSession)
	}
	k.wg.Add(2)
	go k.n3Loop()
	go k.n6Loop()
	return k, nil
}

// N3Addr returns the GTP-U socket address (gNBs send here).
func (k *KernelUPF) N3Addr() string { return k.n3.LocalAddr().String() }

// N6Addr returns the DN-side socket address.
func (k *KernelUPF) N6Addr() string { return k.n6.LocalAddr().String() }

// RegisterGNB maps a FAR outer-header address to a gNB's UDP endpoint.
func (k *KernelUPF) RegisterGNB(a pkt.Addr, udpAddr string) error {
	ua, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return err
	}
	k.mu.Lock()
	k.gnbAddrs[a] = ua
	k.mu.Unlock()
	return nil
}

// SetDN points the N6 egress at the data-network endpoint.
func (k *KernelUPF) SetDN(udpAddr string) error {
	ua, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return err
	}
	k.mu.Lock()
	k.dnAddr = ua
	k.mu.Unlock()
	return nil
}

// Stats reports forwarded/dropped packet counts.
func (k *KernelUPF) Stats() (ul, dl, dropped uint64) {
	return k.ulFwd.Load(), k.dlFwd.Load(), k.dropped.Load()
}

// InjectedFaults reports packets the fault injector dropped on this path.
func (k *KernelUPF) InjectedFaults() uint64 { return k.injected.Load() }

// SetInjector threads a fault injector through the socket loops. Points
// are prefix+".n3.rx", ".n6.rx", ".n3.tx" and ".n6.tx". The loops reuse
// their receive/scratch buffers, so Drop, Delay and Corrupt apply (the
// corrupt mutation happens in place before parsing); Duplicate/Reorder do
// not — the kernel sockets already provide those behaviors for free when
// needed via loopback re-sends.
func (k *KernelUPF) SetInjector(inj *faults.Injector, prefix string) {
	k.faultc.Store(&injConf{
		inj:  inj,
		n3rx: faults.Point(prefix + ".n3.rx"),
		n6rx: faults.Point(prefix + ".n6.rx"),
		n3tx: faults.Point(prefix + ".n3.tx"),
		n6tx: faults.Point(prefix + ".n6.tx"),
	})
}

// SetTracer installs a trace track for per-stage data-path spans
// ("kern.gtp.decode", "kern.classify", "kern.gtp.encode",
// "kern.syscall.tx", "kern.buffer"); nil disables tracing.
func (k *KernelUPF) SetTracer(tk *trace.Track) { k.tracec.Store(tk) }

// ExportMetrics registers the data-path counters under prefix.
func (k *KernelUPF) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".ul_fwd", k.ulFwd.Load)
	reg.RegisterGauge(prefix+".dl_fwd", k.dlFwd.Load)
	reg.RegisterGauge(prefix+".dropped", k.dropped.Load)
	reg.RegisterGauge(prefix+".injected", k.injected.Load)
}

// decide applies one injector decision to a packet in place. It returns
// false when the packet must be discarded.
func (k *KernelUPF) decide(fc *injConf, p faults.Point, data []byte) bool {
	act := fc.inj.Decide(p, data)
	if act.Drop {
		k.injected.Add(1)
		k.dropped.Add(1)
		return false
	}
	if act.Corrupt {
		k.injected.Add(1)
	}
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	return true
}

// n3Loop receives GTP-U frames from gNBs, decapsulates and forwards the
// inner packet to the DN over the N6 socket.
func (k *KernelUPF) n3Loop() {
	defer k.wg.Done()
	buf := make([]byte, 64*1024)
	var scratch pkt.Parsed
	var hdr gtp.Header
	for {
		n, _, err := k.n3.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if fc := k.faultc.Load(); fc != nil && !k.decide(fc, fc.n3rx, buf[:n]) {
			continue
		}
		tk := k.tracec.Load()
		dec := tk.Start("kern.gtp.decode")
		inner, err := hdr.Decode(buf[:n])
		dec.End()
		if err != nil || hdr.MsgType != gtp.MsgGPDU {
			k.dropped.Add(1)
			continue
		}
		cls := tk.Start("kern.classify")
		ctx, ok := k.state.ByTEID(hdr.TEID)
		if !ok {
			cls.End()
			k.dropped.Add(1)
			continue
		}
		if err := scratch.ParseIPv4(inner); err != nil {
			cls.End()
			k.dropped.Add(1)
			continue
		}
		key := classifier.Key{Tuple: scratch.Tuple, TOS: scratch.TOS, TEID: hdr.TEID, FromAccess: true}
		pdr, far := ctx.Match(&key)
		cls.End()
		if pdr == nil {
			k.dropped.Add(1)
			continue
		}
		if far == nil || far.Action&rules.FARForward == 0 {
			k.dropped.Add(1)
			continue
		}
		k.mu.RLock()
		dn := k.dnAddr
		k.mu.RUnlock()
		if dn == nil {
			k.dropped.Add(1)
			continue
		}
		if fc := k.faultc.Load(); fc != nil && !k.decide(fc, fc.n6tx, inner) {
			continue
		}
		// A second kernel crossing and copy: the baseline's cost.
		tx := tk.Start("kern.syscall.tx")
		_, err = k.n6.WriteToUDP(inner, dn)
		tx.End()
		if err == nil {
			k.ulFwd.Add(1)
		} else {
			k.dropped.Add(1)
		}
	}
}

// n6Loop receives plain IP packets from the DN, classifies, buffers or
// GTP-encapsulates them toward the serving gNB.
func (k *KernelUPF) n6Loop() {
	defer k.wg.Done()
	raw := make([]byte, 64*1024)
	out := make([]byte, 64*1024)
	var scratch pkt.Parsed
	for {
		n, _, err := k.n6.ReadFromUDP(raw)
		if err != nil {
			return
		}
		if fc := k.faultc.Load(); fc != nil && !k.decide(fc, fc.n6rx, raw[:n]) {
			continue
		}
		tk := k.tracec.Load()
		cls := tk.Start("kern.classify")
		if err := scratch.ParseIPv4(raw[:n]); err != nil {
			cls.End()
			k.dropped.Add(1)
			continue
		}
		ctx, ok := k.state.ByUEIP(scratch.IP.Dst)
		if !ok {
			cls.End()
			k.dropped.Add(1)
			continue
		}
		key := classifier.Key{Tuple: scratch.Tuple, TOS: scratch.TOS, FromAccess: false}
		pdr, far := ctx.Match(&key)
		cls.End()
		if pdr == nil {
			k.dropped.Add(1)
			continue
		}
		if far == nil {
			k.dropped.Add(1)
			continue
		}
		if far.Action&rules.FARBuffer != 0 {
			// Smart buffering: copy into a pooled buffer and park it.
			sp := tk.Start("kern.buffer")
			b, err := k.pool.Get()
			if err != nil {
				sp.End()
				k.dropped.Add(1)
				continue
			}
			if b.SetData(raw[:n]) != nil {
				sp.End()
				b.Release()
				k.dropped.Add(1)
				continue
			}
			stored, first := ctx.Park(b)
			sp.End()
			if first && far.Action&rules.FARNotifyCP != 0 && k.upfc != nil {
				go k.upfc.ReportDL(ctx, pdr.ID)
			}
			if !stored {
				b.Release()
				k.dropped.Add(1)
			}
			continue
		}
		if far.Action&rules.FARForward == 0 {
			k.dropped.Add(1)
			continue
		}
		if k.sendDL(out, raw[:n], pdr, far) {
			k.dlFwd.Add(1)
		} else {
			k.dropped.Add(1)
		}
	}
}

// sendDL encapsulates inner into out and transmits to the gNB.
func (k *KernelUPF) sendDL(out, inner []byte, pdr *rules.PDR, far *rules.FAR) bool {
	if !far.HasOuterHeader {
		return false
	}
	qfi := uint8(9)
	if pdr.PDI.HasQFI {
		qfi = pdr.PDI.QFI
	}
	tk := k.tracec.Load()
	enc := tk.Start("kern.gtp.encode")
	hdr := gtp.Header{MsgType: gtp.MsgGPDU, TEID: far.OuterTEID, HasQFI: true, QFI: qfi}
	hn, err := hdr.Encode(out, len(inner))
	if err != nil {
		enc.End()
		return false
	}
	copy(out[hn:], inner) // software copy, as in the kernel module path
	enc.End()
	if fc := k.faultc.Load(); fc != nil && !k.decide(fc, fc.n3tx, out[:hn+len(inner)]) {
		return false
	}
	k.mu.RLock()
	dst := k.gnbAddrs[far.OuterAddr]
	k.mu.RUnlock()
	if dst == nil {
		return false
	}
	tx := tk.Start("kern.syscall.tx")
	_, err = k.n3.WriteToUDP(out[:hn+len(inner)], dst)
	tx.End()
	return err == nil
}

// drainSession releases parked packets toward the session's current FAR.
func (k *KernelUPF) drainSession(ctx *upf.SessCtx) {
	out := make([]byte, 64*1024)
	var scratch pkt.Parsed
	for _, b := range ctx.Drain() {
		if err := scratch.ParseIPv4(b.Bytes()); err == nil {
			key := classifier.Key{Tuple: scratch.Tuple, TOS: scratch.TOS, FromAccess: false}
			if pdr, far := ctx.Match(&key); pdr != nil && far != nil && far.Action&rules.FARForward != 0 {
				if k.sendDL(out, b.Bytes(), pdr, far) {
					k.dlFwd.Add(1)
				}
			}
		}
		b.Release()
	}
}

// Close stops the loops and sockets.
func (k *KernelUPF) Close() error {
	if !k.closed.CompareAndSwap(false, true) {
		return nil
	}
	k.n3.Close()
	k.n6.Close()
	k.wg.Wait()
	return nil
}
