package kernelpath

import (
	"fmt"
	"net"
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/gtp"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
	"l25gc/internal/upf"
)

var (
	ueIP  = pkt.AddrFrom(10, 60, 0, 1)
	n3IP  = pkt.AddrFrom(10, 100, 0, 2)
	gnbIP = pkt.AddrFrom(10, 100, 0, 10)
	dnIP  = pkt.AddrFrom(8, 8, 8, 8)
)

func establishReq(seid uint64) *pfcp.SessionEstablishmentRequest {
	return &pfcp.SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: seid, UEIP: ueIP,
		CreatePDRs: []*rules.PDR{
			{ID: 1, Precedence: 32,
				PDI: rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true,
					UEIP: ueIP, HasUEIP: true},
				OuterHeaderRemoval: true, FARID: 1},
			{ID: 2, Precedence: 32,
				PDI:   rules.PDI{SourceInterface: rules.IfCore, UEIP: ueIP, HasUEIP: true},
				FARID: 2},
		},
		CreateFARs: []*rules.FAR{
			{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
			{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
				HasOuterHeader: true, OuterTEID: 0x5001, OuterAddr: gnbIP},
		},
	}
}

func setup(t *testing.T) (*KernelUPF, *upf.UPFC, uint32, *net.UDPConn, *net.UDPConn) {
	t.Helper()
	state := upf.NewState("ll", 0) // free5GC uses the linear-list lookup
	upfc := upf.NewUPFC(state, n3IP, nil)
	k, err := New(state, upfc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { k.Close() })

	gnb, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gnb.Close() })
	dn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dn.Close() })

	if err := k.RegisterGNB(gnbIP, gnb.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := k.SetDN(dn.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	resp, err := upfc.Handle(100, establishReq(100))
	if err != nil {
		t.Fatal(err)
	}
	teid := resp.(*pfcp.SessionEstablishmentResponse).CreatedPDRs[0].TEID
	return k, upfc, teid, gnb, dn
}

func TestUplinkThroughKernelSockets(t *testing.T) {
	k, _, teid, gnb, dn := setup(t)

	inner := make([]byte, 256)
	n, _ := pkt.BuildUDPv4(inner, ueIP, dnIP, 1000, 2000, 0, []byte("uplink-payload"))
	frame := make([]byte, 512)
	hdr := gtp.Header{MsgType: gtp.MsgGPDU, TEID: teid, HasQFI: true, QFI: 9, PDUType: 1}
	hn, _ := hdr.Encode(frame, n)
	copy(frame[hn:], inner[:n])

	upfAddr, _ := net.ResolveUDPAddr("udp", k.N3Addr())
	if _, err := gnb.WriteToUDP(frame[:hn+n], upfAddr); err != nil {
		t.Fatal(err)
	}
	dn.SetReadDeadline(time.Now().Add(2 * time.Second))
	out := make([]byte, 2048)
	on, _, err := dn.ReadFromUDP(out)
	if err != nil {
		t.Fatalf("DN read: %v (stats: %v)", err, statsString(k))
	}
	var p pkt.Parsed
	if err := p.ParseIPv4(out[:on]); err != nil {
		t.Fatal(err)
	}
	if p.IP.Src != ueIP || p.IP.Dst != dnIP || string(p.Payload) != "uplink-payload" {
		t.Fatalf("unexpected DN packet %v -> %v %q", p.IP.Src, p.IP.Dst, p.Payload)
	}
}

func TestDownlinkThroughKernelSockets(t *testing.T) {
	k, _, _, gnb, dn := setup(t)

	raw := make([]byte, 256)
	n, _ := pkt.BuildUDPv4(raw, dnIP, ueIP, 2000, 1000, 0, []byte("downlink"))
	upfN6, _ := net.ResolveUDPAddr("udp", k.N6Addr())
	if _, err := dn.WriteToUDP(raw[:n], upfN6); err != nil {
		t.Fatal(err)
	}
	gnb.SetReadDeadline(time.Now().Add(2 * time.Second))
	out := make([]byte, 2048)
	on, _, err := gnb.ReadFromUDP(out)
	if err != nil {
		t.Fatalf("gNB read: %v", err)
	}
	var h gtp.Header
	inner, err := h.Decode(out[:on])
	if err != nil {
		t.Fatal(err)
	}
	if h.TEID != 0x5001 || h.QFI != 9 {
		t.Fatalf("outer header %+v", h)
	}
	var p pkt.Parsed
	if err := p.ParseIPv4(inner); err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "downlink" {
		t.Fatalf("payload %q", p.Payload)
	}
}

func TestKernelPathBufferingAndDrain(t *testing.T) {
	k, upfc, _, gnb, dn := setup(t)

	// Flip DL FAR to buffer (handover starts).
	upfc.Handle(100, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
	})
	upfN6, _ := net.ResolveUDPAddr("udp", k.N6Addr())
	raw := make([]byte, 256)
	const npkts = 4
	for i := 0; i < npkts; i++ {
		n, _ := pkt.BuildUDPv4(raw, dnIP, ueIP, 2000, 1000, 0, []byte{byte(i)})
		dn.WriteToUDP(raw[:n], upfN6)
	}
	// Nothing must reach the gNB while buffering.
	gnb.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	tmp := make([]byte, 2048)
	if _, _, err := gnb.ReadFromUDP(tmp); err == nil {
		t.Fatal("packet leaked to gNB while buffering")
	}
	// Give the n6Loop a moment to park everything, then complete HO to a
	// new target TEID.
	time.Sleep(100 * time.Millisecond)
	upfc.Handle(100, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
			HasOuterHeader: true, OuterTEID: 0x9999, OuterAddr: gnbIP}},
	})
	for i := 0; i < npkts; i++ {
		gnb.SetReadDeadline(time.Now().Add(2 * time.Second))
		on, _, err := gnb.ReadFromUDP(tmp)
		if err != nil {
			t.Fatalf("drained packet %d missing: %v", i, err)
		}
		var h gtp.Header
		inner, err := h.Decode(tmp[:on])
		if err != nil || h.TEID != 0x9999 {
			t.Fatalf("packet %d: hdr %+v err %v", i, h, err)
		}
		var p pkt.Parsed
		p.ParseIPv4(inner)
		if len(p.Payload) != 1 || p.Payload[0] != byte(i) {
			t.Fatalf("packet %d out of order: payload %v", i, p.Payload)
		}
	}
}

func statsString(k *KernelUPF) string {
	ul, dl, dr := k.Stats()
	return fmt.Sprintf("ul=%d dl=%d dropped=%d", ul, dl, dr)
}

func TestInjectedLossOnN3IsCountedAndDeterministic(t *testing.T) {
	k, _, teid, gnb, dn := setup(t)
	// Drop the first two GTP-U frames arriving on N3; the third passes.
	inj := faults.New(11).
		Add(faults.Rule{Point: "upf.kern.n3.rx", Kind: faults.Drop, Count: 2})
	k.SetInjector(inj, "upf.kern")

	inner := make([]byte, 256)
	n, _ := pkt.BuildUDPv4(inner, ueIP, dnIP, 1000, 2000, 0, []byte("probe"))
	frame := make([]byte, 512)
	hdr := gtp.Header{MsgType: gtp.MsgGPDU, TEID: teid, HasQFI: true, QFI: 9, PDUType: 1}
	hn, _ := hdr.Encode(frame, n)
	copy(frame[hn:], inner[:n])
	upfAddr, _ := net.ResolveUDPAddr("udp", k.N3Addr())

	out := make([]byte, 2048)
	for i := 0; i < 3; i++ {
		if _, err := gnb.WriteToUDP(frame[:hn+n], upfAddr); err != nil {
			t.Fatal(err)
		}
		dn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
		_, _, err := dn.ReadFromUDP(out)
		if i < 2 && err == nil {
			t.Fatalf("frame %d should have been dropped by the injector", i)
		}
		if i == 2 && err != nil {
			t.Fatalf("frame after drop budget lost: %v (stats: %v)", err, statsString(k))
		}
	}
	if k.InjectedFaults() != 2 {
		t.Fatalf("injected faults = %d, want 2", k.InjectedFaults())
	}
	if got := inj.Count("upf.kern.n3.rx", faults.Drop); got != 2 {
		t.Fatalf("injector drop count = %d, want 2", got)
	}
}

func TestInjectedCorruptionDropsAtParser(t *testing.T) {
	k, _, teid, gnb, dn := setup(t)
	// Corrupt the first N3 frame in place: the fault is counted and the
	// path stays healthy for subsequent traffic.
	inj := faults.New(5).
		Add(faults.Rule{Point: "upf.kern.n3.rx", Kind: faults.Corrupt, Count: 1})
	k.SetInjector(inj, "upf.kern")

	inner := make([]byte, 256)
	n, _ := pkt.BuildUDPv4(inner, ueIP, dnIP, 1000, 2000, 0, []byte("x"))
	frame := make([]byte, 512)
	hdr := gtp.Header{MsgType: gtp.MsgGPDU, TEID: teid, HasQFI: true, QFI: 9, PDUType: 1}
	hn, _ := hdr.Encode(frame, n)
	copy(frame[hn:], inner[:n])
	upfAddr, _ := net.ResolveUDPAddr("udp", k.N3Addr())

	_, _, dropped0 := k.Stats()
	if _, err := gnb.WriteToUDP(frame[:hn+n], upfAddr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, d := k.Stats(); d > dropped0 || k.InjectedFaults() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if k.InjectedFaults() != 1 {
		t.Fatalf("injected faults = %d, want 1 corruption", k.InjectedFaults())
	}
	// The next, uncorrupted frame still flows end to end.
	if _, err := gnb.WriteToUDP(frame[:hn+n], upfAddr); err != nil {
		t.Fatal(err)
	}
	dn.SetReadDeadline(time.Now().Add(2 * time.Second))
	out := make([]byte, 2048)
	if _, _, err := dn.ReadFromUDP(out); err != nil {
		t.Fatalf("clean frame after corruption lost: %v (stats: %v)", err, statsString(k))
	}
}
