package classifier

import (
	"l25gc/internal/rules"
)

// tupleID identifies a TSS sub-table: the mask shape shared by all rules in
// it. Prefix lengths are exact; ports and protocol are either exact-match
// (hashed) or wildcard/range (verified after the probe).
type tupleID struct {
	srcBits    uint8
	dstBits    uint8
	srcPExact  bool
	dstPExact  bool
	protoExact bool
}

// hashKey is the masked header fields probed in a sub-table.
type hashKey struct {
	src, dst uint32
	sp, dp   uint16
	proto    uint8
}

// subTable is one tuple's hash table. Multiple rules may share a hash key
// (they differ in the verified residual fields), so buckets are slices.
type subTable struct {
	id      tupleID
	entries map[hashKey][]*rules.PDR
	count   int
	// minPrec is the lowest precedence value present, letting Lookup skip
	// sub-tables that cannot improve on the current best — the classic TSS
	// pruning optimisation.
	minPrec uint32
}

// TSS is PDR-TSS: a set of per-tuple hash tables probed in sequence.
type TSS struct {
	tables []*subTable
	byID   map[uint32]*rules.PDR
}

// NewTSS returns an empty PDR-TSS classifier.
func NewTSS() *TSS {
	return &TSS{byID: make(map[uint32]*rules.PDR)}
}

// Name implements Classifier.
func (t *TSS) Name() string { return "tss" }

// Len implements Classifier.
func (t *TSS) Len() int { return len(t.byID) }

// NumTables reports the number of sub-tables (tuples) — the quantity whose
// growth causes the TSS worst case in Fig. 11.
func (t *TSS) NumTables() int { return len(t.tables) }

func ruleTuple(p *rules.PDR) tupleID {
	var id tupleID
	if p.PDI.HasSDF {
		f := &p.PDI.SDF
		id.srcBits = f.Src.Bits
		id.dstBits = f.Dst.Bits
		id.srcPExact = f.SrcPorts.Lo == f.SrcPorts.Hi
		id.dstPExact = f.DstPorts.Lo == f.DstPorts.Hi
		id.protoExact = !f.ProtoAny && f.Protocol != 0
	}
	return id
}

func ruleHashKey(p *rules.PDR, id tupleID) hashKey {
	var k hashKey
	if !p.PDI.HasSDF {
		return k
	}
	f := &p.PDI.SDF
	k.src = f.Src.Addr.Uint32() & f.Src.Mask()
	k.dst = f.Dst.Addr.Uint32() & f.Dst.Mask()
	if id.srcPExact {
		k.sp = f.SrcPorts.Lo
	}
	if id.dstPExact {
		k.dp = f.DstPorts.Lo
	}
	if id.protoExact {
		k.proto = f.Protocol
	}
	return k
}

func maskBits(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

func probeKey(k *Key, id tupleID) hashKey {
	var h hashKey
	h.src = k.Tuple.Src.Uint32() & maskBits(id.srcBits)
	h.dst = k.Tuple.Dst.Uint32() & maskBits(id.dstBits)
	if id.srcPExact {
		h.sp = k.Tuple.SrcPort
	}
	if id.dstPExact {
		h.dp = k.Tuple.DstPort
	}
	if id.protoExact {
		h.proto = k.Tuple.Protocol
	}
	return h
}

// Insert implements Classifier.
func (t *TSS) Insert(p *rules.PDR) {
	t.Remove(p.ID)
	id := ruleTuple(p)
	var st *subTable
	for _, cand := range t.tables {
		if cand.id == id {
			st = cand
			break
		}
	}
	if st == nil {
		st = &subTable{id: id, entries: make(map[hashKey][]*rules.PDR), minPrec: ^uint32(0)}
		t.tables = append(t.tables, st)
	}
	hk := ruleHashKey(p, id)
	st.entries[hk] = append(st.entries[hk], p)
	st.count++
	if p.Precedence < st.minPrec {
		st.minPrec = p.Precedence
	}
	t.byID[p.ID] = p
}

// Remove implements Classifier.
func (t *TSS) Remove(id uint32) bool {
	p, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)
	tid := ruleTuple(p)
	for ti, st := range t.tables {
		if st.id != tid {
			continue
		}
		hk := ruleHashKey(p, tid)
		bucket := st.entries[hk]
		for i, q := range bucket {
			if q.ID == id {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(st.entries, hk)
		} else {
			st.entries[hk] = bucket
		}
		st.count--
		if st.count == 0 {
			t.tables = append(t.tables[:ti], t.tables[ti+1:]...)
		} else {
			st.minPrec = ^uint32(0)
			for _, b := range st.entries {
				for _, q := range b {
					if q.Precedence < st.minPrec {
						st.minPrec = q.Precedence
					}
				}
			}
		}
		return true
	}
	return true
}

// Lookup implements Classifier.
func (t *TSS) Lookup(k *Key) *rules.PDR {
	var best *rules.PDR
	for _, st := range t.tables {
		if best != nil && st.minPrec >= best.Precedence {
			continue
		}
		hk := probeKey(k, st.id)
		for _, p := range st.entries[hk] {
			if best != nil && p.Precedence >= best.Precedence {
				continue
			}
			if matches(p, k) {
				best = p
			}
		}
	}
	return best
}

// Compile-time interface checks.
var (
	_ Classifier = (*Linear)(nil)
	_ Classifier = (*TSS)(nil)
)
