package classifier

import (
	"fmt"
	"math/rand"

	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

// GenMode selects the tuple-space structure of generated rule sets, mirroring
// how the paper drives the TSS best/worst cases with ClassBench-derived rules.
type GenMode int

// Generator modes.
const (
	// GenRealistic mixes exact flows, prefix rules and port ranges the way
	// ClassBench ACL seeds do.
	GenRealistic GenMode = iota
	// GenTSSBest puts every rule in the same mask tuple, collapsing TSS to
	// a single sub-table (one hash probe).
	GenTSSBest
	// GenTSSWorst gives every rule a distinct mask tuple, forcing TSS to
	// probe one sub-table per rule.
	GenTSSWorst
)

// Generator produces deterministic synthetic PDR sets with fully-populated
// PDI IEs (the paper's 20-IE configuration).
type Generator struct {
	rng  *rand.Rand
	mode GenMode
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(mode GenMode, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), mode: mode}
}

// Generate returns n downlink-style PDRs (source interface N6/core) with
// precedence equal to their index, so rule i is the i-th best.
func (g *Generator) Generate(n int) []*rules.PDR {
	out := make([]*rules.PDR, n)
	for i := 0; i < n; i++ {
		out[i] = g.rule(i, n)
	}
	return out
}

func (g *Generator) rule(i, n int) *rules.PDR {
	var f rules.SDFFilter
	f.ID = uint32(i + 1)
	switch g.mode {
	case GenTSSBest:
		// Identical tuple: /24 src, /16 dst, exact dst port, exact proto.
		f.Src = rules.Prefix{Addr: pkt.AddrFrom(10, byte(i>>8), byte(i), 0), Bits: 24}
		f.Dst = rules.Prefix{Addr: pkt.AddrFrom(192, byte(i>>8), 0, 0), Bits: 16}
		f.SrcPorts = rules.AnyPort
		f.DstPorts = rules.PortRange{Lo: uint16(1024 + i), Hi: uint16(1024 + i)}
		f.Protocol = pkt.ProtoUDP
	case GenTSSWorst:
		// A distinct (srcBits, dstBits) pair per rule: walk the 32x32 grid.
		sb := uint8(i%32) + 1
		db := uint8((i/32)%32) + 1
		f.Src = rules.Prefix{Addr: pkt.AddrFromUint32(uint32(i) << 7), Bits: sb}
		f.Src.Addr = pkt.AddrFromUint32(f.Src.Addr.Uint32() & rules.Prefix{Bits: sb}.Mask())
		f.Dst = rules.Prefix{Addr: pkt.AddrFromUint32(uint32(n-i) << 9), Bits: db}
		f.Dst.Addr = pkt.AddrFromUint32(f.Dst.Addr.Uint32() & rules.Prefix{Bits: db}.Mask())
		// Alternate exactness of ports/proto to multiply tuple shapes
		// beyond the 1024 grid points when n is large.
		if i/1024%2 == 0 {
			f.SrcPorts = rules.AnyPort
		} else {
			f.SrcPorts = rules.PortRange{Lo: uint16(i), Hi: uint16(i)}
		}
		f.DstPorts = rules.AnyPort
		f.ProtoAny = true
	default: // GenRealistic
		switch g.rng.Intn(4) {
		case 0: // exact flow pin (firewall allow rule)
			src := g.randAddr()
			dst := g.randAddr()
			f.Src = rules.Prefix{Addr: src, Bits: 32}
			f.Dst = rules.Prefix{Addr: dst, Bits: 32}
			sp := uint16(g.rng.Intn(60000) + 1024)
			dp := wellKnownPort(g.rng)
			f.SrcPorts = rules.PortRange{Lo: sp, Hi: sp}
			f.DstPorts = rules.PortRange{Lo: dp, Hi: dp}
			f.Protocol = pickProto(g.rng)
		case 1: // subnet-to-any service rule
			f.Src = rules.Prefix{Addr: g.randSubnet(16), Bits: 16}
			f.Dst = rules.AnyPrefix
			f.SrcPorts = rules.AnyPort
			dp := wellKnownPort(g.rng)
			f.DstPorts = rules.PortRange{Lo: dp, Hi: dp}
			f.Protocol = pkt.ProtoTCP
		case 2: // port-range QoS rule
			f.Src = rules.AnyPrefix
			f.Dst = rules.Prefix{Addr: g.randSubnet(24), Bits: 24}
			f.SrcPorts = rules.AnyPort
			lo := uint16(g.rng.Intn(32000))
			f.DstPorts = rules.PortRange{Lo: lo, Hi: lo + uint16(g.rng.Intn(2000))}
			f.Protocol = pkt.ProtoUDP
		default: // prefix pair rule
			f.Src = rules.Prefix{Addr: g.randSubnet(8 + uint8(g.rng.Intn(17))), Bits: 8 + uint8(g.rng.Intn(17))}
			f.Src.Addr = pkt.AddrFromUint32(f.Src.Addr.Uint32() & f.Src.Mask())
			f.Dst = rules.Prefix{Addr: g.randSubnet(8 + uint8(g.rng.Intn(17))), Bits: 8 + uint8(g.rng.Intn(17))}
			f.Dst.Addr = pkt.AddrFromUint32(f.Dst.Addr.Uint32() & f.Dst.Mask())
			f.SrcPorts = rules.AnyPort
			f.DstPorts = rules.AnyPort
			f.ProtoAny = true
		}
		if g.rng.Intn(8) == 0 {
			f.TOS = 0xb8
			f.TOSMask = 0xfc
		}
	}
	f.FlowDesc = fmt.Sprintf("permit out from %s to %s", f.Src, f.Dst)
	return &rules.PDR{
		ID:         uint32(i + 1),
		Precedence: uint32(i),
		PDI: rules.PDI{
			SourceInterface: rules.IfCore,
			NetworkInstance: "internet",
			ApplicationID:   fmt.Sprintf("app-%d", i%7),
			QFI:             uint8(1 + i%63),
			HasQFI:          true,
			SDF:             f,
			HasSDF:          true,
		},
		FARID: 1,
	}
}

func (g *Generator) randAddr() pkt.Addr {
	return pkt.AddrFromUint32(g.rng.Uint32())
}

func (g *Generator) randSubnet(bits uint8) pkt.Addr {
	m := rules.Prefix{Bits: bits}.Mask()
	return pkt.AddrFromUint32(g.rng.Uint32() & m)
}

func wellKnownPort(r *rand.Rand) uint16 {
	ports := []uint16{80, 443, 53, 22, 25, 123, 5060, 8080}
	return ports[r.Intn(len(ports))]
}

func pickProto(r *rand.Rand) uint8 {
	if r.Intn(3) == 0 {
		return pkt.ProtoUDP
	}
	return pkt.ProtoTCP
}

// KeyFor constructs a packet key guaranteed to match rule p (used by the
// benchmarks to target "a rule in the second half of the list" as §5.3
// specifies for PDR-LL).
func KeyFor(p *rules.PDR) Key {
	var k Key
	k.FromAccess = p.PDI.SourceInterface == rules.IfAccess
	k.TEID = p.PDI.TEID
	f := &p.PDI.SDF
	k.Tuple.Src = midAddr(f.Src)
	k.Tuple.Dst = midAddr(f.Dst)
	k.Tuple.SrcPort = f.SrcPorts.Lo
	k.Tuple.DstPort = f.DstPorts.Lo
	if f.ProtoAny || f.Protocol == 0 {
		k.Tuple.Protocol = pkt.ProtoUDP
	} else {
		k.Tuple.Protocol = f.Protocol
	}
	if f.TOSMask != 0 {
		k.TOS = f.TOS
	}
	if p.PDI.HasUEIP {
		if k.FromAccess {
			k.Tuple.Src = p.PDI.UEIP
		} else {
			k.Tuple.Dst = p.PDI.UEIP
		}
	}
	return k
}

func midAddr(p rules.Prefix) pkt.Addr {
	return pkt.AddrFromUint32(p.Addr.Uint32() & p.Mask())
}
