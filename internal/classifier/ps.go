package classifier

import (
	"sort"

	"l25gc/internal/rules"
)

// PDR-PS: PartitionSort. Rules are partitioned online into *sortable*
// rulesets: within a partition, the rule intervals along each dimension (in
// a fixed field order) are pairwise either identical or disjoint. That
// property makes a multi-dimensional binary search correct: at each level,
// at most one interval can contain the packet's field value, so the search
// descends one path of interval nodes per dimension. Lookup cost is
// O(P · d · log n) with a small number of partitions P, and — unlike TSS —
// involves no hashing, which removes both the hashing cost and the
// tuple-space-explosion DoS vector (§3.4).

// psDims is the dimension order used for sorting and search.
const psDims = 5

// interval is a closed range [lo, hi] in one dimension.
type interval struct {
	lo, hi uint32
}

// ruleIntervals projects a PDR onto the five classifier dimensions:
// src addr, dst addr, src port, dst port, protocol.
func ruleIntervals(p *rules.PDR) [psDims]interval {
	var iv [psDims]interval
	// Defaults: full wildcard.
	iv[0] = interval{0, ^uint32(0)}
	iv[1] = interval{0, ^uint32(0)}
	iv[2] = interval{0, 0xffff}
	iv[3] = interval{0, 0xffff}
	iv[4] = interval{0, 255}
	if !p.PDI.HasSDF {
		return iv
	}
	f := &p.PDI.SDF
	iv[0] = prefixInterval(f.Src)
	iv[1] = prefixInterval(f.Dst)
	iv[2] = interval{uint32(f.SrcPorts.Lo), uint32(f.SrcPorts.Hi)}
	iv[3] = interval{uint32(f.DstPorts.Lo), uint32(f.DstPorts.Hi)}
	if !f.ProtoAny && f.Protocol != 0 {
		iv[4] = interval{uint32(f.Protocol), uint32(f.Protocol)}
	}
	return iv
}

func prefixInterval(p rules.Prefix) interval {
	m := p.Mask()
	base := p.Addr.Uint32() & m
	return interval{base, base | ^m}
}

// keyPoint projects a packet onto the five dimensions.
func keyPoint(k *Key) [psDims]uint32 {
	return [psDims]uint32{
		k.Tuple.Src.Uint32(),
		k.Tuple.Dst.Uint32(),
		uint32(k.Tuple.SrcPort),
		uint32(k.Tuple.DstPort),
		uint32(k.Tuple.Protocol),
	}
}

// psNode is one level of the multi-dimensional search tree: a sorted slice
// of disjoint intervals, each leading to the next dimension (or to leaf
// rules at the last dimension).
type psNode struct {
	ivs      []interval
	children []*psNode      // level < psDims-1
	leaves   [][]*rules.PDR // level == psDims-1
	level    int
}

func newPSNode(level int) *psNode { return &psNode{level: level} }

// find returns the index of the interval equal to iv, or -1; compatible
// reports whether iv can be inserted (equal to an existing interval or
// disjoint from all).
func (n *psNode) find(iv interval) (idx int, compatible bool) {
	i := sort.Search(len(n.ivs), func(i int) bool { return n.ivs[i].lo >= iv.lo })
	if i < len(n.ivs) && n.ivs[i] == iv {
		return i, true
	}
	// Check overlap with neighbours.
	if i < len(n.ivs) && n.ivs[i].lo <= iv.hi {
		return -1, false
	}
	if i > 0 && n.ivs[i-1].hi >= iv.lo {
		return -1, false
	}
	return -1, true
}

// canInsert reports whether the rule's intervals fit this subtree.
func (n *psNode) canInsert(ivs *[psDims]interval) bool {
	idx, ok := n.find(ivs[n.level])
	if !ok {
		return false
	}
	if idx == -1 || n.level == psDims-1 {
		return true // new disjoint interval (fresh subtree) or leaf level
	}
	return n.children[idx].canInsert(ivs)
}

// insert adds the rule; canInsert must have returned true.
func (n *psNode) insert(p *rules.PDR, ivs *[psDims]interval) {
	iv := ivs[n.level]
	idx, _ := n.find(iv)
	if idx == -1 {
		// Insert the interval keeping the slice sorted.
		pos := sort.Search(len(n.ivs), func(i int) bool { return n.ivs[i].lo >= iv.lo })
		n.ivs = append(n.ivs, interval{})
		copy(n.ivs[pos+1:], n.ivs[pos:])
		n.ivs[pos] = iv
		if n.level == psDims-1 {
			n.leaves = append(n.leaves, nil)
			copy(n.leaves[pos+1:], n.leaves[pos:])
			n.leaves[pos] = nil
			idx = pos
		} else {
			n.children = append(n.children, nil)
			copy(n.children[pos+1:], n.children[pos:])
			n.children[pos] = newPSNode(n.level + 1)
			idx = pos
		}
	}
	if n.level == psDims-1 {
		n.leaves[idx] = append(n.leaves[idx], p)
		return
	}
	n.children[idx].insert(p, ivs)
}

// remove deletes the rule, pruning empty structures; reports success.
func (n *psNode) remove(id uint32, ivs *[psDims]interval) bool {
	iv := ivs[n.level]
	idx, _ := n.find(iv)
	if idx == -1 {
		return false
	}
	if n.level == psDims-1 {
		bucket := n.leaves[idx]
		for i, q := range bucket {
			if q.ID == id {
				bucket = append(bucket[:i], bucket[i+1:]...)
				if len(bucket) == 0 {
					n.ivs = append(n.ivs[:idx], n.ivs[idx+1:]...)
					n.leaves = append(n.leaves[:idx], n.leaves[idx+1:]...)
				} else {
					n.leaves[idx] = bucket
				}
				return true
			}
		}
		return false
	}
	child := n.children[idx]
	if !child.remove(id, ivs) {
		return false
	}
	if len(child.ivs) == 0 {
		n.ivs = append(n.ivs[:idx], n.ivs[idx+1:]...)
		n.children = append(n.children[:idx], n.children[idx+1:]...)
	}
	return true
}

// lookup descends the tree by binary search; at most one interval per level
// contains the point because intervals are disjoint.
func (n *psNode) lookup(pt *[psDims]uint32, k *Key, best **rules.PDR) {
	v := pt[n.level]
	i := sort.Search(len(n.ivs), func(i int) bool { return n.ivs[i].hi >= v })
	if i >= len(n.ivs) || n.ivs[i].lo > v {
		return
	}
	if n.level == psDims-1 {
		for _, p := range n.leaves[i] {
			if (*best == nil || p.Precedence < (*best).Precedence) && matches(p, k) {
				*best = p
			}
		}
		return
	}
	n.children[i].lookup(pt, k, best)
}

// partition is one sortable ruleset with its search tree.
type partition struct {
	root    *psNode
	count   int
	minPrec uint32
}

// PartitionSort is PDR-PS.
type PartitionSort struct {
	parts []*partition
	byID  map[uint32]*rules.PDR
}

// NewPartitionSort returns an empty PDR-PS classifier.
func NewPartitionSort() *PartitionSort {
	return &PartitionSort{byID: make(map[uint32]*rules.PDR)}
}

// Name implements Classifier.
func (ps *PartitionSort) Name() string { return "ps" }

// Len implements Classifier.
func (ps *PartitionSort) Len() int { return len(ps.byID) }

// NumPartitions reports how many sortable rulesets the online partitioner
// produced — the paper's argument for PS is that this stays small.
func (ps *PartitionSort) NumPartitions() int { return len(ps.parts) }

// Insert implements Classifier.
func (ps *PartitionSort) Insert(p *rules.PDR) {
	ps.Remove(p.ID)
	ivs := ruleIntervals(p)
	for _, part := range ps.parts {
		if part.root.canInsert(&ivs) {
			part.root.insert(p, &ivs)
			part.count++
			if p.Precedence < part.minPrec {
				part.minPrec = p.Precedence
			}
			ps.byID[p.ID] = p
			return
		}
	}
	part := &partition{root: newPSNode(0), minPrec: p.Precedence, count: 1}
	part.root.insert(p, &ivs)
	ps.parts = append(ps.parts, part)
	ps.byID[p.ID] = p
}

// Remove implements Classifier.
func (ps *PartitionSort) Remove(id uint32) bool {
	p, ok := ps.byID[id]
	if !ok {
		return false
	}
	delete(ps.byID, id)
	ivs := ruleIntervals(p)
	for i, part := range ps.parts {
		if part.root.remove(id, &ivs) {
			part.count--
			if part.count == 0 {
				ps.parts = append(ps.parts[:i], ps.parts[i+1:]...)
			}
			return true
		}
	}
	return true
}

// Lookup implements Classifier.
func (ps *PartitionSort) Lookup(k *Key) *rules.PDR {
	pt := keyPoint(k)
	var best *rules.PDR
	for _, part := range ps.parts {
		if best != nil && part.minPrec >= best.Precedence {
			continue
		}
		part.root.lookup(&pt, k, &best)
	}
	return best
}

var _ Classifier = (*PartitionSort)(nil)
