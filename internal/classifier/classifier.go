// Package classifier implements the three PDR lookup structures compared in
// §3.4 and Fig. 11 of the paper:
//
//   - PDR-LL: the 3GPP-suggested linear scan of a precedence-ordered list
//     (TS 29.244 §5.2.1) — simple, but O(n) per packet.
//   - PDR-TSS: Tuple Space Search (Srinivasan et al.) — rules partition
//     into sub-tables by their mask tuple; each sub-table is a hash table,
//     so lookup is one hash probe per tuple.
//   - PDR-PS: PartitionSort (Yingchareonthawornchai et al.) — rules
//     partition into "sortable" rulesets searched by multi-dimensional
//     binary search; L²5GC's choice for consistent latency and immunity to
//     the tuple-space-explosion DoS attack.
//
// All three classify on the PDI's extended 5-tuple (source/destination
// prefixes, port ranges, protocol) and verify the residual PDI fields
// (TEID, UE IP, TOS, direction) on candidate rules.
package classifier

import (
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

// Key is the per-packet lookup key extracted by the UPF fast path.
type Key struct {
	Tuple      pkt.FiveTuple
	TOS        uint8
	TEID       uint32
	FromAccess bool
}

// Classifier finds the highest-priority (lowest precedence value) PDR
// matching a packet.
type Classifier interface {
	// Name identifies the algorithm ("ll", "tss", "ps").
	Name() string
	// Insert adds or replaces (by rule ID) a PDR.
	Insert(p *rules.PDR)
	// Remove deletes the rule with the given ID.
	Remove(id uint32) bool
	// Lookup returns the best-matching rule, or nil.
	Lookup(k *Key) *rules.PDR
	// Len returns the number of installed rules.
	Len() int
}

// New constructs a classifier by algorithm name.
func New(name string) Classifier {
	switch name {
	case "tss":
		return NewTSS()
	case "ps":
		return NewPartitionSort()
	default:
		return NewLinear()
	}
}

// matches performs the full PDI check for a candidate rule.
func matches(p *rules.PDR, k *Key) bool {
	return p.PDI.Matches(k.Tuple, k.TOS, k.TEID, k.FromAccess)
}

// Linear is PDR-LL: a precedence-sorted slice scanned in order. The first
// match is the best match because the list is kept sorted.
type Linear struct {
	list []*rules.PDR
}

// NewLinear returns an empty PDR-LL classifier.
func NewLinear() *Linear { return &Linear{} }

// Name implements Classifier.
func (l *Linear) Name() string { return "ll" }

// Len implements Classifier.
func (l *Linear) Len() int { return len(l.list) }

// Insert implements Classifier.
func (l *Linear) Insert(p *rules.PDR) {
	l.Remove(p.ID)
	// Insert keeping ascending precedence.
	i := 0
	for i < len(l.list) && l.list[i].Precedence <= p.Precedence {
		i++
	}
	l.list = append(l.list, nil)
	copy(l.list[i+1:], l.list[i:])
	l.list[i] = p
}

// Remove implements Classifier.
func (l *Linear) Remove(id uint32) bool {
	for i, q := range l.list {
		if q.ID == id {
			l.list = append(l.list[:i], l.list[i+1:]...)
			return true
		}
	}
	return false
}

// Lookup implements Classifier.
func (l *Linear) Lookup(k *Key) *rules.PDR {
	for _, p := range l.list {
		if matches(p, k) {
			return p
		}
	}
	return nil
}
