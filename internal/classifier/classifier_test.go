package classifier

import (
	"math/rand"
	"testing"

	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

func all() []Classifier {
	return []Classifier{NewLinear(), NewTSS(), NewPartitionSort()}
}

func TestNewByName(t *testing.T) {
	for name, want := range map[string]string{"ll": "ll", "tss": "tss", "ps": "ps", "other": "ll"} {
		if got := New(name).Name(); got != want {
			t.Errorf("New(%q).Name() = %q, want %q", name, got, want)
		}
	}
}

func simpleRule(id, prec uint32, srcBits uint8, dstPort uint16, proto uint8) *rules.PDR {
	return &rules.PDR{
		ID: id, Precedence: prec,
		PDI: rules.PDI{
			SourceInterface: rules.IfCore,
			SDF: rules.SDFFilter{
				Src:      rules.Prefix{Addr: pkt.AddrFrom(10, 0, 0, 0), Bits: srcBits},
				Dst:      rules.AnyPrefix,
				SrcPorts: rules.AnyPort,
				DstPorts: rules.PortRange{Lo: dstPort, Hi: dstPort},
				Protocol: proto,
			},
			HasSDF: true,
		},
		FARID: 1,
	}
}

func TestBasicMatchAllClassifiers(t *testing.T) {
	for _, c := range all() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			c.Insert(simpleRule(1, 10, 8, 80, pkt.ProtoTCP))
			c.Insert(simpleRule(2, 5, 8, 443, pkt.ProtoTCP))
			if c.Len() != 2 {
				t.Fatalf("Len = %d", c.Len())
			}
			k := &Key{Tuple: pkt.FiveTuple{
				Src: pkt.AddrFrom(10, 1, 2, 3), Dst: pkt.AddrFrom(8, 8, 8, 8),
				SrcPort: 5000, DstPort: 80, Protocol: pkt.ProtoTCP,
			}}
			got := c.Lookup(k)
			if got == nil || got.ID != 1 {
				t.Fatalf("Lookup(:80) = %+v, want rule 1", got)
			}
			k.Tuple.DstPort = 443
			got = c.Lookup(k)
			if got == nil || got.ID != 2 {
				t.Fatalf("Lookup(:443) = %+v, want rule 2", got)
			}
			k.Tuple.DstPort = 22
			if got = c.Lookup(k); got != nil {
				t.Fatalf("Lookup(:22) = %+v, want nil", got)
			}
			// Non-matching source prefix.
			k.Tuple.DstPort = 80
			k.Tuple.Src = pkt.AddrFrom(11, 0, 0, 1)
			if got = c.Lookup(k); got != nil {
				t.Fatalf("src out of prefix matched: %+v", got)
			}
		})
	}
}

func TestPrecedenceWinsAllClassifiers(t *testing.T) {
	// Two overlapping rules: the lower precedence value must win in every
	// classifier regardless of insert order.
	for _, c := range all() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			wide := simpleRule(1, 100, 8, 80, pkt.ProtoTCP)
			narrow := simpleRule(2, 1, 24, 80, pkt.ProtoTCP)
			c.Insert(wide)
			c.Insert(narrow)
			k := &Key{Tuple: pkt.FiveTuple{
				Src: pkt.AddrFrom(10, 0, 0, 9), DstPort: 80, Protocol: pkt.ProtoTCP,
			}}
			if got := c.Lookup(k); got == nil || got.ID != 2 {
				t.Fatalf("got %+v, want narrow rule 2", got)
			}
		})
	}
}

func TestInsertReplacesByID(t *testing.T) {
	for _, c := range all() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			c.Insert(simpleRule(1, 10, 8, 80, pkt.ProtoTCP))
			c.Insert(simpleRule(1, 10, 8, 8080, pkt.ProtoTCP)) // same ID, new match
			if c.Len() != 1 {
				t.Fatalf("Len = %d, want 1 after replace", c.Len())
			}
			k := &Key{Tuple: pkt.FiveTuple{Src: pkt.AddrFrom(10, 0, 0, 1), DstPort: 8080, Protocol: pkt.ProtoTCP}}
			if got := c.Lookup(k); got == nil {
				t.Fatal("replaced rule should match new port")
			}
			k.Tuple.DstPort = 80
			if got := c.Lookup(k); got != nil {
				t.Fatal("old rule body should be gone")
			}
		})
	}
}

func TestRemoveAllClassifiers(t *testing.T) {
	for _, c := range all() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			c.Insert(simpleRule(1, 10, 8, 80, pkt.ProtoTCP))
			c.Insert(simpleRule(2, 20, 16, 443, pkt.ProtoUDP))
			if !c.Remove(1) {
				t.Fatal("Remove(1) failed")
			}
			if c.Remove(1) {
				t.Fatal("double remove should fail")
			}
			if c.Len() != 1 {
				t.Fatalf("Len = %d", c.Len())
			}
			k := &Key{Tuple: pkt.FiveTuple{Src: pkt.AddrFrom(10, 0, 0, 1), DstPort: 80, Protocol: pkt.ProtoTCP}}
			if c.Lookup(k) != nil {
				t.Fatal("removed rule still matches")
			}
		})
	}
}

func TestTSSSubTableStructure(t *testing.T) {
	// GenTSSBest: all rules share one tuple -> exactly 1 sub-table.
	best := NewTSS()
	for _, p := range NewGenerator(GenTSSBest, 1).Generate(100) {
		best.Insert(p)
	}
	if best.NumTables() != 1 {
		t.Fatalf("TSS best case: %d sub-tables, want 1", best.NumTables())
	}
	// GenTSSWorst: distinct tuples -> one sub-table per rule.
	worst := NewTSS()
	for _, p := range NewGenerator(GenTSSWorst, 1).Generate(100) {
		worst.Insert(p)
	}
	if worst.NumTables() != 100 {
		t.Fatalf("TSS worst case: %d sub-tables, want 100", worst.NumTables())
	}
}

func TestPSPartitionCountBounded(t *testing.T) {
	// The whole point of PartitionSort: even adversarial tuple structure
	// yields few partitions relative to rules.
	ps := NewPartitionSort()
	ruleSet := NewGenerator(GenRealistic, 7).Generate(1000)
	for _, p := range ruleSet {
		ps.Insert(p)
	}
	if ps.Len() != 1000 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if n := ps.NumPartitions(); n > 100 {
		t.Fatalf("PS produced %d partitions for 1000 realistic rules; expected far fewer", n)
	}
	t.Logf("PS partitions for 1000 realistic rules: %d", ps.NumPartitions())
}

func TestGeneratedKeysMatchTheirRules(t *testing.T) {
	for _, mode := range []GenMode{GenRealistic, GenTSSBest, GenTSSWorst} {
		ruleSet := NewGenerator(mode, 3).Generate(200)
		ll := NewLinear()
		for _, p := range ruleSet {
			ll.Insert(p)
		}
		for i, p := range ruleSet {
			k := KeyFor(p)
			got := ll.Lookup(&k)
			if got == nil {
				t.Fatalf("mode %d rule %d: KeyFor produced a non-matching key", mode, i)
			}
			// A higher-priority rule may legitimately shadow p; but the
			// returned precedence can never be worse.
			if got.Precedence > p.Precedence {
				t.Fatalf("mode %d rule %d: got worse precedence %d > %d", mode, i, got.Precedence, p.Precedence)
			}
		}
	}
}

// TestDifferential is the core correctness test: on identical rule sets,
// all three classifiers must agree for every probed key.
func TestDifferential(t *testing.T) {
	for _, mode := range []GenMode{GenRealistic, GenTSSBest, GenTSSWorst} {
		ruleSet := NewGenerator(mode, 42).Generate(300)
		cs := all()
		for _, c := range cs {
			for _, p := range ruleSet {
				c.Insert(p)
			}
		}
		rng := rand.New(rand.NewSource(99))
		// Probe keys derived from rules plus fully random keys.
		var keys []Key
		for _, p := range ruleSet {
			keys = append(keys, KeyFor(p))
		}
		for i := 0; i < 300; i++ {
			keys = append(keys, Key{Tuple: pkt.FiveTuple{
				Src:      pkt.AddrFromUint32(rng.Uint32()),
				Dst:      pkt.AddrFromUint32(rng.Uint32()),
				SrcPort:  uint16(rng.Intn(65536)),
				DstPort:  uint16(rng.Intn(65536)),
				Protocol: uint8(rng.Intn(3) * 6),
			}})
		}
		for ki := range keys {
			ref := cs[0].Lookup(&keys[ki])
			for _, c := range cs[1:] {
				got := c.Lookup(&keys[ki])
				if (ref == nil) != (got == nil) {
					t.Fatalf("mode %d key %d: %s=%v, %s=%v", mode, ki, cs[0].Name(), ref, c.Name(), got)
				}
				if ref != nil && got.ID != ref.ID {
					t.Fatalf("mode %d key %d: %s chose rule %d, %s chose rule %d",
						mode, ki, cs[0].Name(), ref.ID, c.Name(), got.ID)
				}
			}
		}
	}
}

// TestDifferentialWithChurn interleaves inserts, removals and lookups.
func TestDifferentialWithChurn(t *testing.T) {
	ruleSet := NewGenerator(GenRealistic, 5).Generate(200)
	cs := all()
	rng := rand.New(rand.NewSource(17))
	installed := map[uint32]*rules.PDR{}
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			p := ruleSet[rng.Intn(len(ruleSet))]
			for _, c := range cs {
				c.Insert(p)
			}
			installed[p.ID] = p
		case 1: // remove
			if len(installed) > 0 {
				var id uint32
				for id = range installed {
					break
				}
				delete(installed, id)
				for _, c := range cs {
					c.Remove(id)
				}
			}
		default: // lookup
			p := ruleSet[rng.Intn(len(ruleSet))]
			k := KeyFor(p)
			ref := cs[0].Lookup(&k)
			for _, c := range cs[1:] {
				got := c.Lookup(&k)
				refID, gotID := uint32(0), uint32(0)
				if ref != nil {
					refID = ref.ID
				}
				if got != nil {
					gotID = got.ID
				}
				if refID != gotID {
					t.Fatalf("step %d: %s=%d %s=%d", step, cs[0].Name(), refID, c.Name(), gotID)
				}
			}
		}
		for _, c := range cs {
			if c.Len() != len(installed) {
				t.Fatalf("step %d: %s Len=%d want %d", step, c.Name(), c.Len(), len(installed))
			}
		}
	}
}

func TestEmptyClassifiers(t *testing.T) {
	k := &Key{}
	for _, c := range all() {
		if c.Lookup(k) != nil {
			t.Fatalf("%s: lookup on empty should be nil", c.Name())
		}
		if c.Remove(1) {
			t.Fatalf("%s: remove on empty should fail", c.Name())
		}
		if c.Len() != 0 {
			t.Fatalf("%s: Len on empty = %d", c.Name(), c.Len())
		}
	}
}

func TestUplinkTEIDRules(t *testing.T) {
	// UL rules match on TEID + direction, the UPF's primary fast path.
	ul := &rules.PDR{
		ID: 1, Precedence: 1,
		PDI: rules.PDI{
			SourceInterface: rules.IfAccess,
			TEID:            0x100, HasTEID: true,
			UEIP: pkt.AddrFrom(10, 60, 0, 1), HasUEIP: true,
		},
		OuterHeaderRemoval: true, FARID: 1,
	}
	for _, c := range all() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			c.Insert(ul)
			k := &Key{
				Tuple:      pkt.FiveTuple{Src: pkt.AddrFrom(10, 60, 0, 1), Dst: pkt.AddrFrom(8, 8, 8, 8)},
				TEID:       0x100,
				FromAccess: true,
			}
			if got := c.Lookup(k); got == nil || got.ID != 1 {
				t.Fatalf("UL lookup failed: %+v", got)
			}
			k.TEID = 0x999
			if c.Lookup(k) != nil {
				t.Fatal("wrong TEID must not match")
			}
			k.TEID = 0x100
			k.FromAccess = false
			if c.Lookup(k) != nil {
				t.Fatal("DL direction must not match UL rule")
			}
		})
	}
}

func benchLookup(b *testing.B, c Classifier, n int) {
	ruleSet := NewGenerator(GenRealistic, 1).Generate(n)
	for _, p := range ruleSet {
		c.Insert(p)
	}
	// Per §5.3: the probe targets a rule in the second half of the list.
	k := KeyFor(ruleSet[n/2+n/4])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(&k) == nil {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkLookupLL100(b *testing.B)   { benchLookup(b, NewLinear(), 100) }
func BenchmarkLookupTSS100(b *testing.B)  { benchLookup(b, NewTSS(), 100) }
func BenchmarkLookupPS100(b *testing.B)   { benchLookup(b, NewPartitionSort(), 100) }
func BenchmarkLookupLL1000(b *testing.B)  { benchLookup(b, NewLinear(), 1000) }
func BenchmarkLookupTSS1000(b *testing.B) { benchLookup(b, NewTSS(), 1000) }
func BenchmarkLookupPS1000(b *testing.B)  { benchLookup(b, NewPartitionSort(), 1000) }

func benchUpdate(b *testing.B, c Classifier) {
	ruleSet := NewGenerator(GenRealistic, 1).Generate(1000)
	for _, p := range ruleSet {
		c.Insert(p)
	}
	extra := NewGenerator(GenRealistic, 2).Generate(1)[0]
	extra.ID = 100000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(extra)
		c.Remove(extra.ID)
	}
}

func BenchmarkUpdateLL(b *testing.B)  { benchUpdate(b, NewLinear()) }
func BenchmarkUpdateTSS(b *testing.B) { benchUpdate(b, NewTSS()) }
func BenchmarkUpdatePS(b *testing.B)  { benchUpdate(b, NewPartitionSort()) }
