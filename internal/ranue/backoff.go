package ranue

import (
	"errors"
	"fmt"
	"time"

	"l25gc/internal/nas"
)

// BackoffError reports a NAS reject with a network-prescribed backoff
// timer (the T3346-style congestion pushback of the overload layer). The
// UE must not re-attempt the procedure before Backoff elapses; the timer
// value comes from the core's seeded controller, so re-attempt schedules
// are deterministic under a fixed chaos seed.
type BackoffError struct {
	Procedure string // "registration", "session", "service"
	Cause     uint32
	Backoff   time.Duration
}

// Error implements error.
func (e *BackoffError) Error() string {
	return fmt.Sprintf("ranue: %s rejected (cause %d), backoff %v",
		e.Procedure, e.Cause, e.Backoff)
}

// AsBackoff extracts a BackoffError from an error chain.
func AsBackoff(err error) (*BackoffError, bool) {
	var be *BackoffError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// backoffFromNAS maps a NAS reject message to its BackoffError, or nil
// when m is not a reject.
func backoffFromNAS(m nas.Message) *BackoffError {
	ms := func(v uint32) time.Duration {
		if v == 0 {
			v = 1
		}
		return time.Duration(v) * time.Millisecond
	}
	switch rej := m.(type) {
	case *nas.RegistrationReject:
		return &BackoffError{Procedure: "registration", Cause: rej.Cause, Backoff: ms(rej.BackoffMs)}
	case *nas.ServiceReject:
		return &BackoffError{Procedure: "service", Cause: rej.Cause, Backoff: ms(rej.BackoffMs)}
	case *nas.PDUSessionEstablishmentReject:
		return &BackoffError{Procedure: "session", Cause: rej.Cause, Backoff: ms(rej.BackoffMs)}
	}
	return nil
}

// RegisterWithRetry attaches like Register but honors congestion
// pushback: each RegistrationReject is waited out for exactly the
// network-prescribed backoff before the next attempt. It returns the
// successful attempt's registration time and the number of rejects
// absorbed on the way. Non-reject errors and reject streaks longer than
// maxAttempts fail the call.
func (u *UE) RegisterWithRetry(g *GNB, maxAttempts int) (time.Duration, int, error) {
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		d, err := u.Register(g)
		if err == nil {
			return d, attempt, nil
		}
		be, ok := AsBackoff(err)
		if !ok {
			return 0, attempt, err
		}
		lastErr = err
		time.Sleep(be.Backoff)
	}
	return 0, maxAttempts, fmt.Errorf("ranue: still rejected after %d attempts: %w", maxAttempts, lastErr)
}

// EstablishSessionWithRetry runs EstablishSession, waiting out
// congestion rejects (SMF/UPF pushback surfaced as
// PDUSessionEstablishmentReject) like RegisterWithRetry does for
// registration.
func (u *UE) EstablishSessionWithRetry(pduSessionID uint32, dnn string, maxAttempts int) (time.Duration, int, error) {
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		d, err := u.EstablishSession(pduSessionID, dnn)
		if err == nil {
			return d, attempt, nil
		}
		be, ok := AsBackoff(err)
		if !ok {
			return 0, attempt, err
		}
		lastErr = err
		time.Sleep(be.Backoff)
	}
	return 0, maxAttempts, fmt.Errorf("ranue: still rejected after %d attempts: %w", maxAttempts, lastErr)
}
