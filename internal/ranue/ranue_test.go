package ranue

import (
	"net"
	"testing"
	"time"

	"l25gc/internal/gtp"
	"l25gc/internal/ngap"
	"l25gc/internal/pkt"
)

// stubDP is a DataPlane capturing UL frames and exposing the DL sink.
type stubDP struct {
	ul    [][]byte
	sinks map[pkt.Addr]func([]byte)
}

func newStubDP() *stubDP { return &stubDP{sinks: make(map[pkt.Addr]func([]byte))} }

func (d *stubDP) SendUL(frame []byte) error {
	d.ul = append(d.ul, append([]byte(nil), frame...))
	return nil
}

func (d *stubDP) AttachGNB(addr pkt.Addr, sink func([]byte)) error {
	d.sinks[addr] = sink
	return nil
}

// fakeAMF accepts one N2 connection and answers NG setup.
func fakeAMF(t *testing.T) (addr string, got chan ngap.Message, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got = make(chan ngap.Message, 32)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := ngap.NewConn(c)
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if _, ok := m.(*ngap.NGSetupRequest); ok {
				conn.Send(&ngap.NGSetupResponse{AmfName: "fake", Accepted: true})
			}
			got <- m
		}
	}()
	return ln.Addr().String(), got, func() { ln.Close() }
}

func TestGNBSetupAndULPath(t *testing.T) {
	addr, got, stop := fakeAMF(t)
	defer stop()
	dp := newStubDP()
	g, err := NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), addr, dp)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	select {
	case m := <-got:
		if _, ok := m.(*ngap.NGSetupRequest); !ok {
			t.Fatalf("first message %T", m)
		}
	case <-time.After(time.Second):
		t.Fatal("NG setup never reached the AMF")
	}
	// The gNB's DL sink is attached under its address.
	if dp.sinks[g.Addr] == nil {
		t.Fatal("gNB did not attach its DL sink")
	}
	// UL encapsulation uses the attachment's UPF TEID.
	ue := NewUE("imsi-1", []byte("k"), nil)
	at := g.attach(ue)
	at.upfTEID = 0xabc
	at.active = true
	if err := g.sendUL(at, []byte{0x45, 0, 0, 20}); err != nil {
		t.Fatal(err)
	}
	if len(dp.ul) != 1 {
		t.Fatalf("UL frames = %d", len(dp.ul))
	}
	var h gtp.Header
	if _, err := h.Decode(dp.ul[0]); err != nil || h.TEID != 0xabc || h.PDUType != 1 {
		t.Fatalf("UL header %+v err %v", h, err)
	}
}

func TestGNBSetupTimeout(t *testing.T) {
	// A listener that accepts but never answers: NG setup must time out.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			defer c.Close()
			time.Sleep(5 * time.Second)
		}
	}()
	start := time.Now()
	if _, err := NewGNB(1, pkt.AddrFrom(10, 0, 0, 1), ln.Addr().String(), newStubDP()); err == nil {
		t.Fatal("setup against a mute AMF must fail")
	}
	if time.Since(start) > 4*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestDLFrameDeliveryByTEID(t *testing.T) {
	addr, _, stop := fakeAMF(t)
	defer stop()
	dp := newStubDP()
	g, err := NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), addr, dp)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ue := NewUE("imsi-1", []byte("k"), nil)
	at := g.attach(ue)
	at.dlTEID = 0x42
	g.mu.Lock()
	g.byDlTEID[0x42] = at
	g.mu.Unlock()

	gotData := make(chan []byte, 1)
	ue.OnData = func(p []byte) { gotData <- p }

	frame := make([]byte, 64)
	h := gtp.Header{MsgType: gtp.MsgGPDU, TEID: 0x42}
	n, _ := h.Encode(frame, 4)
	copy(frame[n:], "data")
	dp.sinks[g.Addr](frame[:n+4])
	select {
	case d := <-gotData:
		if string(d) != "data" {
			t.Fatalf("payload %q", d)
		}
	case <-time.After(time.Second):
		t.Fatal("DL frame not delivered to UE")
	}
	// Unknown TEID frames are ignored (no panic, no delivery).
	h.TEID = 0x99
	n, _ = h.Encode(frame, 4)
	dp.sinks[g.Addr](frame[:n+4])
	select {
	case <-gotData:
		t.Fatal("frame for unknown TEID delivered")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUEParseIPv4(t *testing.T) {
	if a, err := parseIPv4("10.60.0.1"); err != nil || a != pkt.AddrFrom(10, 60, 0, 1) {
		t.Fatalf("got %v %v", a, err)
	}
	for _, bad := range []string{"", "1.2.3", "a.b.c.d", "1.2.3.999"} {
		if _, err := parseIPv4(bad); err == nil {
			t.Fatalf("parseIPv4(%q) should fail", bad)
		}
	}
}
