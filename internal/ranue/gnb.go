// Package ranue is the custom UE & RAN simulator of §5.1.1: gNBs speak
// NGAP to the AMF over a message-framed stream (the SCTP substitute) and
// GTP-U to the UPF through the core's data-plane surface; UEs run the
// client side of the four control events — registration, PDU session
// establishment, N2 handover, and paging — with timing hooks for the
// evaluation harness. The radio channel itself is not modelled, exactly
// as in the paper's simulator.
package ranue

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/gtp"
	"l25gc/internal/ngap"
	"l25gc/internal/pkt"
)

// DataPlane is the core's N3 surface as seen by a gNB.
type DataPlane interface {
	SendUL(frame []byte) error
	AttachGNB(addr pkt.Addr, sink func(frame []byte)) error
}

// attachment is one UE's RAN-side state at a gNB.
type attachment struct {
	ue      *UE
	ranUeID uint64
	amfUeID uint64
	dlTEID  uint32 // gNB-allocated DL tunnel
	upfTEID uint32 // UPF UL tunnel
	active  bool
}

// GNB is one simulated base station.
type GNB struct {
	ID   uint32
	Addr pkt.Addr

	conn *ngap.Conn
	dp   DataPlane

	mu        sync.Mutex
	byRanUeID map[uint64]*attachment
	byAmfUeID map[uint64]*attachment
	byDlTEID  map[uint32]*attachment
	camped    map[*UE]struct{} // idle/connected UEs in this cell (paging targets)

	nextRanUeID atomic.Uint64
	nextTEID    atomic.Uint32

	setupDone chan struct{}
	closed    atomic.Bool
	wg        sync.WaitGroup

	// BufferCap bounds DL packets parked at this gNB during a 3GPP-style
	// handover (the limited base-station buffer of Challenge 2). Only used
	// by experiments that emulate source-gNB buffering.
	BufferCap int
}

// NewGNB connects a gNB to the AMF (n2Addr) and the data plane.
func NewGNB(id uint32, addr pkt.Addr, n2Addr string, dp DataPlane) (*GNB, error) {
	conn, err := ngap.Dial(n2Addr)
	if err != nil {
		return nil, err
	}
	g := &GNB{
		ID: id, Addr: addr, conn: conn, dp: dp,
		byRanUeID: make(map[uint64]*attachment),
		byAmfUeID: make(map[uint64]*attachment),
		byDlTEID:  make(map[uint32]*attachment),
		camped:    make(map[*UE]struct{}),
		setupDone: make(chan struct{}),
		BufferCap: 1300, // ~2MB of MTU packets (paper §2.3)
	}
	g.nextTEID.Store(uint32(id) << 16)
	if err := dp.AttachGNB(addr, g.handleDLFrame); err != nil {
		conn.Close()
		return nil, err
	}
	g.wg.Add(1)
	go g.n2Loop()
	if err := conn.Send(&ngap.NGSetupRequest{GnbID: id, GnbName: fmt.Sprintf("gnb-%d", id), Tac: 1}); err != nil {
		conn.Close()
		return nil, err
	}
	select {
	case <-g.setupDone:
	case <-time.After(3 * time.Second):
		conn.Close()
		return nil, fmt.Errorf("ranue: NG setup timed out")
	}
	return g, nil
}

// Close tears the gNB down.
func (g *GNB) Close() error {
	if !g.closed.CompareAndSwap(false, true) {
		return nil
	}
	g.conn.Close()
	g.wg.Wait()
	return nil
}

func (g *GNB) attach(ue *UE) *attachment {
	at := &attachment{ue: ue, ranUeID: g.nextRanUeID.Add(1)}
	g.mu.Lock()
	g.byRanUeID[at.ranUeID] = at
	g.camped[ue] = struct{}{}
	g.mu.Unlock()
	return at
}

func (g *GNB) byRan(id uint64) *attachment {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byRanUeID[id]
}

// bindAmfUeID records the AMF-assigned UE ID on an attachment and
// returns its UE, all under the lock: the UE pointer is nil while a
// handover-target attachment awaits the UE's arrival, and amfUeID is
// written concurrently with completeArrival.
func (g *GNB) bindAmfUeID(ranUeID, amfUeID uint64) *UE {
	g.mu.Lock()
	defer g.mu.Unlock()
	at := g.byRanUeID[ranUeID]
	if at == nil {
		return nil
	}
	at.amfUeID = amfUeID
	g.byAmfUeID[amfUeID] = at
	return at.ue
}

// n2Loop dispatches NGAP messages from the AMF.
func (g *GNB) n2Loop() {
	defer g.wg.Done()
	for {
		msg, err := g.conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *ngap.NGSetupResponse:
			select {
			case <-g.setupDone:
			default:
				close(g.setupDone)
			}
		case *ngap.DownlinkNASTransport:
			if ue := g.bindAmfUeID(m.RanUeID, m.AmfUeID); ue != nil {
				ue.deliverNAS(m.NasPdu)
			}
		case *ngap.InitialContextSetupRequest:
			if ue := g.bindAmfUeID(m.RanUeID, m.AmfUeID); ue != nil {
				g.conn.Send(&ngap.InitialContextSetupResponse{RanUeID: m.RanUeID, AmfUeID: m.AmfUeID})
				ue.deliverNAS(m.NasPdu)
			}
		case *ngap.PDUSessionResourceSetupRequest:
			g.handleResourceSetup(m)
		case *ngap.Paging:
			g.mu.Lock()
			ues := make([]*UE, 0, len(g.camped))
			for ue := range g.camped {
				ues = append(ues, ue)
			}
			g.mu.Unlock()
			for _, ue := range ues {
				ue.deliverPaging(m.Guti)
			}
		case *ngap.HandoverRequest:
			g.handleHandoverRequest(m)
		case *ngap.HandoverCommand:
			g.mu.Lock()
			var ue *UE
			if at := g.byRanUeID[m.RanUeID]; at != nil {
				ue = at.ue
			}
			g.mu.Unlock()
			if ue != nil {
				ue.deliverHandoverCommand(m.TargetGnbID)
			}
		case *ngap.UEContextReleaseCommand:
			g.mu.Lock()
			var ue *UE
			if at := g.byRanUeID[m.RanUeID]; at != nil {
				delete(g.byRanUeID, m.RanUeID)
				delete(g.byAmfUeID, at.amfUeID)
				if at.dlTEID != 0 {
					delete(g.byDlTEID, at.dlTEID)
				}
				// The UE stays camped on the cell for paging; it only
				// leaves the camped set when it hands over away (uncamp).
				// at.ue is nil when a release races a handover arrival
				// (the attachment is pre-created, the UE binds later).
				ue = at.ue
			}
			g.mu.Unlock()
			g.conn.Send(&ngap.UEContextReleaseComplete{RanUeID: m.RanUeID})
			if ue != nil {
				ue.deliverRelease()
			}
		}
	}
}

// handleResourceSetup installs the N3 tunnel for a session and answers
// with the gNB-chosen DL TEID.
func (g *GNB) handleResourceSetup(m *ngap.PDUSessionResourceSetupRequest) {
	at := g.byRan(m.RanUeID)
	if at == nil {
		return
	}
	at.amfUeID = m.AmfUeID
	at.upfTEID = m.UpfTEID
	at.dlTEID = g.nextTEID.Add(1)
	at.active = true
	g.mu.Lock()
	g.byAmfUeID[m.AmfUeID] = at
	g.byDlTEID[at.dlTEID] = at
	g.mu.Unlock()
	g.conn.Send(&ngap.PDUSessionResourceSetupResponse{
		RanUeID: m.RanUeID, PduSessionID: m.PduSessionID,
		GnbTEID: at.dlTEID, GnbAddr: g.Addr.String(),
	})
	if len(m.NasPdu) > 0 {
		at.ue.deliverNAS(m.NasPdu)
	}
}

// handleHandoverRequest admits a UE handed over from another gNB.
func (g *GNB) handleHandoverRequest(m *ngap.HandoverRequest) {
	// The UE object is found when it arrives; pre-create the attachment.
	at := &attachment{
		ranUeID: g.nextRanUeID.Add(1),
		amfUeID: m.AmfUeID,
		upfTEID: m.UpfTEID,
		dlTEID:  g.nextTEID.Add(1),
	}
	g.mu.Lock()
	g.byRanUeID[at.ranUeID] = at
	g.byAmfUeID[m.AmfUeID] = at
	g.byDlTEID[at.dlTEID] = at
	g.mu.Unlock()
	g.conn.Send(&ngap.HandoverRequestAck{
		AmfUeID: m.AmfUeID, NewRanUeID: at.ranUeID,
		GnbTEID: at.dlTEID, GnbAddr: g.Addr.String(),
	})
}

// completeArrival binds an arriving UE to its pre-created attachment and
// notifies the AMF (HandoverNotify).
func (g *GNB) completeArrival(ue *UE, amfUeID uint64) (*attachment, error) {
	g.mu.Lock()
	at := g.byAmfUeID[amfUeID]
	if at != nil {
		at.ue = ue
		at.active = true
		g.camped[ue] = struct{}{}
	}
	g.mu.Unlock()
	if at == nil {
		return nil, fmt.Errorf("ranue: no handover context at gNB %d", g.ID)
	}
	return at, g.conn.Send(&ngap.HandoverNotify{AmfUeID: amfUeID, RanUeID: at.ranUeID})
}

// detach drops a never-completed attachment (a rejected registration):
// the RAN-side IDs are released so a storm of shed-and-retried attaches
// does not accumulate state at the gNB.
func (g *GNB) detach(at *attachment) {
	g.mu.Lock()
	delete(g.byRanUeID, at.ranUeID)
	if g.byAmfUeID[at.amfUeID] == at {
		delete(g.byAmfUeID, at.amfUeID)
	}
	if at.dlTEID != 0 {
		delete(g.byDlTEID, at.dlTEID)
	}
	g.mu.Unlock()
}

// uncamp removes a UE from this cell's paging set (it moved away).
func (g *GNB) uncamp(ue *UE) {
	g.mu.Lock()
	delete(g.camped, ue)
	g.mu.Unlock()
}

// handleDLFrame decapsulates a DL GTP frame and delivers the inner IP
// packet to the owning UE.
func (g *GNB) handleDLFrame(frame []byte) {
	var h gtp.Header
	inner, err := h.Decode(frame)
	if err != nil || h.MsgType != gtp.MsgGPDU {
		return
	}
	g.mu.Lock()
	at := g.byDlTEID[h.TEID]
	g.mu.Unlock()
	if at == nil || at.ue == nil {
		return
	}
	at.ue.deliverData(inner)
}

// sendUL encapsulates and transmits one UL IP packet for an attachment.
func (g *GNB) sendUL(at *attachment, ipPkt []byte) error {
	frame := make([]byte, len(ipPkt)+32)
	h := gtp.Header{MsgType: gtp.MsgGPDU, TEID: at.upfTEID, HasQFI: true, QFI: 9, PDUType: 1}
	n, err := h.Encode(frame, len(ipPkt))
	if err != nil {
		return err
	}
	copy(frame[n:], ipPkt)
	return g.dp.SendUL(frame[:n+len(ipPkt)])
}
