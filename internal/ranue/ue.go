package ranue

import (
	"fmt"
	"sync"
	"time"

	"l25gc/internal/nas"
	"l25gc/internal/nf/udm"
	"l25gc/internal/ngap"
	"l25gc/internal/pkt"
)

// EventTimes records the control-event completion times a UE measured,
// the quantities plotted in Fig. 8.
type EventTimes struct {
	Registration time.Duration
	Session      time.Duration
	Handover     time.Duration
	Paging       time.Duration
}

// UE is one simulated device.
type UE struct {
	Supi string
	K    []byte
	Opc  []byte

	mu   sync.Mutex
	gnb  *GNB
	at   *attachment
	guti string
	ueIP pkt.Addr
	idle bool

	pduSessionID uint32

	nasIn     chan nas.Message
	pagingIn  chan string
	hoCmdIn   chan uint32
	releaseIn chan struct{}

	// OnData receives decapsulated DL IP packets while connected.
	OnData func(ipPkt []byte)

	Times EventTimes
}

// ueTimeout bounds every control-plane wait.
const ueTimeout = 5 * time.Second

// NewUE creates a UE with its SIM credentials.
func NewUE(supi string, k, opc []byte) *UE {
	return &UE{
		Supi: supi, K: k, Opc: opc,
		nasIn:     make(chan nas.Message, 16),
		pagingIn:  make(chan string, 4),
		hoCmdIn:   make(chan uint32, 4),
		releaseIn: make(chan struct{}, 4),
	}
}

// delivery hooks called from the gNB's N2 loop.

func (u *UE) deliverNAS(pdu []byte) {
	m, err := nas.Unmarshal(pdu)
	if err != nil {
		return
	}
	select {
	case u.nasIn <- m:
	default:
	}
}

func (u *UE) deliverPaging(guti string) {
	u.mu.Lock()
	mine := guti == u.guti
	u.mu.Unlock()
	if mine {
		select {
		case u.pagingIn <- guti:
		default:
		}
	}
}

func (u *UE) deliverHandoverCommand(target uint32) {
	select {
	case u.hoCmdIn <- target:
	default:
	}
}

func (u *UE) deliverRelease() {
	select {
	case u.releaseIn <- struct{}{}:
	default:
	}
}

func (u *UE) deliverData(ipPkt []byte) {
	u.mu.Lock()
	fn := u.OnData
	u.mu.Unlock()
	if fn != nil {
		cp := append([]byte(nil), ipPkt...)
		fn(cp)
	}
}

func (u *UE) waitNAS(want nas.MsgType) (nas.Message, error) {
	deadline := time.After(ueTimeout)
	for {
		select {
		case m := <-u.nasIn:
			if m.NASType() == want {
				return m, nil
			}
			// A reject with a backoff timer is congestion pushback, not a
			// protocol error: surface it typed so callers can wait it out.
			if be := backoffFromNAS(m); be != nil {
				return nil, be
			}
			// Out-of-order NAS for this simple UE is a protocol error.
			return nil, fmt.Errorf("ranue: expected NAS %d, got %d", want, m.NASType())
		case <-deadline:
			return nil, fmt.Errorf("ranue: timed out waiting for NAS %d", want)
		}
	}
}

// Register attaches the UE at gNB g and runs the full 3GPP registration:
// identification, 5G-AKA, security mode, registration accept. It returns
// the event completion time (a Fig. 8 quantity).
func (u *UE) Register(g *GNB) (time.Duration, error) {
	start := time.Now()
	at := g.attach(u)
	u.mu.Lock()
	u.gnb = g
	u.at = at
	u.mu.Unlock()

	pdu, _ := nas.Marshal(&nas.RegistrationRequest{Suci: u.Supi, Capabilities: 0xf})
	if err := g.conn.Send(&ngap.InitialUEMessage{RanUeID: at.ranUeID, NasPdu: pdu}); err != nil {
		return 0, err
	}
	m, err := u.waitNAS(nas.MsgAuthenticationRequest)
	if err != nil {
		// A shed registration must not leave RAN-side state behind: the
		// UE re-attaches from scratch after its backoff.
		if _, rejected := AsBackoff(err); rejected {
			g.detach(at)
			g.uncamp(u)
		}
		return 0, err
	}
	auth := m.(*nas.AuthenticationRequest)
	res := udm.DeriveRes(u.K, auth.Rand)
	pdu, _ = nas.Marshal(&nas.AuthenticationResponse{ResStar: res})
	if err := g.conn.Send(&ngap.UplinkNASTransport{RanUeID: at.ranUeID, AmfUeID: at.amfUeID, NasPdu: pdu}); err != nil {
		return 0, err
	}
	if _, err := u.waitNAS(nas.MsgSecurityModeCommand); err != nil {
		return 0, err
	}
	pdu, _ = nas.Marshal(&nas.SecurityModeComplete{IMEISV: "imeisv-" + u.Supi})
	if err := g.conn.Send(&ngap.UplinkNASTransport{RanUeID: at.ranUeID, AmfUeID: at.amfUeID, NasPdu: pdu}); err != nil {
		return 0, err
	}
	m, err = u.waitNAS(nas.MsgRegistrationAccept)
	if err != nil {
		return 0, err
	}
	acc := m.(*nas.RegistrationAccept)
	u.mu.Lock()
	u.guti = acc.Guti
	u.mu.Unlock()
	pdu, _ = nas.Marshal(&nas.RegistrationComplete{Ack: true})
	if err := g.conn.Send(&ngap.UplinkNASTransport{RanUeID: at.ranUeID, AmfUeID: at.amfUeID, NasPdu: pdu}); err != nil {
		return 0, err
	}
	u.Times.Registration = time.Since(start)
	return u.Times.Registration, nil
}

// EstablishSession runs the PDU session request event and returns its
// completion time. The session is usable when this returns: the gNB
// tunnel is installed and the UPF's DL path is activated.
func (u *UE) EstablishSession(pduSessionID uint32, dnn string) (time.Duration, error) {
	u.mu.Lock()
	g, at := u.gnb, u.at
	u.mu.Unlock()
	if g == nil {
		return 0, fmt.Errorf("ranue: UE not registered")
	}
	start := time.Now()
	u.pduSessionID = pduSessionID
	pdu, _ := nas.Marshal(&nas.PDUSessionEstablishmentRequest{PduSessionID: pduSessionID, Dnn: dnn, SscMode: 1})
	if err := g.conn.Send(&ngap.UplinkNASTransport{RanUeID: at.ranUeID, AmfUeID: at.amfUeID, NasPdu: pdu}); err != nil {
		return 0, err
	}
	m, err := u.waitNAS(nas.MsgPDUSessionEstablishmentAccept)
	if err != nil {
		return 0, err
	}
	acc := m.(*nas.PDUSessionEstablishmentAccept)
	ip, err := parseIPv4(acc.UeIPv4)
	if err != nil {
		return 0, err
	}
	u.mu.Lock()
	u.ueIP = ip
	u.mu.Unlock()
	u.Times.Session = time.Since(start)
	return u.Times.Session, nil
}

// IP returns the UE's session address.
func (u *UE) IP() pkt.Addr {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.ueIP
}

// Guti returns the temporary identity assigned at registration.
func (u *UE) Guti() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.guti
}

// SendUplink transmits one application payload to dst over the session.
func (u *UE) SendUplink(dst pkt.Addr, sport, dport uint16, payload []byte) error {
	u.mu.Lock()
	g, at, ip := u.gnb, u.at, u.ueIP
	u.mu.Unlock()
	if g == nil || at == nil || !at.active {
		return fmt.Errorf("ranue: no active session")
	}
	buf := make([]byte, pkt.IPv4MinLen+pkt.UDPLen+len(payload))
	n, err := pkt.BuildUDPv4(buf, ip, dst, sport, dport, 0, payload)
	if err != nil {
		return err
	}
	return g.sendUL(at, buf[:n])
}

// GoIdle releases the RAN connection (idle-active transition, battery
// saving): the gNB asks the AMF to release, the SMF arms UPF buffering.
func (u *UE) GoIdle() error {
	u.mu.Lock()
	g, at := u.gnb, u.at
	u.mu.Unlock()
	if g == nil || at == nil {
		return fmt.Errorf("ranue: not attached")
	}
	if err := g.conn.Send(&ngap.UEContextReleaseRequest{
		RanUeID: at.ranUeID, AmfUeID: at.amfUeID, Cause: "user-inactivity",
	}); err != nil {
		return err
	}
	select {
	case <-u.releaseIn:
	case <-time.After(ueTimeout):
		return fmt.Errorf("ranue: release timed out")
	}
	u.mu.Lock()
	u.idle = true
	u.at.active = false
	u.mu.Unlock()
	return nil
}

// AwaitPagingAndReconnect blocks until the network pages the UE, then runs
// the service-request procedure (idle->active). It returns the paging
// event time: from paging reception to the session being active again.
func (u *UE) AwaitPagingAndReconnect(timeout time.Duration) (time.Duration, error) {
	select {
	case <-u.pagingIn:
	case <-time.After(timeout):
		return 0, fmt.Errorf("ranue: no paging within %v", timeout)
	}
	start := time.Now()
	u.mu.Lock()
	g := u.gnb
	u.mu.Unlock()
	// Re-attach at the gNB with a fresh RAN UE ID.
	at := g.attach(u)
	u.mu.Lock()
	u.at = at
	u.mu.Unlock()
	pdu, _ := nas.Marshal(&nas.ServiceRequest{Guti: u.Guti(), PduSessionID: u.pduSessionID})
	if err := g.conn.Send(&ngap.InitialUEMessage{RanUeID: at.ranUeID, NasPdu: pdu}); err != nil {
		return 0, err
	}
	if _, err := u.waitNAS(nas.MsgServiceAccept); err != nil {
		return 0, err
	}
	u.mu.Lock()
	u.idle = false
	u.mu.Unlock()
	u.Times.Paging = time.Since(start)
	return u.Times.Paging, nil
}

// Handover runs the N2 handover to the target gNB and returns the event
// completion time: from HandoverRequired to the UE active at the target
// with the UPF path switched (release of the source context).
func (u *UE) Handover(target *GNB) (time.Duration, error) {
	u.mu.Lock()
	src, at := u.gnb, u.at
	u.mu.Unlock()
	if src == nil || at == nil {
		return 0, fmt.Errorf("ranue: not attached")
	}
	start := time.Now()
	if err := src.conn.Send(&ngap.HandoverRequired{
		RanUeID: at.ranUeID, AmfUeID: at.amfUeID,
		TargetGnbID: target.ID, Cause: "radio-quality",
	}); err != nil {
		return 0, err
	}
	select {
	case <-u.hoCmdIn:
	case <-time.After(ueTimeout):
		return 0, fmt.Errorf("ranue: handover command timed out")
	}
	// UE detaches from the source cell and synchronizes with the target
	// (mmWave beam alignment, 1-10 ms per [39]; not modelled, as in the
	// paper's simulator).
	newAt, err := target.completeArrival(u, at.amfUeID)
	if err != nil {
		return 0, err
	}
	u.mu.Lock()
	u.gnb = target
	u.at = newAt
	u.mu.Unlock()
	src.uncamp(u)
	// The handover is complete for the UE once the source context is
	// released — which the AMF orders only after the UPF path switch.
	select {
	case <-u.releaseIn:
	case <-time.After(ueTimeout):
		return 0, fmt.Errorf("ranue: source release timed out")
	}
	u.Times.Handover = time.Since(start)
	return u.Times.Handover, nil
}

// Deregister detaches the UE from the network: the AMF releases the SM
// context (tearing the UPF session down) and orders the gNB context
// release. The UE is unusable afterwards until a fresh Register.
func (u *UE) Deregister() error {
	u.mu.Lock()
	g, at := u.gnb, u.at
	u.mu.Unlock()
	if g == nil || at == nil {
		return fmt.Errorf("ranue: not attached")
	}
	pdu, _ := nas.Marshal(&nas.DeregistrationRequest{Guti: u.Guti()})
	if err := g.conn.Send(&ngap.UplinkNASTransport{RanUeID: at.ranUeID, AmfUeID: at.amfUeID, NasPdu: pdu}); err != nil {
		return err
	}
	select {
	case <-u.releaseIn:
	case <-time.After(ueTimeout):
		return fmt.Errorf("ranue: deregistration release timed out")
	}
	g.uncamp(u)
	u.mu.Lock()
	u.gnb, u.at = nil, nil
	u.guti = ""
	u.mu.Unlock()
	return nil
}

func parseIPv4(s string) (pkt.Addr, error) {
	var a pkt.Addr
	var b [4]int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3]); err != nil {
		return a, fmt.Errorf("ranue: bad IPv4 %q: %w", s, err)
	}
	for i, v := range b {
		if v < 0 || v > 255 {
			return a, fmt.Errorf("ranue: bad IPv4 %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}
