// Package ring provides lock-free single-producer/single-consumer and
// multi-producer/single-consumer descriptor rings.
//
// These rings are the core primitive of the shared-memory NFV platform
// (internal/onvm): every network function owns an Rx ring and a Tx ring, and
// the NF manager moves packet descriptors between rings without copying
// packet payloads, mirroring OpenNetVM's DPDK rte_ring usage in the paper.
//
// Capacities are rounded up to powers of two so that index arithmetic is a
// mask rather than a modulo. All operations are non-blocking: Enqueue returns
// false when the ring is full, Dequeue returns false when it is empty.
package ring

import (
	"sync/atomic"
)

// pad keeps hot atomics on separate cache lines to avoid false sharing
// between the producer and consumer cursors.
type pad [64]byte

// SPSC is a bounded lock-free single-producer single-consumer ring.
//
// The zero value is not usable; construct with NewSPSC. Exactly one goroutine
// may call Enqueue/EnqueueBulk and exactly one may call Dequeue/DequeueBulk.
type SPSC[T any] struct {
	mask uint64
	buf  []slot[T]

	_    pad
	head atomic.Uint64 // next index to dequeue (consumer-owned)
	_    pad
	tail atomic.Uint64 // next index to enqueue (producer-owned)
	_    pad
}

type slot[T any] struct {
	v T
}

// ceilPow2 returns the smallest power of two >= n (and >= 2).
func ceilPow2(n int) uint64 {
	c := uint64(2)
	for c < uint64(n) {
		c <<= 1
	}
	return c
}

// NewSPSC returns an SPSC ring holding at least capacity elements.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 1 {
		capacity = 1
	}
	c := ceilPow2(capacity)
	return &SPSC[T]{mask: c - 1, buf: make([]slot[T], c)}
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued elements. It is approximate when called
// concurrently with Enqueue/Dequeue but exact when the ring is quiescent.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue adds v to the ring. It returns false if the ring is full.
func (r *SPSC[T]) Enqueue(v T) bool {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask].v = v
	r.tail.Store(t + 1)
	return true
}

// EnqueueBulk adds as many elements of vs as fit, returning the count added.
func (r *SPSC[T]) EnqueueBulk(vs []T) int {
	t := r.tail.Load()
	h := r.head.Load()
	free := uint64(len(r.buf)) - (t - h)
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask].v = vs[i]
	}
	r.tail.Store(t + n)
	return int(n)
}

// Dequeue removes and returns the oldest element. ok is false when empty.
func (r *SPSC[T]) Dequeue() (v T, ok bool) {
	h := r.head.Load()
	t := r.tail.Load()
	if h == t {
		return v, false
	}
	v = r.buf[h&r.mask].v
	var zero T
	r.buf[h&r.mask].v = zero // release reference for GC
	r.head.Store(h + 1)
	return v, true
}

// DequeueBulk removes up to len(out) elements into out, returning the count.
func (r *SPSC[T]) DequeueBulk(out []T) int {
	h := r.head.Load()
	t := r.tail.Load()
	avail := t - h
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		idx := (h + i) & r.mask
		out[i] = r.buf[idx].v
		r.buf[idx].v = zero
	}
	r.head.Store(h + n)
	return int(n)
}

// MPSC is a bounded lock-free multi-producer single-consumer ring.
//
// Producers reserve a slot with a CAS on the tail cursor and then publish it
// by bumping a per-slot sequence number; the single consumer observes slots
// in order once published. This is the classic bounded MPMC queue of Vyukov,
// restricted to one consumer.
type MPSC[T any] struct {
	mask uint64
	buf  []mslot[T]

	_    pad
	head atomic.Uint64
	_    pad
	tail atomic.Uint64
	_    pad
}

type mslot[T any] struct {
	seq atomic.Uint64
	v   T
}

// NewMPSC returns an MPSC ring holding at least capacity elements.
func NewMPSC[T any](capacity int) *MPSC[T] {
	if capacity < 1 {
		capacity = 1
	}
	c := ceilPow2(capacity)
	r := &MPSC[T]{mask: c - 1, buf: make([]mslot[T], c)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *MPSC[T]) Cap() int { return len(r.buf) }

// Len returns the approximate number of queued elements.
func (r *MPSC[T]) Len() int {
	n := int(r.tail.Load() - r.head.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Enqueue adds v to the ring from any goroutine. Returns false when full.
func (r *MPSC[T]) Enqueue(v T) bool {
	for {
		t := r.tail.Load()
		s := &r.buf[t&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == t: // slot free
			if r.tail.CompareAndSwap(t, t+1) {
				s.v = v
				s.seq.Store(t + 1) // publish
				return true
			}
		case seq < t: // slot still occupied: ring full
			return false
		default: // another producer won this slot; retry
		}
	}
}

// Dequeue removes the oldest published element. Single consumer only.
func (r *MPSC[T]) Dequeue() (v T, ok bool) {
	h := r.head.Load()
	s := &r.buf[h&r.mask]
	if s.seq.Load() != h+1 { // not yet published
		return v, false
	}
	v = s.v
	var zero T
	s.v = zero
	s.seq.Store(h + uint64(len(r.buf))) // mark free for the next lap
	r.head.Store(h + 1)
	return v, true
}

// DequeueBulk removes up to len(out) published elements into out.
func (r *MPSC[T]) DequeueBulk(out []T) int {
	n := 0
	for n < len(out) {
		v, ok := r.Dequeue()
		if !ok {
			break
		}
		out[n] = v
		n++
	}
	return n
}
