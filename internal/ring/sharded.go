package ring

// Sharded fans a multi-producer workload out over N independent MPSC rings,
// one per consumer worker. It is the work-distribution primitive of the
// sharded descriptor switch (internal/onvm): producers pick a shard from a
// flow hash so that all descriptors of one flow land in the same ring, and
// each worker is the single consumer of exactly one shard — preserving the
// MPSC single-consumer contract and per-flow FIFO order at the same time.
//
// Shard selection runs the hash through a 64-bit finalizer before reducing
// modulo the shard count, so correlated low bits in the caller's hash (e.g.
// an RSS hash that is also used modulo the instance count) do not skew the
// shard distribution.
type Sharded[T any] struct {
	shards []*MPSC[T]
}

// NewSharded returns n independent MPSC rings, each holding at least
// capacity elements. n is clamped to >= 1.
func NewSharded[T any](n, capacity int) *Sharded[T] {
	if n < 1 {
		n = 1
	}
	s := &Sharded[T]{shards: make([]*MPSC[T], n)}
	for i := range s.shards {
		s.shards[i] = NewMPSC[T](capacity)
	}
	return s
}

// Shards returns the number of shards.
func (s *Sharded[T]) Shards() int { return len(s.shards) }

// Fmix64 is the MurmurHash3 64-bit finalizer: a full-avalanche bijection
// that decorrelates every output bit from the input bits. Exported so the
// NF state shards (internal/nf/amf, internal/nf/smf) pick home shards with
// the same mixing discipline the descriptor switch uses.
func Fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fmix64 is kept as the package-internal spelling.
func fmix64(h uint64) uint64 { return Fmix64(h) }

// ShardOf maps a flow hash to its home shard. The mapping is stable for the
// lifetime of the Sharded set: equal hashes always land on the same shard.
func (s *Sharded[T]) ShardOf(hash uint64) int {
	return int(fmix64(hash) % uint64(len(s.shards)))
}

// Enqueue adds v to the given shard from any goroutine. Returns false when
// that shard's ring is full.
func (s *Sharded[T]) Enqueue(shard int, v T) bool {
	return s.shards[shard].Enqueue(v)
}

// Dequeue removes the oldest element of the given shard. Only the shard's
// single consumer may call this.
func (s *Sharded[T]) Dequeue(shard int) (T, bool) {
	return s.shards[shard].Dequeue()
}

// DequeueBulk removes up to len(out) elements from the given shard. Only
// the shard's single consumer may call this.
func (s *Sharded[T]) DequeueBulk(shard int, out []T) int {
	return s.shards[shard].DequeueBulk(out)
}

// ShardLen returns the approximate queue depth of one shard.
func (s *Sharded[T]) ShardLen(shard int) int { return s.shards[shard].Len() }

// Len returns the approximate total queue depth across all shards.
func (s *Sharded[T]) Len() int {
	n := 0
	for _, r := range s.shards {
		n += r.Len()
	}
	return n
}
