package ring

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCBasic(t *testing.T) {
	r := NewSPSC[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("Dequeue on empty ring should fail")
	}
	for i := 0; i < 4; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("Enqueue(%d) failed on non-full ring", i)
		}
	}
	if r.Enqueue(99) {
		t.Fatal("Enqueue on full ring should fail")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v, want %d,true", v, ok, i)
		}
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	} {
		if got := NewSPSC[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSPSCWraparound(t *testing.T) {
	r := NewSPSC[int](4)
	for lap := 0; lap < 100; lap++ {
		for i := 0; i < 3; i++ {
			if !r.Enqueue(lap*10 + i) {
				t.Fatalf("lap %d: enqueue failed", lap)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Dequeue()
			if !ok || v != lap*10+i {
				t.Fatalf("lap %d: got %d,%v want %d", lap, v, ok, lap*10+i)
			}
		}
	}
}

func TestSPSCBulk(t *testing.T) {
	r := NewSPSC[int](8)
	in := []int{1, 2, 3, 4, 5}
	if n := r.EnqueueBulk(in); n != 5 {
		t.Fatalf("EnqueueBulk = %d, want 5", n)
	}
	if n := r.EnqueueBulk([]int{6, 7, 8, 9}); n != 3 {
		t.Fatalf("EnqueueBulk on nearly-full ring = %d, want 3", n)
	}
	out := make([]int, 16)
	if n := r.DequeueBulk(out); n != 8 {
		t.Fatalf("DequeueBulk = %d, want 8", n)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestSPSCConcurrentOrder(t *testing.T) {
	const n = 20000
	r := NewSPSC[int](256)
	done := make(chan error, 1)
	go func() {
		next := 0
		for next < n {
			if v, ok := r.Dequeue(); ok {
				if v != next {
					done <- errf("got %d want %d", v, next)
					return
				}
				next++
			}
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if r.Enqueue(i) {
			i++
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func TestMPSCBasic(t *testing.T) {
	r := NewMPSC[string](4)
	if !r.Enqueue("a") || !r.Enqueue("b") {
		t.Fatal("enqueue failed")
	}
	if v, ok := r.Dequeue(); !ok || v != "a" {
		t.Fatalf("got %q,%v", v, ok)
	}
	if v, ok := r.Dequeue(); !ok || v != "b" {
		t.Fatalf("got %q,%v", v, ok)
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue on empty should fail")
	}
}

func TestMPSCFull(t *testing.T) {
	r := NewMPSC[int](2)
	if !r.Enqueue(1) || !r.Enqueue(2) {
		t.Fatal("fill failed")
	}
	if r.Enqueue(3) {
		t.Fatal("enqueue on full MPSC should fail")
	}
	if v, _ := r.Dequeue(); v != 1 {
		t.Fatal("fifo violated")
	}
	if !r.Enqueue(3) {
		t.Fatal("enqueue after dequeue should succeed")
	}
}

func TestMPSCManyProducers(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := NewMPSC[int](1024)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !r.Enqueue(p*perProducer + i) {
				}
			}
		}(p)
	}
	got := make(map[int]bool, producers*perProducer)
	lastPer := make([]int, producers)
	for i := range lastPer {
		lastPer[i] = -1
	}
	done := make(chan struct{})
	go func() {
		for len(got) < producers*perProducer {
			if v, ok := r.Dequeue(); ok {
				if got[v] {
					t.Errorf("duplicate value %d", v)
					break
				}
				got[v] = true
				p, seq := v/perProducer, v%perProducer
				if seq <= lastPer[p] {
					t.Errorf("per-producer order violated: p%d seq %d after %d", p, seq, lastPer[p])
					break
				}
				lastPer[p] = seq
			}
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if len(got) != producers*perProducer {
		t.Fatalf("received %d values, want %d", len(got), producers*perProducer)
	}
}

// Property: any sequence of enqueues followed by dequeues is FIFO and
// conserves elements, for arbitrary capacities and inputs.
func TestSPSCFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, vals []int32) bool {
		capacity := int(capRaw%64) + 1
		r := NewSPSC[int32](capacity)
		accepted := make([]int32, 0, len(vals))
		for _, v := range vals {
			if r.Enqueue(v) {
				accepted = append(accepted, v)
			}
		}
		for _, want := range accepted {
			got, ok := r.Dequeue()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Dequeue()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMPSCFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, vals []int32) bool {
		capacity := int(capRaw%64) + 1
		r := NewMPSC[int32](capacity)
		accepted := make([]int32, 0, len(vals))
		for _, v := range vals {
			if r.Enqueue(v) {
				accepted = append(accepted, v)
			}
		}
		for _, want := range accepted {
			got, ok := r.Dequeue()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Dequeue()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPSCEnqueueDequeue(b *testing.B) {
	r := NewSPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}

func BenchmarkMPSCEnqueueDequeue(b *testing.B) {
	r := NewMPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}
