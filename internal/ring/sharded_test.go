package ring

import (
	"runtime"
	"sync"
	"testing"
)

func TestShardOfStableAndInRange(t *testing.T) {
	s := NewSharded[int](4, 16)
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	for h := uint64(0); h < 10000; h++ {
		sh := s.ShardOf(h)
		if sh < 0 || sh >= 4 {
			t.Fatalf("ShardOf(%d) = %d out of range", h, sh)
		}
		if sh != s.ShardOf(h) {
			t.Fatalf("ShardOf(%d) unstable", h)
		}
	}
}

// TestShardOfSpreads checks the finalizer decorrelates hashes whose low
// bits are constant (the skew case a plain modulo would hit).
func TestShardOfSpreads(t *testing.T) {
	s := NewSharded[int](4, 16)
	var hits [4]int
	for i := uint64(0); i < 4096; i++ {
		hits[s.ShardOf(i<<8)]++ // low 8 bits always zero
	}
	for sh, n := range hits {
		if n == 0 {
			t.Fatalf("shard %d never hit across 4096 stride-256 hashes: %v", sh, hits)
		}
	}
}

func TestShardedClampsShardCount(t *testing.T) {
	s := NewSharded[int](0, 4)
	if s.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", s.Shards())
	}
	if !s.Enqueue(0, 7) {
		t.Fatal("enqueue failed")
	}
	v, ok := s.Dequeue(0)
	if !ok || v != 7 {
		t.Fatalf("dequeue = %d,%v", v, ok)
	}
}

// TestShardedPerProducerFIFO drives concurrent producers into every shard
// and checks each producer's elements come out of its shard in order — the
// property the descriptor switch's per-flow ordering rests on.
func TestShardedPerProducerFIFO(t *testing.T) {
	const (
		shards    = 3
		producers = 4 // per shard
		perProd   = 400
	)
	s := NewSharded[[2]int](shards, 256)
	var wg sync.WaitGroup
	// One consumer per shard, as in the switch.
	got := make([][][2]int, shards)
	stop := make(chan struct{})
	var consWG sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		consWG.Add(1)
		go func(sh int) {
			defer consWG.Done()
			var out [16][2]int
			for {
				n := s.DequeueBulk(sh, out[:])
				if n == 0 {
					select {
					case <-stop:
						if s.ShardLen(sh) == 0 {
							return
						}
					default:
					}
					runtime.Gosched()
					continue
				}
				got[sh] = append(got[sh], out[:n]...)
			}
		}(sh)
	}
	for sh := 0; sh < shards; sh++ {
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(sh, p int) {
				defer wg.Done()
				id := sh*producers + p
				for i := 0; i < perProd; i++ {
					for !s.Enqueue(sh, [2]int{id, i}) {
						runtime.Gosched()
					}
				}
			}(sh, p)
		}
	}
	wg.Wait()
	close(stop)
	consWG.Wait()

	total := 0
	for sh := 0; sh < shards; sh++ {
		last := map[int]int{}
		for _, e := range got[sh] {
			id, seq := e[0], e[1]
			if id/producers != sh {
				t.Fatalf("shard %d received producer %d's element", sh, id)
			}
			if prev, ok := last[id]; ok && seq != prev+1 {
				t.Fatalf("shard %d producer %d: seq %d after %d", sh, id, seq, prev)
			}
			last[id] = seq
		}
		total += len(got[sh])
	}
	if want := shards * producers * perProd; total != want {
		t.Fatalf("consumed %d, want %d", total, want)
	}
}
