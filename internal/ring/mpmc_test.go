package ring

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMPMCBasic(t *testing.T) {
	r := NewMPMC[int](4)
	if !r.Enqueue(1) || !r.Enqueue(2) {
		t.Fatal("enqueue failed")
	}
	if v, ok := r.Dequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	if v, ok := r.Dequeue(); !ok || v != 2 {
		t.Fatalf("got %d,%v want 2,true", v, ok)
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue on empty should fail")
	}
}

func TestMPMCFullEmpty(t *testing.T) {
	r := NewMPMC[int](2)
	if !r.Enqueue(1) || !r.Enqueue(2) {
		t.Fatal("fill failed")
	}
	if r.Enqueue(3) {
		t.Fatal("enqueue on full should fail")
	}
	r.Dequeue()
	if !r.Enqueue(3) {
		t.Fatal("enqueue after drain should succeed")
	}
}

func TestMPMCConcurrentConservation(t *testing.T) {
	const producers, consumers, per = 4, 4, 2000
	r := NewMPMC[int](128)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for !r.Enqueue(p*per + i) {
				}
			}
		}(p)
	}
	var mu sync.Mutex
	got := make(map[int]bool, producers*per)
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if v, ok := r.Dequeue(); ok {
					mu.Lock()
					if got[v] {
						t.Errorf("duplicate %d", v)
					}
					got[v] = true
					done := len(got) == producers*per
					mu.Unlock()
					if done {
						close(stop)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if len(got) != producers*per {
		t.Fatalf("received %d, want %d", len(got), producers*per)
	}
}

func TestMPMCFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, vals []int16) bool {
		r := NewMPMC[int16](int(capRaw%32) + 1)
		accepted := vals[:0:0]
		for _, v := range vals {
			if r.Enqueue(v) {
				accepted = append(accepted, v)
			}
		}
		for _, want := range accepted {
			got, ok := r.Dequeue()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Dequeue()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
