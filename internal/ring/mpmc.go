package ring

import "sync/atomic"

// MPMC is a bounded lock-free multi-producer multi-consumer ring (Vyukov's
// bounded queue). It backs the packet-buffer pool free list, where any NF
// goroutine may allocate or release concurrently.
type MPMC[T any] struct {
	mask uint64
	buf  []mslot[T]

	_    pad
	head atomic.Uint64
	_    pad
	tail atomic.Uint64
	_    pad
}

// NewMPMC returns an MPMC ring holding at least capacity elements.
func NewMPMC[T any](capacity int) *MPMC[T] {
	if capacity < 1 {
		capacity = 1
	}
	c := ceilPow2(capacity)
	r := &MPMC[T]{mask: c - 1, buf: make([]mslot[T], c)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *MPMC[T]) Cap() int { return len(r.buf) }

// Len returns the approximate number of queued elements.
func (r *MPMC[T]) Len() int {
	n := int(r.tail.Load() - r.head.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Enqueue adds v from any goroutine. Returns false when full.
func (r *MPMC[T]) Enqueue(v T) bool {
	for {
		t := r.tail.Load()
		s := &r.buf[t&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == t:
			if r.tail.CompareAndSwap(t, t+1) {
				s.v = v
				s.seq.Store(t + 1)
				return true
			}
		case seq < t:
			return false
		}
	}
}

// Dequeue removes the oldest element from any goroutine.
func (r *MPMC[T]) Dequeue() (v T, ok bool) {
	for {
		h := r.head.Load()
		s := &r.buf[h&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == h+1:
			if r.head.CompareAndSwap(h, h+1) {
				v = s.v
				var zero T
				s.v = zero
				s.seq.Store(h + uint64(len(r.buf)))
				return v, true
			}
		case seq <= h:
			return v, false
		}
	}
}
