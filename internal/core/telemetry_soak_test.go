package core

import (
	"fmt"
	"path"
	"strings"
	"sync"
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/telemetry"
	"l25gc/internal/testutil"
	"l25gc/internal/trace"
)

// soakSubscribers builds n distinct test subscribers.
func soakSubscribers(n int) []udr.Subscriber {
	subs := make([]udr.Subscriber, n)
	for i := range subs {
		subs[i] = testSubscriber(fmt.Sprintf("imsi-20893000000%04d", i+1))
	}
	return subs
}

// startTelemetryCore boots an L25GC unit with the full continuous-
// telemetry configuration: streaming tracer, registry, pipeline, and an
// armed fault injector, with resilience and overload control on.
func startTelemetryCore(t *testing.T, subs []udr.Subscriber) (*Core, *telemetry.Pipeline, *metrics.Registry, *faults.Injector) {
	t.Helper()
	base := time.Now()
	clk := func() time.Duration { return time.Since(base) }
	tr := trace.NewStreaming(clk)
	reg := metrics.NewRegistry()
	tel := telemetry.New(telemetry.Config{
		WatchStages: []string{"onvm.deliver", "upf.classify", "sbi.invoke", "ngap.encode"},
		Clock:       clk,
	})
	inj := faults.New(1902)
	inj.SetTracer(trace.NewTrack(tr, "fault.injector"))
	c, err := New(Config{
		Mode: ModeL25GC, Subscribers: subs,
		Tracer: tr, Metrics: reg, Telemetry: tel,
		Resilience: true, FaultInjector: inj,
		Overload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	c.SetN6Sink(func([]byte) {})
	return c, tel, reg, inj
}

// runMixedWorkload drives each UE through ops rounds of a mixed
// handover / uplink / idle+page cycle concurrently, one goroutine per
// UE, and reports every op error.
func runMixedWorkload(t *testing.T, c *Core, gs []*ranue.GNB, subs []udr.Subscriber, ops int) {
	t.Helper()
	dn := pkt.AddrFrom(1, 1, 1, 2)
	var wg sync.WaitGroup
	errs := make(chan error, len(subs))
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ue := ranue.NewUE(subs[i].Supi, subs[i].K, subs[i].Opc)
			if _, err := ue.Register(gs[i%len(gs)]); err != nil {
				errs <- fmt.Errorf("UE %d register: %w", i, err)
				return
			}
			if _, err := ue.EstablishSession(uint32(i%15+1), "internet"); err != nil {
				errs <- fmt.Errorf("UE %d session: %w", i, err)
				return
			}
			cur := i % len(gs)
			for n := 0; n < ops; n++ {
				var err error
				switch n % 5 {
				case 0, 1, 2:
					cur = (cur + 1) % len(gs)
					_, err = ue.Handover(gs[cur])
				case 3:
					err = ue.SendUplink(dn, 40000, 9000, []byte("x"))
				case 4:
					if err = ue.GoIdle(); err != nil {
						break
					}
					buf := make([]byte, 96)
					nn, _ := pkt.BuildUDPv4(buf, dn, ue.IP(), 9000, 40000, 0, []byte("w"))
					if err = c.InjectDL(buf[:nn]); err != nil {
						break
					}
					_, err = ue.AwaitPagingAndReconnect(10 * time.Second)
				}
				if err != nil {
					errs <- fmt.Errorf("UE %d op %d: %w", i, n, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Regression for a PFCP head-of-line deadlock: an NF that issues a
// synchronous N4 Request from inside its supervisor unit lock (the
// SMF's paging/modification path) wedged the whole association when the
// peer's unsolicited Session Report arrived first on the endpoint's
// receive loop — the report's ingress tap blocked on the unit lock, and
// the response the lock holder was waiting for sat unread behind it.
// The retained tracer's global mutex narrowed the race window enough to
// hide it; the streaming tracer used by the telemetry pipeline exposed
// it at >=8 concurrent UEs. The fix dispatches inbound requests on a
// dedicated serial worker so responses are always consumed inline.
func TestConcurrentControlWithStreamingTelemetry(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	subs := soakSubscribers(8)
	c, _, _, _ := startTelemetryCore(t, subs)
	g1, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 2, 1), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	g2, err := ranue.NewGNB(2, pkt.AddrFrom(10, 100, 2, 2), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	runMixedWorkload(t, c, []*ranue.GNB{g1, g2}, subs, 25)
}

// Killing an NF mid-workload must leave a flight dump: the supervisor
// promote fires the pipeline's dump trigger, and the dump carries the
// spans from the window preceding the crash plus the recovery's own
// overload/supervisor events.
func TestFlightDumpOnCrashMidWorkload(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	subs := soakSubscribers(8)
	c, tel, _, inj := startTelemetryCore(t, subs)
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 2, 1), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	dn := pkt.AddrFrom(1, 1, 1, 2)
	ues := make([]*ranue.UE, len(subs))
	for i := range subs {
		ues[i] = fullAttach(t, c, g, subs[i].Supi)
	}

	// Data traffic keeps flowing while the SMF dies and fails over —
	// the paper's data-plane-continuity claim.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, ue := range ues {
		wg.Add(1)
		go func(ue *ranue.UE) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Pool exhaustion is backpressure (a dropped frame), not a
				// data-plane outage; back off and keep offering load.
				if err := ue.SendUplink(dn, 40000, 9000, []byte("x")); err != nil &&
					!strings.Contains(err.Error(), "pool exhausted") {
					t.Errorf("uplink during failover: %v", err)
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(ue)
	}
	sup := c.Supervisor()
	inj.Crash(fmt.Sprintf("smf.g%d", sup.Unit("smf").Gen()))
	if err := sup.Unit("smf").AwaitRecovery(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	dump := tel.LastDump()
	if dump == nil {
		t.Fatal("no flight dump after supervisor promote")
	}
	if !strings.HasPrefix(dump.Reason, "supervisor.promote") {
		t.Fatalf("dump reason %q, want supervisor.promote.*", dump.Reason)
	}
	var spans, recovery bool
	for _, ev := range dump.Events {
		if ev.Kind == telemetry.KindSpan {
			spans = true
		}
		if ev.Name == "overload.recovery_enter" || ev.Name == "supervisor.replay" {
			recovery = true
		}
	}
	if !spans {
		t.Error("dump carries no spans from the preceding window")
	}
	if !recovery {
		t.Error("dump carries no overload/supervisor recovery events")
	}
	if tel.Dumps() == 0 || tel.SampleNow().Values["telemetry.dumps"] == 0 {
		t.Error("dump counter not visible through the sampler")
	}
}

// Every name the sampler emits must trace back to the registered-name
// table the metricnames analyzer enforces: registry names match
// directly, histogram-derived series match after stripping one derived
// suffix, and the sampler's own probes fall under "telemetry.*". This
// closes the loop the static analyzer cannot — names built with Sprintf
// at runtime still have to land inside a reviewed glob.
func TestSamplerReadsOnlyRegisteredNames(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	subs := soakSubscribers(2)
	c, tel, _, _ := startTelemetryCore(t, subs)
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 2, 1), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ue := fullAttach(t, c, g, subs[0].Supi)
	if err := ue.SendUplink(pkt.AddrFrom(1, 1, 1, 2), 40000, 9000, []byte("x")); err != nil {
		t.Fatal(err)
	}

	registered := func(name string) bool {
		for _, glob := range metrics.LintNames {
			if ok, _ := path.Match(glob, name); ok {
				return true
			}
		}
		return false
	}
	derived := []string{".count", ".p50_us", ".p90_us", ".p99_us", ".p999_us", ".mean_us"}
	smp := tel.SampleNow()
	if len(smp.Values) == 0 {
		t.Fatal("empty sample from a running core")
	}
	for name := range smp.Values {
		if registered(name) {
			continue
		}
		base := name
		for _, sfx := range derived {
			if s := strings.TrimSuffix(name, sfx); s != name {
				base = s
				break
			}
		}
		if !registered(base) {
			t.Errorf("sampler emitted unregistered name %q (base %q not in metrics.LintNames)", name, base)
		}
	}
}
