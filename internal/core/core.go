// Package core assembles a complete 5GC unit in one of three deployment
// modes, matching the systems compared in the paper's evaluation:
//
//   - ModeFree5GC — the baseline: HTTP/JSON SBI over kernel TCP sockets,
//     PFCP over kernel UDP sockets, kernel-socket UPF with linear-list PDR
//     lookup (Appendix B).
//   - ModeONVMUPF — the intermediate point of Fig. 8: the original REST
//     control plane, but the N4 interface and the UPF run on the
//     shared-memory platform.
//   - ModeL25GC — the paper's system: SBI and N4 over shared memory, the
//     data plane on the ONVM-style platform with PartitionSort lookup.
//
// A Core exposes a transport-independent surface to the RAN side
// (internal/ranue): AttachGNB for DL delivery, SendUL for N3 ingress,
// InjectDL / SetN6Sink for the data-network side.
package core

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/faults"
	"l25gc/internal/kernelpath"
	"l25gc/internal/metrics"
	"l25gc/internal/nf/amf"
	"l25gc/internal/nf/ausf"
	"l25gc/internal/nf/nrf"
	"l25gc/internal/nf/pcf"
	"l25gc/internal/nf/smf"
	"l25gc/internal/nf/udm"
	"l25gc/internal/nf/udr"
	"l25gc/internal/onvm"
	"l25gc/internal/overload"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/sbi"
	"l25gc/internal/supervisor"
	"l25gc/internal/telemetry"
	"l25gc/internal/trace"
	"l25gc/internal/upf"
)

// Mode selects the deployment flavour.
type Mode int

// Deployment modes.
const (
	ModeL25GC Mode = iota
	ModeFree5GC
	ModeONVMUPF
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeL25GC:
		return "l25gc"
	case ModeFree5GC:
		return "free5gc"
	case ModeONVMUPF:
		return "onvm-upf"
	default:
		return "unknown"
	}
}

// UPF N3 address inside the core.
var upfN3IP = pkt.AddrFrom(10, 100, 0, 2)

// Config parameterizes a 5GC unit.
type Config struct {
	Mode        Mode
	ClsAlgo     string // "ll", "tss", "ps"; defaults: free5GC="ll", others="ps"
	BufferPkts  uint16 // UPF per-session DL buffer (default 3000)
	Subscribers []udr.Subscriber
	PoolPrefix  string // shared-memory security domain (default "l25gc")
	// SwitchWorkers is the number of descriptor-switch workers in the ONVM
	// manager. 0 picks min(GOMAXPROCS, 4); flows are sharded across workers
	// with per-flow FIFO order preserved.
	SwitchWorkers int
	// NFShards stripes the AMF and SMF UE/session state (maps, locks, ID
	// allocators) across this many shards keyed by UE-ID hash. 0 means 1
	// shard, which preserves the legacy single-lock ID sequences bit for
	// bit; cmd/l25gc defaults the flag to GOMAXPROCS.
	NFShards int

	// Tracer, when non-nil, threads span tracks through every traced
	// component (control-plane procedures, PFCP stages, data-plane hot
	// paths). Nil keeps the zero-cost disabled fast path.
	Tracer *trace.Tracer
	// Metrics, when non-nil, collects every component counter under
	// stable dotted names (onvm.*, pfcp.*, sbi.*, upf.*, kern.*).
	Metrics *metrics.Registry

	// Resilience arms the §3.5 supervisor over the AMF and SMF: each runs
	// as a supervised unit (active generation + frozen standby), every
	// inbound NGAP/SBI/N4 message is counter-stamped through the unit's
	// packet log, and state is checkpointed per message (output commit) so
	// a crash is recovered by promote+replay with no lost sessions.
	// Recovery spans land on the Tracer and supervisor.<unit>.* gauges on
	// the Metrics registry.
	Resilience bool
	// FaultInjector, with Resilience, supplies the crash/freeze semantics
	// and the liveness probe for the supervised units (targets "amf.gN",
	// "smf.gN"). Nil arms protection without a failure source.
	FaultInjector *faults.Injector

	// Telemetry, when non-nil, binds the continuous pipeline to this
	// unit: the pipeline becomes the Tracer's span observer (spans and
	// events stream into its flight recorder and stage sketches), the
	// Metrics registry becomes its sampling source, and the automatic
	// dump triggers arm — a supervisor promote or an overload
	// recovery-mode entry snapshots the flight ring. The sampler's
	// goroutine (if periodic) stops with the core.
	Telemetry *telemetry.Pipeline

	// Overload arms per-NF admission control: the AMF's N2 ingress, the
	// SMF's SBI ingress, and the UPF-C's N4 establishment path each get a
	// bounded, priority-classed gate whose shed level follows observed
	// procedure p99. Shed work receives explicit pushback (NAS reject with
	// backoff timer, SBI 503 + Retry-After, PFCP congestion cause) instead
	// of queueing unboundedly — the graceful-degradation layer that keeps
	// the core live through a registration storm.
	Overload bool
	// OverloadConfig tunes the controllers; the zero value picks the
	// package defaults. Its Seed makes reject/backoff schedules
	// reproducible under a chaos seed.
	OverloadConfig overload.Config

	// N4Assoc arms the PFCP association lifecycle on N4: the SMF drives
	// AssociationSetup + heartbeats toward the UPF, declares the path
	// down after N4MissThreshold consecutive heartbeat failures (each
	// already carrying the full T1/N1 retransmission budget), rejects
	// new establishments with SBI 503 + Retry-After while down, journals
	// deletions/modifications as pending intents, and reconciles the two
	// SEID tables after the path heals. Association down triggers a
	// telemetry flight dump when Telemetry is bound.
	N4Assoc bool
	// N4HeartbeatInterval is the live heartbeat cadence; 0 leaves the
	// association in manual-Tick mode (deterministic harnesses drive
	// SMF.Association().Tick() themselves).
	N4HeartbeatInterval time.Duration
	// N4MissThreshold overrides down detection (default 2 missed
	// heartbeat exchanges).
	N4MissThreshold int
	// N4Retry overrides the SMF endpoint's T1/N1 retransmission profile
	// (zero value keeps pfcp.DefaultRetry). Heartbeats ride the same
	// budget, so this also sets the path-down detection latency:
	// MissThreshold × (T1 × (N1+1)) in the worst case.
	N4Retry pfcp.RetryConfig
}

// Core is one running 5GC unit.
type Core struct {
	cfg Config

	NRF  *nrf.NRF
	UDR  *udr.UDR
	UDM  *udm.UDM
	AUSF *ausf.AUSF
	PCF  *pcf.PCF
	SMF  *smf.SMF
	AMF  *amf.AMF

	UPFState *upf.State
	UPFC     *upf.UPFC
	UPFU     *upf.UPFU // nil in free5GC mode

	// Per-NF admission controllers (nil unless Config.Overload).
	OverloadAMF *overload.Controller
	OverloadSMF *overload.Controller
	OverloadUPF *overload.Controller

	mgr  *onvm.Manager          // shared-memory modes
	kupf *kernelpath.KernelUPF  // kernel mode
	sup  *supervisor.Supervisor // resilience mode

	// Active generation's N4 association + SMF (supervised mode spawns
	// one association per SMF generation; these track the ticking one so
	// metrics registered once read across failovers).
	n4assoc atomic.Pointer[pfcp.Association]
	n4smf   atomic.Pointer[smf.SMF]

	mu       sync.Mutex
	gnbSinks map[pkt.Addr]func(frame []byte)
	n6Sink   func(ipPkt []byte)

	// free5GC-mode sockets on the RAN/DN side.
	gnbSocks map[pkt.Addr]*net.UDPConn
	dnSock   *net.UDPConn

	closers []func()
}

// upfServiceID is the UPF-U's service ID on the platform.
const upfServiceID onvm.ServiceID = 7

// New builds and starts a 5GC unit.
func New(cfg Config) (*Core, error) {
	if cfg.ClsAlgo == "" {
		if cfg.Mode == ModeFree5GC {
			cfg.ClsAlgo = "ll"
		} else {
			cfg.ClsAlgo = "ps"
		}
	}
	if cfg.PoolPrefix == "" {
		cfg.PoolPrefix = "l25gc"
	}
	c := &Core{
		cfg:      cfg,
		gnbSinks: make(map[pkt.Addr]func([]byte)),
		gnbSocks: make(map[pkt.Addr]*net.UDPConn),
	}
	if err := c.start(); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

func (c *Core) start() error {
	cfg := c.cfg
	tr, reg := cfg.Tracer, cfg.Metrics
	track := func(name string) *trace.Track { return trace.NewTrack(tr, name) }

	// --- telemetry pipeline ---
	// Bound first so every later registration (gauges, tracks) is already
	// observable; the periodic sampler starts once and stops with the
	// core's closers (goroutine-leak tests cover this).
	tel := cfg.Telemetry
	if tel != nil {
		tel.Bind(tr, reg)
		tel.Start()
		c.closers = append(c.closers, tel.Stop)
	}

	// --- overload controllers ---
	if cfg.Overload {
		mk := func(nf string) *overload.Controller {
			ctl := overload.New(nf, cfg.OverloadConfig)
			ctl.SetTracer(track("overload." + nf))
			ctl.ExportMetrics(reg, "overload."+nf)
			if tel != nil {
				nf := nf
				ctl.SetRecoveryHook(func(entering bool) {
					if entering {
						tel.DumpNow("overload.recovery." + nf)
					}
				})
			}
			ctl.Start(0) // package-default tick
			c.closers = append(c.closers, ctl.Stop)
			return ctl
		}
		c.OverloadAMF = mk("amf")
		c.OverloadSMF = mk("smf")
		c.OverloadUPF = mk("upfc")
	}

	// --- repositories and registry ---
	c.NRF = nrf.New()
	c.UDR = udr.New()
	for _, s := range cfg.Subscribers {
		c.UDR.Provision(s)
	}

	// --- N4 + data plane ---
	var smfN4 pfcp.Endpoint
	switch cfg.Mode {
	case ModeFree5GC:
		c.UPFState = upf.NewState(cfg.ClsAlgo, int(cfg.BufferPkts))
		upfEP, err := pfcp.NewUDPEndpoint("127.0.0.1:0")
		if err != nil {
			return err
		}
		c.closers = append(c.closers, func() { upfEP.Close() })
		upfEP.SetTracer(track("pfcp.upf"))
		upfEP.ExportMetrics(reg, "pfcp.upf")
		c.UPFC = upf.NewUPFC(c.UPFState, upfN3IP, upfEP)
		k, err := kernelpath.New(c.UPFState, c.UPFC)
		if err != nil {
			return err
		}
		c.kupf = k
		c.closers = append(c.closers, func() { k.Close() })
		k.SetTracer(track("kern"))
		k.ExportMetrics(reg, "kern")
		smfEP, err := pfcp.NewUDPEndpoint("127.0.0.1:0")
		if err != nil {
			return err
		}
		c.closers = append(c.closers, func() { smfEP.Close() })
		smfEP.SetTracer(track("pfcp.smf"))
		smfEP.ExportMetrics(reg, "pfcp.smf")
		if cfg.FaultInjector != nil {
			smfEP.SetInjector(cfg.FaultInjector, "pfcp.smf")
			upfEP.SetInjector(cfg.FaultInjector, "pfcp.upf")
		}
		if cfg.N4Retry.T1 > 0 {
			smfEP.SetRetry(cfg.N4Retry)
		}
		if err := smfEP.Connect(upfEP.Addr()); err != nil {
			return err
		}
		if err := upfEP.Connect(smfEP.Addr()); err != nil {
			return err
		}
		smfN4 = smfEP
	default: // shared-memory data plane
		c.UPFState = upf.NewState(cfg.ClsAlgo, int(cfg.BufferPkts))
		smfEP, upfEP := pfcp.NewMemPair(1024)
		c.closers = append(c.closers, func() { smfEP.Close(); upfEP.Close() })
		smfEP.SetTracer(track("pfcp.smf"))
		smfEP.ExportMetrics(reg, "pfcp.smf")
		upfEP.SetTracer(track("pfcp.upf"))
		upfEP.ExportMetrics(reg, "pfcp.upf")
		if cfg.FaultInjector != nil {
			smfEP.SetInjector(cfg.FaultInjector, "pfcp.smf")
			upfEP.SetInjector(cfg.FaultInjector, "pfcp.upf")
		}
		if cfg.N4Retry.T1 > 0 {
			smfEP.SetRetry(cfg.N4Retry)
		}
		c.UPFC = upf.NewUPFC(c.UPFState, upfN3IP, upfEP)
		c.UPFU = upf.NewUPFU(c.UPFState, c.UPFC)
		c.UPFU.SetTracer(track("upf"))
		c.UPFU.ExportMetrics(reg, "upf")
		c.mgr = onvm.NewManager(onvm.Config{
			PoolSize: 8192, RingSize: 2048, PoolPrefix: cfg.PoolPrefix,
			SwitchWorkers: cfg.SwitchWorkers,
		})
		c.closers = append(c.closers, c.mgr.Stop)
		c.mgr.SetTracer(track("onvm"))
		c.mgr.ExportMetrics(reg, "onvm")
		if _, err := c.UPFU.AttachONVM(c.mgr, upfServiceID); err != nil {
			return err
		}
		c.mgr.BindPortNF(uint16(upf.PortN3), upfServiceID)
		c.mgr.BindPortNF(uint16(upf.PortN6), upfServiceID)
		c.mgr.RegisterPort(uint16(upf.PortN3), c.n3Egress)
		c.mgr.RegisterPort(uint16(upf.PortN6), c.n6Egress)
		smfN4 = smfEP
	}
	c.UPFState.ExportMetrics(reg, "upf")
	c.UPFC.SetOverload(c.OverloadUPF)

	// --- control-plane NF mesh ---
	// connTo builds a consumer connection to a producer handler according
	// to the mode's SBI transport, registering the producer with the NRF.
	httpSBI := cfg.Mode == ModeFree5GC || cfg.Mode == ModeONVMUPF
	connTo := func(nfType string, h sbi.Handler) (sbi.Conn, error) {
		sbiName := "sbi." + strings.ToLower(nfType)
		if httpSBI {
			srv, err := sbi.NewHTTPServer("127.0.0.1:0", codec.JSON{}, h)
			if err != nil {
				return nil, err
			}
			c.closers = append(c.closers, func() { srv.Close() })
			c.NRF.Handle(sbi.OpNFRegister, &sbi.NFRegisterRequest{
				NfInstanceID: nfType + "-1", NfType: nfType, Addr: srv.Addr(),
			})
			conn := sbi.NewHTTPConn(srv.Addr(), codec.JSON{})
			c.closers = append(c.closers, func() { conn.Close() })
			conn.SetTracer(track(sbiName))
			conn.ExportMetrics(reg, sbiName)
			return conn, nil
		}
		conn, srv := sbi.NewShmPair(1024, h)
		c.closers = append(c.closers, func() { srv.Close(); conn.Close() })
		c.NRF.Handle(sbi.OpNFRegister, &sbi.NFRegisterRequest{
			NfInstanceID: nfType + "-1", NfType: nfType, Addr: "shm:" + nfType,
		})
		conn.SetTracer(track(sbiName))
		conn.ExportMetrics(reg, sbiName)
		return conn, nil
	}

	udrConn, err := connTo("UDR", c.UDR.Handle)
	if err != nil {
		return err
	}
	c.UDM = udm.New(udrConn)
	udmConnAusf, err := connTo("UDM", c.UDM.Handle)
	if err != nil {
		return err
	}
	udmConnAmf, err := connTo("UDM", c.UDM.Handle)
	if err != nil {
		return err
	}
	udmConnSmf, err := connTo("UDM", c.UDM.Handle)
	if err != nil {
		return err
	}
	c.AUSF = ausf.New(udmConnAusf)
	ausfConn, err := connTo("AUSF", c.AUSF.Handle)
	if err != nil {
		return err
	}
	c.PCF = pcf.New(pcf.Policy{})
	pcfConnAmf, err := connTo("PCF", c.PCF.Handle)
	if err != nil {
		return err
	}
	pcfConnSmf, err := connTo("PCF", c.PCF.Handle)
	if err != nil {
		return err
	}

	if cfg.Resilience {
		if err := c.startSupervised(track, ausfConn, udmConnAmf, pcfConnAmf,
			udmConnSmf, pcfConnSmf, smfN4); err != nil {
			return err
		}
		return c.startDN()
	}

	// SMF's AMF connection is resolved lazily (the AMF is built after the
	// SMF because the AMF needs the SMF conn).
	var amfConnForSmf sbi.Conn
	var amfConnMu sync.Mutex
	c.SMF = smf.New(smf.Config{
		NodeID: "smf.l25gc", UPFN3IP: upfN3IP,
		UEPoolBase: pkt.AddrFrom(10, 60, 0, 1),
		BufferPkts: cfg.BufferPkts, Shards: cfg.NFShards,
	}, udmConnSmf, pcfConnSmf, smfN4, func() sbi.Conn {
		amfConnMu.Lock()
		defer amfConnMu.Unlock()
		return amfConnForSmf
	})
	c.SMF.SetTracer(track("smf"))
	c.SMF.SetOverload(c.OverloadSMF)
	if cfg.N4Assoc {
		a := c.newN4Assoc(c.SMF, smfN4, track, "smf.l25gc")
		c.n4assoc.Store(a)
		c.n4smf.Store(c.SMF)
		c.exportN4AssocMetrics(reg)
		// Best-effort initial setup: a failure leaves the association
		// probing (ticker or manual Ticks) rather than failing the core.
		_ = a.Setup()
		a.Start()
		c.closers = append(c.closers, a.Stop)
	}
	// Admission runs at the transport boundary (not inside Handle): in
	// resilience mode replay re-enters Handle, and replayed work must
	// never be re-admitted. The plain path has no replay, so the wrapper
	// is the boundary.
	smfConn, err := connTo("SMF", overload.WrapSBI(c.OverloadSMF, nil, c.SMF.Handle))
	if err != nil {
		return err
	}

	c.AMF, err = amf.New(amf.Config{
		Name: "amf.l25gc", Guami: "5G:mnc093.mcc208", Addr: "127.0.0.1:0",
		Shards: cfg.NFShards,
	}, ausfConn, udmConnAmf, pcfConnAmf, smfConn)
	if err != nil {
		return err
	}
	c.closers = append(c.closers, func() { c.AMF.Close() })
	c.AMF.SetTracer(track("amf"))
	c.AMF.SetOverload(c.OverloadAMF)

	amfConn, err := connTo("AMF", overload.WrapSBI(c.OverloadAMF, nil, c.AMF.Handle))
	if err != nil {
		return err
	}
	amfConnMu.Lock()
	amfConnForSmf = amfConn
	amfConnMu.Unlock()

	return c.startDN()
}

// newN4Assoc builds one SMF instance's association state machine over
// the (shared) N4 endpoint and attaches it to the SMF for degraded-mode
// gating and snapshot persistence. Reconciliation is the OnUp hook, so a
// heal never advertises Up before the SEID tables agree; association
// down snapshots the telemetry flight ring.
func (c *Core) newN4Assoc(s *smf.SMF, ep pfcp.Endpoint, track func(string) *trace.Track, nodeID string) *pfcp.Association {
	cfg := c.cfg
	a := pfcp.NewAssociation(ep, pfcp.AssocConfig{
		NodeID:            nodeID,
		RecoveryTimestamp: 1,
		HeartbeatInterval: cfg.N4HeartbeatInterval,
		MissThreshold:     cfg.N4MissThreshold,
		OnUp:              s.Reconcile,
		OnDown: func(reason string) {
			if tel := cfg.Telemetry; tel != nil {
				tel.DumpNow("pfcp.assoc.down")
			}
		},
	})
	a.SetTracer(track("pfcp.smf"))
	s.SetAssociation(a)
	return a
}

// exportN4AssocMetrics registers the pfcp.assoc.* family exactly once,
// reading through the ACTIVE generation's association and SMF — in
// supervised mode each generation spawns its own association, and
// registering per generation would sum retired instances' counters.
func (c *Core) exportN4AssocMetrics(reg *metrics.Registry) {
	counter := func(f func(pfcp.AssocCounters) uint64) func() uint64 {
		return func() uint64 {
			if a := c.n4assoc.Load(); a != nil {
				return f(a.Counters())
			}
			return 0
		}
	}
	reg.RegisterGauge("pfcp.assoc.state", func() uint64 {
		if a := c.n4assoc.Load(); a != nil {
			return uint64(a.State())
		}
		return 0
	})
	reg.RegisterGauge("pfcp.assoc.heartbeat.ok",
		counter(func(s pfcp.AssocCounters) uint64 { return s.HeartbeatOK }))
	reg.RegisterGauge("pfcp.assoc.heartbeat.miss",
		counter(func(s pfcp.AssocCounters) uint64 { return s.HeartbeatMiss }))
	reg.RegisterGauge("pfcp.assoc.down.total",
		counter(func(s pfcp.AssocCounters) uint64 { return s.Downs }))
	reg.RegisterGauge("pfcp.assoc.up.total",
		counter(func(s pfcp.AssocCounters) uint64 { return s.Ups }))
	reg.RegisterGauge("pfcp.assoc.peer.restarts",
		counter(func(s pfcp.AssocCounters) uint64 { return s.PeerRestarts }))
	reg.RegisterGauge("pfcp.assoc.setup.fail",
		counter(func(s pfcp.AssocCounters) uint64 { return s.SetupFails }))
	reg.RegisterGauge("pfcp.assoc.rejected_down", func() uint64 {
		if s := c.n4smf.Load(); s != nil {
			return s.RejectedWhileDown()
		}
		return 0
	})
	reg.RegisterGauge("pfcp.assoc.journal", func() uint64 {
		if s := c.n4smf.Load(); s != nil {
			return uint64(s.JournalLen())
		}
		return 0
	})
	reg.RegisterGauge("pfcp.assoc.reconcile.rebuilt", func() uint64 {
		if s := c.n4smf.Load(); s != nil {
			if r := s.LastReconcile(); r != nil {
				return uint64(r.Rebuilt)
			}
		}
		return 0
	})
	reg.RegisterGauge("pfcp.assoc.reconcile.purged", func() uint64 {
		if s := c.n4smf.Load(); s != nil {
			if r := s.LastReconcile(); r != nil {
				return uint64(r.Purged)
			}
		}
		return 0
	})
}

// N4Association returns the active SMF generation's association state
// machine (nil unless Config.N4Assoc).
func (c *Core) N4Association() *pfcp.Association { return c.n4assoc.Load() }

// startDN opens the free5GC-mode DN-side socket (no-op in the
// shared-memory modes).
func (c *Core) startDN() error {
	if c.cfg.Mode != ModeFree5GC {
		return nil
	}
	dn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	dn.SetReadBuffer(4 << 20)
	dn.SetWriteBuffer(4 << 20)
	c.dnSock = dn
	c.closers = append(c.closers, func() { dn.Close() })
	if err := c.kupf.SetDN(dn.LocalAddr().String()); err != nil {
		return err
	}
	go c.dnReadLoop(dn)
	return nil
}

// startSupervised assembles the AMF and SMF as supervised units: each
// generation is a full NF spawned over the shared neighbor connections,
// with its inbound traffic tapped through the unit's packet log and its
// state checkpointed per applied message (output commit — a message
// whose SBI side effects already ran is never re-externalized by
// replay). Peers reach the units through unit conns, which ride out
// failovers by waiting for recovery and retrying into the promoted
// generation's dedup cache.
func (c *Core) startSupervised(track func(string) *trace.Track,
	ausfConn, udmConnAmf, pcfConnAmf, udmConnSmf, pcfConnSmf sbi.Conn,
	smfN4 pfcp.Endpoint) error {
	cfg := c.cfg
	supCfg := supervisor.Config{Tracer: cfg.Tracer, Metrics: cfg.Metrics}
	if tel := cfg.Telemetry; tel != nil {
		supCfg.OnRecovery = func(unit string, stats supervisor.RecoveryStats) {
			tel.DumpNow("supervisor.promote." + unit)
		}
	}
	c.sup = supervisor.New(supCfg)
	c.closers = append(c.closers, c.sup.Close)

	// The SMF's paging conn resolves lazily: the AMF unit registers after
	// the SMF unit (it needs the SMF unit's conn).
	var (
		amfUnitMu sync.Mutex
		amfUnit   *supervisor.Unit
	)
	smfUnit, err := c.sup.Register(supervisor.UnitConfig{
		Name: "smf", Injector: cfg.FaultInjector, CheckpointEvery: 1,
		Overload: c.OverloadSMF,
		Spawn: func(su *supervisor.Unit, gen int) (supervisor.Instance, error) {
			s := smf.New(smf.Config{
				NodeID: fmt.Sprintf("smf.l25gc.g%d", gen), UPFN3IP: upfN3IP,
				UEPoolBase: pkt.AddrFrom(10, 60, 0, 1),
				BufferPkts: cfg.BufferPkts, Shards: cfg.NFShards,
			}, udmConnSmf, pcfConnSmf, smfN4, func() sbi.Conn {
				amfUnitMu.Lock()
				defer amfUnitMu.Unlock()
				if amfUnit == nil {
					return nil
				}
				return amfUnit.Conn()
			})
			s.SetTracer(track("smf"))
			s.SetOverload(c.OverloadSMF)
			supervisor.AttachSMF(su, s)
			var closer func() error
			if cfg.N4Assoc {
				a := c.newN4Assoc(s, smfN4, track,
					fmt.Sprintf("smf.l25gc.g%d", gen))
				closer = func() error { a.Stop(); return nil }
			}
			return supervisor.NewSMFInstance(s, closer), nil
		},
		// Generations share smfN4; the active one must hold its inbound
		// handler or session reports (paging triggers) would land on the
		// empty standby. Likewise only the active generation's
		// association heartbeats — the standby's stays in manual mode
		// until promotion, and the retired one is stopped via its closer.
		OnPromote: func(active supervisor.Instance) {
			s := active.(*supervisor.SMFInstance).S
			s.BindN4()
			if a := s.Association(); a != nil {
				c.n4assoc.Store(a)
				c.n4smf.Store(s)
				a.Start()
			}
		},
	})
	if err != nil {
		return err
	}
	c.SMF = smfUnit.Active().(*supervisor.SMFInstance).S

	aUnit, err := c.sup.Register(supervisor.UnitConfig{
		Name: "amf", Injector: cfg.FaultInjector, CheckpointEvery: 1,
		Overload: c.OverloadAMF,
		Spawn: func(su *supervisor.Unit, gen int) (supervisor.Instance, error) {
			a, err := amf.New(amf.Config{
				Name:  fmt.Sprintf("amf.l25gc.g%d", gen),
				Guami: "5G:mnc093.mcc208", Addr: "127.0.0.1:0",
				Shards: cfg.NFShards,
			}, ausfConn, udmConnAmf, pcfConnAmf, smfUnit.Conn())
			if err != nil {
				return nil, err
			}
			a.SetTracer(track("amf"))
			a.SetOverload(c.OverloadAMF)
			supervisor.AttachAMF(su, a)
			return supervisor.NewAMFInstance(a), nil
		},
	})
	if err != nil {
		return err
	}
	amfUnitMu.Lock()
	amfUnit = aUnit
	amfUnitMu.Unlock()
	c.AMF = aUnit.Active().(*supervisor.AMFInstance).A
	if cfg.N4Assoc {
		c.exportN4AssocMetrics(cfg.Metrics)
		// Best-effort initial setup on the active generation (OnPromote
		// already ran at registration and stored it).
		if a := c.n4assoc.Load(); a != nil {
			_ = a.Setup()
		}
	}
	return nil
}

// --- RAN-side surface ---

// N2Addr returns the NGAP listen address — in resilience mode, the
// currently active AMF generation's (it changes across failovers; RAN
// nodes re-dial it, the S-BFD-steered re-attach of §3.5).
func (c *Core) N2Addr() string {
	if c.sup != nil {
		if u := c.sup.Unit("amf"); u != nil {
			return u.Active().(*supervisor.AMFInstance).A.N2Addr()
		}
	}
	return c.AMF.N2Addr()
}

// Supervisor exposes the resiliency orchestrator (nil unless the core
// was built with Config.Resilience).
func (c *Core) Supervisor() *supervisor.Supervisor { return c.sup }

// AttachGNB registers a gNB's DL frame sink under its N3 address.
func (c *Core) AttachGNB(addr pkt.Addr, sink func(frame []byte)) error {
	c.mu.Lock()
	c.gnbSinks[addr] = sink
	c.mu.Unlock()
	if c.cfg.Mode != ModeFree5GC {
		return nil
	}
	// Kernel mode: the gNB side is a real UDP socket.
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	sock.SetReadBuffer(4 << 20)
	sock.SetWriteBuffer(4 << 20)
	c.mu.Lock()
	c.gnbSocks[addr] = sock
	c.mu.Unlock()
	c.closers = append(c.closers, func() { sock.Close() })
	if err := c.kupf.RegisterGNB(addr, sock.LocalAddr().String()); err != nil {
		return err
	}
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, _, err := sock.ReadFromUDP(buf)
			if err != nil {
				return
			}
			frame := append([]byte(nil), buf[:n]...)
			sink(frame)
		}
	}()
	return nil
}

// SendUL injects a GTP-U frame from a gNB into the core's N3 interface.
func (c *Core) SendUL(frame []byte) error {
	if c.cfg.Mode == ModeFree5GC {
		ua, err := net.ResolveUDPAddr("udp", c.kupf.N3Addr())
		if err != nil {
			return err
		}
		// Any gNB socket will do as the source; use the first.
		c.mu.Lock()
		var sock *net.UDPConn
		for _, s := range c.gnbSocks {
			sock = s
			break
		}
		c.mu.Unlock()
		if sock == nil {
			return fmt.Errorf("core: no gNB attached")
		}
		_, err = sock.WriteToUDP(frame, ua)
		return err
	}
	return c.mgr.Inject(uint16(upf.PortN3), frame, pktbuf.Meta{Uplink: true})
}

// --- DN-side surface ---

// InjectDL delivers a plain IP packet from the data network into N6.
func (c *Core) InjectDL(ipPkt []byte) error {
	if c.cfg.Mode == ModeFree5GC {
		ua, err := net.ResolveUDPAddr("udp", c.kupf.N6Addr())
		if err != nil {
			return err
		}
		_, err = c.dnSock.WriteToUDP(ipPkt, ua)
		return err
	}
	return c.mgr.Inject(uint16(upf.PortN6), ipPkt, pktbuf.Meta{Uplink: false})
}

// SetN6Sink installs the receiver for uplink packets leaving toward the
// data network.
func (c *Core) SetN6Sink(fn func(ipPkt []byte)) {
	c.mu.Lock()
	c.n6Sink = fn
	c.mu.Unlock()
}

// n3Egress routes DL frames leaving the platform to the right gNB sink.
func (c *Core) n3Egress(frame []byte, meta pktbuf.Meta) {
	c.mu.Lock()
	sink := c.gnbSinks[pkt.Addr(meta.OuterIP)]
	c.mu.Unlock()
	if sink != nil {
		cp := append([]byte(nil), frame...)
		sink(cp)
	}
}

// n6Egress delivers UL packets to the DN sink.
func (c *Core) n6Egress(frame []byte, meta pktbuf.Meta) {
	c.mu.Lock()
	sink := c.n6Sink
	c.mu.Unlock()
	if sink != nil {
		cp := append([]byte(nil), frame...)
		sink(cp)
	}
}

// dnReadLoop (free5GC mode) forwards UL packets from the kernel UPF's N6
// socket to the DN sink.
func (c *Core) dnReadLoop(dn *net.UDPConn) {
	buf := make([]byte, 64*1024)
	for {
		n, _, err := dn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		c.mu.Lock()
		sink := c.n6Sink
		c.mu.Unlock()
		if sink != nil {
			cp := append([]byte(nil), buf[:n]...)
			sink(cp)
		}
	}
}

// DeployUPFCanary starts a second UPF-U instance on the platform (the
// canary of a rolling upgrade, §4) and steers the given percentage of
// flows to it. Shared-memory modes only.
func (c *Core) DeployUPFCanary(percent int) (*onvm.Instance, error) {
	if c.mgr == nil {
		return nil, fmt.Errorf("core: canary rollout needs the shared-memory platform")
	}
	inst, err := c.UPFU.AttachONVM(c.mgr, upfServiceID)
	if err != nil {
		return nil, err
	}
	if err := c.mgr.SetCanary(upfServiceID, percent); err != nil {
		return nil, err
	}
	return inst, nil
}

// Mode reports the deployment mode.
func (c *Core) Mode() Mode { return c.cfg.Mode }

// Stop shuts the unit down.
func (c *Core) Stop() {
	for i := len(c.closers) - 1; i >= 0; i-- {
		c.closers[i]()
	}
	c.closers = nil
}
