package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"l25gc/internal/metrics"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/trace"
)

// startTracedCore builds a unit with a tracer and registry attached.
func startTracedCore(t *testing.T, mode Mode) (*Core, *trace.Tracer, *metrics.Registry) {
	t.Helper()
	tr := trace.New()
	reg := metrics.NewRegistry()
	c, err := New(Config{
		Mode:        mode,
		Subscribers: []udr.Subscriber{testSubscriber("imsi-208930000000001")},
		Tracer:      tr,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatalf("core start (%v): %v", mode, err)
	}
	t.Cleanup(c.Stop)
	return c, tr, reg
}

// stageSet collects the stage names of a breakdown.
func stageSet(bd *trace.Breakdown) map[string]bool {
	s := make(map[string]bool)
	for _, st := range bd.Stages {
		s[st.Name] = true
	}
	return s
}

// TestTraceSmoke runs a traced registration + session establishment in
// both deployment modes and checks the three tentpole properties: the
// PFCP establishment breakdown attributes (almost) the whole window, the
// stage names expose the shm-vs-kernel transport asymmetry, and the
// Chrome export is valid JSON.
func TestTraceSmoke(t *testing.T) {
	for _, mode := range []Mode{ModeL25GC, ModeFree5GC} {
		t.Run(mode.String(), func(t *testing.T) {
			c, tr, _ := startTracedCore(t, mode)
			g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			fullAttach(t, c, g, "imsi-208930000000001")

			bd := tr.Breakdown("pfcp.request.session_establishment")
			if bd == nil {
				t.Fatal("no pfcp.request.session_establishment span recorded")
			}
			if bd.Coverage < 0.95 {
				t.Fatalf("breakdown coverage %.3f < 0.95\n%s", bd.Coverage, bd.Table())
			}
			t.Logf("%v establishment %v, coverage %.1f%%\n%s",
				mode, bd.Window, 100*bd.Coverage, bd.Table())

			stages := stageSet(bd)
			switch mode {
			case ModeL25GC:
				// Shared-memory N4: a descriptor transfer, no
				// serialization or socket stages.
				if !stages["pfcp.tx.shm"] {
					t.Errorf("l25gc breakdown missing pfcp.tx.shm: %v", bd.Stages)
				}
				for _, banned := range []string{"pfcp.encode", "pfcp.tx.syscall", "pfcp.rx.decode"} {
					if stages[banned] {
						t.Errorf("l25gc breakdown has kernel-transport stage %s", banned)
					}
				}
			case ModeFree5GC:
				for _, want := range []string{"pfcp.encode", "pfcp.tx.syscall", "pfcp.rx.decode"} {
					if !stages[want] {
						t.Errorf("free5gc breakdown missing %s: %v", want, bd.Stages)
					}
				}
				if stages["pfcp.tx.shm"] {
					t.Error("free5gc breakdown has shm stage pfcp.tx.shm")
				}
			}

			var buf bytes.Buffer
			if err := tr.WriteChrome(&buf); err != nil {
				t.Fatalf("WriteChrome: %v", err)
			}
			var events []map[string]any
			if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
				t.Fatalf("Chrome export is not valid JSON: %v", err)
			}
			if len(events) == 0 {
				t.Fatal("Chrome export is empty")
			}
		})
	}
}

// TestRegistryNameSet pins the stable metric names each subsystem exports
// through core wiring, per deployment mode.
func TestRegistryNameSet(t *testing.T) {
	common := []string{
		"pfcp.smf.retransmits", "pfcp.smf.timeouts",
		"pfcp.upf.retransmits", "pfcp.upf.timeouts",
		"sbi.udm.invokes", "sbi.udm.errors",
		"sbi.ausf.invokes", "sbi.ausf.errors",
		"sbi.pcf.invokes", "sbi.pcf.errors",
		"sbi.smf.invokes", "sbi.smf.errors",
		"sbi.amf.invokes", "sbi.amf.errors",
		"sbi.udr.invokes", "sbi.udr.errors",
		"upf.sessions", "upf.buffer_depth",
	}
	cases := []struct {
		mode Mode
		want []string
	}{
		{ModeL25GC, append([]string{
			"onvm.switched", "onvm.dropped", "onvm.ring_overflow_drops",
			"upf.ul_fwd", "upf.dl_fwd", "upf.buffered", "upf.dropped",
			"upf.misses", "upf.rate_dropped",
		}, common...)},
		{ModeFree5GC, append([]string{
			"kern.ul_fwd", "kern.dl_fwd", "kern.dropped", "kern.injected",
		}, common...)},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			c, _, reg := startTracedCore(t, tc.mode)
			g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			fullAttach(t, c, g, "imsi-208930000000001")

			snap := reg.Snapshot()
			for _, name := range tc.want {
				if _, ok := snap.Counters[name]; !ok {
					t.Errorf("Snapshot missing %q", name)
				}
			}
			// A traced attach must actually move the SBI and PFCP needles.
			if snap.Counters["sbi.udm.invokes"] == 0 {
				t.Error("sbi.udm.invokes is zero after a full attach")
			}
			if snap.Counters["upf.sessions"] != 1 {
				t.Errorf("upf.sessions = %d, want 1", snap.Counters["upf.sessions"])
			}
		})
	}
}
