package core

import (
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/nf/udr"
	"l25gc/internal/ranue"
	"l25gc/internal/supervisor"
)

// TestCoreResilienceServesAndSurvivesSMFCrash builds a resilience-enabled
// core, runs a normal UE attach through the supervised control plane,
// crashes the SMF mid-deployment, and attaches a second UE afterwards:
// the AMF's unit conn rides out the failover and both sessions exist on
// the promoted SMF generation.
func TestCoreResilienceServesAndSurvivesSMFCrash(t *testing.T) {
	inj := faults.New(1902)
	c, err := New(Config{
		Mode: ModeL25GC,
		Subscribers: []udr.Subscriber{
			testSubscriber("imsi-208930000000001"),
			testSubscriber("imsi-208930000000002"),
		},
		Resilience:    true,
		FaultInjector: inj,
	})
	if err != nil {
		t.Fatalf("resilience core start: %v", err)
	}
	t.Cleanup(c.Stop)
	sup := c.Supervisor()
	if sup == nil || sup.Unit("amf") == nil || sup.Unit("smf") == nil {
		t.Fatal("resilience mode did not register AMF and SMF units")
	}

	g1, err := ranue.NewGNB(1, dnIP, c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	fullAttach(t, c, g1, "imsi-208930000000001")

	// Crash the SMF's primary; the supervisor promotes the standby.
	smfUnit := sup.Unit("smf")
	inj.Crash("smf.g0")
	if err := smfUnit.AwaitRecovery(1, 10*time.Second); err != nil {
		t.Fatalf("SMF failover: %v", err)
	}

	// A second UE attaches through the promoted generation; the first
	// UE's session survived the crash.
	fullAttach(t, c, g1, "imsi-208930000000002")
	smfNF := smfUnit.Active().(*supervisor.SMFInstance).S
	if n := smfNF.Sessions(); n != 2 {
		t.Fatalf("sessions on promoted SMF = %d, want 2", n)
	}
	if smfUnit.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", smfUnit.Recoveries())
	}
}
