package core

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/overload"
	"l25gc/internal/ranue"
	"l25gc/internal/supervisor"
	"l25gc/internal/testutil"
)

func stormChaosSeed(def int64) int64 {
	if v := os.Getenv("L25GC_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// TestStormWithCrashZeroAdmittedLoss drives a smoke-sized registration
// storm against a supervised, overload-controlled core and crashes the
// SMF primary mid-storm. The acceptance bar is the ISSUE's:
//
//   - every UE eventually attaches — shed UEs honor the network's
//     backoff and re-attempt (deterministic under L25GC_CHAOS_SEED);
//   - zero admitted-session loss: every session the core *accepted*
//     (EstablishmentAccept on the wire) exists on the promoted SMF
//     generation after the failover;
//   - the tight caps actually bit: the storm saw rejects, and the
//     admitted-registration queue never exceeded its configured bound.
func TestStormWithCrashZeroAdmittedLoss(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	seed := stormChaosSeed(1902)
	inj := faults.New(seed)

	const (
		totalUEs = 160
		gnbCount = 8
		workers  = 32
		regCap   = 8
		sessCap  = 16
	)
	cfg := Config{
		Mode:          ModeL25GC,
		Resilience:    true,
		FaultInjector: inj,
		Overload:      true,
		OverloadConfig: overload.Config{
			Caps: [overload.NumClasses]int64{
				overload.ClassRegistration: regCap,
				overload.ClassSession:      sessCap,
			},
			TargetP99:   80 * time.Millisecond,
			BackoffBase: 20 * time.Millisecond,
			BackoffMax:  500 * time.Millisecond,
			Seed:        seed,
		},
	}
	for i := 0; i < totalUEs; i++ {
		cfg.Subscribers = append(cfg.Subscribers,
			testSubscriber(fmt.Sprintf("imsi-2089300000%05d", i+1)))
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("storm core start: %v", err)
	}
	t.Cleanup(c.Stop)
	sup := c.Supervisor()
	if sup == nil || c.OverloadAMF == nil || c.OverloadSMF == nil {
		t.Fatal("core did not wire supervisor + overload controllers")
	}

	gnbs := make([]*ranue.GNB, gnbCount)
	for i := range gnbs {
		g, err := ranue.NewGNB(uint32(i+1), dnIP, c.N2Addr(), c)
		if err != nil {
			t.Fatalf("gNB %d: %v", i+1, err)
		}
		defer g.Close()
		gnbs[i] = g
	}

	var (
		next      atomic.Int64
		attached  atomic.Int64
		sessions  atomic.Int64 // sessions the core ACCEPTED — must all survive
		regFails  atomic.Int64
		sessFails atomic.Int64
		crashed   atomic.Bool
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= totalUEs {
					return
				}
				// One third of the way in, kill the SMF primary while
				// registrations and session creates are in flight.
				if i == totalUEs/3 && crashed.CompareAndSwap(false, true) {
					inj.Crash("smf.g0")
				}
				ue := ranue.NewUE(fmt.Sprintf("imsi-2089300000%05d", i+1),
					[]byte("0123456789abcdef"), []byte("fedcba9876543210"))
				if _, _, err := ue.RegisterWithRetry(gnbs[i%gnbCount], 64); err != nil {
					t.Errorf("UE %d register: %v", i, err)
					regFails.Add(1)
					continue
				}
				attached.Add(1)
				if _, _, err := ue.EstablishSessionWithRetry(5, "internet", 64); err != nil {
					t.Errorf("UE %d session: %v", i, err)
					sessFails.Add(1)
					continue
				}
				sessions.Add(1)
			}
		}()
	}
	wg.Wait()

	smfUnit := sup.Unit("smf")
	if err := smfUnit.AwaitRecovery(1, 10*time.Second); err != nil {
		t.Fatalf("SMF failover never completed: %v", err)
	}

	// Every UE attached; every accepted session exists on the promoted
	// SMF generation. Zero admitted loss.
	if got := attached.Load(); got != totalUEs {
		t.Fatalf("attached %d/%d UEs (regFails=%d, seed %d)",
			got, totalUEs, regFails.Load(), seed)
	}
	if f := sessFails.Load(); f != 0 {
		t.Fatalf("%d session establishments failed outright (seed %d)", f, seed)
	}
	smfNF := smfUnit.Active().(*supervisor.SMFInstance).S
	if got, want := int64(smfNF.Sessions()), sessions.Load(); got != want {
		t.Fatalf("promoted SMF holds %d sessions, %d were admitted — admitted-session loss (seed %d)",
			got, want, seed)
	}
	if smfUnit.Recoveries() < 1 {
		t.Fatalf("SMF recoveries = %d, want >= 1", smfUnit.Recoveries())
	}

	// The storm actually exercised the overload machinery: work was shed
	// and the admitted-registration queue stayed within its cap.
	shed := c.OverloadAMF.Shed(overload.ClassRegistration) +
		c.OverloadSMF.Shed(overload.ClassSession) +
		c.OverloadSMF.Shed(overload.ClassRegistration)
	if shed == 0 {
		t.Fatalf("storm shed nothing; caps (%d reg / %d sess) never bit at %d workers",
			regCap, sessCap, workers)
	}
	if hw := c.OverloadAMF.HighWater(overload.ClassRegistration); hw > regCap {
		t.Fatalf("registration queue high-water %d exceeded cap %d", hw, regCap)
	}
}
