package core

import (
	"sync"
	"testing"
	"time"

	"l25gc/internal/lb"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
)

var dnIP = pkt.AddrFrom(1, 1, 1, 1)

func testSubscriber(supi string) udr.Subscriber {
	return udr.Subscriber{
		Supi: supi,
		K:    []byte("0123456789abcdef"),
		Opc:  []byte("fedcba9876543210"),
		Dnn:  "internet",
		Sst:  1,
	}
}

func startCore(t *testing.T, mode Mode) *Core {
	t.Helper()
	c, err := New(Config{
		Mode: mode,
		Subscribers: []udr.Subscriber{
			testSubscriber("imsi-208930000000001"),
			testSubscriber("imsi-208930000000002"),
		},
	})
	if err != nil {
		t.Fatalf("core start (%v): %v", mode, err)
	}
	t.Cleanup(c.Stop)
	return c
}

// fullAttach registers a UE and establishes a session at gNB g.
func fullAttach(t *testing.T, c *Core, g *ranue.GNB, supi string) *ranue.UE {
	t.Helper()
	ue := ranue.NewUE(supi, []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if _, err := ue.Register(g); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := ue.EstablishSession(5, "internet"); err != nil {
		t.Fatalf("session: %v", err)
	}
	// The AMF activates the DL path asynchronously after the gNB's
	// resource response; give it a moment.
	time.Sleep(50 * time.Millisecond)
	return ue
}

// echoDN wires the N6 side as an echo server: every UL packet is turned
// around as a DL packet to the UE.
func echoDN(t *testing.T, c *Core) *sync.Map {
	t.Helper()
	var got sync.Map // seq payloads seen uplink
	c.SetN6Sink(func(ipPkt []byte) {
		var p pkt.Parsed
		if err := p.ParseIPv4(ipPkt); err != nil {
			return
		}
		got.Store(string(p.Payload), true)
		reply := make([]byte, 256)
		n, err := pkt.BuildUDPv4(reply, dnIP, p.IP.Src, p.UDP.DstPort, p.UDP.SrcPort, 0, p.Payload)
		if err != nil {
			return
		}
		c.InjectDL(reply[:n])
	})
	return &got
}

func testEndToEnd(t *testing.T, mode Mode) {
	c := startCore(t, mode)
	g1, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	g2, err := ranue.NewGNB(2, pkt.AddrFrom(10, 100, 0, 11), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()

	echoDN(t, c)
	ue := fullAttach(t, c, g1, "imsi-208930000000001")

	// Bidirectional data: send uplink, expect the echo downlink.
	var mu sync.Mutex
	var dl []string
	ue.OnData = func(ipPkt []byte) {
		var p pkt.Parsed
		if p.ParseIPv4(ipPkt) == nil {
			mu.Lock()
			dl = append(dl, string(p.Payload))
			mu.Unlock()
		}
	}
	if err := ue.SendUplink(dnIP, 40000, 9000, []byte("ping-1")); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dl) == 1 && dl[0] == "ping-1"
	}, "echo round trip")

	// --- paging: UE goes idle, DL data triggers paging, UE reconnects ---
	if err := ue.GoIdle(); err != nil {
		t.Fatalf("go idle: %v", err)
	}
	// DL packet for the idle UE: must be buffered, not delivered yet.
	dlPkt := make([]byte, 256)
	n, _ := pkt.BuildUDPv4(dlPkt, dnIP, ue.IP(), 9000, 40000, 0, []byte("wake-up"))
	if err := c.InjectDL(dlPkt[:n]); err != nil {
		t.Fatal(err)
	}
	pagingTime, err := ue.AwaitPagingAndReconnect(3 * time.Second)
	if err != nil {
		t.Fatalf("paging: %v", err)
	}
	t.Logf("%v paging event time: %v", mode, pagingTime)
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dl) >= 2 && dl[len(dl)-1] == "wake-up"
	}, "buffered DL packet delivered after paging")

	// --- handover to gNB 2 with data in flight ---
	hoTime, err := ue.Handover(g2)
	if err != nil {
		t.Fatalf("handover: %v", err)
	}
	t.Logf("%v handover event time: %v", mode, hoTime)
	// Data still flows via the new gNB.
	if err := ue.SendUplink(dnIP, 40000, 9000, []byte("ping-2")); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range dl {
			if d == "ping-2" {
				return true
			}
		}
		return false
	}, "echo after handover")
}

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEndToEndL25GC(t *testing.T)   { testEndToEnd(t, ModeL25GC) }
func TestEndToEndFree5GC(t *testing.T) { testEndToEnd(t, ModeFree5GC) }
func TestEndToEndONVMUPF(t *testing.T) { testEndToEnd(t, ModeONVMUPF) }

func TestTwoUEsConcurrently(t *testing.T) {
	c := startCore(t, ModeL25GC)
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	echoDN(t, c)

	ue1 := fullAttach(t, c, g, "imsi-208930000000001")
	ue2 := fullAttach(t, c, g, "imsi-208930000000002")
	if ue1.IP() == ue2.IP() {
		t.Fatalf("UEs share an IP: %v", ue1.IP())
	}
	var mu sync.Mutex
	got := map[string]bool{}
	sink := func(ipPkt []byte) {
		var p pkt.Parsed
		if p.ParseIPv4(ipPkt) == nil {
			mu.Lock()
			got[string(p.Payload)] = true
			mu.Unlock()
		}
	}
	ue1.OnData = sink
	ue2.OnData = sink
	ue1.SendUplink(dnIP, 1, 2, []byte("from-ue1"))
	ue2.SendUplink(dnIP, 1, 2, []byte("from-ue2"))
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got["from-ue1"] && got["from-ue2"]
	}, "both UEs' echoes")
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeL25GC: "l25gc", ModeFree5GC: "free5gc", ModeONVMUPF: "onvm-upf", Mode(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestUnknownSubscriberRejected(t *testing.T) {
	c := startCore(t, ModeL25GC)
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ue := ranue.NewUE("imsi-999999", []byte("0123456789abcdef"), nil)
	if _, err := ue.Register(g); err == nil {
		t.Fatal("unknown subscriber must not register")
	}
}

func TestDeregistration(t *testing.T) {
	c := startCore(t, ModeL25GC)
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	echoDN(t, c)
	ue := fullAttach(t, c, g, "imsi-208930000000001")
	if c.UPFState.Sessions() != 1 {
		t.Fatalf("sessions = %d", c.UPFState.Sessions())
	}
	if err := ue.Deregister(); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	// The UPF session is torn down; DL traffic for the old IP drops.
	waitCond(t, func() bool { return c.UPFState.Sessions() == 0 }, "UPF session removal")
	if err := ue.SendUplink(dnIP, 1, 2, []byte("x")); err == nil {
		t.Fatal("uplink after deregistration should fail")
	}
	// The SUPI can register again from scratch.
	ue2 := ranue.NewUE("imsi-208930000000001", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if _, err := ue2.Register(g); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if _, err := ue2.EstablishSession(5, "internet"); err != nil {
		t.Fatalf("re-establish: %v", err)
	}
}

func TestCanaryUPFRollout(t *testing.T) {
	// §4: a second UPF-U instance (the canary) joins the same service ID
	// and receives a configured share of new flows.
	c := startCore(t, ModeL25GC)
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	echoDN(t, c)
	ue := fullAttach(t, c, g, "imsi-208930000000001")

	inst, err := c.DeployUPFCanary(50)
	if err != nil {
		t.Fatal(err)
	}
	// Push UL traffic with many distinct flow hashes; both instances
	// must see packets.
	for i := 0; i < 400; i++ {
		if err := ue.SendUplink(dnIP, uint16(1000+i), 9000, []byte("canary-probe")); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	waitCond(t, func() bool {
		rx, _ := inst.Stats()
		return rx > 0
	}, "canary instance receiving traffic")
	rx, _ := inst.Stats()
	t.Logf("canary received %d of 400 packets", rx)
	if rx == 400 {
		t.Fatal("canary should not take all traffic at 50%")
	}
}

func TestTwoUnitsWithAffinity(t *testing.T) {
	// §4 scaling: multiple 5GC units in one serving region, each with its
	// own security-domain pool prefix; the UE-aware LB affinity pins each
	// UE to one unit for its session lifetime.
	c1, err := New(Config{Mode: ModeL25GC, PoolPrefix: "unit-1",
		Subscribers: []udr.Subscriber{testSubscriber("imsi-208930000000001")}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Stop)
	c2, err := New(Config{Mode: ModeL25GC, PoolPrefix: "unit-2",
		Subscribers: []udr.Subscriber{testSubscriber("imsi-208930000000002")}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Stop)
	units := []*Core{c1, c2}

	aff := lb.NewAffinity(2)
	attach := func(supi string) (*Core, *ranue.UE, *ranue.GNB) {
		u := aff.UnitFor(supi)
		c := units[u]
		g, err := ranue.NewGNB(uint32(10+u), pkt.AddrFrom(10, 100, byte(u), 10), c.N2Addr(), c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		ue := fullAttach(t, c, g, supi)
		return c, ue, g
	}
	cA, ueA, _ := attach("imsi-208930000000001")
	cB, ueB, _ := attach("imsi-208930000000002")
	if cA == cB {
		t.Fatal("affinity did not spread two UEs across two units")
	}
	// Affinity is sticky for the session lifetime.
	if units[aff.UnitFor("imsi-208930000000001")] != cA {
		t.Fatal("affinity moved a live session")
	}
	// Each unit serves its own UE's session independently.
	if cA.UPFState.Sessions() != 1 || cB.UPFState.Sessions() != 1 {
		t.Fatalf("sessions %d/%d", cA.UPFState.Sessions(), cB.UPFState.Sessions())
	}
	_ = ueA
	_ = ueB
}
