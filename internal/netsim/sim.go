// Package netsim is a discrete-event network simulator used for the
// application-level experiments of §5.4 and §5.5 (Figs. 12, 15, 16, 17 and
// Appendix C): links with rate, propagation delay and drop-tail queues; a
// TCP Reno sender/receiver pair with Linux's 200 ms minimum RTO; UDP CBR
// flows; and a 5GC middlebox that reproduces the three behaviours under
// study — normal forwarding, smart buffering during handover/paging, and
// the 3GPP reattach blackout that drops packets during failure recovery.
//
// Simulated time makes the TCP dynamics (spurious retransmission timeouts,
// cwnd collapse, goodput dips) deterministic and independent of host load,
// which is what the paper's figures are about.
package netsim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break for deterministic ordering
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is the simulation kernel.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// NewSim returns a simulator at t=0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute simulated time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the horizon (inclusive) or until the queue
// drains.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Packet is a simulated packet. TCP and UDP flows share the type; the
// zero AckNo/IsAck fields are ignored for UDP.
type Packet struct {
	FlowID  int
	Seq     int64 // TCP byte offset or UDP sequence number
	Len     int   // payload bytes
	Wire    int   // bytes on the wire (payload + headers)
	IsAck   bool
	AckNo   int64
	HoleEnd int64         // first out-of-order byte held above AckNo (0 = none)
	Sacked  []int64       // SACK: starts of segments held above the hole
	SentAt  time.Duration // stamped by the sender for RTT sampling
	TxID    int64         // unique per transmission (disambiguates rtx)
}

// Link is a unidirectional link with a serialization rate, propagation
// delay and a drop-tail queue measured in packets. Rate 0 means infinite.
type Link struct {
	sim      *Sim
	RateBps  float64
	Delay    time.Duration
	QueueCap int

	busyUntil time.Duration
	qlen      int

	// Dst receives packets after serialization + propagation.
	Dst func(Packet)

	Drops int
	Sent  int
}

// NewLink creates a link feeding dst.
func NewLink(sim *Sim, rateBps float64, delay time.Duration, queueCap int, dst func(Packet)) *Link {
	return &Link{sim: sim, RateBps: rateBps, Delay: delay, QueueCap: queueCap, Dst: dst}
}

// Send enqueues one packet, honouring the drop-tail queue.
func (l *Link) Send(p Packet) {
	now := l.sim.Now()
	var tx time.Duration
	if l.RateBps > 0 {
		tx = time.Duration(float64(p.Wire*8) / l.RateBps * float64(time.Second))
	}
	start := l.busyUntil
	if start < now {
		start = now
	}
	if l.QueueCap > 0 && l.qlen >= l.QueueCap {
		l.Drops++
		return
	}
	l.qlen++
	l.busyUntil = start + tx
	l.Sent++
	arrive := l.busyUntil + l.Delay
	l.sim.At(l.busyUntil, func() { l.qlen-- })
	l.sim.At(arrive, func() { l.Dst(p) })
}

// QueueLen reports the current queue occupancy.
func (l *Link) QueueLen() int { return l.qlen }
