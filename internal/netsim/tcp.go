package netsim

import (
	"sort"
	"time"

	"l25gc/internal/metrics"
)

// TCP constants (Linux defaults the paper leans on: 200 ms minimum RTO).
const (
	MSS        = 1448
	tcpHdrWire = 52 // IP + TCP + options on the wire
	MinRTO     = 200 * time.Millisecond
	maxRTO     = 60 * time.Second
	initCwnd   = 10 // packets (Linux IW10)
)

// Reno is a TCP Reno sender: slow start, congestion avoidance, fast
// retransmit/recovery on three duplicate ACKs, and Jacobson RTO with the
// Linux 200 ms floor — the mechanism behind the paper's spurious-timeout
// observations during slow handovers.
type Reno struct {
	sim  *Sim
	id   int
	path func(Packet) // toward the receiver

	// Transfer state (bytes).
	totalBytes int64 // 0 = unbounded
	nextSeq    int64
	sndUna     int64

	// Congestion state (packets).
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recover    int64
	rtxCursor  int64          // next hole byte to repair during recovery (SACK-driven)
	sacked     map[int64]bool // receiver-held segment starts (SACK scoreboard)

	// RTT estimation.
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoGen       uint64 // cancels stale timers
	timerArmed   bool

	sentAt map[int64]time.Duration // seq -> first-send time (Karn's rule)
	txSeq  int64

	// Instrumentation.
	RTT         *metrics.Series // ms over time
	Cwnd        *metrics.Series // packets over time
	Retransmits int
	Timeouts    int

	Done   bool
	DoneAt time.Duration
	OnDone func()
}

// NewReno creates a sender for totalBytes (0 = run forever) writing into
// path.
func NewReno(sim *Sim, id int, totalBytes int64, path func(Packet)) *Reno {
	return &Reno{
		sim: sim, id: id, path: path, totalBytes: totalBytes,
		cwnd: initCwnd, ssthresh: 1e9, rto: MinRTO,
		sentAt: make(map[int64]time.Duration),
		sacked: make(map[int64]bool),
		RTT:    metrics.NewSeriesSim("rtt"),
		Cwnd:   metrics.NewSeriesSim("cwnd"),
	}
}

// Start begins the transfer.
func (r *Reno) Start() { r.trySend() }

// BytesAcked reports progress.
func (r *Reno) BytesAcked() int64 { return r.sndUna }

func (r *Reno) flight() int64 { return r.nextSeq - r.sndUna }

// trySend transmits as many new segments as cwnd allows.
func (r *Reno) trySend() {
	if r.Done {
		return
	}
	for r.flight() < int64(r.cwnd*MSS) {
		if r.totalBytes > 0 && r.nextSeq >= r.totalBytes {
			break
		}
		seg := int64(MSS)
		if r.totalBytes > 0 && r.nextSeq+seg > r.totalBytes {
			seg = r.totalBytes - r.nextSeq
		}
		r.transmit(r.nextSeq, int(seg), true)
		r.nextSeq += seg
	}
	r.armTimer()
}

func (r *Reno) transmit(seq int64, length int, first bool) {
	r.txSeq++
	if first {
		r.sentAt[seq] = r.sim.Now()
	} else {
		// Karn: no RTT sample from retransmitted segments.
		delete(r.sentAt, seq)
		r.Retransmits++
	}
	r.path(Packet{
		FlowID: r.id, Seq: seq, Len: length, Wire: length + tcpHdrWire,
		SentAt: r.sim.Now(), TxID: r.txSeq,
	})
}

// OnAck processes a cumulative ACK arriving from the receiver.
func (r *Reno) OnAck(p Packet) {
	if r.Done {
		return
	}
	for _, s := range p.Sacked {
		r.sacked[s] = true
	}
	ack := p.AckNo
	if ack > r.sndUna {
		// New data acknowledged.
		if t0, ok := r.sentAt[r.sndUna]; ok {
			r.sampleRTT(r.sim.Now() - t0)
		}
		for s := range r.sentAt {
			if s < ack {
				delete(r.sentAt, s)
			}
		}
		r.sndUna = ack
		r.dupAcks = 0
		if r.inRecovery {
			if ack >= r.recover {
				r.inRecovery = false
				r.cwnd = r.ssthresh
			} else if p.HoleEnd != 0 {
				// Partial ACK with SACK evidence: keep repairing the hole.
				if r.rtxCursor < ack {
					r.rtxCursor = ack
				}
				r.repairHole(p.HoleEnd)
			}
		} else if r.cwnd < r.ssthresh {
			r.cwnd++ // slow start
		} else {
			r.cwnd += 1 / r.cwnd // congestion avoidance
		}
		r.Cwnd.AddAt(r.sim.Now(), r.cwnd)
		if r.totalBytes > 0 && r.sndUna >= r.totalBytes {
			r.Done = true
			r.DoneAt = r.sim.Now()
			r.timerArmed = false
			r.rtoGen++
			if r.OnDone != nil {
				r.OnDone()
			}
			return
		}
		r.armTimer()
		r.trySend()
		return
	}
	// Duplicate ACK. Only meaningful while data is actually outstanding;
	// duplicate *segments* (e.g. spurious go-back-N copies arriving after
	// a buffering episode) also produce duplicate ACKs and must not
	// trigger recovery (RFC 5681 §3.2 conditions).
	// Fast retransmit needs SACK evidence of a real hole (RFC 6675-style
	// loss detection); bare duplicate ACKs after an RTO or a buffering
	// episode must not spuriously re-enter recovery.
	if r.flight() == 0 || ack >= r.nextSeq || p.HoleEnd == 0 {
		return
	}
	r.dupAcks++
	if r.dupAcks == 3 && !r.inRecovery {
		// Fast retransmit / recovery.
		r.ssthresh = r.cwnd / 2
		if r.ssthresh < 2 {
			r.ssthresh = 2
		}
		r.cwnd = r.ssthresh + 3
		r.inRecovery = true
		r.recover = r.nextSeq
		// Monotone across recovery episodes: never re-repair a range that
		// an earlier episode already retransmitted (prevents duplicate
		// storms when back-to-back episodes cover overlapping windows).
		if r.rtxCursor < r.sndUna {
			r.rtxCursor = r.sndUna
		}
		r.repairHole(p.HoleEnd)
		r.Cwnd.AddAt(r.sim.Now(), r.cwnd)
	} else if r.inRecovery {
		r.cwnd++ // inflate
		r.repairHole(p.HoleEnd)
	}
}

// repairHole retransmits segments of the receiver-advertised hole
// [rtxCursor, holeEnd), a small burst per ACK — the single-block SACK
// recovery that keeps loss repair at ACK-clock speed rather than Reno's
// one segment per RTT.
func (r *Reno) repairHole(holeEnd int64) {
	const burst = 8
	if holeEnd == 0 {
		return // no SACK evidence: leave repair to the RTO
	}
	if holeEnd < r.recover {
		// SACKed data above the first hole means later holes may exist.
		// Repair up to the highest SACKed segment (everything below it
		// that is unSACKed has provably left the network, RFC 6675); the
		// tail beyond maxSacked may still be in flight.
		maxSacked := int64(0)
		for s := range r.sacked {
			if s > maxSacked {
				maxSacked = s
			}
		}
		if maxSacked > holeEnd {
			holeEnd = maxSacked
		}
	}
	n := 0
	for r.rtxCursor < holeEnd && r.rtxCursor < r.recover && n < burst {
		if r.sacked[r.rtxCursor] {
			r.rtxCursor += MSS
			continue
		}
		seg := int64(MSS)
		if r.totalBytes > 0 && r.rtxCursor+seg > r.totalBytes {
			seg = r.totalBytes - r.rtxCursor
		}
		if seg <= 0 {
			break
		}
		r.transmit(r.rtxCursor, int(seg), false)
		r.rtxCursor += seg
		n++
	}
}

func (r *Reno) sampleRTT(rtt time.Duration) {
	r.RTT.AddAt(r.sim.Now(), float64(rtt)/float64(time.Millisecond))
	if r.srtt == 0 {
		r.srtt = rtt
		r.rttvar = rtt / 2
	} else {
		diff := r.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		r.rttvar = (3*r.rttvar + diff) / 4
		r.srtt = (7*r.srtt + rtt) / 8
	}
	r.rto = r.srtt + 4*r.rttvar
	if r.rto < MinRTO {
		r.rto = MinRTO
	}
	if r.rto > maxRTO {
		r.rto = maxRTO
	}
}

func (r *Reno) armTimer() {
	if r.flight() == 0 || r.Done {
		return
	}
	r.rtoGen++
	gen := r.rtoGen
	r.timerArmed = true
	r.sim.After(r.rto, func() {
		if gen != r.rtoGen || r.Done {
			return
		}
		r.onTimeout()
	})
}

func (r *Reno) onTimeout() {
	r.Timeouts++
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = 1
	r.inRecovery = false
	r.dupAcks = 0
	r.Cwnd.AddAt(r.sim.Now(), r.cwnd)
	// Go-back-N from the last cumulative ACK.
	r.nextSeq = r.sndUna
	r.rtxCursor = r.sndUna // RTO invalidates prior repair progress
	r.rto *= 2
	if r.rto > maxRTO {
		r.rto = maxRTO
	}
	r.trySend()
}

// Receiver is the TCP receiver: cumulative ACKs with out-of-order
// buffering, feeding ACKs into the reverse path.
type Receiver struct {
	sim     *Sim
	id      int
	ackPath func(Packet)

	recvNext int64
	ooo      map[int64]int // seq -> len

	BytesDelivered int64
	Goodput        *metrics.Series // Mbit/s, windowed
	winStart       time.Duration
	winBytes       int64
}

// goodputWindow is the goodput averaging window.
const goodputWindow = 100 * time.Millisecond

// NewReceiver creates a receiver acknowledging through ackPath.
func NewReceiver(sim *Sim, id int, ackPath func(Packet)) *Receiver {
	return &Receiver{
		sim: sim, id: id, ackPath: ackPath,
		ooo:     make(map[int64]int),
		Goodput: metrics.NewSeriesSim("goodput"),
	}
}

// OnData processes an arriving data segment and emits an ACK.
func (rx *Receiver) OnData(p Packet) {
	if p.Seq == rx.recvNext {
		rx.deliver(int64(p.Len))
		rx.recvNext += int64(p.Len)
		for {
			l, ok := rx.ooo[rx.recvNext]
			if !ok {
				break
			}
			delete(rx.ooo, rx.recvNext)
			rx.deliver(int64(l))
			rx.recvNext += int64(l)
		}
	} else if p.Seq > rx.recvNext {
		rx.ooo[p.Seq] = p.Len
	}
	var holeEnd int64
	var sacked []int64
	for s := range rx.ooo {
		if holeEnd == 0 || s < holeEnd {
			holeEnd = s
		}
		sacked = append(sacked, s)
	}
	sort.Slice(sacked, func(i, j int) bool { return sacked[i] < sacked[j] })
	rx.ackPath(Packet{
		FlowID: rx.id, IsAck: true, AckNo: rx.recvNext, HoleEnd: holeEnd,
		Sacked: sacked, Wire: tcpHdrWire, SentAt: p.SentAt,
	})
}

func (rx *Receiver) deliver(n int64) {
	rx.BytesDelivered += n
	rx.winBytes += n
	now := rx.sim.Now()
	for now-rx.winStart >= goodputWindow {
		mbps := float64(rx.winBytes*8) / goodputWindow.Seconds() / 1e6
		rx.Goodput.AddAt(rx.winStart+goodputWindow, mbps)
		rx.winBytes = 0
		rx.winStart += goodputWindow
	}
}
