package netsim

import (
	"testing"
	"time"

	"l25gc/internal/testutil"
)

func TestSimEventOrdering(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewSim()
	var order []int
	s.At(3*time.Millisecond, func() { order = append(order, 3) })
	s.At(1*time.Millisecond, func() { order = append(order, 1) })
	s.At(2*time.Millisecond, func() { order = append(order, 2) })
	s.At(1*time.Millisecond, func() { order = append(order, 11) }) // same time: FIFO
	s.Run(time.Second)
	want := []int{1, 11, 2, 3}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSimRunHorizon(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewSim()
	fired := false
	s.At(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewSim()
	var arrivals []time.Duration
	// 8 Mbit/s, 10 ms delay: a 1000-byte packet serializes in 1 ms.
	l := NewLink(s, 8e6, 10*time.Millisecond, 0, func(p Packet) {
		arrivals = append(arrivals, s.Now())
	})
	l.Send(Packet{Wire: 1000})
	l.Send(Packet{Wire: 1000})
	s.Run(time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 11*time.Millisecond {
		t.Fatalf("first arrival = %v, want 11ms", arrivals[0])
	}
	if arrivals[1] != 12*time.Millisecond {
		t.Fatalf("second arrival = %v, want 12ms (queued behind first)", arrivals[1])
	}
}

func TestLinkDropTail(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewSim()
	got := 0
	l := NewLink(s, 1e3, 0, 2, func(p Packet) { got++ }) // very slow link
	for i := 0; i < 10; i++ {
		l.Send(Packet{Wire: 1000})
	}
	s.Run(2 * time.Minute)
	if l.Drops != 8 || got != 2 {
		t.Fatalf("drops=%d delivered=%d, want 8/2", l.Drops, got)
	}
}

func TestTCPTransferCompletes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	sim := NewSim()
	cfg := PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 100, CoreBufCap: 3000}
	p := NewTCPPath(sim, 0, cfg, 1<<20) // 1 MiB
	p.Sender.Start()
	sim.Run(time.Minute)
	if !p.Sender.Done {
		t.Fatalf("transfer incomplete: acked %d", p.Sender.BytesAcked())
	}
	if p.Receiver.BytesDelivered != 1<<20 {
		t.Fatalf("delivered %d", p.Receiver.BytesDelivered)
	}
	// 1 MiB over 30 Mbit/s is ~0.28 s of serialization plus slow start
	// (including recovery from the natural slow-start overshoot).
	if p.Sender.DoneAt > 2*time.Second {
		t.Fatalf("took %v", p.Sender.DoneAt)
	}
}

func TestTCPNoLossWithAmpleQueue(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	sim := NewSim()
	// Unbounded bottleneck queue: nothing can drop, so a clean transfer
	// must complete with zero retransmissions and zero timeouts.
	cfg := PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 0, CoreBufCap: 3000}
	p := NewTCPPath(sim, 0, cfg, 1<<20)
	p.Sender.Start()
	sim.Run(time.Minute)
	if !p.Sender.Done {
		t.Fatal("transfer incomplete")
	}
	if p.Sender.Retransmits != 0 || p.Sender.Timeouts != 0 {
		t.Fatalf("lossless path retransmitted (rtx=%d to=%d)", p.Sender.Retransmits, p.Sender.Timeouts)
	}
}

func TestTCPRTTReflectsPath(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	sim := NewSim()
	cfg := PathConfig{BottleneckBps: 100e6, RTT: 50 * time.Millisecond, QueueCap: 1000, CoreBufCap: 100}
	p := NewTCPPath(sim, 0, cfg, 256<<10)
	p.Sender.Start()
	sim.Run(time.Minute)
	pts := p.Sender.RTT.Points()
	if len(pts) == 0 {
		t.Fatal("no RTT samples")
	}
	if pts[0].V < 50 || pts[0].V > 80 {
		t.Fatalf("first RTT = %.1f ms, want ~50", pts[0].V)
	}
}

// TestHandoverShortVsLong is the Fig. 12 mechanism test: a handover
// shorter than min-RTO causes no timeouts; one longer than min-RTO causes
// spurious retransmissions and cwnd collapse.
func TestHandoverShortVsLong(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	run := func(hoDur time.Duration) *Reno {
		sim := NewSim()
		cfg := PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
		p := NewTCPPath(sim, 0, cfg, 8<<20)
		if hoDur > 0 {
			// Steady state, after slow start settles (as in the paper).
			p.HandoverAt(2*time.Second, hoDur)
		}
		p.Sender.Start()
		sim.Run(2 * time.Minute)
		if !p.Sender.Done {
			t.Fatalf("transfer with %v handover did not finish", hoDur)
		}
		return p.Sender
	}
	base := run(0)
	fast := run(96 * time.Millisecond)  // L²5GC handover time
	slow := run(463 * time.Millisecond) // free5GC handover time
	if fast.Timeouts > base.Timeouts {
		t.Fatalf("fast handover added timeouts: %d > baseline %d", fast.Timeouts, base.Timeouts)
	}
	if slow.Timeouts <= base.Timeouts {
		t.Fatalf("slow handover should cause spurious RTO (%d vs baseline %d)", slow.Timeouts, base.Timeouts)
	}
	if slow.Retransmits <= fast.Retransmits {
		t.Fatalf("slow rtx=%d should exceed fast rtx=%d", slow.Retransmits, fast.Retransmits)
	}
	if slow.DoneAt <= fast.DoneAt {
		t.Fatalf("slow HO transfer (%v) should finish after fast (%v)", slow.DoneAt, fast.DoneAt)
	}
}

// TestBlackoutVsBuffering is the Fig. 15 mechanism test. The paper's
// failover comparison: L²5GC's replica takeover pauses the data path for
// a few milliseconds (detect + reroute + replay) and loses nothing, while
// the 3GPP reattach blacks the path out for hundreds of milliseconds and
// drops every packet in flight, collapsing TCP goodput.
func TestBlackoutVsBuffering(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	run := func(mode string) (*TCPPath, int64) {
		sim := NewSim()
		cfg := PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
		p := NewTCPPath(sim, 0, cfg, 0) // unbounded stream
		switch mode {
		case "blackout":
			p.BlackoutAt(1*time.Second, 400*time.Millisecond) // reattach
		case "failover":
			p.HandoverAt(1*time.Second, 5*time.Millisecond) // replica takeover
		}
		p.Sender.Start()
		sim.Run(5 * time.Second)
		return p, p.Receiver.BytesDelivered
	}
	clean, _ := run("none") // baseline (slow-start overshoot may RTO once)
	buffered, bBytes := run("failover")
	blacked, kBytes := run("blackout")
	if buffered.Core.Dropped != 0 {
		t.Fatalf("failover buffering dropped %d packets", buffered.Core.Dropped)
	}
	if buffered.Sender.Timeouts > clean.Sender.Timeouts {
		t.Fatalf("failover buffering added timeouts: %d > baseline %d",
			buffered.Sender.Timeouts, clean.Sender.Timeouts)
	}
	if blacked.Core.Dropped == 0 {
		t.Fatal("blackout should drop packets")
	}
	if blacked.Sender.Timeouts <= clean.Sender.Timeouts {
		t.Fatalf("blackout should force extra timeouts (%d vs baseline %d)",
			blacked.Sender.Timeouts, clean.Sender.Timeouts)
	}
	if kBytes >= bBytes {
		t.Fatalf("blackout goodput (%d B) should trail buffering (%d B)", kBytes, bBytes)
	}
}

// TestPageLoadFasterWithShortHandovers reproduces the §5.4.1 PLT shape:
// the same page over the same bottleneck loads faster when handovers
// complete in 96 ms (L²5GC) than in 463 ms (free5GC).
func TestPageLoadFasterWithShortHandovers(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	resources := []int64{15 << 20, 15 << 20, 2 << 20, 1 << 20, 512 << 10, 512 << 10}
	cfg := PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
	hoTimes := []time.Duration{2 * time.Second, 5 * time.Second, 8 * time.Second}
	pltFast, _ := PageLoad(cfg, resources, hoTimes, 96*time.Millisecond)
	pltSlow, _ := PageLoad(cfg, resources, hoTimes, 463*time.Millisecond)
	if pltFast >= pltSlow {
		t.Fatalf("fast-HO PLT %v should beat slow-HO PLT %v", pltFast, pltSlow)
	}
	t.Logf("PLT: L25GC-style %v vs free5GC-style %v (%.1f%% improvement)",
		pltFast, pltSlow, 100*(1-pltFast.Seconds()/pltSlow.Seconds()))
}

func TestCoreBoxInOrderRelease(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	sim := NewSim()
	var got []int64
	c := NewCoreBox(sim, 10, func(p Packet) { got = append(got, p.Seq) })
	c.StartBuffering()
	for i := int64(0); i < 5; i++ {
		c.Deliver(Packet{Seq: i})
	}
	if c.QueueLen() != 5 {
		t.Fatalf("queue = %d", c.QueueLen())
	}
	c.Release()
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	// Post-release packets pass through immediately.
	c.Deliver(Packet{Seq: 99})
	if got[len(got)-1] != 99 {
		t.Fatal("pass-through after release failed")
	}
}

func TestCoreBoxCapacity(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	sim := NewSim()
	c := NewCoreBox(sim, 2, func(Packet) {})
	c.StartBuffering()
	for i := 0; i < 5; i++ {
		c.Deliver(Packet{})
	}
	if c.Dropped != 3 || c.QueueLen() != 2 {
		t.Fatalf("dropped=%d queued=%d", c.Dropped, c.QueueLen())
	}
}
