package netsim

import "time"

// CoreMode is the 5GC middlebox behaviour on the DL path.
type CoreMode int

// Core behaviours.
const (
	CorePass     CoreMode = iota // normal forwarding
	CoreBuffer                   // smart buffering (handover/paging episode)
	CoreBlackout                 // 3GPP reattach: everything is lost
)

// CoreBox models the 5GC on the downlink path: it forwards, buffers
// in-order (L²5GC smart buffering) or drops (3GPP reattach blackout).
type CoreBox struct {
	sim  *Sim
	out  func(Packet)
	mode CoreMode

	buffer []Packet
	Cap    int

	MaxQueued int
	Dropped   int
}

// NewCoreBox creates a pass-through core with the given buffer capacity.
func NewCoreBox(sim *Sim, bufCap int, out func(Packet)) *CoreBox {
	return &CoreBox{sim: sim, out: out, Cap: bufCap}
}

// Deliver is the core's ingress.
func (c *CoreBox) Deliver(p Packet) {
	switch c.mode {
	case CoreBuffer:
		if len(c.buffer) >= c.Cap {
			c.Dropped++
			return
		}
		c.buffer = append(c.buffer, p)
		if len(c.buffer) > c.MaxQueued {
			c.MaxQueued = len(c.buffer)
		}
	case CoreBlackout:
		c.Dropped++
	default:
		c.out(p)
	}
}

// StartBuffering begins a smart-buffering episode.
func (c *CoreBox) StartBuffering() { c.mode = CoreBuffer }

// Release ends a buffering episode, forwarding parked packets in order.
func (c *CoreBox) Release() {
	c.mode = CorePass
	for _, p := range c.buffer {
		c.out(p)
	}
	c.buffer = nil
}

// StartBlackout begins a reattach blackout (all packets lost).
func (c *CoreBox) StartBlackout() { c.mode = CoreBlackout }

// EndBlackout restores forwarding; lost packets stay lost.
func (c *CoreBox) EndBlackout() { c.mode = CorePass }

// QueueLen reports the buffered-packet count.
func (c *CoreBox) QueueLen() int { return len(c.buffer) }

// PathConfig sizes a simulated DL path: DN server -> bottleneck -> 5GC ->
// access link -> UE client, with ACKs returning over a delay-only path.
type PathConfig struct {
	BottleneckBps float64       // e.g. 30e6 for the Fig. 12 setup
	RTT           time.Duration // base round-trip (propagation only)
	QueueCap      int           // bottleneck queue (packets)
	CoreBufCap    int           // 5GC smart-buffer capacity (packets)
}

// TCPPath is one simulated TCP connection through the 5GC.
type TCPPath struct {
	Sim      *Sim
	Sender   *Reno
	Receiver *Receiver
	Core     *CoreBox

	Bottleneck *Link
}

// NewTCPPath builds the standard evaluation topology for one connection.
// totalBytes = 0 streams forever.
func NewTCPPath(sim *Sim, id int, cfg PathConfig, totalBytes int64) *TCPPath {
	p := &TCPPath{Sim: sim}
	oneWay := cfg.RTT / 2
	// ACK path: client -> server, delay only.
	ackLink := NewLink(sim, 0, oneWay, 0, func(pk Packet) { p.Sender.OnAck(pk) })
	p.Receiver = NewReceiver(sim, id, ackLink.Send)
	// Access link: 5GC -> client (delay only; radio not the bottleneck).
	access := NewLink(sim, 0, oneWay/2, 0, func(pk Packet) { p.Receiver.OnData(pk) })
	p.Core = NewCoreBox(sim, cfg.CoreBufCap, access.Send)
	// Bottleneck: server -> 5GC.
	p.Bottleneck = NewLink(sim, cfg.BottleneckBps, oneWay/2, cfg.QueueCap, p.Core.Deliver)
	p.Sender = NewReno(sim, id, totalBytes, p.Bottleneck.Send)
	return p
}

// HandoverAt schedules a smart-buffering episode: DL packets are parked at
// the core from start for the given duration, then released in order —
// the UE-visible effect of a handover (or paging) of that length.
func (p *TCPPath) HandoverAt(start, duration time.Duration) {
	p.Sim.At(start, p.Core.StartBuffering)
	p.Sim.At(start+duration, p.Core.Release)
}

// BlackoutAt schedules a 3GPP reattach outage: packets are dropped from
// start for the given duration (Fig. 15/16's baseline behaviour).
func (p *TCPPath) BlackoutAt(start, duration time.Duration) {
	p.Sim.At(start, p.Core.StartBlackout)
	p.Sim.At(start+duration, p.Core.EndBlackout)
}

// PageLoad models the §5.4.1 experiment: a page of resources fetched over
// parallel connections through a shared-bottleneck path, with handover
// episodes of the given duration occurring at the given times. It returns
// the page load time (all connections complete) and the per-connection
// senders for inspection.
func PageLoad(cfg PathConfig, resourceBytes []int64, handoverTimes []time.Duration,
	handoverDur time.Duration) (time.Duration, []*TCPPath) {

	sim := NewSim()
	// Shared bottleneck and core: all connections traverse the same 5GC.
	paths := make([]*TCPPath, len(resourceBytes))
	oneWay := cfg.RTT / 2

	// Build receivers/cores per connection but share one bottleneck link.
	var shared *Link
	cores := make([]*CoreBox, len(resourceBytes))
	demux := func(pk Packet) { cores[pk.FlowID].Deliver(pk) }
	shared = NewLink(sim, cfg.BottleneckBps, oneWay/2, cfg.QueueCap, demux)

	for i, n := range resourceBytes {
		i := i
		p := &TCPPath{Sim: sim, Bottleneck: shared}
		ackLink := NewLink(sim, 0, oneWay, 0, func(pk Packet) { p.Sender.OnAck(pk) })
		p.Receiver = NewReceiver(sim, i, ackLink.Send)
		access := NewLink(sim, 0, oneWay/2, 0, func(pk Packet) { p.Receiver.OnData(pk) })
		p.Core = NewCoreBox(sim, cfg.CoreBufCap, access.Send)
		cores[i] = p.Core
		p.Sender = NewReno(sim, i, n, shared.Send)
		paths[i] = p
	}
	for _, t := range handoverTimes {
		t := t
		sim.At(t, func() {
			for _, c := range cores {
				c.StartBuffering()
			}
		})
		sim.At(t+handoverDur, func() {
			for _, c := range cores {
				c.Release()
			}
		})
	}
	for _, p := range paths {
		p.Sender.Start()
	}
	sim.Run(10 * time.Minute)
	var plt time.Duration
	for _, p := range paths {
		if !p.Sender.Done {
			return 10 * time.Minute, paths // did not finish
		}
		if p.Sender.DoneAt > plt {
			plt = p.Sender.DoneAt
		}
	}
	return plt, paths
}
