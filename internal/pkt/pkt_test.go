package pkt

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	h := Ethernet{
		Dst:       MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
		Src:       MAC{0x02, 0x42, 0xac, 0x11, 0x00, 0x02},
		EtherType: EtherTypeIPv4,
	}
	b := make([]byte, EthernetLen+3)
	if err := h.Encode(b); err != nil {
		t.Fatal(err)
	}
	var got Ethernet
	payload, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
	if len(payload) != 3 {
		t.Fatalf("payload len = %d, want 3", len(payload))
	}
}

func TestEthernetTruncated(t *testing.T) {
	var h Ethernet
	if _, err := h.Decode(make([]byte, EthernetLen-1)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if err := h.Encode(make([]byte, 5)); err != ErrTruncated {
		t.Fatalf("encode err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		IHL: 5, TOS: 0xb8, TotalLen: 40, ID: 0x1234, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: ProtoUDP,
		Src: AddrFrom(10, 60, 0, 1), Dst: AddrFrom(8, 8, 8, 8),
	}
	b := make([]byte, 40)
	if err := h.Encode(b); err != nil {
		t.Fatal(err)
	}
	var got IPv4
	payload, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
	}
	if len(payload) != 20 {
		t.Fatalf("payload = %d bytes, want 20", len(payload))
	}
	// The encoded header must checksum to zero when re-summed with the
	// checksum field in place.
	if cs := Checksum(b[:20]); cs != 0 {
		t.Fatalf("header checksum verify = %#x, want 0", cs)
	}
}

func TestIPv4BadInput(t *testing.T) {
	var h IPv4
	if _, err := h.Decode(make([]byte, 19)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 6 << 4
	if _, err := h.Decode(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	b[0] = 4<<4 | 3
	if _, err := h.Decode(b); err != ErrBadIHL {
		t.Fatalf("ihl: %v", err)
	}
	b[0] = 4<<4 | 8 // IHL=8 needs 32 bytes
	if _, err := h.Decode(b); err != ErrTruncated {
		t.Fatalf("ihl beyond buffer: %v", err)
	}
}

func TestIPv4Options(t *testing.T) {
	h := IPv4{IHL: 6, TotalLen: 24 + 4, TTL: 1, Protocol: ProtoTCP,
		Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2)}
	b := make([]byte, 28)
	if err := h.Encode(b); err != nil {
		t.Fatal(err)
	}
	var got IPv4
	payload, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.HeaderLen() != 24 {
		t.Fatalf("HeaderLen = %d, want 24", got.HeaderLen())
	}
	if len(payload) != 4 {
		t.Fatalf("payload = %d, want 4", len(payload))
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example adapted: classic IP header vector.
	b := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if cs := Checksum(b); cs != 0xb861 {
		t.Fatalf("Checksum = %#x, want 0xb861", cs)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum pads with zero")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDP{SrcPort: 2152, DstPort: 2152, Length: 16, Checksum: 0xabcd}
	b := make([]byte, 16)
	if err := h.Encode(b); err != nil {
		t.Fatal(err)
	}
	var got UDP
	payload, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if len(payload) != 8 {
		t.Fatalf("payload = %d", len(payload))
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCP{
		SrcPort: 443, DstPort: 51000, Seq: 0xdeadbeef, Ack: 0x01020304,
		DataOffset: 5, Flags: TCPSyn | TCPAck, Window: 65535, Urgent: 0,
	}
	b := make([]byte, 20)
	if err := h.Encode(b); err != nil {
		t.Fatal(err)
	}
	var got TCP
	if _, err := got.Decode(b); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestTCPFlags(t *testing.T) {
	h := TCP{DataOffset: 5, Flags: TCPFin | TCPRst | TCPPsh | TCPUrg}
	b := make([]byte, 20)
	h.Encode(b)
	var got TCP
	got.Decode(b)
	if got.Flags != h.Flags {
		t.Fatalf("flags = %#x want %#x", got.Flags, h.Flags)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	h := ICMP{Type: 8, Code: 0, ID: 77, Seq: 3}
	b := make([]byte, 12)
	if err := h.Encode(b); err != nil {
		t.Fatal(err)
	}
	var got ICMP
	payload, err := got.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if len(payload) != 4 {
		t.Fatalf("payload = %d", len(payload))
	}
}

func TestBuildUDPv4AndParse(t *testing.T) {
	buf := make([]byte, 128)
	payload := []byte("measurement probe")
	n, err := BuildUDPv4(buf, AddrFrom(10, 60, 0, 1), AddrFrom(8, 8, 8, 8), 40000, 9000, 0xb8, payload)
	if err != nil {
		t.Fatal(err)
	}
	var p Parsed
	if err := p.ParseIPv4(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if p.L4 != ProtoUDP {
		t.Fatalf("L4 = %d", p.L4)
	}
	want := FiveTuple{
		Src: AddrFrom(10, 60, 0, 1), Dst: AddrFrom(8, 8, 8, 8),
		SrcPort: 40000, DstPort: 9000, Protocol: ProtoUDP,
	}
	if p.Tuple != want {
		t.Fatalf("tuple = %v, want %v", p.Tuple, want)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
	if p.TOS != 0xb8 {
		t.Fatalf("TOS = %#x", p.TOS)
	}
	// Verify the UDP checksum is valid end-to-end.
	seg := make([]byte, UDPLen+len(payload))
	copy(seg, buf[IPv4MinLen:n])
	stored := binary.BigEndian.Uint16(seg[6:8])
	binary.BigEndian.PutUint16(seg[6:8], 0)
	if cs := L4Checksum(p.IP.Src, p.IP.Dst, ProtoUDP, seg); cs != stored {
		t.Fatalf("udp checksum = %#x, stored %#x", cs, stored)
	}
}

func TestParseIPv4TCP(t *testing.T) {
	b := make([]byte, 40)
	ip := IPv4{IHL: 5, TotalLen: 40, TTL: 64, Protocol: ProtoTCP,
		Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8)}
	ip.Encode(b[:20])
	tcp := TCP{SrcPort: 80, DstPort: 1234, DataOffset: 5, Flags: TCPAck}
	tcp.Encode(b[20:])
	var p Parsed
	if err := p.ParseIPv4(b); err != nil {
		t.Fatal(err)
	}
	if p.L4 != ProtoTCP || p.Tuple.SrcPort != 80 || p.Tuple.DstPort != 1234 {
		t.Fatalf("parsed %+v", p.Tuple)
	}
}

func TestParseIPv4TruncatedL4(t *testing.T) {
	b := make([]byte, 24) // IP header + 4 bytes: too short for UDP
	ip := IPv4{IHL: 5, TotalLen: 24, TTL: 64, Protocol: ProtoUDP,
		Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8)}
	ip.Encode(b[:20])
	var p Parsed
	if err := p.ParseIPv4(b); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestAddrHelpers(t *testing.T) {
	a := AddrFrom(192, 168, 1, 200)
	if a.String() != "192.168.1.200" {
		t.Fatalf("String = %s", a.String())
	}
	if AddrFromUint32(a.Uint32()) != a {
		t.Fatal("Uint32 round trip failed")
	}
	m := MAC{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22}
	if m.String() != "aa:bb:cc:00:11:22" {
		t.Fatalf("MAC.String = %s", m.String())
	}
}

// Property: IPv4 encode→decode is the identity on valid headers.
func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst uint32, plen uint8) bool {
		h := IPv4{
			IHL: 5, TOS: tos, TotalLen: uint16(IPv4MinLen) + uint16(plen),
			ID: id, TTL: ttl, Protocol: proto,
			Src: AddrFromUint32(src), Dst: AddrFromUint32(dst),
		}
		b := make([]byte, int(h.TotalLen))
		if err := h.Encode(b); err != nil {
			return false
		}
		var got IPv4
		if _, err := got.Decode(b); err != nil {
			return false
		}
		return got == h && Checksum(b[:20]) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP encode→decode is the identity (flags masked to 6 bits).
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16) bool {
		h := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			DataOffset: 5, Flags: flags & 0x3f, Window: win}
		b := make([]byte, 20)
		if err := h.Encode(b); err != nil {
			return false
		}
		var got TCP
		if _, err := got.Decode(b); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseIPv4UDP(b *testing.B) {
	buf := make([]byte, 128)
	n, _ := BuildUDPv4(buf, AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2), 1, 2, 0, make([]byte, 64))
	var p Parsed
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.ParseIPv4(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}
