// Package pkt implements wire-format encoding and decoding for the packet
// headers used on the 5GC data path: Ethernet, IPv4, UDP, TCP and ICMP.
//
// Decoding follows the gopacket DecodingLayer style: headers decode from a
// byte slice into preallocated, reusable structs with no per-packet
// allocation, which is what keeps the UPF-U fast path allocation-free.
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes in bytes.
const (
	EthernetLen = 14
	IPv4MinLen  = 20
	UDPLen      = 8
	TCPMinLen   = 20
	ICMPLen     = 8
)

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Errors returned by header decoding.
var (
	ErrTruncated  = errors.New("pkt: truncated header")
	ErrBadVersion = errors.New("pkt: unsupported IP version")
	ErrBadIHL     = errors.New("pkt: bad IPv4 header length")
)

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Addr is an IPv4 address in host-friendly array form; it is comparable and
// usable as a map key (the UPF DL session table is keyed by UE IP).
type Addr [4]byte

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// AddrFrom returns the address a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// Uint32 returns the address as a big-endian integer.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// AddrFromUint32 converts a big-endian integer to an Addr.
func AddrFromUint32(v uint32) (a Addr) {
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// Decode parses the header from b and returns the payload.
func (h *Ethernet) Decode(b []byte) ([]byte, error) {
	if len(b) < EthernetLen {
		return nil, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[EthernetLen:], nil
}

// Encode writes the header into b, which must be >= EthernetLen bytes.
func (h *Ethernet) Encode(b []byte) error {
	if len(b) < EthernetLen {
		return ErrTruncated
	}
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
	return nil
}

// IPv4 is an IPv4 header (options preserved but not interpreted).
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      Addr
	Dst      Addr
}

// HeaderLen returns the header length in bytes.
func (h *IPv4) HeaderLen() int { return int(h.IHL) * 4 }

// Decode parses the header from b and returns the payload (bounded by
// TotalLen when b carries trailing padding).
func (h *IPv4) Decode(b []byte) ([]byte, error) {
	if len(b) < IPv4MinLen {
		return nil, ErrTruncated
	}
	if v := b[0] >> 4; v != 4 {
		return nil, ErrBadVersion
	}
	h.IHL = b[0] & 0x0f
	if h.IHL < 5 {
		return nil, ErrBadIHL
	}
	hl := int(h.IHL) * 4
	if len(b) < hl {
		return nil, ErrTruncated
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	end := int(h.TotalLen)
	if end > len(b) || end < hl {
		end = len(b)
	}
	return b[hl:end], nil
}

// Encode writes the header into b (length >= HeaderLen) and fills Checksum.
// TotalLen must already be set by the caller.
func (h *IPv4) Encode(b []byte) error {
	if h.IHL < 5 {
		h.IHL = 5
	}
	hl := int(h.IHL) * 4
	if len(b) < hl {
		return ErrTruncated
	}
	b[0] = 4<<4 | h.IHL
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	for i := IPv4MinLen; i < hl; i++ {
		b[i] = 0
	}
	h.Checksum = Checksum(b[:hl])
	binary.BigEndian.PutUint16(b[10:12], h.Checksum)
	return nil
}

// Checksum computes the RFC 1071 Internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial sum used by
// TCP/UDP checksums.
func pseudoHeaderSum(src, dst Addr, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

// L4Checksum computes the TCP/UDP checksum of segment with the v4
// pseudo-header. The checksum field inside segment must be zeroed first.
func L4Checksum(src, dst Addr, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	b := segment
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Decode parses the header from b and returns the payload.
func (h *UDP) Decode(b []byte) ([]byte, error) {
	if len(b) < UDPLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	return b[UDPLen:], nil
}

// Encode writes the header into b. Length must already be set.
func (h *UDP) Encode(b []byte) error {
	if len(b) < UDPLen {
		return ErrTruncated
	}
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
	return nil
}

// TCP flags.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP header (options preserved as raw bytes).
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      uint8
	Window     uint16
	Checksum   uint16
	Urgent     uint16
}

// Decode parses the header from b and returns the payload.
func (h *TCP) Decode(b []byte) ([]byte, error) {
	if len(b) < TCPMinLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.DataOffset = b[12] >> 4
	if h.DataOffset < 5 {
		return nil, ErrBadIHL
	}
	hl := int(h.DataOffset) * 4
	if len(b) < hl {
		return nil, ErrTruncated
	}
	h.Flags = b[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	return b[hl:], nil
}

// Encode writes the header into b (no options).
func (h *TCP) Encode(b []byte) error {
	if h.DataOffset < 5 {
		h.DataOffset = 5
	}
	hl := int(h.DataOffset) * 4
	if len(b) < hl {
		return ErrTruncated
	}
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = h.DataOffset << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	binary.BigEndian.PutUint16(b[18:20], h.Urgent)
	for i := TCPMinLen; i < hl; i++ {
		b[i] = 0
	}
	return nil
}

// ICMP is an ICMP echo-style header (type, code, id, seq).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16
	Seq      uint16
}

// Decode parses the header from b and returns the payload.
func (h *ICMP) Decode(b []byte) ([]byte, error) {
	if len(b) < ICMPLen {
		return nil, ErrTruncated
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return b[ICMPLen:], nil
}

// Encode writes the header into b.
func (h *ICMP) Encode(b []byte) error {
	if len(b) < ICMPLen {
		return ErrTruncated
	}
	b[0] = h.Type
	b[1] = h.Code
	binary.BigEndian.PutUint16(b[2:4], h.Checksum)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	return nil
}

// FiveTuple identifies an IP flow; it is the key structure that PDR SDF
// filters match against (Appendix A of the paper).
type FiveTuple struct {
	Src      Addr
	Dst      Addr
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
}

// String renders the tuple for diagnostics.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Protocol)
}

// Parsed is a zero-allocation view of a decoded IPv4 packet: the reusable
// header structs plus the flow tuple and payload slice. One Parsed per
// worker goroutine is enough for the whole run (DecodingLayerParser style).
type Parsed struct {
	IP      IPv4
	UDP     UDP
	TCP     TCP
	ICMP    ICMP
	Tuple   FiveTuple
	TOS     uint8
	Payload []byte
	L4      uint8 // ProtoUDP, ProtoTCP, ProtoICMP, or 0 for other
}

// ParseIPv4 decodes an IP packet (no Ethernet framing, as carried inside
// GTP-U) into p. It returns an error on malformed input.
func (p *Parsed) ParseIPv4(b []byte) error {
	pl, err := p.IP.Decode(b)
	if err != nil {
		return err
	}
	p.TOS = p.IP.TOS
	p.Tuple = FiveTuple{Src: p.IP.Src, Dst: p.IP.Dst, Protocol: p.IP.Protocol}
	p.L4 = 0
	p.Payload = pl
	switch p.IP.Protocol {
	case ProtoUDP:
		pp, err := p.UDP.Decode(pl)
		if err != nil {
			return err
		}
		p.Tuple.SrcPort, p.Tuple.DstPort = p.UDP.SrcPort, p.UDP.DstPort
		p.Payload = pp
		p.L4 = ProtoUDP
	case ProtoTCP:
		pp, err := p.TCP.Decode(pl)
		if err != nil {
			return err
		}
		p.Tuple.SrcPort, p.Tuple.DstPort = p.TCP.SrcPort, p.TCP.DstPort
		p.Payload = pp
		p.L4 = ProtoTCP
	case ProtoICMP:
		pp, err := p.ICMP.Decode(pl)
		if err != nil {
			return err
		}
		p.Payload = pp
		p.L4 = ProtoICMP
	}
	return nil
}

// BuildUDPv4 encodes a complete IPv4/UDP packet into dst and returns its
// length. dst must have room for 28 bytes of headers plus the payload.
func BuildUDPv4(dst []byte, src, dstAddr Addr, sport, dport uint16, tos uint8, payload []byte) (int, error) {
	total := IPv4MinLen + UDPLen + len(payload)
	if len(dst) < total {
		return 0, ErrTruncated
	}
	ip := IPv4{
		IHL: 5, TOS: tos, TotalLen: uint16(total), TTL: 64,
		Protocol: ProtoUDP, Src: src, Dst: dstAddr,
	}
	if err := ip.Encode(dst[:IPv4MinLen]); err != nil {
		return 0, err
	}
	u := UDP{SrcPort: sport, DstPort: dport, Length: uint16(UDPLen + len(payload))}
	if err := u.Encode(dst[IPv4MinLen : IPv4MinLen+UDPLen]); err != nil {
		return 0, err
	}
	copy(dst[IPv4MinLen+UDPLen:], payload)
	cs := L4Checksum(src, dstAddr, ProtoUDP, dst[IPv4MinLen:total])
	binary.BigEndian.PutUint16(dst[IPv4MinLen+6:IPv4MinLen+8], cs)
	return total, nil
}
