// Package nas implements the N1 Non-Access-Stratum messages exchanged
// between the UE and the AMF (and, for session management, the SMF): the
// registration, authentication, security mode, PDU session and service
// request message set used by the paper's four UE events.
//
// Real NAS uses 3GPP TS 24.501 bit-packed encoding; here each message is a
// one-byte message type followed by the schema-driven binary body (the
// same tag/varint codec the SBI uses), which preserves the property that
// NAS PDUs are opaque byte containers carried through N1/N2 transports.
package nas

import (
	"errors"
	"fmt"

	"l25gc/internal/codec"
)

// MsgType identifies a NAS message.
type MsgType uint8

// NAS message types (subset of TS 24.501).
const (
	MsgRegistrationRequest MsgType = iota + 1
	MsgAuthenticationRequest
	MsgAuthenticationResponse
	MsgSecurityModeCommand
	MsgSecurityModeComplete
	MsgRegistrationAccept
	MsgRegistrationComplete
	MsgPDUSessionEstablishmentRequest
	MsgPDUSessionEstablishmentAccept
	MsgServiceRequest
	MsgServiceAccept
	MsgDeregistrationRequest
	MsgConfigurationUpdate
	MsgRegistrationReject
	MsgPDUSessionEstablishmentReject
	MsgServiceReject
)

// NAS reject causes (subset of TS 24.501 5GMM/5GSM causes).
const (
	// CauseCongestion corresponds to 5GMM cause #22 "congestion": the
	// network is overloaded and the UE must back off (T3346).
	CauseCongestion uint32 = 22
	// CauseInsufficientResources corresponds to 5GSM cause #26.
	CauseInsufficientResources uint32 = 26
)

// MsgName returns a stable lowercase label for a NAS message type, used
// as the span attribute on traced control-plane procedures.
func MsgName(t MsgType) string {
	switch t {
	case MsgRegistrationRequest:
		return "registration_request"
	case MsgAuthenticationRequest:
		return "authentication_request"
	case MsgAuthenticationResponse:
		return "authentication_response"
	case MsgSecurityModeCommand:
		return "security_mode_command"
	case MsgSecurityModeComplete:
		return "security_mode_complete"
	case MsgRegistrationAccept:
		return "registration_accept"
	case MsgRegistrationComplete:
		return "registration_complete"
	case MsgPDUSessionEstablishmentRequest:
		return "pdu_session_establishment_request"
	case MsgPDUSessionEstablishmentAccept:
		return "pdu_session_establishment_accept"
	case MsgServiceRequest:
		return "service_request"
	case MsgServiceAccept:
		return "service_accept"
	case MsgDeregistrationRequest:
		return "deregistration_request"
	case MsgConfigurationUpdate:
		return "configuration_update"
	case MsgRegistrationReject:
		return "registration_reject"
	case MsgPDUSessionEstablishmentReject:
		return "pdu_session_establishment_reject"
	case MsgServiceReject:
		return "service_reject"
	}
	return "unknown"
}

// ErrUnknownMsg reports an unrecognized NAS message type byte.
var ErrUnknownMsg = errors.New("nas: unknown message type")

// ErrTruncated reports a NAS PDU too short to contain a type byte.
var ErrTruncated = errors.New("nas: truncated PDU")

// Message is a NAS message body.
type Message interface {
	codec.Message
	NASType() MsgType
}

var nasCodec = codec.Proto{}

// Marshal encodes a NAS message into a PDU.
func Marshal(m Message) ([]byte, error) {
	return AppendMarshal(make([]byte, 0, 64), m)
}

// AppendMarshal encodes a NAS PDU appended to dst — the allocation-free
// spelling the AMF's pooled downlink path uses.
func AppendMarshal(dst []byte, m Message) ([]byte, error) {
	return nasCodec.AppendMarshal(append(dst, byte(m.NASType())), m)
}

// Unmarshal decodes a NAS PDU.
func Unmarshal(pdu []byte) (Message, error) {
	if len(pdu) < 1 {
		return nil, ErrTruncated
	}
	m := New(MsgType(pdu[0]))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMsg, pdu[0])
	}
	if err := nasCodec.Unmarshal(pdu[1:], m); err != nil {
		return nil, err
	}
	return m, nil
}

// New allocates an empty message of the given type.
func New(t MsgType) Message {
	switch t {
	case MsgRegistrationRequest:
		return &RegistrationRequest{}
	case MsgAuthenticationRequest:
		return &AuthenticationRequest{}
	case MsgAuthenticationResponse:
		return &AuthenticationResponse{}
	case MsgSecurityModeCommand:
		return &SecurityModeCommand{}
	case MsgSecurityModeComplete:
		return &SecurityModeComplete{}
	case MsgRegistrationAccept:
		return &RegistrationAccept{}
	case MsgRegistrationComplete:
		return &RegistrationComplete{}
	case MsgPDUSessionEstablishmentRequest:
		return &PDUSessionEstablishmentRequest{}
	case MsgPDUSessionEstablishmentAccept:
		return &PDUSessionEstablishmentAccept{}
	case MsgServiceRequest:
		return &ServiceRequest{}
	case MsgServiceAccept:
		return &ServiceAccept{}
	case MsgDeregistrationRequest:
		return &DeregistrationRequest{}
	case MsgConfigurationUpdate:
		return &ConfigurationUpdate{}
	case MsgRegistrationReject:
		return &RegistrationReject{}
	case MsgPDUSessionEstablishmentReject:
		return &PDUSessionEstablishmentReject{}
	case MsgServiceReject:
		return &ServiceReject{}
	default:
		return nil
	}
}

// RegistrationRequest starts UE registration (initial attach).
type RegistrationRequest struct {
	Suci         string
	Capabilities uint32
	FollowOnReq  bool
}

// NASType implements Message.
func (*RegistrationRequest) NASType() MsgType { return MsgRegistrationRequest }

// Schema implements codec.Message.
func (m *RegistrationRequest) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *RegistrationRequest) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindString, Ptr: &m.Suci},
		codec.Field{Tag: 2, Kind: codec.KindUint32, Ptr: &m.Capabilities},
		codec.Field{Tag: 3, Kind: codec.KindBool, Ptr: &m.FollowOnReq},
	)
}

// AuthenticationRequest carries the 5G-AKA challenge to the UE.
type AuthenticationRequest struct {
	Rand []byte
	Autn []byte
}

// NASType implements Message.
func (*AuthenticationRequest) NASType() MsgType { return MsgAuthenticationRequest }

// Schema implements codec.Message.
func (m *AuthenticationRequest) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *AuthenticationRequest) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindBytes, Ptr: &m.Rand},
		codec.Field{Tag: 2, Kind: codec.KindBytes, Ptr: &m.Autn},
	)
}

// AuthenticationResponse returns the UE's RES*.
type AuthenticationResponse struct {
	ResStar []byte
}

// NASType implements Message.
func (*AuthenticationResponse) NASType() MsgType { return MsgAuthenticationResponse }

// Schema implements codec.Message.
func (m *AuthenticationResponse) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *AuthenticationResponse) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs, codec.Field{Tag: 1, Kind: codec.KindBytes, Ptr: &m.ResStar})
}

// SecurityModeCommand selects NAS security algorithms.
type SecurityModeCommand struct {
	CipherAlg    uint32
	IntegrityAlg uint32
}

// NASType implements Message.
func (*SecurityModeCommand) NASType() MsgType { return MsgSecurityModeCommand }

// Schema implements codec.Message.
func (m *SecurityModeCommand) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *SecurityModeCommand) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.CipherAlg},
		codec.Field{Tag: 2, Kind: codec.KindUint32, Ptr: &m.IntegrityAlg},
	)
}

// SecurityModeComplete acknowledges the security mode.
type SecurityModeComplete struct {
	IMEISV string
}

// NASType implements Message.
func (*SecurityModeComplete) NASType() MsgType { return MsgSecurityModeComplete }

// Schema implements codec.Message.
func (m *SecurityModeComplete) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *SecurityModeComplete) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs, codec.Field{Tag: 1, Kind: codec.KindString, Ptr: &m.IMEISV})
}

// RegistrationAccept completes registration.
type RegistrationAccept struct {
	Guti       string
	TaiList    string
	AllowedSst uint32
}

// NASType implements Message.
func (*RegistrationAccept) NASType() MsgType { return MsgRegistrationAccept }

// Schema implements codec.Message.
func (m *RegistrationAccept) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *RegistrationAccept) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindString, Ptr: &m.Guti},
		codec.Field{Tag: 2, Kind: codec.KindString, Ptr: &m.TaiList},
		codec.Field{Tag: 3, Kind: codec.KindUint32, Ptr: &m.AllowedSst},
	)
}

// RegistrationComplete acknowledges the accept.
type RegistrationComplete struct {
	Ack bool
}

// NASType implements Message.
func (*RegistrationComplete) NASType() MsgType { return MsgRegistrationComplete }

// Schema implements codec.Message.
func (m *RegistrationComplete) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *RegistrationComplete) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs, codec.Field{Tag: 1, Kind: codec.KindBool, Ptr: &m.Ack})
}

// PDUSessionEstablishmentRequest asks for a data session.
type PDUSessionEstablishmentRequest struct {
	PduSessionID uint32
	Dnn          string
	SscMode      uint32
}

// NASType implements Message.
func (*PDUSessionEstablishmentRequest) NASType() MsgType { return MsgPDUSessionEstablishmentRequest }

// Schema implements codec.Message.
func (m *PDUSessionEstablishmentRequest) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *PDUSessionEstablishmentRequest) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
		codec.Field{Tag: 2, Kind: codec.KindString, Ptr: &m.Dnn},
		codec.Field{Tag: 3, Kind: codec.KindUint32, Ptr: &m.SscMode},
	)
}

// PDUSessionEstablishmentAccept returns the session parameters.
type PDUSessionEstablishmentAccept struct {
	PduSessionID uint32
	UeIPv4       string
	Qfi          uint32
	SessAmbrUL   uint64
	SessAmbrDL   uint64
}

// NASType implements Message.
func (*PDUSessionEstablishmentAccept) NASType() MsgType { return MsgPDUSessionEstablishmentAccept }

// Schema implements codec.Message.
func (m *PDUSessionEstablishmentAccept) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *PDUSessionEstablishmentAccept) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
		codec.Field{Tag: 2, Kind: codec.KindString, Ptr: &m.UeIPv4},
		codec.Field{Tag: 3, Kind: codec.KindUint32, Ptr: &m.Qfi},
		codec.Field{Tag: 4, Kind: codec.KindUint64, Ptr: &m.SessAmbrUL},
		codec.Field{Tag: 5, Kind: codec.KindUint64, Ptr: &m.SessAmbrDL},
	)
}

// ServiceRequest transitions an idle UE back to connected (paging answer).
type ServiceRequest struct {
	Guti         string
	PduSessionID uint32
}

// NASType implements Message.
func (*ServiceRequest) NASType() MsgType { return MsgServiceRequest }

// Schema implements codec.Message.
func (m *ServiceRequest) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *ServiceRequest) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindString, Ptr: &m.Guti},
		codec.Field{Tag: 2, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
	)
}

// ServiceAccept confirms the idle->active transition.
type ServiceAccept struct {
	PduSessionID uint32
}

// NASType implements Message.
func (*ServiceAccept) NASType() MsgType { return MsgServiceAccept }

// Schema implements codec.Message.
func (m *ServiceAccept) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *ServiceAccept) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs, codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.PduSessionID})
}

// DeregistrationRequest detaches the UE.
type DeregistrationRequest struct {
	Guti string
}

// NASType implements Message.
func (*DeregistrationRequest) NASType() MsgType { return MsgDeregistrationRequest }

// Schema implements codec.Message.
func (m *DeregistrationRequest) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *DeregistrationRequest) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs, codec.Field{Tag: 1, Kind: codec.KindString, Ptr: &m.Guti})
}

// ConfigurationUpdate pushes new UE configuration.
type ConfigurationUpdate struct {
	Guti string
}

// NASType implements Message.
func (*ConfigurationUpdate) NASType() MsgType { return MsgConfigurationUpdate }

// Schema implements codec.Message.
func (m *ConfigurationUpdate) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *ConfigurationUpdate) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs, codec.Field{Tag: 1, Kind: codec.KindString, Ptr: &m.Guti})
}

// RegistrationReject refuses a registration attempt; BackoffMs is the
// T3346-style timer (milliseconds) the UE must wait before re-attempting.
type RegistrationReject struct {
	Cause     uint32
	BackoffMs uint32
}

// NASType implements Message.
func (*RegistrationReject) NASType() MsgType { return MsgRegistrationReject }

// Schema implements codec.Message.
func (m *RegistrationReject) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *RegistrationReject) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.Cause},
		codec.Field{Tag: 2, Kind: codec.KindUint32, Ptr: &m.BackoffMs},
	)
}

// PDUSessionEstablishmentReject refuses a session request with a backoff
// timer (the 5GSM back-off timer of TS 24.501 §6.4.1).
type PDUSessionEstablishmentReject struct {
	PduSessionID uint32
	Cause        uint32
	BackoffMs    uint32
}

// NASType implements Message.
func (*PDUSessionEstablishmentReject) NASType() MsgType { return MsgPDUSessionEstablishmentReject }

// Schema implements codec.Message.
func (m *PDUSessionEstablishmentReject) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *PDUSessionEstablishmentReject) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
		codec.Field{Tag: 2, Kind: codec.KindUint32, Ptr: &m.Cause},
		codec.Field{Tag: 3, Kind: codec.KindUint32, Ptr: &m.BackoffMs},
	)
}

// ServiceReject refuses an idle→connected transition with a backoff timer.
type ServiceReject struct {
	Cause     uint32
	BackoffMs uint32
}

// NASType implements Message.
func (*ServiceReject) NASType() MsgType { return MsgServiceReject }

// Schema implements codec.Message.
func (m *ServiceReject) Schema() []codec.Field { return m.AppendSchema(nil) }

// AppendSchema implements codec.FieldAppender.
func (m *ServiceReject) AppendSchema(fs []codec.Field) []codec.Field {
	return append(fs,
		codec.Field{Tag: 1, Kind: codec.KindUint32, Ptr: &m.Cause},
		codec.Field{Tag: 2, Kind: codec.KindUint32, Ptr: &m.BackoffMs},
	)
}
