package nas

import "testing"

// FuzzDecode hands arbitrary PDUs to the NAS decoder. The AMF decodes
// these straight off N2 (attacker-adjacent input), so Unmarshal must
// never panic, and anything it accepts must re-marshal cleanly.
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		&RegistrationRequest{Suci: "imsi-208930000000001"},
		&AuthenticationResponse{},
		&SecurityModeComplete{},
		&PDUSessionEstablishmentRequest{PduSessionID: 5, Dnn: "internet"},
		&ServiceRequest{},
		&DeregistrationRequest{},
	}
	for _, m := range seeds {
		pdu, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pdu)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{0x01, 0x0a, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, pdu []byte) {
		m, err := Unmarshal(pdu)
		if err != nil {
			return
		}
		if _, err := Marshal(m); err != nil {
			t.Fatalf("re-marshal of accepted PDU failed: %v (type %d)", err, m.NASType())
		}
	})
}
