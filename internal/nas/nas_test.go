package nas

import (
	"reflect"
	"testing"
)

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&RegistrationRequest{Suci: "suci-0-208-93-0000000001", Capabilities: 0xf, FollowOnReq: true},
		&AuthenticationRequest{Rand: []byte{1, 2}, Autn: []byte{3, 4}},
		&AuthenticationResponse{ResStar: []byte{9, 9}},
		&SecurityModeCommand{CipherAlg: 1, IntegrityAlg: 2},
		&SecurityModeComplete{IMEISV: "8675309"},
		&RegistrationAccept{Guti: "guti-1", TaiList: "tai-1", AllowedSst: 1},
		&RegistrationComplete{Ack: true},
		&PDUSessionEstablishmentRequest{PduSessionID: 5, Dnn: "internet", SscMode: 1},
		&PDUSessionEstablishmentAccept{PduSessionID: 5, UeIPv4: "10.60.0.1", Qfi: 9, SessAmbrUL: 1e9, SessAmbrDL: 2e9},
		&ServiceRequest{Guti: "guti-1", PduSessionID: 5},
		&ServiceAccept{PduSessionID: 5},
		&DeregistrationRequest{Guti: "guti-1"},
		&ConfigurationUpdate{Guti: "guti-2"},
	}
	seen := map[MsgType]bool{}
	for _, m := range msgs {
		if seen[m.NASType()] {
			t.Fatalf("duplicate NAS type %d", m.NASType())
		}
		seen[m.NASType()] = true
		pdu, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := Unmarshal(pdu)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%T round trip:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrTruncated {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Unmarshal([]byte{0xEE}); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestNewUnknownType(t *testing.T) {
	if New(MsgType(200)) != nil {
		t.Fatal("New(200) should be nil")
	}
}
