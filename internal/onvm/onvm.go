// Package onvm is the shared-memory NFV platform underpinning L²5GC: an
// in-process reproduction of OpenNetVM's architecture. An NF manager owns a
// packet-buffer pool and per-NF Rx/Tx descriptor rings; NFs attach by
// service ID, process packets handed to their Rx ring, stamp an action
// (to-NF / to-port / drop / buffer) into the descriptor metadata and return
// it through their Tx ring. The manager moves descriptors between rings —
// packets themselves never move or get serialized.
//
// The descriptor switch is sharded across SwitchWorkers worker goroutines
// (§4, Receive Side Scaling): every descriptor is steered to a work shard
// by its flow key, each worker is the single consumer of its shard and the
// single drainer of the Tx rings it owns, so per-flow FIFO order is
// preserved end-to-end while unrelated flows switch in parallel.
//
// The platform also carries the paper's deployment features: multiple
// instances per service with canary-rollout traffic splitting (§4), RSS
// hashing of flows across instances, and the security-domain pool prefix
// (§3.2) isolating 5GC units from each other.
package onvm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/pktbuf"
	"l25gc/internal/ring"
	"l25gc/internal/trace"
)

// ServiceID identifies an NF service (e.g. UPF-U) on the platform.
type ServiceID = uint16

// PortID identifies an external port (a "NIC" toward gNB or DN).
type PortID = uint16

// Handler processes one packet descriptor. It must either set buf.Meta and
// return true to hand the descriptor back to the manager, or return false
// if it took ownership (e.g. parked the buffer in a session queue).
type Handler func(buf *pktbuf.Buf) bool

// PortSink receives frames leaving the platform via ActionToPort. The sink
// borrows the buffer only for the duration of the call; the manager
// releases it afterwards. With more than one switch worker a sink may be
// invoked concurrently for different flows (frames of one flow always
// arrive from the same worker, in order), so sinks must be goroutine-safe.
type PortSink func(frame []byte, meta pktbuf.Meta)

// Errors returned by the platform.
var (
	ErrNoService  = errors.New("onvm: unknown service ID")
	ErrNoPort     = errors.New("onvm: unknown port")
	ErrDuplicate  = errors.New("onvm: instance already registered")
	ErrRingFull   = errors.New("onvm: ring full")
	ErrStopped    = errors.New("onvm: manager stopped")
	ErrBadPercent = errors.New("onvm: canary percent out of range")
)

// drainBatch bounds how many descriptors a worker or NF moves per wakeup.
const drainBatch = 64

// txEnqueueSpins bounds how long an NF pushes back on its own full Tx ring
// (cooperative yields, waking the home worker each spin) before counting
// the descriptor as a tx-overflow drop.
const txEnqueueSpins = 64

// notifySpins bounds how often an NF retries a full work shard before
// falling back to a bare bell ring (the worker's idle sweep then picks the
// stranded Tx descriptors up).
const notifySpins = 8

// task is a work-shard entry: which NF's Tx ring has descriptors, an
// inbound injection, or a fault-delayed egress frame re-entering the
// switch on its home shard.
type task struct {
	nf     *Instance
	buf    *pktbuf.Buf // inbound injection or delayed egress (nf == nil)
	dst    ServiceID
	egress bool // buf already passed the egress fault decision; emit it
}

// Instance is one running NF instance attached to the platform.
type Instance struct {
	Service    ServiceID
	InstanceID uint16
	name       string
	spanName   string // "onvm.nf."+name, precomputed off the hot path

	// rx is multi-producer (any switch worker may deliver) and consumed
	// only by the instance goroutine; tx is multi-producer (the instance
	// goroutine plus Send callers such as session-buffer drains) and
	// consumed only by the home worker.
	rx     *ring.MPSC[*pktbuf.Buf]
	rxBell chan struct{}
	tx     *ring.MPSC[*pktbuf.Buf]
	shard  int // home worker: drains tx, preserving single-consumer order

	handler Handler
	mgr     *Manager
	stop    chan struct{}
	done    chan struct{}

	rxCount atomic.Uint64
	txCount atomic.Uint64
	txDrops atomic.Uint64
}

// Name returns the instance's diagnostic name.
func (i *Instance) Name() string { return i.name }

// Stats returns packets received and transmitted by this instance.
func (i *Instance) Stats() (rx, tx uint64) { return i.rxCount.Load(), i.txCount.Load() }

// TxDrops returns descriptors this instance discarded because its Tx ring
// stayed full through the enqueue backoff window.
func (i *Instance) TxDrops() uint64 { return i.txDrops.Load() }

// enqueueTx places a processed descriptor on the instance's Tx ring,
// yielding (and waking the home worker so it can drain) while the ring is
// full. Returns false — after counting a tx-overflow drop — when the ring
// stayed full through the backoff window; the caller still owns the buffer.
func (i *Instance) enqueueTx(buf *pktbuf.Buf) bool {
	if i.tx.Enqueue(buf) {
		i.txCount.Add(1)
		return true
	}
	for s := 0; s < txEnqueueSpins; s++ {
		i.mgr.wake(i.shard)
		runtime.Gosched()
		if i.tx.Enqueue(buf) {
			i.txCount.Add(1)
			return true
		}
	}
	i.txDrops.Add(1)
	i.mgr.txDrops.Add(1)
	return false
}

// notifyHome tells the home worker this instance's Tx ring has work. A full
// work shard can only mean the worker has a backlog, so after bounded
// retries the instance falls back to a bare bell ring: the worker always
// sweeps owned Tx rings before going idle, so the wakeup is never lost.
func (i *Instance) notifyHome() {
	for s := 0; ; s++ {
		err := i.mgr.notify(task{nf: i})
		if err != ErrRingFull || s >= notifySpins {
			if err == ErrRingFull {
				i.mgr.wake(i.shard)
			}
			return
		}
		runtime.Gosched()
	}
}

// Send hands a descriptor from the NF back to the manager via its Tx ring
// (used by handlers that emit extra packets, e.g. draining a session
// buffer after handover). The caller keeps ownership on error.
func (i *Instance) Send(buf *pktbuf.Buf) error {
	if i.mgr.stopped.Load() {
		return ErrStopped
	}
	if !i.enqueueTx(buf) {
		return ErrRingFull
	}
	i.notifyHome()
	return nil
}

// serviceEntry groups the instances of one service with canary weights.
type serviceEntry struct {
	instances []*Instance
	// canaryPercent is the share of traffic (0-100) steered to the newest
	// instance; the remainder goes to the oldest (stable) instance.
	canaryPercent int
}

// injConf groups a fault injector with its point names, swapped in
// atomically so the switch workers never race SetInjector.
type injConf struct {
	inj     *faults.Injector
	deliver faults.Point
	egress  faults.Point
}

// switchWorker is one shard of the descriptor switch: the single consumer
// of its work ring and the single drainer of the Tx rings of the instances
// homed on it.
type switchWorker struct {
	id   int
	bell chan struct{}
	done chan struct{}

	switched atomic.Uint64
	dropped  atomic.Uint64
}

// Manager is the ONVM NF manager: it owns the pool, the rings and the
// sharded descriptor switch.
type Manager struct {
	pool *pktbuf.Pool

	mu        sync.RWMutex
	services  map[ServiceID]*serviceEntry
	ports     map[PortID]PortSink
	portNF    map[PortID]ServiceID // inbound steering: port -> first NF
	instances []*Instance          // registration order; sweep scans these
	instSeq   int                  // round-robin home-shard assignment

	shards   *ring.Sharded[task]
	workers  []*switchWorker
	stopped  atomic.Bool
	inflight atomic.Int64 // notifies between stopped-check and enqueue

	nfRingSize int
	bpSpins    int
	faultc     atomic.Pointer[injConf]
	tracec     atomic.Pointer[trace.Track]

	// extraDropped counts drops outside any worker context (pool
	// exhaustion at Inject, work-shard overflow, teardown releases).
	extraDropped atomic.Uint64
	// txDrops counts descriptors NFs discarded on full Tx rings, folded
	// into the dropped aggregate.
	txDrops   atomic.Uint64
	ringDrops *metrics.Counter
}

// Config sizes the platform.
type Config struct {
	PoolSize   int    // packet buffers in the shared pool
	RingSize   int    // per-NF ring capacity
	PoolPrefix string // security-domain prefix (unique per 5GC unit)
	// BackpressureSpins bounds how long a switch worker pushes back on a
	// full NF Rx ring (cooperative yields) before counting the descriptor
	// as a ring-overflow drop. 0 = default (64); -1 disables backpressure.
	BackpressureSpins int
	// SwitchWorkers is the number of descriptor-switch workers. Descriptors
	// are sharded across workers by flow key, so per-flow order is kept
	// while flows switch in parallel. 0 = default min(GOMAXPROCS, 4);
	// values < 1 are clamped to 1.
	SwitchWorkers int
}

// DefaultConfig returns sizes suitable for the evaluation workloads.
func DefaultConfig() Config {
	return Config{PoolSize: 8192, RingSize: 1024, PoolPrefix: "l25gc"}
}

// defaultSwitchWorkers picks the worker count when Config leaves it 0.
func defaultSwitchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewManager starts a platform manager and its switch workers.
func NewManager(cfg Config) *Manager {
	if cfg.PoolSize == 0 {
		cfg = DefaultConfig()
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.BackpressureSpins == 0 {
		cfg.BackpressureSpins = 64
	}
	if cfg.BackpressureSpins < 0 {
		cfg.BackpressureSpins = 0
	}
	if cfg.SwitchWorkers == 0 {
		cfg.SwitchWorkers = defaultSwitchWorkers()
	}
	if cfg.SwitchWorkers < 1 {
		cfg.SwitchWorkers = 1
	}
	m := &Manager{
		pool:       pktbuf.NewPool(cfg.PoolSize, cfg.PoolPrefix),
		services:   make(map[ServiceID]*serviceEntry),
		ports:      make(map[PortID]PortSink),
		portNF:     make(map[PortID]ServiceID),
		shards:     ring.NewSharded[task](cfg.SwitchWorkers, cfg.PoolSize*2),
		nfRingSize: cfg.RingSize,
		bpSpins:    cfg.BackpressureSpins,
		ringDrops:  metrics.NewCounter(cfg.PoolPrefix + ".ring_overflow_drops"),
	}
	m.workers = make([]*switchWorker, cfg.SwitchWorkers)
	for i := range m.workers {
		m.workers[i] = &switchWorker{
			id:   i,
			bell: make(chan struct{}, 1),
			done: make(chan struct{}),
		}
		go m.workerLoop(m.workers[i])
	}
	return m
}

// Pool exposes the shared packet pool (NFs allocate response packets
// from the same hugepage-analogue pool).
func (m *Manager) Pool() *pktbuf.Pool { return m.pool }

// Workers returns the number of switch workers.
func (m *Manager) Workers() int { return len(m.workers) }

// RingDrops exposes the ring-overflow drop counter: descriptors the
// manager discarded because an NF's Rx ring stayed full through the
// backpressure window.
func (m *Manager) RingDrops() *metrics.Counter { return m.ringDrops }

// TxDrops reports descriptors NFs discarded because their Tx ring stayed
// full through the enqueue backoff window (aggregated over all instances).
func (m *Manager) TxDrops() uint64 { return m.txDrops.Load() }

// SetInjector threads a fault injector through the descriptor switch;
// points are prefix+".deliver" (descriptors entering NF Rx rings) and
// prefix+".egress" (frames leaving via ports). Descriptors are
// single-owner buffers, so Drop and Delay apply; Duplicate/Reorder/Corrupt
// do not (reordering still arises from per-descriptor delays).
func (m *Manager) SetInjector(inj *faults.Injector, prefix string) {
	m.faultc.Store(&injConf{
		inj:     inj,
		deliver: faults.Point(prefix + ".deliver"),
		egress:  faults.Point(prefix + ".egress"),
	})
}

// SetTracer installs a trace track for descriptor-switch stage spans
// ("onvm.deliver", "onvm.nf.<name>", "onvm.egress"); nil disables tracing.
// The disabled path costs one atomic load per stage.
func (m *Manager) SetTracer(tk *trace.Track) { m.tracec.Store(tk) }

// ExportMetrics registers the manager's switch counters under prefix: the
// switched/dropped aggregates, the overflow-drop breakdown, and per-worker
// switched/dropped gauges for shard-balance diagnostics. The ring-drop
// counter is re-registered under the prefix (not its pool-scoped name) so
// the registry name set is stable across units.
func (m *Manager) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".switched", m.switchedTotal)
	reg.RegisterGauge(prefix+".dropped", m.droppedTotal)
	reg.RegisterGauge(prefix+".tx_drops", m.txDrops.Load)
	reg.RegisterGauge(prefix+".ring_overflow_drops", m.ringDrops.Load)
	reg.RegisterGauge(prefix+".workers", func() uint64 { return uint64(len(m.workers)) })
	for _, w := range m.workers {
		reg.RegisterGauge(fmt.Sprintf("%s.worker%d.switched", prefix, w.id), w.switched.Load)
		reg.RegisterGauge(fmt.Sprintf("%s.worker%d.dropped", prefix, w.id), w.dropped.Load)
	}
	// Packet-pool occupancy levels: size is fixed, in_use = size - avail
	// is the instantaneous occupancy the telemetry sampler tracks for the
	// soak's bounded-pool invariant (a leak shows as in_use never
	// returning to zero at quiesce).
	reg.RegisterGauge(prefix+".pool.size", func() uint64 { return uint64(m.pool.Size()) })
	reg.RegisterGauge(prefix+".pool.in_use", func() uint64 {
		if n := m.pool.Size() - m.pool.Avail(); n > 0 {
			return uint64(n)
		}
		return 0
	})
}

func (m *Manager) switchedTotal() uint64 {
	var n uint64
	for _, w := range m.workers {
		n += w.switched.Load()
	}
	return n
}

func (m *Manager) droppedTotal() uint64 {
	n := m.extraDropped.Load() + m.txDrops.Load()
	for _, w := range m.workers {
		n += w.dropped.Load()
	}
	return n
}

// ringSize returns the per-NF ring capacity.
func (m *Manager) ringSize() int { return m.nfRingSize }

// Register attaches an NF instance running handler h for service sid. The
// instance is homed on a switch worker round-robin; that worker alone
// drains its Tx ring.
func (m *Manager) Register(sid ServiceID, name string, h Handler) (*Instance, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.services[sid]
	if ent == nil {
		ent = &serviceEntry{}
		m.services[sid] = ent
	}
	inst := &Instance{
		Service:    sid,
		InstanceID: uint16(len(ent.instances)),
		name:       name,
		spanName:   "onvm.nf." + name,
		rx:         ring.NewMPSC[*pktbuf.Buf](m.ringSize()),
		rxBell:     make(chan struct{}, 1),
		tx:         ring.NewMPSC[*pktbuf.Buf](m.ringSize()),
		shard:      m.instSeq % len(m.workers),
		handler:    h,
		mgr:        m,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	m.instSeq++
	ent.instances = append(ent.instances, inst)
	m.instances = append(m.instances, inst)
	go inst.run()
	return inst, nil
}

// SetCanary steers percent of service sid's traffic to its newest instance
// (the canary); the rest continues to the stable instance (§4).
func (m *Manager) SetCanary(sid ServiceID, percent int) error {
	if percent < 0 || percent > 100 {
		return ErrBadPercent
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.services[sid]
	if ent == nil {
		return ErrNoService
	}
	ent.canaryPercent = percent
	return nil
}

// RegisterPort installs an egress sink for a port.
func (m *Manager) RegisterPort(pid PortID, sink PortSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ports[pid] = sink
}

// BindPortNF steers packets arriving on pid to service sid.
func (m *Manager) BindPortNF(pid PortID, sid ServiceID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.portNF[pid] = sid
}

// Inject delivers an external frame into the platform as if received on
// port pid. This is the single copy at the system edge.
func (m *Manager) Inject(pid PortID, data []byte, meta pktbuf.Meta) error {
	if m.stopped.Load() {
		return ErrStopped
	}
	m.mu.RLock()
	sid, ok := m.portNF[pid]
	m.mu.RUnlock()
	if !ok {
		return ErrNoPort
	}
	buf, err := m.pool.Get()
	if err != nil {
		m.extraDropped.Add(1)
		return err
	}
	if err := buf.SetData(data); err != nil {
		buf.Release()
		return err
	}
	buf.Meta = meta
	buf.Meta.Port = pid
	if buf.Meta.RSS == 0 {
		buf.Meta.RSS = rssHash(data)
	}
	return m.notify(task{buf: buf, dst: sid})
}

// InjectBuf delivers an already-allocated buffer (zero-copy edge for
// in-process traffic generators).
func (m *Manager) InjectBuf(buf *pktbuf.Buf, sid ServiceID) error {
	if m.stopped.Load() {
		return ErrStopped
	}
	return m.notify(task{buf: buf, dst: sid})
}

// flowKey derives the steering hash every sharding and instance-selection
// decision uses. It must be a pure function of per-flow fields (never of
// per-packet fields like Seq), or one flow's packets would spread across
// shards/instances and lose FIFO order.
func flowKey(meta *pktbuf.Meta) uint64 {
	return meta.RSS ^ uint64(meta.TEID)*2654435761
}

// shardFor routes a task to its work shard: buffer tasks by flow key (so a
// flow's descriptors stay on one worker), Tx-drain tasks to the instance's
// home worker (so each Tx ring keeps a single consumer).
func (m *Manager) shardFor(t task) int {
	if t.nf != nil {
		return t.nf.shard
	}
	return m.shards.ShardOf(flowKey(&t.buf.Meta))
}

// wake rings a worker's bell (coalescing, never blocking).
func (m *Manager) wake(shard int) {
	select {
	case m.workers[shard].bell <- struct{}{}:
	default:
	}
}

func (m *Manager) notify(t task) error {
	// The inflight count brackets the stopped-check-to-enqueue window so
	// Stop can wait out racing notifies before draining residual shards; a
	// notify that starts after Stop flips stopped releases its own buffer.
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	if m.stopped.Load() {
		if t.buf != nil {
			t.buf.Release()
			m.extraDropped.Add(1)
		}
		return ErrStopped
	}
	shard := m.shardFor(t)
	if !m.shards.Enqueue(shard, t) {
		if t.buf != nil {
			t.buf.Release()
			m.extraDropped.Add(1)
		}
		return ErrRingFull
	}
	m.wake(shard)
	return nil
}

// rssHash is the ingress flow hash: FNV-1a over the frame's first 64
// bytes, which cover the tunnel and inner 5-tuple fields a NIC's RSS
// hashes (§4, Receive Side Scaling).
func rssHash(b []byte) uint64 {
	if len(b) > 64 {
		b = b[:64]
	}
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// pickInstance applies RSS/canary steering for a service.
func (m *Manager) pickInstance(ent *serviceEntry, rssHash uint64) *Instance {
	n := len(ent.instances)
	if n == 1 {
		return ent.instances[0]
	}
	if ent.canaryPercent > 0 {
		if int(rssHash%100) < ent.canaryPercent {
			return ent.instances[n-1] // canary = newest
		}
		return ent.instances[0]
	}
	return ent.instances[rssHash%uint64(n)]
}

// deliver moves a descriptor into the target service's Rx ring.
func (m *Manager) deliver(w *switchWorker, buf *pktbuf.Buf, sid ServiceID) {
	sp := m.tracec.Load().Start("onvm.deliver")
	defer sp.End()
	if fc := m.faultc.Load(); fc != nil {
		act := fc.inj.Decide(fc.deliver, buf.Bytes())
		if act.Drop {
			buf.Release()
			w.dropped.Add(1)
			return
		}
		if act.Delay > 0 {
			// Descriptors are single-owner, so a delayed delivery must
			// re-enter via its home work shard: only that shard's worker
			// may move it, and only there does it rejoin its flow's order.
			dst := sid
			time.AfterFunc(act.Delay, func() {
				m.notify(task{buf: buf, dst: dst})
			})
			return
		}
	}
	m.mu.RLock()
	ent := m.services[sid]
	m.mu.RUnlock()
	if ent == nil || len(ent.instances) == 0 {
		buf.Release()
		w.dropped.Add(1)
		return
	}
	inst := m.pickInstance(ent, flowKey(&buf.Meta))
	ok := inst.rx.Enqueue(buf)
	// Backpressure: the Rx ring is full, so yield the worker's timeslice to
	// let the NF drain before declaring overflow — bounded so a wedged NF
	// cannot stall the other flows sharing this shard.
	for spins := 0; !ok && spins < m.bpSpins; spins++ {
		runtime.Gosched()
		ok = inst.rx.Enqueue(buf)
	}
	if !ok {
		buf.Release()
		w.dropped.Add(1)
		m.ringDrops.Inc()
		return
	}
	inst.rxCount.Add(1)
	select {
	case inst.rxBell <- struct{}{}:
	default:
	}
	w.switched.Add(1)
}

// emitPort transmits a frame out of its port and releases the descriptor.
func (m *Manager) emitPort(w *switchWorker, buf *pktbuf.Buf) {
	m.mu.RLock()
	sink := m.ports[buf.Meta.Port]
	m.mu.RUnlock()
	if sink != nil {
		sp := m.tracec.Load().Start("onvm.egress")
		sink(buf.Bytes(), buf.Meta)
		sp.End()
	} else {
		w.dropped.Add(1)
	}
	buf.Release()
}

// process executes one descriptor action from an NF's Tx ring.
func (m *Manager) process(w *switchWorker, buf *pktbuf.Buf) {
	switch buf.Meta.Action {
	case pktbuf.ActionToNF:
		m.deliver(w, buf, buf.Meta.Dst)
	case pktbuf.ActionToPort:
		if fc := m.faultc.Load(); fc != nil {
			act := fc.inj.Decide(fc.egress, buf.Bytes())
			if act.Drop {
				buf.Release()
				w.dropped.Add(1)
				return
			}
			if act.Delay > 0 {
				// Re-enqueue on the flow's home shard after the delay
				// instead of sleeping in the worker: a fault-delayed frame
				// must never stall every other flow behind the switch. The
				// egress decision is already made, so the re-entering task
				// bypasses a second Decide.
				time.AfterFunc(act.Delay, func() {
					m.notify(task{buf: buf, egress: true})
				})
				return
			}
		}
		m.emitPort(w, buf)
	default: // Drop and Buffer-left-in-ring both release here
		if buf.Meta.Action == pktbuf.ActionDrop {
			w.dropped.Add(1)
		}
		buf.Release()
	}
}

// drainTx empties one NF's Tx ring through the switch. Only the instance's
// home worker (or Stop, after all workers exited) may call it.
func (m *Manager) drainTx(w *switchWorker, nf *Instance, drain []*pktbuf.Buf) bool {
	any := false
	for {
		n := nf.tx.DequeueBulk(drain)
		for i := 0; i < n; i++ {
			m.process(w, drain[i])
		}
		any = any || n > 0
		if n < len(drain) {
			return any
		}
	}
}

// sweep scans the Tx rings of the instances homed on w and drains any that
// hold descriptors. Run whenever the worker goes idle, it guarantees that
// a descriptor whose work-shard notification was lost to a full ring is
// still picked up — the liveness half of the lost-wakeup fix.
func (m *Manager) sweep(w *switchWorker, drain []*pktbuf.Buf) bool {
	m.mu.RLock()
	insts := m.instances
	m.mu.RUnlock()
	any := false
	for _, inst := range insts {
		if inst.shard != w.id || inst.tx.Len() == 0 {
			continue
		}
		if m.drainTx(w, inst, drain) {
			any = true
		}
	}
	return any
}

// workerLoop is one shard of the descriptor switch.
func (m *Manager) workerLoop(w *switchWorker) {
	defer close(w.done)
	var drain [drainBatch]*pktbuf.Buf
	for {
		t, ok := m.shards.Dequeue(w.id)
		if !ok {
			if m.stopped.Load() {
				return
			}
			if m.sweep(w, drain[:]) {
				continue
			}
			<-w.bell
			continue
		}
		switch {
		case t.nf != nil:
			m.drainTx(w, t.nf, drain[:])
		case t.egress:
			m.emitPort(w, t.buf)
		default:
			m.deliver(w, t.buf, t.dst)
		}
	}
}

// Stats reports descriptors switched and packets dropped by the manager
// (the dropped aggregate folds in NF tx-overflow drops).
func (m *Manager) Stats() (switched, dropped uint64) {
	return m.switchedTotal(), m.droppedTotal()
}

// Stop halts the switch workers and all registered NF instances, joining
// every goroutine before returning so teardown cannot race in-flight
// switching, then releases any descriptors still queued in work shards or
// NF rings.
func (m *Manager) Stop() {
	if !m.stopped.CompareAndSwap(false, true) {
		return
	}
	// Workers first: each exits once its shard is empty (notify refuses new
	// work after the stopped flip above).
	for _, w := range m.workers {
		m.wake(w.id)
	}
	for _, w := range m.workers {
		<-w.done
	}
	// Then the NFs: each drains its remaining Rx backlog (no new deliveries
	// can arrive) and exits.
	m.mu.RLock()
	insts := append([]*Instance(nil), m.instances...)
	m.mu.RUnlock()
	for _, i := range insts {
		close(i.stop)
	}
	for _, i := range insts {
		<-i.done
	}
	// Wait out notifies that raced the stopped flip (they either enqueued
	// already or will release their own buffer), so the residual drain
	// below observes every stranded descriptor.
	for m.inflight.Load() != 0 {
		runtime.Gosched()
	}
	// Everything is quiescent: release descriptors stranded in work shards
	// (tasks enqueued before the stopped flip) and NF rings (Tx handbacks
	// whose notification was refused).
	for shard := 0; shard < m.shards.Shards(); shard++ {
		for {
			t, ok := m.shards.Dequeue(shard)
			if !ok {
				break
			}
			if t.buf != nil {
				t.buf.Release()
				m.extraDropped.Add(1)
			}
		}
	}
	for _, i := range insts {
		for {
			b, ok := i.tx.Dequeue()
			if !ok {
				break
			}
			b.Release()
			m.extraDropped.Add(1)
		}
		for {
			b, ok := i.rx.Dequeue()
			if !ok {
				break
			}
			b.Release()
			m.extraDropped.Add(1)
		}
	}
}

func (i *Instance) run() {
	defer close(i.done)
	var batch [drainBatch]*pktbuf.Buf
	for {
		n := i.rx.DequeueBulk(batch[:])
		if n == 0 {
			select {
			case <-i.rxBell:
				continue
			case <-i.stop:
				return
			}
		}
		for j := 0; j < n; j++ {
			buf := batch[j]
			sp := i.mgr.tracec.Load().Start(i.spanName)
			done := i.handler(buf)
			sp.End()
			if done && !i.enqueueTx(buf) {
				buf.Release()
			}
		}
		// Notify the manager once per batch.
		i.notifyHome()
	}
}

// String renders manager state for diagnostics.
func (m *Manager) String() string {
	sw, dr := m.Stats()
	return fmt.Sprintf("onvm.Manager{workers: %d, switched: %d, dropped: %d, pool: %d/%d}",
		len(m.workers), sw, dr, m.pool.Avail(), m.pool.Size())
}
