// Package onvm is the shared-memory NFV platform underpinning L²5GC: an
// in-process reproduction of OpenNetVM's architecture. An NF manager owns a
// packet-buffer pool and per-NF Rx/Tx descriptor rings; NFs attach by
// service ID, process packets handed to their Rx ring, stamp an action
// (to-NF / to-port / drop / buffer) into the descriptor metadata and return
// it through their Tx ring. The manager moves descriptors between rings —
// packets themselves never move or get serialized.
//
// The platform also carries the paper's deployment features: multiple
// instances per service with canary-rollout traffic splitting (§4), RSS
// hashing of flows across instances, and the security-domain pool prefix
// (§3.2) isolating 5GC units from each other.
package onvm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/pktbuf"
	"l25gc/internal/ring"
	"l25gc/internal/trace"
)

// ServiceID identifies an NF service (e.g. UPF-U) on the platform.
type ServiceID = uint16

// PortID identifies an external port (a "NIC" toward gNB or DN).
type PortID = uint16

// Handler processes one packet descriptor. It must either set buf.Meta and
// return true to hand the descriptor back to the manager, or return false
// if it took ownership (e.g. parked the buffer in a session queue).
type Handler func(buf *pktbuf.Buf) bool

// PortSink receives frames leaving the platform via ActionToPort. The sink
// borrows the buffer only for the duration of the call; the manager
// releases it afterwards.
type PortSink func(frame []byte, meta pktbuf.Meta)

// Errors returned by the platform.
var (
	ErrNoService  = errors.New("onvm: unknown service ID")
	ErrNoPort     = errors.New("onvm: unknown port")
	ErrDuplicate  = errors.New("onvm: instance already registered")
	ErrRingFull   = errors.New("onvm: ring full")
	ErrStopped    = errors.New("onvm: manager stopped")
	ErrBadPercent = errors.New("onvm: canary percent out of range")
)

// task is the manager work queue entry: which NF's Tx ring has descriptors,
// or which port delivered a packet.
type task struct {
	nf  *Instance
	buf *pktbuf.Buf // inbound injection (nf == nil)
	dst ServiceID
}

// Instance is one running NF instance attached to the platform.
type Instance struct {
	Service    ServiceID
	InstanceID uint16
	name       string
	spanName   string // "onvm.nf."+name, precomputed off the hot path

	rx     *ring.SPSC[*pktbuf.Buf]
	rxBell chan struct{}
	tx     *ring.SPSC[*pktbuf.Buf]

	handler Handler
	mgr     *Manager
	stop    chan struct{}
	done    chan struct{}

	rxCount atomic.Uint64
	txCount atomic.Uint64
}

// Name returns the instance's diagnostic name.
func (i *Instance) Name() string { return i.name }

// Stats returns packets received and transmitted by this instance.
func (i *Instance) Stats() (rx, tx uint64) { return i.rxCount.Load(), i.txCount.Load() }

// Send hands a descriptor from the NF back to the manager via its Tx ring
// (used by handlers that emit extra packets, e.g. draining a session
// buffer after handover).
func (i *Instance) Send(buf *pktbuf.Buf) error {
	if !i.tx.Enqueue(buf) {
		return ErrRingFull
	}
	i.txCount.Add(1)
	return i.mgr.notify(task{nf: i})
}

// serviceEntry groups the instances of one service with canary weights.
type serviceEntry struct {
	instances []*Instance
	// canaryPercent is the share of traffic (0-100) steered to the newest
	// instance; the remainder goes to the oldest (stable) instance.
	canaryPercent int
}

// injConf groups a fault injector with its point names, swapped in
// atomically so the switch loop never races SetInjector.
type injConf struct {
	inj     *faults.Injector
	deliver faults.Point
	egress  faults.Point
}

// Manager is the ONVM NF manager: it owns the pool, the rings and the
// descriptor switch loop.
type Manager struct {
	pool *pktbuf.Pool

	mu       sync.RWMutex
	services map[ServiceID]*serviceEntry
	ports    map[PortID]PortSink
	portNF   map[PortID]ServiceID // inbound steering: port -> first NF

	work    *ring.MPSC[task]
	bell    chan struct{}
	stopped atomic.Bool
	done    chan struct{}

	nfRingSize int
	bpSpins    int
	faultc     atomic.Pointer[injConf]
	tracec     atomic.Pointer[trace.Track]

	switched  atomic.Uint64
	dropped   atomic.Uint64
	ringDrops *metrics.Counter
}

// Config sizes the platform.
type Config struct {
	PoolSize   int    // packet buffers in the shared pool
	RingSize   int    // per-NF ring capacity
	PoolPrefix string // security-domain prefix (unique per 5GC unit)
	// BackpressureSpins bounds how long the switch loop pushes back on a
	// full NF Rx ring (cooperative yields) before counting the descriptor
	// as a ring-overflow drop. 0 = default (64); -1 disables backpressure.
	BackpressureSpins int
}

// DefaultConfig returns sizes suitable for the evaluation workloads.
func DefaultConfig() Config {
	return Config{PoolSize: 8192, RingSize: 1024, PoolPrefix: "l25gc"}
}

// NewManager starts a platform manager and its switch goroutine.
func NewManager(cfg Config) *Manager {
	if cfg.PoolSize == 0 {
		cfg = DefaultConfig()
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.BackpressureSpins == 0 {
		cfg.BackpressureSpins = 64
	}
	if cfg.BackpressureSpins < 0 {
		cfg.BackpressureSpins = 0
	}
	m := &Manager{
		pool:       pktbuf.NewPool(cfg.PoolSize, cfg.PoolPrefix),
		services:   make(map[ServiceID]*serviceEntry),
		ports:      make(map[PortID]PortSink),
		portNF:     make(map[PortID]ServiceID),
		work:       ring.NewMPSC[task](cfg.PoolSize * 2),
		bell:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		nfRingSize: cfg.RingSize,
		bpSpins:    cfg.BackpressureSpins,
		ringDrops:  metrics.NewCounter(cfg.PoolPrefix + ".ring_overflow_drops"),
	}
	go m.switchLoop()
	return m
}

// Pool exposes the shared packet pool (NFs allocate response packets
// from the same hugepage-analogue pool).
func (m *Manager) Pool() *pktbuf.Pool { return m.pool }

// RingDrops exposes the ring-overflow drop counter: descriptors the
// manager discarded because an NF's Rx ring stayed full through the
// backpressure window.
func (m *Manager) RingDrops() *metrics.Counter { return m.ringDrops }

// SetInjector threads a fault injector through the descriptor switch;
// points are prefix+".deliver" (descriptors entering NF Rx rings) and
// prefix+".egress" (frames leaving via ports). Descriptors are
// single-owner buffers, so Drop and Delay apply; Duplicate/Reorder/Corrupt
// do not (reordering still arises from per-descriptor delays).
func (m *Manager) SetInjector(inj *faults.Injector, prefix string) {
	m.faultc.Store(&injConf{
		inj:     inj,
		deliver: faults.Point(prefix + ".deliver"),
		egress:  faults.Point(prefix + ".egress"),
	})
}

// SetTracer installs a trace track for descriptor-switch stage spans
// ("onvm.deliver", "onvm.nf.<name>", "onvm.egress"); nil disables tracing.
// The disabled path costs one atomic load per stage.
func (m *Manager) SetTracer(tk *trace.Track) { m.tracec.Store(tk) }

// ExportMetrics registers the manager's switch counters under prefix.
// The ring-drop counter is re-registered under the prefix (not its
// pool-scoped name) so the registry name set is stable across units.
func (m *Manager) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".switched", m.switched.Load)
	reg.RegisterGauge(prefix+".dropped", m.dropped.Load)
	reg.RegisterGauge(prefix+".ring_overflow_drops", m.ringDrops.Load)
}

// ringSize returns the per-NF ring capacity.
func (m *Manager) ringSize() int { return m.nfRingSize }

// Register attaches an NF instance running handler h for service sid.
func (m *Manager) Register(sid ServiceID, name string, h Handler) (*Instance, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.services[sid]
	if ent == nil {
		ent = &serviceEntry{}
		m.services[sid] = ent
	}
	inst := &Instance{
		Service:    sid,
		InstanceID: uint16(len(ent.instances)),
		name:       name,
		spanName:   "onvm.nf." + name,
		rx:         ring.NewSPSC[*pktbuf.Buf](m.ringSize()),
		rxBell:     make(chan struct{}, 1),
		tx:         ring.NewSPSC[*pktbuf.Buf](m.ringSize()),
		handler:    h,
		mgr:        m,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	ent.instances = append(ent.instances, inst)
	go inst.run()
	return inst, nil
}

// SetCanary steers percent of service sid's traffic to its newest instance
// (the canary); the rest continues to the stable instance (§4).
func (m *Manager) SetCanary(sid ServiceID, percent int) error {
	if percent < 0 || percent > 100 {
		return ErrBadPercent
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.services[sid]
	if ent == nil {
		return ErrNoService
	}
	ent.canaryPercent = percent
	return nil
}

// RegisterPort installs an egress sink for a port.
func (m *Manager) RegisterPort(pid PortID, sink PortSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ports[pid] = sink
}

// BindPortNF steers packets arriving on pid to service sid.
func (m *Manager) BindPortNF(pid PortID, sid ServiceID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.portNF[pid] = sid
}

// Inject delivers an external frame into the platform as if received on
// port pid. This is the single copy at the system edge.
func (m *Manager) Inject(pid PortID, data []byte, meta pktbuf.Meta) error {
	if m.stopped.Load() {
		return ErrStopped
	}
	m.mu.RLock()
	sid, ok := m.portNF[pid]
	m.mu.RUnlock()
	if !ok {
		return ErrNoPort
	}
	buf, err := m.pool.Get()
	if err != nil {
		m.dropped.Add(1)
		return err
	}
	if err := buf.SetData(data); err != nil {
		buf.Release()
		return err
	}
	buf.Meta = meta
	buf.Meta.Port = pid
	if buf.Meta.RSS == 0 {
		buf.Meta.RSS = rssHash(data)
	}
	return m.notify(task{buf: buf, dst: sid})
}

// InjectBuf delivers an already-allocated buffer (zero-copy edge for
// in-process traffic generators).
func (m *Manager) InjectBuf(buf *pktbuf.Buf, sid ServiceID) error {
	if m.stopped.Load() {
		return ErrStopped
	}
	return m.notify(task{buf: buf, dst: sid})
}

func (m *Manager) notify(t task) error {
	if !m.work.Enqueue(t) {
		if t.buf != nil {
			t.buf.Release()
			m.dropped.Add(1)
		}
		return ErrRingFull
	}
	select {
	case m.bell <- struct{}{}:
	default:
	}
	return nil
}

// rssHash is the ingress flow hash: FNV-1a over the frame's first 64
// bytes, which cover the tunnel and inner 5-tuple fields a NIC's RSS
// hashes (§4, Receive Side Scaling).
func rssHash(b []byte) uint64 {
	if len(b) > 64 {
		b = b[:64]
	}
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// pickInstance applies RSS/canary steering for a service.
func (m *Manager) pickInstance(ent *serviceEntry, rssHash uint64) *Instance {
	n := len(ent.instances)
	if n == 1 {
		return ent.instances[0]
	}
	if ent.canaryPercent > 0 {
		if int(rssHash%100) < ent.canaryPercent {
			return ent.instances[n-1] // canary = newest
		}
		return ent.instances[0]
	}
	return ent.instances[rssHash%uint64(n)]
}

// deliver moves a descriptor into the target service's Rx ring.
func (m *Manager) deliver(buf *pktbuf.Buf, sid ServiceID) {
	sp := m.tracec.Load().Start("onvm.deliver")
	defer sp.End()
	if fc := m.faultc.Load(); fc != nil {
		act := fc.inj.Decide(fc.deliver, buf.Bytes())
		if act.Drop {
			buf.Release()
			m.dropped.Add(1)
			return
		}
		if act.Delay > 0 {
			// Descriptors are single-owner, so a delayed delivery must
			// re-enter via the MPSC work ring: only the switch loop may
			// touch an NF's Rx ring.
			dst := sid
			time.AfterFunc(act.Delay, func() {
				if m.stopped.Load() {
					buf.Release()
					return
				}
				m.notify(task{buf: buf, dst: dst})
			})
			return
		}
	}
	m.mu.RLock()
	ent := m.services[sid]
	m.mu.RUnlock()
	if ent == nil || len(ent.instances) == 0 {
		buf.Release()
		m.dropped.Add(1)
		return
	}
	inst := m.pickInstance(ent, buf.Meta.RSS^(uint64(buf.Meta.TEID)*2654435761+uint64(buf.Meta.Seq)))
	ok := inst.rx.Enqueue(buf)
	// Backpressure: the Rx ring is full, so yield the switch loop's
	// timeslice to let the NF drain before declaring overflow — bounded so
	// a wedged NF cannot stall every other NF behind the shared loop.
	for spins := 0; !ok && spins < m.bpSpins; spins++ {
		runtime.Gosched()
		ok = inst.rx.Enqueue(buf)
	}
	if !ok {
		buf.Release()
		m.dropped.Add(1)
		m.ringDrops.Inc()
		return
	}
	inst.rxCount.Add(1)
	select {
	case inst.rxBell <- struct{}{}:
	default:
	}
	m.switched.Add(1)
}

// process executes one descriptor action from an NF's Tx ring.
func (m *Manager) process(buf *pktbuf.Buf) {
	switch buf.Meta.Action {
	case pktbuf.ActionToNF:
		m.deliver(buf, buf.Meta.Dst)
	case pktbuf.ActionToPort:
		if fc := m.faultc.Load(); fc != nil {
			act := fc.inj.Decide(fc.egress, buf.Bytes())
			if act.Drop {
				buf.Release()
				m.dropped.Add(1)
				return
			}
			if act.Delay > 0 {
				time.Sleep(act.Delay)
			}
		}
		m.mu.RLock()
		sink := m.ports[buf.Meta.Port]
		m.mu.RUnlock()
		if sink != nil {
			sp := m.tracec.Load().Start("onvm.egress")
			sink(buf.Bytes(), buf.Meta)
			sp.End()
		} else {
			m.dropped.Add(1)
		}
		buf.Release()
	default: // Drop and Buffer-left-in-ring both release here
		if buf.Meta.Action == pktbuf.ActionDrop {
			m.dropped.Add(1)
		}
		buf.Release()
	}
}

func (m *Manager) switchLoop() {
	defer close(m.done)
	var drain [64]*pktbuf.Buf
	for {
		t, ok := m.work.Dequeue()
		if !ok {
			if m.stopped.Load() {
				return
			}
			<-m.bell
			continue
		}
		if t.buf != nil { // injected frame
			m.deliver(t.buf, t.dst)
			continue
		}
		// Drain the notifying NF's Tx ring.
		n := t.nf.tx.DequeueBulk(drain[:])
		for i := 0; i < n; i++ {
			m.process(drain[i])
		}
	}
}

// Stats reports descriptors switched and packets dropped by the manager.
func (m *Manager) Stats() (switched, dropped uint64) {
	return m.switched.Load(), m.dropped.Load()
}

// Stop halts the manager and all registered NF instances.
func (m *Manager) Stop() {
	if !m.stopped.CompareAndSwap(false, true) {
		return
	}
	m.mu.RLock()
	insts := []*Instance{}
	for _, ent := range m.services {
		insts = append(insts, ent.instances...)
	}
	m.mu.RUnlock()
	for _, i := range insts {
		close(i.stop)
	}
	select {
	case m.bell <- struct{}{}:
	default:
	}
	for _, i := range insts {
		<-i.done
	}
}

func (i *Instance) run() {
	defer close(i.done)
	var batch [64]*pktbuf.Buf
	for {
		n := i.rx.DequeueBulk(batch[:])
		if n == 0 {
			select {
			case <-i.rxBell:
				continue
			case <-i.stop:
				return
			}
		}
		for j := 0; j < n; j++ {
			buf := batch[j]
			sp := i.mgr.tracec.Load().Start(i.spanName)
			done := i.handler(buf)
			sp.End()
			if done {
				if !i.tx.Enqueue(buf) {
					buf.Release()
					continue
				}
				i.txCount.Add(1)
			}
		}
		// Notify the manager once per batch.
		i.mgr.notify(task{nf: i})
	}
}

// String renders manager state for diagnostics.
func (m *Manager) String() string {
	sw, dr := m.Stats()
	return fmt.Sprintf("onvm.Manager{switched: %d, dropped: %d, pool: %d/%d}",
		sw, dr, m.pool.Avail(), m.pool.Size())
}
