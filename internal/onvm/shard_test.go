package onvm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/pktbuf"
)

// TestSwitchWorkersConfig pins the worker-count selection rules.
func TestSwitchWorkersConfig(t *testing.T) {
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t"})
	defer m.Stop()
	want := runtime.GOMAXPROCS(0)
	if want > 4 {
		want = 4
	}
	if m.Workers() != want {
		t.Fatalf("default Workers() = %d, want min(GOMAXPROCS,4) = %d", m.Workers(), want)
	}
	m3 := NewManager(Config{PoolSize: 8, PoolPrefix: "t", SwitchWorkers: 3})
	defer m3.Stop()
	if m3.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", m3.Workers())
	}
	m1 := NewManager(Config{PoolSize: 8, PoolPrefix: "t", SwitchWorkers: -5})
	defer m1.Stop()
	if m1.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1 for negative config", m1.Workers())
	}
}

// TestDelayedEgressDoesNotStallOtherNFs is the regression test for the
// inline time.Sleep in the old switch loop: a fault-delayed egress frame
// must not freeze every other NF behind the switch.
func TestDelayedEgressDoesNotStallOtherNFs(t *testing.T) {
	const delay = 150 * time.Millisecond
	m := NewManager(Config{PoolSize: 64, PoolPrefix: "t", SwitchWorkers: 1})
	defer m.Stop()
	inj := faults.New(1).
		Add(faults.Rule{Point: "onvm.egress", Kind: faults.Delay, Count: 1, Delay: delay})
	m.SetInjector(inj, "onvm")

	var slowAt, fastAt atomic.Int64
	start := time.Now()
	m.RegisterPort(1, func(frame []byte, meta pktbuf.Meta) {
		slowAt.Store(int64(time.Since(start)))
	})
	m.RegisterPort(2, func(frame []byte, meta pktbuf.Meta) {
		fastAt.Store(int64(time.Since(start)))
	})
	fwd := func(port uint16) Handler {
		return func(b *pktbuf.Buf) bool {
			b.Meta.Action = pktbuf.ActionToPort
			b.Meta.Port = port
			return true
		}
	}
	m.Register(1, "slow", fwd(1))
	m.Register(2, "fast", fwd(2))
	m.BindPortNF(1, 1)
	m.BindPortNF(2, 2)

	if err := m.Inject(1, []byte("delayed"), pktbuf.Meta{}); err != nil {
		t.Fatal(err)
	}
	// Give the delayed frame time to reach the egress fault decision and
	// park in its timer, then send traffic for the second NF.
	time.Sleep(30 * time.Millisecond)
	if err := m.Inject(2, []byte("prompt"), pktbuf.Meta{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return fastAt.Load() != 0 }, "prompt egress")
	if got := time.Duration(fastAt.Load()); got >= delay {
		t.Fatalf("second NF's frame egressed after %v: stalled behind the delayed frame (delay %v)", got, delay)
	}
	waitFor(t, func() bool { return slowAt.Load() != 0 }, "delayed egress")
	if got := time.Duration(slowAt.Load()); got < delay {
		t.Fatalf("delayed frame egressed after %v, want >= %v", got, delay)
	}
	waitFor(t, func() bool { return m.Pool().Avail() == 64 }, "buffer return")
}

// rssForShard finds an RSS value whose flow key lands on the given shard.
func rssForShard(m *Manager, shard int) uint64 {
	for r := uint64(1); ; r++ {
		meta := pktbuf.Meta{RSS: r}
		if m.shards.ShardOf(flowKey(&meta)) == shard {
			return r
		}
	}
}

// TestTxRingOverflowCountsDrops is the regression test for silent
// descriptor loss: when an NF's Tx ring stays full, the released
// descriptors must show up in txDrops and the dropped aggregate.
func TestTxRingOverflowCountsDrops(t *testing.T) {
	const total = 48
	m := NewManager(Config{PoolSize: 256, RingSize: 4, PoolPrefix: "t",
		SwitchWorkers: 2, BackpressureSpins: 4})
	defer m.Stop()

	release := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	var egressed atomic.Uint64
	m.RegisterPort(9, func(frame []byte, meta pktbuf.Meta) {
		first := false
		once.Do(func() { first = true })
		if first {
			close(blocked)
			<-release // wedge the home worker inside the egress sink
		}
		egressed.Add(1)
	})
	inst, err := m.Register(1, "fwd", func(b *pktbuf.Buf) bool {
		b.Meta.Action = pktbuf.ActionToPort
		b.Meta.Port = 9
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.shard != 0 {
		t.Fatalf("first instance homed on shard %d, want 0", inst.shard)
	}
	m.BindPortNF(1, 1)

	// Primer: one frame through the NF wedges worker 0 in the sink.
	if err := m.Inject(1, []byte("primer"), pktbuf.Meta{}); err != nil {
		t.Fatal(err)
	}
	<-blocked
	// Flood via worker 1 (flow keys homed on shard 1): deliveries continue
	// while the NF's Tx ring backs up behind the wedged worker 0.
	rss := rssForShard(m, 1)
	for i := 0; i < total; i++ {
		for {
			err := m.Inject(1, []byte("flood"), pktbuf.Meta{RSS: rss})
			if err == nil {
				break
			}
			runtime.Gosched()
		}
	}
	waitFor(t, func() bool { return m.TxDrops() > 0 }, "tx-overflow drops counted")
	close(release)

	// Conservation: every injected frame either egressed or is accounted in
	// a drop counter, and all buffers come home.
	waitFor(t, func() bool {
		return egressed.Load()+m.TxDrops()+m.RingDrops().Load() == total+1
	}, "full accounting")
	if inst.TxDrops() != m.TxDrops() {
		t.Fatalf("instance txDrops %d != manager txDrops %d", inst.TxDrops(), m.TxDrops())
	}
	_, dropped := m.Stats()
	if dropped < m.TxDrops() {
		t.Fatalf("dropped aggregate %d does not fold in txDrops %d", dropped, m.TxDrops())
	}
	waitFor(t, func() bool { return m.Pool().Avail() == 256 }, "buffer return")
}

// TestStrandedTxSweepRecovers is the regression test for the lost-wakeup
// liveness bug: a descriptor sitting in an NF's Tx ring with no work-shard
// notification (the old code dropped the notify error on the floor) must
// still egress once its home worker idles, without unrelated traffic.
func TestStrandedTxSweepRecovers(t *testing.T) {
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t", SwitchWorkers: 1})
	defer m.Stop()
	var delivered atomic.Bool
	m.RegisterPort(3, func(frame []byte, meta pktbuf.Meta) {
		if string(frame) == "stranded" {
			delivered.Store(true)
		}
	})
	inst, err := m.Register(1, "idle", func(b *pktbuf.Buf) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Pool().Get()
	if err != nil {
		t.Fatal(err)
	}
	b.SetData([]byte("stranded"))
	b.Meta.Action = pktbuf.ActionToPort
	b.Meta.Port = 3
	// Strand the descriptor: Tx enqueue with the notification "lost".
	if !inst.tx.Enqueue(b) {
		t.Fatal("tx enqueue failed")
	}
	m.wake(inst.shard)
	waitFor(t, func() bool { return delivered.Load() }, "sweep recovery")
	waitFor(t, func() bool { return m.Pool().Avail() == 8 }, "buffer return")
}

// TestStopJoinsWorkersAndReleasesQueued pins the teardown contract: Stop
// joins every switch worker and NF goroutine, and every descriptor still
// queued anywhere comes back to the pool before Stop returns.
func TestStopJoinsWorkersAndReleasesQueued(t *testing.T) {
	m := NewManager(Config{PoolSize: 128, PoolPrefix: "t", SwitchWorkers: 2})
	m.Register(1, "slow", func(b *pktbuf.Buf) bool {
		time.Sleep(time.Millisecond)
		b.Meta.Action = pktbuf.ActionDrop
		return true
	})
	m.BindPortNF(1, 1)
	for i := 0; i < 60; i++ {
		if err := m.Inject(1, []byte("x"), pktbuf.Meta{TEID: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.Stop() // no waitFor: Stop itself must join and release everything
	if err := m.Inject(1, []byte("x"), pktbuf.Meta{}); err != ErrStopped {
		t.Fatalf("Inject after Stop = %v, want ErrStopped", err)
	}
	if avail := m.Pool().Avail(); avail != 128 {
		t.Fatalf("pool avail after Stop = %d, want 128 (descriptors leaked)", avail)
	}
}

// TestMultiWorkerPerFlowFIFO drives many flows through a 4-worker switch
// into 3 instances of one service and asserts per-flow FIFO at egress.
func TestMultiWorkerPerFlowFIFO(t *testing.T) {
	const (
		flows   = 16
		perFlow = 200
		port    = 7
	)
	// PoolSize below the NF ring capacity throttles in-flight descriptors so
	// Rx rings cannot overflow: every injected frame must egress.
	m := NewManager(Config{PoolSize: 512, PoolPrefix: "t", SwitchWorkers: 4})
	defer m.Stop()

	var last [flows]atomic.Uint64
	var reorders, received atomic.Uint64
	m.RegisterPort(port, func(frame []byte, meta pktbuf.Meta) {
		f := meta.TEID
		if prev := last[f].Load(); meta.Seq <= prev {
			reorders.Add(1)
		}
		last[f].Store(meta.Seq)
		received.Add(1)
	})
	for i := 0; i < 3; i++ {
		if _, err := m.Register(1, "fwd", func(b *pktbuf.Buf) bool {
			b.Meta.Action = pktbuf.ActionToPort
			b.Meta.Port = port
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	m.BindPortNF(1, 1)

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := uint64(1); seq <= perFlow; seq++ {
				for f := p; f < flows; f += 4 {
					meta := pktbuf.Meta{
						TEID: uint32(f),
						RSS:  uint64(f)*0x9e3779b97f4a7c15 + 1,
						Seq:  seq,
					}
					for {
						if err := m.Inject(1, []byte("pkt"), meta); err == nil {
							break
						}
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	wg.Wait()
	waitFor(t, func() bool { return received.Load() == flows*perFlow }, "all frames egressed")
	if reorders.Load() != 0 {
		t.Fatalf("%d per-flow reorders across 4 workers", reorders.Load())
	}
	// Every flow saw its final sequence number.
	for f := 0; f < flows; f++ {
		if last[f].Load() != perFlow {
			t.Fatalf("flow %d last seq = %d, want %d", f, last[f].Load(), perFlow)
		}
	}
	waitFor(t, func() bool { return m.Pool().Avail() == 512 }, "buffer return")
}
