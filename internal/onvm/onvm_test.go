package onvm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/pktbuf"
	"l25gc/internal/testutil"
	"l25gc/internal/trace"
)

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestInjectToNFToPort(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := NewManager(Config{PoolSize: 64, PoolPrefix: "t"})
	defer m.Stop()

	var got atomic.Value
	m.RegisterPort(2, func(frame []byte, meta pktbuf.Meta) {
		cp := append([]byte(nil), frame...)
		got.Store(cp)
	})
	// NF: uppercase the payload and forward to port 2.
	_, err := m.Register(1, "shout", func(b *pktbuf.Buf) bool {
		d := b.Bytes()
		for i := range d {
			if d[i] >= 'a' && d[i] <= 'z' {
				d[i] -= 32
			}
		}
		b.Meta.Action = pktbuf.ActionToPort
		b.Meta.Port = 2
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.BindPortNF(1, 1)
	if err := m.Inject(1, []byte("hello"), pktbuf.Meta{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != nil }, "port delivery")
	if string(got.Load().([]byte)) != "HELLO" {
		t.Fatalf("got %q", got.Load())
	}
	// Buffer must be back in the pool.
	waitFor(t, func() bool { return m.Pool().Avail() == 64 }, "buffer return")
}

func TestServiceChain(t *testing.T) {
	m := NewManager(Config{PoolSize: 64, PoolPrefix: "t"})
	defer m.Stop()

	var order []string
	var mu sync.Mutex
	var done atomic.Bool
	m.RegisterPort(9, func(frame []byte, meta pktbuf.Meta) { done.Store(true) })

	mkNF := func(name string, next uint16, toPort bool) Handler {
		return func(b *pktbuf.Buf) bool {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			if toPort {
				b.Meta.Action = pktbuf.ActionToPort
				b.Meta.Port = 9
			} else {
				b.Meta.Action = pktbuf.ActionToNF
				b.Meta.Dst = next
			}
			return true
		}
	}
	m.Register(10, "a", mkNF("a", 11, false))
	m.Register(11, "b", mkNF("b", 12, false))
	m.Register(12, "c", mkNF("c", 0, true))
	m.BindPortNF(1, 10)
	m.Inject(1, []byte("x"), pktbuf.Meta{})
	waitFor(t, func() bool { return done.Load() }, "chain completion")
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("chain order = %v", order)
	}
}

func TestDropAction(t *testing.T) {
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t"})
	defer m.Stop()
	m.Register(1, "dropper", func(b *pktbuf.Buf) bool {
		b.Meta.Action = pktbuf.ActionDrop
		return true
	})
	m.BindPortNF(1, 1)
	for i := 0; i < 5; i++ {
		if err := m.Inject(1, []byte("z"), pktbuf.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { _, d := m.Stats(); return d == 5 }, "drops counted")
	waitFor(t, func() bool { return m.Pool().Avail() == 8 }, "buffers recycled")
}

func TestHandlerKeepsOwnership(t *testing.T) {
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t"})
	defer m.Stop()
	var parked atomic.Pointer[pktbuf.Buf]
	inst, _ := m.Register(1, "parker", func(b *pktbuf.Buf) bool {
		parked.Store(b)
		return false // keep the descriptor (session buffering)
	})
	m.BindPortNF(1, 1)
	m.Inject(1, []byte("hold"), pktbuf.Meta{})
	waitFor(t, func() bool { return parked.Load() != nil }, "parked buffer")
	if m.Pool().Avail() != 7 {
		t.Fatalf("avail = %d, want 7 while parked", m.Pool().Avail())
	}
	// Later the NF re-emits the parked packet (e.g. after handover).
	b := parked.Load()
	b.Meta.Action = pktbuf.ActionToPort
	b.Meta.Port = 5
	var delivered atomic.Bool
	m.RegisterPort(5, func(frame []byte, meta pktbuf.Meta) {
		if string(frame) == "hold" {
			delivered.Store(true)
		}
	})
	if err := inst.Send(b); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return delivered.Load() }, "late delivery")
	waitFor(t, func() bool { return m.Pool().Avail() == 8 }, "buffer recycled")
}

func TestInjectUnknownPort(t *testing.T) {
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t"})
	defer m.Stop()
	if err := m.Inject(77, []byte("x"), pktbuf.Meta{}); err != ErrNoPort {
		t.Fatalf("err = %v, want ErrNoPort", err)
	}
}

func TestDeliverUnknownServiceDrops(t *testing.T) {
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t"})
	defer m.Stop()
	m.Register(1, "fwd", func(b *pktbuf.Buf) bool {
		b.Meta.Action = pktbuf.ActionToNF
		b.Meta.Dst = 99 // nobody home
		return true
	})
	m.BindPortNF(1, 1)
	m.Inject(1, []byte("x"), pktbuf.Meta{})
	waitFor(t, func() bool { _, d := m.Stats(); return d == 1 }, "drop counted")
	waitFor(t, func() bool { return m.Pool().Avail() == 8 }, "buffer recycled")
}

func TestCanarySplit(t *testing.T) {
	m := NewManager(Config{PoolSize: 2048, PoolPrefix: "t"})
	defer m.Stop()
	var stable, canary atomic.Uint64
	sink := func(counter *atomic.Uint64) Handler {
		return func(b *pktbuf.Buf) bool {
			counter.Add(1)
			b.Meta.Action = pktbuf.ActionDrop
			return true
		}
	}
	m.Register(1, "v1", sink(&stable))
	m.Register(1, "v2", sink(&canary))
	if err := m.SetCanary(1, 25); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCanary(1, 150); err != ErrBadPercent {
		t.Fatalf("bad percent: %v", err)
	}
	m.BindPortNF(1, 1)
	const n = 1000
	for i := 0; i < n; i++ {
		// Distinct TEIDs = distinct flows for the RSS hash.
		m.Inject(1, []byte("p"), pktbuf.Meta{TEID: uint32(i)})
	}
	waitFor(t, func() bool { return stable.Load()+canary.Load() == n }, "all processed")
	frac := float64(canary.Load()) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("canary fraction = %.2f, want ~0.25", frac)
	}
}

func TestRSSSpreadsAcrossInstances(t *testing.T) {
	m := NewManager(Config{PoolSize: 2048, PoolPrefix: "t"})
	defer m.Stop()
	var a, b atomic.Uint64
	drop := func(c *atomic.Uint64) Handler {
		return func(buf *pktbuf.Buf) bool {
			c.Add(1)
			buf.Meta.Action = pktbuf.ActionDrop
			return true
		}
	}
	m.Register(1, "i0", drop(&a))
	m.Register(1, "i1", drop(&b))
	m.BindPortNF(1, 1)
	const n = 1000
	for i := 0; i < n; i++ {
		m.Inject(1, []byte("p"), pktbuf.Meta{TEID: uint32(i)})
	}
	waitFor(t, func() bool { return a.Load()+b.Load() == n }, "all processed")
	if a.Load() == 0 || b.Load() == 0 {
		t.Fatalf("RSS did not spread: %d/%d", a.Load(), b.Load())
	}
	// Same flow (same TEID) must always hit the same instance.
	a.Store(0)
	b.Store(0)
	for i := 0; i < 100; i++ {
		m.Inject(1, []byte("p"), pktbuf.Meta{TEID: 42})
	}
	waitFor(t, func() bool { return a.Load()+b.Load() == 100 }, "flow processed")
	if a.Load() != 0 && b.Load() != 0 {
		t.Fatalf("one flow split across instances: %d/%d", a.Load(), b.Load())
	}
}

func TestSecurityDomainPrefixes(t *testing.T) {
	m1 := NewManager(Config{PoolSize: 8, PoolPrefix: "operatorA"})
	defer m1.Stop()
	m2 := NewManager(Config{PoolSize: 8, PoolPrefix: "operatorB"})
	defer m2.Stop()
	if m1.Pool().Prefix() == m2.Pool().Prefix() {
		t.Fatal("distinct 5GC units must have distinct pool prefixes")
	}
	// Buffers from one pool must never be returnable to the other: the
	// pools are fully disjoint objects.
	b1, _ := m1.Pool().Get()
	if m2.Pool().Avail() != 8 {
		t.Fatal("pools share state")
	}
	b1.Release()
}

func TestStopIsIdempotentAndTerminatesNFs(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m := NewManager(Config{PoolSize: 8, PoolPrefix: "t"})
	m.Register(1, "nf", func(b *pktbuf.Buf) bool {
		b.Meta.Action = pktbuf.ActionDrop
		return true
	})
	m.Stop()
	m.Stop()
	if err := m.Inject(1, []byte("x"), pktbuf.Meta{}); err != ErrStopped {
		t.Fatalf("Inject after stop = %v", err)
	}
}

// BenchmarkDescriptorSwitch compares the descriptor hot path with tracing
// disabled (nil track: one atomic load per stage) and enabled; the
// disabled variant is the acceptance bar for instrumentation overhead.
func BenchmarkDescriptorSwitch(b *testing.B) {
	b.Run("tracer=off", func(b *testing.B) { benchSwitch(b, nil) })
	b.Run("tracer=on", func(b *testing.B) { benchSwitch(b, trace.New()) })
}

// benchSwitch ping-pongs one descriptor at a time, so the measurement is
// the per-descriptor inject -> switch -> NF -> switch -> egress cost
// without flood-control artifacts on a single CPU.
func benchSwitch(b *testing.B, tr *trace.Tracer) {
	m := NewManager(Config{PoolSize: 64, PoolPrefix: "bench"})
	defer m.Stop()
	m.SetTracer(trace.NewTrack(tr, "onvm"))
	done := make(chan struct{}, 1)
	m.Register(1, "fwd", func(buf *pktbuf.Buf) bool {
		buf.Meta.Action = pktbuf.ActionToPort
		buf.Meta.Port = 2
		return true
	})
	m.RegisterPort(2, func(frame []byte, meta pktbuf.Meta) { done <- struct{}{} })
	m.BindPortNF(1, 1)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Inject(1, payload, pktbuf.Meta{}); err != nil {
			b.Fatal(err)
		}
		<-done
		if tr != nil && i%4096 == 4095 {
			tr.Reset() // bound span memory; Reset cost stays in-measure
		}
	}
}

func TestRingSizeHonored(t *testing.T) {
	m := NewManager(Config{PoolSize: 64, RingSize: 4, PoolPrefix: "t"})
	defer m.Stop()
	if m.ringSize() != 4 {
		t.Fatalf("ringSize = %d, want 4", m.ringSize())
	}
}

func TestBackpressureCountsRingOverflowDrops(t *testing.T) {
	// Tiny ring, NF wedged until released: the switch loop backpressures
	// briefly then counts overflow drops instead of blocking forever.
	m := NewManager(Config{PoolSize: 256, RingSize: 2, PoolPrefix: "t",
		BackpressureSpins: 4})
	defer m.Stop()
	release := make(chan struct{})
	var handled atomic.Uint64
	if _, err := m.Register(1, "wedged", func(b *pktbuf.Buf) bool {
		<-release
		handled.Add(1)
		b.Meta.Action = pktbuf.ActionDrop
		return true
	}); err != nil {
		t.Fatal(err)
	}
	m.BindPortNF(1, 1)
	const total = 64
	for i := 0; i < total; i++ {
		if err := m.Inject(1, []byte("pkt"), pktbuf.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return m.RingDrops().Load() > 0 }, "ring overflow drops")
	close(release)
	// Everything is accounted for: each packet was either delivered to the
	// NF or counted as a ring-overflow drop, and all buffers come home.
	waitFor(t, func() bool {
		return handled.Load()+m.RingDrops().Load() >= total
	}, "full accounting")
	waitFor(t, func() bool { return m.Pool().Avail() == 256 }, "buffer return")
}

func TestInjectorDropsAndDelaysDescriptors(t *testing.T) {
	m := NewManager(Config{PoolSize: 64, PoolPrefix: "t"})
	defer m.Stop()
	inj := faults.New(7).
		Add(faults.Rule{Point: "onvm.deliver", Kind: faults.Drop, Count: 3}).
		Add(faults.Rule{Point: "onvm.deliver", Kind: faults.Delay,
			After: 3, Count: 1, Delay: 20 * time.Millisecond})
	m.SetInjector(inj, "onvm")
	var handled atomic.Uint64
	if _, err := m.Register(1, "sink", func(b *pktbuf.Buf) bool {
		handled.Add(1)
		b.Meta.Action = pktbuf.ActionDrop
		return true
	}); err != nil {
		t.Fatal(err)
	}
	m.BindPortNF(1, 1)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := m.Inject(1, []byte("pkt"), pktbuf.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	// 3 dropped, 1 delayed, 1 straight through: 2 reach the NF.
	waitFor(t, func() bool { return handled.Load() == 2 }, "injected delivery")
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delayed descriptor arrived after %v, want >= 20ms", elapsed)
	}
	if got := inj.Count("onvm.deliver", faults.Drop); got != 3 {
		t.Fatalf("injector drop count = %d, want 3", got)
	}
	waitFor(t, func() bool { return m.Pool().Avail() == 64 }, "buffer return")
}
