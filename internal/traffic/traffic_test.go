package traffic

import (
	"context"
	"testing"
	"time"
)

func TestRTTProbeStampAck(t *testing.T) {
	p := NewRTTProbe(10 * time.Millisecond)
	payload := make([]byte, 32)
	seq, err := p.Stamp(payload)
	if err != nil || seq != 1 {
		t.Fatalf("Stamp = %d, %v", seq, err)
	}
	rtt, ok := p.Ack(payload)
	if !ok || rtt < 0 {
		t.Fatalf("Ack = %v, %v", rtt, ok)
	}
	// Duplicate ack rejected.
	if _, ok := p.Ack(payload); ok {
		t.Fatal("duplicate ack should fail")
	}
	sent, acked, higher := p.Stats()
	if sent != 1 || acked != 1 || higher != 0 {
		t.Fatalf("stats %d/%d/%d", sent, acked, higher)
	}
}

func TestRTTProbeHigherThreshold(t *testing.T) {
	p := NewRTTProbe(time.Nanosecond) // everything counts as higher
	payload := make([]byte, 16)
	p.Stamp(payload)
	time.Sleep(time.Millisecond)
	p.Ack(payload)
	if _, _, higher := p.Stats(); higher != 1 {
		t.Fatalf("higher = %d", higher)
	}
}

func TestRTTProbeShortPayload(t *testing.T) {
	p := NewRTTProbe(0)
	if _, err := p.Stamp(make([]byte, 8)); err != ErrShortPayload {
		t.Fatalf("err = %v", err)
	}
	if _, ok := p.Ack(make([]byte, 3)); ok {
		t.Fatal("short ack should fail")
	}
}

func TestRTTProbeOutstanding(t *testing.T) {
	p := NewRTTProbe(0)
	a, b := make([]byte, 16), make([]byte, 16)
	p.Stamp(a)
	p.Stamp(b)
	if p.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
	p.Ack(a)
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
}

func TestRunCBRCountAndRate(t *testing.T) {
	var n int
	start := time.Now()
	err := RunCBR(context.Background(), 10000, 500, func(i int) error {
		if i != n {
			t.Fatalf("out of order: %d != %d", i, n)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("sent %d", n)
	}
	// 500 packets at 10 Kpps ≈ 50 ms; allow generous slack on 1 CPU.
	if d := time.Since(start); d < 20*time.Millisecond || d > 2*time.Second {
		t.Fatalf("pacing off: %v", d)
	}
}

func TestRunCBRContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunCBR(ctx, 100, 1000, func(int) error { return nil })
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

func TestBlast(t *testing.T) {
	var n int
	d, err := Blast(1000, func(i int) error { n++; return nil })
	if err != nil || n != 1000 || d <= 0 {
		t.Fatalf("blast: %v %d %v", d, n, err)
	}
}
