// Package traffic is the MoonGen substitute: constant-rate packet
// generation with per-packet sequence stamping, and an RTT probe that
// matches echoes back to their send times — the measurement methodology
// behind Tables 1 & 2 and Figs. 13 & 14 ("RTT of packets sent from and
// ack'd back to the generator").
package traffic

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/metrics"
)

// ErrShortPayload reports a probe payload too small for the stamp.
var ErrShortPayload = errors.New("traffic: payload too short")

// stampLen is seq(8) + sendTimeNano(8).
const stampLen = 16

// RTTProbe stamps outgoing payloads and resolves echoes to RTT samples.
type RTTProbe struct {
	mu   sync.Mutex
	sent map[uint64]time.Time

	Hist   *metrics.Histogram
	Series *metrics.Series // RTT in milliseconds over time

	next      atomic.Uint64
	acked     atomic.Uint64
	higher    atomic.Uint64
	threshold time.Duration
}

// NewRTTProbe creates a probe; RTTs above threshold count as "packets
// experiencing higher RTT" (the Tables 1 & 2 column).
func NewRTTProbe(threshold time.Duration) *RTTProbe {
	return &RTTProbe{
		sent:      make(map[uint64]time.Time),
		Hist:      metrics.NewHistogram(),
		Series:    metrics.NewSeries("rtt_ms"),
		threshold: threshold,
	}
}

// Stamp writes the next sequence stamp into payload (len >= 16) and
// records the send time. It returns the sequence number.
func (p *RTTProbe) Stamp(payload []byte) (uint64, error) {
	if len(payload) < stampLen {
		return 0, ErrShortPayload
	}
	seq := p.next.Add(1)
	now := time.Now()
	binary.BigEndian.PutUint64(payload[0:8], seq)
	binary.BigEndian.PutUint64(payload[8:16], uint64(now.UnixNano()))
	p.mu.Lock()
	p.sent[seq] = now
	p.mu.Unlock()
	return seq, nil
}

// Ack resolves an echoed payload to its RTT. Duplicate or unknown
// sequences report ok=false.
func (p *RTTProbe) Ack(payload []byte) (time.Duration, bool) {
	if len(payload) < stampLen {
		return 0, false
	}
	seq := binary.BigEndian.Uint64(payload[0:8])
	p.mu.Lock()
	t0, ok := p.sent[seq]
	if ok {
		delete(p.sent, seq)
	}
	p.mu.Unlock()
	if !ok {
		return 0, false
	}
	rtt := time.Since(t0)
	p.Hist.Observe(rtt)
	p.Series.Add(float64(rtt) / float64(time.Millisecond))
	p.acked.Add(1)
	if p.threshold > 0 && rtt > p.threshold {
		p.higher.Add(1)
	}
	return rtt, true
}

// Stats reports sent/acked/higher-RTT counters.
func (p *RTTProbe) Stats() (sent, acked, higher uint64) {
	return p.next.Load(), p.acked.Load(), p.higher.Load()
}

// Outstanding reports stamps not yet acked (lost or still buffered).
func (p *RTTProbe) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sent)
}

// RunCBR emits packets at the given rate for the given count (or until
// ctx is done), invoking send for each. Pacing batches sends per
// millisecond, which holds 10 Kpps comfortably on one core.
func RunCBR(ctx context.Context, ratePps int, count int, send func(i int) error) error {
	if ratePps <= 0 {
		ratePps = 1
	}
	interval := time.Millisecond
	perTick := ratePps / 1000
	if perTick == 0 {
		perTick = 1
		interval = time.Second / time.Duration(ratePps)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := 0
	for sent < count {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			for i := 0; i < perTick && sent < count; i++ {
				if err := send(sent); err != nil {
					return err
				}
				sent++
			}
		}
	}
	return nil
}

// Blast sends count packets back-to-back as fast as possible (the
// throughput-measurement mode of Fig. 10).
func Blast(count int, send func(i int) error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := send(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
