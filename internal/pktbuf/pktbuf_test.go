package pktbuf

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestPoolGetRelease(t *testing.T) {
	p := NewPool(4, "op1")
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	bufs := make([]*Buf, 0, 4)
	for i := 0; i < 4; i++ {
		b, err := p.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		bufs = append(bufs, b)
	}
	if _, err := p.Get(); err != ErrPoolEmpty {
		t.Fatalf("Get on empty pool = %v, want ErrPoolEmpty", err)
	}
	for _, b := range bufs {
		b.Release()
	}
	if p.Avail() != 4 {
		t.Fatalf("Avail after release = %d, want 4", p.Avail())
	}
	gets, puts := p.Stats()
	if gets != 4 || puts != 4 {
		t.Fatalf("Stats = %d,%d want 4,4", gets, puts)
	}
}

func TestBufSetDataAndBytes(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	defer b.Release()
	payload := []byte("hello 5gc")
	if err := b.SetData(payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatalf("Bytes = %q, want %q", b.Bytes(), payload)
	}
	if b.Len() != len(payload) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(payload))
	}
}

func TestBufSetDataTooLarge(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	defer b.Release()
	if err := b.SetData(make([]byte, MaxFrame)); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestBufPrependTrimRoundTrip(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	defer b.Release()
	b.SetData([]byte("payload"))
	hdr, err := b.Prepend(8)
	if err != nil {
		t.Fatal(err)
	}
	copy(hdr, "GTPUHDR!")
	if got := string(b.Bytes()); got != "GTPUHDR!payload" {
		t.Fatalf("after prepend: %q", got)
	}
	if err := b.Trim(8); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != "payload" {
		t.Fatalf("after trim: %q", got)
	}
}

func TestBufPrependExceedsHeadroom(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	defer b.Release()
	if _, err := b.Prepend(Headroom + 1); err != ErrNoHeadroom {
		t.Fatalf("err = %v, want ErrNoHeadroom", err)
	}
	// Exactly Headroom must succeed.
	if _, err := b.Prepend(Headroom); err != nil {
		t.Fatalf("Prepend(Headroom) = %v", err)
	}
}

func TestBufTrimTooMuch(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	defer b.Release()
	b.SetData([]byte("abc"))
	if err := b.Trim(4); err != ErrShortFrame {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestBufAppend(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	defer b.Release()
	s, err := b.Append(4)
	if err != nil {
		t.Fatal(err)
	}
	copy(s, "abcd")
	if got := string(b.Bytes()); got != "abcd" {
		t.Fatalf("got %q", got)
	}
	if _, err := b.Append(MaxFrame); err != ErrFrameTooLarge {
		t.Fatalf("oversize append err = %v", err)
	}
}

func TestRetainRelease(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	b.Retain()
	b.Release()
	if p.Avail() != 0 {
		t.Fatal("buffer returned while still referenced")
	}
	b.Release()
	if p.Avail() != 1 {
		t.Fatal("buffer not returned after final release")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	b.Release()
}

func TestMetaResetOnGet(t *testing.T) {
	p := NewPool(1, "t")
	b, _ := p.Get()
	b.Meta.TEID = 42
	b.Meta.Action = ActionToPort
	b.Release()
	b2, _ := p.Get()
	if b2.Meta.TEID != 0 || b2.Meta.Action != ActionDrop {
		t.Fatalf("Meta not reset: %+v", b2.Meta)
	}
}

func TestConcurrentGetRelease(t *testing.T) {
	p := NewPool(64, "t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b, err := p.Get()
				if err != nil {
					continue
				}
				b.SetData([]byte{1, 2, 3})
				b.Release()
			}
		}()
	}
	wg.Wait()
	if p.Avail() != 64 {
		t.Fatalf("leaked buffers: avail %d want 64", p.Avail())
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		ActionDrop: "drop", ActionToNF: "tonf", ActionToPort: "toport",
		ActionBuffer: "buffer", Action(9): "invalid",
	} {
		if a.String() != want {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), want)
		}
	}
}

// Property: SetData followed by any valid sequence of Prepend/Trim pairs
// preserves the payload bytes.
func TestPrependTrimProperty(t *testing.T) {
	p := NewPool(1, "t")
	f := func(payload []byte, hdrSizes []uint8) bool {
		if len(payload) > MaxFrame-Headroom {
			payload = payload[:MaxFrame-Headroom]
		}
		b, err := p.Get()
		if err != nil {
			return false
		}
		defer b.Release()
		b.SetData(payload)
		applied := []int{}
		for _, h := range hdrSizes {
			n := int(h % 32)
			if _, err := b.Prepend(n); err != nil {
				break
			}
			applied = append(applied, n)
		}
		for i := len(applied) - 1; i >= 0; i-- {
			if err := b.Trim(applied[i]); err != nil {
				return false
			}
		}
		return bytes.Equal(b.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPoolGetRelease(b *testing.B) {
	p := NewPool(1024, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ := p.Get()
		buf.Release()
	}
}
