// Package pktbuf implements the shared packet-buffer pool of the NFV
// platform: the in-process equivalent of a DPDK hugepage mempool of mbufs.
//
// A Buf carries both the raw frame bytes and the descriptor metadata
// (action, destination service, tunnel fields, timestamps) that NFs attach
// before handing the descriptor back to the manager. Passing a *Buf through
// a ring is the zero-copy communication path of L²5GC: the payload is never
// copied or serialized between NFs on the same node.
package pktbuf

import (
	"errors"
	"sync/atomic"

	"l25gc/internal/ring"
)

// MaxFrame is the largest frame a Buf can hold (an MTU-size Ethernet frame
// plus tunnel headroom for GTP-U encapsulation without reallocation).
const MaxFrame = 1600

// Headroom is reserved at the front of every Buf so that GTP-U/UDP/IP
// encapsulation can prepend headers without moving the payload.
const Headroom = 64

// Action tells the NF manager what to do with a descriptor pulled from an
// NF's Tx ring, mirroring ONVM's ToNF / ToPort / Drop actions.
type Action uint8

const (
	// ActionDrop releases the buffer back to the pool.
	ActionDrop Action = iota
	// ActionToNF forwards the descriptor to Meta.Dst's Rx ring.
	ActionToNF
	// ActionToPort transmits the frame out of Meta.Port.
	ActionToPort
	// ActionBuffer parks the packet in a session buffer (paging/handover).
	ActionBuffer
)

// String implements fmt.Stringer for diagnostics.
func (a Action) String() string {
	switch a {
	case ActionDrop:
		return "drop"
	case ActionToNF:
		return "tonf"
	case ActionToPort:
		return "toport"
	case ActionBuffer:
		return "buffer"
	default:
		return "invalid"
	}
}

// Meta is the descriptor metadata attached to every packet buffer.
type Meta struct {
	Action  Action
	Dst     uint16  // destination service ID for ActionToNF
	Port    uint16  // output port for ActionToPort
	TEID    uint32  // tunnel endpoint, filled by GTP processing
	OuterIP [4]byte // outer tunnel destination (gNB) for DL egress routing
	QFI     uint8   // QoS flow identifier
	RSS     uint64  // receive-side-scaling flow hash, stamped at ingress
	Uplink  bool    // direction hint for the UPF fast path
	Seq     uint64  // generator sequence number, used by latency measurement
	TsNano  int64   // generator timestamp (nanoseconds) for latency measurement
}

// Buf is one pooled packet buffer.
type Buf struct {
	mem  [MaxFrame]byte
	off  int // start of valid data within mem
	blen int // length of valid data

	Meta Meta

	pool   *Pool
	refcnt atomic.Int32
}

// Bytes returns the valid frame bytes. The slice aliases pool memory and is
// invalid after Release.
func (b *Buf) Bytes() []byte { return b.mem[b.off : b.off+b.blen] }

// Len returns the current frame length.
func (b *Buf) Len() int { return b.blen }

// Reset clears the buffer to empty with default headroom.
func (b *Buf) Reset() {
	b.off = Headroom
	b.blen = 0
	b.Meta = Meta{}
}

// SetData copies p into the buffer (the single copy at the edge of the
// system — e.g. a NIC receive); subsequent inter-NF handoffs are zero-copy.
func (b *Buf) SetData(p []byte) error {
	if len(p) > MaxFrame-Headroom {
		return ErrFrameTooLarge
	}
	b.off = Headroom
	b.blen = copy(b.mem[b.off:], p)
	return nil
}

// Append grows the frame by n bytes at the tail and returns the new region.
func (b *Buf) Append(n int) ([]byte, error) {
	if b.off+b.blen+n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	s := b.mem[b.off+b.blen : b.off+b.blen+n]
	b.blen += n
	return s, nil
}

// Prepend grows the frame by n bytes at the head (into the headroom) and
// returns the new region; used for tunnel encapsulation.
func (b *Buf) Prepend(n int) ([]byte, error) {
	if n > b.off {
		return nil, ErrNoHeadroom
	}
	b.off -= n
	b.blen += n
	return b.mem[b.off : b.off+n], nil
}

// Trim drops n bytes from the front of the frame (tunnel decapsulation).
func (b *Buf) Trim(n int) error {
	if n > b.blen {
		return ErrShortFrame
	}
	b.off += n
	b.blen -= n
	return nil
}

// Retain increments the reference count so the buffer survives an extra
// Release (used when a packet is both forwarded and logged for replay).
func (b *Buf) Retain() { b.refcnt.Add(1) }

// Release returns the buffer to its pool once all references are dropped.
func (b *Buf) Release() {
	if b.pool == nil {
		return
	}
	if n := b.refcnt.Add(-1); n == 0 {
		b.pool.put(b)
	} else if n < 0 {
		panic("pktbuf: double release")
	}
}

// Errors returned by buffer space management.
var (
	ErrFrameTooLarge = errors.New("pktbuf: frame exceeds MaxFrame")
	ErrNoHeadroom    = errors.New("pktbuf: insufficient headroom")
	ErrShortFrame    = errors.New("pktbuf: trim exceeds frame length")
	ErrPoolEmpty     = errors.New("pktbuf: pool exhausted")
)

// Pool is a fixed-size pool of packet buffers shared by all NFs of one
// 5GC unit. The free list is a lock-free MPMC ring, so any NF goroutine
// may allocate or release concurrently.
type Pool struct {
	free   *ring.MPMC[*Buf]
	bufs   []Buf
	prefix string // security-domain file prefix (DPDK --file-prefix analog)

	gets atomic.Uint64
	puts atomic.Uint64
}

// NewPool creates a pool of n buffers. prefix names the private memory
// domain; pools with different prefixes model isolated operators on one node.
func NewPool(n int, prefix string) *Pool {
	p := &Pool{
		free:   ring.NewMPMC[*Buf](n),
		bufs:   make([]Buf, n),
		prefix: prefix,
	}
	for i := range p.bufs {
		p.bufs[i].pool = p
		p.bufs[i].Reset()
		p.free.Enqueue(&p.bufs[i])
	}
	return p
}

// Prefix returns the pool's security-domain prefix.
func (p *Pool) Prefix() string { return p.prefix }

// Size returns the total number of buffers owned by the pool.
func (p *Pool) Size() int { return len(p.bufs) }

// Avail returns the approximate number of free buffers.
func (p *Pool) Avail() int { return p.free.Len() }

// Get allocates a buffer, or returns ErrPoolEmpty when exhausted.
func (p *Pool) Get() (*Buf, error) {
	b, ok := p.free.Dequeue()
	if !ok {
		return nil, ErrPoolEmpty
	}
	b.Reset()
	b.refcnt.Store(1)
	p.gets.Add(1)
	return b, nil
}

func (p *Pool) put(b *Buf) {
	p.puts.Add(1)
	if !p.free.Enqueue(b) {
		panic("pktbuf: free ring overflow (foreign buffer?)")
	}
}

// Stats reports lifetime get/put counts, useful for leak detection in tests.
func (p *Pool) Stats() (gets, puts uint64) {
	return p.gets.Load(), p.puts.Load()
}
