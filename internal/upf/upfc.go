package upf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/overload"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

// UPFC is the UPF control-plane component: it terminates the N4 (PFCP)
// association and translates session management messages into the shared
// session state that UPF-U forwards from.
type UPFC struct {
	state *State
	n3IP  pkt.Addr // local N3 address advertised in F-TEIDs
	ep    pfcp.Endpoint

	mu     sync.Mutex
	drains []func(*SessCtx) // buffer-release hooks installed by UPF-U

	ctrl atomic.Pointer[overload.Controller]
	// clock supplies monotonic elapsed time for the establishment-latency
	// samples fed to the overload controller (injectable; same idiom as
	// UPFU.nowNano).
	clock func() time.Duration

	// recoveryTS is this UPF incarnation's recovery timestamp, advertised
	// in heartbeat and association responses; a restarted UPF advertises a
	// new value so the SMF knows its session table is empty.
	recoveryTS atomic.Uint32
	// peerNodeID/peerTS track the CP function that last associated, so a
	// restarted SMF (new RecoveryTimestamp) is visible in metrics.
	assocMu    sync.Mutex
	peerNodeID string
	peerTS     uint32
	assocs     atomic.Uint64
}

// SetOverload installs (or, with nil, removes) the admission controller
// throttling N4 session establishment: shed establishments answer with
// CauseCongestion instead of growing the session table unboundedly.
// Deletions and modifications are never throttled (the drain invariant).
func (c *UPFC) SetOverload(ctrl *overload.Controller) {
	if ctrl == nil {
		c.ctrl.Store(nil)
		return
	}
	c.ctrl.Store(ctrl)
}

// NewUPFC creates the control part over the shared state. ep is the N4
// endpoint toward the SMF (UDP in free5GC mode, shared memory in L²5GC
// mode); it may be nil for tests that drive the handler directly.
func NewUPFC(state *State, n3IP pkt.Addr, ep pfcp.Endpoint) *UPFC {
	c := &UPFC{state: state, n3IP: n3IP, ep: ep}
	base := time.Now()
	c.clock = func() time.Duration { return time.Since(base) }
	c.recoveryTS.Store(1)
	if ep != nil {
		ep.SetHandler(c.Handle)
	}
	return c
}

// SetRecoveryTimestamp installs this incarnation's recovery timestamp
// (deterministic harnesses inject epoch numbers; a UPF restart bumps it).
func (c *UPFC) SetRecoveryTimestamp(ts uint32) { c.recoveryTS.Store(ts) }

// RecoveryTimestamp returns the advertised recovery timestamp.
func (c *UPFC) RecoveryTimestamp() uint32 { return c.recoveryTS.Load() }

// PeerNodeID returns the Node ID of the last CP function that associated.
func (c *UPFC) PeerNodeID() string {
	c.assocMu.Lock()
	defer c.assocMu.Unlock()
	return c.peerNodeID
}

// SetClock replaces the monotonic clock behind overload latency samples
// (simulated-time harnesses inject theirs before traffic starts).
func (c *UPFC) SetClock(clock func() time.Duration) { c.clock = clock }

// OnDrain registers a hook invoked when a session's buffer must be
// released (FAR flipped from buffer to forward). UPF-U registers its
// emit-path here.
func (c *UPFC) OnDrain(fn func(*SessCtx)) {
	c.mu.Lock()
	c.drains = append(c.drains, fn)
	c.mu.Unlock()
}

func (c *UPFC) fireDrain(ctx *SessCtx) {
	c.mu.Lock()
	hooks := append([]func(*SessCtx){}, c.drains...)
	c.mu.Unlock()
	for _, fn := range hooks {
		fn(ctx)
	}
}

// ReportDL sends a PFCP Session Report (DL data notification) toward the
// SMF; this is the paging trigger. Called by UPF-U on the first buffered
// packet of an episode.
func (c *UPFC) ReportDL(ctx *SessCtx, pdrID uint32) error {
	if c.ep == nil {
		return nil
	}
	_, err := c.ep.Request(ctx.Sess.SEID, true, &pfcp.SessionReportRequest{
		ReportType: pfcp.ReportDLDR,
		PDRID:      pdrID,
	})
	return err
}

// Handle is the PFCP request handler (installed on the N4 endpoint).
func (c *UPFC) Handle(seid uint64, req pfcp.Message) (pfcp.Message, error) {
	switch m := req.(type) {
	case *pfcp.HeartbeatRequest:
		// Answer with our OWN recovery timestamp (TS 29.244 §6.2.2): the
		// requester compares it against the value it saw at setup to
		// detect a UPF restart. Echoing the requester's timestamp (the
		// old behaviour) made restarts invisible.
		return &pfcp.HeartbeatResponse{RecoveryTimestamp: c.recoveryTS.Load()}, nil
	case *pfcp.AssociationSetupRequest:
		c.assocMu.Lock()
		c.peerNodeID = m.NodeID
		c.peerTS = m.RecoveryTimestamp
		c.assocMu.Unlock()
		c.assocs.Add(1)
		return &pfcp.AssociationSetupResponse{
			NodeID:            "upf.l25gc",
			Cause:             pfcp.CauseAccepted,
			RecoveryTimestamp: c.recoveryTS.Load(),
		}, nil
	case *pfcp.SessionSetAuditRequest:
		// Post-heal reconciliation: report every SEID we hold, sorted, so
		// the SMF can diff its table against ours deterministically.
		return &pfcp.SessionSetAuditResponse{
			Cause: pfcp.CauseAccepted,
			SEIDs: c.state.SEIDs(),
		}, nil
	case *pfcp.SessionEstablishmentRequest:
		if ctrl := c.ctrl.Load(); ctrl != nil {
			if !ctrl.Admit(overload.ClassSession) {
				return &pfcp.SessionEstablishmentResponse{Cause: pfcp.CauseCongestion}, nil
			}
			start := c.clock()
			resp, err := c.establish(m)
			ctrl.Observe(c.clock() - start)
			ctrl.Release(overload.ClassSession)
			return resp, err
		}
		return c.establish(m)
	case *pfcp.SessionModificationRequest:
		return c.modify(seid, m)
	case *pfcp.SessionDeletionRequest:
		return c.delete(seid)
	default:
		return nil, fmt.Errorf("upfc: unsupported message type %d", req.PFCPType())
	}
}

func (c *UPFC) establish(m *pfcp.SessionEstablishmentRequest) (pfcp.Message, error) {
	ctx, err := c.state.CreateSession(m.CPSEID, m.UEIP)
	if err != nil {
		return &pfcp.SessionEstablishmentResponse{Cause: pfcp.CauseRequestRejected}, nil
	}
	resp := &pfcp.SessionEstablishmentResponse{Cause: pfcp.CauseAccepted, UPSEID: ctx.UPSEID}
	ctx.rulesMu.Lock()
	defer ctx.rulesMu.Unlock()
	for _, far := range m.CreateFARs {
		f := *far
		ctx.Sess.FARs[f.ID] = &f
	}
	for _, qer := range m.CreateQERs {
		q := *qer
		ctx.Sess.QERs[q.ID] = &q
		ctx.ulBucket.configure(q.ULMbrKbps)
		ctx.dlBucket.configure(q.DLMbrKbps)
	}
	for _, bar := range m.CreateBARs {
		b := *bar
		ctx.Sess.BARs[b.ID] = &b
		if b.SuggestedPkts > 0 {
			ctx.mu.Lock()
			ctx.bufCap = int(b.SuggestedPkts)
			ctx.mu.Unlock()
		}
	}
	for _, pdr := range m.CreatePDRs {
		p := *pdr
		if p.PDI.HasTEID && p.PDI.TEID == 0 {
			// CHOOSE flag: the UPF allocates the F-TEID and reports it.
			p.PDI.TEID = c.state.AllocTEID()
			p.PDI.TEIDAddr = c.n3IP
			resp.CreatedPDRs = append(resp.CreatedPDRs, pfcp.CreatedPDR{
				PDRID: p.ID, TEID: p.PDI.TEID, Addr: c.n3IP,
			})
		}
		if p.PDI.HasTEID {
			ctx.LocalTEID = p.PDI.TEID
			c.state.BindTEID(p.PDI.TEID, ctx)
		}
		ctx.Sess.AddPDR(&p)
		ctx.Cls.Insert(&p)
	}
	return resp, nil
}

func (c *UPFC) modify(seid uint64, m *pfcp.SessionModificationRequest) (pfcp.Message, error) {
	ctx, ok := c.state.Session(seid)
	if !ok {
		return &pfcp.SessionModificationResponse{Cause: pfcp.CauseSessionNotFound}, nil
	}
	resp := &pfcp.SessionModificationResponse{Cause: pfcp.CauseAccepted}
	ctx.rulesMu.Lock()
	var startedForwarding bool
	apply := func(far *rules.FAR) {
		f := *far
		old := ctx.Sess.FARs[f.ID]
		ctx.Sess.FARs[f.ID] = &f
		// Detect the buffer->forward flip that releases parked packets.
		if old != nil && old.Action&rules.FARBuffer != 0 && f.Action&rules.FARForward != 0 {
			startedForwarding = true
		}
	}
	for _, far := range m.CreateFARs {
		apply(far)
	}
	for _, far := range m.UpdateFARs {
		apply(far)
	}
	for _, pdr := range m.CreatePDRs {
		p := *pdr
		if p.PDI.HasTEID && p.PDI.TEID == 0 {
			p.PDI.TEID = c.state.AllocTEID()
			p.PDI.TEIDAddr = c.n3IP
			resp.CreatedPDRs = append(resp.CreatedPDRs, pfcp.CreatedPDR{
				PDRID: p.ID, TEID: p.PDI.TEID, Addr: c.n3IP,
			})
		}
		if p.PDI.HasTEID {
			c.state.BindTEID(p.PDI.TEID, ctx)
		}
		ctx.Sess.AddPDR(&p)
		ctx.Cls.Insert(&p)
	}
	for _, pdr := range m.UpdatePDRs {
		p := *pdr
		if p.PDI.HasTEID {
			c.state.BindTEID(p.PDI.TEID, ctx)
		}
		ctx.Sess.AddPDR(&p)
		ctx.Cls.Insert(&p)
	}
	for _, id := range m.RemovePDRs {
		ctx.Sess.RemovePDR(id)
		ctx.Cls.Remove(id)
	}
	for _, id := range m.RemoveFARs {
		delete(ctx.Sess.FARs, id)
	}
	ctx.rulesMu.Unlock()
	if startedForwarding {
		c.fireDrain(ctx)
	}
	return resp, nil
}

func (c *UPFC) delete(seid uint64) (pfcp.Message, error) {
	ctx, err := c.state.DeleteSession(seid)
	if err != nil {
		return &pfcp.SessionDeletionResponse{Cause: pfcp.CauseSessionNotFound}, nil
	}
	// Release anything still parked.
	for _, b := range ctx.Drain() {
		b.Release()
	}
	return &pfcp.SessionDeletionResponse{Cause: pfcp.CauseAccepted}, nil
}
