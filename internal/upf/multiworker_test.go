package upf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/gtp"
	"l25gc/internal/onvm"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
)

// TestMultiWorkerUplinkPerFlowFIFO runs the full UL fast path — N3 ingress,
// GTP decap, classification, N6 egress — through a 4-worker descriptor
// switch into 3 UPF-U instances and asserts per-flow FIFO order at the N6
// sink. This is the end-to-end ordering invariant of the sharded switch:
// flows interleave freely across workers and instances, but one flow's
// packets never pass each other.
func TestMultiWorkerUplinkPerFlowFIFO(t *testing.T) {
	const (
		flows     = 32
		perFlow   = 150
		producers = 4
		upfSvc    = 1
	)
	st := NewState("ps", 0)
	c := NewUPFC(st, n3IP, nil)
	u := NewUPFU(st, c)
	// PoolSize below the NF ring capacity bounds in-flight descriptors so Rx
	// rings cannot overflow: every injected frame must reach the sink.
	mgr := onvm.NewManager(onvm.Config{PoolSize: 512, PoolPrefix: "t", SwitchWorkers: 4})
	defer mgr.Stop()
	if mgr.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", mgr.Workers())
	}
	insts := make([]*onvm.Instance, 3)
	for i := range insts {
		inst, err := u.AttachONVM(mgr, upfSvc)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst
	}
	mgr.BindPortNF(uint16(PortN3), upfSvc)

	var last [flows]atomic.Uint64
	var reorders, received atomic.Uint64
	mgr.RegisterPort(uint16(PortN6), func(frame []byte, meta pktbuf.Meta) {
		f := meta.TEID // flow index stamped at injection; UL never rewrites it
		if f >= flows {
			t.Errorf("unexpected flow index %d at N6", f)
			return
		}
		if prev := last[f].Load(); meta.Seq <= prev {
			reorders.Add(1)
		}
		last[f].Store(meta.Seq)
		received.Add(1)
	})

	// One PFCP session per flow, each with its own UE IP and UPF-chosen TEID,
	// then one prebuilt UL GTP frame per flow.
	frames := make([][]byte, flows)
	for f := 0; f < flows; f++ {
		ip := pkt.AddrFrom(10, 61, byte(f>>8), byte(f+1))
		req := establishReq(uint64(5000 + f))
		req.UEIP = ip
		for _, p := range req.CreatePDRs {
			p.PDI.UEIP = ip
		}
		resp, err := c.Handle(uint64(5000+f), req)
		if err != nil {
			t.Fatal(err)
		}
		teid := resp.(*pfcp.SessionEstablishmentResponse).CreatedPDRs[0].TEID

		inner := make([]byte, 128)
		n, err := pkt.BuildUDPv4(inner, ip, dnIP, 40000, 9000, 0, make([]byte, 32))
		if err != nil {
			t.Fatal(err)
		}
		raw := make([]byte, 256)
		gh := gtp.Header{MsgType: gtp.MsgGPDU, TEID: teid, HasQFI: true, QFI: 9, PDUType: 1}
		hn, err := gh.Encode(raw, n)
		if err != nil {
			t.Fatal(err)
		}
		copy(raw[hn:], inner[:n])
		frames[f] = raw[:hn+n]
	}

	// producers goroutines each own flows/producers flows and inject their
	// packets in sequence order; flows from different producers interleave.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := uint64(1); seq <= perFlow; seq++ {
				for f := p; f < flows; f += producers {
					meta := pktbuf.Meta{
						Uplink: true,
						TEID:   uint32(f),
						RSS:    uint64(f)*0x9e3779b97f4a7c15 + 1,
						Seq:    seq,
					}
					for {
						if err := mgr.Inject(uint16(PortN3), frames[f], meta); err == nil {
							break
						}
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	wg.Wait()

	deadline := func(cond func() bool, what string) {
		t.Helper()
		until := time.Now().Add(2 * time.Second)
		for !cond() {
			if time.Now().After(until) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	deadline(func() bool { return received.Load() == flows*perFlow }, "all frames at N6")
	if reorders.Load() != 0 {
		t.Fatalf("%d per-flow reorders across 4 workers x 3 instances", reorders.Load())
	}
	for f := 0; f < flows; f++ {
		if last[f].Load() != perFlow {
			t.Fatalf("flow %d last seq = %d, want %d", f, last[f].Load(), perFlow)
		}
	}
	// All instances shared the load (flows spread by RSS across instances).
	for i, inst := range insts {
		if rx, _ := inst.Stats(); rx == 0 {
			t.Fatalf("instance %d received no traffic", i)
		}
	}
	if s := u.Stats(); s.ULForwarded != flows*perFlow {
		t.Fatalf("ULForwarded = %d, want %d (stats %+v)", s.ULForwarded, flows*perFlow, s)
	}
	deadline(func() bool { return mgr.Pool().Avail() == 512 }, "buffer return")
}
