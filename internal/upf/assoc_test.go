package upf

import (
	"testing"

	"l25gc/internal/pfcp"
	"l25gc/internal/testutil"
)

func TestAssociationSetupRecordsPeerAndAnswersOwnTimestamp(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	_, c, _, _ := newUPF(t)
	resp, err := c.Handle(0, &pfcp.AssociationSetupRequest{
		NodeID: "smf.test", RecoveryTimestamp: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar := resp.(*pfcp.AssociationSetupResponse)
	if ar.Cause != pfcp.CauseAccepted || ar.NodeID != "upf.l25gc" {
		t.Fatalf("setup response %+v", ar)
	}
	if ar.RecoveryTimestamp != c.RecoveryTimestamp() {
		t.Fatalf("setup response TS %d, UPF TS %d", ar.RecoveryTimestamp, c.RecoveryTimestamp())
	}
	if c.PeerNodeID() != "smf.test" {
		t.Fatalf("peer node id %q", c.PeerNodeID())
	}
}

// TestHeartbeatCarriesOwnRecoveryTimestamp pins the restart-visibility
// fix: the heartbeat response must advertise the UPF's OWN recovery
// timestamp (not echo the requester's), and bumping it — the restart
// simulation hook — must show through so the SMF can detect the new
// incarnation.
func TestHeartbeatCarriesOwnRecoveryTimestamp(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	_, c, _, _ := newUPF(t)
	hb := func() uint32 {
		resp, err := c.Handle(0, &pfcp.HeartbeatRequest{RecoveryTimestamp: 9999})
		if err != nil {
			t.Fatal(err)
		}
		return resp.(*pfcp.HeartbeatResponse).RecoveryTimestamp
	}
	before := hb()
	if before == 9999 {
		t.Fatal("heartbeat echoed the requester's timestamp; restarts would be invisible")
	}
	c.SetRecoveryTimestamp(before + 1)
	if after := hb(); after != before+1 {
		t.Fatalf("heartbeat TS %d after restart bump, want %d", after, before+1)
	}
}

func TestSessionSetAuditListsSEIDs(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	_, c, _, _ := newUPF(t)
	audit := func() []uint64 {
		resp, err := c.Handle(0, &pfcp.SessionSetAuditRequest{NodeID: "smf.test"})
		if err != nil {
			t.Fatal(err)
		}
		ar := resp.(*pfcp.SessionSetAuditResponse)
		if ar.Cause != pfcp.CauseAccepted {
			t.Fatalf("audit cause %d", ar.Cause)
		}
		return ar.SEIDs
	}
	if got := audit(); len(got) != 0 {
		t.Fatalf("audit on empty UPF returned %v", got)
	}
	mustEstablish(t, c, 7)
	mustEstablish(t, c, 3)
	got := audit()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("audit SEIDs %v, want ascending [3 7]", got)
	}
	if _, err := c.Handle(3, &pfcp.SessionDeletionRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := audit(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("audit after delete %v, want [7]", got)
	}
}
