package upf

import (
	"sync"
	"testing"

	"l25gc/internal/pkt"
)

// TestBindTEIDRaisesAllocatorFloor pins the restore/replay collision bug:
// a pinned bind (reconciliation re-establishing a session with its
// original UL TEID) must raise the allocator past the bound value, or a
// later AllocTEID hands the same TEID to a second session and uplink
// classification silently merges the two tunnels.
func TestBindTEIDRaisesAllocatorFloor(t *testing.T) {
	st := NewState("ps", 0)
	ctx, err := st.CreateSession(0x101, pkt.Addr{10, 60, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	st.BindTEID(0x2000, ctx)
	if teid := st.AllocTEID(); teid <= 0x2000 {
		t.Fatalf("AllocTEID after BindTEID(0x2000) returned %#x, want > 0x2000", teid)
	}
	// Binding below the current floor must not lower it.
	st.BindTEID(0x10, ctx)
	if teid := st.AllocTEID(); teid <= 0x2000 {
		t.Fatalf("AllocTEID after low re-bind returned %#x; floor regressed", teid)
	}
}

// Concurrent pinned binds and fresh allocations must never collide — the
// CAS-max loop in BindTEID races AllocTEID's fetch-add.
func TestBindTEIDConcurrentNoCollision(t *testing.T) {
	st := NewState("ps", 0)
	ctx, err := st.CreateSession(0x102, pkt.Addr{10, 60, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	allocated := make([][]uint32, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if w == 0 {
					st.BindTEID(uint32(0x3000+i*8), ctx)
				} else {
					allocated[w] = append(allocated[w], st.AllocTEID())
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint32]bool)
	for _, ts := range allocated {
		for _, teid := range ts {
			if seen[teid] {
				t.Fatalf("AllocTEID handed out %#x twice", teid)
			}
			seen[teid] = true
		}
	}
	floor := st.AllocTEID()
	if floor <= 0x3000+(n-1)*8 {
		t.Fatalf("final allocator value %#x not above highest pinned bind", floor)
	}
}
