// Package upf implements the 5GC User Plane Function, factored — as in
// L²5GC §3.2 — into a control-plane part (UPF-C, the PFCP session handler)
// and a user-plane part (UPF-U, the per-packet fast path). Both parts
// reference the same session state in memory, so a rule installed by UPF-C
// is visible to UPF-U with no state-propagation messages: the paper's
// "zero cost state update".
//
// The UPF-U implements the paper's smart buffering (§3.3): DL packets are
// parked in per-session queues during paging and handover, with in-order
// release toward the (new) gNB, replacing 3GPP's hairpin routing through
// the source gNB.
package upf

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"l25gc/internal/classifier"
	"l25gc/internal/metrics"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/rules"
)

// Errors returned by session management.
var (
	ErrSessionExists   = errors.New("upf: session already exists")
	ErrSessionNotFound = errors.New("upf: session not found")
	ErrRuleNotFound    = errors.New("upf: rule not found")
)

// DefaultBufferCap is the default per-session DL buffer (the paper's
// experiments use a 3K-packet buffer at the UPF).
const DefaultBufferCap = 3000

// tokenBucket enforces a QER maximum bit rate.
type tokenBucket struct {
	rateBps   float64 // bits per second; 0 = unlimited
	burstBits float64
	tokens    float64
	lastNano  int64
}

func (tb *tokenBucket) configure(kbps uint64) {
	tb.rateBps = float64(kbps) * 1000
	tb.burstBits = tb.rateBps / 10 // 100 ms burst
	tb.tokens = tb.burstBits
}

// allow consumes bits for a packet at time nowNano, returning false when
// the MBR is exceeded.
func (tb *tokenBucket) allow(bits int, nowNano int64) bool {
	if tb.rateBps == 0 {
		return true
	}
	if tb.lastNano != 0 {
		tb.tokens += tb.rateBps * float64(nowNano-tb.lastNano) / 1e9
		if tb.tokens > tb.burstBits {
			tb.tokens = tb.burstBits
		}
	}
	tb.lastNano = nowNano
	if tb.tokens < float64(bits) {
		return false
	}
	tb.tokens -= float64(bits)
	return true
}

// SessCtx is the per-PDU-session state shared by UPF-C and UPF-U.
type SessCtx struct {
	mu sync.Mutex

	// rulesMu guards Sess's rule maps and Cls: the fast path holds the
	// read side per packet (uncontended in steady state), UPF-C holds the
	// write side for rule updates — the Go-memory-model-safe rendering of
	// the paper's shared-hugepage rule store.
	rulesMu sync.RWMutex

	Sess      *rules.Session
	Cls       classifier.Classifier
	LocalTEID uint32 // UL F-TEID this UPF allocated
	UPSEID    uint64

	// Smart buffering state.
	buffer   []*pktbuf.Buf
	bufCap   int
	nocpSent bool // one SessionReport per buffering episode

	ulBucket tokenBucket
	dlBucket tokenBucket

	// Counters (exported snapshots via Stats).
	ulPkts, dlPkts atomic.Uint64
	bufferedPkts   atomic.Uint64
	bufDroppedPkts atomic.Uint64
	releasedPkts   atomic.Uint64
}

// SessStats is a snapshot of per-session counters.
type SessStats struct {
	ULPkts, DLPkts uint64
	Buffered       uint64
	BufferDropped  uint64
	Released       uint64
	QueueLen       int
}

// Stats returns the session counter snapshot.
func (c *SessCtx) Stats() SessStats {
	c.mu.Lock()
	q := len(c.buffer)
	c.mu.Unlock()
	return SessStats{
		ULPkts: c.ulPkts.Load(), DLPkts: c.dlPkts.Load(),
		Buffered: c.bufferedPkts.Load(), BufferDropped: c.bufDroppedPkts.Load(),
		Released: c.releasedPkts.Load(), QueueLen: q,
	}
}

// park appends a DL packet to the session buffer, honouring the cap.
func (c *SessCtx) Park(buf *pktbuf.Buf) (stored bool, firstOfEpisode bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := !c.nocpSent
	c.nocpSent = true
	if len(c.buffer) >= c.bufCap {
		c.bufDroppedPkts.Add(1)
		return false, first
	}
	c.buffer = append(c.buffer, buf)
	c.bufferedPkts.Add(1)
	return true, first
}

// drain removes all parked packets in arrival order and resets the
// buffering episode.
func (c *SessCtx) Drain() []*pktbuf.Buf {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.buffer
	c.buffer = nil
	c.nocpSent = false
	c.releasedPkts.Add(uint64(len(out)))
	return out
}

// Match resolves a packet to its PDR and FAR under the rules read lock.
func (c *SessCtx) Match(k *classifier.Key) (*rules.PDR, *rules.FAR) {
	c.rulesMu.RLock()
	defer c.rulesMu.RUnlock()
	pdr := c.Cls.Lookup(k)
	if pdr == nil {
		return nil, nil
	}
	return pdr, c.Sess.FAR(pdr.FARID)
}

// UpdateRules runs fn with exclusive access to the session's rule state
// (UPF-C side of the shared store).
func (c *SessCtx) UpdateRules(fn func()) {
	c.rulesMu.Lock()
	defer c.rulesMu.Unlock()
	fn()
}

// State is the UPF session store shared by UPF-C and UPF-U. The two hash
// tables mirror the paper's design: UL traffic resolves sessions by TEID,
// DL traffic by UE IP (§3.2, "zero cost state update").
type State struct {
	mu     sync.RWMutex
	ul     map[uint32]*SessCtx   // TEID -> session
	dl     map[pkt.Addr]*SessCtx // UE IP -> session
	bySEID map[uint64]*SessCtx   // CP SEID -> session

	clsAlgo  string
	bufCap   int
	teidNext atomic.Uint32
	seidNext atomic.Uint64
}

// NewState creates a session store using the given classifier algorithm
// ("ll", "tss" or "ps" — L²5GC ships with "ps").
func NewState(clsAlgo string, bufCap int) *State {
	if bufCap <= 0 {
		bufCap = DefaultBufferCap
	}
	s := &State{
		ul:      make(map[uint32]*SessCtx),
		dl:      make(map[pkt.Addr]*SessCtx),
		bySEID:  make(map[uint64]*SessCtx),
		clsAlgo: clsAlgo,
		bufCap:  bufCap,
	}
	s.teidNext.Store(0x1000)
	s.seidNext.Store(0x9000)
	return s
}

// AllocTEID returns a fresh local tunnel endpoint ID.
func (s *State) AllocTEID() uint32 { return s.teidNext.Add(1) }

// CreateSession installs a new session keyed by the CP SEID.
func (s *State) CreateSession(cpSEID uint64, ueIP pkt.Addr) (*SessCtx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bySEID[cpSEID]; ok {
		return nil, ErrSessionExists
	}
	ctx := &SessCtx{
		Sess:   rules.NewSession(cpSEID, ueIP),
		Cls:    classifier.New(s.clsAlgo),
		UPSEID: s.seidNext.Add(1),
		bufCap: s.bufCap,
	}
	s.bySEID[cpSEID] = ctx
	if ueIP != (pkt.Addr{}) {
		s.dl[ueIP] = ctx
	}
	return ctx, nil
}

// BindTEID indexes the session under a local UL TEID. Pinned binds (a
// post-heal rebuild re-installing a TEID allocated by a previous UPF
// incarnation) raise the allocator's floor so a later AllocTEID can
// never hand the same TEID out again.
func (s *State) BindTEID(teid uint32, ctx *SessCtx) {
	s.mu.Lock()
	s.ul[teid] = ctx
	s.mu.Unlock()
	for {
		cur := s.teidNext.Load()
		if teid <= cur || s.teidNext.CompareAndSwap(cur, teid) {
			return
		}
	}
}

// Session returns the session for a CP SEID.
func (s *State) Session(cpSEID uint64) (*SessCtx, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.bySEID[cpSEID]
	return c, ok
}

// ByTEID resolves an uplink session (N3 fast path).
func (s *State) ByTEID(teid uint32) (*SessCtx, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.ul[teid]
	return c, ok
}

// ByUEIP resolves a downlink session (N6 fast path).
func (s *State) ByUEIP(ip pkt.Addr) (*SessCtx, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.dl[ip]
	return c, ok
}

// DeleteSession removes a session and all its indexes.
func (s *State) DeleteSession(cpSEID uint64) (*SessCtx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, ok := s.bySEID[cpSEID]
	if !ok {
		return nil, ErrSessionNotFound
	}
	delete(s.bySEID, cpSEID)
	if ctx.Sess.UEIP != (pkt.Addr{}) {
		delete(s.dl, ctx.Sess.UEIP)
	}
	for teid, c := range s.ul {
		if c == ctx {
			delete(s.ul, teid)
		}
	}
	return ctx, nil
}

// Sessions returns the number of installed sessions.
func (s *State) Sessions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bySEID)
}

// SEIDs returns every installed session's CP SEID in ascending order —
// the deterministic audit view the post-heal reconciliation diffs against
// the SMF's table.
func (s *State) SEIDs() []uint64 {
	s.mu.RLock()
	out := make([]uint64, 0, len(s.bySEID))
	for seid := range s.bySEID {
		out = append(out, seid)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BufferDepth returns the total number of DL packets currently parked in
// session buffers across every installed session (the paper's smart-
// buffering occupancy during paging/handover).
func (s *State) BufferDepth() int {
	s.mu.RLock()
	ctxs := make([]*SessCtx, 0, len(s.bySEID))
	for _, c := range s.bySEID {
		ctxs = append(ctxs, c)
	}
	s.mu.RUnlock()
	depth := 0
	for _, c := range ctxs {
		c.mu.Lock()
		depth += len(c.buffer)
		c.mu.Unlock()
	}
	return depth
}

// ExportMetrics registers the session-store gauges under prefix.
func (s *State) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".sessions", func() uint64 { return uint64(s.Sessions()) })
	reg.RegisterGauge(prefix+".buffer_depth", func() uint64 { return uint64(s.BufferDepth()) })
}

// Export returns, for every installed session, the PFCP establishment
// request that would recreate it — the state-serialization format of the
// resiliency framework (a checkpoint is "the messages that rebuild me").
func (s *State) Export() []*pfcp.SessionEstablishmentRequest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*pfcp.SessionEstablishmentRequest, 0, len(s.bySEID))
	for seid, ctx := range s.bySEID {
		req := &pfcp.SessionEstablishmentRequest{
			NodeID: "checkpoint", CPSEID: seid, UEIP: ctx.Sess.UEIP,
		}
		for _, p := range ctx.Sess.PDRs {
			cp := *p
			req.CreatePDRs = append(req.CreatePDRs, &cp)
		}
		for _, f := range ctx.Sess.FARs {
			cf := *f
			req.CreateFARs = append(req.CreateFARs, &cf)
		}
		for _, q := range ctx.Sess.QERs {
			cq := *q
			req.CreateQERs = append(req.CreateQERs, &cq)
		}
		for _, b := range ctx.Sess.BARs {
			cb := *b
			req.CreateBARs = append(req.CreateBARs, &cb)
		}
		out = append(out, req)
	}
	return out
}

// Reset removes every session, releasing any buffered packets.
func (s *State) Reset() {
	s.mu.Lock()
	ctxs := make([]*SessCtx, 0, len(s.bySEID))
	for _, c := range s.bySEID {
		ctxs = append(ctxs, c)
	}
	s.bySEID = make(map[uint64]*SessCtx)
	s.ul = make(map[uint32]*SessCtx)
	s.dl = make(map[pkt.Addr]*SessCtx)
	s.mu.Unlock()
	for _, c := range ctxs {
		for _, b := range c.Drain() {
			b.Release()
		}
	}
}
