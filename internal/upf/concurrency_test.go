package upf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	gtp2 "l25gc/internal/gtp"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	pktbuf2 "l25gc/internal/pktbuf"
	"l25gc/internal/rules"
)

// TestControlDataConcurrency is the A2 (UPF-C/UPF-U split) stress test:
// the fast path forwards continuously while the control plane churns rules
// on the same shared state. Nothing may crash, leak, or deliver to a torn
// rule set.
func TestControlDataConcurrency(t *testing.T) {
	st, c, u, pool := newUPF(t)
	er := mustEstablish(t, c, 100)
	teid := er.CreatedPDRs[0].TEID

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Data plane: UL packets as fast as possible.
	var forwarded, dropped atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var scratch pkt.Parsed
		for !stop.Load() {
			b := ulPacket(t, pool, teid, 32)
			u.Process(b, &scratch)
			if b.Meta.Action == 2 { // ActionToPort
				forwarded.Add(1)
			} else {
				dropped.Add(1)
			}
			b.Release()
		}
	}()

	// Wait until the fast path is demonstrably running (one shared CPU:
	// the goroutine needs a scheduling slot before the churn starts).
	for forwarded.Load() == 0 {
		runtime.Gosched()
	}
	// Control plane: flip the DL FAR between buffer and forward, add and
	// remove an extra PDR, repeatedly.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
		c.Handle(100, &pfcp.SessionModificationRequest{
			UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
		})
		c.Handle(100, &pfcp.SessionModificationRequest{
			CreatePDRs: []*rules.PDR{{
				ID: 50, Precedence: 10,
				PDI:   rules.PDI{SourceInterface: rules.IfCore, UEIP: ueIP, HasUEIP: true},
				FARID: 2,
			}},
			UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
				HasOuterHeader: true, OuterTEID: uint32(0x7000 + i), OuterAddr: gnbIP}},
		})
		c.Handle(100, &pfcp.SessionModificationRequest{RemovePDRs: []uint32{50}})
	}
	stop.Store(true)
	wg.Wait()

	if forwarded.Load() == 0 {
		t.Fatal("fast path starved during control churn")
	}
	// No buffer leak: all pool buffers returned.
	for _, b := range func() []*SessCtx {
		ctx, _ := st.Session(100)
		return []*SessCtx{ctx}
	}()[0].Drain() {
		b.Release()
	}
	if pool.Avail() != pool.Size() {
		t.Fatalf("buffer leak: %d/%d", pool.Avail(), pool.Size())
	}
	t.Logf("forwarded %d, dropped %d during 300 rule updates", forwarded.Load(), dropped.Load())
}

// TestManySessions checks the UPF scales past the paper's two-user control
// plane limit (its data plane "supports as many users as resources allow").
func TestManySessions(t *testing.T) {
	st, c, u, _ := newUPF(t)
	pool2 := newBigPool(t)
	const n = 200
	teids := make([]uint32, n)
	ips := make([]pkt.Addr, n)
	for i := 0; i < n; i++ {
		ip := pkt.AddrFrom(10, 60, byte(i>>8), byte(i+1))
		ips[i] = ip
		req := establishReq(uint64(1000 + i))
		req.UEIP = ip
		for _, p := range req.CreatePDRs {
			p.PDI.UEIP = ip
		}
		resp, err := c.Handle(uint64(1000+i), req)
		if err != nil {
			t.Fatal(err)
		}
		er := resp.(*pfcp.SessionEstablishmentResponse)
		if er.Cause != pfcp.CauseAccepted {
			t.Fatalf("session %d rejected", i)
		}
		teids[i] = er.CreatedPDRs[0].TEID
	}
	if st.Sessions() != n {
		t.Fatalf("sessions = %d", st.Sessions())
	}
	// Every session forwards UL independently.
	var scratch pkt.Parsed
	for i := 0; i < n; i++ {
		b, err := pool2.Get()
		if err != nil {
			t.Fatal(err)
		}
		inner := make([]byte, 128)
		ln, _ := pkt.BuildUDPv4(inner, ips[i], dnIP, 1, 2, 0, nil)
		b.SetData(inner[:ln])
		if err := encapUL(b, teids[i]); err != nil {
			t.Fatal(err)
		}
		b.Meta.Uplink = true
		if !u.Process(b, &scratch) || b.Meta.Port != uint16(PortN6) {
			t.Fatalf("session %d did not forward", i)
		}
		b.Release()
	}
	if s := u.Stats(); s.ULForwarded != n {
		t.Fatalf("forwarded %d, want %d", s.ULForwarded, n)
	}
}

// helpers shared by the concurrency tests.

func newBigPool(t *testing.T) *pktbuf2.Pool {
	t.Helper()
	return pktbuf2.NewPool(512, "many")
}

func encapUL(b *pktbuf2.Buf, teid uint32) error {
	return gtp2.Encap(b, teid, 9, false)
}
