package upf

import (
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/classifier"
	"l25gc/internal/gtp"
	"l25gc/internal/metrics"
	"l25gc/internal/onvm"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/rules"
	"l25gc/internal/trace"
)

// Port assignments on the NFV platform.
const (
	PortN3 onvm.PortID = 1 // toward gNB
	PortN6 onvm.PortID = 2 // toward data network
)

// UStats is a snapshot of UPF-U counters.
type UStats struct {
	ULForwarded uint64
	DLForwarded uint64
	Buffered    uint64
	Dropped     uint64
	Misses      uint64 // no session / no matching PDR
	RateDropped uint64 // QER MBR enforcement
}

// UPFU is the UPF fast path: session resolution by TEID (UL) or UE IP
// (DL), PDR classification, QER enforcement and FAR execution.
type UPFU struct {
	state *State
	upfc  *UPFC

	// emit re-injects drained packets into the egress path; installed when
	// the UPF-U attaches to a platform (or a kernel-path loop). Atomic:
	// canary instances re-install it while drains may be running.
	emit atomic.Pointer[func(*pktbuf.Buf)]

	nowNano func() int64
	tracec  atomic.Pointer[trace.Track]

	ulFwd, dlFwd atomic.Uint64
	buffered     atomic.Uint64
	dropped      atomic.Uint64
	misses       atomic.Uint64
	rateDropped  atomic.Uint64
}

// NewUPFU creates the fast path over shared state. upfc may be nil when no
// control plane is attached (pure forwarding benchmarks).
func NewUPFU(state *State, upfc *UPFC) *UPFU {
	u := &UPFU{state: state, upfc: upfc, nowNano: func() int64 { return time.Now().UnixNano() }}
	if upfc != nil {
		upfc.OnDrain(u.DrainSession)
	}
	return u
}

// SetEmit installs the egress function used when draining session buffers.
func (u *UPFU) SetEmit(fn func(*pktbuf.Buf)) { u.emit.Store(&fn) }

// SetTracer installs a trace track for fast-path stage spans
// ("upf.classify", "upf.buffer"); nil disables tracing.
func (u *UPFU) SetTracer(tk *trace.Track) { u.tracec.Store(tk) }

// ExportMetrics registers the fast-path counters under prefix.
func (u *UPFU) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".ul_fwd", u.ulFwd.Load)
	reg.RegisterGauge(prefix+".dl_fwd", u.dlFwd.Load)
	reg.RegisterGauge(prefix+".buffered", u.buffered.Load)
	reg.RegisterGauge(prefix+".dropped", u.dropped.Load)
	reg.RegisterGauge(prefix+".misses", u.misses.Load)
	reg.RegisterGauge(prefix+".rate_dropped", u.rateDropped.Load)
}

// Stats returns the counter snapshot.
func (u *UPFU) Stats() UStats {
	return UStats{
		ULForwarded: u.ulFwd.Load(), DLForwarded: u.dlFwd.Load(),
		Buffered: u.buffered.Load(), Dropped: u.dropped.Load(),
		Misses: u.misses.Load(), RateDropped: u.rateDropped.Load(),
	}
}

// Process runs the fast path on one packet buffer. scratch is the caller's
// reusable parse state (one per goroutine, zero allocation). The return
// value reports whether the descriptor was handed back with Meta set
// (true) or ownership was retained — parked in a session buffer (false).
func (u *UPFU) Process(buf *pktbuf.Buf, scratch *pkt.Parsed) bool {
	if buf.Meta.Uplink {
		return u.uplink(buf, scratch)
	}
	return u.downlink(buf, scratch)
}

func (u *UPFU) uplink(buf *pktbuf.Buf, scratch *pkt.Parsed) bool {
	hdr, err := gtp.Decap(buf)
	if err != nil || hdr.MsgType != gtp.MsgGPDU {
		return u.drop(buf)
	}
	cls := u.tracec.Load().Start("upf.classify")
	ctx, ok := u.state.ByTEID(hdr.TEID)
	if !ok {
		cls.End()
		return u.miss(buf)
	}
	if err := scratch.ParseIPv4(buf.Bytes()); err != nil {
		cls.End()
		return u.drop(buf)
	}
	key := classifier.Key{Tuple: scratch.Tuple, TOS: scratch.TOS, TEID: hdr.TEID, FromAccess: true}
	pdr, far := ctx.Match(&key)
	cls.End()
	if pdr == nil {
		return u.miss(buf)
	}
	if far == nil || far.Action&rules.FARForward == 0 {
		return u.drop(buf)
	}
	ctx.mu.Lock()
	allowed := ctx.ulBucket.allow(buf.Len()*8, u.nowNano())
	ctx.mu.Unlock()
	if !allowed {
		u.rateDropped.Add(1)
		buf.Meta.Action = pktbuf.ActionDrop
		return true
	}
	ctx.ulPkts.Add(1)
	u.ulFwd.Add(1)
	// OuterHeaderRemoval already happened via Decap; forward plain IP to N6.
	buf.Meta.Action = pktbuf.ActionToPort
	buf.Meta.Port = uint16(PortN6)
	return true
}

func (u *UPFU) downlink(buf *pktbuf.Buf, scratch *pkt.Parsed) bool {
	tk := u.tracec.Load()
	cls := tk.Start("upf.classify")
	if err := scratch.ParseIPv4(buf.Bytes()); err != nil {
		cls.End()
		return u.drop(buf)
	}
	ctx, ok := u.state.ByUEIP(scratch.IP.Dst)
	if !ok {
		cls.End()
		return u.miss(buf)
	}
	key := classifier.Key{Tuple: scratch.Tuple, TOS: scratch.TOS, FromAccess: false}
	pdr, far := ctx.Match(&key)
	cls.End()
	if pdr == nil {
		return u.miss(buf)
	}
	if far == nil {
		return u.drop(buf)
	}
	if far.Action&rules.FARBuffer != 0 {
		sp := tk.Start("upf.buffer")
		stored, first := ctx.Park(buf)
		sp.End()
		if first && far.Action&rules.FARNotifyCP != 0 && u.upfc != nil {
			// Fire the paging trigger off the fast path.
			go u.upfc.ReportDL(ctx, pdr.ID)
		}
		if !stored {
			buf.Meta.Action = pktbuf.ActionDrop
			u.dropped.Add(1)
			return true
		}
		u.buffered.Add(1)
		return false // ownership retained by the session buffer
	}
	if far.Action&rules.FARForward == 0 {
		return u.drop(buf)
	}
	ctx.mu.Lock()
	allowed := ctx.dlBucket.allow(buf.Len()*8, u.nowNano())
	ctx.mu.Unlock()
	if !allowed {
		u.rateDropped.Add(1)
		buf.Meta.Action = pktbuf.ActionDrop
		return true
	}
	if err := u.encapTo(buf, pdr, far); err != nil {
		return u.drop(buf)
	}
	ctx.dlPkts.Add(1)
	u.dlFwd.Add(1)
	return true
}

// encapTo applies the FAR's outer header creation and targets N3.
func (u *UPFU) encapTo(buf *pktbuf.Buf, pdr *rules.PDR, far *rules.FAR) error {
	if far.HasOuterHeader {
		qfi := uint8(9)
		if pdr.PDI.HasQFI {
			qfi = pdr.PDI.QFI
		}
		if err := gtp.Encap(buf, far.OuterTEID, qfi, true); err != nil {
			return err
		}
		buf.Meta.TEID = far.OuterTEID
		buf.Meta.OuterIP = far.OuterAddr
	}
	buf.Meta.Action = pktbuf.ActionToPort
	buf.Meta.Port = uint16(PortN3)
	return nil
}

// DrainSession releases a session's parked packets in order through the
// emit path, encapsulating each toward the session's *current* FAR target
// (the target gNB after a handover). Installed as UPF-C's drain hook.
func (u *UPFU) DrainSession(ctx *SessCtx) {
	emitp := u.emit.Load()
	if emitp == nil {
		for _, b := range ctx.Drain() {
			b.Release()
		}
		return
	}
	emit := *emitp
	var scratch pkt.Parsed
	for _, b := range ctx.Drain() {
		if err := scratch.ParseIPv4(b.Bytes()); err != nil {
			b.Release()
			continue
		}
		key := classifier.Key{Tuple: scratch.Tuple, TOS: scratch.TOS, FromAccess: false}
		pdr, far := ctx.Match(&key)
		if pdr == nil || far == nil || far.Action&rules.FARForward == 0 {
			b.Release()
			continue
		}
		if err := u.encapTo(b, pdr, far); err != nil {
			b.Release()
			continue
		}
		ctx.dlPkts.Add(1)
		u.dlFwd.Add(1)
		emit(b)
	}
}

func (u *UPFU) drop(buf *pktbuf.Buf) bool {
	u.dropped.Add(1)
	buf.Meta.Action = pktbuf.ActionDrop
	return true
}

func (u *UPFU) miss(buf *pktbuf.Buf) bool {
	u.misses.Add(1)
	buf.Meta.Action = pktbuf.ActionDrop
	return true
}

// AttachONVM registers the UPF-U as an NF on the platform under service
// sid, wiring the emit path through the instance's Tx ring.
func (u *UPFU) AttachONVM(m *onvm.Manager, sid onvm.ServiceID) (*onvm.Instance, error) {
	// Parse scratch is checked out per call, not shared by the closure: the
	// sharded switch may drive handlers from concurrent platform goroutines,
	// and sync.Pool keeps the steady state allocation-free per goroutine.
	scratch := sync.Pool{New: func() any { return new(pkt.Parsed) }}
	inst, err := m.Register(sid, "upf-u", func(b *pktbuf.Buf) bool {
		s := scratch.Get().(*pkt.Parsed)
		done := u.Process(b, s)
		scratch.Put(s)
		return done
	})
	if err != nil {
		return nil, err
	}
	u.SetEmit(func(b *pktbuf.Buf) {
		if err := inst.Send(b); err != nil {
			b.Release()
		}
	})
	return inst, nil
}
