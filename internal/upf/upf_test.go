package upf

import (
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/gtp"
	"l25gc/internal/onvm"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/rules"
)

var (
	ueIP  = pkt.AddrFrom(10, 60, 0, 1)
	n3IP  = pkt.AddrFrom(10, 100, 0, 2)
	gnbIP = pkt.AddrFrom(10, 100, 0, 10)
	dnIP  = pkt.AddrFrom(8, 8, 8, 8)
)

// establishReq builds the canonical session establishment: UL PDR matching
// the UPF-chosen TEID, DL PDR matching the UE IP, forward FARs.
func establishReq(seid uint64) *pfcp.SessionEstablishmentRequest {
	return &pfcp.SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: seid, UEIP: ueIP,
		CreatePDRs: []*rules.PDR{
			{
				ID: 1, Precedence: 32,
				PDI: rules.PDI{
					SourceInterface: rules.IfAccess,
					HasTEID:         true, TEID: 0, // CHOOSE: UPF allocates
					UEIP: ueIP, HasUEIP: true,
				},
				OuterHeaderRemoval: true, FARID: 1,
			},
			{
				ID: 2, Precedence: 32,
				PDI: rules.PDI{
					SourceInterface: rules.IfCore,
					UEIP:            ueIP, HasUEIP: true,
				},
				FARID: 2,
			},
		},
		CreateFARs: []*rules.FAR{
			{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
			{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
				HasOuterHeader: true, OuterTEID: 0x5001, OuterAddr: gnbIP},
		},
	}
}

func newUPF(t *testing.T) (*State, *UPFC, *UPFU, *pktbuf.Pool) {
	t.Helper()
	st := NewState("ps", 0)
	c := NewUPFC(st, n3IP, nil)
	u := NewUPFU(st, c)
	pool := pktbuf.NewPool(256, "test")
	return st, c, u, pool
}

func mustEstablish(t *testing.T, c *UPFC, seid uint64) *pfcp.SessionEstablishmentResponse {
	t.Helper()
	resp, err := c.Handle(seid, establishReq(seid))
	if err != nil {
		t.Fatal(err)
	}
	er := resp.(*pfcp.SessionEstablishmentResponse)
	if er.Cause != pfcp.CauseAccepted {
		t.Fatalf("establish cause = %d", er.Cause)
	}
	if len(er.CreatedPDRs) != 1 || er.CreatedPDRs[0].TEID == 0 {
		t.Fatalf("expected a UPF-chosen F-TEID, got %+v", er.CreatedPDRs)
	}
	return er
}

// ulPacket builds a GTP-encapsulated UL frame in a fresh Buf.
func ulPacket(t *testing.T, pool *pktbuf.Pool, teid uint32, payload int) *pktbuf.Buf {
	t.Helper()
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	inner := make([]byte, 128)
	n, err := pkt.BuildUDPv4(inner, ueIP, dnIP, 40000, 9000, 0, make([]byte, payload))
	if err != nil {
		t.Fatal(err)
	}
	b.SetData(inner[:n])
	if err := gtp.Encap(b, teid, 9, false); err != nil {
		t.Fatal(err)
	}
	b.Meta.Uplink = true
	return b
}

// dlPacket builds a plain IP DL frame.
func dlPacket(t *testing.T, pool *pktbuf.Pool, payload int) *pktbuf.Buf {
	t.Helper()
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 256)
	n, err := pkt.BuildUDPv4(raw, dnIP, ueIP, 9000, 40000, 0, make([]byte, payload))
	if err != nil {
		t.Fatal(err)
	}
	b.SetData(raw[:n])
	b.Meta.Uplink = false
	return b
}

func TestEstablishAndUplinkForward(t *testing.T) {
	_, c, u, pool := newUPF(t)
	er := mustEstablish(t, c, 100)
	teid := er.CreatedPDRs[0].TEID

	b := ulPacket(t, pool, teid, 64)
	var scratch pkt.Parsed
	if !u.Process(b, &scratch) {
		t.Fatal("uplink should hand descriptor back")
	}
	if b.Meta.Action != pktbuf.ActionToPort || b.Meta.Port != uint16(PortN6) {
		t.Fatalf("meta = %+v, want forward to N6", b.Meta)
	}
	// GTP must be stripped: what egresses is the inner IP packet.
	if err := scratch.ParseIPv4(b.Bytes()); err != nil {
		t.Fatalf("egress not plain IP: %v", err)
	}
	if scratch.IP.Src != ueIP || scratch.IP.Dst != dnIP {
		t.Fatalf("inner addresses wrong: %v -> %v", scratch.IP.Src, scratch.IP.Dst)
	}
	if s := u.Stats(); s.ULForwarded != 1 {
		t.Fatalf("stats = %+v", s)
	}
	b.Release()
}

func TestUplinkUnknownTEIDDropped(t *testing.T) {
	_, c, u, pool := newUPF(t)
	mustEstablish(t, c, 100)
	b := ulPacket(t, pool, 0xdead, 64)
	var scratch pkt.Parsed
	if !u.Process(b, &scratch) {
		t.Fatal("should hand back for drop")
	}
	if b.Meta.Action != pktbuf.ActionDrop {
		t.Fatalf("action = %v, want drop", b.Meta.Action)
	}
	if s := u.Stats(); s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	b.Release()
}

func TestDownlinkEncapsulates(t *testing.T) {
	_, c, u, pool := newUPF(t)
	mustEstablish(t, c, 100)
	b := dlPacket(t, pool, 64)
	var scratch pkt.Parsed
	if !u.Process(b, &scratch) {
		t.Fatal("downlink should hand back")
	}
	if b.Meta.Action != pktbuf.ActionToPort || b.Meta.Port != uint16(PortN3) {
		t.Fatalf("meta = %+v, want forward to N3", b.Meta)
	}
	// Egress must be GTP-encapsulated toward the gNB TEID.
	h, err := gtp.Decap(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.TEID != 0x5001 || h.QFI != 9 || !h.HasQFI {
		t.Fatalf("outer header %+v", h)
	}
	b.Release()
}

func TestDownlinkUnknownUEDropped(t *testing.T) {
	_, c, u, pool := newUPF(t)
	mustEstablish(t, c, 100)
	b, _ := pool.Get()
	raw := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(raw, dnIP, pkt.AddrFrom(10, 60, 0, 99), 1, 2, 0, nil)
	b.SetData(raw[:n])
	var scratch pkt.Parsed
	u.Process(b, &scratch)
	if b.Meta.Action != pktbuf.ActionDrop {
		t.Fatal("unknown UE should drop")
	}
	b.Release()
}

// TestSmartBufferingEpisode exercises §3.3: flip the DL FAR to
// buffer+notify (paging / handover start), observe parking and a single
// report, then flip to forward toward a *new* gNB TEID and observe ordered
// release with the new outer header.
func TestSmartBufferingEpisode(t *testing.T) {
	st, c, u, pool := newUPF(t)
	mustEstablish(t, c, 100)

	// Start buffering (handover preparation / UE idle).
	resp, err := c.Handle(100, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{
			ID: 2, Action: rules.FARBuffer | rules.FARNotifyCP,
			DestInterface: rules.IfAccess,
		}},
	})
	if err != nil || resp.(*pfcp.SessionModificationResponse).Cause != pfcp.CauseAccepted {
		t.Fatalf("modify: %v %+v", err, resp)
	}

	var scratch pkt.Parsed
	const n = 5
	for i := 0; i < n; i++ {
		b := dlPacket(t, pool, 10+i) // distinct sizes to check ordering
		if u.Process(b, &scratch) {
			t.Fatalf("packet %d should be parked", i)
		}
	}
	ctx, _ := st.Session(100)
	if s := ctx.Stats(); s.Buffered != n || s.QueueLen != n {
		t.Fatalf("session stats %+v", s)
	}

	// Collect drained packets via the emit hook.
	var released []*pktbuf.Buf
	u.SetEmit(func(b *pktbuf.Buf) { released = append(released, b) })

	// Complete handover: forward to the target gNB with a new TEID.
	resp, err = c.Handle(100, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{
			ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
			HasOuterHeader: true, OuterTEID: 0x7777, OuterAddr: gnbIP,
		}},
	})
	if err != nil || resp.(*pfcp.SessionModificationResponse).Cause != pfcp.CauseAccepted {
		t.Fatalf("modify: %v %+v", err, resp)
	}
	if len(released) != n {
		t.Fatalf("released %d packets, want %d", len(released), n)
	}
	// In-order delivery with the *target* TEID.
	for i, b := range released {
		h, err := gtp.Decap(b)
		if err != nil {
			t.Fatal(err)
		}
		if h.TEID != 0x7777 {
			t.Fatalf("pkt %d: TEID %#x, want target 0x7777", i, h.TEID)
		}
		if err := scratch.ParseIPv4(b.Bytes()); err != nil {
			t.Fatal(err)
		}
		wantLen := pkt.IPv4MinLen + pkt.UDPLen + 10 + i
		if int(scratch.IP.TotalLen) != wantLen {
			t.Fatalf("pkt %d out of order: len %d want %d", i, scratch.IP.TotalLen, wantLen)
		}
		b.Release()
	}
	// After the episode, new DL packets flow immediately.
	b := dlPacket(t, pool, 64)
	if !u.Process(b, &scratch) {
		t.Fatal("post-drain packet should forward")
	}
	b.Release()
	if pool.Avail() != pool.Size() {
		t.Fatalf("buffer leak: %d/%d", pool.Avail(), pool.Size())
	}
}

func TestBufferCapDropsExcess(t *testing.T) {
	st := NewState("ps", 3)
	c := NewUPFC(st, n3IP, nil)
	u := NewUPFU(st, c)
	pool := pktbuf.NewPool(64, "t")
	mustEstablish(t, c, 100)
	c.Handle(100, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
	})
	var scratch pkt.Parsed
	for i := 0; i < 5; i++ {
		b := dlPacket(t, pool, 32)
		if u.Process(b, &scratch) {
			// Overflow packets come back as drops.
			if b.Meta.Action != pktbuf.ActionDrop {
				t.Fatalf("overflow action = %v", b.Meta.Action)
			}
			b.Release()
		}
	}
	ctx, _ := st.Session(100)
	s := ctx.Stats()
	if s.Buffered != 3 || s.BufferDropped != 2 {
		t.Fatalf("stats %+v, want 3 buffered / 2 dropped", s)
	}
}

func TestPagingReportSentOncePerEpisode(t *testing.T) {
	smfEP, upfEP := pfcp.NewMemPair(64)
	defer smfEP.Close()
	defer upfEP.Close()

	var reports atomic.Int32
	smfEP.SetHandler(func(seid uint64, req pfcp.Message) (pfcp.Message, error) {
		if _, ok := req.(*pfcp.SessionReportRequest); ok {
			reports.Add(1)
			return &pfcp.SessionReportResponse{Cause: pfcp.CauseAccepted}, nil
		}
		return nil, nil
	})

	st := NewState("ps", 0)
	c := NewUPFC(st, n3IP, upfEP)
	u := NewUPFU(st, c)
	pool := pktbuf.NewPool(64, "t")

	// Establish through the endpoint like a real SMF.
	resp, err := smfEP.Request(100, true, establishReq(100))
	if err != nil || resp.(*pfcp.SessionEstablishmentResponse).Cause != pfcp.CauseAccepted {
		t.Fatalf("establish via endpoint: %v", err)
	}
	smfEP.Request(100, true, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{
			ID: 2, Action: rules.FARBuffer | rules.FARNotifyCP, DestInterface: rules.IfAccess,
		}},
	})
	var scratch pkt.Parsed
	for i := 0; i < 4; i++ {
		b := dlPacket(t, pool, 32)
		u.Process(b, &scratch)
	}
	deadline := time.Now().Add(time.Second)
	for reports.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := reports.Load(); got != 1 {
		t.Fatalf("reports = %d, want exactly 1 per episode", got)
	}
}

func TestQERRateLimiting(t *testing.T) {
	st, _, _, pool := newUPF(t)
	_ = st
	stq := NewState("ps", 0)
	c := NewUPFC(stq, n3IP, nil)
	u := NewUPFU(stq, c)
	req := establishReq(200)
	req.CreateQERs = []*rules.QER{{ID: 9, QFI: 9, ULMbrKbps: 80, DLMbrKbps: 80, GateUL: true, GateDL: true}} // 80 kbit/s => 10 KB/s
	resp, err := c.Handle(200, req)
	if err != nil {
		t.Fatal(err)
	}
	teid := resp.(*pfcp.SessionEstablishmentResponse).CreatedPDRs[0].TEID

	// Freeze time so the bucket cannot refill: burst is 8000 bits = ~9
	// 100-byte packets.
	u.nowNano = func() int64 { return 1 }
	var scratch pkt.Parsed
	forwarded, dropped := 0, 0
	for i := 0; i < 30; i++ {
		b := ulPacket(t, pool, teid, 72) // ~100B inner IP
		u.Process(b, &scratch)
		if b.Meta.Action == pktbuf.ActionToPort {
			forwarded++
		} else {
			dropped++
		}
		b.Release()
	}
	if dropped == 0 || forwarded == 0 {
		t.Fatalf("MBR enforcement inactive: fwd=%d drop=%d", forwarded, dropped)
	}
	if s := u.Stats(); s.RateDropped != uint64(dropped) {
		t.Fatalf("stats %+v, dropped=%d", s, dropped)
	}
}

func TestSessionDeletionReleasesBuffers(t *testing.T) {
	st, c, u, pool := newUPF(t)
	mustEstablish(t, c, 100)
	c.Handle(100, &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
	})
	var scratch pkt.Parsed
	for i := 0; i < 3; i++ {
		u.Process(dlPacket(t, pool, 16), &scratch)
	}
	if pool.Avail() == pool.Size() {
		t.Fatal("expected parked buffers")
	}
	c.Handle(100, &pfcp.SessionDeletionRequest{})
	if pool.Avail() != pool.Size() {
		t.Fatalf("deletion leaked buffers: %d/%d", pool.Avail(), pool.Size())
	}
	if st.Sessions() != 0 {
		t.Fatal("session not removed")
	}
	// Traffic for the deleted session now drops.
	b := dlPacket(t, pool, 16)
	u.Process(b, &scratch)
	if b.Meta.Action != pktbuf.ActionDrop {
		t.Fatal("deleted session should drop")
	}
	b.Release()
}

func TestDuplicateEstablishRejected(t *testing.T) {
	_, c, _, _ := newUPF(t)
	mustEstablish(t, c, 100)
	resp, _ := c.Handle(100, establishReq(100))
	if resp.(*pfcp.SessionEstablishmentResponse).Cause != pfcp.CauseRequestRejected {
		t.Fatal("duplicate SEID should be rejected")
	}
}

func TestModifyUnknownSession(t *testing.T) {
	_, c, _, _ := newUPF(t)
	resp, _ := c.Handle(999, &pfcp.SessionModificationRequest{})
	if resp.(*pfcp.SessionModificationResponse).Cause != pfcp.CauseSessionNotFound {
		t.Fatal("unknown session should report not-found")
	}
}

// TestONVMPipeline runs the full platform: inject GTP frames on N3, observe
// plain IP on N6, and vice versa.
func TestONVMPipeline(t *testing.T) {
	st := NewState("ps", 0)
	c := NewUPFC(st, n3IP, nil)
	u := NewUPFU(st, c)
	mgr := onvm.NewManager(onvm.Config{PoolSize: 512, PoolPrefix: "t"})
	defer mgr.Stop()

	const upfSvc = 1
	if _, err := u.AttachONVM(mgr, upfSvc); err != nil {
		t.Fatal(err)
	}
	mgr.BindPortNF(uint16(PortN3), upfSvc)
	mgr.BindPortNF(uint16(PortN6), upfSvc)

	var n3Out, n6Out atomic.Uint64
	mgr.RegisterPort(uint16(PortN3), func(frame []byte, meta pktbuf.Meta) { n3Out.Add(1) })
	mgr.RegisterPort(uint16(PortN6), func(frame []byte, meta pktbuf.Meta) { n6Out.Add(1) })

	er := mustEstablish(t, c, 100)
	teid := er.CreatedPDRs[0].TEID

	// UL: GTP frame arrives on N3.
	raw := make([]byte, 256)
	inner := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(inner, ueIP, dnIP, 1000, 2000, 0, make([]byte, 32))
	// Manually assemble GTP header + inner.
	var gh gtp.Header
	gh.MsgType = gtp.MsgGPDU
	gh.TEID = teid
	gh.HasQFI = true
	gh.QFI = 9
	gh.PDUType = 1
	hn, _ := gh.Encode(raw, n)
	copy(raw[hn:], inner[:n])
	if err := mgr.Inject(uint16(PortN3), raw[:hn+n], pktbuf.Meta{Uplink: true}); err != nil {
		t.Fatal(err)
	}
	// DL: plain IP arrives on N6.
	dl := make([]byte, 256)
	dn, _ := pkt.BuildUDPv4(dl, dnIP, ueIP, 2000, 1000, 0, make([]byte, 32))
	if err := mgr.Inject(uint16(PortN6), dl[:dn], pktbuf.Meta{Uplink: false}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for (n3Out.Load() != 1 || n6Out.Load() != 1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n3Out.Load() != 1 || n6Out.Load() != 1 {
		t.Fatalf("n3=%d n6=%d, want 1/1 (upfu stats %+v)", n3Out.Load(), n6Out.Load(), u.Stats())
	}
}

func BenchmarkUplinkFastPath(b *testing.B) {
	st := NewState("ps", 0)
	c := NewUPFC(st, n3IP, nil)
	u := NewUPFU(st, c)
	pool := pktbuf.NewPool(16, "bench")
	resp, _ := c.Handle(100, establishReq(100))
	teid := resp.(*pfcp.SessionEstablishmentResponse).CreatedPDRs[0].TEID

	inner := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(inner, ueIP, dnIP, 1000, 2000, 0, make([]byte, 64))
	var scratch pkt.Parsed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ := pool.Get()
		buf.SetData(inner[:n])
		gtp.Encap(buf, teid, 9, false)
		buf.Meta.Uplink = true
		u.Process(buf, &scratch)
		buf.Release()
	}
}

func BenchmarkDownlinkFastPath(b *testing.B) {
	st := NewState("ps", 0)
	c := NewUPFC(st, n3IP, nil)
	u := NewUPFU(st, c)
	pool := pktbuf.NewPool(16, "bench")
	c.Handle(100, establishReq(100))
	raw := make([]byte, 256)
	n, _ := pkt.BuildUDPv4(raw, dnIP, ueIP, 2000, 1000, 0, make([]byte, 64))
	var scratch pkt.Parsed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ := pool.Get()
		buf.SetData(raw[:n])
		u.Process(buf, &scratch)
		buf.Release()
	}
}
