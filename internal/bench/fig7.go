package bench

import (
	"fmt"
	"time"

	"l25gc/internal/metrics"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/rules"
	"l25gc/internal/upf"
)

// n4Messages are the Fig. 7 PFCP messages: establishment, modification
// with UpdateFAR, and the session report that initiates paging.
func n4Messages(ueIP, gnbIP pkt.Addr) []struct {
	name    string
	seid    uint64
	msg     func(i int) pfcp.Message
	fromUPF bool
} {
	return []struct {
		name    string
		seid    uint64
		msg     func(i int) pfcp.Message
		fromUPF bool
	}{
		{"SessionEstablishment", 0, func(i int) pfcp.Message {
			return &pfcp.SessionEstablishmentRequest{
				NodeID: "smf", CPSEID: uint64(1000 + i), UEIP: ueIP,
				CreatePDRs: []*rules.PDR{
					{ID: 1, Precedence: 32,
						PDI:                rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true, UEIP: ueIP, HasUEIP: true},
						OuterHeaderRemoval: true, FARID: 1},
					{ID: 2, Precedence: 32,
						PDI:   rules.PDI{SourceInterface: rules.IfCore, UEIP: ueIP, HasUEIP: true},
						FARID: 2},
				},
				CreateFARs: []*rules.FAR{
					{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
					{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
						HasOuterHeader: true, OuterTEID: 0x5001, OuterAddr: gnbIP},
				},
			}
		}, false},
		{"SessionModification(UpdateFAR)", 1000, func(i int) pfcp.Message {
			return &pfcp.SessionModificationRequest{
				UpdateFARs: []*rules.FAR{{
					ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
					HasOuterHeader: true, OuterTEID: uint32(0x6000 + i), OuterAddr: gnbIP,
				}},
			}
		}, false},
		{"SessionReportRequest", 1000, func(i int) pfcp.Message {
			return &pfcp.SessionReportRequest{ReportType: pfcp.ReportDLDR, PDRID: 2}
		}, true},
	}
}

// runN4 measures mean request latency for each message over one endpoint
// flavour. smfEP/upfEP are connected; a fresh UPF state backs the handler.
func runN4(smfEP, upfEP pfcp.Endpoint, iters int) (map[string]time.Duration, error) {
	ueIP := pkt.AddrFrom(10, 60, 0, 1)
	gnbIP := pkt.AddrFrom(10, 100, 0, 10)
	state := upf.NewState("ps", 0)
	upf.NewUPFC(state, pkt.AddrFrom(10, 100, 0, 2), upfEP)
	smfEP.SetHandler(func(seid uint64, req pfcp.Message) (pfcp.Message, error) {
		return &pfcp.SessionReportResponse{Cause: pfcp.CauseAccepted}, nil
	})
	out := make(map[string]time.Duration)
	for _, m := range n4Messages(ueIP, gnbIP) {
		m := m
		ep := smfEP
		if m.fromUPF {
			ep = upfEP
		}
		// Warm up (also installs session 1000 used by modification).
		if _, err := ep.Request(m.seid, m.seid != 0, m.msg(0)); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", m.name, err)
		}
		start := time.Now()
		for i := 1; i <= iters; i++ {
			seid := m.seid
			if seid == 0 {
				seid = uint64(1000 + i)
			}
			if _, err := ep.Request(seid, true, m.msg(i)); err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
		}
		out[m.name] = time.Since(start) / time.Duration(iters)
	}
	return out, nil
}

// Fig7 compares the single-message N4 latency of the kernel UDP channel
// (free5GC) against shared memory (L²5GC).
func Fig7() (*Result, error) {
	const iters = 300
	// free5GC: PFCP over kernel UDP sockets.
	upfUDP, err := pfcp.NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer upfUDP.Close()
	smfUDP, err := pfcp.NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer smfUDP.Close()
	if err := smfUDP.Connect(upfUDP.Addr()); err != nil {
		return nil, err
	}
	if err := upfUDP.Connect(smfUDP.Addr()); err != nil {
		return nil, err
	}
	udp, err := runN4(smfUDP, upfUDP, iters)
	if err != nil {
		return nil, err
	}
	// L²5GC: PFCP structs through shared-memory mailboxes.
	smfMem, upfMem := pfcp.NewMemPair(512)
	defer smfMem.Close()
	defer upfMem.Close()
	mem, err := runN4(smfMem, upfMem, iters)
	if err != nil {
		return nil, err
	}

	tab := metrics.NewTable("message", "free5GC (UDP)", "L25GC (shm)", "reduction")
	for _, m := range n4Messages(pkt.Addr{}, pkt.Addr{}) {
		u, s := udp[m.name], mem[m.name]
		red := 100 * (1 - float64(s)/float64(u))
		tab.Row(m.name, u, s, fmt.Sprintf("%.0f%%", red))
	}
	return &Result{
		ID:    "fig7",
		Title: "Single N4 (PFCP) message latency, SMF <-> UPF-C",
		Table: tab,
		Notes: []string{"paper: 21%–39% latency reduction for session establishment/modification."},
	}, nil
}
