package bench

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/overload"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/telemetry"
	"l25gc/internal/trace"
)

// The soak experiment answers the question the point-in-time benches
// cannot: does the core hold its resource envelope and latency profile
// over a sustained mixed workload — registrations, handovers, paging
// cycles, bidirectional data traffic — with a seeded mid-run NF crash
// thrown in? It runs the full observability pipeline: a streaming
// tracer (constant memory no matter how long the run) feeding the
// telemetry flight recorder and per-stage quantile sketches, manual
// sampling at round boundaries so the sample series is a function of
// the op schedule, not the host timer.
//
// Determinism contract: the op schedule is a pure function of the seed
// (hash checked by regenerating it), and the sample series STRUCTURE
// (number of phases/samples, ops per round, which UE does what) is
// seed-stable; the measured values (heap bytes, latencies) are of
// course host-dependent.

// Soak scale knobs; `make soak-smoke` shrinks them via environment.
const (
	soakUEsDefault     = 48
	soakRoundsDefault  = 8
	soakOpsDefault     = 160 // per steady round
	soakWorkersDefault = 16
	soakGNBs           = 2
)

// Steady-round op kinds.
const (
	soakOpUL   = iota // uplink burst
	soakOpDL          // downlink packet from the DN
	soakOpHO          // N2 handover to the other gNB
	soakOpPage        // idle → DL wake → paging → reconnect cycle
)

// soakOp is one scheduled operation on one UE.
type soakOp struct {
	kind int
	ue   int
}

// soakSchedule builds the full deterministic plan: rounds × ops, each
// op assigned a kind (weighted) and a UE, from a private seeded source.
func soakSchedule(seed int64, ues, rounds, ops int) [][]soakOp {
	rng := rand.New(rand.NewSource(seed))
	plan := make([][]soakOp, rounds)
	for r := range plan {
		round := make([]soakOp, ops)
		for i := range round {
			k := soakOpUL
			switch p := rng.Intn(100); {
			case p < 55:
				k = soakOpUL
			case p < 75:
				k = soakOpDL
			case p < 90:
				k = soakOpHO
			default:
				k = soakOpPage
			}
			round[i] = soakOp{kind: k, ue: rng.Intn(ues)}
		}
		plan[r] = round
	}
	return plan
}

// soakHash fingerprints a schedule (and its parameters); regenerating
// the schedule from the same seed must reproduce it exactly.
func soakHash(seed int64, ues int, plan [][]soakOp) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", seed, ues)
	for _, round := range plan {
		for _, op := range round {
			fmt.Fprintf(h, ":%d.%d", op.kind, op.ue)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// soakSeries is one named resource series across the sample sequence.
type soakSeries struct {
	Name string    `json:"name"`
	TSec []float64 `json:"tSec"`
	V    []float64 `json:"v"`
}

// soakStageSeries is one watched stage's windowed percentile series:
// element i covers the ops between sample i-1 and sample i.
type soakStageSeries struct {
	Stage string    `json:"stage"`
	Count []float64 `json:"count"`
	P50Us []float64 `json:"p50Us"`
	P99Us []float64 `json:"p99Us"`
}

// soakJSON is the machine-readable summary for BENCH_8.json.
type soakJSON struct {
	UEs          int    `json:"ues"`
	Rounds       int    `json:"rounds"`
	OpsPerRound  int    `json:"opsPerRound"`
	Workers      int    `json:"workers"`
	Seed         int64  `json:"seed"`
	ScheduleHash string `json:"scheduleHash"`

	Samples    int               `json:"samples"`
	Resources  []soakSeries      `json:"resources"`
	Stages     []soakStageSeries `json:"stages"`
	OpErrors   int64             `json:"opErrors"`
	BrokenUEs  int               `json:"brokenUEs"`
	OpsTotal   int               `json:"opsTotal"`
	ElapsedSec float64           `json:"elapsedSec"`

	Recoveries       uint64 `json:"recoveries"`
	FlightDumps      uint64 `json:"flightDumps"`
	FlightDumpReason string `json:"flightDumpReason"`
	FlightDumpEvents int    `json:"flightDumpEvents"`

	HeapFirstMB   float64 `json:"heapPostGCFirstMB"`
	HeapLastMB    float64 `json:"heapPostGCLastMB"`
	GoroutineMax  float64 `json:"goroutineMax"`
	PoolInUseLast float64 `json:"poolInUseLast"`
}

// soakWatchStages are the span names whose latency distributions the
// sampler tracks as windowed p50/p99 series (fed by the streaming
// tracer's observer, summarized by the quantile sketches).
var soakWatchStages = []string{"onvm.deliver", "upf.classify", "sbi.invoke", "ngap.encode"}

// Soak runs the deterministic multi-phase mixed workload and asserts
// the bounded-resource invariants: post-GC heap and goroutine count
// must return to (near) their early-run levels at every round boundary,
// packet-pool occupancy must return to idle at quiesce, and the seeded
// mid-run SMF crash must leave a flight-recorder dump holding the
// preceding window's spans and events.
func Soak() (*Result, error) {
	ues := stormEnvInt("L25GC_SOAK_UES", soakUEsDefault)
	rounds := stormEnvInt("L25GC_SOAK_ROUNDS", soakRoundsDefault)
	ops := stormEnvInt("L25GC_SOAK_OPS", soakOpsDefault)
	workers := stormEnvInt("L25GC_SOAK_WORKERS", soakWorkersDefault)
	if rounds < 2 {
		rounds = 2
	}
	if workers > ues {
		workers = ues
	}
	seed := stormSeed()

	// Determinism gate: the schedule must be a pure function of the seed.
	plan := soakSchedule(seed, ues, rounds, ops)
	hash := soakHash(seed, ues, plan)
	if again := soakHash(seed, ues, soakSchedule(seed, ues, rounds, ops)); again != hash {
		return nil, fmt.Errorf("soak: schedule not deterministic: %s vs %s", hash, again)
	}

	base := time.Now()
	clk := func() time.Duration { return time.Since(base) }
	tr := trace.NewStreaming(clk)
	reg := metrics.NewRegistry()
	tel := telemetry.New(telemetry.Config{
		// Manual sampling only: SampleNow at round boundaries keeps the
		// series structure a function of the schedule.
		SampleInterval: 0,
		FlightCapacity: 4096,
		WatchStages:    soakWatchStages,
		Clock:          clk,
	})
	inj := faults.New(seed)
	inj.SetTracer(trace.NewTrack(tr, "fault.injector"))

	c, err := core.New(core.Config{
		Mode: core.ModeL25GC, Subscribers: benchSubscribers(ues),
		Tracer: tr, Metrics: reg, Telemetry: tel,
		Resilience: true, FaultInjector: inj,
		Overload: true,
		// The soak is a resource-envelope test, not an overload-pressure
		// test: the controllers stay armed (their gauges feed the sample
		// series and their recovery events the flight dump), but the p99
		// admission target is lenient enough that the steady mixed
		// workload is never shed — the default 50ms target would tighten
		// on ordinary concurrent handover/paging latency and silently
		// drop HandoverRequired messages, stranding UEs in 5s timeouts.
		OverloadConfig: overload.Config{TargetP99: 2 * time.Second, Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	sup := c.Supervisor()

	gnbs := make([]*ranue.GNB, soakGNBs)
	for i := range gnbs {
		g, err := ranue.NewGNB(uint32(i+1), pkt.AddrFrom(10, 100, 2, byte(i+1)), c.N2Addr(), c)
		if err != nil {
			return nil, err
		}
		defer g.Close()
		gnbs[i] = g
	}
	c.SetN6Sink(func([]byte) {})
	dn := pkt.AddrFrom(1, 1, 1, 2)

	// --- phase: ramp (register + establish every UE) ---
	type soakUE struct {
		ue  *ranue.UE
		gnb int
	}
	sues := make([]*soakUE, ues)
	var opErrs atomic.Int64
	start := time.Now()
	if err := soakParallel(workers, ues, func(i int) error {
		su := &soakUE{ue: ranue.NewUE(fmt.Sprintf("imsi-20893000000000%d", i+1),
			[]byte("0123456789abcdef"), []byte("fedcba9876543210")), gnb: i % soakGNBs}
		if _, _, err := su.ue.RegisterWithRetry(gnbs[su.gnb], 128); err != nil {
			return fmt.Errorf("UE %d register: %w", i, err)
		}
		if _, _, err := su.ue.EstablishSessionWithRetry(uint32(i%15+1), "internet", 128); err != nil {
			return fmt.Errorf("UE %d session: %w", i, err)
		}
		sues[i] = su
		return nil
	}); err != nil {
		return nil, err
	}
	runtime.GC()
	tel.SampleNow() // sample 0: end of ramp

	// --- phase: steady rounds, seeded SMF crash halfway ---
	// A UE whose op fails (the realistic case: its page was swallowed by
	// the SMF failover window, stranding it in idle — the UPF sends ONE
	// downlink-data report per buffering episode, so no retry can revive
	// it) is marked broken: its remaining ops and its drain deregistration
	// are skipped, and the acceptance gate bounds how many may break.
	// L25GC_SOAK_CRASH=0 disables the mid-run crash (the sampler-overhead
	// measurement wants a fault-free run); the flight-dump acceptance is
	// then skipped.
	crashRound := rounds / 2
	if stormEnvInt("L25GC_SOAK_CRASH", 1) == 0 {
		crashRound = -1
	}
	var recovered uint64
	broken := make([]atomic.Bool, ues)
	var errMu sync.Mutex
	var errSample []string
	failUE := func(i int, err error) {
		broken[i].Store(true)
		opErrs.Add(1)
		errMu.Lock()
		if len(errSample) < 5 {
			errSample = append(errSample, fmt.Sprintf("UE %d: %v", i, err))
		}
		errMu.Unlock()
	}
	doOp := func(op soakOp) error {
		su := sues[op.ue]
		switch op.kind {
		case soakOpUL:
			return su.ue.SendUplink(dn, 40000, 9000, []byte("soak-ul"))
		case soakOpDL:
			buf := make([]byte, 96)
			n, err := pkt.BuildUDPv4(buf, dn, su.ue.IP(), 9000, 40000, 0, []byte("soak-dl"))
			if err != nil {
				return err
			}
			return c.InjectDL(buf[:n])
		case soakOpHO:
			su.gnb = 1 - su.gnb
			_, err := su.ue.Handover(gnbs[su.gnb])
			return err
		default: // soakOpPage
			if err := su.ue.GoIdle(); err != nil {
				return err
			}
			buf := make([]byte, 96)
			n, err := pkt.BuildUDPv4(buf, dn, su.ue.IP(), 9000, 40000, 0, []byte("wake"))
			if err != nil {
				return err
			}
			if err := c.InjectDL(buf[:n]); err != nil {
				return err
			}
			_, err = su.ue.AwaitPagingAndReconnect(10 * time.Second)
			return err
		}
	}
	runOps := func(round []soakOp, keep func(soakOp) bool) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker owns the UEs with index ≡ w (mod workers), so
				// per-UE op order follows the schedule exactly.
				for _, op := range round {
					if op.ue%workers != w || !keep(op) || broken[op.ue].Load() {
						continue
					}
					if err := doOp(op); err != nil {
						failUE(op.ue, err)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	all := func(soakOp) bool { return true }
	isData := func(op soakOp) bool { return op.kind == soakOpUL || op.kind == soakOpDL }
	for r := 0; r < rounds; r++ {
		if r == crashRound {
			// The paper's headline resilience claim: the data plane keeps
			// forwarding while the control plane fails over. Crash the SMF,
			// run the round's UL/DL ops CONCURRENTLY with the failover
			// (they ride the UPF and never touch the crashed NF), and only
			// then resume the control-plane ops — whose 5s UE timeouts
			// would otherwise all expire inside the seconds-long
			// detect+promote+replay window.
			inj.Crash(fmt.Sprintf("smf.g%d", sup.Unit("smf").Gen()))
			runOps(plan[r], isData)
			if err := sup.Unit("smf").AwaitRecovery(1, 20*time.Second); err != nil {
				return nil, fmt.Errorf("soak: SMF failover never completed: %v", err)
			}
			recovered = 1
			runOps(plan[r], func(op soakOp) bool { return !isData(op) })
		} else {
			runOps(plan[r], all)
		}
		runtime.GC()
		tel.SampleNow() // sample r+1: end of round r
	}

	// --- phase: drain ---
	if err := soakParallel(workers, ues, func(i int) error {
		if broken[i].Load() {
			return nil
		}
		if err := sues[i].ue.Deregister(); err != nil {
			failUE(i, fmt.Errorf("deregister: %w", err))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	time.Sleep(100 * time.Millisecond) // let in-flight descriptors settle
	runtime.GC()
	tel.SampleNow() // final sample: quiesced
	elapsed := time.Since(start)

	// --- series extraction ---
	samples := tel.Sampler.Samples()
	wantSamples := rounds + 2
	if len(samples) != wantSamples {
		return nil, fmt.Errorf("soak: sample series has %d samples, schedule demands %d",
			len(samples), wantSamples)
	}
	get := func(s telemetry.Sample, key string) float64 { return s.Values[key] }
	series := func(name, key string) soakSeries {
		out := soakSeries{Name: name}
		for _, s := range samples {
			out.TSec = append(out.TSec, s.At.Seconds())
			out.V = append(out.V, get(s, key))
		}
		return out
	}
	heap := series("heap_bytes", "telemetry.heap_bytes")
	gor := series("goroutines", "telemetry.goroutines")
	pool := series("pool_in_use", "onvm.pool.in_use")
	var stages []soakStageSeries
	for _, st := range soakWatchStages {
		ss := soakStageSeries{Stage: st}
		for _, s := range samples {
			basek := "telemetry.stage." + st
			ss.Count = append(ss.Count, get(s, basek+".count"))
			ss.P50Us = append(ss.P50Us, get(s, basek+".p50_us"))
			ss.P99Us = append(ss.P99Us, get(s, basek+".p99_us"))
		}
		stages = append(stages, ss)
	}

	// --- acceptance: bounded resources across phases ---
	// Post-GC levels at the first steady-round boundary are the baseline;
	// the run fails if the final boundary shows unbounded growth.
	mb := func(b float64) float64 { return b / (1 << 20) }
	heapFirst, heapLast := heap.V[1], heap.V[len(heap.V)-1]
	if heapLast > heapFirst*2+48*(1<<20) {
		return nil, fmt.Errorf("soak: post-GC heap grew from %.1fMB to %.1fMB across phases (leak)",
			mb(heapFirst), mb(heapLast))
	}
	gorFirst, gorLast := gor.V[1], gor.V[len(gor.V)-1]
	if gorLast > gorFirst+64 {
		return nil, fmt.Errorf("soak: goroutines grew from %.0f to %.0f across phases (leak)",
			gorFirst, gorLast)
	}
	if last := pool.V[len(pool.V)-1]; last > 64 {
		return nil, fmt.Errorf("soak: packet pool still holds %.0f buffers at quiesce (leak)", last)
	}
	totalOps := rounds * ops
	brokenUEs := 0
	for i := range broken {
		if broken[i].Load() {
			brokenUEs++
		}
	}
	if limit := maxInt(2, ues/10); brokenUEs > limit {
		return nil, fmt.Errorf("soak: %d of %d UEs broke mid-run (limit %d); first errors: %s",
			brokenUEs, ues, limit, strings.Join(errSample, "; "))
	}

	// --- acceptance: the crash left a flight-recorder dump ---
	dump := tel.LastDump()
	dumpReason, dumpEvents := "", 0
	if dump != nil {
		dumpReason, dumpEvents = dump.Reason, len(dump.Events)
	}
	if crashRound >= 0 {
		if tel.Dumps() == 0 || dump == nil {
			return nil, fmt.Errorf("soak: SMF crash produced no flight-recorder dump")
		}
		if !strings.HasPrefix(dump.Reason, "supervisor.promote") {
			return nil, fmt.Errorf("soak: last dump reason %q, want supervisor.promote.*", dump.Reason)
		}
		var sawSpan, sawRecoveryEvent bool
		for _, ev := range dump.Events {
			if ev.Kind == telemetry.KindSpan {
				sawSpan = true
			}
			if ev.Name == "overload.recovery_enter" || ev.Name == "supervisor.replay" {
				sawRecoveryEvent = true
			}
		}
		if !sawSpan || !sawRecoveryEvent {
			return nil, fmt.Errorf("soak: dump missing preceding-window records (spans=%v recovery=%v, %d events)",
				sawSpan, sawRecoveryEvent, len(dump.Events))
		}
	}

	// --- report ---
	tab := metrics.NewTable("sample", "phase", "t", "heapMB", "goroutines", "pool", "deliver p99", "sbi p99")
	phaseName := func(i int) string {
		switch {
		case i == 0:
			return "ramp"
		case i == len(samples)-1:
			return "drain"
		case i-1 == crashRound:
			return fmt.Sprintf("round %d (crash)", i-1)
		default:
			return fmt.Sprintf("round %d", i-1)
		}
	}
	us := func(v float64) string { return fmt.Sprintf("%.0fµs", v) }
	for i := range samples {
		tab.Row(i, phaseName(i), fmt.Sprintf("%.2fs", heap.TSec[i]),
			fmt.Sprintf("%.1f", mb(heap.V[i])), int(gor.V[i]), int(pool.V[i]),
			us(stages[0].P99Us[i]), us(stages[2].P99Us[i]))
	}

	js := soakJSON{
		UEs: ues, Rounds: rounds, OpsPerRound: ops, Workers: workers,
		Seed: seed, ScheduleHash: hash,
		Samples:   len(samples),
		Resources: []soakSeries{heap, gor, pool},
		Stages:    stages,
		OpErrors:  opErrs.Load(),
		BrokenUEs: brokenUEs, OpsTotal: totalOps,
		ElapsedSec: elapsed.Seconds(),
		Recoveries: recovered, FlightDumps: tel.Dumps(),
		FlightDumpReason: dumpReason, FlightDumpEvents: dumpEvents,
		HeapFirstMB: mb(heapFirst), HeapLastMB: mb(heapLast),
		GoroutineMax: maxOf(gor.V), PoolInUseLast: pool.V[len(pool.V)-1],
	}
	return &Result{
		ID:    "soak",
		Title: "Mixed-workload soak: resource and per-stage latency series over time",
		Table: tab,
		Notes: []string{
			fmt.Sprintf("%d UEs, %d steady rounds × %d mixed ops (UL/DL/handover/paging), SMF crash in round %d; %d op errors, %d UEs broken; %.1fs.",
				ues, rounds, ops, crashRound, opErrs.Load(), brokenUEs, elapsed.Seconds()),
			fmt.Sprintf("schedule hash %s (seed %d, regeneration-checked); %d samples at op-schedule boundaries.",
				hash, seed, len(samples)),
			fmt.Sprintf("bounded resources: post-GC heap %.1f→%.1fMB, goroutines %.0f→%.0f, pool in_use %0.f at quiesce.",
				mb(heapFirst), mb(heapLast), gorFirst, gorLast, pool.V[len(pool.V)-1]),
			fmt.Sprintf("flight recorder: %d dump(s), last %q with %d events from the pre-crash window.",
				tel.Dumps(), dumpReason, dumpEvents),
		},
		JSON: js,
	}, nil
}

// soakParallel runs fn(i) for i in [0,n) over `workers` goroutines with
// deterministic index ownership (worker w handles i ≡ w mod workers),
// returning the first error.
func soakParallel(workers, n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := fn(i); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	return <-errc
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
