package bench

import (
	"time"

	"l25gc/internal/core"
	"l25gc/internal/ranue"
)

// The exported hooks below let the repository-root Go benchmarks
// (bench_test.go) drive the same scenarios the experiment generators use,
// one event per benchmark iteration.

// RunEventTimes runs the four UE events once on a fresh core in the given
// mode and returns their completion times (one Fig. 8 data point).
func RunEventTimes(mode core.Mode) (ranue.EventTimes, error) {
	return eventTimes(mode)
}

// RunFailoverScenario executes the live §5.5.1 failover once, returning
// detection latency, recovery (restore+replay) latency and the number of
// replayed messages.
func RunFailoverScenario() (detect, failover time.Duration, replayed int, err error) {
	return failoverScenario()
}

// RunReattach measures the live 3GPP reattach baseline once.
func RunReattach() (time.Duration, error) { return reattachTime() }

// NewDataPlaneHarness builds an attached core + session for raw
// packet-level benchmarking. The returned cleanup must be called.
func NewDataPlaneHarness(mode core.Mode) (*DPH, func(), error) {
	h, cleanup, err := newDPHarness(mode)
	if err != nil {
		return nil, nil, err
	}
	return &DPH{h: h}, cleanup, nil
}

// DPH wraps the data-plane harness for external benchmarks.
type DPH struct{ h *dpHarness }

// OneWayDL pushes one DL packet of the given payload size through the
// pipeline and waits for UE delivery.
func (d *DPH) OneWayDL(payload int) error {
	_, err := d.h.latency(payload, 1)
	return err
}

// Throughput offers count packets and returns achieved pps (UL and DL).
func (d *DPH) Throughput(payload, count int, ul, dl bool) (float64, float64) {
	return d.h.throughput(payload, count, ul, dl)
}
