package bench

import (
	"fmt"
	"math"

	"l25gc/internal/codec"
	"l25gc/internal/metrics"
	"l25gc/internal/sbi"
)

// fig9Ops are the "selected control plane messages" of Fig. 9, chosen for
// importance and frequency.
func fig9Ops() []struct {
	op  sbi.OpID
	req func() codec.Message
} {
	return []struct {
		op  sbi.OpID
		req func() codec.Message
	}{
		{sbi.OpUEAuthenticationsPost, func() codec.Message {
			return &sbi.AuthenticationRequest{SuciOrSupi: "imsi-208930000000001", ServingNetworkName: "5G:mnc093.mcc208"}
		}},
		{sbi.OpGenerateAuthData, func() codec.Message {
			return &sbi.AuthInfoRequest{SuciOrSupi: "imsi-208930000000001", ServingNetworkName: "5G:mnc093.mcc208"}
		}},
		{sbi.OpGetSMSubscriptionData, func() codec.Message {
			return &sbi.SubscriptionDataRequest{Supi: "imsi-208930000000001", Dnn: "internet"}
		}},
		{sbi.OpPostSmContexts, func() codec.Message { return fig6Message() }},
		{sbi.OpUpdateSmContext, func() codec.Message {
			return &sbi.SmContextUpdateRequest{SmContextRef: "smctx-1", HoState: "PREPARING", DataForwarding: true}
		}},
		{sbi.OpSMPolicyCreate, func() codec.Message {
			return &sbi.SMPolicyCreateRequest{Supi: "imsi-208930000000001", PduSessionID: 5, Dnn: "internet", Sst: 1}
		}},
	}
}

// fig9Handler answers every selected op with its response model.
func fig9Handler(op sbi.OpID, req codec.Message) (codec.Message, error) {
	resp := op.NewResponse()
	if resp == nil {
		return nil, fmt.Errorf("no response model for %s", op.Name())
	}
	return resp, nil
}

// Fig9 measures per-message round-trip latency over HTTP/JSON (the
// free5GC SBI) and shared memory, reporting the speedup.
func Fig9() (*Result, error) {
	const iters = 200
	httpSrv, err := sbi.NewHTTPServer("127.0.0.1:0", codec.JSON{}, fig9Handler)
	if err != nil {
		return nil, err
	}
	defer httpSrv.Close()
	httpConn := sbi.NewHTTPConn(httpSrv.Addr(), codec.JSON{})
	defer httpConn.Close()

	shmConn, shmSrv := sbi.NewShmPair(512, fig9Handler)
	defer shmSrv.Close()
	defer shmConn.Close()

	tab := metrics.NewTable("message", "HTTP/JSON", "shm (L25GC)", "speedup")
	var logSum float64
	n := 0
	for _, f := range fig9Ops() {
		f := f
		// Warm up both transports (connection establishment etc.).
		if _, err := httpConn.Invoke(f.op, f.req()); err != nil {
			return nil, fmt.Errorf("%s over HTTP: %w", f.op.Name(), err)
		}
		if _, err := shmConn.Invoke(f.op, f.req()); err != nil {
			return nil, fmt.Errorf("%s over shm: %w", f.op.Name(), err)
		}
		req := f.req()
		h := measure(iters, func() { httpConn.Invoke(f.op, req) })
		s := measure(iters, func() { shmConn.Invoke(f.op, req) })
		speedup := float64(h) / float64(s)
		logSum += math.Log(speedup)
		n++
		tab.Row(f.op.Name(), h, s, fmt.Sprintf("%.1fx", speedup))
	}
	geo := math.Exp(logSum / float64(n))
	return &Result{
		ID:    "fig9",
		Title: "Communication speedup of shared memory over the HTTP SBI",
		Table: tab,
		Notes: []string{
			fmt.Sprintf("geometric-mean speedup: %.1fx (paper reports ~13x average)", geo),
		},
	}, nil
}
