package bench

import (
	"fmt"
	"time"

	"l25gc/internal/pkt"

	"l25gc/internal/classifier"
	"l25gc/internal/metrics"
)

// fig11Sizes are the rule-set sizes swept in Fig. 11.
var fig11Sizes = []int{2, 10, 60, 100, 500, 1000, 5000}

// lookupLatency measures the mean PDR lookup latency over a rule set,
// probing a rule in the second half of the list as §5.3 specifies.
func lookupLatency(c classifier.Classifier, ruleSet []*classifierRule, iters int) time.Duration {
	key := ruleSet[len(ruleSet)/2+len(ruleSet)/4].key
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.Lookup(&key)
	}
	return time.Since(start) / time.Duration(iters)
}

type classifierRule struct {
	key classifier.Key
}

// buildSet installs n rules of the given generation mode into c and
// returns probe keys.
func buildSet(c classifier.Classifier, mode classifier.GenMode, n int) []*classifierRule {
	gen := classifier.NewGenerator(mode, 11)
	out := make([]*classifierRule, n)
	for i, p := range gen.Generate(n) {
		c.Insert(p)
		out[i] = &classifierRule{key: classifier.KeyFor(p)}
	}
	return out
}

// Fig11 regenerates the PDR lookup comparison: latency (a) and throughput
// (b) for PDR-LL, PDR-TSS best/worst case, and PDR-PS as rules grow.
func Fig11() (*Result, error) {
	tab := metrics.NewTable("rules", "PDR-LL", "PDR-TSS_Best", "PDR-TSS_Worst", "PDR-PS", "PS lookups/s")
	const iters = 20000
	for _, n := range fig11Sizes {
		ll := classifier.NewLinear()
		llSet := buildSet(ll, classifier.GenRealistic, n)
		llLat := lookupLatency(ll, llSet, iters)

		best := classifier.NewTSS()
		bestSet := buildSet(best, classifier.GenTSSBest, n)
		bestLat := lookupLatency(best, bestSet, iters)

		worst := classifier.NewTSS()
		worstSet := buildSet(worst, classifier.GenTSSWorst, n)
		worstIters := iters
		if n >= 1000 {
			worstIters = 2000 // the worst case is deliberately slow
		}
		// §5.3: "we assume the match is in the last sub-table", i.e. the
		// full tuple space is traversed before the lookup resolves. A
		// probe outside every rule's region forces exactly that traversal
		// (short-prefix sub-tables would otherwise answer early).
		_ = worstSet
		worstKey := classifier.Key{Tuple: pkt.FiveTuple{
			Src: pkt.AddrFrom(255, 255, 255, 255), Dst: pkt.AddrFrom(255, 255, 254, 255),
			SrcPort: 65535, DstPort: 65534, Protocol: 254,
		}}
		start := time.Now()
		for i := 0; i < worstIters; i++ {
			worst.Lookup(&worstKey)
		}
		worstLat := time.Since(start) / time.Duration(worstIters)

		ps := classifier.NewPartitionSort()
		psSet := buildSet(ps, classifier.GenRealistic, n)
		psLat := lookupLatency(ps, psSet, iters)

		tab.Row(n, llLat, bestLat, worstLat, psLat,
			fmt.Sprintf("%.1fM", 1/psLat.Seconds()/1e6))
	}
	return &Result{
		ID:    "fig11",
		Title: "PDR lookup latency vs rule count (throughput is 1/latency at 68B packets)",
		Table: tab,
		Notes: []string{
			"paper: TSS worst-case blows up (2.9us at just 100 rules); TSS best-case is flat;",
			"LL grows linearly and loses to TSS_Best past ~60 rules; PS is best overall (~20x vs LL).",
		},
	}, nil
}

// PDRUpdate regenerates the §5.3 update-latency comparison: the average
// latency of a single PDR update repeated 50 times.
func PDRUpdate() (*Result, error) {
	const repeats = 50
	tab := metrics.NewTable("algorithm", "update @100 rules", "update @1000 rules", "paper")
	paper := map[string]string{"ll": "0.38us", "tss": "1.41us", "ps": "6.14us"}
	for _, name := range []string{"ll", "tss", "ps"} {
		var lat [2]time.Duration
		for i, rules := range []int{100, 1000} {
			c := classifier.New(name)
			buildSet(c, classifier.GenRealistic, rules)
			extra := classifier.NewGenerator(classifier.GenRealistic, 23).Generate(1)[0]
			extra.ID = 1 << 30
			start := time.Now()
			for r := 0; r < repeats; r++ {
				c.Insert(extra)
				c.Remove(extra.ID)
			}
			lat[i] = time.Since(start) / time.Duration(2*repeats)
		}
		tab.Row("PDR-"+name, lat[0], lat[1], paper[name])
	}
	return &Result{
		ID:    "pdrupdate",
		Title: "Single PDR update latency (insert/remove averaged, 50 repeats)",
		Table: tab,
		Notes: []string{"paper ordering: LL cheapest, then TSS, then PS — the difference is not substantial."},
	}, nil
}
