package bench

import (
	"strings"
	"testing"

	"l25gc/internal/core"
)

func TestCatalogueIntegrity(t *testing.T) {
	exps := Experiments()
	if len(exps) != 21 {
		t.Fatalf("catalogue has %d experiments, want 21 (every table+figure, plus recovery, trace, scale, storm, soak and partition)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.Title != e.Title {
			t.Fatalf("ByID(%q) mismatch", e.ID)
		}
	}
	for _, want := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"pdrupdate", "fig12", "table1", "table2", "smartbuf", "fig15", "fig16", "fig17",
		"recovery", "ablation", "trace", "scale", "storm", "soak", "partition"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID should not resolve")
	}
	if len(IDs()) != 21 {
		t.Fatal("IDs() incomplete")
	}
}

// TestFastExperimentsProduceTables runs the quick experiments end to end
// and sanity-checks their output structure (the slow live sweeps are
// exercised by cmd/bench5gc and the repository benchmarks).
func TestFastExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment generators are not short")
	}
	// "storm" is deliberately absent: even its smoke size is a
	// multi-second two-core run, gated end to end by `make storm-smoke`.
	for _, id := range []string{"fig6", "fig7", "pdrupdate", "smartbuf", "fig16", "recovery", "ablation", "trace", "scale"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := ByID(id)
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id || res.Table == nil {
				t.Fatalf("result %+v", res)
			}
			out := res.Table.String()
			if !strings.Contains(out, "---") || len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("table too small:\n%s", out)
			}
		})
	}
}

func TestSmartBufMatchesPaperNumbers(t *testing.T) {
	res, err := SmartBuf()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table.String()
	// Eq. 1: 800 drops; Eq. 2: 20 ms hairpin penalty — exact quantities.
	if !strings.Contains(out, "800") || !strings.Contains(out, "20ms") {
		t.Fatalf("smartbuf table lost the paper's quantities:\n%s", out)
	}
}

func TestFig8OrderingHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("live cores are not short")
	}
	// One run per mode: L²5GC must beat free5GC on the SBI-heavy events.
	free, err := eventTimes(core.ModeFree5GC)
	if err != nil {
		t.Fatal(err)
	}
	l25, err := eventTimes(core.ModeL25GC)
	if err != nil {
		t.Fatal(err)
	}
	if l25.Registration >= free.Registration {
		t.Errorf("registration: L25GC %v !< free5GC %v", l25.Registration, free.Registration)
	}
	if l25.Session >= free.Session {
		t.Errorf("session: L25GC %v !< free5GC %v", l25.Session, free.Session)
	}
}
