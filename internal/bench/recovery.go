package bench

import (
	"fmt"
	"os"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/resilience"
	"l25gc/internal/rules"
	"l25gc/internal/supervisor"
	"l25gc/internal/trace"
)

// recoveryRow is one NF's measured recovery under the supervisor.
type recoveryRow struct {
	nf       string
	detect   time.Duration
	downtime time.Duration
	replayed int
}

// supervisedUPFRecovery crashes a supervised UPF mid-burst: a session is
// established and checkpointed, then a FAR update and a DL data burst
// land post-checkpoint, the crash strikes, and ten more frames arrive at
// the dead primary (lost there, held in the log). The measured recovery
// must replay all of it into the promoted generation.
func supervisedUPFRecovery(tr *trace.Tracer) (recoveryRow, error) {
	row := recoveryRow{nf: "UPF"}
	inj := faults.New(1)
	sup := supervisor.New(supervisor.Config{Tracer: tr})
	defer sup.Close()
	n3 := pkt.AddrFrom(10, 100, 0, 2)
	ueIP := pkt.AddrFrom(10, 60, 0, 1)
	unit, err := sup.Register(supervisor.UnitConfig{
		Name: "upf", Injector: inj,
		Spawn: func(_ *supervisor.Unit, _ int) (supervisor.Instance, error) {
			return supervisor.NewUPFInstance(n3), nil
		},
	})
	if err != nil {
		return row, err
	}

	est := &pfcp.SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 77, UEIP: ueIP,
		CreatePDRs: []*rules.PDR{
			{ID: 1, Precedence: 32,
				PDI:                rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true, TEID: 0x9001, TEIDAddr: n3, UEIP: ueIP, HasUEIP: true},
				OuterHeaderRemoval: true, FARID: 1},
			{ID: 2, Precedence: 32,
				PDI:   rules.PDI{SourceInterface: rules.IfCore, UEIP: ueIP, HasUEIP: true},
				FARID: 2},
		},
		CreateFARs: []*rules.FAR{
			{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
			{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
				HasOuterHeader: true, OuterTEID: 0x5001, OuterAddr: pkt.AddrFrom(10, 100, 0, 10)},
		},
	}
	if _, err := unit.Ingress(resilience.ULControl, pfcp.Marshal(est, 77, true, 1)); err != nil {
		return row, err
	}
	if err := unit.Checkpoint(); err != nil {
		return row, err
	}

	// Post-checkpoint: a mid-handover buffering update plus a DL burst —
	// the log tail the promoted replica must replay.
	mod := &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
	}
	if _, err := unit.Ingress(resilience.ULControl, pfcp.Marshal(mod, 77, true, 2)); err != nil {
		return row, err
	}
	dl := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(dl, benchDN, ueIP, 9000, 40000, 0, make([]byte, 32))
	for i := 0; i < 20; i++ {
		if _, err := unit.Ingress(resilience.DLData, dl[:n]); err != nil {
			return row, err
		}
	}
	inj.Crash("upf.g0")
	for i := 0; i < 10; i++ {
		unit.Ingress(resilience.DLData, dl[:n]) // lost at the primary, kept in the log
	}
	if err := unit.AwaitRecovery(1, 5*time.Second); err != nil {
		return row, err
	}
	stats := unit.LastRecovery()

	// The promoted generation must hold the session with the buffering
	// FAR applied — zero session loss.
	st := unit.Active().(*supervisor.UPFInstance).State()
	ctx, ok := st.Session(77)
	if !ok {
		return row, fmt.Errorf("promoted UPF lost the session")
	}
	if far := ctx.Sess.FAR(2); far == nil || far.Action&rules.FARBuffer == 0 {
		return row, fmt.Errorf("replayed FAR update missing on promoted UPF")
	}
	row.detect, row.downtime, row.replayed = stats.Detect, stats.Downtime, stats.Replayed
	return row, nil
}

// supervisedCPRecovery runs a resilience-enabled core with live UE
// traffic, then crashes the SMF and the AMF in turn and reads each
// unit's measured recovery.
func supervisedCPRecovery(tr *trace.Tracer) (smfRow, amfRow recoveryRow, err error) {
	smfRow, amfRow = recoveryRow{nf: "SMF"}, recoveryRow{nf: "AMF"}
	inj := faults.New(2)
	c, err := core.New(core.Config{
		Mode: core.ModeL25GC, Subscribers: benchSubscribers(1),
		Resilience: true, FaultInjector: inj, Tracer: tr,
	})
	if err != nil {
		return smfRow, amfRow, err
	}
	defer c.Stop()
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		return smfRow, amfRow, err
	}
	defer g.Close()
	ue := ranue.NewUE("imsi-208930000000001", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if _, err := ue.Register(g); err != nil {
		return smfRow, amfRow, err
	}
	if _, err := ue.EstablishSession(5, "internet"); err != nil {
		return smfRow, amfRow, err
	}

	sup := c.Supervisor()
	for _, step := range []struct {
		row    *recoveryRow
		unit   *supervisor.Unit
		target string
	}{
		{&smfRow, sup.Unit("smf"), "smf.g0"},
		{&amfRow, sup.Unit("amf"), "amf.g0"},
	} {
		inj.Crash(step.target)
		if err := step.unit.AwaitRecovery(1, 5*time.Second); err != nil {
			return smfRow, amfRow, fmt.Errorf("%s: %w", step.target, err)
		}
		stats := step.unit.LastRecovery()
		step.row.detect, step.row.downtime, step.row.replayed =
			stats.Detect, stats.Downtime, stats.Replayed
	}

	// Zero session loss across both control-plane failovers.
	smfNF := sup.Unit("smf").Active().(*supervisor.SMFInstance).S
	if n := smfNF.Sessions(); n != 1 {
		return smfRow, amfRow, fmt.Errorf("promoted SMF holds %d sessions, want 1", n)
	}
	return smfRow, amfRow, nil
}

// Recovery regenerates the §3.5 resiliency comparison per NF: supervised
// failover (detection latency, replay depth, measured service
// interruption) against the 3GPP free5GC baseline, where the NF restarts
// empty and the UE must re-register and re-establish its session. With
// -trace-out, the supervisor.failover spans (promote / replay / resync
// children) land in "<prefix>-recovery.json".
func Recovery() (*Result, error) {
	tr := trace.New()
	upfRow, err := supervisedUPFRecovery(tr)
	if err != nil {
		return nil, fmt.Errorf("upf recovery: %w", err)
	}
	smfRow, amfRow, err := supervisedCPRecovery(tr)
	if err != nil {
		return nil, fmt.Errorf("control-plane recovery: %w", err)
	}
	reattach, err := reattachTime()
	if err != nil {
		return nil, fmt.Errorf("reattach baseline: %w", err)
	}

	tab := metrics.NewTable("NF failure", "detection", "replay depth",
		"interruption (L25GC resiliency)", "interruption (free5GC restart+reattach)")
	for _, r := range []recoveryRow{upfRow, amfRow, smfRow} {
		tab.Row(r.nf, r.detect, r.replayed, r.downtime, reattach)
	}

	notes := []string{
		"L25GC: heartbeat detection + promote/replay from the counter-stamped packet log;",
		"sessions survive, the UE never re-registers. The baseline restarts the NF empty,",
		"so the interruption is a full re-registration + session re-establishment.",
		"replay depth 0 means every applied message was checkpoint-covered at the crash.",
	}
	if TraceOut != "" {
		path := fmt.Sprintf("%s-recovery.json", TraceOut)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("recovery spans written to %s (open in ui.perfetto.dev)", path))
	}
	return &Result{
		ID:    "recovery",
		Title: "NF failure recovery: supervisor resiliency vs 3GPP restart+reattach",
		Table: tab,
		Notes: notes,
	}, nil
}
