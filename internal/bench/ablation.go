package bench

import (
	"fmt"
	"net"
	"time"

	"l25gc/internal/classifier"
	"l25gc/internal/metrics"
	"l25gc/internal/resilience"
	"l25gc/internal/shm"
	"l25gc/internal/upf"
)

// Ablation regenerates the design-choice studies DESIGN.md §5 calls out:
// A1 transport choice, A4 checkpoint cadence, A5 classifier under churn.
func Ablation() (*Result, error) {
	tab := metrics.NewTable("ablation", "variant", "result")

	// A1: descriptor-ring pass vs Go channel vs kernel UDP socket for a
	// 64-byte message hand-off.
	{
		const iters = 20000
		mb := shm.NewMailbox[[]byte](1024)
		msg := make([]byte, 64)
		ringLat := measure(iters, func() {
			mb.Send(msg)
			mb.Recv()
		})
		ch := make(chan []byte, 1024)
		chanLat := measure(iters, func() {
			ch <- msg
			<-ch
		})
		a, _ := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		b, _ := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		defer a.Close()
		defer b.Close()
		bAddr := b.LocalAddr().(*net.UDPAddr)
		rbuf := make([]byte, 256)
		sockLat := measure(2000, func() {
			a.WriteToUDP(msg, bAddr)
			b.ReadFromUDP(rbuf)
		})
		tab.Row("A1 transport", "descriptor ring", ringLat)
		tab.Row("A1 transport", "go channel", chanLat)
		tab.Row("A1 transport", "kernel UDP socket", sockLat)
	}

	// A4: checkpoint cadence — per-event sync vs periodic delta, measured
	// as time to push 200 control events through a checkpointing UPF.
	{
		const events = 200
		run := func(everyN int) time.Duration {
			st := upf.NewState("ps", 0)
			snap := resilience.NewUPFSnapshotter(st, benchDN)
			remote := resilience.NewRemoteReplica(resilience.NewUPFSnapshotter(upf.NewState("ps", 0), benchDN))
			start := time.Now()
			for i := 1; i <= events; i++ {
				st.CreateSession(uint64(i), benchDN)
				if i%everyN == 0 {
					b, _ := snap.Snapshot()
					remote.Apply(resilience.Checkpoint{Counter: uint64(i), State: b}.Encode())
				}
			}
			return time.Since(start)
		}
		tab.Row("A4 checkpointing", "per UE event (Neutrino-style)", run(1))
		tab.Row("A4 checkpointing", "periodic (every 20 events, L25GC)", run(20))
	}

	// A5: classifier choice under mixed lookups+updates (1000 rules,
	// 10% updates) — the operational regime where PS's update cost could
	// in principle bite.
	{
		const ops = 20000
		for _, name := range []string{"ll", "tss", "ps"} {
			c := classifier.New(name)
			set := classifier.NewGenerator(classifier.GenRealistic, 3).Generate(1000)
			for _, p := range set {
				c.Insert(p)
			}
			key := classifier.KeyFor(set[700])
			extra := classifier.NewGenerator(classifier.GenRealistic, 9).Generate(1)[0]
			extra.ID = 1 << 30
			start := time.Now()
			for i := 0; i < ops; i++ {
				if i%10 == 0 {
					c.Insert(extra)
					c.Remove(extra.ID)
				} else {
					c.Lookup(&key)
				}
			}
			tab.Row("A5 classifier 90/10 mix", "PDR-"+name, time.Since(start)/time.Duration(ops))
		}
	}

	return &Result{
		ID:    "ablation",
		Title: "Design-choice ablations",
		Table: tab,
		Notes: []string{
			"A1 motivates the shared-memory SBI; A4 motivates periodic over per-event",
			"checkpoints (§3.5.1 reason 2); A5 shows PS wins even with a 10% update mix.",
			fmt.Sprintf("A2/A3 (UPF split, buffer placement) are covered by fig10/smartbuf."),
		},
	}, nil
}
