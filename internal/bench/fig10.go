package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/gtp"
	"l25gc/internal/metrics"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
)

// fig10Sizes are the swept packet sizes (payload bytes of the inner IP
// packet; the paper sweeps 64B..1500B frames).
var fig10Sizes = []int{64, 128, 256, 512, 1024, 1400}

// dpHarness is one attached core with a session, ready for raw packet
// injection on both sides.
type dpHarness struct {
	core    *core.Core
	ue      *ranue.UE
	ueIP    pkt.Addr
	upfTEID uint32

	dlRecv atomic.Uint64 // frames delivered to the gNB
	ulRecv atomic.Uint64 // packets delivered to the DN
}

func newDPHarness(mode core.Mode) (*dpHarness, func(), error) {
	c, err := core.New(core.Config{Mode: mode, Subscribers: benchSubscribers(2)})
	if err != nil {
		return nil, nil, err
	}
	h := &dpHarness{core: c}
	cleanup := func() { c.Stop() }
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	cleanup2 := func() { g.Close(); c.Stop() }
	h.ue = ranue.NewUE("imsi-208930000000001", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if _, err := h.ue.Register(g); err != nil {
		cleanup2()
		return nil, nil, err
	}
	if _, err := h.ue.EstablishSession(5, "internet"); err != nil {
		cleanup2()
		return nil, nil, err
	}
	time.Sleep(30 * time.Millisecond)
	h.ueIP = h.ue.IP()
	// Count DL deliveries at the UE and UL deliveries at the DN.
	h.ue.OnData = func([]byte) { h.dlRecv.Add(1) }
	c.SetN6Sink(func([]byte) { h.ulRecv.Add(1) })

	// Discover the UPF's UL TEID by sending one probe through the UE.
	ctx, ok := c.UPFState.ByUEIP(h.ueIP)
	if !ok {
		cleanup2()
		return nil, nil, fmt.Errorf("session missing at UPF")
	}
	h.upfTEID = ctx.LocalTEID
	return h, cleanup2, nil
}

// ulFrame builds a GTP-U encapsulated UL frame with the given inner
// payload size.
func (h *dpHarness) ulFrame(payload int) []byte {
	inner := make([]byte, pkt.IPv4MinLen+pkt.UDPLen+payload)
	n, _ := pkt.BuildUDPv4(inner, h.ueIP, benchDN, 40000, 9000, 0, make([]byte, payload))
	frame := make([]byte, n+32)
	hd := gtp.Header{MsgType: gtp.MsgGPDU, TEID: h.upfTEID, HasQFI: true, QFI: 9, PDUType: 1}
	hn, _ := hd.Encode(frame, n)
	copy(frame[hn:], inner[:n])
	return frame[:hn+n]
}

// dlPacket builds a plain-IP DL packet with the given payload size.
func (h *dpHarness) dlPacket(payload int) []byte {
	buf := make([]byte, pkt.IPv4MinLen+pkt.UDPLen+payload)
	n, _ := pkt.BuildUDPv4(buf, benchDN, h.ueIP, 9000, 40000, 0, make([]byte, payload))
	return buf[:n]
}

// throughput measures the pipeline's sustained forwarding rate in
// packets/sec. Packets are offered in bounded batches (small enough to fit
// every buffer on the path), and each batch is timed from first send to
// full delivery — so the measurement reflects per-packet processing cost,
// not queue-overflow losses. On the paper's testbed MoonGen offers line
// rate from a separate machine; on one shared CPU bounded batches are the
// honest equivalent.
func (h *dpHarness) throughput(payload, count int, ul, dl bool) (ulPps, dlPps float64) {
	ulF := h.ulFrame(payload)
	dlP := h.dlPacket(payload)
	const batch = 128
	h.ulRecv.Store(0)
	h.dlRecv.Store(0)
	var busy time.Duration
	sent := 0
	for sent < count {
		n := batch
		if count-sent < n {
			n = count - sent
		}
		wantUL := h.ulRecv.Load()
		wantDL := h.dlRecv.Load()
		if ul {
			wantUL += uint64(n)
		}
		if dl {
			wantDL += uint64(n)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if ul {
				for h.core.SendUL(ulF) != nil {
					time.Sleep(10 * time.Microsecond)
				}
			}
			if dl {
				for h.core.InjectDL(dlP) != nil {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}
		// Drain deadline is deliberately short: kernel-socket UDP drops
		// tail packets of a burst (as the real free5GC does at line rate),
		// and a lost packet should cost its loss, not a long timeout.
		deadline := time.Now().Add(50 * time.Millisecond)
		for (h.ulRecv.Load() < wantUL || h.dlRecv.Load() < wantDL) && time.Now().Before(deadline) {
			time.Sleep(20 * time.Microsecond)
		}
		busy += time.Since(start)
		sent += n
	}
	el := busy.Seconds()
	return float64(h.ulRecv.Load()) / el, float64(h.dlRecv.Load()) / el
}

// latency measures mean end-to-end one-way latency at a low offered rate.
func (h *dpHarness) latency(payload, count int) (time.Duration, error) {
	times := make(chan time.Duration, count)
	sendT := make([]time.Time, count+1)
	var idx atomic.Uint64
	h.ue.OnData = func(p []byte) {
		i := idx.Add(1)
		if int(i) <= count {
			times <- time.Since(sendT[i-1])
		}
	}
	defer func() { h.ue.OnData = func([]byte) { h.dlRecv.Add(1) } }()
	dlP := h.dlPacket(payload)
	var total time.Duration
	got := 0
	for i := 0; i < count; i++ {
		sendT[i] = time.Now()
		if err := h.core.InjectDL(dlP); err != nil {
			return 0, err
		}
		select {
		case d := <-times:
			total += d
			got++
		case <-time.After(time.Second):
			return 0, fmt.Errorf("latency probe %d lost", i)
		}
	}
	if got == 0 {
		return 0, fmt.Errorf("no latency samples")
	}
	return total / time.Duration(got), nil
}

// Fig10 regenerates the data-plane comparison: throughput (uni- and
// bidirectional) and mean end-to-end latency across packet sizes, for the
// kernel-socket path (free5GC) and the shared-memory path (L²5GC).
func Fig10() (*Result, error) {
	const pkts = 3000
	tab := metrics.NewTable("size(B)", "system", "UL pps", "DL pps", "bidir pps", "DL latency")
	for _, mode := range []core.Mode{core.ModeFree5GC, core.ModeL25GC} {
		h, cleanup, err := newDPHarness(mode)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", mode, err)
		}
		for _, size := range fig10Sizes {
			ul, _ := h.throughput(size, pkts, true, false)
			_, dl := h.throughput(size, pkts, false, true)
			bu, bd := h.throughput(size, pkts/2, true, true)
			lat, err := h.latency(size, 50)
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("%v latency: %w", mode, err)
			}
			tab.Row(size, mode.String(),
				fmt.Sprintf("%.0f", ul), fmt.Sprintf("%.0f", dl),
				fmt.Sprintf("%.0f", bu+bd), lat)
		}
		cleanup()
	}
	return &Result{
		ID:    "fig10",
		Title: "Data plane throughput and mean end-to-end latency vs packet size",
		Table: tab,
		Notes: []string{
			"paper: 27x UL/DL throughput gain at 64B and ~15x latency gain for L25GC;",
			"free5GC improves slightly with packet size as fixed per-packet cost amortizes.",
		},
	}, nil
}
