// Package bench is the evaluation harness: one generator per table and
// figure in the paper's §5, each reproducing the experiment's workload on
// this repository's implementations and printing the same rows/series the
// paper reports. cmd/bench5gc is the CLI front end; the *_test.go files in
// the repository root expose the same experiments as Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"

	"l25gc/internal/metrics"
)

// SchemaVersion is the version of the -bench-out JSON envelope
// ({schemaVersion, goVersion, goMaxProcs, generatedAt, experiments});
// bump it when the envelope (not an experiment's payload) changes shape
// so checked-in BENCH_<n>.json files stay comparable.
const SchemaVersion = 1

// Result is one regenerated experiment.
type Result struct {
	ID    string // "fig6", "table1", ...
	Title string
	Table *metrics.Table
	Notes []string
	// JSON, when non-nil, is the experiment's machine-readable summary;
	// bench5gc -bench-out collects these into one JSON document (the
	// checked-in BENCH_<n>.json files).
	JSON any
}

// Print renders the result.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	if r.Table != nil {
		r.Table.Write(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a runnable experiment generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// Experiments returns the full catalogue in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig6", "Serialization, deserialization, protocol overheads", Fig6},
		{"fig7", "Latency of single control plane message between UPF/SMF", Fig7},
		{"fig8", "Total control plane latency for different UE events", Fig8},
		{"fig9", "Communication speedup over HTTP", Fig9},
		{"fig10", "Data plane throughput and latency vs packet size", Fig10},
		{"fig11", "PDR lookup latency and throughput vs number of rules", Fig11},
		{"pdrupdate", "PDR update latency comparison (§5.3)", PDRUpdate},
		{"fig12", "Impact of handovers on application (PLT, RTT, cwnd, goodput)", Fig12},
		{"table1", "Control and data plane behavior during paging", Table1},
		{"table2", "Control and data plane behavior during handover", Table2},
		{"smartbuf", "Smart buffering benefit: Eq.1 drops and Eq.2 one-way delay", SmartBuf},
		{"fig15", "5GC failover: control plane recovery and data plane continuity", Fig15},
		{"fig16", "5GC failover during an ongoing handover", Fig16},
		{"fig17", "Repeated handovers with 10 TCP connections (Appendix C)", Fig17},
		{"recovery", "NF failure recovery: supervisor resiliency vs 3GPP restart+reattach", Recovery},
		{"ablation", "Design-choice ablations (DESIGN.md §5)", Ablation},
		{"scale", "Descriptor-switch scaling: throughput vs switch workers", Scale},
		{"trace", "Traced session establishment: per-stage transport breakdown", Trace},
		{"storm", "Registration storm: overload control vs uncontrolled collapse", Storm},
		{"soak", "Mixed-workload soak: resource and per-stage latency series over time", Soak},
		{"partition", "N4 partition: detection, degraded-mode goodput, post-heal reconciliation", Partition},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment IDs.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
