package bench

import (
	"context"
	"fmt"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/homodel"
	"l25gc/internal/metrics"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/traffic"
)

// higherRTTThreshold classifies a packet as "experiencing higher RTT"
// (the Tables 1 & 2 column): anything an order of magnitude above the
// sub-millisecond base RTT.
const higherRTTThreshold = 5 * time.Millisecond

// echoHarness wires a live core so that DL packets from the DN probe are
// echoed back uplink by the UE, giving the generator an RTT per packet.
type echoHarness struct {
	h     *dpHarness
	probe *traffic.RTTProbe
}

func newEchoHarness(mode core.Mode) (*echoHarness, func(), error) {
	h, cleanup, err := newDPHarness(mode)
	if err != nil {
		return nil, nil, err
	}
	e := &echoHarness{h: h, probe: traffic.NewRTTProbe(higherRTTThreshold)}
	// UE echoes every DL payload back uplink.
	h.ue.OnData = func(ipPkt []byte) {
		var p pkt.Parsed
		if p.ParseIPv4(ipPkt) != nil {
			return
		}
		payload := append([]byte(nil), p.Payload...)
		h.ue.SendUplink(benchDN, p.UDP.DstPort, p.UDP.SrcPort, payload)
	}
	// The DN resolves echoes to RTT samples.
	h.core.SetN6Sink(func(ipPkt []byte) {
		var p pkt.Parsed
		if p.ParseIPv4(ipPkt) == nil {
			e.probe.Ack(p.Payload)
		}
	})
	return e, cleanup, nil
}

// sendDL stamps and injects one DL probe packet.
func (e *echoHarness) sendDL() error {
	payload := make([]byte, 32)
	if _, err := e.probe.Stamp(payload); err != nil {
		return err
	}
	buf := make([]byte, 128)
	n, err := pkt.BuildUDPv4(buf, benchDN, e.h.ueIP, 9000, 40000, 0, payload)
	if err != nil {
		return err
	}
	return e.h.core.InjectDL(buf[:n])
}

// cbr runs a DL CBR stream of count packets at ratePps.
func (e *echoHarness) cbr(ratePps, count int) error {
	return traffic.RunCBR(context.Background(), ratePps, count, func(int) error {
		return e.sendDL()
	})
}

// settle waits for in-flight echoes to drain.
func (e *echoHarness) settle() {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.probe.Outstanding() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pagingRow runs the Table 1 experiment for one mode.
type pagingRow struct {
	baseRTT    time.Duration
	pagingTime time.Duration
	rttAfter   time.Duration
	higher     uint64
}

func runPaging(mode core.Mode) (*pagingRow, error) {
	e, cleanup, err := newEchoHarness(mode)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	const rate = 10000 // 10 Kpps as in §5.4.2

	// Phase 1: base RTT with the UE active.
	if err := e.cbr(rate, 1000); err != nil {
		return nil, err
	}
	e.settle()
	row := &pagingRow{baseRTT: e.probe.Hist.Mean()}

	// Phase 2: UE sleeps; DL data triggers paging; packets buffer at the
	// UPF and drain once the UE reconnects.
	if err := e.h.ue.GoIdle(); err != nil {
		return nil, err
	}
	e.probe.Hist.Reset()
	pagingDone := make(chan error, 1)
	go func() {
		t, err := e.h.ue.AwaitPagingAndReconnect(5 * time.Second)
		row.pagingTime = t
		pagingDone <- err
	}()
	if err := e.cbr(rate, 2000); err != nil {
		return nil, err
	}
	if err := <-pagingDone; err != nil {
		return nil, fmt.Errorf("paging: %w", err)
	}
	e.settle()
	row.rttAfter = e.probe.Hist.Max() // worst queue-drain RTT after paging
	row.higher = uint64(e.probe.Hist.CountAbove(4 * row.baseRTT))
	return row, nil
}

// Table1 regenerates the paging-event table (and the Fig. 13 series).
func Table1() (*Result, error) {
	tab := metrics.NewTable("system", "Base RTT", "Paging time", "RTT after paging", "#Pkts RTT>4x base")
	for _, mode := range []core.Mode{core.ModeFree5GC, core.ModeL25GC} {
		row, err := runPaging(mode)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", mode, err)
		}
		tab.Row(mode.String(), row.baseRTT, row.pagingTime, row.rttAfter, row.higher)
	}
	return &Result{
		ID:    "table1",
		Title: "Control and data plane behavior during a paging event (10 Kpps DL)",
		Table: tab,
		Notes: []string{
			"paper: base RTT 116us -> 25us (4x), paging 59ms -> 28ms (~2x),",
			"RTT after paging 63ms -> 30ms, and fewer than half the packets see higher RTT.",
		},
	}, nil
}

// hoRow is one Table 2 row.
type hoRow struct {
	baseRTT  time.Duration
	hoTime   time.Duration
	rttAfter time.Duration
	higher   uint64
	dropped  int
}

func runHandover(mode core.Mode, concurrent bool) (*hoRow, error) {
	e, cleanup, err := newEchoHarness(mode)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	g2, err := ranue.NewGNB(2, pkt.AddrFrom(10, 100, 0, 11), e.h.core.N2Addr(), e.h.core)
	if err != nil {
		return nil, err
	}
	defer g2.Close()

	// Optional concurrent session (expt ii): a second UE with its own CBR.
	var stopOther context.CancelFunc
	if concurrent {
		ue2 := ranue.NewUE("imsi-208930000000002", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
		g1b, err := ranue.NewGNB(3, pkt.AddrFrom(10, 100, 0, 12), e.h.core.N2Addr(), e.h.core)
		if err != nil {
			return nil, err
		}
		defer g1b.Close()
		if _, err := ue2.Register(g1b); err != nil {
			return nil, err
		}
		if _, err := ue2.EstablishSession(5, "internet"); err != nil {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithCancel(context.Background())
		stopOther = cancel
		ue2IP := ue2.IP()
		go traffic.RunCBR(ctx, 5000, 1<<30, func(int) error {
			buf := make([]byte, 128)
			n, _ := pkt.BuildUDPv4(buf, benchDN, ue2IP, 9000, 40001, 0, make([]byte, 32))
			return e.h.core.InjectDL(buf[:n])
		})
		defer cancel()
	}

	const rate = 10000
	if err := e.cbr(rate, 1000); err != nil {
		return nil, err
	}
	e.settle()
	row := &hoRow{baseRTT: e.probe.Hist.Mean()}
	e.probe.Hist.Reset()

	// Handover at "1 second": run CBR and trigger HO concurrently.
	hoDone := make(chan error, 1)
	go func() {
		t, err := e.h.ue.Handover(g2)
		row.hoTime = t
		hoDone <- err
	}()
	if err := e.cbr(rate, 3000); err != nil {
		return nil, err
	}
	if err := <-hoDone; err != nil {
		return nil, fmt.Errorf("handover: %w", err)
	}
	e.settle()
	row.rttAfter = e.probe.Hist.Max()
	row.higher = uint64(e.probe.Hist.CountAbove(4 * row.baseRTT))
	row.dropped = e.probe.Outstanding()
	if stopOther != nil {
		stopOther()
	}
	return row, nil
}

// Table2 regenerates the handover-event table (and the Fig. 14 series).
func Table2() (*Result, error) {
	tab := metrics.NewTable("system", "Base RTT", "HO time", "RTT after HO", "#Pkts RTT>4x base", "#Pkts dropped")
	for _, expt := range []struct {
		name       string
		concurrent bool
	}{{"expt i", false}, {"expt ii", true}} {
		for _, mode := range []core.Mode{core.ModeFree5GC, core.ModeL25GC} {
			row, err := runHandover(mode, expt.concurrent)
			if err != nil {
				return nil, fmt.Errorf("%v %s: %w", mode, expt.name, err)
			}
			tab.Row(fmt.Sprintf("%s (%s)", mode, expt.name),
				row.baseRTT, row.hoTime, row.rttAfter, row.higher, row.dropped)
		}
	}
	return &Result{
		ID:    "table2",
		Title: "Control and data plane behavior during a handover (10 Kpps DL)",
		Table: tab,
		Notes: []string{
			"paper: HO time 227ms -> 130ms (expt i) and 231ms -> 132ms (expt ii);",
			"free5GC drops up to 43 packets in expt ii even with a 3K buffer; L25GC drops none.",
		},
	}, nil
}

// SmartBuf regenerates the Eq. 1 / Eq. 2 analysis of §5.4.2.
func SmartBuf() (*Result, error) {
	tab := metrics.NewTable("case", "drops L25GC", "drops 3GPP", "OWD L25GC", "OWD 3GPP", "hairpin penalty")
	for _, c := range homodel.PaperCases() {
		tab.Row(c.Name, c.DropsL25GC, c.Drops3GPP, c.OWDL25GC, c.OWD3GPP, c.OWD3GPP-c.OWDL25GC)
	}
	return &Result{
		ID:    "smartbuf",
		Title: "Smart buffering benefit: packet drops (Eq. 1) and one-way delay (Eq. 2)",
		Table: tab,
		Notes: []string{
			"t_HO = 130 ms, DL = 10 Kpps, 10 ms UPF<->gNB propagation;",
			"paper: ~800 drops in the equal-buffer case for both schemes; zero at the UPF with",
			"1500-packet buffering while the gNB still loses ~800; hairpin adds 20 ms.",
		},
	}, nil
}
