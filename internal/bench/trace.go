package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/metrics"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/trace"
)

// TraceOut, when non-empty, makes the trace experiment also write each
// mode's Chrome trace-event JSON to "<TraceOut>-<mode>.json" (loadable in
// ui.perfetto.dev). Set by cmd/bench5gc's -trace-out flag.
var TraceOut string

// tracedEstablishment runs one registration + session establishment on a
// fresh traced core and returns the PFCP establishment breakdown plus the
// tracer (for export).
func tracedEstablishment(mode core.Mode) (*trace.Breakdown, *trace.Tracer, error) {
	tr := trace.New()
	c, err := core.New(core.Config{
		Mode: mode, Subscribers: benchSubscribers(1), Tracer: tr,
	})
	if err != nil {
		return nil, nil, err
	}
	defer c.Stop()
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		return nil, nil, err
	}
	defer g.Close()
	ue := ranue.NewUE("imsi-208930000000001", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if _, err := ue.Register(g); err != nil {
		return nil, nil, fmt.Errorf("registration: %w", err)
	}
	if _, err := ue.EstablishSession(5, "internet"); err != nil {
		return nil, nil, fmt.Errorf("session: %w", err)
	}
	time.Sleep(20 * time.Millisecond) // let DL activation settle into the trace
	bd := tr.Breakdown("pfcp.request.session_establishment")
	if bd == nil {
		return nil, nil, fmt.Errorf("%v: no establishment span recorded", mode)
	}
	return bd, tr, nil
}

// Trace runs a traced PFCP session establishment on the free5GC baseline
// and on L²5GC and prints the two stage breakdowns side by side: the
// kernel path pays encode/syscall/decode on every N4 exchange, the
// shared-memory path replaces all three with one descriptor transfer.
func Trace() (*Result, error) {
	modes := []core.Mode{core.ModeFree5GC, core.ModeL25GC}
	bds := make(map[core.Mode]*trace.Breakdown)
	for _, m := range modes {
		bd, tr, err := tracedEstablishment(m)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", m, err)
		}
		bds[m] = bd
		if TraceOut != "" {
			f, err := os.Create(fmt.Sprintf("%s-%s.json", TraceOut, m))
			if err != nil {
				return nil, err
			}
			if err := tr.WriteChrome(f); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
	}

	// Union of stage names across modes, one row each; "-" marks a stage
	// the mode's transport does not pay.
	totals := make(map[core.Mode]map[string]time.Duration)
	names := map[string]bool{}
	for m, bd := range bds {
		totals[m] = make(map[string]time.Duration)
		for _, st := range bd.Stages {
			totals[m][st.Name] = st.Total
			names[st.Name] = true
		}
	}
	var order []string
	for n := range names {
		order = append(order, n)
	}
	sort.Strings(order)

	tab := metrics.NewTable("stage", "free5GC", "L25GC")
	cell := func(m core.Mode, name string) any {
		if d, ok := totals[m][name]; ok {
			return d
		}
		return "-"
	}
	for _, n := range order {
		tab.Row(n, cell(core.ModeFree5GC, n), cell(core.ModeL25GC, n))
	}
	tab.Row("(end-to-end)", bds[core.ModeFree5GC].Window, bds[core.ModeL25GC].Window)

	notes := []string{
		fmt.Sprintf("coverage: free5GC %.1f%%, L25GC %.1f%% of the establishment window attributed",
			100*bds[core.ModeFree5GC].Coverage, 100*bds[core.ModeL25GC].Coverage),
		"the shm N4 has no pfcp.encode / pfcp.tx.syscall / pfcp.rx.decode rows:",
		"descriptor passing removes serialization and socket crossings (paper Fig. 6).",
	}
	if TraceOut != "" {
		notes = append(notes, fmt.Sprintf("Chrome traces written to %s-<mode>.json (open in ui.perfetto.dev)", TraceOut))
	}
	return &Result{
		ID:    "trace",
		Title: "Traced PFCP session establishment: per-stage breakdown by transport",
		Table: tab,
		Notes: notes,
	}, nil
}
