package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/faults"
	"l25gc/internal/lb"
	"l25gc/internal/metrics"
	"l25gc/internal/netsim"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/ranue"
	"l25gc/internal/resilience"
	"l25gc/internal/rules"
	"l25gc/internal/upf"
)

// ErrUnitCrashed reports a message delivered to a unit the fault injector
// has marked crashed; the message is lost at that unit (but remains in the
// LB's replay log).
var ErrUnitCrashed = fmt.Errorf("bench: unit crashed")

// upfUnit adapts a UPF (state + fast path) to the LB's Backend interface:
// control messages are PFCP session management, data messages are GTP
// frames run through the fast path.
type upfUnit struct {
	state *upf.State
	upfc  *upf.UPFC
	upfu  *upf.UPFU
	pool  *pktbuf.Pool

	inj     *faults.Injector
	target  string
	ingress faults.Point

	forwarded atomic.Uint64
}

func newUPFUnit(n3 pkt.Addr) *upfUnit {
	st := upf.NewState("ps", 0)
	c := upf.NewUPFC(st, n3, nil)
	u := upf.NewUPFU(st, c)
	return &upfUnit{state: st, upfc: c, upfu: u, pool: pktbuf.NewPool(4096, "unit")}
}

// setInjector binds the unit to a fault injector under the given target
// name; Deliver then runs every message through the target's ".ingress"
// point and rejects traffic once the target is crashed.
func (u *upfUnit) setInjector(inj *faults.Injector, target string) {
	u.inj = inj
	u.target = target
	u.ingress = faults.Point(target + ".ingress")
}

// Deliver implements lb.Backend.
func (u *upfUnit) Deliver(class resilience.Class, counter uint64, data []byte) error {
	if u.inj != nil {
		act := u.inj.Decide(u.ingress, data)
		if u.inj.Crashed(u.target) {
			// The crash may have been fired by this very message's rule:
			// either way the unit is dead and the message is lost here.
			return fmt.Errorf("%w: %s", ErrUnitCrashed, u.target)
		}
		if act.Drop {
			return fmt.Errorf("bench: unit %s: ingress message dropped", u.target)
		}
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
	}
	switch class {
	case resilience.ULControl, resilience.DLControl:
		_, msg, err := pfcp.Parse(data)
		if err != nil {
			return err
		}
		var seid uint64
		switch m := msg.(type) {
		case *pfcp.SessionEstablishmentRequest:
			seid = m.CPSEID
		default:
			// Modification/deletion carry the SEID in the header.
			hdr, _, _ := pfcp.Parse(data)
			seid = hdr.SEID
		}
		_, err = u.upfc.Handle(seid, msg)
		return err
	default:
		buf, err := u.pool.Get()
		if err != nil {
			return err
		}
		if err := buf.SetData(data); err != nil {
			buf.Release()
			return err
		}
		buf.Meta.Uplink = class == resilience.ULData
		var scratch pkt.Parsed
		if u.upfu.Process(buf, &scratch) {
			if buf.Meta.Action == pktbuf.ActionToPort {
				u.forwarded.Add(1)
			}
			buf.Release()
		}
		return nil
	}
}

// FailoverOptions parameterizes FailoverScenario for chaos testing.
type FailoverOptions struct {
	// Injector, when set, drives the failure: the primary unit rejects
	// traffic once Injector.Crashed(CrashTarget) is true (whether a Crash
	// rule fired it at the primary's ingress point or the scenario forced
	// it), and the probe agent uses Injector.AliveProbe(CrashTarget).
	Injector *faults.Injector
	// CrashTarget names the primary in the injector's crash registry
	// (default "upf.primary"); its ingress point is CrashTarget+".ingress".
	CrashTarget string
	// ForceCrash, with an Injector, crashes the primary explicitly after
	// the mid-handover messages even if no Crash rule fired. Without an
	// Injector the crash always happens (the original experiment).
	ForceCrash bool
}

// FailoverResult reports the scenario's measurements.
type FailoverResult struct {
	Detect         time.Duration // probe start -> failure declared
	Failover       time.Duration // replica unfreeze + replay
	Replayed       int           // messages replayed to the standby
	LostDeliveries int           // ingress messages the dead primary rejected
}

// failoverScenario runs the §5.5.1 control-plane experiment with the
// default (non-chaos) failure trigger, for Fig15.
func failoverScenario() (detect, failover time.Duration, replayed int, err error) {
	r, err := FailoverScenario(FailoverOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	return r.Detect, r.Failover, r.Replayed, nil
}

// FailoverScenario runs the §5.5.1 control-plane experiment: a failure
// strikes mid-handover; the standby resumes from checkpoint + replay. The
// chaos suite drives it with a fault injector so the crash, the liveness
// probe and the lost deliveries all flow through one seeded schedule.
func FailoverScenario(opts FailoverOptions) (*FailoverResult, error) {
	n3 := pkt.AddrFrom(10, 100, 0, 2)
	ueIP := pkt.AddrFrom(10, 60, 0, 1)
	gnbIP := pkt.AddrFrom(10, 100, 0, 10)
	primary := newUPFUnit(n3)
	standby := newUPFUnit(n3)
	if opts.CrashTarget == "" {
		opts.CrashTarget = "upf.primary"
	}
	if opts.Injector != nil {
		primary.setInjector(opts.Injector, opts.CrashTarget)
	}
	balancer := lb.New(primary, standby, 0)
	res := &FailoverResult{}

	// ingress tolerates deliveries rejected by a crashed primary: the
	// message is logged at the LB either way and recovered by replay.
	ingress := func(class resilience.Class, data []byte) error {
		err := balancer.Ingress(class, data)
		if err != nil && opts.Injector != nil && opts.Injector.Crashed(opts.CrashTarget) {
			res.LostDeliveries++
			return nil
		}
		return err
	}

	// 1. Session establishment through the LB (logged, counter-stamped).
	est := &pfcp.SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 77, UEIP: ueIP,
		CreatePDRs: []*rules.PDR{
			{ID: 1, Precedence: 32,
				PDI:                rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true, TEID: 0x9001, TEIDAddr: n3, UEIP: ueIP, HasUEIP: true},
				OuterHeaderRemoval: true, FARID: 1},
			{ID: 2, Precedence: 32,
				PDI:   rules.PDI{SourceInterface: rules.IfCore, UEIP: ueIP, HasUEIP: true},
				FARID: 2},
		},
		CreateFARs: []*rules.FAR{
			{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
			{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
				HasOuterHeader: true, OuterTEID: 0x5001, OuterAddr: gnbIP},
		},
	}
	if err := ingress(resilience.ULControl, pfcp.Marshal(est, 77, true, 1)); err != nil {
		return nil, err
	}

	// 2. Periodic delta checkpoint: primary state -> remote replica.
	snap := resilience.UPFSnapshotter{State: primary.state, UPFC: primary.upfc}
	remote := resilience.NewRemoteReplica(&resilience.UPFSnapshotter{State: standby.state, UPFC: standby.upfc})
	remote.OnAck = balancer.AckCheckpoint
	stateBytes, err := snap.Snapshot()
	if err != nil {
		return nil, err
	}
	cp := resilience.Checkpoint{Counter: balancer.Logger.Counter(), State: stateBytes}
	if err := remote.Apply(cp.Encode()); err != nil {
		return nil, err
	}

	// 3. Half the handover executes after the checkpoint: the buffering
	// FAR update is logged at the LB but NOT yet checkpointed.
	mod := &pfcp.SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
	}
	if err := ingress(resilience.ULControl, pfcp.Marshal(mod, 77, true, 2)); err != nil {
		return nil, err
	}
	// Data packets in flight are logged too. With an injector, a Crash rule
	// can fire at the primary's ingress point partway through this burst.
	dl := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(dl, benchDN, ueIP, 9000, 40000, 0, make([]byte, 32))
	for i := 0; i < 20; i++ {
		if err := ingress(resilience.DLData, dl[:n]); err != nil {
			return nil, err
		}
	}

	// 4. The primary dies; the probe agent detects it.
	var alive atomic.Bool
	alive.Store(true)
	probe := func() bool { return alive.Load() }
	if opts.Injector != nil {
		probe = opts.Injector.AliveProbe(opts.CrashTarget)
	}
	detected := make(chan time.Duration, 1)
	det := &resilience.Detector{
		Probe:     probe,
		Interval:  100 * time.Microsecond,
		Misses:    3,
		OnFailure: func(dt time.Duration) { detected <- dt },
	}
	det.Start()
	defer det.Stop()
	time.Sleep(time.Millisecond)
	switch {
	case opts.Injector == nil:
		alive.Store(false)
	case opts.ForceCrash || !opts.Injector.Crashed(opts.CrashTarget):
		opts.Injector.Crash(opts.CrashTarget)
	}
	select {
	case res.Detect = <-detected:
	case <-time.After(2 * time.Second):
		return nil, fmt.Errorf("failure never detected")
	}

	// 5. Unfreeze the remote replica (restores the checkpoint) and replay
	// everything newer through the LB — control first by counter order.
	start := time.Now()
	replayAfter, err := remote.Unfreeze()
	if err != nil {
		return nil, err
	}
	res.Replayed, err = balancer.Failover(replayAfter)
	if err != nil {
		return nil, err
	}
	res.Failover = time.Since(start)

	// Verify: the standby holds the session *with the mid-handover FAR
	// update applied* (buffered, not forwarded).
	ctx, ok := standby.state.Session(77)
	if !ok {
		return nil, fmt.Errorf("standby lost the session")
	}
	if far := ctx.Sess.FAR(2); far == nil || far.Action&rules.FARBuffer == 0 {
		return nil, fmt.Errorf("replayed handover state missing")
	}
	if st := ctx.Stats(); st.Buffered == 0 {
		return nil, fmt.Errorf("replayed data packets were not buffered (stats %+v)", st)
	}
	return res, nil
}

// reattachTime measures the 3GPP baseline: after a failure the UE must
// re-register and re-establish its session on a fresh core (free5GC
// flavour), measured live.
func reattachTime() (time.Duration, error) {
	c, err := core.New(core.Config{Mode: core.ModeFree5GC, Subscribers: benchSubscribers(1)})
	if err != nil {
		return 0, err
	}
	defer c.Stop()
	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		return 0, err
	}
	defer g.Close()
	ue := ranue.NewUE("imsi-208930000000001", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	start := time.Now()
	if _, err := ue.Register(g); err != nil {
		return 0, err
	}
	if _, err := ue.EstablishSession(5, "internet"); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Fig15 regenerates the failover comparison: live control-plane recovery
// (detection, replica unfreeze + replay) vs live 3GPP reattach, plus the
// simulated data-plane impact on an ongoing TCP stream.
func Fig15() (*Result, error) {
	detect, failover, replayed, err := failoverScenario()
	if err != nil {
		return nil, err
	}
	reattach, err := reattachTime()
	if err != nil {
		return nil, err
	}
	tab := metrics.NewTable("metric", "L25GC failover", "3GPP reattach")
	tab.Row("failure detection", detect, detect)
	tab.Row("recovery (restore+replay)", failover, reattach)
	tab.Row("messages replayed", replayed, "n/a (all lost)")

	// Data-plane impact (simulated TCP stream, Fig. 15a/b).
	sim := func(blackout bool, dur time.Duration) (int, int, int64) {
		s := netsim.NewSim()
		cfg := netsim.PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
		p := netsim.NewTCPPath(s, 0, cfg, 0)
		if blackout {
			p.BlackoutAt(2*time.Second, dur)
		} else {
			p.HandoverAt(2*time.Second, dur)
		}
		p.Sender.Start()
		s.Run(6 * time.Second)
		return p.Core.Dropped, p.Sender.Timeouts, p.Receiver.BytesDelivered
	}
	failDur := detect + failover
	if failDur < time.Millisecond {
		failDur = time.Millisecond
	}
	d1, t1, b1 := sim(false, failDur)
	d2, t2, b2 := sim(true, reattach)
	tab.Row("pkts dropped during failure", d1, d2)
	tab.Row("TCP timeouts", t1, t2)
	tab.Row("bytes delivered (6s run)", b1, b2)
	return &Result{
		ID:    "fig15",
		Title: "5GC failover: control plane recovery and TCP data plane continuity",
		Table: tab,
		Notes: []string{
			"paper: detection <0.5ms; handover completes in 134ms vs 130ms without failure,",
			"vs 401ms with 3GPP reattach; reattach drops ~121 in-flight packets and collapses",
			"TCP goodput, while L25GC's replay keeps throughput flat.",
		},
	}, nil
}

// Fig16 regenerates the failure-during-handover experiment: the data
// stream sees the handover buffering episode, and for 3GPP the failure
// turns it into a blackout mid-way.
func Fig16() (*Result, error) {
	const hoStart = 4500 * time.Millisecond // failure at 4.5s into the run
	run := func(reattach bool) (int, int, int64) {
		s := netsim.NewSim()
		cfg := netsim.PathConfig{BottleneckBps: 30e6, RTT: 20 * time.Millisecond, QueueCap: 200, CoreBufCap: 5000}
		p := netsim.NewTCPPath(s, 0, cfg, 0)
		if reattach {
			// Half the handover executes (65ms of buffering), then the
			// core dies: buffered packets are lost and the blackout lasts
			// until reattach completes (~401ms).
			p.HandoverAt(hoStart, 65*time.Millisecond)
			p.BlackoutAt(hoStart+65*time.Millisecond, 401*time.Millisecond)
		} else {
			// L25GC: the failover adds a few ms to the 130ms handover.
			p.HandoverAt(hoStart, 134*time.Millisecond)
		}
		p.Sender.Start()
		s.Run(10 * time.Second)
		return p.Core.Dropped, p.Sender.Timeouts, p.Receiver.BytesDelivered
	}
	dL, tL, bL := run(false)
	dF, tF, bF := run(true)
	tab := metrics.NewTable("system", "pkts dropped", "TCP timeouts", "bytes delivered (10s)")
	tab.Row("L25GC (HO+failover 134ms)", dL, tL, bL)
	tab.Row("3GPP reattach (HO interrupted)", dF, tF, bF)
	return &Result{
		ID:    "fig16",
		Title: "Failure during an ongoing handover + TCP transfer",
		Table: tab,
		Notes: []string{
			"paper: L25GC replays the interrupted handover's control packets and the buffered",
			"data; the reattach baseline loses all buffered packets and degrades goodput.",
		},
	}, nil
}
