package bench

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/metrics"
	"l25gc/internal/overload"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/telemetry"
	"l25gc/internal/trace"
)

// The storm experiment drives a mass-registration event — every device
// in a stadium powering on at once — against the L²5GC core twice: once
// with the overload layer armed (bounded admission, NAS pushback with
// backoff, priority shedding) and once without it, at the same offered
// concurrency. The controlled run must keep the p99 of admitted
// registrations a multiple below the uncontrolled run's, complete every
// UE eventually (shed UEs re-attach after their prescribed backoff), and
// lose none of the work it admitted — including the deregistration churn
// that must never be shed.

// Storm scale knobs; the smoke gate shrinks them via environment so
// `make storm-smoke` finishes in seconds while `bench5gc -exp storm`
// defaults to the full ≥100k-UE event.
const (
	stormUEsDefault      = 100000
	stormBaselineDefault = 20000
	stormGNBs            = 32
	stormWorkersDefault  = 2048
	// A full-size storm saturates admission for a minute or more; a UE
	// arriving early may legitimately be pushed back dozens of times
	// before a slot opens. UEs re-attempt on every network-prescribed
	// backoff until admitted, so the budget is sized for the worst-case
	// tail of the 100k run, not for politeness.
	stormRetries = 512
)

// Admission shape for the storm: registration is bounded tightly (it is
// the class the operator defers), session establishment more loosely.
var stormOverloadCfg = overload.Config{
	Caps: [overload.NumClasses]int64{
		overload.ClassRegistration: 8,
		overload.ClassSession:      16,
	},
	TargetP99:   40 * time.Millisecond,
	BackoffBase: 100 * time.Millisecond,
}

func stormEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func stormSeed() int64 {
	if v := os.Getenv("L25GC_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1902
}

// stormStats is one run's outcome.
type stormStats struct {
	offered   int
	attached  int64 // UEs that completed registration (possibly after rejects)
	rejects   int64 // reject round trips absorbed across all UEs
	exhausted int64 // UEs still rejected after stormRetries attempts
	failures  int64 // non-reject registration errors (timeouts, protocol)

	sessions     int64 // PDU sessions established
	sessRejects  int64
	sessFailures int64
	deregs       int64
	deregFails   int64

	elapsed  time.Duration
	regHist  *metrics.Histogram // successful-attempt registration latency
	sessHist *metrics.Histogram
	heapPeak uint64 // max HeapAlloc sampled during the run

	regHighWater  int64 // controller depth high-water (overload run only)
	sessHighWater int64
	shedTotal     uint64
	level         int
}

func (s *stormStats) goodput() float64 {
	if s.elapsed <= 0 {
		return 0
	}
	return float64(s.attached) / s.elapsed.Seconds()
}

// stormRun offers `total` registrations at fixed worker concurrency,
// with session-establishment and deregistration churn mixed in. The
// same workload runs controlled (withOverload) and uncontrolled;
// `shards` stripes the AMF/SMF UE state (1 = legacy single-lock layout).
func stormRun(total, workers int, withOverload bool, shards int, seed int64) (*stormStats, error) {
	st := &stormStats{
		offered:  total,
		regHist:  metrics.NewHistogram(),
		sessHist: metrics.NewHistogram(),
	}
	cfg := core.Config{Mode: core.ModeL25GC, Subscribers: benchSubscribers(total), NFShards: shards}
	if withOverload {
		cfg.Overload = true
		cfg.OverloadConfig = stormOverloadCfg
		cfg.OverloadConfig.Seed = seed
	}
	// L25GC_STORM_TELEMETRY=1 arms the registry + periodic sampler (the
	// sampler-overhead comparison in EXPERIMENTS.md: goodput on vs off
	// must stay within noise); =2 additionally arms the streaming tracer
	// so every span feeds the flight recorder and stage sketches, which
	// prices the whole always-on pipeline rather than just the sampler.
	if mode := stormEnvInt("L25GC_STORM_TELEMETRY", 0); mode != 0 {
		base := time.Now()
		clk := func() time.Duration { return time.Since(base) }
		if mode >= 2 {
			cfg.Tracer = trace.NewStreaming(clk)
		}
		cfg.Metrics = metrics.NewRegistry()
		cfg.Telemetry = telemetry.New(telemetry.Config{
			SampleInterval: 100 * time.Millisecond,
			WatchStages:    soakWatchStages,
			Clock:          clk,
		})
	}
	c, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	gnbs := make([]*ranue.GNB, stormGNBs)
	for i := range gnbs {
		g, err := ranue.NewGNB(uint32(i+1), pkt.AddrFrom(10, 100, 1, byte(i+1)), c.N2Addr(), c)
		if err != nil {
			return nil, err
		}
		defer g.Close()
		gnbs[i] = g
	}

	// Peak-heap sampler: the boundedness claim is about the whole run,
	// not just its endpoints.
	heapStop := make(chan struct{})
	var heapDone sync.WaitGroup
	heapDone.Add(1)
	go func() {
		defer heapDone.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > atomic.LoadUint64(&st.heapPeak) {
				atomic.StoreUint64(&st.heapPeak, ms.HeapAlloc)
			}
			select {
			case <-heapStop:
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}()

	var next atomic.Int64
	var regMu, sessMu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := gnbs[w%stormGNBs]
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				supi := fmt.Sprintf("imsi-20893000000000%d", i+1)
				ue := ranue.NewUE(supi, []byte("0123456789abcdef"), []byte("fedcba9876543210"))
				d, rejects, err := ue.RegisterWithRetry(g, stormRetries)
				atomic.AddInt64(&st.rejects, int64(rejects))
				if err != nil {
					if _, shed := ranue.AsBackoff(err); shed {
						atomic.AddInt64(&st.exhausted, 1)
					} else {
						atomic.AddInt64(&st.failures, 1)
					}
					continue
				}
				atomic.AddInt64(&st.attached, 1)
				regMu.Lock()
				st.regHist.Observe(d)
				regMu.Unlock()
				// Churn: a quarter of attached UEs bring up a PDU session;
				// half of those immediately deregister (drain-class work
				// that must survive any admission pressure).
				if i%4 != 0 {
					continue
				}
				sd, srej, serr := ue.EstablishSessionWithRetry(uint32(i%15+1), "internet", stormRetries)
				atomic.AddInt64(&st.sessRejects, int64(srej))
				if serr != nil {
					atomic.AddInt64(&st.sessFailures, 1)
					continue
				}
				atomic.AddInt64(&st.sessions, 1)
				sessMu.Lock()
				st.sessHist.Observe(sd)
				sessMu.Unlock()
				if i%8 == 0 {
					atomic.AddInt64(&st.deregs, 1)
					if err := ue.Deregister(); err != nil {
						atomic.AddInt64(&st.deregFails, 1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st.elapsed = time.Since(start)
	close(heapStop)
	heapDone.Wait()

	if ctrl := c.OverloadAMF; ctrl != nil {
		st.regHighWater = ctrl.HighWater(overload.ClassRegistration)
		st.shedTotal = ctrl.Shed(overload.ClassRegistration)
		st.level = ctrl.Level()
	}
	if ctrl := c.OverloadSMF; ctrl != nil {
		st.sessHighWater = ctrl.HighWater(overload.ClassSession)
	}
	return st, nil
}

// stormJSON is the machine-readable summary for BENCH_<n>.json.
type stormJSON struct {
	OfferedUEs     int     `json:"offeredUEs"`
	Workers        int     `json:"workers"`
	Attached       int64   `json:"attached"`
	Rejects        int64   `json:"rejects"`
	Exhausted      int64   `json:"exhausted"`
	Failures       int64   `json:"failures"`
	Sessions       int64   `json:"sessions"`
	SessionRejects int64   `json:"sessionRejects"`
	Deregs         int64   `json:"deregs"`
	ElapsedSec     float64 `json:"elapsedSec"`
	GoodputPerSec  float64 `json:"goodputRegsPerSec"`

	RegP50Ms  float64 `json:"regP50Ms"`
	RegP99Ms  float64 `json:"regP99Ms"`
	SessP50Ms float64 `json:"sessP50Ms"`
	SessP99Ms float64 `json:"sessP99Ms"`

	BaselineUEs      int     `json:"baselineUEs"`
	BaselineP50Ms    float64 `json:"baselineP50Ms"`
	BaselineP99Ms    float64 `json:"baselineP99Ms"`
	BaselineFails    int64   `json:"baselineFailures"`
	P99Improvement   float64 `json:"p99Improvement"`
	RegHighWater     int64   `json:"regQueueHighWater"`
	SessHighWater    int64   `json:"sessQueueHighWater"`
	HeapPeakMB       float64 `json:"heapPeakMB"`
	AdmitAllocsPerOp float64 `json:"admitAllocsPerOp"`
	Seed             int64   `json:"seed"`

	NFShards     int              `json:"nfShards"`
	ShardSweep   []stormShardJSON `json:"shardSweep,omitempty"`
	ShardSpeedup float64          `json:"shardSpeedup,omitempty"`
}

// stormShardJSON is one leg of the shard sweep: the same uncontrolled
// registration storm at a fixed shard count.
type stormShardJSON struct {
	Shards        int     `json:"shards"`
	Attached      int64   `json:"attached"`
	ElapsedSec    float64 `json:"elapsedSec"`
	GoodputPerSec float64 `json:"goodputRegsPerSec"`
	RegP50Ms      float64 `json:"regP50Ms"`
	RegP99Ms      float64 `json:"regP99Ms"`
}

// admitAllocsPerOp measures the admission fast path's allocation count
// outside the testing framework (the -benchmem gate duplicates this
// assertion under `go test`).
func admitAllocsPerOp() float64 {
	ctrl := overload.New("probe", overload.Config{})
	const n = 10000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		if ctrl.Admit(overload.ClassRegistration) {
			ctrl.Release(overload.ClassRegistration)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / n
}

// Storm regenerates the overload experiment: a registration storm with
// churn, controlled vs uncontrolled, with the graceful-degradation
// acceptance checks (bounded queues and heap, zero admitted-work loss,
// shed UEs re-attach, controlled p99 a multiple below uncontrolled).
func Storm() (*Result, error) {
	total := stormEnvInt("L25GC_STORM_UES", stormUEsDefault)
	baseTotal := stormEnvInt("L25GC_STORM_BASE", stormBaselineDefault)
	workers := stormEnvInt("L25GC_STORM_WORKERS", stormWorkersDefault)
	if workers > total {
		workers = total
	}
	shards := stormEnvInt("L25GC_STORM_SHARDS", runtime.GOMAXPROCS(0))
	seed := stormSeed()

	ctl, err := stormRun(total, workers, true, shards, seed)
	if err != nil {
		return nil, fmt.Errorf("storm (overload): %w", err)
	}
	base, err := stormRun(baseTotal, workers, false, shards, seed)
	if err != nil {
		return nil, fmt.Errorf("storm (baseline): %w", err)
	}

	// Shard sweep: the same uncontrolled storm with the state layer as
	// the only variable — legacy single-lock layout vs one shard per
	// core. This is where the global-lock convoy shows up: admission
	// control would cap concurrency at the gate and mask it.
	sweepTotal := stormEnvInt("L25GC_STORM_SWEEP", baseTotal)
	sweepShards := runtime.GOMAXPROCS(0)
	if sweepShards < 2 {
		sweepShards = 2
	}
	sweep1, err := stormRun(sweepTotal, workers, false, 1, seed)
	if err != nil {
		return nil, fmt.Errorf("storm (sweep 1-shard): %w", err)
	}
	sweepN, err := stormRun(sweepTotal, workers, false, sweepShards, seed)
	if err != nil {
		return nil, fmt.Errorf("storm (sweep %d-shard): %w", sweepShards, err)
	}
	shardSpeedup := 0.0
	if g := sweep1.goodput(); g > 0 {
		shardSpeedup = sweepN.goodput() / g
	}

	// --- acceptance checks ---
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	p99 := ctl.regHist.Percentile(99)
	baseP99 := base.regHist.Percentile(99)
	if base.regHist.Count() == 0 {
		baseP99 = 5 * time.Second // every baseline registration timed out
	}
	if ctl.attached != int64(ctl.offered) {
		return nil, fmt.Errorf("storm: %d of %d UEs never attached (%d exhausted retries, %d errors)",
			int64(ctl.offered)-ctl.attached, ctl.offered, ctl.exhausted, ctl.failures)
	}
	if ctl.sessFailures != 0 || ctl.deregFails != 0 {
		return nil, fmt.Errorf("storm: admitted work lost: %d session failures, %d dereg failures",
			ctl.sessFailures, ctl.deregFails)
	}
	if cap := stormOverloadCfg.Caps[overload.ClassRegistration]; ctl.regHighWater > cap {
		return nil, fmt.Errorf("storm: registration depth high-water %d exceeded cap %d",
			ctl.regHighWater, cap)
	}
	heapBudget := uint64(256<<20) + uint64(total)*(16<<10)
	if ctl.heapPeak > heapBudget {
		return nil, fmt.Errorf("storm: heap peak %d MB exceeded budget %d MB",
			ctl.heapPeak>>20, heapBudget>>20)
	}
	// The >=5x p99 contrast is the acceptance bar at full storm size
	// (>=100k UEs), where run-to-run variance amortizes away. Smoke-sized
	// runs (make storm-smoke) check the machinery, not the headline
	// number, and single-digit-second runs see ~2x scheduler/GC variance
	// on both sides of the ratio — so they gate at a relaxed 2.5x.
	minImprove := 5.0
	if total < 50000 {
		minImprove = 2.5
	}
	improvement := float64(baseP99) / float64(p99)
	if improvement < minImprove {
		return nil, fmt.Errorf("storm: controlled p99 %v is only %.1fx below uncontrolled %v (want >=%.1fx)",
			p99, improvement, baseP99, minImprove)
	}
	allocs := admitAllocsPerOp()
	if allocs >= 1 {
		return nil, fmt.Errorf("storm: admission fast path allocates (%.2f allocs/op)", allocs)
	}
	// The sharding acceptance bar — >=3x admitted-registration goodput
	// over the single-shard layout at equal-or-better p99 — only means
	// anything when shards can actually run in parallel; below 4 cores
	// the sweep is recorded but not gated (same reasoning as the relaxed
	// minImprove above). The 5% p99 tolerance absorbs percentile noise
	// on runs short enough for CI.
	sweepP99 := sweepN.regHist.Percentile(99)
	sweep1P99 := sweep1.regHist.Percentile(99)
	if runtime.GOMAXPROCS(0) >= 4 {
		if shardSpeedup < 3.0 {
			return nil, fmt.Errorf("storm: %d-shard goodput is only %.2fx the 1-shard baseline (want >=3x)",
				sweepShards, shardSpeedup)
		}
		if float64(sweepP99) > float64(sweep1P99)*1.05 {
			return nil, fmt.Errorf("storm: %d-shard reg p99 %v regressed past 1-shard %v",
				sweepShards, sweepP99, sweep1P99)
		}
	}

	tab := metrics.NewTable("run", "UEs", "attached", "rejects", "reg p50", "reg p99", "goodput/s", "heap peak")
	tab.Row("overload", ctl.offered, ctl.attached, ctl.rejects,
		ctl.regHist.Percentile(50), p99,
		fmt.Sprintf("%.0f", ctl.goodput()), fmt.Sprintf("%dMB", ctl.heapPeak>>20))
	tab.Row("baseline", base.offered, base.attached, base.rejects,
		base.regHist.Percentile(50), baseP99,
		fmt.Sprintf("%.0f", base.goodput()), fmt.Sprintf("%dMB", base.heapPeak>>20))
	tab.Row("sweep 1-shard", sweep1.offered, sweep1.attached, sweep1.rejects,
		sweep1.regHist.Percentile(50), sweep1P99,
		fmt.Sprintf("%.0f", sweep1.goodput()), fmt.Sprintf("%dMB", sweep1.heapPeak>>20))
	tab.Row(fmt.Sprintf("sweep %d-shard", sweepShards), sweepN.offered, sweepN.attached, sweepN.rejects,
		sweepN.regHist.Percentile(50), sweepP99,
		fmt.Sprintf("%.0f", sweepN.goodput()), fmt.Sprintf("%dMB", sweepN.heapPeak>>20))

	return &Result{
		ID:    "storm",
		Title: "Registration storm: admission control vs uncontrolled collapse",
		Table: tab,
		Notes: []string{
			fmt.Sprintf("%d UEs over %d gNBs at %d-worker concurrency; churn: 1/4 establish sessions (%d), 1/8 deregister (%d).",
				ctl.offered, stormGNBs, workers, ctl.sessions, ctl.deregs),
			fmt.Sprintf("shed-and-recovered: %d reject round trips absorbed, every UE attached; reg queue high-water %d (cap %d).",
				ctl.rejects, ctl.regHighWater, stormOverloadCfg.Caps[overload.ClassRegistration]),
			fmt.Sprintf("controlled p99 %v vs uncontrolled %v at the same concurrency: %.1fx better; admission fast path %.2f allocs/op.",
				p99, baseP99, improvement, allocs),
			fmt.Sprintf("shard sweep (%d UEs, uncontrolled): %d shards sustain %.2fx the 1-shard goodput (%.0f vs %.0f regs/s) at p99 %v vs %v on %d core(s); the >=3x gate asserts at >=4 cores.",
				sweepTotal, sweepShards, shardSpeedup, sweepN.goodput(), sweep1.goodput(),
				sweepP99, sweep1P99, runtime.GOMAXPROCS(0)),
		},
		JSON: stormJSON{
			OfferedUEs: ctl.offered, Workers: workers,
			Attached: ctl.attached, Rejects: ctl.rejects,
			Exhausted: ctl.exhausted, Failures: ctl.failures,
			Sessions: ctl.sessions, SessionRejects: ctl.sessRejects,
			Deregs:     ctl.deregs,
			ElapsedSec: ctl.elapsed.Seconds(), GoodputPerSec: ctl.goodput(),
			RegP50Ms: ms(ctl.regHist.Percentile(50)), RegP99Ms: ms(p99),
			SessP50Ms: ms(ctl.sessHist.Percentile(50)), SessP99Ms: ms(ctl.sessHist.Percentile(99)),
			BaselineUEs: base.offered, BaselineP50Ms: ms(base.regHist.Percentile(50)),
			BaselineP99Ms: ms(baseP99), BaselineFails: base.failures,
			P99Improvement: improvement,
			RegHighWater:   ctl.regHighWater, SessHighWater: ctl.sessHighWater,
			HeapPeakMB:       float64(ctl.heapPeak) / (1 << 20),
			AdmitAllocsPerOp: allocs,
			Seed:             seed,
			NFShards:         shards,
			ShardSweep: []stormShardJSON{
				{Shards: 1, Attached: sweep1.attached, ElapsedSec: sweep1.elapsed.Seconds(),
					GoodputPerSec: sweep1.goodput(),
					RegP50Ms:      ms(sweep1.regHist.Percentile(50)), RegP99Ms: ms(sweep1P99)},
				{Shards: sweepShards, Attached: sweepN.attached, ElapsedSec: sweepN.elapsed.Seconds(),
					GoodputPerSec: sweepN.goodput(),
					RegP50Ms:      ms(sweepN.regHist.Percentile(50)), RegP99Ms: ms(sweepP99)},
			},
			ShardSpeedup: shardSpeedup,
		},
	}, nil
}
