package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/gtp"
	"l25gc/internal/metrics"
	"l25gc/internal/onvm"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/rules"
	"l25gc/internal/upf"
)

// Scale experiment parameters: flows many UL flows, each a distinct PFCP
// session, pushed through 3 UPF-U instances behind the sharded descriptor
// switch at 1, 2 and 4 workers.
const (
	scaleFlows     = 32
	scalePerFlow   = 1500
	scaleProducers = 4
	scaleInstances = 3
)

// scaleRow is one worker-count configuration's measurement.
type scaleRow struct {
	workers  int
	pps      float64
	reorders uint64
	switched uint64
	dropped  uint64
}

// scaleRun measures sustained UL forwarding through the full fast path
// (N3 ingress, GTP decap, classification, N6 egress) at one switch-worker
// count, detecting per-flow sequence reorders at the N6 sink.
func scaleRun(workers int) (scaleRow, error) {
	row := scaleRow{workers: workers}
	n3 := pkt.AddrFrom(10, 100, 0, 2)
	st := upf.NewState("scale", 0)
	c := upf.NewUPFC(st, n3, nil)
	u := upf.NewUPFU(st, c)
	// RingSize above PoolSize bounds in-flight descriptors below every NF
	// ring's capacity: the pool throttles producers instead of overflowing
	// rings, so the run measures switching cost, not queue losses.
	mgr := onvm.NewManager(onvm.Config{
		PoolSize: 1024, RingSize: 2048, PoolPrefix: "scale", SwitchWorkers: workers,
	})
	defer mgr.Stop()

	const svc = 1
	for i := 0; i < scaleInstances; i++ {
		if _, err := u.AttachONVM(mgr, svc); err != nil {
			return row, err
		}
	}
	mgr.BindPortNF(uint16(upf.PortN3), svc)

	// Per-flow sequence tracking at the N6 sink, keyed by the flow's RSS
	// hash (flowOf is read-only once traffic starts).
	flowOf := make(map[uint64]int, scaleFlows)
	var last [scaleFlows]atomic.Uint64
	var reorders, received atomic.Uint64
	mgr.RegisterPort(uint16(upf.PortN6), func(frame []byte, meta pktbuf.Meta) {
		f, ok := flowOf[meta.RSS]
		if !ok {
			return
		}
		if prev := last[f].Load(); meta.Seq <= prev {
			reorders.Add(1)
		}
		last[f].Store(meta.Seq)
		received.Add(1)
	})

	// One PFCP session and one prebuilt UL GTP frame per flow.
	frames := make([][]byte, scaleFlows)
	rss := make([]uint64, scaleFlows)
	for f := 0; f < scaleFlows; f++ {
		ueIP := pkt.AddrFrom(10, 62, byte(f>>8), byte(f+1))
		est := &pfcp.SessionEstablishmentRequest{
			NodeID: "smf", CPSEID: uint64(9000 + f), UEIP: ueIP,
			CreatePDRs: []*rules.PDR{
				{ID: 1, Precedence: 32,
					PDI:                rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true, TEID: 0, UEIP: ueIP, HasUEIP: true},
					OuterHeaderRemoval: true, FARID: 1},
			},
			CreateFARs: []*rules.FAR{
				{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
			},
		}
		resp, err := c.Handle(uint64(9000+f), est)
		if err != nil {
			return row, err
		}
		er, ok := resp.(*pfcp.SessionEstablishmentResponse)
		if !ok || er.Cause != pfcp.CauseAccepted || len(er.CreatedPDRs) != 1 {
			return row, fmt.Errorf("flow %d: session establishment rejected", f)
		}
		teid := er.CreatedPDRs[0].TEID

		inner := make([]byte, 192)
		n, err := pkt.BuildUDPv4(inner, ueIP, benchDN, 40000, 9000, 0, make([]byte, 64))
		if err != nil {
			return row, err
		}
		raw := make([]byte, 256)
		gh := gtp.Header{MsgType: gtp.MsgGPDU, TEID: teid, HasQFI: true, QFI: 9, PDUType: 1}
		hn, err := gh.Encode(raw, n)
		if err != nil {
			return row, err
		}
		copy(raw[hn:], inner[:n])
		frames[f] = raw[:hn+n]
		rss[f] = uint64(f)*0x9e3779b97f4a7c15 + 1
		flowOf[rss[f]] = f
	}

	// Offered load: scaleProducers generators, each owning a disjoint set
	// of flows and injecting that flow's packets in sequence order.
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < scaleProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := uint64(1); seq <= scalePerFlow; seq++ {
				for f := p; f < scaleFlows; f += scaleProducers {
					meta := pktbuf.Meta{Uplink: true, RSS: rss[f], Seq: seq}
					for {
						if err := mgr.Inject(uint16(upf.PortN3), frames[f], meta); err == nil {
							break
						}
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	wg.Wait()
	want := uint64(scaleFlows * scalePerFlow)
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	if got := received.Load(); got < want {
		return row, fmt.Errorf("%d workers: delivered %d of %d frames", workers, got, want)
	}
	for f := 0; f < scaleFlows; f++ {
		if last[f].Load() != scalePerFlow {
			return row, fmt.Errorf("%d workers: flow %d ended at seq %d, want %d",
				workers, f, last[f].Load(), scalePerFlow)
		}
	}
	row.pps = float64(want) / elapsed.Seconds()
	row.reorders = reorders.Load()
	row.switched, row.dropped = mgr.Stats()
	return row, nil
}

// Scale regenerates the sharded-switch scaling experiment: UL forwarding
// rate vs switch-worker count with per-flow FIFO verification (§4, Receive
// Side Scaling). Every configuration must deliver every frame with zero
// per-flow reorders; throughput scales with worker count once GOMAXPROCS
// provides the cores to run the workers in parallel.
func Scale() (*Result, error) {
	tab := metrics.NewTable("workers", "UL pps", "reorders", "switched", "dropped", "speedup")
	var base float64
	for _, w := range []int{1, 2, 4} {
		row, err := scaleRun(w)
		if err != nil {
			return nil, err
		}
		if row.reorders != 0 {
			return nil, fmt.Errorf("%d workers: %d per-flow reorders (ordering invariant broken)",
				row.workers, row.reorders)
		}
		if w == 1 {
			base = row.pps
		}
		tab.Row(row.workers, fmt.Sprintf("%.0f", row.pps), row.reorders,
			row.switched, row.dropped, fmt.Sprintf("%.2fx", row.pps/base))
	}
	return &Result{
		ID:    "scale",
		Title: "Descriptor-switch scaling: UL throughput vs switch workers, per-flow FIFO checked",
		Table: tab,
		Notes: []string{
			fmt.Sprintf("%d flows x %d pkts through %d UPF-U instances; reorders counted per flow at the N6 sink.",
				scaleFlows, scalePerFlow, scaleInstances),
			fmt.Sprintf("GOMAXPROCS=%d: worker parallelism needs cores; on >=4 cores expect >=2x from 1 to 4 workers.",
				runtime.GOMAXPROCS(0)),
		},
	}, nil
}
