package bench

import (
	"fmt"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/metrics"
	"l25gc/internal/sbi"
)

// fig6Message builds the PostSmContextsRequest exchanged in the Fig. 6
// microbenchmark.
func fig6Message() *sbi.SmContextCreateRequest {
	return &sbi.SmContextCreateRequest{
		Supi: "imsi-208930000000001", Pei: "imeisv-4370816125816151",
		Gpsi: "msisdn-0900000000", PduSessionID: 5, Dnn: "internet",
		Sst: 1, Sd: "010203", ServingNfID: "amf-1",
		Guami: "5G:mnc093.mcc208", ServingNetwork: "208/93",
		RequestType: "INITIAL_REQUEST",
		N1SmMsg:     make([]byte, 96), // NAS PDU session establishment request
		AnType:      "3GPP_ACCESS", RatType: "NR",
		UeLocation:     "nrCellId-000000100",
		SmCtxStatusURI: "http://amf.l25gc/callback/v1/smContextStatus/1",
		GnbTunnelAddr:  "10.100.0.10", GnbTunnelTEID: 0x10001,
	}
}

// measure times fn over iters runs and returns the mean.
func measure(iters int, fn func()) time.Duration {
	// Warm up.
	for i := 0; i < iters/10+1; i++ {
		fn()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// Fig6 regenerates the serialization-cost comparison: for each codec, the
// serialize and deserialize cost of a PostSmContextsRequest and the wire
// size; the shared-memory row is the zero-cost pointer pass.
func Fig6() (*Result, error) {
	msg := fig6Message()
	tab := metrics.NewTable("encoding", "serialize", "deserialize", "total", "bytes")
	const iters = 5000
	for _, c := range codec.All() {
		c := c
		wire, err := c.Marshal(msg)
		if err != nil {
			return nil, err
		}
		ser := measure(iters, func() { c.Marshal(msg) })
		out := &sbi.SmContextCreateRequest{}
		de := measure(iters, func() { c.Unmarshal(wire, out) })
		tab.Row(c.Name(), ser, de, ser+de, len(wire))
	}
	// L²5GC: the message struct is passed by pointer through shared
	// memory; serialization cost is literally zero. Measure the pointer
	// hand-off through a descriptor mailbox for honesty.
	conn, srv := sbi.NewShmPair(64, func(op sbi.OpID, req codec.Message) (codec.Message, error) {
		return req, nil
	})
	defer srv.Close()
	defer conn.Close()
	shm := measure(2000, func() {
		conn.Invoke(sbi.OpPostSmContexts, msg)
	})
	tab.Row("shm (L25GC)", time.Duration(0), time.Duration(0), shm, 0)
	return &Result{
		ID:    "fig6",
		Title: "Serialization/deserialization cost, PostSmContextsRequest",
		Table: tab,
		Notes: []string{
			"paper: JSON is costliest; FlatBuffers/Protobuf reduce but do not remove the cost;",
			"L25GC's shared memory removes serialization entirely (the shm row's 'total' is the",
			"full round trip through the descriptor mailbox, including scheduling).",
			fmt.Sprintf("shm round trip includes request+response delivery: %v", shm),
		},
	}, nil
}
