package bench

import (
	"fmt"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/metrics"
	"l25gc/internal/nf/udr"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
)

var benchDN = pkt.AddrFrom(1, 1, 1, 1)

func benchSubscribers(n int) []udr.Subscriber {
	subs := make([]udr.Subscriber, n)
	for i := range subs {
		subs[i] = udr.Subscriber{
			Supi: fmt.Sprintf("imsi-20893000000000%d", i+1),
			K:    []byte("0123456789abcdef"),
			Opc:  []byte("fedcba9876543210"),
			Dnn:  "internet",
			Sst:  1,
		}
	}
	return subs
}

// eventTimes runs the four UE events once on a fresh core and returns the
// completion times.
func eventTimes(mode core.Mode) (ranue.EventTimes, error) {
	var times ranue.EventTimes
	c, err := core.New(core.Config{Mode: mode, Subscribers: benchSubscribers(2)})
	if err != nil {
		return times, err
	}
	defer c.Stop()
	g1, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		return times, err
	}
	defer g1.Close()
	g2, err := ranue.NewGNB(2, pkt.AddrFrom(10, 100, 0, 11), c.N2Addr(), c)
	if err != nil {
		return times, err
	}
	defer g2.Close()

	ue := ranue.NewUE("imsi-208930000000001", []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if times.Registration, err = ue.Register(g1); err != nil {
		return times, fmt.Errorf("registration: %w", err)
	}
	if times.Session, err = ue.EstablishSession(5, "internet"); err != nil {
		return times, fmt.Errorf("session: %w", err)
	}
	time.Sleep(20 * time.Millisecond) // let DL activation settle
	if times.Handover, err = ue.Handover(g2); err != nil {
		return times, fmt.Errorf("handover: %w", err)
	}
	// Paging: go idle, poke a DL packet, await the page.
	if err := ue.GoIdle(); err != nil {
		return times, fmt.Errorf("idle: %w", err)
	}
	dl := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(dl, benchDN, ue.IP(), 9000, 40000, 0, []byte("poke"))
	if err := c.InjectDL(dl[:n]); err != nil {
		return times, err
	}
	if times.Paging, err = ue.AwaitPagingAndReconnect(3 * time.Second); err != nil {
		return times, fmt.Errorf("paging: %w", err)
	}
	return times, nil
}

// Fig8 regenerates the total control-plane latency per UE event for
// vanilla free5GC, the ONVM-UPF hybrid, and L²5GC.
func Fig8() (*Result, error) {
	const runs = 3
	modes := []core.Mode{core.ModeFree5GC, core.ModeONVMUPF, core.ModeL25GC}
	sums := make(map[core.Mode]*ranue.EventTimes)
	for _, m := range modes {
		acc := &ranue.EventTimes{}
		for r := 0; r < runs; r++ {
			t, err := eventTimes(m)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", m, err)
			}
			acc.Registration += t.Registration
			acc.Session += t.Session
			acc.Handover += t.Handover
			acc.Paging += t.Paging
		}
		acc.Registration /= runs
		acc.Session /= runs
		acc.Handover /= runs
		acc.Paging /= runs
		sums[m] = acc
	}
	tab := metrics.NewTable("UE event", "free5GC", "ONVM-UPF", "L25GC", "reduction")
	row := func(name string, f func(*ranue.EventTimes) time.Duration) {
		v5, vo, vl := f(sums[core.ModeFree5GC]), f(sums[core.ModeONVMUPF]), f(sums[core.ModeL25GC])
		tab.Row(name, v5, vo, vl, fmt.Sprintf("%.0f%%", 100*(1-float64(vl)/float64(v5))))
	}
	row("UE registration", func(t *ranue.EventTimes) time.Duration { return t.Registration })
	row("PDU session request", func(t *ranue.EventTimes) time.Duration { return t.Session })
	row("N2 handover", func(t *ranue.EventTimes) time.Duration { return t.Handover })
	row("Paging (idle-active)", func(t *ranue.EventTimes) time.Duration { return t.Paging })
	return &Result{
		ID:    "fig8",
		Title: "Total control plane latency for different UE events (mean of 3 runs)",
		Table: tab,
		Notes: []string{
			"paper: ONVM-UPF slightly improves on free5GC (N4 only on shared memory);",
			"L25GC roughly halves event completion time (up to 51% reduction).",
		},
	}, nil
}
