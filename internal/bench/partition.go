package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"l25gc/internal/core"
	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/ranue"
	"l25gc/internal/sbi"
)

// The partition experiment quantifies the N4 association layer's four
// robustness figures: how fast a control-plane partition is detected
// (heartbeat misses, each carrying the full T1/N1 retransmission
// budget), how much data-plane goodput established sessions keep while
// the path is down (the degraded-mode guarantee: the answer should be
// "all of it"), how long post-heal reconciliation takes, and how much
// state it moves (sessions rebuilt after a UPF restart, orphans purged,
// journaled intents replayed). A divergence between the SMF and UPF
// SEID tables at any settle point fails the experiment.

// Partition scale knobs; `make partition-smoke` shrinks via environment.
const (
	partUEsDefault    = 12
	partWindowMsDflt  = 300 // goodput measurement window
	partOrphans       = 2   // stale UPF sessions planted for the purge phase
	partReleaseWhile  = 2   // sessions released (journaled) during the partition
	partRejectProbes  = 3   // establishment attempts while down
	partDetectMissCap = 2   // MissThreshold
)

// partitionJSON is the machine-readable summary for BENCH_9.json.
type partitionJSON struct {
	UEs         int   `json:"ues"`
	Seed        int64 `json:"seed"`
	MissThresh  int   `json:"missThreshold"`
	RetryT1Ms   int   `json:"retryT1Ms"`
	RetryN1     int   `json:"retryN1"`
	WindowMs    int   `json:"goodputWindowMs"`
	OrphansSown int   `json:"orphansPlanted"`

	// Phase 1: detection.
	DetectMs     float64 `json:"detectMs"`     // association's own first-miss→down measure
	DetectWallMs float64 `json:"detectWallMs"` // partition instant → observed Down

	// Phase 2: degraded mode.
	BaselinePps       float64 `json:"baselineGoodputPps"`
	DegradedPps       float64 `json:"degradedGoodputPps"`
	RejectedWhileDown uint64  `json:"rejectedWhileDown"`
	RejectMeanMs      float64 `json:"rejectMeanMs"` // pushback latency, not a retry budget
	JournaledIntents  int     `json:"journaledIntents"`

	// Phase 3: heal + reconcile (purge orphans, replay journal).
	ReconcileMs float64 `json:"reconcileMs"`
	Purged      int     `json:"purged"`
	Replayed    int     `json:"replayed"`

	// Phase 4: UPF restart + rebuild reconciliation.
	RestartReconcileMs float64 `json:"restartReconcileMs"`
	Rebuilt            int     `json:"rebuilt"`
	PostRestartPps     float64 `json:"postRestartGoodputPps"`

	SMFSessions int `json:"smfSessions"`
	UPFSessions int `json:"upfSessions"`
	Divergence  int `json:"divergenceAfterHeal"` // must be 0
}

// Partition runs the four phases against one L²5GC-mode core.
func Partition() (*Result, error) {
	ues := stormEnvInt("L25GC_PART_UES", partUEsDefault)
	windowMs := stormEnvInt("L25GC_PART_WINDOW_MS", partWindowMsDflt)
	seed := stormSeed()
	retry := pfcp.RetryConfig{T1: 30 * time.Millisecond, N1: 1, Backoff: 1}

	inj := faults.New(seed)
	c, err := core.New(core.Config{
		Mode: core.ModeL25GC, Subscribers: benchSubscribers(ues),
		FaultInjector: inj,
		N4Assoc:       true, N4MissThreshold: partDetectMissCap,
		N4Retry: retry, // manual Ticks: the bench drives the cadence
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	a := c.N4Association()
	if a.State() != pfcp.AssocUp {
		return nil, fmt.Errorf("partition: association %v at start", a.State())
	}

	g, err := ranue.NewGNB(1, pkt.AddrFrom(10, 100, 0, 10), c.N2Addr(), c)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	ueList := make([]*ranue.UE, ues)
	for i := range ueList {
		ue := ranue.NewUE(fmt.Sprintf("imsi-20893000000000%d", i+1),
			[]byte("0123456789abcdef"), []byte("fedcba9876543210"))
		if _, err := ue.Register(g); err != nil {
			return nil, fmt.Errorf("UE %d register: %w", i, err)
		}
		if _, err := ue.EstablishSession(5, "internet"); err != nil {
			return nil, fmt.Errorf("UE %d session: %w", i, err)
		}
		ueList[i] = ue
	}

	var delivered atomic.Int64
	c.SetN6Sink(func([]byte) { delivered.Add(1) })
	dn := pkt.AddrFrom(1, 1, 1, 1)
	window := time.Duration(windowMs) * time.Millisecond

	// goodput pumps uplinks round-robin for the window and returns
	// delivered packets/sec (waits a settle beat for in-flight frames).
	goodput := func() (float64, error) {
		start := delivered.Load()
		t0 := time.Now()
		for time.Since(t0) < window {
			for _, ue := range ueList {
				if err := ue.SendUplink(dn, 40000, 9000, []byte("part-goodput")); err != nil {
					return 0, err
				}
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		n := delivered.Load() - start
		return float64(n) / window.Seconds(), nil
	}

	out := &partitionJSON{
		UEs: ues, Seed: seed, MissThresh: partDetectMissCap,
		RetryT1Ms: int(retry.T1 / time.Millisecond), RetryN1: retry.N1,
		WindowMs: windowMs, OrphansSown: partOrphans,
	}

	// --- phase 0: baseline goodput ---
	if out.BaselinePps, err = goodput(); err != nil {
		return nil, err
	}

	// --- phase 1: partition + detection ---
	inj.Partition("pfcp.smf")
	inj.Partition("pfcp.upf")
	t0 := time.Now()
	for a.State() != pfcp.AssocDown {
		a.Tick()
		if time.Since(t0) > 10*time.Second {
			return nil, fmt.Errorf("partition: down not detected")
		}
	}
	out.DetectWallMs = float64(time.Since(t0)) / float64(time.Millisecond)
	out.DetectMs = float64(a.LastDetectLatency()) / float64(time.Millisecond)

	// --- phase 2: degraded mode ---
	// Established sessions keep forwarding.
	if out.DegradedPps, err = goodput(); err != nil {
		return nil, err
	}
	// New establishments get immediate backoff pushback.
	var rejectTotal time.Duration
	for i := 0; i < partRejectProbes; i++ {
		r0 := time.Now()
		if _, err := ueList[i].EstablishSession(uint32(6+i), "internet"); err == nil {
			return nil, fmt.Errorf("partition: establishment admitted while down")
		}
		rejectTotal += time.Since(r0)
	}
	out.RejectMeanMs = float64(rejectTotal) / float64(partRejectProbes) / float64(time.Millisecond)
	out.RejectedWhileDown = c.SMF.RejectedWhileDown()
	// Releases journal as pending intents.
	for i := 0; i < partReleaseWhile; i++ {
		ref := fmt.Sprintf("smctx-imsi-20893000000000%d-5", i+1)
		if _, err := c.SMF.Handle(sbi.OpReleaseSmContext, &sbi.SmContextReleaseRequest{SmContextRef: ref}); err != nil {
			return nil, fmt.Errorf("partition: release while down: %w", err)
		}
	}
	out.JournaledIntents = c.SMF.JournalLen()
	// Plant orphans: sessions a previous SMF incarnation left at the UPF
	// (delivered via direct UPF-C handling — the partition blocks only
	// the endpoint transport).
	for i := 0; i < partOrphans; i++ {
		seid := uint64(90001 + i)
		est := &pfcp.SessionEstablishmentRequest{NodeID: "smf.stale", CPSEID: seid,
			UEIP: pkt.AddrFrom(10, 77, 0, byte(i+1))}
		if _, err := c.UPFC.Handle(seid, est); err != nil {
			return nil, fmt.Errorf("partition: planting orphan: %w", err)
		}
	}

	// --- phase 3: heal + reconcile ---
	inj.Heal("pfcp.smf")
	inj.Heal("pfcp.upf")
	for a.State() != pfcp.AssocUp {
		a.Tick()
	}
	rec := c.SMF.LastReconcile()
	if rec == nil {
		return nil, fmt.Errorf("partition: no reconcile stats after heal")
	}
	out.ReconcileMs = float64(rec.Duration) / float64(time.Millisecond)
	out.Purged, out.Replayed = rec.Purged, rec.Replayed

	// --- phase 4: UPF restart + rebuild ---
	c.UPFState.Reset()
	c.UPFC.SetRecoveryTimestamp(c.UPFC.RecoveryTimestamp() + 1)
	for a.State() != pfcp.AssocDown {
		a.Tick()
	}
	for a.State() != pfcp.AssocUp {
		a.Tick()
	}
	rec = c.SMF.LastReconcile()
	out.RestartReconcileMs = float64(rec.Duration) / float64(time.Millisecond)
	out.Rebuilt = rec.Rebuilt

	// Post-restart goodput over the surviving sessions (the released
	// ones are gone on both sides).
	ueList = ueList[partReleaseWhile:]
	if out.PostRestartPps, err = goodput(); err != nil {
		return nil, err
	}

	// --- acceptance: zero divergence ---
	ours, theirs := c.SMF.SEIDs(), c.UPFState.SEIDs()
	out.SMFSessions, out.UPFSessions = len(ours), len(theirs)
	if len(ours) == len(theirs) {
		for i := range ours {
			if ours[i] != theirs[i] {
				out.Divergence++
			}
		}
	} else {
		out.Divergence = len(ours) + len(theirs)
	}
	if out.Divergence != 0 {
		return nil, fmt.Errorf("partition: SEID tables diverged after heal: SMF %v, UPF %v", ours, theirs)
	}

	t := metrics.NewTable("phase", "figure", "value")
	t.Row("detect", "first-miss → down", fmt.Sprintf("%.1f ms", out.DetectMs))
	t.Row("detect", "partition → down (wall)", fmt.Sprintf("%.1f ms", out.DetectWallMs))
	t.Row("degraded", "baseline goodput", fmt.Sprintf("%.0f pkt/s", out.BaselinePps))
	t.Row("degraded", "goodput while down", fmt.Sprintf("%.0f pkt/s", out.DegradedPps))
	t.Row("degraded", "establishments rejected", fmt.Sprintf("%d (mean %.1f ms pushback)", out.RejectedWhileDown, out.RejectMeanMs))
	t.Row("degraded", "intents journaled", fmt.Sprintf("%d", out.JournaledIntents))
	t.Row("reconcile", "heal reconcile", fmt.Sprintf("%.1f ms (%d purged, %d replayed)", out.ReconcileMs, out.Purged, out.Replayed))
	t.Row("reconcile", "restart reconcile", fmt.Sprintf("%.1f ms (%d rebuilt)", out.RestartReconcileMs, out.Rebuilt))
	t.Row("reconcile", "post-restart goodput", fmt.Sprintf("%.0f pkt/s", out.PostRestartPps))
	t.Row("accept", "SEID divergence", fmt.Sprintf("%d (SMF %d / UPF %d sessions)", out.Divergence, out.SMFSessions, out.UPFSessions))

	return &Result{
		ID:    "partition",
		Title: "N4 partition: detection, degraded-mode goodput, post-heal reconciliation",
		Table: t,
		Notes: []string{
			fmt.Sprintf("%d UEs, seed %d; heartbeat budget T1=%dms N1=%d, miss threshold %d",
				ues, seed, out.RetryT1Ms, out.RetryN1, out.MissThresh),
			"degraded mode forwards established sessions and journals deletions; reconciliation replays them after heal",
			"UPF restart rebuilds every session with its original TEID: UE tunnels revive with zero RAN signalling",
		},
		JSON: out,
	}, nil
}
