package nfid

import (
	"sync"
	"testing"
)

// At one stripe the allocator must reproduce the legacy single-counter
// sequence exactly: base+1, base+2, ... — snapshot bytes and test-pinned
// IDs depend on it.
func TestLegacySequenceAtOneStripe(t *testing.T) {
	al := New(0x100, 1)
	for want := uint64(0x101); want <= 0x110; want++ {
		if got := al.Next(12345); got != want {
			t.Fatalf("Next = %#x, want %#x", got, want)
		}
	}
	if hw := al.HighWater(); hw != 0x110 {
		t.Fatalf("HighWater = %#x, want 0x110", hw)
	}
}

// Stripes allocate from disjoint residue classes: no two stripes can ever
// produce the same ID, with or without contention.
func TestStripesNeverCollide(t *testing.T) {
	const stripes, perStripe = 7, 1000
	al := New(0, stripes)
	var (
		mu   sync.Mutex
		seen = make(map[uint64]bool, stripes*perStripe)
		wg   sync.WaitGroup
	)
	for k := 0; k < stripes; k++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			ids := make([]uint64, 0, perStripe)
			for i := 0; i < perStripe; i++ {
				ids = append(ids, al.Next(k))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate ID %#x", id)
				}
				seen[id] = true
				if id%stripes != k%stripes {
					t.Errorf("ID %#x escaped residue class %d", id, k)
				}
			}
		}(uint64(k))
	}
	wg.Wait()
	if len(seen) != stripes*perStripe {
		t.Fatalf("allocated %d unique IDs, want %d", len(seen), stripes*perStripe)
	}
}

// HighWater returns base before any allocation, and the max ID after.
func TestHighWater(t *testing.T) {
	al := New(1000, 4)
	if hw := al.HighWater(); hw != 1000 {
		t.Fatalf("fresh HighWater = %d, want base 1000", hw)
	}
	var max uint64
	for k := uint64(0); k < 4; k++ {
		for i := 0; i < int(k)+1; i++ {
			if id := al.Next(k); id > max {
				max = id
			}
		}
	}
	if hw := al.HighWater(); hw != max {
		t.Fatalf("HighWater = %d, want %d", hw, max)
	}
}

// Seed guarantees every future ID is strictly above the seed value, for
// any stripe count — including one that differs from the allocator that
// produced the seed (the cross-shard-count restore case).
func TestSeedStrictlyAbove(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		al := New(0x100, n)
		const h = 0x100 + 57
		al.Seed(h)
		for k := uint64(0); k < uint64(n)*2; k++ {
			if id := al.Next(k); id <= h {
				t.Fatalf("n=%d stripe %d: Next = %#x, not above seed %#x", n, k, id, h)
			}
		}
	}
	// Seeding below base must not wrap.
	al := New(0x100, 2)
	al.Seed(5)
	if id := al.Next(0); id <= 0x100 {
		t.Fatalf("Next after low seed = %#x, want > base", id)
	}
}
