// Package nfid provides the striped ID allocator and string-hash helpers
// shared by the sharded NF state layers (internal/nf/amf, internal/nf/smf).
//
// Alloc hands IDs out of N disjoint residue classes: stripe k of N yields
// base + seq*N + k with a per-stripe atomic sequence, so allocation never
// contends across stripes and IDs of different stripes can never collide.
// At N=1 the sequence is exactly the legacy single-counter one (base+1,
// base+2, ...), which keeps snapshot bytes and test-pinned IDs identical
// for unsharded configurations.
package nfid

import "sync/atomic"

// Alloc is a striped monotonic ID allocator.
type Alloc struct {
	base uint64
	// floor is the exact high-water a Seed installed: HighWater reports
	// it verbatim until a stripe allocates past it, so a restored
	// snapshot re-encodes the identical value at any stripe count.
	floor   atomic.Uint64
	stripes []stripe
}

// stripe pads each sequence to its own cache line. seed is the sequence
// baseline a Seed installed; only values above it count as allocations.
type stripe struct {
	seq  atomic.Uint64
	seed atomic.Uint64
	_    [48]byte
}

// New returns an allocator over n stripes (clamped to >= 1) whose first
// ID at one stripe is base+1.
func New(base uint64, n int) *Alloc {
	if n < 1 {
		n = 1
	}
	al := &Alloc{base: base, stripes: make([]stripe, n)}
	al.floor.Store(base)
	return al
}

// Next allocates from stripe k (reduced modulo the stripe count).
func (al *Alloc) Next(k uint64) uint64 {
	n := uint64(len(al.stripes))
	k %= n
	return al.base + al.stripes[k].seq.Add(1)*n + k
}

// HighWater returns the largest ID handed out so far, or base when none
// has been — the single value snapshots persist (legacy `next` semantics
// at one stripe).
func (al *Alloc) HighWater() uint64 {
	n := uint64(len(al.stripes))
	hw := al.floor.Load()
	for k := range al.stripes {
		if s := al.stripes[k].seq.Load(); s > al.stripes[k].seed.Load() {
			if id := al.base + s*n + uint64(k); id > hw {
				hw = id
			}
		}
	}
	return hw
}

// Seed resets every stripe so all future IDs are strictly greater than
// h — the restore-side re-seeding that keeps a promoted replica from
// handing out IDs colliding with restored state, even when its stripe
// count differs from the snapshotting instance's. Until something
// allocates past it, HighWater reports exactly h, so snapshot→restore→
// snapshot round-trips byte-identically. Seed is a restore-time
// operation; callers quiesce allocation around it.
func (al *Alloc) Seed(h uint64) {
	if h < al.base {
		h = al.base
	}
	al.floor.Store(h)
	n := uint64(len(al.stripes))
	q := (h - al.base) / n
	for k := range al.stripes {
		al.stripes[k].seq.Store(q)
		al.stripes[k].seed.Store(q)
	}
}

// StrHash is FNV-1a 64 over s. Callers finalize the result through
// ring.Fmix64 at the shard-selection site.
func StrHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
