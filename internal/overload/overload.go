// Package overload implements the admission and shedding layer that keeps
// the control plane responsive through registration storms: per-NF
// controllers with bounded, priority-classed in-flight work accounting, a
// p99-feedback loop that tightens or relaxes admission from observed
// procedure latency, and deterministic seeded backoff advice for the
// pushback messages (NAS reject with T3346-style timer, SBI 503 +
// Retry-After, PFCP congestion cause).
//
// The fast path — Admit on an uncongested NF — is allocation-free: one
// atomic load of the shed level, one atomic add on the class depth, and
// two counter increments. Everything slow (jitter RNG, histogram feed,
// level changes) happens off that path or only on rejects.
package overload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/metrics"
	"l25gc/internal/trace"
)

// Class orders work by how reluctantly the core sheds it. Lower values are
// shed last: Drain work (deregistration, UE context release, replies that
// complete an already-admitted procedure) is never shed, so the core can
// always reduce its own load; initial registration is shed first, matching
// the paper's storm regime where new attaches are the load the operator
// can defer.
type Class uint8

// Admission classes, most- to least-protected.
const (
	// ClassDrain is never shed: deregistration, UE-context-release, and
	// mid-procedure messages of already-admitted work.
	ClassDrain Class = iota
	// ClassEmergency covers handover, paging/service-request and other
	// latency-critical mobility events.
	ClassEmergency
	// ClassSession covers PDU session establishment for registered UEs.
	ClassSession
	// ClassRegistration covers initial registration — the storm class.
	ClassRegistration

	// NumClasses sizes per-class arrays.
	NumClasses = 4
)

// Name returns a stable lowercase label for metrics and spans.
func (c Class) Name() string {
	switch c {
	case ClassDrain:
		return "drain"
	case ClassEmergency:
		return "emergency"
	case ClassSession:
		return "session"
	case ClassRegistration:
		return "registration"
	}
	return "unknown"
}

// NumLevels is the number of shed levels. Level 0 admits everything;
// each higher level sheds one more class; the top level (and recovery
// mode) admits only ClassDrain.
const NumLevels = 4

// admitMax[l] is the highest class admitted at shed level l.
var admitMax = [NumLevels]Class{
	ClassRegistration, // level 0: admit everything
	ClassSession,      // level 1: shed registrations
	ClassEmergency,    // level 2: shed sessions too
	ClassDrain,        // level 3: drain only
}

// Config shapes one Controller. The zero value is usable: defaults are
// filled by New.
type Config struct {
	// Caps bound the in-flight depth per class; <=0 means unbounded.
	// ClassDrain is always unbounded regardless of its cap, preserving
	// the drain invariant.
	Caps [NumClasses]int64
	// TargetP99: observed p99 above this tightens admission one level
	// per tick (default 50ms).
	TargetP99 time.Duration
	// RelaxP99: observed p99 below this for HoldTicks consecutive ticks
	// relaxes admission one level (default TargetP99/2).
	RelaxP99 time.Duration
	// MinSamples is the minimum window population before the controller
	// acts on a p99 (default 16).
	MinSamples int
	// HoldTicks is how many consecutive calm ticks precede a relax
	// (default 2) — hysteresis against oscillation.
	HoldTicks int
	// BackoffBase is the advised backoff at level 1 (default 100ms);
	// each further level doubles it, capped at BackoffMax (default 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter is the fraction of each advised backoff randomized
	// across [1-J, 1+J] (default 0.2), decorrelating re-attempts.
	BackoffJitter float64
	// Seed drives the jitter RNG; the zero seed is a valid seed, so a
	// chaos seed makes reject schedules reproducible.
	Seed int64
}

func (c Config) norm() Config {
	if c.TargetP99 <= 0 {
		c.TargetP99 = 50 * time.Millisecond
	}
	if c.RelaxP99 <= 0 || c.RelaxP99 > c.TargetP99 {
		c.RelaxP99 = c.TargetP99 / 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffJitter == 0 || c.BackoffJitter >= 1 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 { // negative disables jitter explicitly
		c.BackoffJitter = 0
	}
	return c
}

// Controller is one NF's admission gate. All methods are safe for
// concurrent use; a nil *Controller admits everything (no-op gate), so
// ingress paths thread it unconditionally.
type Controller struct {
	cfg  Config
	name string

	level    atomic.Int32 // current shed level, 0..NumLevels-1
	recovery atomic.Int32 // >0 while the supervisor replays: drain-only

	depth     [NumClasses]atomic.Int64
	highWater [NumClasses]atomic.Int64
	admits    [NumClasses]atomic.Uint64
	sheds     [NumClasses]atomic.Uint64
	tightens  atomic.Uint64
	relaxes   atomic.Uint64

	window *metrics.Histogram // observed procedure latency since last tick
	calm   int                // consecutive ticks below RelaxP99

	rngMu sync.Mutex
	rng   *rand.Rand

	tracec atomic.Pointer[trace.Track]

	// recoveryHook, when set, observes recovery-mode transitions (the
	// telemetry pipeline triggers a flight-recorder dump from it).
	recoveryHook atomic.Pointer[func(entering bool)]

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New creates a controller named name (the NF it gates: "amf", "smf",
// "upfc"). The name labels trace events; metrics prefixes come from
// ExportMetrics.
func New(name string, cfg Config) *Controller {
	cfg = cfg.norm()
	return &Controller{
		cfg:    cfg,
		name:   name,
		window: metrics.NewHistogram(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetTracer installs a trace track; level transitions emit
// "overload.tighten"/"overload.relax" events. Nil-safe.
func (c *Controller) SetTracer(tk *trace.Track) {
	if c == nil {
		return
	}
	c.tracec.Store(tk)
}

// Admit decides whether work of class cl may enter the NF. On true the
// caller owns one unit of class depth and must pair it with Release(cl)
// when the procedure completes (or fails). On false the work was shed:
// push back with Backoff(cl). The uncongested path performs no
// allocation.
func (c *Controller) Admit(cl Class) bool {
	if c == nil {
		return true
	}
	lvl := c.level.Load()
	if c.recovery.Load() > 0 {
		lvl = NumLevels - 1
	}
	if cl > admitMax[lvl] {
		c.sheds[cl].Add(1)
		return false
	}
	d := c.depth[cl].Add(1)
	if cap := c.cfg.Caps[cl]; cap > 0 && cl != ClassDrain && d > cap {
		c.depth[cl].Add(-1)
		c.sheds[cl].Add(1)
		return false
	}
	// High-water is advisory (storm bench asserts boundedness); a lost
	// race here under-reports by at most the racing increment.
	if hw := c.highWater[cl].Load(); d > hw {
		c.highWater[cl].CompareAndSwap(hw, d)
	}
	c.admits[cl].Add(1)
	return true
}

// Release returns one unit of class depth. Extra releases (e.g. after a
// failover promoted a snapshot whose pending set differs from the live
// counters) clamp at zero instead of going negative.
func (c *Controller) Release(cl Class) {
	if c == nil {
		return
	}
	for {
		d := c.depth[cl].Load()
		if d <= 0 {
			return
		}
		if c.depth[cl].CompareAndSwap(d, d-1) {
			return
		}
	}
}

// Depth reports the current in-flight count for a class.
func (c *Controller) Depth(cl Class) int64 {
	if c == nil {
		return 0
	}
	return c.depth[cl].Load()
}

// HighWater reports the maximum in-flight depth a class has reached.
func (c *Controller) HighWater(cl Class) int64 {
	if c == nil {
		return 0
	}
	return c.highWater[cl].Load()
}

// Admitted reports the cumulative admit count for a class.
func (c *Controller) Admitted(cl Class) uint64 {
	if c == nil {
		return 0
	}
	return c.admits[cl].Load()
}

// Shed reports the cumulative shed count for a class.
func (c *Controller) Shed(cl Class) uint64 {
	if c == nil {
		return 0
	}
	return c.sheds[cl].Load()
}

// Level reports the current shed level (0 = admit everything).
func (c *Controller) Level() int {
	if c == nil {
		return 0
	}
	lvl := c.level.Load()
	if c.recovery.Load() > 0 {
		lvl = NumLevels - 1
	}
	return int(lvl)
}

// Backoff advises how long shed work of class cl should wait before
// re-attempting: the configured base doubled per shed level above zero,
// capped, with deterministic seeded jitter. Level 0 (a pure depth-cap
// reject) still advises the base, so pushback always carries a timer.
func (c *Controller) Backoff(cl Class) time.Duration {
	if c == nil {
		return 0
	}
	lvl := int(c.level.Load())
	if c.recovery.Load() > 0 {
		lvl = NumLevels - 1
	}
	d := c.cfg.BackoffBase << uint(lvl)
	// Higher (more protected) classes that still get shed deserve a
	// shorter wait than the storm class.
	if cl < ClassRegistration {
		d /= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	if d < c.cfg.BackoffBase/2 {
		d = c.cfg.BackoffBase / 2
	}
	c.rngMu.Lock()
	f := 1 + c.cfg.BackoffJitter*(2*c.rng.Float64()-1)
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Observe feeds one completed-procedure latency into the feedback window.
func (c *Controller) Observe(d time.Duration) {
	if c == nil {
		return
	}
	c.window.Observe(d)
}

// Tick runs one feedback step: read the window p99, tighten when it
// exceeds TargetP99, relax after HoldTicks consecutive calm readings,
// then reset the window. Call it from Start's loop or directly from
// tests/benches for deterministic stepping.
func (c *Controller) Tick() {
	if c == nil {
		return
	}
	n := c.window.Count()
	if n < c.cfg.MinSamples {
		// A sparse window is calm by definition: too little traffic to
		// call the NF overloaded. This must count toward relaxing even
		// when n > 0 — at a high shed level the admitted trickle can
		// stay below MinSamples forever, and requiring an empty window
		// here would wedge the controller at that level. The partial
		// window keeps accumulating across busy ticks; it is discarded
		// once a relax fires so stale latencies never feed a later p99.
		c.calm++
		if c.calm >= c.cfg.HoldTicks {
			c.relax()
			c.calm = 0
			if n > 0 {
				c.window.Reset()
			}
		}
		return
	}
	p99 := c.window.Percentile(99)
	c.window.Reset()
	switch {
	case p99 > c.cfg.TargetP99:
		c.calm = 0
		c.tighten(p99)
	case p99 < c.cfg.RelaxP99:
		c.calm++
		if c.calm >= c.cfg.HoldTicks {
			c.relax()
			c.calm = 0
		}
	default:
		c.calm = 0
	}
}

func (c *Controller) tighten(p99 time.Duration) {
	for {
		lvl := c.level.Load()
		if lvl >= NumLevels-1 {
			return
		}
		if c.level.CompareAndSwap(lvl, lvl+1) {
			c.tightens.Add(1)
			if tk := c.tracec.Load(); tk != nil {
				tk.Event("overload.tighten", "nf", c.name,
					"level", levelName(int(lvl+1)), "p99", p99.String())
			}
			return
		}
	}
}

func (c *Controller) relax() {
	for {
		lvl := c.level.Load()
		if lvl <= 0 {
			return
		}
		if c.level.CompareAndSwap(lvl, lvl-1) {
			c.relaxes.Add(1)
			if tk := c.tracec.Load(); tk != nil {
				tk.Event("overload.relax", "nf", c.name,
					"level", levelName(int(lvl-1)))
			}
			return
		}
	}
}

func levelName(l int) string {
	switch l {
	case 0:
		return "open"
	case 1:
		return "shed-registration"
	case 2:
		return "shed-session"
	default:
		return "drain-only"
	}
}

// EnterRecovery forces drain-only admission while the supervisor runs
// promote→replay for the gated NF: replay must not compete with new work,
// which bounds recovery time. Nested calls stack.
func (c *Controller) EnterRecovery() {
	if c == nil {
		return
	}
	if c.recovery.Add(1) == 1 {
		if tk := c.tracec.Load(); tk != nil {
			tk.Event("overload.recovery_enter", "nf", c.name)
		}
		if h := c.recoveryHook.Load(); h != nil {
			(*h)(true)
		}
	}
}

// SetRecoveryHook installs fn, called with entering=true when the
// controller transitions into recovery mode (the first of possibly
// stacked EnterRecovery calls) and entering=false when the last
// ExitRecovery restores normal admission. Nil-safe; nil fn removes the
// hook.
func (c *Controller) SetRecoveryHook(fn func(entering bool)) {
	if c == nil {
		return
	}
	if fn == nil {
		c.recoveryHook.Store(nil)
		return
	}
	c.recoveryHook.Store(&fn)
}

// ExitRecovery restores feedback-driven admission.
func (c *Controller) ExitRecovery() {
	if c == nil {
		return
	}
	if c.recovery.Add(-1) == 0 {
		if tk := c.tracec.Load(); tk != nil {
			tk.Event("overload.recovery_exit", "nf", c.name)
		}
		if h := c.recoveryHook.Load(); h != nil {
			(*h)(false)
		}
	}
}

// Start launches the feedback loop, ticking every interval. Stop with
// Stop. Starting an already-started controller is a no-op.
func (c *Controller) Start(interval time.Duration) {
	if c == nil {
		return
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval) //l25gc:allow determinism controller tick cadence is wall-time machinery; admission decisions themselves are seed-pure
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}(c.stop, c.done)
}

// Stop halts the feedback loop and waits for it to exit. Idempotent.
func (c *Controller) Stop() {
	if c == nil {
		return
	}
	c.loopMu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ExportMetrics registers the controller's counters under prefix
// (canonically "overload.<nf>"): per-class ".admit.<class>" and
// ".shed.<class>", the current ".level", depth high-waters, and the
// tighten/relax transition counts.
func (c *Controller) ExportMetrics(reg *metrics.Registry, prefix string) {
	if c == nil || reg == nil {
		return
	}
	for cl := Class(0); cl < NumClasses; cl++ {
		cl := cl
		reg.RegisterGauge(prefix+".admit."+cl.Name(), c.admits[cl].Load)
		reg.RegisterGauge(prefix+".shed."+cl.Name(), c.sheds[cl].Load)
		reg.RegisterGauge(prefix+".depth_hw."+cl.Name(), func() uint64 {
			return uint64(c.highWater[cl].Load())
		})
		// Instantaneous in-flight depth: unlike the cumulative counters
		// this can go down, so the telemetry sampler reads it as a level,
		// not a rate.
		reg.RegisterGauge(prefix+".depth."+cl.Name(), func() uint64 {
			return uint64(c.depth[cl].Load())
		})
	}
	reg.RegisterGauge(prefix+".level", func() uint64 { return uint64(c.Level()) })
	reg.RegisterGauge(prefix+".tightens", c.tightens.Load)
	reg.RegisterGauge(prefix+".relaxes", c.relaxes.Load)
}
