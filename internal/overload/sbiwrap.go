package overload

import (
	"l25gc/internal/codec"
	"l25gc/internal/sbi"
)

// ClassifyOp maps an SBI operation to its admission class. Sub-calls that
// serve an already-admitted procedure (auth vectors, subscription data,
// policy creation, NRF bookkeeping) classify as Drain — the front door
// (AMF N2 ingress, SMF session create) already gated the procedure, and
// shedding its internals would strand admitted work half-done.
func ClassifyOp(op sbi.OpID) Class {
	switch op {
	case sbi.OpPostSmContexts:
		return ClassSession
	case sbi.OpUpdateSmContext, sbi.OpN1N2MessageTransfer:
		// Idle-mode wake-ups and downlink-triggered paging: emergency
		// tier, shed only at drain-only.
		return ClassEmergency
	case sbi.OpReleaseSmContext:
		return ClassDrain
	default:
		return ClassDrain
	}
}

// WrapSBI gates an SBI producer handler with the controller: shed
// operations answer 503 with the controller's advised Retry-After instead
// of executing, which the consumer-side RetryPolicy honors as a
// prescribed delay. classify may be nil (defaults to ClassifyOp).
func WrapSBI(c *Controller, classify func(sbi.OpID) Class, h sbi.Handler) sbi.Handler {
	if c == nil {
		return h
	}
	if classify == nil {
		classify = ClassifyOp
	}
	return func(op sbi.OpID, req codec.Message) (codec.Message, error) {
		cl := classify(op)
		if !c.Admit(cl) {
			return nil, &sbi.StatusError{
				Code:       sbi.StatusServiceUnavailable,
				RetryAfter: c.Backoff(cl),
				Reason:     "overload: " + cl.Name() + " shed",
			}
		}
		defer c.Release(cl)
		return h(op, req)
	}
}
