package overload

import (
	"testing"
	"time"

	"l25gc/internal/testutil"
)

// TestDrainNeverShed is the core priority invariant: at every shed level,
// in recovery mode, and at 100% queue pressure on every other class,
// drain work (deregistration, UE context release) is still admitted.
func TestDrainNeverShed(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New("t", Config{Caps: [NumClasses]int64{
		ClassDrain: 1, ClassEmergency: 1, ClassSession: 1, ClassRegistration: 1,
	}})
	// Saturate every cappable class.
	for _, cl := range []Class{ClassEmergency, ClassSession, ClassRegistration} {
		if !c.Admit(cl) {
			t.Fatalf("first %s admit rejected on empty controller", cl.Name())
		}
		if c.Admit(cl) {
			t.Fatalf("%s admitted beyond cap 1", cl.Name())
		}
	}
	for lvl := 0; lvl < NumLevels; lvl++ {
		c.level.Store(int32(lvl))
		for i := 0; i < 10; i++ {
			if !c.Admit(ClassDrain) {
				t.Fatalf("drain shed at level %d (iteration %d)", lvl, i)
			}
		}
	}
	c.EnterRecovery()
	defer c.ExitRecovery()
	for i := 0; i < 10; i++ {
		if !c.Admit(ClassDrain) {
			t.Fatalf("drain shed in recovery mode (iteration %d)", i)
		}
	}
}

// TestShedOrder checks that levels shed exactly in priority order:
// registration first, then session, then emergency; drain never.
func TestShedOrder(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New("t", Config{})
	type want struct {
		reg, sess, emg bool
	}
	wants := []want{
		{true, true, true},    // level 0
		{false, true, true},   // level 1
		{false, false, true},  // level 2
		{false, false, false}, // level 3
	}
	for lvl, w := range wants {
		c.level.Store(int32(lvl))
		check := func(cl Class, admit bool) {
			got := c.Admit(cl)
			if got {
				c.Release(cl)
			}
			if got != admit {
				t.Errorf("level %d: Admit(%s) = %v, want %v", lvl, cl.Name(), got, admit)
			}
		}
		check(ClassRegistration, w.reg)
		check(ClassSession, w.sess)
		check(ClassEmergency, w.emg)
		check(ClassDrain, true)
	}
}

// TestDepthCapAndHighWater checks the bounded-queue accounting: depth
// never exceeds the cap, rejected admissions do not consume depth, and
// the high-water mark records the peak.
func TestDepthCapAndHighWater(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New("t", Config{Caps: [NumClasses]int64{ClassRegistration: 3}})
	for i := 0; i < 3; i++ {
		if !c.Admit(ClassRegistration) {
			t.Fatalf("admit %d rejected below cap", i)
		}
	}
	for i := 0; i < 5; i++ {
		if c.Admit(ClassRegistration) {
			t.Fatal("admitted beyond cap")
		}
	}
	if d := c.Depth(ClassRegistration); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	if hw := c.HighWater(ClassRegistration); hw != 3 {
		t.Fatalf("high-water = %d, want 3", hw)
	}
	if got := c.Shed(ClassRegistration); got != 5 {
		t.Fatalf("shed count = %d, want 5", got)
	}
	c.Release(ClassRegistration)
	if !c.Admit(ClassRegistration) {
		t.Fatal("admit rejected after release freed depth")
	}
	// Extra releases clamp at zero.
	for i := 0; i < 10; i++ {
		c.Release(ClassRegistration)
	}
	if d := c.Depth(ClassRegistration); d != 0 {
		t.Fatalf("depth = %d after over-release, want 0", d)
	}
	if c.HighWater(ClassRegistration) != 3 {
		t.Fatal("high-water lost after releases")
	}
}

// TestFeedbackTightenRelax drives the p99 loop directly: a hot window
// tightens one level per tick, calm windows relax after HoldTicks.
func TestFeedbackTightenRelax(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New("t", Config{TargetP99: 10 * time.Millisecond, MinSamples: 4, HoldTicks: 2})
	feed := func(d time.Duration) {
		for i := 0; i < 8; i++ {
			c.Observe(d)
		}
	}
	feed(50 * time.Millisecond)
	c.Tick()
	if c.Level() != 1 {
		t.Fatalf("level = %d after hot tick, want 1", c.Level())
	}
	feed(50 * time.Millisecond)
	c.Tick()
	if c.Level() != 2 {
		t.Fatalf("level = %d after second hot tick, want 2", c.Level())
	}
	// Calm readings: relax only after HoldTicks consecutive ones.
	feed(time.Millisecond)
	c.Tick()
	if c.Level() != 2 {
		t.Fatalf("level = %d after one calm tick, want 2 (hysteresis)", c.Level())
	}
	feed(time.Millisecond)
	c.Tick()
	if c.Level() != 1 {
		t.Fatalf("level = %d after two calm ticks, want 1", c.Level())
	}
	// An idle controller (no samples at all) also drifts open.
	c.Tick()
	c.Tick()
	if c.Level() != 0 {
		t.Fatalf("level = %d after idle ticks, want 0", c.Level())
	}
}

// TestBackoffDeterministic: two controllers with the same seed advise
// identical backoff sequences; the advice grows with the shed level and
// respects the cap.
func TestBackoffDeterministic(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	mk := func(seed int64) *Controller {
		return New("t", Config{BackoffBase: 100 * time.Millisecond, Seed: seed})
	}
	a, b := mk(7), mk(7)
	for i := 0; i < 32; i++ {
		cl := Class(i % NumClasses)
		if da, db := a.Backoff(cl), b.Backoff(cl); da != db {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, da, db)
		}
	}
	other := mk(8)
	same := 0
	for i := 0; i < 16; i++ {
		if mkd, od := a.Backoff(ClassRegistration), other.Backoff(ClassRegistration); mkd == od {
			same++
		}
	}
	if same == 16 {
		t.Fatal("different seeds produced identical backoff schedules")
	}
	// Level scaling: higher level, longer advice (modulo ±20% jitter,
	// level 3 vs level 0 is 8x apart, far beyond jitter).
	lvl0 := a.Backoff(ClassRegistration)
	a.level.Store(3)
	lvl3 := a.Backoff(ClassRegistration)
	if lvl3 <= lvl0 {
		t.Fatalf("backoff at level 3 (%v) not above level 0 (%v)", lvl3, lvl0)
	}
	if max := 5 * time.Second * 12 / 10; lvl3 > max {
		t.Fatalf("backoff %v exceeded cap+jitter %v", lvl3, max)
	}
}

// TestRecoveryStacks: nested EnterRecovery calls require matching exits
// before admission re-opens.
func TestRecoveryStacks(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New("t", Config{})
	c.EnterRecovery()
	c.EnterRecovery()
	if c.Admit(ClassRegistration) {
		t.Fatal("registration admitted during recovery")
	}
	c.ExitRecovery()
	if c.Admit(ClassRegistration) {
		t.Fatal("registration admitted with one recovery still active")
	}
	c.ExitRecovery()
	if !c.Admit(ClassRegistration) {
		t.Fatal("registration still shed after recovery fully exited")
	}
	c.Release(ClassRegistration)
}

// TestAdmitAllocFree asserts the admission fast path performs zero
// allocations — the property that keeps the gate safe to run on every
// ingress message of a storm.
func TestAdmitAllocFree(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	c := New("t", Config{Caps: [NumClasses]int64{ClassRegistration: 64}})
	allocs := testing.AllocsPerRun(10000, func() {
		if c.Admit(ClassRegistration) {
			c.Release(ClassRegistration)
		}
	})
	if allocs != 0 {
		t.Fatalf("Admit/Release allocates %.2f allocs/op, want 0", allocs)
	}
	// The shed path must also be allocation-free (it runs hottest).
	c.level.Store(NumLevels - 1)
	allocs = testing.AllocsPerRun(10000, func() {
		if c.Admit(ClassRegistration) {
			c.Release(ClassRegistration)
		}
	})
	if allocs != 0 {
		t.Fatalf("shed path allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestNilControllerAdmitsEverything: a nil *Controller is the disabled
// gate; every method must be safe and permissive.
func TestNilControllerAdmitsEverything(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var c *Controller
	if !c.Admit(ClassRegistration) {
		t.Fatal("nil controller shed work")
	}
	c.Release(ClassRegistration)
	c.Observe(time.Millisecond)
	c.Tick()
	c.EnterRecovery()
	c.ExitRecovery()
	c.Start(time.Millisecond)
	c.Stop()
	if c.Backoff(ClassSession) != 0 {
		t.Fatal("nil controller advised a backoff")
	}
	if c.Level() != 0 || c.Depth(ClassDrain) != 0 {
		t.Fatal("nil controller reported state")
	}
}

// BenchmarkAdmitRelease is the -benchmem gate target: `make storm-smoke`
// runs it with -benchmem; the paired test above hard-asserts 0 allocs.
func BenchmarkAdmitRelease(b *testing.B) {
	c := New("bench", Config{Caps: [NumClasses]int64{ClassRegistration: 1024}})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if c.Admit(ClassRegistration) {
				c.Release(ClassRegistration)
			}
		}
	})
}
