package lb

import (
	"sync"
	"testing"

	"l25gc/internal/resilience"
	"l25gc/internal/testutil"
)

// recorder is a Backend capturing deliveries.
type recorder struct {
	mu   sync.Mutex
	got  []resilience.LoggedPacket
	fail error
}

func (r *recorder) Deliver(class resilience.Class, counter uint64, data []byte) error {
	if r.fail != nil {
		return r.fail
	}
	r.mu.Lock()
	r.got = append(r.got, resilience.LoggedPacket{Class: class, Counter: counter, Data: append([]byte(nil), data...)})
	r.mu.Unlock()
	return nil
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func TestIngressGoesToPrimary(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	p, s := &recorder{}, &recorder{}
	l := New(p, s, 0)
	for i := 0; i < 5; i++ {
		if err := l.Ingress(resilience.DLData, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if p.count() != 5 || s.count() != 0 {
		t.Fatalf("primary=%d standby=%d", p.count(), s.count())
	}
	// Counters are monotone from 1.
	for i, pkt := range p.got {
		if pkt.Counter != uint64(i+1) {
			t.Fatalf("counters %+v", p.got)
		}
	}
}

func TestFailoverReplaysAfterCheckpoint(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	p, s := &recorder{}, &recorder{}
	l := New(p, s, 0)
	// 6 messages; checkpoint covers the first 4.
	for i := 0; i < 6; i++ {
		cls := resilience.DLData
		if i%3 == 0 {
			cls = resilience.DLControl
		}
		l.Ingress(cls, []byte{byte(i)})
	}
	l.AckCheckpoint(4)
	n, err := l.Failover(4)
	if err != nil || n != 2 {
		t.Fatalf("failover replayed %d (%v), want 2", n, err)
	}
	if !l.FailedOver() {
		t.Fatal("not failed over")
	}
	if s.count() != 2 || s.got[0].Counter != 5 || s.got[1].Counter != 6 {
		t.Fatalf("standby got %+v", s.got)
	}
	// Post-failover traffic goes to the standby.
	l.Ingress(resilience.ULData, []byte("after"))
	if s.count() != 3 || p.count() != 6 {
		t.Fatalf("routing after failover: p=%d s=%d", p.count(), s.count())
	}
}

func TestFailoverWithoutStandby(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	l := New(&recorder{}, nil, 0)
	if _, err := l.Failover(0); err != ErrNoStandby {
		t.Fatalf("err = %v", err)
	}
}

func TestAffinityStickyAndBalanced(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a := NewAffinity(3)
	u1 := a.UnitFor("imsi-1")
	u2 := a.UnitFor("imsi-2")
	u3 := a.UnitFor("imsi-3")
	if u1 == u2 && u2 == u3 {
		t.Fatalf("no spreading: %d %d %d", u1, u2, u3)
	}
	// Sticky: repeated lookups return the same unit (no state migration).
	for i := 0; i < 10; i++ {
		if a.UnitFor("imsi-1") != u1 {
			t.Fatal("affinity not sticky")
		}
	}
	loads := a.Loads()
	total := 0
	for _, v := range loads {
		total += v
	}
	if total != 3 {
		t.Fatalf("loads %v", loads)
	}
	a.Release("imsi-1")
	if a.Loads()[u1] != 0 {
		t.Fatal("release did not decrement load")
	}
	// New UE lands on the now-least-loaded unit.
	if a.UnitFor("imsi-4") != u1 {
		t.Fatal("least-loaded assignment broken")
	}
}
