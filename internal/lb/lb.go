// Package lb implements the UE-aware load balancer of §4 and Fig. 5: it
// pins each UE session to its serving 5GC unit (avoiding state migration),
// assigns new sessions by load, stamps every message through the
// resiliency counter/packet-logger, and drives failover to a standby unit
// with ordered replay.
package lb

import (
	"errors"
	"sync"
	"time"

	"l25gc/internal/resilience"
)

// Backend is one 5GC unit as the LB sees it.
type Backend interface {
	// Deliver hands one ingress message (control or data) to the unit.
	Deliver(class resilience.Class, counter uint64, data []byte) error
}

// ErrNoStandby reports a failover attempt with no standby configured.
var ErrNoStandby = errors.New("lb: no standby unit")

// LB fronts a primary unit and its remote standby.
type LB struct {
	mu      sync.Mutex
	primary Backend
	standby Backend
	active  Backend

	Logger *resilience.PacketLogger

	failedOver  bool
	ReplayCount int
	FailoverDur time.Duration
}

// New creates an LB over primary with an optional standby. logCap bounds
// each of the four logger queues.
func New(primary, standby Backend, logCap int) *LB {
	return &LB{
		primary: primary, standby: standby, active: primary,
		Logger: resilience.NewPacketLogger(logCap),
	}
}

// Ingress stamps, logs and forwards one message to the active unit.
func (l *LB) Ingress(class resilience.Class, data []byte) error {
	ctr, _ := l.Logger.Log(class, data)
	l.mu.Lock()
	b := l.active
	l.mu.Unlock()
	return b.Deliver(class, ctr, data)
}

// AckCheckpoint releases logged messages covered by a checkpoint the
// standby acknowledged.
func (l *LB) AckCheckpoint(counter uint64) { l.Logger.ReleaseUpTo(counter) }

// Failover switches to the standby and replays, in counter order, every
// logged message newer than replayAfter (the standby's checkpoint). It
// returns the number of messages replayed.
func (l *LB) Failover(replayAfter uint64) (int, error) {
	start := time.Now()
	l.mu.Lock()
	if l.standby == nil {
		l.mu.Unlock()
		return 0, ErrNoStandby
	}
	l.active = l.standby
	l.failedOver = true
	b := l.active
	l.mu.Unlock()

	replay := l.Logger.ReplayFrom(replayAfter)
	for _, p := range replay {
		if err := b.Deliver(p.Class, p.Counter, p.Data); err != nil {
			return len(replay), err
		}
	}
	l.ReplayCount = len(replay)
	l.FailoverDur = time.Since(start)
	return len(replay), nil
}

// FailedOver reports whether the standby is active.
func (l *LB) FailedOver() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failedOver
}

// Affinity keeps the UE -> 5GC-unit assignment of §4: a session stays on
// its unit for its lifetime; new UEs go to the least-loaded unit.
type Affinity struct {
	mu    sync.Mutex
	units int
	byUE  map[string]int
	loads []int
}

// NewAffinity tracks assignment across n units.
func NewAffinity(n int) *Affinity {
	return &Affinity{units: n, byUE: make(map[string]int), loads: make([]int, n)}
}

// UnitFor returns the sticky unit for a UE, assigning the least-loaded
// unit on first sight.
func (a *Affinity) UnitFor(supi string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if u, ok := a.byUE[supi]; ok {
		return u
	}
	best := 0
	for i := 1; i < a.units; i++ {
		if a.loads[i] < a.loads[best] {
			best = i
		}
	}
	a.byUE[supi] = best
	a.loads[best]++
	return best
}

// Release drops a UE's assignment (session ended).
func (a *Affinity) Release(supi string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if u, ok := a.byUE[supi]; ok {
		delete(a.byUE, supi)
		a.loads[u]--
	}
}

// Loads returns a copy of per-unit session counts.
func (a *Affinity) Loads() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.loads...)
}
