package sbi

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/metrics"
)

// ErrCircuitOpen is returned by ResilientConn while its breaker is open:
// the producer has failed repeatedly and calls are shed instead of queued
// behind timeouts (free5GC's SBI clients exhibit exactly this head-of-line
// problem under NF failure).
var ErrCircuitOpen = errors.New("sbi: circuit breaker open")

// ErrInjected marks a transport failure produced by the fault injector.
var ErrInjected = errors.New("sbi: injected transport fault")

// RetryPolicy shapes the consumer-side retry loop: exponential backoff
// between attempts with deterministic seeded jitter, so chaos schedules
// replay identically from one seed.
type RetryPolicy struct {
	// MaxAttempts is the total number of Invoke attempts (default 3).
	MaxAttempts int
	// BaseDelay is the pause after the first failure (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay randomized across [1-J, 1+J]
	// (default 0.2). Jitter decorrelates retry storms across consumers.
	Jitter float64
	// Seed drives the jitter RNG; the zero seed is a valid seed, so
	// deterministic tests just pick one.
	Seed int64
}

// norm fills zero fields with defaults.
func (p RetryPolicy) norm() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	return p
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// CircuitBreaker sheds calls to a producer that keeps failing: Threshold
// consecutive transport failures open the circuit; after Cooldown one
// half-open probe is admitted, and its outcome closes or re-opens the
// circuit.
type CircuitBreaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     int
	failures  int
	openedAt  time.Time

	trips atomic.Uint64
}

// NewCircuitBreaker creates a breaker (threshold<=0 → 5, cooldown<=0 → 1s).
func NewCircuitBreaker(threshold int, cooldown time.Duration) *CircuitBreaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &CircuitBreaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed, transitioning open → half-open
// once the cooldown has elapsed.
func (b *CircuitBreaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: one probe already in flight
		return false
	}
}

// Success records a completed call and closes the circuit.
func (b *CircuitBreaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// Failure records a transport failure, opening the circuit at the
// threshold (immediately when the half-open probe fails).
func (b *CircuitBreaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.open()
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.open()
	}
}

// open trips the breaker; caller holds mu.
func (b *CircuitBreaker) open() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.failures = 0
	b.trips.Add(1)
}

// Open reports whether the circuit currently rejects calls.
func (b *CircuitBreaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && time.Since(b.openedAt) < b.cooldown
}

// Trips reports how many times the breaker has opened.
func (b *CircuitBreaker) Trips() uint64 { return b.trips.Load() }

// retryable classifies errors: producer-answered failures (non-2xx, i.e.
// application-level rejections) are final; transport-level failures
// (connection loss, timeouts, injected drops) are worth retrying.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, ErrStatus) && !errors.Is(err, ErrBadOp) &&
		!errors.Is(err, ErrNoHandler)
}

// ResilientConn wraps any Conn (HTTP or shared-memory) with deadline-bound
// retries and a circuit breaker — the hardened consumer the chaos suite
// exercises. It is itself a Conn, so NFs compose it transparently.
type ResilientConn struct {
	inner   Conn
	policy  RetryPolicy
	breaker *CircuitBreaker

	rngMu sync.Mutex
	rng   *rand.Rand

	retries  atomic.Uint64
	shed     atomic.Uint64
	pushback atomic.Uint64
}

// NewResilientConn wraps inner. A nil breaker disables call shedding.
func NewResilientConn(inner Conn, p RetryPolicy, b *CircuitBreaker) *ResilientConn {
	p = p.norm()
	return &ResilientConn{
		inner:   inner,
		policy:  p,
		breaker: b,
		rng:     rand.New(rand.NewSource(p.Seed)),
	}
}

// ExportMetrics registers the resiliency counters under prefix:
// ".retries", ".shed", and — when a breaker is attached — ".breaker_trips"
// plus a 0/1 ".breaker_open" state gauge.
func (c *ResilientConn) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".retries", c.retries.Load)
	reg.RegisterGauge(prefix+".shed", c.shed.Load)
	reg.RegisterGauge(prefix+".pushback", c.pushback.Load)
	if b := c.breaker; b != nil {
		reg.RegisterGauge(prefix+".breaker_trips", b.trips.Load)
		reg.RegisterGauge(prefix+".breaker_open", func() uint64 {
			if b.Open() {
				return 1
			}
			return 0
		})
	}
}

// Retries reports the number of retry attempts performed.
func (c *ResilientConn) Retries() uint64 { return c.retries.Load() }

// Shed reports the number of calls rejected by the open breaker.
func (c *ResilientConn) Shed() uint64 { return c.shed.Load() }

// Pushback reports the number of 503+Retry-After responses honored.
func (c *ResilientConn) Pushback() uint64 { return c.pushback.Load() }

// backoff returns the jittered delay before attempt n (n >= 1).
func (c *ResilientConn) backoff(n int) time.Duration {
	d := float64(c.policy.BaseDelay)
	for i := 1; i < n; i++ {
		d *= c.policy.Multiplier
	}
	if max := float64(c.policy.MaxDelay); d > max {
		d = max
	}
	c.rngMu.Lock()
	f := 1 + c.policy.Jitter*(2*c.rng.Float64()-1)
	c.rngMu.Unlock()
	return time.Duration(d * f)
}

// Invoke implements Conn: breaker check, then up to MaxAttempts tries with
// jittered exponential backoff between them. Application-level errors
// (ErrStatus and friends) are returned immediately — only transport
// failures burn retry budget.
func (c *ResilientConn) Invoke(op OpID, req codec.Message) (codec.Message, error) {
	if c.breaker != nil && !c.breaker.Allow() {
		c.shed.Add(1)
		return nil, ErrCircuitOpen
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.inner.Invoke(op, req)
		if err == nil {
			if c.breaker != nil {
				c.breaker.Success()
			}
			return resp, nil
		}
		lastErr = err
		if ra, ok := RetryAfterOf(err); ok {
			// Overload pushback: the producer answered (transport is
			// healthy, the breaker must not trip) but asked us to come
			// back later. Honor the prescribed delay instead of our own
			// backoff curve; it is the producer's deterministic advice.
			if c.breaker != nil {
				c.breaker.Success()
			}
			c.pushback.Add(1)
			if attempt >= c.policy.MaxAttempts {
				return nil, lastErr
			}
			c.retries.Add(1)
			if ra <= 0 {
				ra = c.backoff(attempt)
			}
			time.Sleep(ra)
			continue
		}
		if !retryable(err) {
			// The producer answered; the transport is healthy.
			if c.breaker != nil {
				c.breaker.Success()
			}
			return nil, err
		}
		if c.breaker != nil {
			c.breaker.Failure()
		}
		if attempt >= c.policy.MaxAttempts {
			return nil, lastErr
		}
		if c.breaker != nil && !c.breaker.Allow() {
			c.shed.Add(1)
			return nil, ErrCircuitOpen
		}
		c.retries.Add(1)
		time.Sleep(c.backoff(attempt))
	}
}

// Close implements Conn.
func (c *ResilientConn) Close() error { return c.inner.Close() }
