package sbi

import "l25gc/internal/codec"

// The message models below mirror the OpenAPI-generated free5GC data types
// for the operations the control-plane procedures exercise. JSON struct
// tags give the REST field names; Schema() exposes the fields to the
// binary codecs (proto/flat) compared in Fig. 6.

// Snssai is the Single Network Slice Selection Assistance Information.
type Snssai struct {
	Sst uint32 `json:"sst"`
	Sd  string `json:"sd"`
}

// --- Authentication (AMF -> AUSF -> UDM) ---

// AuthenticationRequest starts 5G-AKA for a UE (Nausf UEAuthentications).
type AuthenticationRequest struct {
	SuciOrSupi         string `json:"supiOrSuci"`
	ServingNetworkName string `json:"servingNetworkName"`
	ResyncInfo         []byte `json:"resynchronizationInfo,omitempty"`
	TraceID            uint64 `json:"traceId,omitempty"`
}

// Schema implements codec.Message.
func (m *AuthenticationRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.SuciOrSupi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.ServingNetworkName},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.ResyncInfo},
		{Tag: 4, Kind: codec.KindUint64, Ptr: &m.TraceID},
	}
}

// AuthenticationResponse carries the 5G-AKA challenge back to the AMF.
type AuthenticationResponse struct {
	AuthType  string `json:"authType"`
	Rand      []byte `json:"rand"`
	Autn      []byte `json:"autn"`
	HxresStar []byte `json:"hxresStar"`
	AuthCtxID string `json:"authCtxId"`
	Link      string `json:"_links,omitempty"`
}

// Schema implements codec.Message.
func (m *AuthenticationResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.AuthType},
		{Tag: 2, Kind: codec.KindBytes, Ptr: &m.Rand},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.Autn},
		{Tag: 4, Kind: codec.KindBytes, Ptr: &m.HxresStar},
		{Tag: 5, Kind: codec.KindString, Ptr: &m.AuthCtxID},
		{Tag: 6, Kind: codec.KindString, Ptr: &m.Link},
	}
}

// AuthConfirmRequest confirms the UE's RES* (5G-AKA confirmation).
type AuthConfirmRequest struct {
	AuthCtxID string `json:"authCtxId"`
	ResStar   []byte `json:"resStar"`
}

// Schema implements codec.Message.
func (m *AuthConfirmRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.AuthCtxID},
		{Tag: 2, Kind: codec.KindBytes, Ptr: &m.ResStar},
	}
}

// AuthConfirmResponse reports the authentication result and KSEAF.
type AuthConfirmResponse struct {
	AuthResult string `json:"authResult"`
	Supi       string `json:"supi"`
	Kseaf      []byte `json:"kseaf"`
}

// Schema implements codec.Message.
func (m *AuthConfirmResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.AuthResult},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.Kseaf},
	}
}

// AuthInfoRequest asks the UDM for an authentication vector.
type AuthInfoRequest struct {
	SuciOrSupi         string `json:"supiOrSuci"`
	ServingNetworkName string `json:"servingNetworkName"`
}

// Schema implements codec.Message.
func (m *AuthInfoRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.SuciOrSupi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.ServingNetworkName},
	}
}

// AuthInfoResponse carries the home-network authentication vector.
type AuthInfoResponse struct {
	AuthType string `json:"authType"`
	Rand     []byte `json:"rand"`
	Autn     []byte `json:"autn"`
	XresStar []byte `json:"xresStar"`
	Kausf    []byte `json:"kausf"`
	Supi     string `json:"supi"`
}

// Schema implements codec.Message.
func (m *AuthInfoResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.AuthType},
		{Tag: 2, Kind: codec.KindBytes, Ptr: &m.Rand},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.Autn},
		{Tag: 4, Kind: codec.KindBytes, Ptr: &m.XresStar},
		{Tag: 5, Kind: codec.KindBytes, Ptr: &m.Kausf},
		{Tag: 6, Kind: codec.KindString, Ptr: &m.Supi},
	}
}

// --- Subscription data (AMF/SMF -> UDM -> UDR) ---

// SubscriptionDataRequest queries subscription data by SUPI.
type SubscriptionDataRequest struct {
	Supi    string `json:"supi"`
	Dnn     string `json:"dnn,omitempty"`
	PlmnID  string `json:"plmnId,omitempty"`
	DataSet string `json:"dataSet,omitempty"`
}

// Schema implements codec.Message.
func (m *SubscriptionDataRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.Dnn},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.PlmnID},
		{Tag: 4, Kind: codec.KindString, Ptr: &m.DataSet},
	}
}

// AMSubscriptionData is the access-and-mobility subscription record.
type AMSubscriptionData struct {
	Supi          string `json:"supi"`
	SubscribedSst uint32 `json:"subscribedSst"`
	SubscribedSd  string `json:"subscribedSd"`
	UeAmbrUL      uint64 `json:"ueAmbrUl"` // bit/s
	UeAmbrDL      uint64 `json:"ueAmbrDl"`
	RatRestricted bool   `json:"ratRestricted"`
}

// Schema implements codec.Message.
func (m *AMSubscriptionData) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindUint32, Ptr: &m.SubscribedSst},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.SubscribedSd},
		{Tag: 4, Kind: codec.KindUint64, Ptr: &m.UeAmbrUL},
		{Tag: 5, Kind: codec.KindUint64, Ptr: &m.UeAmbrDL},
		{Tag: 6, Kind: codec.KindBool, Ptr: &m.RatRestricted},
	}
}

// SMSubscriptionData is the session-management subscription record.
type SMSubscriptionData struct {
	Supi          string `json:"supi"`
	Dnn           string `json:"dnn"`
	SessAmbrUL    uint64 `json:"sessAmbrUl"`
	SessAmbrDL    uint64 `json:"sessAmbrDl"`
	Default5QI    uint32 `json:"default5qi"`
	StaticIPv4    string `json:"staticIpv4,omitempty"`
	AllowedSscCnt uint32 `json:"allowedSscModes"`
}

// Schema implements codec.Message.
func (m *SMSubscriptionData) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.Dnn},
		{Tag: 3, Kind: codec.KindUint64, Ptr: &m.SessAmbrUL},
		{Tag: 4, Kind: codec.KindUint64, Ptr: &m.SessAmbrDL},
		{Tag: 5, Kind: codec.KindUint32, Ptr: &m.Default5QI},
		{Tag: 6, Kind: codec.KindString, Ptr: &m.StaticIPv4},
		{Tag: 7, Kind: codec.KindUint32, Ptr: &m.AllowedSscCnt},
	}
}

// SubscriberRecord is the raw UDR document for one subscriber.
type SubscriberRecord struct {
	Supi   string `json:"supi"`
	K      []byte `json:"permanentKey"`
	Opc    []byte `json:"opc"`
	Sqn    uint64 `json:"sqn"`
	Dnn    string `json:"dnn"`
	AmbrUL uint64 `json:"ambrUl"`
	AmbrDL uint64 `json:"ambrDl"`
	Sst    uint32 `json:"sst"`
	Sd     string `json:"sd"`
	Found  bool   `json:"found"`
}

// Schema implements codec.Message.
func (m *SubscriberRecord) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindBytes, Ptr: &m.K},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.Opc},
		{Tag: 4, Kind: codec.KindUint64, Ptr: &m.Sqn},
		{Tag: 5, Kind: codec.KindString, Ptr: &m.Dnn},
		{Tag: 6, Kind: codec.KindUint64, Ptr: &m.AmbrUL},
		{Tag: 7, Kind: codec.KindUint64, Ptr: &m.AmbrDL},
		{Tag: 8, Kind: codec.KindUint32, Ptr: &m.Sst},
		{Tag: 9, Kind: codec.KindString, Ptr: &m.Sd},
		{Tag: 10, Kind: codec.KindBool, Ptr: &m.Found},
	}
}

// AMFRegistrationRequest registers the serving AMF at the UDM (UECM).
type AMFRegistrationRequest struct {
	Supi    string `json:"supi"`
	AmfID   string `json:"amfInstanceId"`
	Guami   string `json:"guami"`
	RatType string `json:"ratType"`
	ImsVoPs bool   `json:"imsVoPs"`
}

// Schema implements codec.Message.
func (m *AMFRegistrationRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.AmfID},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.Guami},
		{Tag: 4, Kind: codec.KindString, Ptr: &m.RatType},
		{Tag: 5, Kind: codec.KindBool, Ptr: &m.ImsVoPs},
	}
}

// AMFRegistrationResponse acknowledges the UECM registration.
type AMFRegistrationResponse struct {
	Accepted bool `json:"accepted"`
}

// Schema implements codec.Message.
func (m *AMFRegistrationResponse) Schema() []codec.Field {
	return []codec.Field{{Tag: 1, Kind: codec.KindBool, Ptr: &m.Accepted}}
}

// --- PDU session management (AMF -> SMF) ---

// SmContextCreateRequest is the PostSmContextsRequest of Fig. 6: the AMF
// asks the SMF to create a PDU session context.
type SmContextCreateRequest struct {
	Supi           string `json:"supi"`
	Pei            string `json:"pei,omitempty"`
	Gpsi           string `json:"gpsi,omitempty"`
	PduSessionID   uint32 `json:"pduSessionId"`
	Dnn            string `json:"dnn"`
	Sst            uint32 `json:"sst"`
	Sd             string `json:"sd"`
	ServingNfID    string `json:"servingNfId"`
	Guami          string `json:"guami"`
	ServingNetwork string `json:"servingNetwork"`
	RequestType    string `json:"requestType"`
	N1SmMsg        []byte `json:"n1SmMsg"` // NAS PDU Session Establishment Request
	AnType         string `json:"anType"`
	RatType        string `json:"ratType"`
	UeLocation     string `json:"ueLocation"`
	SmCtxStatusURI string `json:"smContextStatusUri"`
	GnbTunnelAddr  string `json:"gnbTunnelAddr"`
	GnbTunnelTEID  uint32 `json:"gnbTunnelTeid"`
}

// Schema implements codec.Message.
func (m *SmContextCreateRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.Pei},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.Gpsi},
		{Tag: 4, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
		{Tag: 5, Kind: codec.KindString, Ptr: &m.Dnn},
		{Tag: 6, Kind: codec.KindUint32, Ptr: &m.Sst},
		{Tag: 7, Kind: codec.KindString, Ptr: &m.Sd},
		{Tag: 8, Kind: codec.KindString, Ptr: &m.ServingNfID},
		{Tag: 9, Kind: codec.KindString, Ptr: &m.Guami},
		{Tag: 10, Kind: codec.KindString, Ptr: &m.ServingNetwork},
		{Tag: 11, Kind: codec.KindString, Ptr: &m.RequestType},
		{Tag: 12, Kind: codec.KindBytes, Ptr: &m.N1SmMsg},
		{Tag: 13, Kind: codec.KindString, Ptr: &m.AnType},
		{Tag: 14, Kind: codec.KindString, Ptr: &m.RatType},
		{Tag: 15, Kind: codec.KindString, Ptr: &m.UeLocation},
		{Tag: 16, Kind: codec.KindString, Ptr: &m.SmCtxStatusURI},
		{Tag: 17, Kind: codec.KindString, Ptr: &m.GnbTunnelAddr},
		{Tag: 18, Kind: codec.KindUint32, Ptr: &m.GnbTunnelTEID},
	}
}

// SmContextCreateResponse returns the created SM context.
type SmContextCreateResponse struct {
	SmContextRef string `json:"smContextRef"`
	Status       uint32 `json:"status"`
	UeIPv4       string `json:"ueIpv4"`
	UpfTEID      uint32 `json:"upfTeid"`
	UpfAddr      string `json:"upfAddr"`
	N2SmInfo     []byte `json:"n2SmInfo"` // NGAP PDU Session Resource Setup
}

// Schema implements codec.Message.
func (m *SmContextCreateResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.SmContextRef},
		{Tag: 2, Kind: codec.KindUint32, Ptr: &m.Status},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.UeIPv4},
		{Tag: 4, Kind: codec.KindUint32, Ptr: &m.UpfTEID},
		{Tag: 5, Kind: codec.KindString, Ptr: &m.UpfAddr},
		{Tag: 6, Kind: codec.KindBytes, Ptr: &m.N2SmInfo},
	}
}

// SmContextUpdateRequest updates an SM context: handover path switch,
// idle/active transitions, gNB tunnel changes.
type SmContextUpdateRequest struct {
	SmContextRef   string `json:"smContextRef"`
	UpCnxState     string `json:"upCnxState,omitempty"` // ACTIVATED / DEACTIVATED
	HoState        string `json:"hoState,omitempty"`    // PREPARING / PREPARED / COMPLETED
	TargetGnbAddr  string `json:"targetGnbAddr,omitempty"`
	TargetGnbTEID  uint32 `json:"targetGnbTeid,omitempty"`
	DataForwarding bool   `json:"dataForwarding,omitempty"` // request 5GC buffering (smart buffering)
	Release        bool   `json:"release,omitempty"`
	N2SmInfo       []byte `json:"n2SmInfo,omitempty"`
}

// Schema implements codec.Message.
func (m *SmContextUpdateRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.SmContextRef},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.UpCnxState},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.HoState},
		{Tag: 4, Kind: codec.KindString, Ptr: &m.TargetGnbAddr},
		{Tag: 5, Kind: codec.KindUint32, Ptr: &m.TargetGnbTEID},
		{Tag: 6, Kind: codec.KindBool, Ptr: &m.DataForwarding},
		{Tag: 7, Kind: codec.KindBool, Ptr: &m.Release},
		{Tag: 8, Kind: codec.KindBytes, Ptr: &m.N2SmInfo},
	}
}

// SmContextUpdateResponse acknowledges an SM context update.
type SmContextUpdateResponse struct {
	Status   uint32 `json:"status"`
	HoState  string `json:"hoState,omitempty"`
	N2SmInfo []byte `json:"n2SmInfo,omitempty"`
}

// Schema implements codec.Message.
func (m *SmContextUpdateResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindUint32, Ptr: &m.Status},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.HoState},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.N2SmInfo},
	}
}

// SmContextReleaseRequest tears down an SM context.
type SmContextReleaseRequest struct {
	SmContextRef string `json:"smContextRef"`
	Cause        string `json:"cause,omitempty"`
}

// Schema implements codec.Message.
func (m *SmContextReleaseRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.SmContextRef},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.Cause},
	}
}

// SmContextReleaseResponse acknowledges release.
type SmContextReleaseResponse struct {
	Status uint32 `json:"status"`
}

// Schema implements codec.Message.
func (m *SmContextReleaseResponse) Schema() []codec.Field {
	return []codec.Field{{Tag: 1, Kind: codec.KindUint32, Ptr: &m.Status}}
}

// --- Policy (AMF/SMF -> PCF) ---

// AMPolicyCreateRequest creates an access-and-mobility policy association.
type AMPolicyCreateRequest struct {
	Supi    string `json:"supi"`
	Guami   string `json:"guami"`
	RatType string `json:"ratType"`
}

// Schema implements codec.Message.
func (m *AMPolicyCreateRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.Guami},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.RatType},
	}
}

// AMPolicyCreateResponse returns the AM policy.
type AMPolicyCreateResponse struct {
	PolicyID string `json:"policyId"`
	Rfsp     uint32 `json:"rfspIndex"`
}

// Schema implements codec.Message.
func (m *AMPolicyCreateResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.PolicyID},
		{Tag: 2, Kind: codec.KindUint32, Ptr: &m.Rfsp},
	}
}

// SMPolicyCreateRequest creates a session-management policy association.
type SMPolicyCreateRequest struct {
	Supi         string `json:"supi"`
	PduSessionID uint32 `json:"pduSessionId"`
	Dnn          string `json:"dnn"`
	Sst          uint32 `json:"sst"`
	Sd           string `json:"sd"`
}

// Schema implements codec.Message.
func (m *SMPolicyCreateRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.Dnn},
		{Tag: 4, Kind: codec.KindUint32, Ptr: &m.Sst},
		{Tag: 5, Kind: codec.KindString, Ptr: &m.Sd},
	}
}

// SMPolicyCreateResponse returns session policy rules (PCC rules condensed
// to the fields the SMF turns into QERs).
type SMPolicyCreateResponse struct {
	PolicyID   string `json:"policyId"`
	SessRuleID string `json:"sessRuleId"`
	MbrUL      uint64 `json:"mbrUl"`
	MbrDL      uint64 `json:"mbrDl"`
	Default5QI uint32 `json:"default5qi"`
}

// Schema implements codec.Message.
func (m *SMPolicyCreateResponse) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.PolicyID},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.SessRuleID},
		{Tag: 3, Kind: codec.KindUint64, Ptr: &m.MbrUL},
		{Tag: 4, Kind: codec.KindUint64, Ptr: &m.MbrDL},
		{Tag: 5, Kind: codec.KindUint32, Ptr: &m.Default5QI},
	}
}

// --- NRF (registration / discovery) ---

// NFRegisterRequest registers an NF instance with the NRF.
type NFRegisterRequest struct {
	NfInstanceID string `json:"nfInstanceId"`
	NfType       string `json:"nfType"`
	Addr         string `json:"addr"`
}

// Schema implements codec.Message.
func (m *NFRegisterRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.NfInstanceID},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.NfType},
		{Tag: 3, Kind: codec.KindString, Ptr: &m.Addr},
	}
}

// NFRegisterResponse acknowledges NF registration.
type NFRegisterResponse struct {
	HeartbeatTimer uint32 `json:"heartBeatTimer"`
}

// Schema implements codec.Message.
func (m *NFRegisterResponse) Schema() []codec.Field {
	return []codec.Field{{Tag: 1, Kind: codec.KindUint32, Ptr: &m.HeartbeatTimer}}
}

// NFDiscoveryRequest searches for NF instances by type.
type NFDiscoveryRequest struct {
	TargetNfType    string `json:"target-nf-type"`
	RequesterNfType string `json:"requester-nf-type"`
}

// Schema implements codec.Message.
func (m *NFDiscoveryRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.TargetNfType},
		{Tag: 2, Kind: codec.KindString, Ptr: &m.RequesterNfType},
	}
}

// NFDiscoveryResponse lists matching instances (comma-separated addrs).
type NFDiscoveryResponse struct {
	Addrs string `json:"addrs"`
}

// Schema implements codec.Message.
func (m *NFDiscoveryResponse) Schema() []codec.Field {
	return []codec.Field{{Tag: 1, Kind: codec.KindString, Ptr: &m.Addrs}}
}

// --- AMF communication ---

// N1N2MessageTransferRequest delivers N1 (NAS) / N2 (NGAP) payloads toward
// a UE via its serving AMF — used by the SMF to push paging triggers and
// session resource commands.
type N1N2MessageTransferRequest struct {
	Supi         string `json:"supi"`
	PduSessionID uint32 `json:"pduSessionId"`
	N1Msg        []byte `json:"n1MessageContainer,omitempty"`
	N2Msg        []byte `json:"n2InfoContainer,omitempty"`
	Arp          uint32 `json:"arp,omitempty"`
}

// Schema implements codec.Message.
func (m *N1N2MessageTransferRequest) Schema() []codec.Field {
	return []codec.Field{
		{Tag: 1, Kind: codec.KindString, Ptr: &m.Supi},
		{Tag: 2, Kind: codec.KindUint32, Ptr: &m.PduSessionID},
		{Tag: 3, Kind: codec.KindBytes, Ptr: &m.N1Msg},
		{Tag: 4, Kind: codec.KindBytes, Ptr: &m.N2Msg},
		{Tag: 5, Kind: codec.KindUint32, Ptr: &m.Arp},
	}
}

// N1N2MessageTransferResponse acknowledges the transfer.
type N1N2MessageTransferResponse struct {
	Cause string `json:"cause"`
}

// Schema implements codec.Message.
func (m *N1N2MessageTransferResponse) Schema() []codec.Field {
	return []codec.Field{{Tag: 1, Kind: codec.KindString, Ptr: &m.Cause}}
}
