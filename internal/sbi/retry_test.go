package sbi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/faults"
	"l25gc/internal/metrics"
)

// flakyConn fails its first n Invokes with a transport error.
type flakyConn struct {
	failuresLeft int
	calls        int
	finalErr     error // error to return when failing (default: transport)
}

func (f *flakyConn) Invoke(op OpID, req codec.Message) (codec.Message, error) {
	f.calls++
	if f.failuresLeft > 0 {
		f.failuresLeft--
		if f.finalErr != nil {
			return nil, f.finalErr
		}
		return nil, errors.New("connection reset")
	}
	return op.NewResponse(), nil
}

func (f *flakyConn) Close() error { return nil }

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Multiplier: 2, Seed: 1}
}

func TestResilientConnRetriesTransportFailures(t *testing.T) {
	inner := &flakyConn{failuresLeft: 2}
	rc := NewResilientConn(inner, fastPolicy(), nil)
	resp, err := rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{})
	if err != nil || resp == nil {
		t.Fatalf("invoke: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner called %d times, want 3", inner.calls)
	}
	if rc.Retries() != 2 {
		t.Fatalf("retries = %d", rc.Retries())
	}
}

func TestResilientConnExhaustsBudget(t *testing.T) {
	inner := &flakyConn{failuresLeft: 100}
	rc := NewResilientConn(inner, fastPolicy(), nil)
	if _, err := rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{}); err == nil {
		t.Fatal("should fail after MaxAttempts")
	}
	if inner.calls != 4 {
		t.Fatalf("inner called %d times, want MaxAttempts=4", inner.calls)
	}
}

func TestResilientConnDoesNotRetryApplicationErrors(t *testing.T) {
	inner := &flakyConn{failuresLeft: 100,
		finalErr: fmt.Errorf("%w: 500: boom", ErrStatus)}
	rc := NewResilientConn(inner, fastPolicy(), nil)
	_, err := rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{})
	if !errors.Is(err, ErrStatus) {
		t.Fatalf("err = %v", err)
	}
	if inner.calls != 1 {
		t.Fatalf("application error retried %d times", inner.calls-1)
	}
}

func TestCircuitBreakerLifecycle(t *testing.T) {
	b := NewCircuitBreaker(3, 30*time.Millisecond)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
	}
	if !b.Open() {
		t.Fatal("breaker should open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d", b.Trips())
	}
	time.Sleep(40 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: half-open probe should be admitted")
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe admitted")
	}
	// Failed probe re-opens.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker should re-open after failed probe")
	}
	time.Sleep(40 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second half-open probe should be admitted")
	}
	b.Success()
	if !b.Allow() || !b.Allow() {
		t.Fatal("breaker should close after successful probe")
	}
}

func TestResilientConnShedsWhenBreakerOpen(t *testing.T) {
	inner := &flakyConn{failuresLeft: 100}
	b := NewCircuitBreaker(2, time.Minute)
	rc := NewResilientConn(inner, RetryPolicy{MaxAttempts: 1, Seed: 1}, b)
	for i := 0; i < 2; i++ {
		rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{})
	}
	if _, err := rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected circuit open, got %v", err)
	}
	if rc.Shed() == 0 {
		t.Fatal("shed counter not incremented")
	}
	calls := inner.calls
	rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{})
	if inner.calls != calls {
		t.Fatal("open breaker still forwarded a call")
	}
}

func TestBackoffIsDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		rc := NewResilientConn(&flakyConn{}, RetryPolicy{
			MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Second,
			Multiplier: 2, Jitter: 0.2, Seed: seed}, nil)
		out := make([]time.Duration, 4)
		for n := range out {
			out[n] = rc.backoff(n + 1)
		}
		return out
	}
	a, b := seq(9), seq(9)
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
		if a[n] <= 0 {
			t.Fatalf("non-positive backoff %v", a[n])
		}
	}
	// Exponential shape: attempt 3 waits longer than attempt 1 even with
	// 20% jitter (4x growth dominates).
	if a[2] <= a[0] {
		t.Fatalf("backoff not growing: %v", a)
	}
}

func TestHTTPInvokeRecoversFromInjectedLoss(t *testing.T) {
	srv, err := NewHTTPServer("127.0.0.1:0", codec.JSON{}, func(op OpID, req codec.Message) (codec.Message, error) {
		return op.NewResponse(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := NewHTTPConn(srv.Addr(), codec.JSON{})
	defer conn.Close()
	conn.SetTimeout(2 * time.Second)
	inj := faults.New(21).Add(faults.Rule{Point: "sbi.amf.invoke", Kind: faults.Drop, Count: 2})
	conn.SetInjector(inj, "sbi.amf")
	rc := NewResilientConn(conn, fastPolicy(), NewCircuitBreaker(10, time.Second))

	resp, err := rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{})
	if err != nil || resp == nil {
		t.Fatalf("invoke under 2 injected drops: %v", err)
	}
	if rc.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", rc.Retries())
	}
	if inj.Count("sbi.amf.invoke", faults.Drop) != 2 {
		t.Fatalf("drops = %d", inj.Count("sbi.amf.invoke", faults.Drop))
	}
}

func TestShmInvokeRecoversFromInjectedLoss(t *testing.T) {
	cli, srv := NewShmPair(64, func(op OpID, req codec.Message) (codec.Message, error) {
		return op.NewResponse(), nil
	})
	defer cli.Close()
	defer srv.Close()
	cli.SetTimeout(50 * time.Millisecond)
	// Drop the first request frame and the first reply frame.
	inj := faults.New(33).
		Add(faults.Rule{Point: "sbi.shm.cli.invoke", Kind: faults.Drop, Count: 1}).
		Add(faults.Rule{Point: "sbi.shm.srv.reply", Kind: faults.Drop, Count: 1})
	cli.SetInjector(inj, "sbi.shm.cli")
	srv.SetInjector(inj, "sbi.shm.srv")
	rc := NewResilientConn(cli, fastPolicy(), nil)

	resp, err := rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{})
	if err != nil || resp == nil {
		t.Fatalf("invoke under injected loss: %v", err)
	}
	if rc.Retries() != 2 {
		t.Fatalf("retries = %d, want 2 (request lost, then reply lost)", rc.Retries())
	}
}

func TestResilientConnExportMetrics(t *testing.T) {
	inner := &flakyConn{failuresLeft: 100}
	b := NewCircuitBreaker(2, time.Minute)
	rc := NewResilientConn(inner, fastPolicy(), b)
	reg := metrics.NewRegistry()
	rc.ExportMetrics(reg, "sbi.smf")

	rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{}) // trips the breaker
	rc.Invoke(OpNFDiscover, &NFDiscoveryRequest{}) // shed while open

	snap := reg.Snapshot()
	for _, name := range []string{
		"sbi.smf.retries", "sbi.smf.shed",
		"sbi.smf.breaker_trips", "sbi.smf.breaker_open",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("Snapshot missing %q", name)
		}
	}
	if snap.Counters["sbi.smf.breaker_trips"] == 0 {
		t.Error("breaker_trips is zero after threshold failures")
	}
	if snap.Counters["sbi.smf.breaker_open"] != 1 {
		t.Errorf("breaker_open = %d, want 1 while open", snap.Counters["sbi.smf.breaker_open"])
	}
	if snap.Counters["sbi.smf.shed"] == 0 {
		t.Error("shed is zero after invoking against an open breaker")
	}
}
