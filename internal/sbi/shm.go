package sbi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/shm"
	"l25gc/internal/trace"
)

// shmFrame is the descriptor passed through the mailbox: the message struct
// travels by pointer, which is the zero-serialization SBI of L²5GC.
type shmFrame struct {
	op     OpID
	seq    uint32
	isResp bool
	err    string
	// status/retryAfterMs carry a producer StatusError structurally, so
	// overload pushback (503 + Retry-After) survives the descriptor
	// transport just as it does the HTTP one.
	status       int
	retryAfterMs int64
	msg          codec.Message
}

// ShmServer is the producer side of the shared-memory SBI.
type ShmServer struct {
	handler Handler
	in      *shm.Mailbox[shmFrame]
	replyTo *shm.Mailbox[shmFrame]
	once    sync.Once

	inj     *faults.Injector
	txPoint faults.Point
}

// ShmConn is the consumer side of the shared-memory SBI.
type ShmConn struct {
	out     *shm.Mailbox[shmFrame]
	in      *shm.Mailbox[shmFrame]
	seq     atomic.Uint32
	timeout atomic.Int64 // per-invoke deadline, ns

	inj     *faults.Injector
	txPoint faults.Point

	tracec  atomic.Pointer[trace.Track]
	invokes atomic.Uint64
	errs    atomic.Uint64

	mu      sync.Mutex
	pending map[uint32]chan shmFrame

	once sync.Once
}

// NewShmPair wires a consumer connection to a producer server through two
// descriptor mailboxes of the given capacity.
func NewShmPair(ringSize int, h Handler) (*ShmConn, *ShmServer) {
	toSrv := shm.NewMailbox[shmFrame](ringSize)
	toCli := shm.NewMailbox[shmFrame](ringSize)
	srv := &ShmServer{handler: h, in: toSrv, replyTo: toCli}
	cli := &ShmConn{out: toSrv, in: toCli, pending: make(map[uint32]chan shmFrame)}
	cli.timeout.Store(int64(DefaultSBITimeout))
	go srv.loop()
	go cli.loop()
	return cli, srv
}

// SetInjector threads a fault injector through the producer's reply path
// (point prefix+".reply"). Call before traffic flows.
func (s *ShmServer) SetInjector(inj *faults.Injector, prefix string) {
	s.inj = inj
	s.txPoint = faults.Point(prefix + ".reply")
}

func (s *ShmServer) loop() {
	for {
		f, ok := s.in.Recv()
		if !ok {
			return
		}
		resp, err := s.handler(f.op, f.msg)
		rf := shmFrame{op: f.op, seq: f.seq, isResp: true, msg: resp}
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) {
				rf.status = se.Code
				rf.retryAfterMs = se.RetryAfter.Milliseconds()
				rf.err = se.Reason
			} else {
				rf.err = err.Error()
			}
		}
		if s.inj != nil {
			s.inj.TransmitMsg(s.txPoint, func() { s.replyTo.Send(rf) })
			continue
		}
		s.replyTo.Send(rf)
	}
}

// Close shuts the producer down.
func (s *ShmServer) Close() error {
	s.once.Do(func() {
		s.in.Close()
		s.replyTo.Close()
	})
	return nil
}

func (c *ShmConn) loop() {
	for {
		f, ok := c.in.Recv()
		if !ok {
			return
		}
		if !f.isResp {
			continue
		}
		c.mu.Lock()
		ch := c.pending[f.seq]
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// SetTimeout bounds each Invoke round trip.
func (c *ShmConn) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// SetInjector threads a fault injector through the consumer's send path
// (point prefix+".invoke"). Call before traffic flows.
func (c *ShmConn) SetInjector(inj *faults.Injector, prefix string) {
	c.inj = inj
	c.txPoint = faults.Point(prefix + ".invoke")
}

// SetTracer installs a trace track; Invoke emits an "sbi.invoke" root span
// with a single "sbi.transfer.shm" child — no encode/decode stages exist
// on this transport, which is the point of the descriptor-passing SBI.
func (c *ShmConn) SetTracer(tk *trace.Track) { c.tracec.Store(tk) }

// ExportMetrics registers the consumer counters under prefix.
func (c *ShmConn) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".invokes", c.invokes.Load)
	reg.RegisterGauge(prefix+".errors", c.errs.Load)
}

// waiter carries one in-flight Invoke's response channel and timeout
// timer so the per-call hot path allocates neither. Recycled only after
// a completed round trip: a timed-out Invoke abandons its waiter, since
// a racing late response may still land in the channel — capacity 1
// guarantees that delivery never blocks the consumer loop, and the
// abandoned waiter simply falls to the GC instead of poisoning a reuse.
type waiter struct {
	ch    chan shmFrame
	timer *time.Timer
}

var waiterPool = sync.Pool{
	New: func() any {
		w := &waiter{ch: make(chan shmFrame, 1), timer: time.NewTimer(time.Hour)}
		if !w.timer.Stop() {
			<-w.timer.C
		}
		return w
	},
}

// Invoke implements Conn.
func (c *ShmConn) Invoke(op OpID, req codec.Message) (codec.Message, error) {
	c.invokes.Add(1)
	root := c.tracec.Load().Start("sbi.invoke")
	root.Attr("op", op.Name())
	defer root.End()
	seq := c.seq.Add(1)
	w := waiterPool.Get().(*waiter)
	c.mu.Lock()
	c.pending[seq] = w.ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()
	frame := shmFrame{op: op, seq: seq, msg: req}
	tx := root.Child("sbi.transfer.shm")
	if c.inj != nil {
		var serr error
		c.inj.TransmitMsg(c.txPoint, func() {
			if err := c.out.Send(frame); err != nil {
				serr = err
			}
		})
		if serr != nil {
			tx.End()
			c.errs.Add(1)
			waiterPool.Put(w) // nothing was sent; no late delivery possible
			return nil, serr
		}
	} else if err := c.out.Send(frame); err != nil {
		tx.End()
		c.errs.Add(1)
		waiterPool.Put(w)
		return nil, err
	}
	tx.End()
	w.timer.Reset(time.Duration(c.timeout.Load()))
	select {
	case f := <-w.ch:
		if !w.timer.Stop() {
			<-w.timer.C
		}
		if f.seq != seq {
			// Defensive: a frame from an abandoned incarnation of this
			// channel; treat as lost and drop the waiter with it.
			c.errs.Add(1)
			return nil, fmt.Errorf("sbi: shm invoke %s got stale response", op.Name())
		}
		waiterPool.Put(w)
		if f.status != 0 {
			c.errs.Add(1)
			return nil, &StatusError{
				Code:       f.status,
				RetryAfter: time.Duration(f.retryAfterMs) * time.Millisecond,
				Reason:     f.err,
			}
		}
		if f.err != "" {
			c.errs.Add(1)
			return nil, fmt.Errorf("sbi: producer error: %s", f.err)
		}
		return f.msg, nil
	case <-w.timer.C:
		c.errs.Add(1)
		return nil, fmt.Errorf("sbi: shm invoke %s timed out", op.Name())
	}
}

// Close implements Conn.
func (c *ShmConn) Close() error {
	c.once.Do(func() { c.in.Close() })
	return nil
}
