package sbi

import (
	"fmt"
	"reflect"
	"testing"

	"l25gc/internal/codec"
)

// fillMessage sets deterministic non-zero values into every schema field.
func fillMessage(m codec.Message, seed int) {
	for i, f := range m.Schema() {
		v := seed + i + 1
		switch f.Kind {
		case codec.KindUint32:
			*f.Ptr.(*uint32) = uint32(v)
		case codec.KindUint64:
			*f.Ptr.(*uint64) = uint64(v) << 20
		case codec.KindString:
			*f.Ptr.(*string) = fmt.Sprintf("field-%d", v)
		case codec.KindBytes:
			*f.Ptr.(*[]byte) = []byte{byte(v), byte(v + 1)}
		case codec.KindBool:
			*f.Ptr.(*bool) = v%2 == 0
		case codec.KindFloat64:
			*f.Ptr.(*float64) = float64(v) * 1.5
		}
	}
}

// TestEveryMessageRoundTripsAllCodecs is the exhaustive model test: every
// registered operation's request and response must survive every codec.
func TestEveryMessageRoundTripsAllCodecs(t *testing.T) {
	for _, op := range Ops() {
		for _, mk := range []struct {
			kind string
			mk   func() codec.Message
		}{{"req", op.NewRequest}, {"resp", op.NewResponse}} {
			for _, c := range codec.All() {
				name := fmt.Sprintf("%s/%s/%s", op.Name(), mk.kind, c.Name())
				t.Run(name, func(t *testing.T) {
					in := mk.mk()
					fillMessage(in, 7)
					raw, err := c.Marshal(in)
					if err != nil {
						t.Fatal(err)
					}
					out := mk.mk()
					if err := c.Unmarshal(raw, out); err != nil {
						t.Fatal(err)
					}
					// Compare via schema values (pointer fields differ).
					inF, outF := in.Schema(), out.Schema()
					for i := range inF {
						a := reflect.ValueOf(inF[i].Ptr).Elem().Interface()
						b := reflect.ValueOf(outF[i].Ptr).Elem().Interface()
						if !reflect.DeepEqual(a, b) {
							t.Fatalf("field tag %d: got %v want %v", inF[i].Tag, b, a)
						}
					}
				})
			}
		}
	}
}

func TestOpMetadata(t *testing.T) {
	if OpPostSmContexts.Path() != "/nsmf-pdusession/v1/sm-contexts" {
		t.Fatalf("path = %s", OpPostSmContexts.Path())
	}
	if OpPostSmContexts.Name() != "Nsmf_PDUSession_PostSmContexts" {
		t.Fatalf("name = %s", OpPostSmContexts.Name())
	}
	if OpInvalid.NewRequest() != nil || OpInvalid.Path() != "" {
		t.Fatal("invalid op should have no metadata")
	}
	// All paths must be distinct (mux requirement).
	seen := map[string]OpID{}
	for _, op := range Ops() {
		if prev, dup := seen[op.Path()]; dup {
			t.Fatalf("duplicate path %s for %v and %v", op.Path(), prev, op)
		}
		seen[op.Path()] = op
	}
}

func testHandler(op OpID, req codec.Message) (codec.Message, error) {
	switch op {
	case OpUEAuthenticationsPost:
		r := req.(*AuthenticationRequest)
		return &AuthenticationResponse{
			AuthType:  "5G_AKA",
			AuthCtxID: "ctx-" + r.SuciOrSupi,
			Rand:      []byte{1, 2, 3, 4},
		}, nil
	case OpPostSmContexts:
		r := req.(*SmContextCreateRequest)
		return &SmContextCreateResponse{
			SmContextRef: fmt.Sprintf("%s-%d", r.Supi, r.PduSessionID),
			Status:       201,
			UeIPv4:       "10.60.0.1",
		}, nil
	case OpNFDiscover:
		return &NFDiscoveryResponse{Addrs: "127.0.0.1:9999"}, nil
	}
	return nil, fmt.Errorf("unhandled op %v", op)
}

func exerciseConn(t *testing.T, conn Conn) {
	t.Helper()
	resp, err := conn.Invoke(OpUEAuthenticationsPost, &AuthenticationRequest{
		SuciOrSupi: "imsi-208930000000001", ServingNetworkName: "5G:mnc093.mcc208",
	})
	if err != nil {
		t.Fatal(err)
	}
	ar := resp.(*AuthenticationResponse)
	if ar.AuthCtxID != "ctx-imsi-208930000000001" || ar.AuthType != "5G_AKA" {
		t.Fatalf("got %+v", ar)
	}
	resp, err = conn.Invoke(OpPostSmContexts, &SmContextCreateRequest{
		Supi: "imsi-1", PduSessionID: 5, Dnn: "internet",
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := resp.(*SmContextCreateResponse)
	if sr.SmContextRef != "imsi-1-5" || sr.Status != 201 {
		t.Fatalf("got %+v", sr)
	}
	// Error propagation.
	if _, err := conn.Invoke(OpSMPolicyCreate, &SMPolicyCreateRequest{}); err == nil {
		t.Fatal("unhandled op should surface an error")
	}
}

func TestHTTPTransport(t *testing.T) {
	for _, c := range codec.All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			srv, err := NewHTTPServer("127.0.0.1:0", c, testHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			conn := NewHTTPConn(srv.Addr(), c)
			defer conn.Close()
			exerciseConn(t, conn)
		})
	}
}

func TestShmTransport(t *testing.T) {
	conn, srv := NewShmPair(64, testHandler)
	defer srv.Close()
	defer conn.Close()
	exerciseConn(t, conn)
}

func TestShmTransportPointerIdentity(t *testing.T) {
	// The shared-memory SBI must pass the same object through — the
	// zero-copy property the paper's Fig. 9 speedup comes from.
	var received codec.Message
	conn, srv := NewShmPair(8, func(op OpID, req codec.Message) (codec.Message, error) {
		received = req
		return &NFDiscoveryResponse{}, nil
	})
	defer srv.Close()
	defer conn.Close()
	req := &NFDiscoveryRequest{TargetNfType: "UPF"}
	if _, err := conn.Invoke(OpNFDiscover, req); err != nil {
		t.Fatal(err)
	}
	if received != codec.Message(req) {
		t.Fatal("shm transport must pass the identical message pointer")
	}
}

func TestShmConcurrentInvokes(t *testing.T) {
	conn, srv := NewShmPair(128, func(op OpID, req codec.Message) (codec.Message, error) {
		r := req.(*AuthenticationRequest)
		return &AuthenticationResponse{AuthCtxID: r.SuciOrSupi}, nil
	})
	defer srv.Close()
	defer conn.Close()
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			id := fmt.Sprintf("supi-%d", i)
			resp, err := conn.Invoke(OpUEAuthenticationsPost, &AuthenticationRequest{SuciOrSupi: id})
			if err == nil && resp.(*AuthenticationResponse).AuthCtxID != id {
				err = fmt.Errorf("mismatched response for %s", id)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
