// Package sbi implements the 5GC Service Based Interface: the operation
// catalogue and message models (mirroring the OpenAPI-generated free5GC
// models), an HTTP/REST transport over kernel TCP sockets (the free5GC
// baseline), and a shared-memory transport that passes message structs by
// pointer through descriptor mailboxes (the L²5GC replacement, paper §3.2).
package sbi

import (
	"errors"
	"fmt"

	"l25gc/internal/codec"
)

// OpID identifies one SBI operation (service + method).
type OpID uint16

// SBI operations used by the 5GC control-plane procedures.
const (
	OpInvalid OpID = iota

	// AUSF: Nausf_UEAuthentication
	OpUEAuthenticationsPost
	OpUEAuthenticationsConfirm

	// UDM: Nudm_UEAuthentication / Nudm_SDM / Nudm_UECM
	OpGenerateAuthData
	OpGetAMSubscriptionData
	OpGetSMSubscriptionData
	OpRegisterAMF3GPPAccess

	// SMF: Nsmf_PDUSession
	OpPostSmContexts
	OpUpdateSmContext
	OpReleaseSmContext

	// PCF: Npcf_AMPolicy / Npcf_SMPolicy
	OpAMPolicyCreate
	OpSMPolicyCreate

	// NRF: Nnrf_NFManagement / Nnrf_NFDiscovery
	OpNFRegister
	OpNFDiscover

	// UDR: Nudr_DataRepository
	OpQuerySubscriberData

	// AMF: Namf_Communication (N2 messaging toward AMF peers)
	OpN1N2MessageTransfer
)

// opInfo carries per-operation metadata: the REST path used by the HTTP
// transport and factories for the request/response models.
type opInfo struct {
	name    string
	path    string
	newReq  func() codec.Message
	newResp func() codec.Message
}

var opTable = map[OpID]opInfo{
	OpUEAuthenticationsPost: {
		"Nausf_UEAuthentications_Post", "/nausf-auth/v1/ue-authentications",
		func() codec.Message { return &AuthenticationRequest{} },
		func() codec.Message { return &AuthenticationResponse{} },
	},
	OpUEAuthenticationsConfirm: {
		"Nausf_UEAuthentications_Confirm", "/nausf-auth/v1/ue-authentications/confirm",
		func() codec.Message { return &AuthConfirmRequest{} },
		func() codec.Message { return &AuthConfirmResponse{} },
	},
	OpGenerateAuthData: {
		"Nudm_GenerateAuthData", "/nudm-ueau/v1/generate-auth-data",
		func() codec.Message { return &AuthInfoRequest{} },
		func() codec.Message { return &AuthInfoResponse{} },
	},
	OpGetAMSubscriptionData: {
		"Nudm_SDM_GetAMData", "/nudm-sdm/v1/am-data",
		func() codec.Message { return &SubscriptionDataRequest{} },
		func() codec.Message { return &AMSubscriptionData{} },
	},
	OpGetSMSubscriptionData: {
		"Nudm_SDM_GetSMData", "/nudm-sdm/v1/sm-data",
		func() codec.Message { return &SubscriptionDataRequest{} },
		func() codec.Message { return &SMSubscriptionData{} },
	},
	OpRegisterAMF3GPPAccess: {
		"Nudm_UECM_RegisterAMF", "/nudm-uecm/v1/registrations/amf-3gpp-access",
		func() codec.Message { return &AMFRegistrationRequest{} },
		func() codec.Message { return &AMFRegistrationResponse{} },
	},
	OpPostSmContexts: {
		"Nsmf_PDUSession_PostSmContexts", "/nsmf-pdusession/v1/sm-contexts",
		func() codec.Message { return &SmContextCreateRequest{} },
		func() codec.Message { return &SmContextCreateResponse{} },
	},
	OpUpdateSmContext: {
		"Nsmf_PDUSession_UpdateSmContext", "/nsmf-pdusession/v1/sm-contexts/update",
		func() codec.Message { return &SmContextUpdateRequest{} },
		func() codec.Message { return &SmContextUpdateResponse{} },
	},
	OpReleaseSmContext: {
		"Nsmf_PDUSession_ReleaseSmContext", "/nsmf-pdusession/v1/sm-contexts/release",
		func() codec.Message { return &SmContextReleaseRequest{} },
		func() codec.Message { return &SmContextReleaseResponse{} },
	},
	OpAMPolicyCreate: {
		"Npcf_AMPolicyControl_Create", "/npcf-am-policy-control/v1/policies",
		func() codec.Message { return &AMPolicyCreateRequest{} },
		func() codec.Message { return &AMPolicyCreateResponse{} },
	},
	OpSMPolicyCreate: {
		"Npcf_SMPolicyControl_Create", "/npcf-smpolicycontrol/v1/sm-policies",
		func() codec.Message { return &SMPolicyCreateRequest{} },
		func() codec.Message { return &SMPolicyCreateResponse{} },
	},
	OpNFRegister: {
		"Nnrf_NFManagement_Register", "/nnrf-nfm/v1/nf-instances",
		func() codec.Message { return &NFRegisterRequest{} },
		func() codec.Message { return &NFRegisterResponse{} },
	},
	OpNFDiscover: {
		"Nnrf_NFDiscovery_Search", "/nnrf-disc/v1/nf-instances",
		func() codec.Message { return &NFDiscoveryRequest{} },
		func() codec.Message { return &NFDiscoveryResponse{} },
	},
	OpQuerySubscriberData: {
		"Nudr_DR_Query", "/nudr-dr/v1/subscription-data",
		func() codec.Message { return &SubscriptionDataRequest{} },
		func() codec.Message { return &SubscriberRecord{} },
	},
	OpN1N2MessageTransfer: {
		"Namf_Communication_N1N2MessageTransfer", "/namf-comm/v1/ue-contexts/n1-n2-messages",
		func() codec.Message { return &N1N2MessageTransferRequest{} },
		func() codec.Message { return &N1N2MessageTransferResponse{} },
	},
}

// Name returns the 3GPP-style operation name.
func (o OpID) Name() string {
	if i, ok := opTable[o]; ok {
		return i.name
	}
	return fmt.Sprintf("Op(%d)", o)
}

// Path returns the REST path for the HTTP transport.
func (o OpID) Path() string {
	if i, ok := opTable[o]; ok {
		return i.path
	}
	return ""
}

// NewRequest allocates the request model for the operation.
func (o OpID) NewRequest() codec.Message {
	if i, ok := opTable[o]; ok {
		return i.newReq()
	}
	return nil
}

// NewResponse allocates the response model for the operation.
func (o OpID) NewResponse() codec.Message {
	if i, ok := opTable[o]; ok {
		return i.newResp()
	}
	return nil
}

// Ops returns every defined operation, for exhaustive tests.
func Ops() []OpID {
	out := make([]OpID, 0, len(opTable))
	for o := range opTable {
		out = append(out, o)
	}
	return out
}

// Handler processes an SBI request addressed to a producer NF.
type Handler func(op OpID, req codec.Message) (codec.Message, error)

// Conn is a consumer-side connection to one producer NF.
type Conn interface {
	// Invoke performs one request/response exchange.
	Invoke(op OpID, req codec.Message) (codec.Message, error)
	Close() error
}

// Errors shared by the transports.
var (
	ErrNoHandler = errors.New("sbi: no handler installed")
	ErrBadOp     = errors.New("sbi: unknown operation")
	ErrStatus    = errors.New("sbi: non-2xx response")
)
