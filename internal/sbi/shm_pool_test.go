package sbi

import (
	"testing"

	"l25gc/internal/codec"
	"l25gc/internal/testutil"
)

// The pooled-waiter Invoke path must not allocate in steady state: the
// descriptor frame travels by value through the mailbox, the response
// channel and timeout timer are recycled, and no marshal happens at all.
// This is the shm half of the -benchmem gate the NGAP frame pool has.
func TestShmInvokeSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race detector drops a fraction of Pool.Puts by design; the alloc gate runs raceless in storm-smoke")
	}
	resp := &NFDiscoveryResponse{Addrs: "upf-1"}
	conn, srv := NewShmPair(64, func(op OpID, req codec.Message) (codec.Message, error) {
		return resp, nil
	})
	defer srv.Close()
	defer conn.Close()
	req := &NFDiscoveryRequest{TargetNfType: "UPF"}
	// Warm the waiter pool and the pending map.
	for i := 0; i < 8; i++ {
		if _, err := conn.Invoke(OpNFDiscover, req); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := conn.Invoke(OpNFDiscover, req); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
	})
	// The producer goroutine's reply frame write is counted against this
	// goroutine by AllocsPerRun only if it allocates — it must not. Allow
	// zero: every structure on the round trip is pooled or by-value.
	if allocs > 0 {
		t.Fatalf("shm Invoke allocates %.1f/op in steady state, want 0", allocs)
	}
}

func BenchmarkShmInvoke(b *testing.B) {
	resp := &NFDiscoveryResponse{Addrs: "upf-1"}
	conn, srv := NewShmPair(64, func(op OpID, req codec.Message) (codec.Message, error) {
		return resp, nil
	})
	defer srv.Close()
	defer conn.Close()
	req := &NFDiscoveryRequest{TargetNfType: "UPF"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Invoke(OpNFDiscover, req); err != nil {
			b.Fatal(err)
		}
	}
}
