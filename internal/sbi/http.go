package sbi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/faults"
)

// HTTPServer exposes a producer NF's operations over REST, the way
// free5GC's OpenAPI-generated servers do: one POST route per operation,
// bodies encoded with the configured codec (JSON by default).
type HTTPServer struct {
	handler Handler
	codec   codec.Codec
	ln      net.Listener
	srv     *http.Server
}

// NewHTTPServer starts a server on addr ("127.0.0.1:0" for ephemeral)
// routing every registered operation to h, with bodies in c.
func NewHTTPServer(addr string, c codec.Codec, h Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{handler: h, codec: c, ln: ln}
	mux := http.NewServeMux()
	for op := range opTable {
		op := op
		mux.HandleFunc(op.Path(), func(w http.ResponseWriter, r *http.Request) {
			s.serve(op, w, r)
		})
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

func (s *HTTPServer) serve(op OpID, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req := op.NewRequest()
	if err := s.codec.Unmarshal(body, req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.handler(op, req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out, err := s.codec.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType(s.codec))
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// Close shuts the server down.
func (s *HTTPServer) Close() error { return s.srv.Close() }

func contentType(c codec.Codec) string {
	if c.Name() == "json" {
		return "application/json"
	}
	return "application/octet-stream"
}

// HTTPConn is the consumer side of the REST SBI: it serializes the request
// with the codec, POSTs it over a (kept-alive) kernel TCP connection, and
// deserializes the response — paying exactly the serialization + socket
// costs the paper attributes to the HTTP SBI.
type HTTPConn struct {
	base    string
	codec   codec.Codec
	client  *http.Client
	timeout atomic.Int64 // per-request deadline, ns

	inj     *faults.Injector
	txPoint faults.Point
}

// DefaultSBITimeout is the default per-request deadline.
const DefaultSBITimeout = 5 * time.Second

// NewHTTPConn dials a producer at host:port.
func NewHTTPConn(addr string, c codec.Codec) *HTTPConn {
	h := &HTTPConn{
		base:  "http://" + addr,
		codec: c,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	h.timeout.Store(int64(DefaultSBITimeout))
	return h
}

// SetTimeout bounds each Invoke round trip (context deadline).
func (c *HTTPConn) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// SetInjector threads a fault injector through the consumer side; the
// injection point is prefix+".invoke". Call before traffic flows.
func (c *HTTPConn) SetInjector(inj *faults.Injector, prefix string) {
	c.inj = inj
	c.txPoint = faults.Point(prefix + ".invoke")
}

// Invoke implements Conn: one POST bounded by the per-request deadline.
func (c *HTTPConn) Invoke(op OpID, req codec.Message) (codec.Message, error) {
	body, err := c.codec.Marshal(req)
	if err != nil {
		return nil, err
	}
	if c.inj != nil {
		act := c.inj.Decide(c.txPoint, body)
		if act.Drop {
			return nil, fmt.Errorf("%w: request lost", ErrInjected)
		}
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(c.timeout.Load()))
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+op.Path(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", contentType(c.codec))
	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	out, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("%w: %s: %s", ErrStatus, httpResp.Status, out)
	}
	resp := op.NewResponse()
	if err := c.codec.Unmarshal(out, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Close implements Conn.
func (c *HTTPConn) Close() error {
	c.client.CloseIdleConnections()
	return nil
}
