package sbi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"l25gc/internal/codec"
	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/trace"
)

// HTTPServer exposes a producer NF's operations over REST, the way
// free5GC's OpenAPI-generated servers do: one POST route per operation,
// bodies encoded with the configured codec (JSON by default).
type HTTPServer struct {
	handler Handler
	codec   codec.Codec
	ln      net.Listener
	srv     *http.Server
}

// NewHTTPServer starts a server on addr ("127.0.0.1:0" for ephemeral)
// routing every registered operation to h, with bodies in c.
func NewHTTPServer(addr string, c codec.Codec, h Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{handler: h, codec: c, ln: ln}
	mux := http.NewServeMux()
	for op := range opTable {
		op := op
		mux.HandleFunc(op.Path(), func(w http.ResponseWriter, r *http.Request) {
			s.serve(op, w, r)
		})
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

func (s *HTTPServer) serve(op OpID, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req := op.NewRequest()
	if err := s.codec.Unmarshal(body, req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.handler(op, req)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			if se.RetryAfter > 0 {
				secs := int(se.RetryAfter / time.Second)
				if se.RetryAfter%time.Second != 0 {
					secs++
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				// Sub-second precision for the deterministic backoff
				// schedules the chaos suite replays.
				w.Header().Set("X-Retry-After-Ms",
					strconv.FormatInt(se.RetryAfter.Milliseconds(), 10))
			}
			http.Error(w, se.Reason, se.Code)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out, err := s.codec.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType(s.codec))
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// Close shuts the server down.
func (s *HTTPServer) Close() error { return s.srv.Close() }

func contentType(c codec.Codec) string {
	if c.Name() == "json" {
		return "application/json"
	}
	return "application/octet-stream"
}

// HTTPConn is the consumer side of the REST SBI: it serializes the request
// with the codec, POSTs it over a (kept-alive) kernel TCP connection, and
// deserializes the response — paying exactly the serialization + socket
// costs the paper attributes to the HTTP SBI.
type HTTPConn struct {
	base    string
	codec   codec.Codec
	client  *http.Client
	timeout atomic.Int64 // per-request deadline, ns

	inj     *faults.Injector
	txPoint faults.Point

	tracec  atomic.Pointer[trace.Track]
	invokes atomic.Uint64
	errs    atomic.Uint64
}

// DefaultSBITimeout is the default per-request deadline.
const DefaultSBITimeout = 5 * time.Second

// NewHTTPConn dials a producer at host:port.
func NewHTTPConn(addr string, c codec.Codec) *HTTPConn {
	h := &HTTPConn{
		base:  "http://" + addr,
		codec: c,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	h.timeout.Store(int64(DefaultSBITimeout))
	return h
}

// SetTimeout bounds each Invoke round trip (context deadline).
func (c *HTTPConn) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// SetInjector threads a fault injector through the consumer side; the
// injection point is prefix+".invoke". Call before traffic flows.
func (c *HTTPConn) SetInjector(inj *faults.Injector, prefix string) {
	c.inj = inj
	c.txPoint = faults.Point(prefix + ".invoke")
}

// SetTracer installs a trace track; Invoke emits an "sbi.invoke" root span
// with encode/http.do/decode children — the serialization and socket
// stages the shm SBI does not pay.
func (c *HTTPConn) SetTracer(tk *trace.Track) { c.tracec.Store(tk) }

// ExportMetrics registers the consumer counters under prefix.
func (c *HTTPConn) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".invokes", c.invokes.Load)
	reg.RegisterGauge(prefix+".errors", c.errs.Load)
}

// fail counts one failed invoke.
func (c *HTTPConn) fail(err error) (codec.Message, error) {
	c.errs.Add(1)
	return nil, err
}

// Invoke implements Conn: one POST bounded by the per-request deadline.
func (c *HTTPConn) Invoke(op OpID, req codec.Message) (codec.Message, error) {
	c.invokes.Add(1)
	root := c.tracec.Load().Start("sbi.invoke")
	root.Attr("op", op.Name())
	defer root.End()
	enc := root.Child("sbi.encode")
	body, err := c.codec.Marshal(req)
	enc.End()
	if err != nil {
		return c.fail(err)
	}
	if c.inj != nil {
		act := c.inj.Decide(c.txPoint, body)
		if act.Drop {
			return c.fail(fmt.Errorf("%w: request lost", ErrInjected))
		}
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(c.timeout.Load()))
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+op.Path(), bytes.NewReader(body))
	if err != nil {
		return c.fail(err)
	}
	httpReq.Header.Set("Content-Type", contentType(c.codec))
	do := root.Child("sbi.http.do")
	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		do.End()
		return c.fail(err)
	}
	out, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	do.End()
	if err != nil {
		return c.fail(err)
	}
	if httpResp.StatusCode/100 != 2 {
		se := &StatusError{Code: httpResp.StatusCode, Reason: string(bytes.TrimSpace(out))}
		if ms := httpResp.Header.Get("X-Retry-After-Ms"); ms != "" {
			if v, perr := strconv.ParseInt(ms, 10, 64); perr == nil {
				se.RetryAfter = time.Duration(v) * time.Millisecond
			}
		} else if ra := httpResp.Header.Get("Retry-After"); ra != "" {
			if v, perr := strconv.Atoi(ra); perr == nil {
				se.RetryAfter = time.Duration(v) * time.Second
			}
		}
		return c.fail(se)
	}
	resp := op.NewResponse()
	dec := root.Child("sbi.decode")
	err = c.codec.Unmarshal(out, resp)
	dec.End()
	if err != nil {
		return c.fail(err)
	}
	return resp, nil
}

// Close implements Conn.
func (c *HTTPConn) Close() error {
	c.client.CloseIdleConnections()
	return nil
}
