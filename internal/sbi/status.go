package sbi

import (
	"errors"
	"fmt"
	"time"
)

// StatusServiceUnavailable is the one non-2xx status the overload layer
// produces: the producer is up but shedding, and Retry-After carries the
// advised backoff.
const StatusServiceUnavailable = 503

// StatusError is a producer-side rejection with an explicit HTTP-style
// status. It unwraps to ErrStatus, so existing errors.Is classification
// (producer answered → final, transport healthy) keeps working; the HTTP
// transport maps it to a real status line + Retry-After header, and the
// shm transport carries it structurally in the reply frame.
type StatusError struct {
	Code       int
	RetryAfter time.Duration
	Reason     string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("sbi: status %d (retry after %v): %s", e.Code, e.RetryAfter, e.Reason)
	}
	return fmt.Sprintf("sbi: status %d: %s", e.Code, e.Reason)
}

// Unwrap lets errors.Is(err, ErrStatus) hold.
func (e *StatusError) Unwrap() error { return ErrStatus }

// RetryAfterOf extracts the advised backoff from a producer pushback
// error, reporting whether err is a 503 StatusError.
func RetryAfterOf(err error) (time.Duration, bool) {
	var se *StatusError
	if errors.As(err, &se) && se.Code == StatusServiceUnavailable {
		return se.RetryAfter, true
	}
	return 0, false
}
