package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/testutil"
)

// simClock is a hand-cranked clock for deterministic span timing.
type simClock struct{ now time.Duration }

func (c *simClock) advance(d time.Duration) { c.now += d }

func newSimTracer() (*Tracer, *simClock) {
	c := &simClock{}
	return NewWithClock(func() time.Duration { return c.now }), c
}

func TestNilTracerIsInert(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var tr *Tracer
	sp := tr.Start("track", "root")
	if sp.Enabled() {
		t.Fatal("nil tracer produced an enabled span")
	}
	sp.Attr("k", "v")
	sp.Event("ev")
	sp.Child("child").End()
	sp.End()
	tr.Event("track", "ev")
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer counted spans")
	}
	if bd := tr.Breakdown("root"); bd != nil {
		t.Fatal("nil tracer produced a breakdown")
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out []any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("nil-tracer export is not valid JSON: %v", err)
	}
}

func TestNilTrackIsInert(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var tk *Track
	sp := tk.Start("x")
	if sp.Enabled() {
		t.Fatal("nil track produced an enabled span")
	}
	sp.End()
	tk.Event("ev")
	if tk.Tracer() != nil {
		t.Fatal("nil track has a tracer")
	}
	if NewTrack(nil, "x") != nil {
		t.Fatal("NewTrack(nil) must return nil")
	}
}

func TestSpanTimingAndParent(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, c := newSimTracer()
	root := tr.Start("cp", "proc")
	c.advance(10 * time.Millisecond)
	child := root.Child("stage")
	c.advance(5 * time.Millisecond)
	child.End()
	c.advance(1 * time.Millisecond)
	root.End()

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.spans))
	}
	r, ch := tr.spans[0], tr.spans[1]
	if r.parent != -1 || ch.parent != 0 {
		t.Fatalf("parent links wrong: root %d, child %d", r.parent, ch.parent)
	}
	if ch.track != "cp" {
		t.Fatalf("child track = %q, want cp", ch.track)
	}
	if got := ch.end - ch.start; got != 5*time.Millisecond {
		t.Fatalf("child duration = %v, want 5ms", got)
	}
	if got := r.end - r.start; got != 16*time.Millisecond {
		t.Fatalf("root duration = %v, want 16ms", got)
	}
}

func TestDoubleEndKeepsFirst(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, c := newSimTracer()
	sp := tr.Start("t", "s")
	c.advance(time.Millisecond)
	sp.End()
	c.advance(time.Millisecond)
	sp.End()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if got := tr.spans[0].end; got != time.Millisecond {
		t.Fatalf("end moved on double End: %v", got)
	}
}

func TestAttrsBounded(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, _ := newSimTracer()
	sp := tr.Start("t", "s")
	for i := 0; i < maxAttrs+3; i++ {
		sp.Attr("k", "v")
	}
	sp.End()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if int(tr.spans[0].nattrs) != maxAttrs {
		t.Fatalf("nattrs = %d, want %d", tr.spans[0].nattrs, maxAttrs)
	}
}

func TestWriteChromeShape(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, c := newSimTracer()
	sp := tr.Start("pfcp.smf", "pfcp.request.session_establishment")
	sp.Attr("seid", "0x101")
	c.advance(2 * time.Millisecond)
	enc := sp.Child("pfcp.encode")
	c.advance(100 * time.Microsecond)
	enc.End()
	sp.End()
	tr.Event("faults", "fault.drop", "point", "pfcp.smf.tx")

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &evs); err != nil {
		t.Fatalf("export is not valid Chrome trace JSON: %v\n%s", err, b.String())
	}
	var phases, names []string
	for _, e := range evs {
		phases = append(phases, e["ph"].(string))
		names = append(names, e["name"].(string))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"thread_name", "pfcp.request.session_establishment", "pfcp.encode", "fault.drop"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("export missing %q: %s", want, joined)
		}
	}
	if !strings.Contains(strings.Join(phases, ","), "X") {
		t.Fatal("no complete (X) events in export")
	}
	// Instant event carries its attribute.
	for _, e := range evs {
		if e["name"] == "fault.drop" {
			args := e["args"].(map[string]any)
			if args["point"] != "pfcp.smf.tx" {
				t.Fatalf("event args = %v", args)
			}
		}
	}
}

func TestOpenSpansExportAtNow(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, c := newSimTracer()
	tr.Start("t", "open") // never ended
	c.advance(3 * time.Millisecond)
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &evs); err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e["name"] == "open" {
			if dur := e["dur"].(float64); dur < 2999 || dur > 3001 {
				t.Fatalf("open span dur = %v µs, want ~3000", dur)
			}
			return
		}
	}
	t.Fatal("open span not exported")
}

func TestBreakdownCoverageAndStages(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, c := newSimTracer()
	root := tr.Start("cp", "proc")
	a := root.Child("stage.a")
	c.advance(4 * time.Millisecond)
	a.End()
	b := root.Child("stage.b")
	c.advance(4 * time.Millisecond)
	b.End()
	c.advance(2 * time.Millisecond) // unattributed gap
	root.End()
	// A peer span on another track overlapping the window.
	peer := tr.Start("peer", "stage.b")
	c.advance(time.Millisecond)
	peer.End() // outside the window, must be clipped away entirely

	bd := tr.Breakdown("proc")
	if bd == nil {
		t.Fatal("no breakdown")
	}
	if bd.Window != 10*time.Millisecond {
		t.Fatalf("window = %v", bd.Window)
	}
	if len(bd.Stages) != 2 {
		t.Fatalf("stages = %+v", bd.Stages)
	}
	if bd.Stages[0].Name != "stage.a" || bd.Stages[0].Total != 4*time.Millisecond {
		t.Fatalf("stage.a = %+v", bd.Stages[0])
	}
	if bd.Stages[1].Name != "stage.b" || bd.Stages[1].Count != 1 {
		t.Fatalf("stage.b = %+v", bd.Stages[1])
	}
	if cov := bd.Coverage; cov < 0.79 || cov > 0.81 {
		t.Fatalf("coverage = %v, want 0.8", cov)
	}
	tab := bd.Table().String()
	for _, want := range []string{"stage.a", "stage.b", "(end-to-end)", "cov 80.0%"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestBreakdownPicksLastCompletedRoot(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr, c := newSimTracer()
	first := tr.Start("t", "proc")
	c.advance(time.Millisecond)
	first.End()
	second := tr.Start("t", "proc")
	c.advance(3 * time.Millisecond)
	second.End()
	tr.Start("t", "proc") // still open; must be ignored
	bd := tr.Breakdown("proc")
	if bd == nil || bd.Window != 3*time.Millisecond {
		t.Fatalf("breakdown = %+v", bd)
	}
	if tr.Breakdown("nosuch") != nil {
		t.Fatal("breakdown for unknown root")
	}
}

func TestConcurrentSpans(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("t", "s")
				sp.Child("c").End()
				sp.Event("e")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.SpanCount(); got != 8*200*2 {
		t.Fatalf("spans = %d, want %d", got, 8*200*2)
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &evs); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	tr := New()
	tr.Start("t", "s").End()
	tr.Event("t", "e")
	tr.Reset()
	if tr.SpanCount() != 0 {
		t.Fatal("Reset left spans")
	}
}

// BenchmarkDisabledTrack measures the disabled-tracer fast path as the
// instrumented hot loops see it: one atomic pointer load, a nil check, and
// no-op span methods.
func BenchmarkDisabledTrack(b *testing.B) {
	var holder atomic.Pointer[Track]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk := holder.Load()
		sp := tk.Start("stage")
		sp.End()
	}
}

// BenchmarkEnabledSpan measures span start/end with tracing on.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	tk := NewTrack(tr, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tk.Start("stage")
		sp.End()
		if tr.SpanCount() >= initialSpanCap {
			b.StopTimer()
			tr.Reset()
			b.StartTimer()
		}
	}
}
