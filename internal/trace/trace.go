// Package trace is the span tracer behind the repository's latency
// attribution story: control-plane procedures (NAS registration, PFCP
// session management, NGAP handover, paging) and data-plane packet stages
// (ONVM descriptor switching, kernel-path encode/syscall/decode, UPF
// classification and buffering) open named spans on named tracks, and the
// exporter renders them as Chrome trace-event JSON (loadable in Perfetto
// or chrome://tracing) or as a fixed-width stage-breakdown table.
//
// The design center is cost when disabled: every entry point is nil-safe,
// so instrumented components hold an atomic pointer to a Track and the
// whole instrumentation collapses to one atomic load and a branch per
// stage when no tracer is installed. When enabled, spans append to a
// preallocated record slice under one mutex — no per-span allocation in
// steady state, no timers, no goroutines.
//
// Timestamps are monotonic offsets from tracer creation: the wall-clock
// tracer anchors once and uses time.Since (which reads the monotonic
// clock), and NewWithClock accepts any offset source, letting netsim-driven
// experiments trace in simulated time without mixing clock domains.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/metrics"
)

// maxAttrs bounds per-span attributes; spans stay fixed-size records.
const maxAttrs = 4

// attr is one span attribute.
type attr struct {
	k, v string
}

// spanRec is the stored form of one span. Records live in the tracer's
// slice; Span handles index into it.
type spanRec struct {
	track  string
	name   string
	parent int32 // index of parent span, -1 for roots
	start  time.Duration
	end    time.Duration // 0 while open (start==0 spans close with end set)
	done   bool
	nattrs int8
	attrs  [maxAttrs]attr
}

// eventRec is one instant event on a track's timeline.
type eventRec struct {
	track  string
	name   string
	at     time.Duration
	nattrs int8
	attrs  [maxAttrs]attr
}

// SpanObserver receives completed spans and instant events as they
// close. The telemetry flight recorder and quantile sketches hang off
// this hook, so a tracer can feed a continuous pipeline without anyone
// walking its retained records. Implementations are called on the hot
// path (under no tracer lock) and must be cheap and allocation-free.
type SpanObserver interface {
	ObserveSpan(track, name string, start, end time.Duration)
	ObserveEvent(track, name string, at time.Duration)
}

// observerBox wraps the observer so the tracer can publish it through
// one atomic pointer (interface values cannot be stored atomically).
type observerBox struct{ o SpanObserver }

// Tracer collects spans and instant events. A nil *Tracer is a valid
// disabled tracer at every entry point.
type Tracer struct {
	clock func() time.Duration

	// streaming tracers do not retain records: spans/events flow to the
	// observer only, so an always-on soak can trace for minutes without
	// growing memory. Set at construction, read on every span path.
	streaming bool

	obs atomic.Pointer[observerBox]

	mu     sync.Mutex
	spans  []spanRec
	events []eventRec
}

// initialSpanCap preallocates the record slices so tracing a procedure
// does not allocate per span.
const initialSpanCap = 4096

// New returns a tracer using the wall clock, anchored at the call.
// time.Since reads Go's monotonic clock, so spans are immune to wall-time
// adjustments.
func New() *Tracer {
	base := time.Now()
	return NewWithClock(func() time.Duration { return time.Since(base) })
}

// NewWithClock returns a tracer reading timestamps from now — typically a
// netsim (*Sim).Now for simulated-time experiments.
func NewWithClock(now func() time.Duration) *Tracer {
	return &Tracer{
		clock:  now,
		spans:  make([]spanRec, 0, initialSpanCap),
		events: make([]eventRec, 0, initialSpanCap/4),
	}
}

// NewStreaming returns a tracer that retains nothing: every closed span
// and instant event goes to the installed SpanObserver and is then
// forgotten. Memory stays constant no matter how long the run, which is
// what a minutes-long soak needs from an always-on tracer. Breakdown and
// WriteChrome see no records on a streaming tracer; per-span Attr values
// are dropped (observer records are fixed-size).
func NewStreaming(now func() time.Duration) *Tracer {
	return &Tracer{clock: now, streaming: true}
}

// SetObserver installs (or, with nil, removes) the observer fed by every
// span End and instant event. Safe to call concurrently with tracing.
func (t *Tracer) SetObserver(o SpanObserver) {
	if t == nil {
		return
	}
	if o == nil {
		t.obs.Store(nil)
		return
	}
	t.obs.Store(&observerBox{o: o})
}

// observer returns the installed observer or nil.
func (t *Tracer) observer() SpanObserver {
	if b := t.obs.Load(); b != nil {
		return b.o
	}
	return nil
}

// Span is a handle to one started span. The zero Span (and any span from a
// nil tracer) is disabled: End, Attr, Child and Event are no-ops. The
// handle carries its identity (track, name, start) inline so a streaming
// tracer can close spans without ever storing a record.
type Span struct {
	t     *Tracer
	idx   int32 // index into t.spans; -1 on a streaming tracer
	track string
	name  string
	start time.Duration
}

// Start opens a root span on track. Nil-safe.
func (t *Tracer) Start(track, name string) Span {
	return t.startSpan(track, name, -1)
}

func (t *Tracer) startSpan(track, name string, parent int32) Span {
	if t == nil {
		return Span{}
	}
	now := t.clock()
	idx := int32(-1)
	if !t.streaming {
		t.mu.Lock()
		idx = int32(len(t.spans))
		t.spans = append(t.spans, spanRec{track: track, name: name, parent: parent, start: now})
		t.mu.Unlock()
	}
	return Span{t: t, idx: idx, track: track, name: name, start: now}
}

// Event records an instant event on track. Attrs are key/value pairs
// ("point", "pfcp.smf.tx"); excess pairs beyond the per-record capacity
// are dropped. Nil-safe.
func (t *Tracer) Event(track, name string, attrs ...string) {
	if t == nil {
		return
	}
	now := t.clock()
	if !t.streaming {
		rec := eventRec{track: track, name: name, at: now}
		for i := 0; i+1 < len(attrs) && rec.nattrs < maxAttrs; i += 2 {
			rec.attrs[rec.nattrs] = attr{k: attrs[i], v: attrs[i+1]}
			rec.nattrs++
		}
		t.mu.Lock()
		t.events = append(t.events, rec)
		t.mu.Unlock()
	}
	if o := t.observer(); o != nil {
		o.ObserveEvent(track, name, now)
	}
}

// Child opens a sub-span on the same track.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(s.track, name, s.idx)
}

// End closes the span at the current clock reading.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := s.t.clock()
	if s.idx >= 0 {
		s.t.mu.Lock()
		rec := &s.t.spans[s.idx]
		if rec.done {
			s.t.mu.Unlock()
			return
		}
		rec.end = now
		rec.done = true
		s.t.mu.Unlock()
	}
	if o := s.t.observer(); o != nil {
		o.ObserveSpan(s.track, s.name, s.start, now)
	}
}

// Attr attaches a key/value attribute (bounded; extras are dropped).
// Attributes live in the retained record, so a streaming tracer drops
// them: its observer records are fixed-size by design.
func (s Span) Attr(k, v string) {
	if s.t == nil || s.idx < 0 {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	if rec.nattrs < maxAttrs {
		rec.attrs[rec.nattrs] = attr{k: k, v: v}
		rec.nattrs++
	}
	s.t.mu.Unlock()
}

// Event records an instant event on the span's track.
func (s Span) Event(name string, attrs ...string) {
	if s.t == nil {
		return
	}
	s.t.Event(s.track, name, attrs...)
}

// Enabled reports whether the span records anything (false for the zero
// span), letting call sites skip attribute formatting entirely.
func (s Span) Enabled() bool { return s.t != nil }

// Track binds a tracer to one named timeline. Components hold an
// atomic.Pointer[Track]; a nil *Track is a disabled track, so the
// per-stage cost with tracing off is one atomic load plus a nil check.
type Track struct {
	tr   *Tracer
	name string
}

// NewTrack returns a track handle on t, or nil when t is nil — ready to
// Store into an atomic.Pointer[Track].
func NewTrack(t *Tracer, name string) *Track {
	if t == nil {
		return nil
	}
	return &Track{tr: t, name: name}
}

// Start opens a root span on the track. Nil-safe.
func (tk *Track) Start(name string) Span {
	if tk == nil {
		return Span{}
	}
	return tk.tr.Start(tk.name, name)
}

// Event records an instant event on the track. Nil-safe.
func (tk *Track) Event(name string, attrs ...string) {
	if tk == nil {
		return
	}
	tk.tr.Event(tk.name, name, attrs...)
}

// Tracer returns the underlying tracer (nil for a disabled track).
func (tk *Track) Tracer() *Tracer {
	if tk == nil {
		return nil
	}
	return tk.tr
}

// SpanCount reports the number of spans recorded so far.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset discards all recorded spans and events, keeping capacity.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.events = t.events[:0]
	t.mu.Unlock()
}

// --- Chrome trace-event export ---

// WriteChrome renders the recorded spans and events as Chrome trace-event
// JSON (the array form), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Tracks map to thread lanes; timestamps are
// microseconds with nanosecond fraction. Open spans are emitted as if
// they ended at the export instant, so a trace taken mid-procedure is
// still loadable.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	now := t.clock()
	t.mu.Lock()
	spans := append([]spanRec(nil), t.spans...)
	events := append([]eventRec(nil), t.events...)
	t.mu.Unlock()

	// Assign stable tids per track, in first-appearance order.
	tids := make(map[string]int)
	order := []string{}
	tid := func(track string) int {
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
			order = append(order, track)
		}
		return id
	}
	for i := range spans {
		tid(spans[i].track)
	}
	for i := range events {
		tid(events[i].track)
	}

	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	// Thread-name metadata so Perfetto labels the lanes.
	for _, track := range order {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tids[track], strconv.Quote(track)))
	}
	usec := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/1e3, 'f', 3, 64)
	}
	writeArgs := func(sb *strings.Builder, attrs [maxAttrs]attr, n int8) {
		sb.WriteString(`"args":{`)
		for i := int8(0); i < n; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(attrs[i].k))
			sb.WriteByte(':')
			sb.WriteString(strconv.Quote(attrs[i].v))
		}
		sb.WriteByte('}')
	}
	for i := range spans {
		sp := &spans[i]
		end := sp.end
		if !sp.done {
			end = now
		}
		var line strings.Builder
		fmt.Fprintf(&line, `{"ph":"X","pid":1,"tid":%d,"name":%s,"cat":"span","ts":%s,"dur":%s,`,
			tids[sp.track], strconv.Quote(sp.name), usec(sp.start), usec(end-sp.start))
		writeArgs(&line, sp.attrs, sp.nattrs)
		line.WriteByte('}')
		emit(line.String())
	}
	for i := range events {
		ev := &events[i]
		var line strings.Builder
		fmt.Fprintf(&line, `{"ph":"i","pid":1,"tid":%d,"name":%s,"cat":"event","ts":%s,"s":"t",`,
			tids[ev.track], strconv.Quote(ev.name), usec(ev.at))
		writeArgs(&line, ev.attrs, ev.nattrs)
		line.WriteByte('}')
		emit(line.String())
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// --- stage breakdown ---

// Stage aggregates the spans sharing one name inside a breakdown window.
// Total clips each span to the window, so a stage overlapping the window
// edge contributes only its inside share.
type Stage struct {
	Name  string
	Count int
	Total time.Duration
}

// Breakdown decomposes one root span's window into named stages: every
// other span overlapping the window, grouped by name, plus the coverage —
// the fraction of the window covered by the union of those spans.
// Coverage close to 1 means no unattributed gaps.
type Breakdown struct {
	Root     string
	Window   time.Duration
	Stages   []Stage
	Coverage float64
}

// Breakdown analyzes the most recently completed span named root. It
// returns nil when no such span exists. Stages are every other span (on
// any track) overlapping the root's window, clipped to it — cross-track
// attribution needs no parent links, which matters because peer-side work
// (the UPF's PFCP handler during the SMF's wait) runs on other goroutines.
func (t *Tracer) Breakdown(root string) *Breakdown {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]spanRec(nil), t.spans...)
	t.mu.Unlock()

	rootIdx := -1
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].name == root && spans[i].done {
			rootIdx = i
			break
		}
	}
	if rootIdx < 0 {
		return nil
	}
	w0, w1 := spans[rootIdx].start, spans[rootIdx].end
	bd := &Breakdown{Root: root, Window: w1 - w0}

	type interval struct{ a, b time.Duration }
	var ivs []interval
	byName := map[string]*Stage{}
	var names []string
	for i := range spans {
		if i == rootIdx {
			continue
		}
		sp := &spans[i]
		if !sp.done {
			continue
		}
		a, b := sp.start, sp.end
		if b <= w0 || a >= w1 {
			continue
		}
		if a < w0 {
			a = w0
		}
		if b > w1 {
			b = w1
		}
		st := byName[sp.name]
		if st == nil {
			st = &Stage{Name: sp.name}
			byName[sp.name] = st
			names = append(names, sp.name)
		}
		st.Count++
		st.Total += b - a
		ivs = append(ivs, interval{a, b})
	}
	sort.Strings(names)
	for _, n := range names {
		bd.Stages = append(bd.Stages, *byName[n])
	}
	// Union-of-intervals coverage of the window.
	if bd.Window > 0 && len(ivs) > 0 {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
		var covered time.Duration
		curA, curB := ivs[0].a, ivs[0].b
		for _, iv := range ivs[1:] {
			if iv.a > curB {
				covered += curB - curA
				curA, curB = iv.a, iv.b
				continue
			}
			if iv.b > curB {
				curB = iv.b
			}
		}
		covered += curB - curA
		bd.Coverage = float64(covered) / float64(bd.Window)
	}
	return bd
}

// Table renders the breakdown as a fixed-width stage table, the per-stage
// counterpart of the paper's end-to-end latency rows.
func (b *Breakdown) Table() *metrics.Table {
	tab := metrics.NewTable("stage", "count", "total", "mean", "share")
	if b == nil {
		return tab
	}
	for _, st := range b.Stages {
		mean := time.Duration(0)
		if st.Count > 0 {
			mean = st.Total / time.Duration(st.Count)
		}
		share := 0.0
		if b.Window > 0 {
			share = 100 * float64(st.Total) / float64(b.Window)
		}
		tab.Row(st.Name, st.Count, st.Total, mean, fmt.Sprintf("%.1f%%", share))
	}
	tab.Row("(end-to-end)", 1, b.Window, b.Window, fmt.Sprintf("cov %.1f%%", 100*b.Coverage))
	return tab
}
