package trace

// LintNames is the registered-name table for every track, span and
// event name the tree emits, enforced at each call site by the
// metricnames analyzer (DESIGN §13). Entries are '*'-globs. Trace
// post-processing (bench CSVs, the §4 latency breakdowns) selects spans
// by these names, so a typo here splits a procedure from its readers;
// add an entry (reviewed) before introducing a new span.
var LintNames = []string{
	// Tracks ("telemetry" carries the pipeline's dump markers).
	"supervisor",
	"telemetry",

	// AMF control-plane procedures.
	"amf.nas.decode",
	"amf.registration.auth",
	"amf.registration.context",
	"amf.registration.confirm",
	"amf.service.request",
	"amf.session.establish",
	"amf.session.activate",
	"amf.idle.release",
	"amf.paging.trigger",
	"amf.ho.prepare",
	"amf.ho.command",
	"amf.ho.switch",

	// SMF session procedures.
	"smf.sm_context.create",
	"smf.sm_context.update",
	"smf.sm_context.release",
	"smf.n4.report",

	// Supervisor failover phases.
	"supervisor.failover",
	"supervisor.promote",
	"supervisor.replay",
	"supervisor.resync",

	// SBI transport spans.
	"sbi.invoke",
	"sbi.encode",
	"sbi.decode",
	"sbi.http.do",
	"sbi.transfer.shm",

	// PFCP endpoint spans ("pfcp.request.<type>", "pfcp.handle.<type>").
	"pfcp.request.*",
	"pfcp.handle.*",
	// N4 association transition events ("pfcp.assoc.up"/".down"; the
	// down event doubles as a telemetry dump reason).
	"pfcp.assoc.*",
	"pfcp.encode",
	"pfcp.resp.encode",
	"pfcp.rx.decode",
	"pfcp.retransmit",
	"pfcp.tx.shm",
	"pfcp.tx.syscall",
	"pfcp.wait",

	// NGAP codec spans.
	"ngap.encode",
	"ngap.decode",

	// ONVM switch spans.
	"onvm.deliver",
	"onvm.egress",

	// UPF / kernel-path datapath spans.
	"upf.classify",
	"upf.buffer",
	"kern.classify",
	"kern.buffer",
	"kern.gtp.encode",
	"kern.gtp.decode",
	"kern.syscall.tx",

	// Overload controller transition events ("fault.<kind>" are the
	// injector's firing events).
	"overload.tighten",
	"overload.relax",
	"overload.recovery_enter",
	"overload.recovery_exit",
	"fault.*",

	// Telemetry pipeline markers: one per flight-recorder dump, so the
	// dump trigger is visible in the trace and in the next dump's ring.
	"flight.dump",
}
