//go:build race

package testutil

// RaceEnabled reports whether the race detector is active. The
// sync.Pool-backed 0-allocs/op gates skip under it: the detector
// deliberately drops a fraction of Pool.Puts (poolRaceHit), so pooled
// paths allocate under -race by design, not by regression. The alloc
// gates run raceless in make storm-smoke.
const RaceEnabled = true
