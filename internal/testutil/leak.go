// Package testutil holds shared test helpers. The only resident today is
// the goroutine-leak check: components with Close/Stop lifecycles must
// actually unwind their goroutines, or long-running deployments (and the
// storm bench's repeated core setups) accumulate leaked loops.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// interesting reports whether a goroutine stack belongs to this module
// (leaks we own) rather than to the runtime or the testing framework.
func interesting(stack string) bool {
	if !strings.Contains(stack, "l25gc/") {
		return false
	}
	// The testing framework's own goroutines mention the test functions;
	// a leak is a goroutine parked inside package code.
	return !strings.Contains(stack, "testing.tRunner")
}

func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if interesting(g) {
			out = append(out, g)
		}
	}
	return out
}

// CheckGoroutineLeaks registers a cleanup that fails the test if, after
// everything the test itself cleaned up has run, goroutines from this
// module remain beyond those alive at the call. Call it FIRST in the
// test so its cleanup runs LAST (cleanups run LIFO). The check polls
// briefly before failing: goroutine teardown that is signalled but not
// yet scheduled is not a leak.
func CheckGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := len(moduleGoroutines())
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after []string
		for {
			after = moduleGoroutines()
			if len(after) <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(after) > before {
			t.Errorf("goroutine leak: %d module goroutines before, %d after:\n%s",
				before, len(after), strings.Join(after, "\n\n"))
		}
	})
}

// MustNoLeaksWithin asserts directly (no cleanup registration) that the
// module's goroutine count drops to at most want within d. Useful in the
// middle of a test after an explicit Close.
func MustNoLeaksWithin(t *testing.T, want int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	var got []string
	for {
		got = moduleGoroutines()
		if len(got) <= want || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(got) > want {
		t.Fatalf("%d module goroutines still running (want <=%d):\n%s",
			len(got), want, strings.Join(got, "\n\n"))
	}
}

// Dump returns the current module goroutines, for debugging helpers.
func Dump() string {
	return fmt.Sprintf("%d module goroutines:\n%s",
		len(moduleGoroutines()), strings.Join(moduleGoroutines(), "\n\n"))
}
