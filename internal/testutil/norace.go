//go:build !race

package testutil

// RaceEnabled reports whether the race detector is active; see race.go.
const RaceEnabled = false
