// Package gtp implements the GTP-U (GPRS Tunnelling Protocol, user plane)
// encapsulation used on the N3 interface between gNB and UPF, including the
// PDU Session Container extension header carrying the QoS Flow Identifier.
//
// The encoding follows 3GPP TS 29.281. Only the G-PDU message (type 255) and
// Echo Request/Response (1/2) are needed by the 5GC data path.
package gtp

import (
	"encoding/binary"
	"errors"
)

// UDPPort is the registered GTP-U port.
const UDPPort = 2152

// Message types (TS 29.281 §6).
const (
	MsgEchoRequest  uint8 = 1
	MsgEchoResponse uint8 = 2
	MsgErrorInd     uint8 = 26
	MsgEndMarker    uint8 = 254
	MsgGPDU         uint8 = 255
)

// Extension header types.
const (
	ExtNone       uint8 = 0
	ExtPDUSession uint8 = 0x85
)

// HeaderLen is the mandatory GTP-U header length.
const HeaderLen = 8

// pduSessExtLen is the fixed length of the PDU Session Container extension
// as we encode it (4 bytes: len, info, next-ext) per TS 38.415 short form.
const pduSessExtLen = 4

// Errors returned by decoding.
var (
	ErrTruncated   = errors.New("gtp: truncated header")
	ErrBadVersion  = errors.New("gtp: unsupported version")
	ErrBadProtType = errors.New("gtp: not GTP prime-0 protocol")
	ErrBadExt      = errors.New("gtp: malformed extension header")
)

// Header is a decoded GTP-U header.
type Header struct {
	MsgType  uint8
	Length   uint16 // length of payload + optional fields
	TEID     uint32
	Seq      uint16 // valid if HasSeq
	HasSeq   bool
	QFI      uint8 // valid if HasQFI (PDU Session Container)
	HasQFI   bool
	PDUType  uint8 // 0 = DL PDU Session Information, 1 = UL
	totalLen int   // bytes consumed by header + extensions
}

// HeaderSize returns the on-wire size of the header h would encode to.
func (h *Header) HeaderSize() int {
	n := HeaderLen
	if h.HasSeq || h.HasQFI {
		n += 4 // seq(2) + npdu(1) + next-ext(1)
	}
	if h.HasQFI {
		n += pduSessExtLen
	}
	return n
}

// Decode parses a GTP-U header from b and returns the inner payload.
func (h *Header) Decode(b []byte) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	flags := b[0]
	if flags>>5 != 1 {
		return nil, ErrBadVersion
	}
	if flags&0x10 == 0 {
		return nil, ErrBadProtType
	}
	hasExt := flags&0x04 != 0
	hasSeq := flags&0x02 != 0
	hasNPDU := flags&0x01 != 0
	h.MsgType = b[1]
	h.Length = binary.BigEndian.Uint16(b[2:4])
	h.TEID = binary.BigEndian.Uint32(b[4:8])
	h.HasSeq = hasSeq
	h.HasQFI = false
	off := HeaderLen
	if hasExt || hasSeq || hasNPDU {
		if len(b) < off+4 {
			return nil, ErrTruncated
		}
		if hasSeq {
			h.Seq = binary.BigEndian.Uint16(b[off : off+2])
		}
		next := b[off+3]
		off += 4
		for next != ExtNone {
			if len(b) < off+1 {
				return nil, ErrBadExt
			}
			extLen := int(b[off]) * 4
			if extLen == 0 || len(b) < off+extLen {
				return nil, ErrBadExt
			}
			switch next {
			case ExtPDUSession:
				if extLen < 4 {
					return nil, ErrBadExt
				}
				h.PDUType = b[off+1] >> 4
				h.QFI = b[off+2] & 0x3f
				h.HasQFI = true
			}
			next = b[off+extLen-1]
			off += extLen
		}
	}
	h.totalLen = off
	end := HeaderLen + int(h.Length)
	if end > len(b) || end < off {
		end = len(b)
	}
	return b[off:end], nil
}

// Encode writes the header for a payload of payloadLen bytes into b, which
// must be at least HeaderSize() bytes. It returns the bytes written.
func (h *Header) Encode(b []byte, payloadLen int) (int, error) {
	size := h.HeaderSize()
	if len(b) < size {
		return 0, ErrTruncated
	}
	flags := uint8(1<<5 | 0x10)
	optLen := 0
	if h.HasSeq || h.HasQFI {
		optLen = 4
		if h.HasSeq {
			flags |= 0x02
		}
		if h.HasQFI {
			flags |= 0x04
			optLen += pduSessExtLen
		}
	}
	b[0] = flags
	b[1] = h.MsgType
	h.Length = uint16(payloadLen + optLen)
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint32(b[4:8], h.TEID)
	off := HeaderLen
	if optLen > 0 {
		if h.HasSeq {
			binary.BigEndian.PutUint16(b[off:off+2], h.Seq)
		} else {
			b[off], b[off+1] = 0, 0
		}
		b[off+2] = 0 // N-PDU number
		if h.HasQFI {
			b[off+3] = ExtPDUSession
		} else {
			b[off+3] = ExtNone
		}
		off += 4
		if h.HasQFI {
			b[off] = pduSessExtLen / 4
			b[off+1] = h.PDUType << 4
			b[off+2] = h.QFI & 0x3f
			b[off+3] = ExtNone
			off += pduSessExtLen
		}
	}
	return off, nil
}

// Encap prepends a G-PDU header for teid/qfi onto an inner packet already
// placed in a buffer with Prepend-capable headroom. It is the zero-copy
// encapsulation used by the UPF fast path.
type Prepender interface {
	Prepend(n int) ([]byte, error)
	Len() int
}

// Encap writes a G-PDU header in front of the buffer's current contents.
func Encap(b Prepender, teid uint32, qfi uint8, downlink bool) error {
	h := Header{MsgType: MsgGPDU, TEID: teid, HasQFI: true, QFI: qfi}
	if !downlink {
		h.PDUType = 1
	}
	innerLen := b.Len()
	hdr, err := b.Prepend(h.HeaderSize())
	if err != nil {
		return err
	}
	_, err = h.Encode(hdr, innerLen)
	return err
}

// Trimmer is the buffer surface needed for decapsulation.
type Trimmer interface {
	Bytes() []byte
	Trim(n int) error
}

// Decap parses and strips the GTP-U header from the front of the buffer,
// returning the decoded header.
func Decap(b Trimmer) (Header, error) {
	var h Header
	if _, err := h.Decode(b.Bytes()); err != nil {
		return h, err
	}
	if err := b.Trim(h.totalLen); err != nil {
		return h, err
	}
	return h, nil
}
