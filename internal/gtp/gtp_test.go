package gtp

import (
	"bytes"
	"testing"
	"testing/quick"

	"l25gc/internal/pktbuf"
)

func TestHeaderRoundTripPlain(t *testing.T) {
	h := Header{MsgType: MsgGPDU, TEID: 0xdeadbeef}
	b := make([]byte, 64)
	n, err := h.Encode(b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderLen {
		t.Fatalf("encoded %d bytes, want %d", n, HeaderLen)
	}
	payload := []byte("0123456789")
	copy(b[n:], payload)
	var got Header
	pl, err := got.Decode(b[:n+10])
	if err != nil {
		t.Fatal(err)
	}
	if got.TEID != h.TEID || got.MsgType != MsgGPDU || got.HasQFI || got.HasSeq {
		t.Fatalf("got %+v", got)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload %q", pl)
	}
}

func TestHeaderRoundTripQFI(t *testing.T) {
	h := Header{MsgType: MsgGPDU, TEID: 7, HasQFI: true, QFI: 9, PDUType: 0}
	b := make([]byte, 64)
	n, err := h.Encode(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderLen+4+4 {
		t.Fatalf("header size = %d", n)
	}
	copy(b[n:], "abcd")
	var got Header
	pl, err := got.Decode(b[:n+4])
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasQFI || got.QFI != 9 || got.TEID != 7 {
		t.Fatalf("got %+v", got)
	}
	if string(pl) != "abcd" {
		t.Fatalf("payload %q", pl)
	}
}

func TestHeaderRoundTripSeq(t *testing.T) {
	h := Header{MsgType: MsgEchoRequest, TEID: 0, HasSeq: true, Seq: 4242}
	b := make([]byte, 64)
	n, err := h.Encode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got Header
	if _, err := got.Decode(b[:n]); err != nil {
		t.Fatal(err)
	}
	if !got.HasSeq || got.Seq != 4242 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	var h Header
	if _, err := h.Decode(make([]byte, 4)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 8)
	b[0] = 2 << 5 // version 2
	if _, err := h.Decode(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	b[0] = 1 << 5 // GTP' protocol bit clear
	if _, err := h.Decode(b); err != ErrBadProtType {
		t.Fatalf("prot: %v", err)
	}
	// Extension flag set but no extension bytes.
	b[0] = 1<<5 | 0x10 | 0x04
	if _, err := h.Decode(b); err != ErrTruncated {
		t.Fatalf("ext truncated: %v", err)
	}
	// Extension header with zero length.
	b2 := make([]byte, 16)
	b2[0] = 1<<5 | 0x10 | 0x04
	b2[11] = ExtPDUSession
	b2[12] = 0 // ext len 0 -> malformed
	if _, err := h.Decode(b2); err != ErrBadExt {
		t.Fatalf("bad ext: %v", err)
	}
}

func TestEncapDecapOnBuf(t *testing.T) {
	pool := pktbuf.NewPool(1, "t")
	b, _ := pool.Get()
	defer b.Release()
	inner := []byte("ip packet bytes here")
	b.SetData(inner)
	if err := Encap(b, 0x55aa, 5, true); err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(inner)+HeaderLen+8 {
		t.Fatalf("encap len = %d", b.Len())
	}
	h, err := Decap(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.TEID != 0x55aa || h.QFI != 5 || !h.HasQFI || h.PDUType != 0 {
		t.Fatalf("decap header %+v", h)
	}
	if !bytes.Equal(b.Bytes(), inner) {
		t.Fatalf("inner = %q", b.Bytes())
	}
}

func TestEncapUplinkPDUType(t *testing.T) {
	pool := pktbuf.NewPool(1, "t")
	b, _ := pool.Get()
	defer b.Release()
	b.SetData([]byte("x"))
	if err := Encap(b, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	h, err := Decap(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.PDUType != 1 {
		t.Fatalf("PDUType = %d, want 1 (UL)", h.PDUType)
	}
}

// Property: Encode then Decode recovers TEID, QFI, Seq and payload length
// for all flag combinations.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(teid uint32, qfi, plen uint8, seq uint16, hasSeq, hasQFI bool) bool {
		h := Header{MsgType: MsgGPDU, TEID: teid,
			HasSeq: hasSeq, Seq: seq, HasQFI: hasQFI, QFI: qfi & 0x3f}
		b := make([]byte, 64+int(plen))
		n, err := h.Encode(b, int(plen))
		if err != nil {
			return false
		}
		var got Header
		pl, err := got.Decode(b[:n+int(plen)])
		if err != nil {
			return false
		}
		if got.TEID != teid || got.HasQFI != hasQFI || got.HasSeq != hasSeq {
			return false
		}
		if hasQFI && got.QFI != qfi&0x3f {
			return false
		}
		if hasSeq && got.Seq != seq {
			return false
		}
		return len(pl) == int(plen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncapDecap(b *testing.B) {
	pool := pktbuf.NewPool(1, "bench")
	buf, _ := pool.Get()
	defer buf.Release()
	inner := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.SetData(inner)
		if err := Encap(buf, 42, 9, true); err != nil {
			b.Fatal(err)
		}
		if _, err := Decap(buf); err != nil {
			b.Fatal(err)
		}
	}
}
