package resilience

import (
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/gtp"
	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/pktbuf"
	"l25gc/internal/rules"
	"l25gc/internal/upf"
)

// kvState is a trivial Snapshotter for framework tests.
type kvState struct{ data []byte }

func (k *kvState) Snapshot() ([]byte, error) { return append([]byte(nil), k.data...), nil }
func (k *kvState) Restore(b []byte) error    { k.data = append([]byte(nil), b...); return nil }

func TestCheckpointEncodeDecode(t *testing.T) {
	cp := Checkpoint{Counter: 42, State: []byte("state-bytes")}
	got, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter != 42 || string(got.State) != "state-bytes" {
		t.Fatalf("got %+v", got)
	}
	if _, err := DecodeCheckpoint([]byte{1, 2}); err == nil {
		t.Fatal("short checkpoint should fail")
	}
}

func TestLocalReplicaOutputCommit(t *testing.T) {
	target := &kvState{}
	r := NewLocalReplica(target)
	if !r.Frozen() {
		t.Fatal("replica should start frozen")
	}
	if _, err := r.Unfreeze(); err != ErrNotSynced {
		t.Fatalf("unfreeze before sync: %v", err)
	}
	r.Sync(Checkpoint{Counter: 1, State: []byte("v1")})
	r.Sync(Checkpoint{Counter: 2, State: []byte("v2")})
	if r.Syncs() != 2 || r.LastCounter() != 2 {
		t.Fatalf("syncs=%d last=%d", r.Syncs(), r.LastCounter())
	}
	ctr, err := r.Unfreeze()
	if err != nil || ctr != 2 {
		t.Fatalf("unfreeze: %d %v", ctr, err)
	}
	if string(target.data) != "v2" {
		t.Fatalf("restored %q", target.data)
	}
	if r.Frozen() {
		t.Fatal("replica should be live after unfreeze")
	}
}

func TestRemoteReplicaAckFlow(t *testing.T) {
	target := &kvState{}
	r := NewRemoteReplica(target)
	var acked atomic.Uint64
	r.OnAck = func(c uint64) { acked.Store(c) }
	if err := r.Apply(Checkpoint{Counter: 7, State: []byte("s7")}.Encode()); err != nil {
		t.Fatal(err)
	}
	if acked.Load() != 7 {
		t.Fatalf("ack = %d", acked.Load())
	}
	ctr, err := r.Unfreeze()
	if err != nil || ctr != 7 || string(target.data) != "s7" {
		t.Fatalf("unfreeze: %d %v %q", ctr, err, target.data)
	}
}

func TestPacketLoggerCounterOrderAcrossQueues(t *testing.T) {
	l := NewPacketLogger(0)
	// Interleave classes; counters are global.
	l.Log(DLData, []byte("d1"))    // 1
	l.Log(DLControl, []byte("c1")) // 2
	l.Log(DLData, []byte("d2"))    // 3
	l.Log(ULControl, []byte("u1")) // 4
	l.Log(DLData, []byte("d3"))    // 5
	replay := l.ReplayFrom(0)
	if len(replay) != 5 {
		t.Fatalf("replay len = %d", len(replay))
	}
	for i, p := range replay {
		if p.Counter != uint64(i+1) {
			t.Fatalf("replay out of order: %+v", replay)
		}
	}
	// Replay from a checkpoint skips the prefix.
	replay = l.ReplayFrom(3)
	if len(replay) != 2 || replay[0].Counter != 4 || string(replay[1].Data) != "d3" {
		t.Fatalf("partial replay %+v", replay)
	}
}

func TestPacketLoggerRelease(t *testing.T) {
	l := NewPacketLogger(0)
	for i := 0; i < 10; i++ {
		l.Log(ULData, []byte{byte(i)})
	}
	l.ReleaseUpTo(6)
	if d := l.Depth(); d[int(ULData)] != 4 {
		t.Fatalf("depth %v", d)
	}
	if got := l.ReplayFrom(0); len(got) != 4 || got[0].Counter != 7 {
		t.Fatalf("replay after release: %+v", got)
	}
}

// The four-queue split: data overflow must not evict control packets.
func TestPacketLoggerControlSurvivesDataFlood(t *testing.T) {
	l := NewPacketLogger(4)
	for i := 0; i < 100; i++ {
		l.Log(DLData, []byte("flood"))
	}
	if _, ok := l.Log(DLControl, []byte("handover-msg")); !ok {
		t.Fatal("control packet rejected despite data-only flood")
	}
	if l.Dropped(DLData) != 96 {
		t.Fatalf("data drops = %d", l.Dropped(DLData))
	}
	if l.Dropped(DLControl) != 0 {
		t.Fatal("control drops should be zero")
	}
	replay := l.ReplayFrom(0)
	foundControl := false
	for _, p := range replay {
		if p.Class == DLControl {
			foundControl = true
		}
	}
	if !foundControl {
		t.Fatal("control packet missing from replay")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{ULControl: "ul-ctrl", ULData: "ul-data",
		DLControl: "dl-ctrl", DLData: "dl-data", Class(9): "invalid"}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d -> %q want %q", c, c.String(), w)
		}
	}
}

func TestDetectorDeclaresFailure(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	detected := make(chan time.Duration, 1)
	d := &Detector{
		Probe:     func() bool { return healthy.Load() },
		Interval:  100 * time.Microsecond,
		Misses:    3,
		OnFailure: func(dt time.Duration) { detected <- dt },
	}
	d.Start()
	time.Sleep(2 * time.Millisecond) // healthy for a while
	select {
	case <-detected:
		t.Fatal("false positive")
	default:
	}
	healthy.Store(false)
	select {
	case dt := <-detected:
		// The paper's probe agent detects in <0.5 ms; ours is in the same
		// regime (3 probes at 100 µs), allow scheduler slack on 1 CPU.
		if dt > 100*time.Millisecond {
			t.Fatalf("detection took %v", dt)
		}
		t.Logf("failure detected in %v", dt)
	case <-time.After(2 * time.Second):
		t.Fatal("failure never detected")
	}
}

func TestDetectorStop(t *testing.T) {
	d := &Detector{Probe: func() bool { return true }, Interval: 100 * time.Microsecond}
	d.Start()
	d.Stop() // must not hang or fire
}

// TestUPFSnapshotRestore checkpoints a live UPF, restores it into a
// standby, and verifies the standby forwards the same session's traffic.
func TestUPFSnapshotRestore(t *testing.T) {
	n3 := pkt.AddrFrom(10, 100, 0, 2)
	ueIP := pkt.AddrFrom(10, 60, 0, 1)
	gnbIP := pkt.AddrFrom(10, 100, 0, 10)

	// Primary with one session.
	primary := upf.NewState("ps", 0)
	primC := upf.NewUPFC(primary, n3, nil)
	est := &pfcp.SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 55, UEIP: ueIP,
		CreatePDRs: []*rules.PDR{
			{ID: 1, Precedence: 32,
				PDI:                rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true, UEIP: ueIP, HasUEIP: true},
				OuterHeaderRemoval: true, FARID: 1},
			{ID: 2, Precedence: 32,
				PDI:   rules.PDI{SourceInterface: rules.IfCore, UEIP: ueIP, HasUEIP: true},
				FARID: 2},
		},
		CreateFARs: []*rules.FAR{
			{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore},
			{ID: 2, Action: rules.FARForward, DestInterface: rules.IfAccess,
				HasOuterHeader: true, OuterTEID: 0x5001, OuterAddr: gnbIP},
		},
	}
	resp, err := primC.Handle(55, est)
	if err != nil || resp.(*pfcp.SessionEstablishmentResponse).Cause != pfcp.CauseAccepted {
		t.Fatalf("establish: %v", err)
	}
	teid := resp.(*pfcp.SessionEstablishmentResponse).CreatedPDRs[0].TEID

	snap, err := (&UPFSnapshotter{State: primary, UPFC: primC}).Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Standby restores the checkpoint.
	standby := upf.NewState("ps", 0)
	sb := NewUPFSnapshotter(standby, n3)
	if err := sb.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if standby.Sessions() != 1 {
		t.Fatalf("standby sessions = %d", standby.Sessions())
	}

	// The standby forwards the session's uplink traffic with the same
	// TEID — connections survive without reattach.
	u := upf.NewUPFU(standby, sb.UPFC)
	pool := pktbuf.NewPool(8, "t")
	buf, _ := pool.Get()
	defer buf.Release()
	inner := make([]byte, 128)
	n, _ := pkt.BuildUDPv4(inner, ueIP, pkt.AddrFrom(8, 8, 8, 8), 1, 2, 0, []byte("persist"))
	buf.SetData(inner[:n])
	if err := gtp.Encap(buf, teid, 9, false); err != nil {
		t.Fatal(err)
	}
	buf.Meta.Uplink = true
	var scratch pkt.Parsed
	if !u.Process(buf, &scratch) || buf.Meta.Action != pktbuf.ActionToPort {
		t.Fatalf("standby did not forward: %+v", buf.Meta)
	}
	// Restore is idempotent over Reset: restoring again works.
	if err := sb.Restore(snap); err != nil {
		t.Fatal(err)
	}
}

func TestUPFSnapshotRestoreErrors(t *testing.T) {
	sb := NewUPFSnapshotter(upf.NewState("ps", 0), pkt.AddrFrom(1, 1, 1, 1))
	if err := sb.Restore([]byte{1, 2}); err == nil {
		t.Fatal("truncated snapshot should fail")
	}
}
