package resilience

import (
	"sync/atomic"
	"time"
)

// Detector is the probe agent of §5.5.1: it polls a liveness function
// every Interval and declares failure after Misses consecutive failed
// probes — the simplified S-BFD configuration (detection well under a
// millisecond at microsecond intervals on the same node).
//
// A Detector is re-armable: after Stop, or after a failure was declared,
// Start launches a fresh probe loop. The supervisor relies on this to
// re-protect a promoted replica with the same detector. Start and Stop
// must not be called concurrently with each other.
type Detector struct {
	// Probe returns true while the target is healthy.
	Probe func() bool
	// Interval between probes (default 200µs).
	Interval time.Duration
	// Misses before declaring failure (default 3).
	Misses int
	// OnFailure runs once per armed probe loop, on the detector goroutine,
	// when failure is declared. DetectionTime reports probe-start-to-
	// declaration latency. Calling Start from inside OnFailure is legal and
	// re-arms the detector for a new target.
	OnFailure func(detectionTime time.Duration)

	stopped atomic.Bool
	done    chan struct{}
}

// Start launches the probe loop. It may be called again after Stop or
// after a declared failure (the previous loop has exited either way);
// each Start arms one fresh loop.
func (d *Detector) Start() {
	if d.Interval <= 0 {
		d.Interval = 200 * time.Microsecond
	}
	if d.Misses <= 0 {
		d.Misses = 3
	}
	d.stopped.Store(false)
	done := make(chan struct{})
	d.done = done
	go d.run(done)
}

// run is one armed probe loop. done is captured per-loop so a restart
// (possibly from inside OnFailure, while this goroutine unwinds) closes
// its own channel, never the successor's.
func (d *Detector) run(done chan struct{}) {
	defer close(done)
	misses := 0
	var firstMiss time.Time
	ticker := time.NewTicker(d.Interval) //l25gc:allow determinism liveness probing is inherently wall-driven: it watches a real peer, not replayed state
	defer ticker.Stop()
	for range ticker.C {
		if d.stopped.Load() {
			return
		}
		if d.Probe() {
			misses = 0
			continue
		}
		if misses == 0 {
			firstMiss = time.Now() //l25gc:allow determinism detect-latency measurement of a wall-driven probe loop
		}
		misses++
		if misses >= d.Misses {
			if d.OnFailure != nil {
				//l25gc:allow determinism detect-latency measurement of a wall-driven probe loop
				d.OnFailure(time.Since(firstMiss) + d.Interval)
			}
			return
		}
	}
}

// Stop halts probing without declaring failure. It is idempotent and safe
// to call before Start (no-op) or after failure was declared (the probe
// goroutine has already exited). After Stop, Start re-arms the detector.
func (d *Detector) Stop() {
	if d.stopped.CompareAndSwap(false, true) && d.done != nil {
		<-d.done
	}
}
