// Package resilience implements L²5GC's failure-resiliency framework
// (§3.5): local replicas kept consistent with a no-replay output-commit
// scheme and frozen until failover; remote replicas fed periodic state
// deltas; the load-balancer-side counter + four-queue packet logger whose
// ordered replay reconstructs state lost between checkpoints; and the
// heartbeat failure detector (the S-BFD substitute).
package resilience

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
)

// Snapshotter is an NF (or NF group) whose state can be checkpointed. The
// UPF session store and the control-plane contexts implement this by
// serializing the PFCP messages that would recreate them.
type Snapshotter interface {
	// Snapshot returns the full serialized state.
	Snapshot() ([]byte, error)
	// Restore replaces the state from a snapshot.
	Restore([]byte) error
}

// ErrFrozen is returned when an operation needs an unfrozen replica.
var ErrFrozen = errors.New("resilience: replica frozen")

// ErrNotSynced reports a failover attempt before any checkpoint arrived.
var ErrNotSynced = errors.New("resilience: no checkpoint received")

// Checkpoint is one state snapshot tagged with the packet counter it
// reflects: replay starts from Counter+1.
type Checkpoint struct {
	Counter uint64
	State   []byte
}

// Encode serializes the checkpoint for transfer to a remote replica.
func (c Checkpoint) Encode() []byte {
	out := make([]byte, 8+len(c.State))
	binary.BigEndian.PutUint64(out[:8], c.Counter)
	copy(out[8:], c.State)
	return out
}

// DecodeCheckpoint parses an encoded checkpoint.
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	if len(b) < 8 {
		return Checkpoint{}, errors.New("resilience: short checkpoint")
	}
	return Checkpoint{
		Counter: binary.BigEndian.Uint64(b[:8]),
		State:   append([]byte(nil), b[8:]...),
	}, nil
}

// LocalReplica is the same-node standby of §3.5.1: it holds the latest
// synchronized state and consumes no CPU until Unfreeze — the goroutine
// analogue of the cgroup-freezer replica. Sync is the no-replay scheme:
// the active NF synchronizes the replica *before* releasing its response
// (output commit), so the replica is always consistent at event
// boundaries.
type LocalReplica struct {
	target Snapshotter

	mu     sync.Mutex
	last   Checkpoint
	synced bool
	frozen atomic.Bool
	syncs  atomic.Uint64
}

// NewLocalReplica creates a frozen replica that will restore into target.
func NewLocalReplica(target Snapshotter) *LocalReplica {
	r := &LocalReplica{target: target}
	r.frozen.Store(true)
	return r
}

// Sync installs the active NF's state at an output-commit point. It is
// called with the event's response withheld until Sync returns, giving the
// paper's consistency guarantee.
func (r *LocalReplica) Sync(cp Checkpoint) {
	r.mu.Lock()
	r.last = cp
	r.synced = true
	r.mu.Unlock()
	r.syncs.Add(1)
}

// Frozen reports whether the replica is still parked.
func (r *LocalReplica) Frozen() bool { return r.frozen.Load() }

// Syncs reports how many output commits have been applied.
func (r *LocalReplica) Syncs() uint64 { return r.syncs.Load() }

// LastCounter returns the counter of the newest synchronized checkpoint.
func (r *LocalReplica) LastCounter() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last.Counter
}

// Checkpoint returns the newest synchronized state (for forwarding to a
// remote replica: the local replica performs remote sync so the primary's
// normal operation is never impeded).
func (r *LocalReplica) Checkpoint() (Checkpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.synced {
		return Checkpoint{}, ErrNotSynced
	}
	return r.last, nil
}

// Unfreeze wakes the replica and restores its state into the target,
// returning the counter from which packet replay must resume.
func (r *LocalReplica) Unfreeze() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.synced {
		return 0, ErrNotSynced
	}
	if err := r.target.Restore(r.last.State); err != nil {
		return 0, err
	}
	r.frozen.Store(false)
	return r.last.Counter, nil
}

// RemoteReplica models the standby on another node: it receives periodic
// delta checkpoints (pushed by the primary's local replica) and
// acknowledges them so the LB can trim its replay buffers.
type RemoteReplica struct {
	target Snapshotter

	mu     sync.Mutex
	last   Checkpoint
	synced bool
	frozen atomic.Bool

	// OnAck is invoked with the synchronized counter after each applied
	// checkpoint — the "success ACK" that releases LB buffers (§3.5.1).
	OnAck func(counter uint64)
}

// NewRemoteReplica creates a frozen remote standby restoring into target.
func NewRemoteReplica(target Snapshotter) *RemoteReplica {
	r := &RemoteReplica{target: target}
	r.frozen.Store(true)
	return r
}

// Apply ingests an encoded checkpoint from the primary.
func (r *RemoteReplica) Apply(encoded []byte) error {
	cp, err := DecodeCheckpoint(encoded)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.last = cp
	r.synced = true
	r.mu.Unlock()
	if r.OnAck != nil {
		r.OnAck(cp.Counter)
	}
	return nil
}

// Frozen reports whether the standby is parked.
func (r *RemoteReplica) Frozen() bool { return r.frozen.Load() }

// LastCounter reports the newest applied checkpoint counter.
func (r *RemoteReplica) LastCounter() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last.Counter
}

// Unfreeze restores the last checkpoint into the target and returns the
// replay start counter.
func (r *RemoteReplica) Unfreeze() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.synced {
		return 0, ErrNotSynced
	}
	if err := r.target.Restore(r.last.State); err != nil {
		return 0, err
	}
	r.frozen.Store(false)
	return r.last.Counter, nil
}
