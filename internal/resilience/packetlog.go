package resilience

import (
	"sync"
)

// Class separates the packet logger into the four queues of §3.5.1, so
// control packets survive even if data floods the buffer.
type Class uint8

// Logger queue classes.
const (
	ULControl Class = iota
	ULData
	DLControl
	DLData
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ULControl:
		return "ul-ctrl"
	case ULData:
		return "ul-data"
	case DLControl:
		return "dl-ctrl"
	case DLData:
		return "dl-data"
	default:
		return "invalid"
	}
}

// LoggedPacket is one buffered message with its global counter value.
type LoggedPacket struct {
	Counter uint64
	Class   Class
	Data    []byte
}

// PacketLogger is the LB-side replay buffer: every outgoing message gets a
// counter and a copy in its class queue; checkpoint ACKs release prefixes;
// on failover, ReplayFrom merges the four queues back into counter order.
type PacketLogger struct {
	mu      sync.Mutex
	counter uint64
	queues  [numClasses][]LoggedPacket
	caps    [numClasses]int

	dropped [numClasses]uint64
}

// NewPacketLogger creates a logger; perQueueCap bounds each class queue
// (0 = unbounded). Control and data overflow independently, which is the
// point of the four-queue split.
func NewPacketLogger(perQueueCap int) *PacketLogger {
	l := &PacketLogger{}
	for i := range l.caps {
		l.caps[i] = perQueueCap
	}
	return l
}

// Log assigns the next counter to the packet, buffers a copy, and returns
// the counter value to attach to the outgoing message.
func (l *PacketLogger) Log(class Class, data []byte) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counter++
	c := l.counter
	q := &l.queues[class]
	if l.caps[class] > 0 && len(*q) >= l.caps[class] {
		l.dropped[class]++
		return c, false
	}
	*q = append(*q, LoggedPacket{Counter: c, Class: class, Data: append([]byte(nil), data...)})
	return c, true
}

// ReleaseUpTo drops logged packets with counter <= counter (the primary
// confirmed a checkpoint covering them).
func (l *PacketLogger) ReleaseUpTo(counter uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.queues {
		q := l.queues[i]
		keep := 0
		for keep < len(q) && q[keep].Counter <= counter {
			keep++
		}
		l.queues[i] = q[keep:]
	}
}

// ReplayFrom returns all buffered packets with counter > after, merged
// across the four queues in ascending counter order — the §3.5.1 replay
// rule ("pick from the queue with the lowest counter value").
func (l *PacketLogger) ReplayFrom(after uint64) []LoggedPacket {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := [numClasses]int{}
	// Skip already-checkpointed prefixes.
	for i := range l.queues {
		for idx[i] < len(l.queues[i]) && l.queues[i][idx[i]].Counter <= after {
			idx[i]++
		}
	}
	var out []LoggedPacket
	for {
		best := -1
		var bestCtr uint64
		for i := range l.queues {
			if idx[i] < len(l.queues[i]) {
				if c := l.queues[i][idx[i]].Counter; best == -1 || c < bestCtr {
					best = i
					bestCtr = c
				}
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, l.queues[best][idx[best]])
		idx[best]++
	}
}

// Depth reports the queue lengths (diagnostics).
func (l *PacketLogger) Depth() [4]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var d [4]int
	for i := range l.queues {
		d[i] = len(l.queues[i])
	}
	return d
}

// Dropped reports per-class overflow counts.
func (l *PacketLogger) Dropped(class Class) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped[class]
}

// Counter returns the last assigned counter value.
func (l *PacketLogger) Counter() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counter
}
