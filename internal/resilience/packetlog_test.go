package resilience

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplayOrderingUnderInterleavedClasses drives the logger with a
// seeded random interleaving of all four classes and checks the §3.5.1
// replay rule: the merged stream is in strictly ascending counter order
// and contains exactly the un-released packets.
func TestReplayOrderingUnderInterleavedClasses(t *testing.T) {
	l := NewPacketLogger(0)
	rng := rand.New(rand.NewSource(42))
	classes := []Class{ULControl, ULData, DLControl, DLData}
	type logged struct {
		ctr  uint64
		data string
	}
	var all []logged
	for i := 0; i < 500; i++ {
		c := classes[rng.Intn(len(classes))]
		data := fmt.Sprintf("%s-%d", c, i)
		ctr, ok := l.Log(c, []byte(data))
		if !ok {
			t.Fatalf("unbounded logger rejected packet %d", i)
		}
		all = append(all, logged{ctr, data})
	}
	out := l.ReplayFrom(0)
	if len(out) != len(all) {
		t.Fatalf("replayed %d packets, want %d", len(out), len(all))
	}
	for i, p := range out {
		if i > 0 && p.Counter <= out[i-1].Counter {
			t.Fatalf("replay not strictly ascending at %d: %d after %d",
				i, p.Counter, out[i-1].Counter)
		}
		if p.Counter != all[i].ctr || string(p.Data) != all[i].data {
			t.Fatalf("replay[%d] = (%d, %q), want (%d, %q)",
				i, p.Counter, p.Data, all[i].ctr, all[i].data)
		}
	}
	// Release a prefix mid-stream; the suffix replays unchanged and still
	// in order.
	cut := all[199].ctr
	l.ReleaseUpTo(cut)
	tail := l.ReplayFrom(0)
	if len(tail) != 300 {
		t.Fatalf("post-release replay = %d packets, want 300", len(tail))
	}
	if tail[0].Counter != all[200].ctr {
		t.Fatalf("post-release replay starts at %d, want %d",
			tail[0].Counter, all[200].ctr)
	}
}

// TestReplayWithDroppedEntries overflows the data queues and checks that
// replay still yields the surviving packets in ascending counter order
// with holes where the drops happened — never reordered, never invented.
func TestReplayWithDroppedEntries(t *testing.T) {
	l := NewPacketLogger(4) // tiny queues force data-class overflow
	kept := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		// Interleave two classes; both overflow their 4-slot queues, and
		// the drops must not corrupt the merged replay order.
		var c Class
		if i%2 == 0 {
			c = ULData
		} else {
			c = DLControl
		}
		ctr, ok := l.Log(c, []byte{byte(i)})
		if ok {
			kept[ctr] = true
		}
	}
	if l.Dropped(ULData) == 0 || l.Dropped(DLControl) == 0 {
		t.Fatalf("expected overflow drops, got ul-data=%d dl-ctrl=%d",
			l.Dropped(ULData), l.Dropped(DLControl))
	}
	out := l.ReplayFrom(0)
	if len(out) != len(kept) {
		t.Fatalf("replayed %d, want %d survivors", len(out), len(kept))
	}
	for i, p := range out {
		if !kept[p.Counter] {
			t.Fatalf("replay invented counter %d", p.Counter)
		}
		if i > 0 && p.Counter <= out[i-1].Counter {
			t.Fatalf("replay out of order at %d", i)
		}
	}
}

// TestReplayWithDuplicatedEntries logs the same payload repeatedly (the
// retransmission case: an upstream timeout re-sends an identical message,
// and the LB logs it again under a fresh counter). Replay must keep every
// copy, each under its own counter, in order — dedup is the receiver's
// job, not the replay buffer's.
func TestReplayWithDuplicatedEntries(t *testing.T) {
	l := NewPacketLogger(0)
	payload := []byte("pfcp-heartbeat")
	var ctrs []uint64
	for i := 0; i < 5; i++ {
		ctr, ok := l.Log(ULControl, payload)
		if !ok {
			t.Fatal("log failed")
		}
		ctrs = append(ctrs, ctr)
	}
	out := l.ReplayFrom(0)
	if len(out) != 5 {
		t.Fatalf("replay kept %d copies, want 5", len(out))
	}
	for i, p := range out {
		if p.Counter != ctrs[i] || string(p.Data) != string(payload) {
			t.Fatalf("copy %d = (%d, %q)", i, p.Counter, p.Data)
		}
	}
	// Replay is also idempotent: calling it again yields the same stream
	// (failover can retry the replay without consuming the buffer).
	again := l.ReplayFrom(0)
	if len(again) != len(out) {
		t.Fatalf("second replay = %d, want %d", len(again), len(out))
	}
	for i := range again {
		if again[i].Counter != out[i].Counter {
			t.Fatalf("second replay diverged at %d", i)
		}
	}
}

// TestReplayFromMidpointSkipsAckedPackets checks the resume-from-counter
// path used when the backup already processed a prefix.
func TestReplayFromMidpointSkipsAckedPackets(t *testing.T) {
	l := NewPacketLogger(0)
	for i := 0; i < 10; i++ {
		l.Log(Class(i%int(numClasses)), []byte{byte(i)})
	}
	out := l.ReplayFrom(7)
	if len(out) != 3 {
		t.Fatalf("replay from 7 = %d packets, want 3", len(out))
	}
	for i, p := range out {
		if p.Counter != uint64(8+i) {
			t.Fatalf("replay[%d].Counter = %d, want %d", i, p.Counter, 8+i)
		}
	}
}

// TestLoggedDataIsACopy ensures mutating the caller's buffer after Log
// does not corrupt the replay stream.
func TestLoggedDataIsACopy(t *testing.T) {
	l := NewPacketLogger(0)
	buf := []byte("original")
	l.Log(ULData, buf)
	copy(buf, "CLOBBER!")
	out := l.ReplayFrom(0)
	if string(out[0].Data) != "original" {
		t.Fatalf("logged data aliased the caller's buffer: %q", out[0].Data)
	}
}

// TestDetectorStopBeforeStart is the regression test for the Stop-hang:
// stopping a never-started detector must return immediately.
func TestDetectorStopBeforeStart(t *testing.T) {
	d := &Detector{Probe: func() bool { return true }}
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop before Start hung")
	}
}

// TestDetectorRearmAfterStop is the satellite regression: Start after
// Stop must arm a fresh probe loop that still detects failures — the
// supervisor reuses one detector across promotions.
func TestDetectorRearmAfterStop(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	detected := make(chan time.Duration, 1)
	d := &Detector{
		Probe:     func() bool { return healthy.Load() },
		Interval:  100 * time.Microsecond,
		Misses:    2,
		OnFailure: func(dt time.Duration) { detected <- dt },
	}
	d.Start()
	d.Stop()
	// Re-arm: the second loop must be live and detect the failure.
	d.Start()
	healthy.Store(false)
	select {
	case <-detected:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed detector never declared failure")
	}
	d.Stop()
}

// TestDetectorRearmAfterFailure re-arms a detector whose previous loop
// exited by declaring failure — including a re-arm issued from inside
// OnFailure itself, the way the supervisor re-protects a promoted
// replica. Each armed loop declares at most one failure.
func TestDetectorRearmAfterFailure(t *testing.T) {
	var healthy atomic.Bool
	detected := make(chan time.Duration, 4)
	d := &Detector{
		Probe:    func() bool { return healthy.Load() },
		Interval: 100 * time.Microsecond,
		Misses:   2,
	}
	d.OnFailure = func(dt time.Duration) {
		// Target "recovers" and protection re-arms from the failure
		// callback, as the supervisor does after promotion. Re-arm before
		// signalling so the test's Stop never races the restart.
		if !healthy.Load() {
			healthy.Store(true)
			d.Start()
		}
		detected <- dt
	}
	d.Start() // probe is unhealthy: first failure fires immediately
	select {
	case <-detected:
	case <-time.After(2 * time.Second):
		t.Fatal("first failure never declared")
	}
	// The re-armed loop (started inside OnFailure) watches the recovered
	// target; kill it again and the detector must declare a second time.
	time.Sleep(time.Millisecond)
	healthy.Store(false)
	select {
	case <-detected:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed detector (from OnFailure) never declared failure")
	}
	d.Stop()
}

// TestDetectorStopAfterFailureAndIdempotent stops a detector whose probe
// goroutine already exited by declaring failure, twice.
func TestDetectorStopAfterFailureAndIdempotent(t *testing.T) {
	failed := make(chan struct{})
	d := &Detector{
		Probe:     func() bool { return false },
		Interval:  100 * time.Microsecond,
		Misses:    2,
		OnFailure: func(time.Duration) { close(failed) },
	}
	d.Start()
	select {
	case <-failed:
	case <-time.After(2 * time.Second):
		t.Fatal("failure not declared")
	}
	done := make(chan struct{})
	go func() {
		d.Stop()
		d.Stop() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop after declared failure hung")
	}
}
