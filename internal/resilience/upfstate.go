package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"

	"l25gc/internal/pfcp"
	"l25gc/internal/pkt"
	"l25gc/internal/upf"
)

// UPFSnapshotter checkpoints a UPF's session state by serializing, per
// session, the PFCP establishment request that recreates it; Restore
// clears the target state and replays those requests through a UPF-C
// handler. This is exactly the state the paper's framework must carry
// across a failover for the data plane to keep forwarding.
type UPFSnapshotter struct {
	State *upf.State
	UPFC  *upf.UPFC
}

// NewUPFSnapshotter builds a snapshotter over a state/UPF-C pair.
func NewUPFSnapshotter(state *upf.State, n3IP pkt.Addr) *UPFSnapshotter {
	return &UPFSnapshotter{State: state, UPFC: upf.NewUPFC(state, n3IP, nil)}
}

// Snapshot implements Snapshotter: length-prefixed PFCP messages.
func (u *UPFSnapshotter) Snapshot() ([]byte, error) {
	var out []byte
	for _, req := range u.State.Export() {
		wire := pfcp.Marshal(req, req.CPSEID, true, 0)
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(wire)))
		out = append(out, l[:]...)
		out = append(out, wire...)
	}
	return out, nil
}

// Restore implements Snapshotter.
func (u *UPFSnapshotter) Restore(b []byte) error {
	u.State.Reset()
	for len(b) > 0 {
		if len(b) < 4 {
			return errors.New("resilience: truncated UPF snapshot")
		}
		n := binary.BigEndian.Uint32(b[:4])
		b = b[4:]
		if uint32(len(b)) < n {
			return errors.New("resilience: truncated UPF snapshot message")
		}
		_, msg, err := pfcp.Parse(b[:n])
		if err != nil {
			return fmt.Errorf("resilience: snapshot parse: %w", err)
		}
		b = b[n:]
		req, ok := msg.(*pfcp.SessionEstablishmentRequest)
		if !ok {
			return fmt.Errorf("resilience: unexpected snapshot message %d", msg.PFCPType())
		}
		resp, err := u.UPFC.Handle(req.CPSEID, req)
		if err != nil {
			return err
		}
		if er, ok := resp.(*pfcp.SessionEstablishmentResponse); !ok || er.Cause != pfcp.CauseAccepted {
			return errors.New("resilience: snapshot replay rejected")
		}
	}
	return nil
}
