// Package rules defines the 5GC data-plane rule model shared by the PFCP
// protocol stack, the UPF and the packet classifiers: Packet Detection Rules
// (PDR) with their Packet Detection Information (PDI), Forwarding Action
// Rules (FAR), QoS Enforcement Rules (QER) and Buffering Action Rules (BAR),
// per 3GPP TS 29.244 and the PDI IE inventory in Appendix A of the paper.
package rules

import (
	"fmt"

	"l25gc/internal/pkt"
)

// Interface identifies where a packet enters or leaves the UPF.
type Interface uint8

// Source/destination interface values (TS 29.244 §8.2.2).
const (
	IfAccess Interface = iota // N3: gNB side
	IfCore                    // N6: data network side
	IfSGiLAN
	IfCPFunction
)

// String implements fmt.Stringer.
func (i Interface) String() string {
	switch i {
	case IfAccess:
		return "access"
	case IfCore:
		return "core"
	case IfSGiLAN:
		return "sgi-lan"
	case IfCPFunction:
		return "cp-function"
	default:
		return "unknown"
	}
}

// PortRange matches an inclusive port interval. Lo==0 && Hi==0xffff matches
// any port.
type PortRange struct {
	Lo, Hi uint16
}

// Any reports whether the range matches every port.
func (r PortRange) Any() bool { return r.Lo == 0 && r.Hi == 0xffff }

// Contains reports whether p falls inside the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// AnyPort is the wildcard port range.
var AnyPort = PortRange{0, 0xffff}

// Prefix is an IPv4 prefix match. Bits==0 matches any address.
type Prefix struct {
	Addr pkt.Addr
	Bits uint8
}

// Mask returns the 32-bit network mask.
func (p Prefix) Mask() uint32 {
	if p.Bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a pkt.Addr) bool {
	m := p.Mask()
	return a.Uint32()&m == p.Addr.Uint32()&m
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// AnyPrefix matches all addresses.
var AnyPrefix = Prefix{}

// SDFFilter is the Service Data Flow filter of the PDI: an extended IP
// 5-tuple (Appendix A, Table 3). Zero values are wildcards.
type SDFFilter struct {
	ID       uint32 // SDF Filter ID
	Src      Prefix
	Dst      Prefix
	SrcPorts PortRange
	DstPorts PortRange
	Protocol uint8 // 0 = any
	ProtoAny bool  // true when Protocol is a wildcard
	TOS      uint8 // Type of Service value; matched when TOSMask != 0
	TOSMask  uint8
	SPI      uint32 // Security Parameter Index; 0 = any
	FlowDesc string // textual flow description (informational)
}

// Matches reports whether the parsed packet tuple satisfies the filter.
func (f *SDFFilter) Matches(t pkt.FiveTuple, tos uint8) bool {
	if !f.ProtoAny && f.Protocol != 0 && f.Protocol != t.Protocol {
		return false
	}
	if !f.Src.Contains(t.Src) || !f.Dst.Contains(t.Dst) {
		return false
	}
	if !f.SrcPorts.Contains(t.SrcPort) || !f.DstPorts.Contains(t.DstPort) {
		return false
	}
	if f.TOSMask != 0 && tos&f.TOSMask != f.TOS&f.TOSMask {
		return false
	}
	return true
}

// PDI is the Packet Detection Information of a PDR: the match side of the
// match-action rule. It carries up to 20 information elements (paper §3.4).
type PDI struct {
	SourceInterface Interface
	TEID            uint32   // Local F-TEID; 0 = not present (DL rules)
	TEIDAddr        pkt.Addr // Local F-TEID IPv4
	HasTEID         bool
	UEIP            pkt.Addr // UE IP address; matched on DL dst / UL src
	HasUEIP         bool
	NetworkInstance string
	ApplicationID   string
	QFI             uint8
	HasQFI          bool
	SDF             SDFFilter
	HasSDF          bool
}

// Matches reports whether a packet with the given direction metadata
// satisfies the PDI. teid is the GTP TEID for access-side packets (0 on N6).
func (p *PDI) Matches(t pkt.FiveTuple, tos uint8, teid uint32, fromAccess bool) bool {
	if fromAccess != (p.SourceInterface == IfAccess) {
		return false
	}
	if p.HasTEID && p.TEID != teid {
		return false
	}
	if p.HasUEIP {
		if fromAccess { // uplink: UE IP is the source
			if t.Src != p.UEIP {
				return false
			}
		} else if t.Dst != p.UEIP { // downlink: UE IP is the destination
			return false
		}
	}
	if p.HasSDF && !p.SDF.Matches(t, tos) {
		return false
	}
	return true
}

// FARAction is the bitmask of Apply Action flags (TS 29.244 §8.2.26).
type FARAction uint8

// Apply Action flags.
const (
	FARDrop FARAction = 1 << iota
	FARForward
	FARBuffer
	FARNotifyCP // NOCP: notify the CP function (triggers paging)
	FARDuplicate
)

// String renders the set flags.
func (a FARAction) String() string {
	s := ""
	add := func(f FARAction, n string) {
		if a&f != 0 {
			if s != "" {
				s += "|"
			}
			s += n
		}
	}
	add(FARDrop, "drop")
	add(FARForward, "forw")
	add(FARBuffer, "buff")
	add(FARNotifyCP, "nocp")
	add(FARDuplicate, "dupl")
	if s == "" {
		s = "none"
	}
	return s
}

// FAR is a Forwarding Action Rule.
type FAR struct {
	ID             uint32
	Action         FARAction
	DestInterface  Interface
	OuterTEID      uint32   // GTP-U TEID for outer header creation (DL to gNB)
	OuterAddr      pkt.Addr // gNB address for outer header creation
	HasOuterHeader bool
}

// QER is a QoS Enforcement Rule (token-bucket rate limits per direction).
type QER struct {
	ID        uint32
	QFI       uint8
	ULMbrKbps uint64 // uplink maximum bit rate, kbit/s; 0 = unlimited
	DLMbrKbps uint64
	GateUL    bool // true = open
	GateDL    bool
}

// BAR is a Buffering Action Rule controlling the UPF's DL buffers.
type BAR struct {
	ID              uint32
	SuggestedPkts   uint16 // suggested buffering packet count
	DLBufferingSecs uint16
}

// PDR is a Packet Detection Rule: match (PDI) plus references to the
// action rules. Lower Precedence value = higher priority (TS 29.244).
type PDR struct {
	ID                 uint32
	Precedence         uint32
	PDI                PDI
	OuterHeaderRemoval bool // strip GTP-U on match (UL rules)
	FARID              uint32
	QERID              uint32 // 0 = none
	URRID              uint32 // usage reporting; 0 = none
	BARID              uint32 // 0 = none
}

// Session groups the rule set of one PDU session at the UPF, along with the
// session-level tunnel endpoints.
type Session struct {
	SEID      uint64 // CP F-SEID
	LocalSEID uint64 // UP F-SEID
	UEIP      pkt.Addr
	PDRs      []*PDR
	FARs      map[uint32]*FAR
	QERs      map[uint32]*QER
	BARs      map[uint32]*BAR
}

// NewSession returns an empty session with allocated maps.
func NewSession(seid uint64, ueIP pkt.Addr) *Session {
	return &Session{
		SEID: seid, UEIP: ueIP,
		FARs: make(map[uint32]*FAR),
		QERs: make(map[uint32]*QER),
		BARs: make(map[uint32]*BAR),
	}
}

// FAR returns the FAR referenced by id, or nil.
func (s *Session) FAR(id uint32) *FAR { return s.FARs[id] }

// AddPDR inserts (or replaces by ID) a PDR keeping the list sorted by
// ascending precedence, which is the 3GPP-specified linear-search order.
func (s *Session) AddPDR(p *PDR) {
	for i, q := range s.PDRs {
		if q.ID == p.ID {
			s.PDRs[i] = p
			sortPDRs(s.PDRs)
			return
		}
	}
	s.PDRs = append(s.PDRs, p)
	sortPDRs(s.PDRs)
}

// RemovePDR deletes the PDR with the given ID, reporting whether it existed.
func (s *Session) RemovePDR(id uint32) bool {
	for i, q := range s.PDRs {
		if q.ID == id {
			s.PDRs = append(s.PDRs[:i], s.PDRs[i+1:]...)
			return true
		}
	}
	return false
}

func sortPDRs(p []*PDR) {
	// Insertion sort: rule lists are small per session and nearly sorted.
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j].Precedence < p[j-1].Precedence; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}
