package rules

import (
	"testing"
	"testing/quick"

	"l25gc/internal/pkt"
)

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: pkt.AddrFrom(10, 60, 0, 0), Bits: 16}
	if !p.Contains(pkt.AddrFrom(10, 60, 5, 9)) {
		t.Fatal("should contain 10.60.5.9")
	}
	if p.Contains(pkt.AddrFrom(10, 61, 0, 1)) {
		t.Fatal("should not contain 10.61.0.1")
	}
	if !AnyPrefix.Contains(pkt.AddrFrom(255, 255, 255, 255)) {
		t.Fatal("AnyPrefix should contain everything")
	}
	host := Prefix{Addr: pkt.AddrFrom(1, 2, 3, 4), Bits: 32}
	if !host.Contains(pkt.AddrFrom(1, 2, 3, 4)) || host.Contains(pkt.AddrFrom(1, 2, 3, 5)) {
		t.Fatal("host prefix semantics wrong")
	}
	if p.String() != "10.60.0.0/16" {
		t.Fatalf("String = %s", p.String())
	}
}

func TestPortRange(t *testing.T) {
	r := PortRange{Lo: 80, Hi: 443}
	if !r.Contains(80) || !r.Contains(443) || !r.Contains(100) {
		t.Fatal("range bounds inclusive")
	}
	if r.Contains(79) || r.Contains(444) {
		t.Fatal("out of range matched")
	}
	if !AnyPort.Any() || r.Any() {
		t.Fatal("Any detection")
	}
}

func TestSDFFilterMatches(t *testing.T) {
	f := SDFFilter{
		Src:      Prefix{Addr: pkt.AddrFrom(10, 60, 0, 0), Bits: 16},
		Dst:      AnyPrefix,
		SrcPorts: AnyPort,
		DstPorts: PortRange{Lo: 443, Hi: 443},
		Protocol: pkt.ProtoTCP,
		TOS:      0xb8, TOSMask: 0xfc,
	}
	tuple := pkt.FiveTuple{
		Src: pkt.AddrFrom(10, 60, 0, 1), Dst: pkt.AddrFrom(8, 8, 8, 8),
		SrcPort: 5000, DstPort: 443, Protocol: pkt.ProtoTCP,
	}
	if !f.Matches(tuple, 0xb8) {
		t.Fatal("should match")
	}
	if f.Matches(tuple, 0x00) {
		t.Fatal("TOS mismatch should fail")
	}
	bad := tuple
	bad.Protocol = pkt.ProtoUDP
	if f.Matches(bad, 0xb8) {
		t.Fatal("protocol mismatch should fail")
	}
	bad = tuple
	bad.DstPort = 80
	if f.Matches(bad, 0xb8) {
		t.Fatal("port mismatch should fail")
	}
	bad = tuple
	bad.Src = pkt.AddrFrom(10, 61, 0, 1)
	if f.Matches(bad, 0xb8) {
		t.Fatal("prefix mismatch should fail")
	}
	// ProtoAny wildcard.
	f.ProtoAny = true
	bad = tuple
	bad.Protocol = pkt.ProtoUDP
	if !f.Matches(bad, 0xb8) {
		t.Fatal("ProtoAny should match any protocol")
	}
}

func TestPDIMatchesDirection(t *testing.T) {
	ul := PDI{
		SourceInterface: IfAccess,
		TEID:            0x100, HasTEID: true,
		UEIP: pkt.AddrFrom(10, 60, 0, 1), HasUEIP: true,
	}
	tuple := pkt.FiveTuple{Src: pkt.AddrFrom(10, 60, 0, 1), Dst: pkt.AddrFrom(8, 8, 8, 8)}
	if !ul.Matches(tuple, 0, 0x100, true) {
		t.Fatal("uplink PDI should match")
	}
	if ul.Matches(tuple, 0, 0x101, true) {
		t.Fatal("TEID mismatch should fail")
	}
	if ul.Matches(tuple, 0, 0x100, false) {
		t.Fatal("direction mismatch should fail")
	}
	dl := PDI{
		SourceInterface: IfCore,
		UEIP:            pkt.AddrFrom(10, 60, 0, 1), HasUEIP: true,
	}
	dlTuple := pkt.FiveTuple{Src: pkt.AddrFrom(8, 8, 8, 8), Dst: pkt.AddrFrom(10, 60, 0, 1)}
	if !dl.Matches(dlTuple, 0, 0, false) {
		t.Fatal("downlink PDI should match on dst UE IP")
	}
	if dl.Matches(tuple, 0, 0, false) {
		t.Fatal("wrong dst should fail")
	}
}

func TestSessionAddPDRKeepsPrecedenceOrder(t *testing.T) {
	s := NewSession(1, pkt.AddrFrom(10, 60, 0, 1))
	s.AddPDR(&PDR{ID: 1, Precedence: 200})
	s.AddPDR(&PDR{ID: 2, Precedence: 50})
	s.AddPDR(&PDR{ID: 3, Precedence: 100})
	want := []uint32{2, 3, 1}
	for i, p := range s.PDRs {
		if p.ID != want[i] {
			t.Fatalf("PDRs[%d].ID = %d, want %d", i, p.ID, want[i])
		}
	}
	// Replacing by ID re-sorts.
	s.AddPDR(&PDR{ID: 2, Precedence: 300})
	if s.PDRs[len(s.PDRs)-1].ID != 2 {
		t.Fatal("replaced PDR should sort last")
	}
	if len(s.PDRs) != 3 {
		t.Fatalf("len = %d, want 3 after replace", len(s.PDRs))
	}
}

func TestSessionRemovePDR(t *testing.T) {
	s := NewSession(1, pkt.Addr{})
	s.AddPDR(&PDR{ID: 1})
	s.AddPDR(&PDR{ID: 2})
	if !s.RemovePDR(1) {
		t.Fatal("RemovePDR(1) should succeed")
	}
	if s.RemovePDR(1) {
		t.Fatal("double remove should fail")
	}
	if len(s.PDRs) != 1 || s.PDRs[0].ID != 2 {
		t.Fatalf("remaining %+v", s.PDRs)
	}
}

func TestFARActionString(t *testing.T) {
	if s := (FARForward | FARBuffer).String(); s != "forw|buff" {
		t.Fatalf("got %q", s)
	}
	if s := FARAction(0).String(); s != "none" {
		t.Fatalf("got %q", s)
	}
	if s := (FARDrop | FARNotifyCP | FARDuplicate).String(); s != "drop|nocp|dupl" {
		t.Fatalf("got %q", s)
	}
}

func TestInterfaceString(t *testing.T) {
	for i, want := range map[Interface]string{
		IfAccess: "access", IfCore: "core", IfSGiLAN: "sgi-lan",
		IfCPFunction: "cp-function", Interface(99): "unknown",
	} {
		if i.String() != want {
			t.Errorf("%d.String() = %q want %q", i, i.String(), want)
		}
	}
}

// Property: prefix containment agrees with direct mask arithmetic.
func TestPrefixContainsProperty(t *testing.T) {
	f := func(addr, probe uint32, bits uint8) bool {
		p := Prefix{Addr: pkt.AddrFromUint32(addr), Bits: bits % 33}
		got := p.Contains(pkt.AddrFromUint32(probe))
		var want bool
		if p.Bits == 0 {
			want = true
		} else {
			shift := 32 - uint32(p.Bits)
			want = addr>>shift == probe>>shift
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddPDR always maintains non-decreasing precedence.
func TestAddPDROrderProperty(t *testing.T) {
	f := func(precs []uint32) bool {
		s := NewSession(1, pkt.Addr{})
		for i, p := range precs {
			s.AddPDR(&PDR{ID: uint32(i + 1), Precedence: p})
		}
		for i := 1; i < len(s.PDRs); i++ {
			if s.PDRs[i].Precedence < s.PDRs[i-1].Precedence {
				return false
			}
		}
		return len(s.PDRs) == len(precs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
