package pfcp

import (
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/testutil"
)

// fakeUPF is a minimal association responder: it answers setup and
// heartbeat with its own (mutable) recovery timestamp, the behaviour
// upf.UPFC implements for real (which pfcp cannot import).
type fakeUPF struct {
	ts    atomic.Uint32
	seids func() []uint64
}

func (f *fakeUPF) handler() Handler {
	return func(seid uint64, req Message) (Message, error) {
		switch req.(type) {
		case *HeartbeatRequest:
			return &HeartbeatResponse{RecoveryTimestamp: f.ts.Load()}, nil
		case *AssociationSetupRequest:
			return &AssociationSetupResponse{
				NodeID: "upf.test", Cause: CauseAccepted,
				RecoveryTimestamp: f.ts.Load(),
			}, nil
		case *SessionSetAuditRequest:
			var s []uint64
			if f.seids != nil {
				s = f.seids()
			}
			return &SessionSetAuditResponse{Cause: CauseAccepted, SEIDs: s}, nil
		}
		return nil, nil
	}
}

// assocPair wires an Association over a mem pair against a fakeUPF with
// a chaos-fast retry profile.
func assocPair(t *testing.T, cfg AssocConfig) (*Association, *MemEndpoint, *fakeUPF, *faults.Injector) {
	t.Helper()
	smf, upf := NewMemPair(64)
	t.Cleanup(func() { smf.Close(); upf.Close() })
	f := &fakeUPF{}
	f.ts.Store(1)
	upf.SetHandler(f.handler())
	smf.SetRetry(RetryConfig{T1: 20 * time.Millisecond, N1: 1, Backoff: 1})
	inj := faults.New(11)
	smf.SetInjector(inj, "pfcp.smf")
	upf.SetInjector(inj, "pfcp.upf")
	cfg.NodeID = "smf.test"
	if cfg.RecoveryTimestamp == 0 {
		cfg.RecoveryTimestamp = 7
	}
	a := NewAssociation(smf, cfg)
	return a, smf, f, inj
}

func TestAssociationSetupThenHeartbeats(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a, _, _, _ := assocPair(t, AssocConfig{MissThreshold: 2})
	if a.State() != AssocIdle {
		t.Fatalf("initial state %v", a.State())
	}
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if a.State() != AssocUp || a.PeerNodeID() != "upf.test" {
		t.Fatalf("state %v peer %q after setup", a.State(), a.PeerNodeID())
	}
	for i := 0; i < 3; i++ {
		a.Tick()
	}
	if c := a.Counters(); c.HeartbeatOK != 3 || c.HeartbeatMiss != 0 {
		t.Fatalf("counters %+v", c)
	}
	if a.State() != AssocUp {
		t.Fatalf("state %v after healthy heartbeats", a.State())
	}
}

func TestAssociationMissThresholdDeclaresDown(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var downReason atomic.Value
	a, _, _, inj := assocPair(t, AssocConfig{
		MissThreshold: 2,
		OnDown:        func(r string) { downReason.Store(r) },
	})
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	inj.Partition("pfcp.smf")

	a.Tick() // miss 1
	if a.State() != AssocUp || a.Misses() != 1 {
		t.Fatalf("state %v misses %d after first miss", a.State(), a.Misses())
	}
	a.Tick() // miss 2 -> threshold
	if a.State() != AssocDown {
		t.Fatalf("state %v after threshold misses", a.State())
	}
	if r, _ := downReason.Load().(string); r != "heartbeat-timeout" {
		t.Fatalf("down reason %q", r)
	}
	if c := a.Counters(); c.Downs != 1 || c.HeartbeatMiss != 2 {
		t.Fatalf("counters %+v", c)
	}
	if a.LastDetectLatency() <= 0 {
		t.Fatal("detect latency not recorded")
	}

	// Heal: the next Tick probes with a fresh setup and brings it up.
	inj.Heal("pfcp.smf")
	a.Tick()
	if a.State() != AssocUp {
		t.Fatalf("state %v after heal+probe", a.State())
	}
	if c := a.Counters(); c.Ups != 2 { // initial setup + post-heal probe
		t.Fatalf("ups = %d", c.Ups)
	}
}

// TestAssociationLateHeartbeatResponseDoesNotFlap is the no-flap
// invariant: a heartbeat response that arrives AFTER the path was
// declared down must not bring the association back up — only a fresh
// AssociationSetup (with reconciliation) may.
func TestAssociationLateHeartbeatResponseDoesNotFlap(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a, smf, _, inj := assocPair(t, AssocConfig{MissThreshold: 1})
	smf.SetRetry(RetryConfig{T1: 30 * time.Millisecond, N1: 0, Backoff: 1})
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	// Delay the UPF's responses far beyond the retry budget: the
	// heartbeat request is handled, but its response lands only after the
	// path has been declared down.
	inj.Add(faults.Rule{Point: "pfcp.upf.tx", Kind: faults.Delay, Delay: 150 * time.Millisecond, Count: 1})

	a.Tick() // times out at ~30ms -> down (threshold 1)
	if a.State() != AssocDown {
		t.Fatalf("state %v after timed-out heartbeat", a.State())
	}
	ups := a.Counters().Ups
	time.Sleep(250 * time.Millisecond) // late response arrives and must be ignored
	if a.State() != AssocDown {
		t.Fatal("late heartbeat response flapped the association up")
	}
	if a.Counters().Ups != ups {
		t.Fatal("up transition recorded without a fresh setup")
	}
	// A fresh setup is the only way back up.
	if err := a.Setup(); err != nil {
		t.Fatalf("fresh setup: %v", err)
	}
	if a.State() != AssocUp {
		t.Fatalf("state %v after fresh setup", a.State())
	}
}

// TestAssociationHeartbeatRetransmitDedup drives a heartbeat whose first
// transmission is dropped: the T1/N1 machinery must recover it, the
// responder must answer the retransmission from its dedup cache, and the
// association must record a single clean exchange (no miss).
func TestAssociationHeartbeatRetransmitDedup(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	smf, upf := NewMemPair(64)
	t.Cleanup(func() { smf.Close(); upf.Close() })
	f := &fakeUPF{}
	f.ts.Store(1)
	var calls atomic.Int32
	inner := f.handler()
	upf.SetHandler(func(seid uint64, req Message) (Message, error) {
		if _, ok := req.(*HeartbeatRequest); ok {
			calls.Add(1)
		}
		return inner(seid, req)
	})
	smf.SetRetry(RetryConfig{T1: 25 * time.Millisecond, N1: 3, Backoff: 1})
	// Drop the first heartbeat REQUEST frame, then the first heartbeat
	// RESPONSE frame: the first recovery is a straight retransmission,
	// the second must be answered from the responder's dedup cache
	// without re-running the handler.
	inj := faults.New(13).
		Add(faults.Rule{Point: "pfcp.smf.tx", Kind: faults.Drop, Count: 1, After: 1}).
		Add(faults.Rule{Point: "pfcp.upf.tx", Kind: faults.Drop, Count: 1, After: 1})
	smf.SetInjector(inj, "pfcp.smf")
	upf.SetInjector(inj, "pfcp.upf")

	a := NewAssociation(smf, AssocConfig{NodeID: "smf.test", RecoveryTimestamp: 7, MissThreshold: 2})
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	a.Tick() // dropped request -> retransmit
	a.Tick() // dropped response -> retransmit answered from cache
	if c := a.Counters(); c.HeartbeatOK != 2 || c.HeartbeatMiss != 0 {
		t.Fatalf("counters %+v; retransmission did not recover the exchanges", c)
	}
	if calls.Load() != 2 {
		t.Fatalf("heartbeat handler ran %d times, want 2 (dedup must absorb the retransmit)", calls.Load())
	}
	if rtx, _ := smf.Stats(); rtx < 2 {
		t.Fatalf("retransmits = %d, want >= 2", rtx)
	}
}

func TestAssociationPeerRestartDetection(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var reasons []string
	var restartedAtSetup atomic.Bool
	a, _, f, _ := assocPair(t, AssocConfig{
		MissThreshold: 2,
		OnDown:        func(r string) { reasons = append(reasons, r) },
		OnUp: func(restarted bool) error {
			restartedAtSetup.Store(restarted)
			return nil
		},
	})
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if restartedAtSetup.Load() {
		t.Fatal("first setup must not report a restart")
	}
	a.Tick()
	if a.State() != AssocUp {
		t.Fatalf("state %v", a.State())
	}

	f.ts.Store(2) // UPF "restarts": new incarnation, new timestamp
	a.Tick()
	if a.State() != AssocDown {
		t.Fatalf("state %v; changed RecoveryTimestamp must down the association", a.State())
	}
	if len(reasons) != 1 || reasons[0] != "peer-restart" {
		t.Fatalf("down reasons %v", reasons)
	}
	a.Tick() // probe: fresh setup against the new incarnation
	if a.State() != AssocUp {
		t.Fatalf("state %v after re-setup", a.State())
	}
	if !restartedAtSetup.Load() {
		t.Fatal("OnUp must see peerRestarted=true after a restart-triggered down")
	}
	if c := a.Counters(); c.PeerRestarts != 1 {
		t.Fatalf("restarts = %d", c.PeerRestarts)
	}
}

func TestAssociationOnUpErrorKeepsDown(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	fail := atomic.Bool{}
	fail.Store(true)
	a, _, _, _ := assocPair(t, AssocConfig{
		MissThreshold: 1,
		OnUp: func(bool) error {
			if fail.Load() {
				return errFakeReconcile
			}
			return nil
		},
	})
	if err := a.Setup(); err == nil {
		t.Fatal("setup must surface the reconcile error")
	}
	if a.State() != AssocIdle {
		t.Fatalf("state %v; failed reconcile must not advertise Up", a.State())
	}
	fail.Store(false)
	a.Tick() // retries the whole setup+reconcile
	if a.State() != AssocUp {
		t.Fatalf("state %v after reconcile recovered", a.State())
	}
}

var errFakeReconcile = &fakeError{"reconcile backlog"}

type fakeError struct{ s string }

func (e *fakeError) Error() string { return e.s }

func TestAssociationSnapshotRestore(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a, _, _, inj := assocPair(t, AssocConfig{MissThreshold: 1})
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	inj.Partition("pfcp.smf")
	a.Tick()
	if a.State() != AssocDown {
		t.Fatalf("state %v", a.State())
	}
	snap := a.Snapshot()

	b, _, _, _ := assocPair(t, AssocConfig{MissThreshold: 1})
	b.Restore(snap)
	if b.State() != AssocDown || b.PeerNodeID() != "upf.test" {
		t.Fatalf("restored state %v peer %q", b.State(), b.PeerNodeID())
	}
	// The restored incarnation recovers exactly like the original would:
	// probe setup (its own injector is unpartitioned).
	b.Tick()
	if b.State() != AssocUp {
		t.Fatalf("restored assoc state %v after probe", b.State())
	}
}

func TestAssociationStartStopTicker(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a, _, _, _ := assocPair(t, AssocConfig{
		MissThreshold:     2,
		HeartbeatInterval: 5 * time.Millisecond,
	})
	if err := a.Setup(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	a.Start()
	a.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for a.Counters().HeartbeatOK < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a.Counters().HeartbeatOK < 3 {
		t.Fatal("ticker did not drive heartbeats")
	}
	a.Stop()
	a.Stop() // idempotent
}

// TestEndpointCloseJoinsDispatchWorker is the PR 9 shutdown fix: Close
// must stop the reqQueue dispatch worker and cancel retransmit timers so
// nothing outlives the endpoint (the leak check is the assertion).
func TestEndpointCloseJoinsDispatchWorker(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	smf, upf := NewMemPair(256)
	block := make(chan struct{})
	var handled atomic.Int32
	upf.SetHandler(func(seid uint64, req Message) (Message, error) {
		handled.Add(1)
		<-block
		return &HeartbeatResponse{}, nil
	})
	smf.SetRetry(RetryConfig{T1: time.Hour, N1: 0, Backoff: 1})

	// Park one request in the handler and queue several more behind it.
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := smf.Request(0, false, &HeartbeatRequest{})
			errs <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for handled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if handled.Load() == 0 {
		t.Fatal("no request reached the handler")
	}

	// Closing the requester side cancels every in-flight Request (and its
	// hour-long retransmit timer) immediately.
	smf.Close()
	for i := 0; i < 8; i++ {
		if err := <-errs; err == nil {
			t.Fatal("Request survived endpoint Close")
		}
	}
	close(block) // release the parked handler; upf.Close joins its worker
	upf.Close()
	// Queued-but-undispatched requests must NOT run after Close returns.
	if n := handled.Load(); n > 1 {
		t.Fatalf("%d handlers ran; Close must drop still-queued requests", n)
	}
}

func TestUDPEndpointCloseJoinsWorker(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	smf, upf := udpPair(t)
	upf.SetHandler(echoHandler(t))
	smf.SetRetry(fastRetry())
	if _, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 3}); err != nil {
		t.Fatalf("request: %v", err)
	}
	// Explicit double-close: idempotent, and the cleanup close is a no-op.
	if err := smf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	smf.Close()
	upf.Close()
}
