package pfcp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/shm"
)

// Handler processes an incoming PFCP request and returns the response.
type Handler func(seid uint64, req Message) (Message, error)

// Endpoint is one side of an N4 association. The two implementations give
// the paper's comparison: UDPEndpoint serializes to TLV and crosses the
// kernel (free5GC), MemEndpoint passes message structs through a
// shared-memory mailbox (L²5GC).
type Endpoint interface {
	// Request sends req and blocks until the matching response arrives or
	// the timeout elapses.
	Request(seid uint64, hasSEID bool, req Message) (Message, error)
	// SetHandler installs the request handler (must be set before traffic).
	SetHandler(h Handler)
	// Close releases the endpoint.
	Close() error
}

// DefaultTimeout bounds Request round trips.
const DefaultTimeout = 3 * time.Second

// --- UDP endpoint (kernel path / free5GC baseline) ---

// UDPEndpoint speaks PFCP over a kernel UDP socket.
type UDPEndpoint struct {
	conn    *net.UDPConn
	peer    atomic.Pointer[net.UDPAddr]
	handler atomic.Pointer[Handler]
	seq     atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan Message

	closed atomic.Bool
	done   chan struct{}
}

// NewUDPEndpoint listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewUDPEndpoint(addr string) (*UDPEndpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	e := &UDPEndpoint{
		conn:    conn,
		pending: make(map[uint32]chan Message),
		done:    make(chan struct{}),
	}
	go e.readLoop()
	return e, nil
}

// Addr returns the endpoint's bound address.
func (e *UDPEndpoint) Addr() string { return e.conn.LocalAddr().String() }

// Connect sets the peer address for outgoing requests.
func (e *UDPEndpoint) Connect(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	e.peer.Store(ua)
	return nil
}

// SetHandler implements Endpoint.
func (e *UDPEndpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// Request implements Endpoint.
func (e *UDPEndpoint) Request(seid uint64, hasSEID bool, req Message) (Message, error) {
	peer := e.peer.Load()
	if peer == nil {
		return nil, fmt.Errorf("pfcp: no peer configured")
	}
	seq := e.seq.Add(1) & 0xffffff
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[seq] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	wire := Marshal(req, seid, hasSEID, seq)
	if _, err := e.conn.WriteToUDP(wire, peer); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-time.After(DefaultTimeout):
		return nil, fmt.Errorf("pfcp: request %d timed out", req.PFCPType())
	case <-e.done:
		return nil, net.ErrClosed
	}
}

func (e *UDPEndpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		hdr, msg, err := Parse(buf[:n])
		if err != nil {
			continue
		}
		if isResponse(hdr.MsgType) {
			e.mu.Lock()
			ch := e.pending[hdr.Seq]
			e.mu.Unlock()
			if ch != nil {
				ch <- msg
			}
			continue
		}
		hp := e.handler.Load()
		if hp == nil {
			continue
		}
		resp, err := (*hp)(hdr.SEID, msg)
		if err != nil || resp == nil {
			continue
		}
		e.conn.WriteToUDP(Marshal(resp, hdr.SEID, hdr.HasSEID, hdr.Seq), from)
	}
}

// Close implements Endpoint.
func (e *UDPEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		close(e.done)
		return e.conn.Close()
	}
	return nil
}

func isResponse(t uint8) bool {
	switch t {
	case MsgHeartbeatResponse, MsgAssociationSetupResponse,
		MsgSessionEstablishmentResp, MsgSessionModificationResp,
		MsgSessionDeletionResp, MsgSessionReportResp:
		return true
	}
	return false
}

// --- shared-memory endpoint (L²5GC path) ---

// memFrame is the descriptor passed through the mailbox: the message struct
// travels by pointer, never serialized.
type memFrame struct {
	seid   uint64
	seq    uint32
	isResp bool
	msg    Message
}

// MemEndpoint speaks PFCP over an in-process shared-memory mailbox pair.
type MemEndpoint struct {
	out     *shm.Mailbox[memFrame]
	in      *shm.Mailbox[memFrame]
	handler atomic.Pointer[Handler]
	seq     atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan Message

	closeOnce sync.Once
	done      chan struct{}
}

// NewMemPair creates two connected shared-memory endpoints (SMF side, UPF
// side). ringSize bounds in-flight descriptors per direction.
func NewMemPair(ringSize int) (*MemEndpoint, *MemEndpoint) {
	ab := shm.NewMailbox[memFrame](ringSize)
	ba := shm.NewMailbox[memFrame](ringSize)
	a := &MemEndpoint{out: ab, in: ba, pending: make(map[uint32]chan Message), done: make(chan struct{})}
	b := &MemEndpoint{out: ba, in: ab, pending: make(map[uint32]chan Message), done: make(chan struct{})}
	go a.recvLoop()
	go b.recvLoop()
	return a, b
}

// SetHandler implements Endpoint.
func (e *MemEndpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// Request implements Endpoint.
func (e *MemEndpoint) Request(seid uint64, hasSEID bool, req Message) (Message, error) {
	seq := e.seq.Add(1)
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[seq] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	if err := e.out.Send(memFrame{seid: seid, seq: seq, msg: req}); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-time.After(DefaultTimeout):
		return nil, fmt.Errorf("pfcp: shm request %d timed out", req.PFCPType())
	case <-e.done:
		return nil, net.ErrClosed
	}
}

func (e *MemEndpoint) recvLoop() {
	for {
		f, ok := e.in.Recv()
		if !ok {
			return
		}
		if f.isResp {
			e.mu.Lock()
			ch := e.pending[f.seq]
			e.mu.Unlock()
			if ch != nil {
				ch <- f.msg
			}
			continue
		}
		hp := e.handler.Load()
		if hp == nil {
			continue
		}
		resp, err := (*hp)(f.seid, f.msg)
		if err != nil || resp == nil {
			continue
		}
		e.out.Send(memFrame{seid: f.seid, seq: f.seq, isResp: true, msg: resp})
	}
}

// Close implements Endpoint.
func (e *MemEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.in.Close()
	})
	return nil
}
