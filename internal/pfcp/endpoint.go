package pfcp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/shm"
	"l25gc/internal/trace"
)

// Handler processes an incoming PFCP request and returns the response.
type Handler func(seid uint64, req Message) (Message, error)

// Endpoint is one side of an N4 association. The two implementations give
// the paper's comparison: UDPEndpoint serializes to TLV and crosses the
// kernel (free5GC), MemEndpoint passes message structs through a
// shared-memory mailbox (L²5GC).
type Endpoint interface {
	// Request sends req and blocks until the matching response arrives,
	// retransmitting per the endpoint's RetryConfig (T1/N1) until the
	// retry budget is exhausted.
	Request(seid uint64, hasSEID bool, req Message) (Message, error)
	// SetHandler installs the request handler (must be set before traffic).
	SetHandler(h Handler)
	// SetRetry installs the request retransmission profile.
	SetRetry(cfg RetryConfig)
	// SetInjector threads a fault injector through the endpoint; points
	// are named prefix+".tx" and prefix+".rx".
	SetInjector(inj *faults.Injector, prefix string)
	// SetTracer installs a trace track; nil disables tracing. The UDP
	// transport emits encode/syscall/decode stage spans the shm transport
	// does not have — that asymmetry is the paper's N4 argument.
	SetTracer(tk *trace.Track)
	// ExportMetrics registers the endpoint's counters (".retransmits",
	// ".timeouts") under prefix.
	ExportMetrics(reg *metrics.Registry, prefix string)
	// Close releases the endpoint.
	Close() error
}

// DefaultTimeout is the default initial response timer (3GPP N4 T1).
const DefaultTimeout = 3 * time.Second

// injectorConf groups an installed fault injector with its point names so
// endpoints can swap it in atomically while their read loops run.
type injectorConf struct {
	inj *faults.Injector
	tx  faults.Point
	rx  faults.Point
}

// reqQueue serializes inbound *request* dispatch on a dedicated worker
// goroutine so the receive loop — which also completes pending Request
// waiters — is never parked behind a handler. Without this split the
// association head-of-line deadlocks: an NF that issues a synchronous
// Request while holding its supervisor unit lock can only make progress
// once the response is delivered, but if the peer's unsolicited request
// (e.g. a Session Report racing a modification) arrived first, the
// single-threaded receive loop is stuck in that handler's ingress tap
// waiting for the very same lock, and the response sits behind it
// unread until the retry budget burns out. Requests still run strictly
// in arrival order; only their execution is decoupled from the reader.
type reqQueue[T any] struct {
	mu      sync.Mutex
	q       []T
	wake    chan struct{}
	done    <-chan struct{}
	stopped chan struct{}
}

// newReqQueue starts the worker; it drains until done closes. Queued
// entries remaining at close time are dropped — the peer's
// retransmission loop covers them, exactly as for a datagram lost in
// flight.
func newReqQueue[T any](done <-chan struct{}, run func(T)) *reqQueue[T] {
	rq := &reqQueue[T]{wake: make(chan struct{}, 1), done: done,
		stopped: make(chan struct{})}
	go rq.loop(run)
	return rq
}

// join blocks until the worker goroutine has exited (i.e. done closed and
// the in-flight handler, if any, returned). Endpoint Close calls this so
// no queued handler outlives the endpoint.
func (rq *reqQueue[T]) join() { <-rq.stopped }

// push enqueues one request; it never blocks and is safe from injector
// timer goroutines.
func (rq *reqQueue[T]) push(v T) {
	rq.mu.Lock()
	rq.q = append(rq.q, v)
	rq.mu.Unlock()
	select {
	case rq.wake <- struct{}{}:
	default:
	}
}

func (rq *reqQueue[T]) loop(run func(T)) {
	defer close(rq.stopped)
	for {
		select {
		case <-rq.done:
			return
		case <-rq.wake:
		}
		for {
			// Re-check done between entries: once the endpoint closes,
			// still-queued requests are dropped rather than dispatched into
			// handlers whose endpoint is tearing down under them.
			select {
			case <-rq.done:
				return
			default:
			}
			rq.mu.Lock()
			if len(rq.q) == 0 {
				rq.mu.Unlock()
				break
			}
			v := rq.q[0]
			rq.q = rq.q[1:]
			rq.mu.Unlock()
			run(v)
		}
	}
}

// --- UDP endpoint (kernel path / free5GC baseline) ---

// UDPEndpoint speaks PFCP over a kernel UDP socket.
type UDPEndpoint struct {
	conn    *net.UDPConn
	peer    atomic.Pointer[net.UDPAddr]
	handler atomic.Pointer[Handler]
	seq     atomic.Uint32
	retry   atomic.Pointer[RetryConfig]
	faultc  atomic.Pointer[injectorConf]
	tracec  atomic.Pointer[trace.Track]

	mu      sync.Mutex
	pending map[uint32]chan Message

	respCache *respCache[[]byte]
	reqs      *reqQueue[udpRequest]

	retransmits atomic.Uint64
	timeouts    atomic.Uint64

	closed atomic.Bool
	done   chan struct{}
}

// udpRequest is one parsed inbound request awaiting serial dispatch.
type udpRequest struct {
	hdr  Header
	msg  Message
	from *net.UDPAddr
}

// NewUDPEndpoint listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewUDPEndpoint(addr string) (*UDPEndpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	e := &UDPEndpoint{
		conn:      conn,
		pending:   make(map[uint32]chan Message),
		respCache: newRespCache[[]byte](),
		done:      make(chan struct{}),
	}
	e.reqs = newReqQueue(e.done, e.handleRequest)
	go e.readLoop()
	return e, nil
}

// Addr returns the endpoint's bound address.
func (e *UDPEndpoint) Addr() string { return e.conn.LocalAddr().String() }

// Connect sets the peer address for outgoing requests.
func (e *UDPEndpoint) Connect(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	e.peer.Store(ua)
	return nil
}

// SetHandler implements Endpoint.
func (e *UDPEndpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// SetRetry implements Endpoint.
func (e *UDPEndpoint) SetRetry(cfg RetryConfig) {
	cfg = cfg.norm()
	e.retry.Store(&cfg)
}

// SetInjector implements Endpoint.
func (e *UDPEndpoint) SetInjector(inj *faults.Injector, prefix string) {
	e.faultc.Store(&injectorConf{
		inj: inj,
		tx:  faults.Point(prefix + ".tx"),
		rx:  faults.Point(prefix + ".rx"),
	})
}

// SetTracer implements Endpoint.
func (e *UDPEndpoint) SetTracer(tk *trace.Track) { e.tracec.Store(tk) }

// ExportMetrics implements Endpoint.
func (e *UDPEndpoint) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".retransmits", e.retransmits.Load)
	reg.RegisterGauge(prefix+".timeouts", e.timeouts.Load)
}

// retryConfig returns the installed profile or the defaults.
func (e *UDPEndpoint) retryConfig() RetryConfig {
	if c := e.retry.Load(); c != nil {
		return *c
	}
	return DefaultRetry()
}

// Stats reports request retransmissions and per-attempt timeouts.
func (e *UDPEndpoint) Stats() (retransmits, timeouts uint64) {
	return e.retransmits.Load(), e.timeouts.Load()
}

// PendingRequests reports the number of in-flight request waiters
// (diagnostics; abandoned requests must not linger here).
func (e *UDPEndpoint) PendingRequests() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// send transmits wire to the peer through the injector, if any. The
// injector receives a private copy so an injected corruption cannot taint
// later retransmissions of the same request.
func (e *UDPEndpoint) send(wire []byte, to *net.UDPAddr) error {
	fc := e.faultc.Load()
	if fc == nil {
		_, err := e.conn.WriteToUDP(wire, to)
		return err
	}
	var werr error
	fc.inj.Transmit(fc.tx, append([]byte(nil), wire...), func(b []byte) {
		if _, err := e.conn.WriteToUDP(b, to); err != nil {
			werr = err
		}
	})
	return werr
}

// Request implements Endpoint: it transmits the request and waits T1 for
// the response, retransmitting with the same sequence number up to N1
// times with backoff. The pending-map entry is removed on every exit path
// so abandoned sequence numbers do not leak channels.
func (e *UDPEndpoint) Request(seid uint64, hasSEID bool, req Message) (Message, error) {
	peer := e.peer.Load()
	if peer == nil {
		return nil, fmt.Errorf("pfcp: no peer configured")
	}
	seq := e.seq.Add(1) & 0xffffff
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[seq] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	root := e.tracec.Load().Start("pfcp.request." + MsgName(req.PFCPType()))
	defer root.End()
	enc := root.Child("pfcp.encode")
	wire := Marshal(req, seid, hasSEID, seq)
	enc.End()
	cfg := e.retryConfig()
	t1 := cfg.T1
	timer := time.NewTimer(t1)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retransmits.Add(1)
			root.Event("pfcp.retransmit")
		}
		tx := root.Child("pfcp.tx.syscall")
		err := e.send(wire, peer)
		tx.End()
		if err != nil {
			return nil, err
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(t1)
		wait := root.Child("pfcp.wait")
		select {
		case resp := <-ch:
			wait.End()
			return resp, nil
		case <-timer.C:
			wait.End()
			e.timeouts.Add(1)
			if attempt >= cfg.N1 {
				return nil, fmt.Errorf("pfcp: request %d timed out after %d attempts",
					req.PFCPType(), attempt+1)
			}
			t1 = cfg.next(t1)
		case <-e.done:
			wait.End()
			return nil, net.ErrClosed
		}
	}
}

func (e *UDPEndpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		fc := e.faultc.Load()
		if fc == nil {
			e.handleDatagram(buf[:n], from)
			continue
		}
		// The injector may defer processing (delay/reorder), so it gets a
		// private copy of the datagram; handleDatagram is safe to run from
		// injector timer goroutines.
		fc.inj.Transmit(fc.rx, append([]byte(nil), buf[:n]...), func(b []byte) {
			e.handleDatagram(b, from)
		})
	}
}

// handleDatagram dispatches one received PFCP message: responses complete
// pending requests inline — the read path must never wait on a handler —
// while requests are handed to the serial dispatch worker.
func (e *UDPEndpoint) handleDatagram(data []byte, from *net.UDPAddr) {
	tk := e.tracec.Load()
	dec := tk.Start("pfcp.rx.decode")
	hdr, msg, err := Parse(data)
	dec.End()
	if err != nil {
		return
	}
	if isResponse(hdr.MsgType) {
		e.mu.Lock()
		ch := e.pending[hdr.Seq]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- msg:
			default: // duplicate response for an already-answered request
			}
		}
		return
	}
	e.reqs.push(udpRequest{hdr: hdr, msg: msg, from: from})
}

// handleRequest runs one inbound request on the dispatch worker, with
// retransmissions (same sequence number) answered from the response
// cache instead of re-running non-idempotent handlers.
func (e *UDPEndpoint) handleRequest(r udpRequest) {
	if cached, ok := e.respCache.get(r.hdr.Seq); ok {
		e.send(cached, r.from)
		return
	}
	hp := e.handler.Load()
	if hp == nil {
		return
	}
	tk := e.tracec.Load()
	hs := tk.Start("pfcp.handle." + MsgName(r.hdr.MsgType))
	resp, err := (*hp)(r.hdr.SEID, r.msg)
	hs.End()
	if err != nil || resp == nil {
		return
	}
	enc := tk.Start("pfcp.resp.encode")
	wire := Marshal(resp, r.hdr.SEID, r.hdr.HasSEID, r.hdr.Seq)
	enc.End()
	e.respCache.put(r.hdr.Seq, wire)
	tx := tk.Start("pfcp.tx.syscall")
	e.send(wire, r.from)
	tx.End()
}

// Close implements Endpoint: it cancels every in-flight Request waiter
// (their retransmit timers stop via the done channel) and joins the
// dispatch worker so no queued handler runs after Close returns.
func (e *UDPEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		close(e.done)
		err := e.conn.Close()
		e.reqs.join()
		return err
	}
	return nil
}

func isResponse(t uint8) bool {
	switch t {
	case MsgHeartbeatResponse, MsgAssociationSetupResponse,
		MsgSessionSetAuditResp,
		MsgSessionEstablishmentResp, MsgSessionModificationResp,
		MsgSessionDeletionResp, MsgSessionReportResp:
		return true
	}
	return false
}

// --- shared-memory endpoint (L²5GC path) ---

// memFrame is the descriptor passed through the mailbox: the message struct
// travels by pointer, never serialized.
type memFrame struct {
	seid   uint64
	seq    uint32
	isResp bool
	msg    Message
}

// MemEndpoint speaks PFCP over an in-process shared-memory mailbox pair.
type MemEndpoint struct {
	out     *shm.Mailbox[memFrame]
	in      *shm.Mailbox[memFrame]
	handler atomic.Pointer[Handler]
	seq     atomic.Uint32
	retry   atomic.Pointer[RetryConfig]
	faultc  atomic.Pointer[injectorConf]
	tracec  atomic.Pointer[trace.Track]

	mu      sync.Mutex
	pending map[uint32]chan Message

	respCache *respCache[memFrame]
	reqs      *reqQueue[memFrame]

	retransmits atomic.Uint64
	timeouts    atomic.Uint64

	closeOnce sync.Once
	done      chan struct{}
}

// NewMemPair creates two connected shared-memory endpoints (SMF side, UPF
// side). ringSize bounds in-flight descriptors per direction.
func NewMemPair(ringSize int) (*MemEndpoint, *MemEndpoint) {
	ab := shm.NewMailbox[memFrame](ringSize)
	ba := shm.NewMailbox[memFrame](ringSize)
	a := &MemEndpoint{out: ab, in: ba, pending: make(map[uint32]chan Message),
		respCache: newRespCache[memFrame](), done: make(chan struct{})}
	b := &MemEndpoint{out: ba, in: ab, pending: make(map[uint32]chan Message),
		respCache: newRespCache[memFrame](), done: make(chan struct{})}
	a.reqs = newReqQueue(a.done, a.handleRequest)
	b.reqs = newReqQueue(b.done, b.handleRequest)
	go a.recvLoop()
	go b.recvLoop()
	return a, b
}

// SetHandler implements Endpoint.
func (e *MemEndpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// SetRetry implements Endpoint.
func (e *MemEndpoint) SetRetry(cfg RetryConfig) {
	cfg = cfg.norm()
	e.retry.Store(&cfg)
}

// SetInjector implements Endpoint. Corruption does not apply to this
// transport (descriptors carry struct pointers, not wire bytes);
// drop/delay/duplicate/reorder do.
func (e *MemEndpoint) SetInjector(inj *faults.Injector, prefix string) {
	e.faultc.Store(&injectorConf{
		inj: inj,
		tx:  faults.Point(prefix + ".tx"),
		rx:  faults.Point(prefix + ".rx"),
	})
}

// SetTracer implements Endpoint. The shm transport emits no
// encode/syscall/decode spans — descriptors cross by pointer — so traced
// breakdowns show those stages only on the kernel path.
func (e *MemEndpoint) SetTracer(tk *trace.Track) { e.tracec.Store(tk) }

// ExportMetrics implements Endpoint.
func (e *MemEndpoint) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".retransmits", e.retransmits.Load)
	reg.RegisterGauge(prefix+".timeouts", e.timeouts.Load)
}

func (e *MemEndpoint) retryConfig() RetryConfig {
	if c := e.retry.Load(); c != nil {
		return *c
	}
	return DefaultRetry()
}

// Stats reports request retransmissions and per-attempt timeouts.
func (e *MemEndpoint) Stats() (retransmits, timeouts uint64) {
	return e.retransmits.Load(), e.timeouts.Load()
}

// PendingRequests reports in-flight request waiters (diagnostics).
func (e *MemEndpoint) PendingRequests() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// send pushes one frame through the injector into the outgoing mailbox.
func (e *MemEndpoint) send(f memFrame) error {
	fc := e.faultc.Load()
	if fc == nil {
		return e.out.Send(f)
	}
	var serr error
	fc.inj.TransmitMsg(fc.tx, func() {
		if err := e.out.Send(f); err != nil {
			serr = err
		}
	})
	return serr
}

// Request implements Endpoint with the same T1/N1 retransmission loop as
// the UDP transport; the pending entry is removed on every exit path.
func (e *MemEndpoint) Request(seid uint64, hasSEID bool, req Message) (Message, error) {
	seq := e.seq.Add(1)
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[seq] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	frame := memFrame{seid: seid, seq: seq, msg: req}
	root := e.tracec.Load().Start("pfcp.request." + MsgName(req.PFCPType()))
	defer root.End()
	cfg := e.retryConfig()
	t1 := cfg.T1
	timer := time.NewTimer(t1)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retransmits.Add(1)
			root.Event("pfcp.retransmit")
		}
		tx := root.Child("pfcp.tx.shm")
		err := e.send(frame)
		tx.End()
		if err != nil {
			return nil, err
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(t1)
		wait := root.Child("pfcp.wait")
		select {
		case resp := <-ch:
			wait.End()
			return resp, nil
		case <-timer.C:
			wait.End()
			e.timeouts.Add(1)
			if attempt >= cfg.N1 {
				return nil, fmt.Errorf("pfcp: shm request %d timed out after %d attempts",
					req.PFCPType(), attempt+1)
			}
			t1 = cfg.next(t1)
		case <-e.done:
			wait.End()
			return nil, net.ErrClosed
		}
	}
}

func (e *MemEndpoint) recvLoop() {
	for {
		f, ok := e.in.Recv()
		if !ok {
			return
		}
		fc := e.faultc.Load()
		if fc == nil {
			e.handleFrame(f)
			continue
		}
		frame := f
		fc.inj.TransmitMsg(fc.rx, func() { e.handleFrame(frame) })
	}
}

// handleFrame dispatches one received descriptor: responses complete
// pending requests inline — the receive loop must never wait on a
// handler — while requests go to the serial dispatch worker.
func (e *MemEndpoint) handleFrame(f memFrame) {
	if f.isResp {
		e.mu.Lock()
		ch := e.pending[f.seq]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- f.msg:
			default: // duplicate response
			}
		}
		return
	}
	e.reqs.push(f)
}

// handleRequest runs one inbound request on the dispatch worker,
// deduplicating retransmissions through the response cache.
func (e *MemEndpoint) handleRequest(f memFrame) {
	if cached, ok := e.respCache.get(f.seq); ok {
		e.send(cached)
		return
	}
	hp := e.handler.Load()
	if hp == nil {
		return
	}
	hs := e.tracec.Load().Start("pfcp.handle." + MsgName(f.msg.PFCPType()))
	resp, err := (*hp)(f.seid, f.msg)
	hs.End()
	if err != nil || resp == nil {
		return
	}
	rf := memFrame{seid: f.seid, seq: f.seq, isResp: true, msg: resp}
	e.respCache.put(f.seq, rf)
	e.send(rf)
}

// Close implements Endpoint: waiters abort via done, the inbound mailbox
// unblocks the receive loop, and the dispatch worker is joined so no
// queued handler outlives the endpoint.
func (e *MemEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.in.Close()
		e.reqs.join()
	})
	return nil
}
