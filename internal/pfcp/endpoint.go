package pfcp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/faults"
	"l25gc/internal/metrics"
	"l25gc/internal/shm"
	"l25gc/internal/trace"
)

// Handler processes an incoming PFCP request and returns the response.
type Handler func(seid uint64, req Message) (Message, error)

// Endpoint is one side of an N4 association. The two implementations give
// the paper's comparison: UDPEndpoint serializes to TLV and crosses the
// kernel (free5GC), MemEndpoint passes message structs through a
// shared-memory mailbox (L²5GC).
type Endpoint interface {
	// Request sends req and blocks until the matching response arrives,
	// retransmitting per the endpoint's RetryConfig (T1/N1) until the
	// retry budget is exhausted.
	Request(seid uint64, hasSEID bool, req Message) (Message, error)
	// SetHandler installs the request handler (must be set before traffic).
	SetHandler(h Handler)
	// SetRetry installs the request retransmission profile.
	SetRetry(cfg RetryConfig)
	// SetInjector threads a fault injector through the endpoint; points
	// are named prefix+".tx" and prefix+".rx".
	SetInjector(inj *faults.Injector, prefix string)
	// SetTracer installs a trace track; nil disables tracing. The UDP
	// transport emits encode/syscall/decode stage spans the shm transport
	// does not have — that asymmetry is the paper's N4 argument.
	SetTracer(tk *trace.Track)
	// ExportMetrics registers the endpoint's counters (".retransmits",
	// ".timeouts") under prefix.
	ExportMetrics(reg *metrics.Registry, prefix string)
	// Close releases the endpoint.
	Close() error
}

// DefaultTimeout is the default initial response timer (3GPP N4 T1).
const DefaultTimeout = 3 * time.Second

// injectorConf groups an installed fault injector with its point names so
// endpoints can swap it in atomically while their read loops run.
type injectorConf struct {
	inj *faults.Injector
	tx  faults.Point
	rx  faults.Point
}

// --- UDP endpoint (kernel path / free5GC baseline) ---

// UDPEndpoint speaks PFCP over a kernel UDP socket.
type UDPEndpoint struct {
	conn    *net.UDPConn
	peer    atomic.Pointer[net.UDPAddr]
	handler atomic.Pointer[Handler]
	seq     atomic.Uint32
	retry   atomic.Pointer[RetryConfig]
	faultc  atomic.Pointer[injectorConf]
	tracec  atomic.Pointer[trace.Track]

	mu      sync.Mutex
	pending map[uint32]chan Message

	respCache *respCache[[]byte]

	retransmits atomic.Uint64
	timeouts    atomic.Uint64

	closed atomic.Bool
	done   chan struct{}
}

// NewUDPEndpoint listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewUDPEndpoint(addr string) (*UDPEndpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	e := &UDPEndpoint{
		conn:      conn,
		pending:   make(map[uint32]chan Message),
		respCache: newRespCache[[]byte](),
		done:      make(chan struct{}),
	}
	go e.readLoop()
	return e, nil
}

// Addr returns the endpoint's bound address.
func (e *UDPEndpoint) Addr() string { return e.conn.LocalAddr().String() }

// Connect sets the peer address for outgoing requests.
func (e *UDPEndpoint) Connect(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	e.peer.Store(ua)
	return nil
}

// SetHandler implements Endpoint.
func (e *UDPEndpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// SetRetry implements Endpoint.
func (e *UDPEndpoint) SetRetry(cfg RetryConfig) {
	cfg = cfg.norm()
	e.retry.Store(&cfg)
}

// SetInjector implements Endpoint.
func (e *UDPEndpoint) SetInjector(inj *faults.Injector, prefix string) {
	e.faultc.Store(&injectorConf{
		inj: inj,
		tx:  faults.Point(prefix + ".tx"),
		rx:  faults.Point(prefix + ".rx"),
	})
}

// SetTracer implements Endpoint.
func (e *UDPEndpoint) SetTracer(tk *trace.Track) { e.tracec.Store(tk) }

// ExportMetrics implements Endpoint.
func (e *UDPEndpoint) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".retransmits", e.retransmits.Load)
	reg.RegisterGauge(prefix+".timeouts", e.timeouts.Load)
}

// retryConfig returns the installed profile or the defaults.
func (e *UDPEndpoint) retryConfig() RetryConfig {
	if c := e.retry.Load(); c != nil {
		return *c
	}
	return DefaultRetry()
}

// Stats reports request retransmissions and per-attempt timeouts.
func (e *UDPEndpoint) Stats() (retransmits, timeouts uint64) {
	return e.retransmits.Load(), e.timeouts.Load()
}

// PendingRequests reports the number of in-flight request waiters
// (diagnostics; abandoned requests must not linger here).
func (e *UDPEndpoint) PendingRequests() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// send transmits wire to the peer through the injector, if any. The
// injector receives a private copy so an injected corruption cannot taint
// later retransmissions of the same request.
func (e *UDPEndpoint) send(wire []byte, to *net.UDPAddr) error {
	fc := e.faultc.Load()
	if fc == nil {
		_, err := e.conn.WriteToUDP(wire, to)
		return err
	}
	var werr error
	fc.inj.Transmit(fc.tx, append([]byte(nil), wire...), func(b []byte) {
		if _, err := e.conn.WriteToUDP(b, to); err != nil {
			werr = err
		}
	})
	return werr
}

// Request implements Endpoint: it transmits the request and waits T1 for
// the response, retransmitting with the same sequence number up to N1
// times with backoff. The pending-map entry is removed on every exit path
// so abandoned sequence numbers do not leak channels.
func (e *UDPEndpoint) Request(seid uint64, hasSEID bool, req Message) (Message, error) {
	peer := e.peer.Load()
	if peer == nil {
		return nil, fmt.Errorf("pfcp: no peer configured")
	}
	seq := e.seq.Add(1) & 0xffffff
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[seq] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	root := e.tracec.Load().Start("pfcp.request." + MsgName(req.PFCPType()))
	defer root.End()
	enc := root.Child("pfcp.encode")
	wire := Marshal(req, seid, hasSEID, seq)
	enc.End()
	cfg := e.retryConfig()
	t1 := cfg.T1
	timer := time.NewTimer(t1)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retransmits.Add(1)
			root.Event("pfcp.retransmit")
		}
		tx := root.Child("pfcp.tx.syscall")
		err := e.send(wire, peer)
		tx.End()
		if err != nil {
			return nil, err
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(t1)
		wait := root.Child("pfcp.wait")
		select {
		case resp := <-ch:
			wait.End()
			return resp, nil
		case <-timer.C:
			wait.End()
			e.timeouts.Add(1)
			if attempt >= cfg.N1 {
				return nil, fmt.Errorf("pfcp: request %d timed out after %d attempts",
					req.PFCPType(), attempt+1)
			}
			t1 = cfg.next(t1)
		case <-e.done:
			wait.End()
			return nil, net.ErrClosed
		}
	}
}

func (e *UDPEndpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		fc := e.faultc.Load()
		if fc == nil {
			e.handleDatagram(buf[:n], from)
			continue
		}
		// The injector may defer processing (delay/reorder), so it gets a
		// private copy of the datagram; handleDatagram is safe to run from
		// injector timer goroutines.
		fc.inj.Transmit(fc.rx, append([]byte(nil), buf[:n]...), func(b []byte) {
			e.handleDatagram(b, from)
		})
	}
}

// handleDatagram dispatches one received PFCP message: responses complete
// pending requests; requests run the handler, with retransmissions (same
// sequence number) answered from the response cache instead of re-running
// non-idempotent handlers.
func (e *UDPEndpoint) handleDatagram(data []byte, from *net.UDPAddr) {
	tk := e.tracec.Load()
	dec := tk.Start("pfcp.rx.decode")
	hdr, msg, err := Parse(data)
	dec.End()
	if err != nil {
		return
	}
	if isResponse(hdr.MsgType) {
		e.mu.Lock()
		ch := e.pending[hdr.Seq]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- msg:
			default: // duplicate response for an already-answered request
			}
		}
		return
	}
	if cached, ok := e.respCache.get(hdr.Seq); ok {
		e.send(cached, from)
		return
	}
	hp := e.handler.Load()
	if hp == nil {
		return
	}
	hs := tk.Start("pfcp.handle." + MsgName(hdr.MsgType))
	resp, err := (*hp)(hdr.SEID, msg)
	hs.End()
	if err != nil || resp == nil {
		return
	}
	enc := tk.Start("pfcp.resp.encode")
	wire := Marshal(resp, hdr.SEID, hdr.HasSEID, hdr.Seq)
	enc.End()
	e.respCache.put(hdr.Seq, wire)
	tx := tk.Start("pfcp.tx.syscall")
	e.send(wire, from)
	tx.End()
}

// Close implements Endpoint.
func (e *UDPEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		close(e.done)
		return e.conn.Close()
	}
	return nil
}

func isResponse(t uint8) bool {
	switch t {
	case MsgHeartbeatResponse, MsgAssociationSetupResponse,
		MsgSessionEstablishmentResp, MsgSessionModificationResp,
		MsgSessionDeletionResp, MsgSessionReportResp:
		return true
	}
	return false
}

// --- shared-memory endpoint (L²5GC path) ---

// memFrame is the descriptor passed through the mailbox: the message struct
// travels by pointer, never serialized.
type memFrame struct {
	seid   uint64
	seq    uint32
	isResp bool
	msg    Message
}

// MemEndpoint speaks PFCP over an in-process shared-memory mailbox pair.
type MemEndpoint struct {
	out     *shm.Mailbox[memFrame]
	in      *shm.Mailbox[memFrame]
	handler atomic.Pointer[Handler]
	seq     atomic.Uint32
	retry   atomic.Pointer[RetryConfig]
	faultc  atomic.Pointer[injectorConf]
	tracec  atomic.Pointer[trace.Track]

	mu      sync.Mutex
	pending map[uint32]chan Message

	respCache *respCache[memFrame]

	retransmits atomic.Uint64
	timeouts    atomic.Uint64

	closeOnce sync.Once
	done      chan struct{}
}

// NewMemPair creates two connected shared-memory endpoints (SMF side, UPF
// side). ringSize bounds in-flight descriptors per direction.
func NewMemPair(ringSize int) (*MemEndpoint, *MemEndpoint) {
	ab := shm.NewMailbox[memFrame](ringSize)
	ba := shm.NewMailbox[memFrame](ringSize)
	a := &MemEndpoint{out: ab, in: ba, pending: make(map[uint32]chan Message),
		respCache: newRespCache[memFrame](), done: make(chan struct{})}
	b := &MemEndpoint{out: ba, in: ab, pending: make(map[uint32]chan Message),
		respCache: newRespCache[memFrame](), done: make(chan struct{})}
	go a.recvLoop()
	go b.recvLoop()
	return a, b
}

// SetHandler implements Endpoint.
func (e *MemEndpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// SetRetry implements Endpoint.
func (e *MemEndpoint) SetRetry(cfg RetryConfig) {
	cfg = cfg.norm()
	e.retry.Store(&cfg)
}

// SetInjector implements Endpoint. Corruption does not apply to this
// transport (descriptors carry struct pointers, not wire bytes);
// drop/delay/duplicate/reorder do.
func (e *MemEndpoint) SetInjector(inj *faults.Injector, prefix string) {
	e.faultc.Store(&injectorConf{
		inj: inj,
		tx:  faults.Point(prefix + ".tx"),
		rx:  faults.Point(prefix + ".rx"),
	})
}

// SetTracer implements Endpoint. The shm transport emits no
// encode/syscall/decode spans — descriptors cross by pointer — so traced
// breakdowns show those stages only on the kernel path.
func (e *MemEndpoint) SetTracer(tk *trace.Track) { e.tracec.Store(tk) }

// ExportMetrics implements Endpoint.
func (e *MemEndpoint) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".retransmits", e.retransmits.Load)
	reg.RegisterGauge(prefix+".timeouts", e.timeouts.Load)
}

func (e *MemEndpoint) retryConfig() RetryConfig {
	if c := e.retry.Load(); c != nil {
		return *c
	}
	return DefaultRetry()
}

// Stats reports request retransmissions and per-attempt timeouts.
func (e *MemEndpoint) Stats() (retransmits, timeouts uint64) {
	return e.retransmits.Load(), e.timeouts.Load()
}

// PendingRequests reports in-flight request waiters (diagnostics).
func (e *MemEndpoint) PendingRequests() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// send pushes one frame through the injector into the outgoing mailbox.
func (e *MemEndpoint) send(f memFrame) error {
	fc := e.faultc.Load()
	if fc == nil {
		return e.out.Send(f)
	}
	var serr error
	fc.inj.TransmitMsg(fc.tx, func() {
		if err := e.out.Send(f); err != nil {
			serr = err
		}
	})
	return serr
}

// Request implements Endpoint with the same T1/N1 retransmission loop as
// the UDP transport; the pending entry is removed on every exit path.
func (e *MemEndpoint) Request(seid uint64, hasSEID bool, req Message) (Message, error) {
	seq := e.seq.Add(1)
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[seq] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	frame := memFrame{seid: seid, seq: seq, msg: req}
	root := e.tracec.Load().Start("pfcp.request." + MsgName(req.PFCPType()))
	defer root.End()
	cfg := e.retryConfig()
	t1 := cfg.T1
	timer := time.NewTimer(t1)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retransmits.Add(1)
			root.Event("pfcp.retransmit")
		}
		tx := root.Child("pfcp.tx.shm")
		err := e.send(frame)
		tx.End()
		if err != nil {
			return nil, err
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(t1)
		wait := root.Child("pfcp.wait")
		select {
		case resp := <-ch:
			wait.End()
			return resp, nil
		case <-timer.C:
			wait.End()
			e.timeouts.Add(1)
			if attempt >= cfg.N1 {
				return nil, fmt.Errorf("pfcp: shm request %d timed out after %d attempts",
					req.PFCPType(), attempt+1)
			}
			t1 = cfg.next(t1)
		case <-e.done:
			wait.End()
			return nil, net.ErrClosed
		}
	}
}

func (e *MemEndpoint) recvLoop() {
	for {
		f, ok := e.in.Recv()
		if !ok {
			return
		}
		fc := e.faultc.Load()
		if fc == nil {
			e.handleFrame(f)
			continue
		}
		frame := f
		fc.inj.TransmitMsg(fc.rx, func() { e.handleFrame(frame) })
	}
}

// handleFrame dispatches one received descriptor, deduplicating
// retransmitted requests through the response cache.
func (e *MemEndpoint) handleFrame(f memFrame) {
	if f.isResp {
		e.mu.Lock()
		ch := e.pending[f.seq]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- f.msg:
			default: // duplicate response
			}
		}
		return
	}
	if cached, ok := e.respCache.get(f.seq); ok {
		e.send(cached)
		return
	}
	hp := e.handler.Load()
	if hp == nil {
		return
	}
	hs := e.tracec.Load().Start("pfcp.handle." + MsgName(f.msg.PFCPType()))
	resp, err := (*hp)(f.seid, f.msg)
	hs.End()
	if err != nil || resp == nil {
		return
	}
	rf := memFrame{seid: f.seid, seq: f.seq, isResp: true, msg: resp}
	e.respCache.put(f.seq, rf)
	e.send(rf)
}

// Close implements Endpoint.
func (e *MemEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.in.Close()
	})
	return nil
}
