package pfcp

import (
	"reflect"
	"testing"
	"testing/quick"

	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

func samplePDR() *rules.PDR {
	return &rules.PDR{
		ID: 1, Precedence: 32,
		PDI: rules.PDI{
			SourceInterface: rules.IfAccess,
			TEID:            0x1001, TEIDAddr: pkt.AddrFrom(10, 100, 0, 1), HasTEID: true,
			UEIP: pkt.AddrFrom(10, 60, 0, 1), HasUEIP: true,
			NetworkInstance: "internet", ApplicationID: "web",
			QFI: 9, HasQFI: true,
			SDF: rules.SDFFilter{
				ID:       7,
				Src:      rules.Prefix{Addr: pkt.AddrFrom(10, 60, 0, 0), Bits: 16},
				Dst:      rules.Prefix{Addr: pkt.AddrFrom(0, 0, 0, 0), Bits: 0},
				SrcPorts: rules.AnyPort, DstPorts: rules.PortRange{Lo: 80, Hi: 443},
				Protocol: pkt.ProtoTCP, TOS: 0xb8, TOSMask: 0xfc, SPI: 99,
				FlowDesc: "permit out ip from any to assigned",
			},
			HasSDF: true,
		},
		OuterHeaderRemoval: true,
		FARID:              1, QERID: 2, BARID: 3,
	}
}

func sampleFAR() *rules.FAR {
	return &rules.FAR{
		ID: 1, Action: rules.FARForward,
		DestInterface: rules.IfCore,
		OuterTEID:     0x2002, OuterAddr: pkt.AddrFrom(10, 100, 0, 2),
		HasOuterHeader: true,
	}
}

func roundTrip(t *testing.T, m Message, seid uint64, hasSEID bool) Message {
	t.Helper()
	wire := Marshal(m, seid, hasSEID, 42)
	hdr, got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse(%T): %v", m, err)
	}
	if hdr.MsgType != m.PFCPType() {
		t.Fatalf("MsgType = %d, want %d", hdr.MsgType, m.PFCPType())
	}
	if hdr.Seq != 42 {
		t.Fatalf("Seq = %d, want 42", hdr.Seq)
	}
	if hasSEID && (!hdr.HasSEID || hdr.SEID != seid) {
		t.Fatalf("SEID = %v/%d, want %d", hdr.HasSEID, hdr.SEID, seid)
	}
	return got
}

func TestHeartbeatRoundTrip(t *testing.T) {
	got := roundTrip(t, &HeartbeatRequest{RecoveryTimestamp: 12345}, 0, false)
	if got.(*HeartbeatRequest).RecoveryTimestamp != 12345 {
		t.Fatalf("got %+v", got)
	}
	got = roundTrip(t, &HeartbeatResponse{RecoveryTimestamp: 9}, 0, false)
	if got.(*HeartbeatResponse).RecoveryTimestamp != 9 {
		t.Fatalf("got %+v", got)
	}
}

func TestAssociationRoundTrip(t *testing.T) {
	got := roundTrip(t, &AssociationSetupRequest{NodeID: "smf.l25gc"}, 0, false)
	if got.(*AssociationSetupRequest).NodeID != "smf.l25gc" {
		t.Fatalf("got %+v", got)
	}
	got = roundTrip(t, &AssociationSetupResponse{NodeID: "upf", Cause: CauseAccepted}, 0, false)
	r := got.(*AssociationSetupResponse)
	if r.NodeID != "upf" || r.Cause != CauseAccepted {
		t.Fatalf("got %+v", r)
	}
}

func TestSessionEstablishmentRoundTrip(t *testing.T) {
	req := &SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 0xfeed, UEIP: pkt.AddrFrom(10, 60, 0, 1),
		CreatePDRs: []*rules.PDR{samplePDR()},
		CreateFARs: []*rules.FAR{sampleFAR()},
		CreateQERs: []*rules.QER{{ID: 2, QFI: 9, ULMbrKbps: 100000, DLMbrKbps: 300000, GateUL: true, GateDL: true}},
		CreateBARs: []*rules.BAR{{ID: 3, SuggestedPkts: 3000}},
	}
	got := roundTrip(t, req, 0, true).(*SessionEstablishmentRequest)
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
	// Deep-check the nested SDF survived.
	if got.CreatePDRs[0].PDI.SDF.FlowDesc != "permit out ip from any to assigned" {
		t.Fatal("SDF flow description lost")
	}
}

func TestSessionEstablishmentResponseRoundTrip(t *testing.T) {
	resp := &SessionEstablishmentResponse{
		Cause: CauseAccepted, UPSEID: 77,
		CreatedPDRs: []CreatedPDR{{PDRID: 1, TEID: 0x1001, Addr: pkt.AddrFrom(10, 100, 0, 1)}},
	}
	got := roundTrip(t, resp, 77, true).(*SessionEstablishmentResponse)
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("got %+v", got)
	}
}

func TestSessionModificationRoundTrip(t *testing.T) {
	req := &SessionModificationRequest{
		UpdateFARs: []*rules.FAR{{ID: 1, Action: rules.FARBuffer | rules.FARNotifyCP, DestInterface: rules.IfAccess}},
		UpdatePDRs: []*rules.PDR{samplePDR()},
		CreateFARs: []*rules.FAR{sampleFAR()},
		RemovePDRs: []uint32{4},
		RemoveFARs: []uint32{5, 6},
	}
	got := roundTrip(t, req, 1, true).(*SessionModificationRequest)
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("got %+v want %+v", got, req)
	}
}

func TestSessionReportRoundTrip(t *testing.T) {
	req := &SessionReportRequest{ReportType: ReportDLDR, PDRID: 2}
	got := roundTrip(t, req, 9, true).(*SessionReportRequest)
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("got %+v", got)
	}
	resp := roundTrip(t, &SessionReportResponse{Cause: CauseAccepted}, 9, true).(*SessionReportResponse)
	if resp.Cause != CauseAccepted {
		t.Fatalf("got %+v", resp)
	}
}

func TestSessionDeletionRoundTrip(t *testing.T) {
	roundTrip(t, &SessionDeletionRequest{}, 3, true)
	got := roundTrip(t, &SessionDeletionResponse{Cause: CauseSessionNotFound}, 3, true).(*SessionDeletionResponse)
	if got.Cause != CauseSessionNotFound {
		t.Fatalf("got %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse([]byte{1, 2}); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := Marshal(&HeartbeatRequest{}, 0, false, 1)
	b[0] = 2 << 5
	if _, _, err := Parse(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	b[0] = 1 << 5
	b[1] = 200 // unknown type
	if _, _, err := Parse(b); err != ErrUnknownMsg {
		t.Fatalf("unknown: %v", err)
	}
}

// Property: SDF filter encode/decode is the identity.
func TestSDFRoundTripProperty(t *testing.T) {
	f := func(id uint32, srcA, dstA uint32, srcBits, dstBits uint8,
		p1, p2, p3, p4 uint16, proto, tos, tosMask uint8, spi uint32, desc string) bool {
		in := rules.SDFFilter{
			ID:       id,
			Src:      rules.Prefix{Addr: pkt.AddrFromUint32(srcA), Bits: srcBits % 33},
			Dst:      rules.Prefix{Addr: pkt.AddrFromUint32(dstA), Bits: dstBits % 33},
			SrcPorts: rules.PortRange{Lo: min16(p1, p2), Hi: max16(p1, p2)},
			DstPorts: rules.PortRange{Lo: min16(p3, p4), Hi: max16(p3, p4)},
			Protocol: proto, TOS: tos, TOSMask: tosMask, SPI: spi,
			FlowDesc: desc,
		}
		out, err := decodeSDF(encodeSDF(&in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}

// --- transports ---

func echoHandler(t *testing.T) Handler {
	return func(seid uint64, req Message) (Message, error) {
		switch m := req.(type) {
		case *HeartbeatRequest:
			return &HeartbeatResponse{RecoveryTimestamp: m.RecoveryTimestamp}, nil
		case *SessionEstablishmentRequest:
			return &SessionEstablishmentResponse{
				Cause: CauseAccepted, UPSEID: seid + 1,
				CreatedPDRs: []CreatedPDR{{PDRID: m.CreatePDRs[0].ID, TEID: 0xaa, Addr: pkt.AddrFrom(1, 2, 3, 4)}},
			}, nil
		case *SessionModificationRequest:
			return &SessionModificationResponse{Cause: CauseAccepted}, nil
		}
		return nil, nil
	}
}

func TestUDPEndpointRequestResponse(t *testing.T) {
	upf, err := NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upf.Close()
	upf.SetHandler(echoHandler(t))

	smf, err := NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer smf.Close()
	if err := smf.Connect(upf.Addr()); err != nil {
		t.Fatal(err)
	}

	resp, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*HeartbeatResponse).RecoveryTimestamp != 5 {
		t.Fatalf("got %+v", resp)
	}

	est := &SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 10, UEIP: pkt.AddrFrom(10, 60, 0, 1),
		CreatePDRs: []*rules.PDR{samplePDR()},
		CreateFARs: []*rules.FAR{sampleFAR()},
	}
	resp, err = smf.Request(10, true, est)
	if err != nil {
		t.Fatal(err)
	}
	er := resp.(*SessionEstablishmentResponse)
	if er.Cause != CauseAccepted || er.UPSEID != 11 || er.CreatedPDRs[0].TEID != 0xaa {
		t.Fatalf("got %+v", er)
	}
}

func TestMemEndpointRequestResponse(t *testing.T) {
	smf, upf := NewMemPair(64)
	defer smf.Close()
	defer upf.Close()
	upf.SetHandler(echoHandler(t))

	resp, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*HeartbeatResponse).RecoveryTimestamp != 3 {
		t.Fatalf("got %+v", resp)
	}
	// Bidirectional: the UPF side can also originate requests (session
	// report, the paging trigger).
	smf.SetHandler(func(seid uint64, req Message) (Message, error) {
		if _, ok := req.(*SessionReportRequest); ok {
			return &SessionReportResponse{Cause: CauseAccepted}, nil
		}
		return nil, nil
	})
	resp, err = upf.Request(9, true, &SessionReportRequest{ReportType: ReportDLDR, PDRID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*SessionReportResponse).Cause != CauseAccepted {
		t.Fatalf("got %+v", resp)
	}
}

func TestMemEndpointConcurrentRequests(t *testing.T) {
	smf, upf := NewMemPair(256)
	defer smf.Close()
	defer upf.Close()
	upf.SetHandler(echoHandler(t))
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i uint32) {
			resp, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: i})
			if err != nil {
				errs <- err
				return
			}
			if resp.(*HeartbeatResponse).RecoveryTimestamp != i {
				errs <- errMismatch
				return
			}
			errs <- nil
		}(uint32(i))
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "response/request mismatch" }

func BenchmarkMarshalSessionEstablishment(b *testing.B) {
	req := &SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 1, UEIP: pkt.AddrFrom(10, 60, 0, 1),
		CreatePDRs: []*rules.PDR{samplePDR()},
		CreateFARs: []*rules.FAR{sampleFAR()},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(req, 1, true, uint32(i))
	}
}

func BenchmarkParseSessionEstablishment(b *testing.B) {
	req := &SessionEstablishmentRequest{
		NodeID: "smf", CPSEID: 1, UEIP: pkt.AddrFrom(10, 60, 0, 1),
		CreatePDRs: []*rules.PDR{samplePDR()},
		CreateFARs: []*rules.FAR{sampleFAR()},
	}
	wire := Marshal(req, 1, true, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
