package pfcp

import (
	"encoding/binary"

	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

// Message type numbers (TS 29.244 §7.3).
const (
	MsgHeartbeatRequest         uint8 = 1
	MsgHeartbeatResponse        uint8 = 2
	MsgAssociationSetupRequest  uint8 = 5
	MsgAssociationSetupResponse uint8 = 6
	// Session-set audit occupies the 16/17 node-message codepoints
	// (TS 29.244 reserves this range for session-set procedures). It is
	// the reconciliation primitive after a healed N4 partition: the CP
	// asks the UP which CP-SEIDs it holds and diffs against its own table.
	MsgSessionSetAuditReq       uint8 = 16
	MsgSessionSetAuditResp      uint8 = 17
	MsgSessionEstablishmentReq  uint8 = 50
	MsgSessionEstablishmentResp uint8 = 51
	MsgSessionModificationReq   uint8 = 52
	MsgSessionModificationResp  uint8 = 53
	MsgSessionDeletionReq       uint8 = 54
	MsgSessionDeletionResp      uint8 = 55
	MsgSessionReportReq         uint8 = 56
	MsgSessionReportResp        uint8 = 57
)

// MsgName returns a stable lowercase label for a message type, used in
// trace span names ("pfcp.request.session_establishment").
func MsgName(t uint8) string {
	switch t {
	case MsgHeartbeatRequest:
		return "heartbeat"
	case MsgHeartbeatResponse:
		return "heartbeat_resp"
	case MsgAssociationSetupRequest:
		return "association_setup"
	case MsgAssociationSetupResponse:
		return "association_setup_resp"
	case MsgSessionSetAuditReq:
		return "session_set_audit"
	case MsgSessionSetAuditResp:
		return "session_set_audit_resp"
	case MsgSessionEstablishmentReq:
		return "session_establishment"
	case MsgSessionEstablishmentResp:
		return "session_establishment_resp"
	case MsgSessionModificationReq:
		return "session_modification"
	case MsgSessionModificationResp:
		return "session_modification_resp"
	case MsgSessionDeletionReq:
		return "session_deletion"
	case MsgSessionDeletionResp:
		return "session_deletion_resp"
	case MsgSessionReportReq:
		return "session_report"
	case MsgSessionReportResp:
		return "session_report_resp"
	}
	return "unknown"
}

// Report type flags (TS 29.244 §8.2.21).
const (
	ReportDLDR uint8 = 1 << iota // downlink data report — triggers paging
	ReportUSAR                   // usage report
	ReportERIR                   // error indication
)

// Header is the PFCP message header. SEID is present on session messages.
type Header struct {
	MsgType uint8
	Length  uint16
	SEID    uint64
	HasSEID bool
	Seq     uint32 // 24 bits on the wire
}

const headerBaseLen = 8 // flags, type, length, seq(3), spare

// Message is a PFCP message body. In L²5GC's shared-memory mode, *pointers*
// to these structs are passed between SMF and UPF-C through rings, so the
// encode/decode below is only exercised on the kernel-socket path — exactly
// the asymmetry the paper measures in Fig. 7.
type Message interface {
	PFCPType() uint8
	encodeBody(w *ieWriter)
}

// Marshal serializes hdr+msg to wire format.
func Marshal(m Message, seid uint64, hasSEID bool, seq uint32) []byte {
	var w ieWriter
	m.encodeBody(&w)
	hl := headerBaseLen
	if hasSEID {
		hl += 8
	}
	out := make([]byte, hl+len(w.b))
	flags := uint8(1 << 5) // version 1
	if hasSEID {
		flags |= 1 // S bit
	}
	out[0] = flags
	out[1] = m.PFCPType()
	binary.BigEndian.PutUint16(out[2:4], uint16(hl-4+len(w.b)))
	off := 4
	if hasSEID {
		binary.BigEndian.PutUint64(out[4:12], seid)
		off = 12
	}
	out[off] = uint8(seq >> 16)
	out[off+1] = uint8(seq >> 8)
	out[off+2] = uint8(seq)
	out[off+3] = 0
	copy(out[hl:], w.b)
	return out
}

// Parse decodes a wire-format PFCP message.
func Parse(b []byte) (Header, Message, error) {
	var h Header
	if len(b) < headerBaseLen {
		return h, nil, ErrTruncated
	}
	flags := b[0]
	if flags>>5 != 1 {
		return h, nil, ErrBadVersion
	}
	h.HasSEID = flags&1 != 0
	h.MsgType = b[1]
	h.Length = binary.BigEndian.Uint16(b[2:4])
	off := 4
	if h.HasSEID {
		if len(b) < 16 {
			return h, nil, ErrTruncated
		}
		h.SEID = binary.BigEndian.Uint64(b[4:12])
		off = 12
	}
	if len(b) < off+4 {
		return h, nil, ErrTruncated
	}
	h.Seq = uint32(b[off])<<16 | uint32(b[off+1])<<8 | uint32(b[off+2])
	body := b[off+4:]
	if want := int(h.Length) - (off + 4 - 4); want >= 0 && want <= len(body) {
		body = body[:want]
	}
	m, err := parseBody(h.MsgType, body)
	return h, m, err
}

func parseBody(t uint8, body []byte) (Message, error) {
	switch t {
	case MsgHeartbeatRequest:
		return parseHeartbeatRequest(body)
	case MsgHeartbeatResponse:
		return parseHeartbeatResponse(body)
	case MsgAssociationSetupRequest:
		return parseAssociationSetupRequest(body)
	case MsgAssociationSetupResponse:
		return parseAssociationSetupResponse(body)
	case MsgSessionSetAuditReq:
		return parseSessionSetAuditRequest(body)
	case MsgSessionSetAuditResp:
		return parseSessionSetAuditResponse(body)
	case MsgSessionEstablishmentReq:
		return parseSessionEstablishmentRequest(body)
	case MsgSessionEstablishmentResp:
		return parseSessionEstablishmentResponse(body)
	case MsgSessionModificationReq:
		return parseSessionModificationRequest(body)
	case MsgSessionModificationResp:
		return parseSessionModificationResponse(body)
	case MsgSessionDeletionReq:
		return &SessionDeletionRequest{}, nil
	case MsgSessionDeletionResp:
		return parseSessionDeletionResponse(body)
	case MsgSessionReportReq:
		return parseSessionReportRequest(body)
	case MsgSessionReportResp:
		return parseSessionReportResponse(body)
	default:
		return nil, ErrUnknownMsg
	}
}

// --- Heartbeat ---

// HeartbeatRequest checks peer liveness (also used by the failure detector).
type HeartbeatRequest struct {
	RecoveryTimestamp uint32
}

// PFCPType implements Message.
func (*HeartbeatRequest) PFCPType() uint8 { return MsgHeartbeatRequest }

func (m *HeartbeatRequest) encodeBody(w *ieWriter) {
	w.putU32(ieRecoveryTimestamp, m.RecoveryTimestamp)
}

func parseHeartbeatRequest(b []byte) (*HeartbeatRequest, error) {
	m := &HeartbeatRequest{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		if t == ieRecoveryTimestamp {
			if m.RecoveryTimestamp, err = u32(v); err != nil {
				return nil, err
			}
		}
	}
}

// HeartbeatResponse answers a HeartbeatRequest.
type HeartbeatResponse struct {
	RecoveryTimestamp uint32
}

// PFCPType implements Message.
func (*HeartbeatResponse) PFCPType() uint8 { return MsgHeartbeatResponse }

func (m *HeartbeatResponse) encodeBody(w *ieWriter) {
	w.putU32(ieRecoveryTimestamp, m.RecoveryTimestamp)
}

func parseHeartbeatResponse(b []byte) (*HeartbeatResponse, error) {
	q, err := parseHeartbeatRequest(b)
	if err != nil {
		return nil, err
	}
	return &HeartbeatResponse{RecoveryTimestamp: q.RecoveryTimestamp}, nil
}

// --- Association setup ---

// AssociationSetupRequest establishes the SMF↔UPF association. The
// RecoveryTimestamp identifies the sender's incarnation: a peer that
// later presents a newer one has restarted, and every session toward its
// previous incarnation is stale (TS 29.244 §6.2.6).
type AssociationSetupRequest struct {
	NodeID            string
	RecoveryTimestamp uint32
}

// PFCPType implements Message.
func (*AssociationSetupRequest) PFCPType() uint8 { return MsgAssociationSetupRequest }

func (m *AssociationSetupRequest) encodeBody(w *ieWriter) {
	w.putStr(ieNodeID, m.NodeID)
	w.putU32(ieRecoveryTimestamp, m.RecoveryTimestamp)
}

func parseAssociationSetupRequest(b []byte) (*AssociationSetupRequest, error) {
	m := &AssociationSetupRequest{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieNodeID:
			m.NodeID = string(v)
		case ieRecoveryTimestamp:
			if m.RecoveryTimestamp, err = u32(v); err != nil {
				return nil, err
			}
		}
	}
}

// AssociationSetupResponse acknowledges an association, carrying the
// responder's own incarnation stamp.
type AssociationSetupResponse struct {
	NodeID            string
	Cause             uint8
	RecoveryTimestamp uint32
}

// PFCPType implements Message.
func (*AssociationSetupResponse) PFCPType() uint8 { return MsgAssociationSetupResponse }

func (m *AssociationSetupResponse) encodeBody(w *ieWriter) {
	w.putStr(ieNodeID, m.NodeID)
	w.putU8(ieCause, m.Cause)
	w.putU32(ieRecoveryTimestamp, m.RecoveryTimestamp)
}

func parseAssociationSetupResponse(b []byte) (*AssociationSetupResponse, error) {
	m := &AssociationSetupResponse{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieNodeID:
			m.NodeID = string(v)
		case ieCause:
			if m.Cause, err = u8(v); err != nil {
				return nil, err
			}
		case ieRecoveryTimestamp:
			if m.RecoveryTimestamp, err = u32(v); err != nil {
				return nil, err
			}
		}
	}
}

// --- Session-set audit (post-partition reconciliation) ---

// SessionSetAuditRequest asks the peer to enumerate the CP-SEIDs of every
// PFCP session it holds. The reconciler diffs the answer against the
// SMF's own SEID table to find sessions to rebuild and orphans to purge.
type SessionSetAuditRequest struct {
	NodeID string
}

// PFCPType implements Message.
func (*SessionSetAuditRequest) PFCPType() uint8 { return MsgSessionSetAuditReq }

func (m *SessionSetAuditRequest) encodeBody(w *ieWriter) { w.putStr(ieNodeID, m.NodeID) }

func parseSessionSetAuditRequest(b []byte) (*SessionSetAuditRequest, error) {
	m := &SessionSetAuditRequest{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		if t == ieNodeID {
			m.NodeID = string(v)
		}
	}
}

// SessionSetAuditResponse lists the responder's CP-SEIDs in ascending
// order (sorted by the responder, so the audit walk is deterministic).
type SessionSetAuditResponse struct {
	Cause uint8
	SEIDs []uint64
}

// PFCPType implements Message.
func (*SessionSetAuditResponse) PFCPType() uint8 { return MsgSessionSetAuditResp }

func (m *SessionSetAuditResponse) encodeBody(w *ieWriter) {
	w.putU8(ieCause, m.Cause)
	for _, s := range m.SEIDs {
		w.putU64(ieFSEID, s)
	}
}

func parseSessionSetAuditResponse(b []byte) (*SessionSetAuditResponse, error) {
	m := &SessionSetAuditResponse{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieCause:
			if m.Cause, err = u8(v); err != nil {
				return nil, err
			}
		case ieFSEID:
			s, err := u64(v)
			if err != nil {
				return nil, err
			}
			m.SEIDs = append(m.SEIDs, s)
		}
	}
}

// --- Session establishment ---

// SessionEstablishmentRequest provisions a new PFCP session with its
// initial rule set (PDU session establishment, paper §2.1).
type SessionEstablishmentRequest struct {
	NodeID     string
	CPSEID     uint64 // CP F-SEID
	UEIP       pkt.Addr
	CreatePDRs []*rules.PDR
	CreateFARs []*rules.FAR
	CreateQERs []*rules.QER
	CreateBARs []*rules.BAR
}

// PFCPType implements Message.
func (*SessionEstablishmentRequest) PFCPType() uint8 { return MsgSessionEstablishmentReq }

func (m *SessionEstablishmentRequest) encodeBody(w *ieWriter) {
	w.putStr(ieNodeID, m.NodeID)
	w.putU64(ieFSEID, m.CPSEID)
	w.put(ieUEIPAddress, m.UEIP[:])
	for _, p := range m.CreatePDRs {
		encodePDR(w, ieCreatePDR, p)
	}
	for _, f := range m.CreateFARs {
		encodeFAR(w, ieCreateFAR, f)
	}
	for _, q := range m.CreateQERs {
		encodeQER(w, q)
	}
	for _, b := range m.CreateBARs {
		encodeBAR(w, b)
	}
}

func parseSessionEstablishmentRequest(b []byte) (*SessionEstablishmentRequest, error) {
	m := &SessionEstablishmentRequest{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieNodeID:
			m.NodeID = string(v)
		case ieFSEID:
			if m.CPSEID, err = u64(v); err != nil {
				return nil, err
			}
		case ieUEIPAddress:
			if len(v) < 4 {
				return nil, ErrTruncated
			}
			copy(m.UEIP[:], v[:4])
		case ieCreatePDR:
			p, err := decodePDR(v)
			if err != nil {
				return nil, err
			}
			m.CreatePDRs = append(m.CreatePDRs, p)
		case ieCreateFAR:
			f, err := decodeFAR(v)
			if err != nil {
				return nil, err
			}
			m.CreateFARs = append(m.CreateFARs, f)
		case ieCreateQER:
			q, err := decodeQER(v)
			if err != nil {
				return nil, err
			}
			m.CreateQERs = append(m.CreateQERs, q)
		case ieCreateBAR:
			bar, err := decodeBAR(v)
			if err != nil {
				return nil, err
			}
			m.CreateBARs = append(m.CreateBARs, bar)
		}
	}
}

// CreatedPDR reports the UPF-chosen F-TEID for a PDR back to the SMF.
type CreatedPDR struct {
	PDRID uint32
	TEID  uint32
	Addr  pkt.Addr
}

// SessionEstablishmentResponse acknowledges session creation.
type SessionEstablishmentResponse struct {
	Cause       uint8
	UPSEID      uint64
	CreatedPDRs []CreatedPDR
}

// PFCPType implements Message.
func (*SessionEstablishmentResponse) PFCPType() uint8 { return MsgSessionEstablishmentResp }

func (m *SessionEstablishmentResponse) encodeBody(w *ieWriter) {
	w.putU8(ieCause, m.Cause)
	w.putU64(ieFSEID, m.UPSEID)
	for _, c := range m.CreatedPDRs {
		c := c
		w.putGrouped(ieCreatedPDR, func(w *ieWriter) {
			w.putU32(iePDRID, c.PDRID)
			w.put(ieFTEID, fteidValue(c.TEID, c.Addr))
		})
	}
}

func parseSessionEstablishmentResponse(b []byte) (*SessionEstablishmentResponse, error) {
	m := &SessionEstablishmentResponse{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieCause:
			if m.Cause, err = u8(v); err != nil {
				return nil, err
			}
		case ieFSEID:
			if m.UPSEID, err = u64(v); err != nil {
				return nil, err
			}
		case ieCreatedPDR:
			var c CreatedPDR
			cr := ieReader{v}
			for {
				ct, cv, ok, err := cr.next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				switch ct {
				case iePDRID:
					if c.PDRID, err = u32(cv); err != nil {
						return nil, err
					}
				case ieFTEID:
					if c.TEID, c.Addr, err = parseFTEID(cv); err != nil {
						return nil, err
					}
				}
			}
			m.CreatedPDRs = append(m.CreatedPDRs, c)
		}
	}
}

// --- Session modification ---

// SessionModificationRequest updates rules mid-session: handover target
// TEID updates, the smart-buffering FAR flip (paper §3.3), rule add/remove.
type SessionModificationRequest struct {
	CreatePDRs []*rules.PDR
	CreateFARs []*rules.FAR
	UpdatePDRs []*rules.PDR
	UpdateFARs []*rules.FAR
	RemovePDRs []uint32
	RemoveFARs []uint32
}

// PFCPType implements Message.
func (*SessionModificationRequest) PFCPType() uint8 { return MsgSessionModificationReq }

func (m *SessionModificationRequest) encodeBody(w *ieWriter) {
	for _, p := range m.CreatePDRs {
		encodePDR(w, ieCreatePDR, p)
	}
	for _, f := range m.CreateFARs {
		encodeFAR(w, ieCreateFAR, f)
	}
	for _, p := range m.UpdatePDRs {
		encodePDR(w, ieUpdatePDR, p)
	}
	for _, f := range m.UpdateFARs {
		encodeFAR(w, ieUpdateFAR, f)
	}
	for _, id := range m.RemovePDRs {
		w.putU32(ieRemovePDR, id)
	}
	for _, id := range m.RemoveFARs {
		w.putU32(ieRemoveFAR, id)
	}
}

func parseSessionModificationRequest(b []byte) (*SessionModificationRequest, error) {
	m := &SessionModificationRequest{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieCreatePDR, ieUpdatePDR:
			p, err := decodePDR(v)
			if err != nil {
				return nil, err
			}
			if t == ieCreatePDR {
				m.CreatePDRs = append(m.CreatePDRs, p)
			} else {
				m.UpdatePDRs = append(m.UpdatePDRs, p)
			}
		case ieCreateFAR, ieUpdateFAR:
			f, err := decodeFAR(v)
			if err != nil {
				return nil, err
			}
			if t == ieCreateFAR {
				m.CreateFARs = append(m.CreateFARs, f)
			} else {
				m.UpdateFARs = append(m.UpdateFARs, f)
			}
		case ieRemovePDR:
			id, err := u32(v)
			if err != nil {
				return nil, err
			}
			m.RemovePDRs = append(m.RemovePDRs, id)
		case ieRemoveFAR:
			id, err := u32(v)
			if err != nil {
				return nil, err
			}
			m.RemoveFARs = append(m.RemoveFARs, id)
		}
	}
}

// SessionModificationResponse acknowledges a modification.
type SessionModificationResponse struct {
	Cause       uint8
	CreatedPDRs []CreatedPDR
}

// PFCPType implements Message.
func (*SessionModificationResponse) PFCPType() uint8 { return MsgSessionModificationResp }

func (m *SessionModificationResponse) encodeBody(w *ieWriter) {
	w.putU8(ieCause, m.Cause)
	for _, c := range m.CreatedPDRs {
		c := c
		w.putGrouped(ieCreatedPDR, func(w *ieWriter) {
			w.putU32(iePDRID, c.PDRID)
			w.put(ieFTEID, fteidValue(c.TEID, c.Addr))
		})
	}
}

func parseSessionModificationResponse(b []byte) (*SessionModificationResponse, error) {
	er, err := parseSessionEstablishmentResponse(b)
	if err != nil {
		return nil, err
	}
	return &SessionModificationResponse{Cause: er.Cause, CreatedPDRs: er.CreatedPDRs}, nil
}

// --- Session deletion ---

// SessionDeletionRequest tears a session down.
type SessionDeletionRequest struct{}

// PFCPType implements Message.
func (*SessionDeletionRequest) PFCPType() uint8 { return MsgSessionDeletionReq }

func (m *SessionDeletionRequest) encodeBody(*ieWriter) {}

// SessionDeletionResponse acknowledges deletion.
type SessionDeletionResponse struct {
	Cause uint8
}

// PFCPType implements Message.
func (*SessionDeletionResponse) PFCPType() uint8 { return MsgSessionDeletionResp }

func (m *SessionDeletionResponse) encodeBody(w *ieWriter) { w.putU8(ieCause, m.Cause) }

func parseSessionDeletionResponse(b []byte) (*SessionDeletionResponse, error) {
	m := &SessionDeletionResponse{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		if t == ieCause {
			if m.Cause, err = u8(v); err != nil {
				return nil, err
			}
		}
	}
}

// --- Session report (UPF -> SMF; paging trigger) ---

// SessionReportRequest notifies the SMF of a data-plane event. The DL data
// report is the message that initiates paging when a DL packet arrives for
// an idle UE (paper §5.2, Fig. 7).
type SessionReportRequest struct {
	ReportType uint8
	PDRID      uint32 // PDR that matched the DL packet
}

// PFCPType implements Message.
func (*SessionReportRequest) PFCPType() uint8 { return MsgSessionReportReq }

func (m *SessionReportRequest) encodeBody(w *ieWriter) {
	w.putU8(ieReportType, m.ReportType)
	w.putGrouped(ieDLDataReport, func(w *ieWriter) {
		w.putU32(iePDRID, m.PDRID)
	})
}

func parseSessionReportRequest(b []byte) (*SessionReportRequest, error) {
	m := &SessionReportRequest{}
	r := ieReader{b}
	for {
		t, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return m, nil
		}
		switch t {
		case ieReportType:
			if m.ReportType, err = u8(v); err != nil {
				return nil, err
			}
		case ieDLDataReport:
			dr := ieReader{v}
			for {
				dt, dv, ok, err := dr.next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				if dt == iePDRID {
					if m.PDRID, err = u32(dv); err != nil {
						return nil, err
					}
				}
			}
		}
	}
}

// SessionReportResponse acknowledges a report.
type SessionReportResponse struct {
	Cause uint8
}

// PFCPType implements Message.
func (*SessionReportResponse) PFCPType() uint8 { return MsgSessionReportResp }

func (m *SessionReportResponse) encodeBody(w *ieWriter) { w.putU8(ieCause, m.Cause) }

func parseSessionReportResponse(b []byte) (*SessionReportResponse, error) {
	d, err := parseSessionDeletionResponse(b)
	if err != nil {
		return nil, err
	}
	return &SessionReportResponse{Cause: d.Cause}, nil
}
