package pfcp

import (
	"testing"

	"l25gc/internal/pkt"
	"l25gc/internal/rules"
)

// FuzzDecode feeds arbitrary bytes to the wire-format parser. Parse must
// never panic — the UDP N4 path hands it raw datagrams — and any message
// it accepts must survive a re-encode/re-decode round trip (the responder
// re-marshals parsed requests on the retransmit-dedup path).
func FuzzDecode(f *testing.F) {
	seeds := []struct {
		m       Message
		seid    uint64
		hasSEID bool
	}{
		{&HeartbeatRequest{RecoveryTimestamp: 7}, 0, false},
		{&HeartbeatResponse{RecoveryTimestamp: 7}, 0, false},
		{&AssociationSetupRequest{NodeID: "smf.l25gc", RecoveryTimestamp: 3}, 0, false},
		{&AssociationSetupResponse{NodeID: "upf.l25gc", Cause: CauseAccepted, RecoveryTimestamp: 9}, 0, false},
		{&SessionSetAuditRequest{NodeID: "smf.l25gc"}, 0, false},
		{&SessionSetAuditResponse{Cause: CauseAccepted, SEIDs: []uint64{3, 7, 9}}, 0, false},
		{&SessionEstablishmentRequest{
			NodeID: "smf", CPSEID: 5, UEIP: pkt.AddrFrom(10, 60, 0, 1),
			CreatePDRs: []*rules.PDR{{
				ID: 1, Precedence: 32, FARID: 1,
				PDI: rules.PDI{SourceInterface: rules.IfAccess, HasTEID: true},
			}},
			CreateFARs: []*rules.FAR{{ID: 1, Action: rules.FARForward, DestInterface: rules.IfCore}},
		}, 5, true},
		{&SessionModificationRequest{
			UpdateFARs: []*rules.FAR{{ID: 2, Action: rules.FARBuffer, DestInterface: rules.IfAccess}},
		}, 9, true},
		{&SessionDeletionRequest{}, 9, true},
		{&SessionReportRequest{ReportType: ReportDLDR, PDRID: 2}, 9, true},
	}
	for _, s := range seeds {
		f.Add(Marshal(s.m, s.seid, s.hasSEID, 1))
	}
	f.Add([]byte{0x20})                         // version-only byte
	f.Add([]byte{0x21, 0x01, 0x00, 0x00})       // S bit set, truncated SEID
	f.Add([]byte{0x20, 0xff, 0xff, 0xff, 0xff}) // unknown type, absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		h, m, err := Parse(data)
		if err != nil || m == nil {
			return
		}
		rt := Marshal(m, h.SEID, h.HasSEID, h.Seq)
		h2, m2, err := Parse(rt)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v (type %d)", err, h.MsgType)
		}
		if h2.MsgType != h.MsgType || h2.SEID != h.SEID || h2.Seq != h.Seq {
			t.Fatalf("header drifted across round trip: %+v vs %+v", h, h2)
		}
		if m2.PFCPType() != m.PFCPType() {
			t.Fatalf("message type drifted: %d vs %d", m.PFCPType(), m2.PFCPType())
		}
	})
}
