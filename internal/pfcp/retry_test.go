package pfcp

import (
	"sync/atomic"
	"testing"
	"time"

	"l25gc/internal/faults"
)

// countingHandler wraps echoHandler with an invocation counter, to prove
// the dedup cache short-circuits retransmitted requests.
func countingHandler(t *testing.T, n *atomic.Int32) Handler {
	inner := echoHandler(t)
	return func(seid uint64, req Message) (Message, error) {
		n.Add(1)
		return inner(seid, req)
	}
}

// fastRetry is a chaos-friendly profile: short T1, generous N1.
func fastRetry() RetryConfig {
	return RetryConfig{T1: 100 * time.Millisecond, N1: 5, Backoff: 1.5, MaxT1: time.Second}
}

func udpPair(t *testing.T) (smf, upf *UDPEndpoint) {
	t.Helper()
	upf, err := NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { upf.Close() })
	smf, err = NewUDPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { smf.Close() })
	if err := smf.Connect(upf.Addr()); err != nil {
		t.Fatal(err)
	}
	return smf, upf
}

func TestUDPRetransmissionRecoversDroppedRequest(t *testing.T) {
	smf, upf := udpPair(t)
	var calls atomic.Int32
	upf.SetHandler(countingHandler(t, &calls))
	inj := faults.New(1).Add(faults.Rule{Point: "pfcp.smf.tx", Kind: faults.Drop, Count: 1})
	smf.SetInjector(inj, "pfcp.smf")
	smf.SetRetry(fastRetry())

	resp, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 8})
	if err != nil {
		t.Fatalf("request failed despite retry budget: %v", err)
	}
	if resp.(*HeartbeatResponse).RecoveryTimestamp != 8 {
		t.Fatalf("got %+v", resp)
	}
	if rtx, _ := smf.Stats(); rtx != 1 {
		t.Fatalf("retransmits = %d, want 1", rtx)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times", calls.Load())
	}
}

func TestUDPDedupAnswersRetransmitFromCache(t *testing.T) {
	smf, upf := udpPair(t)
	var calls atomic.Int32
	upf.SetHandler(countingHandler(t, &calls))
	// The request arrives, but the first response is lost: the
	// retransmitted request must be served from the cache, not by running
	// the (non-idempotent) handler again.
	inj := faults.New(2).Add(faults.Rule{Point: "pfcp.upf.tx", Kind: faults.Drop, Count: 1})
	upf.SetInjector(inj, "pfcp.upf")
	smf.SetRetry(fastRetry())

	if _, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 4}); err != nil {
		t.Fatalf("request failed: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times; dedup cache not consulted", calls.Load())
	}
	if upf.respCache.len() != 1 {
		t.Fatalf("response cache holds %d entries", upf.respCache.len())
	}
}

func TestUDPRequestTimeoutCleansPending(t *testing.T) {
	smf, _ := udpPair(t)
	inj := faults.New(3)
	inj.Partition("pfcp.smf") // blackhole every outgoing request
	smf.SetInjector(inj, "pfcp.smf")
	smf.SetRetry(RetryConfig{T1: 20 * time.Millisecond, N1: 1, Backoff: 1})

	start := time.Now()
	if _, err := smf.Request(0, false, &HeartbeatRequest{}); err == nil {
		t.Fatal("request should time out under a full partition")
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("timed out after %v; N1 retransmission not attempted", d)
	}
	if n := smf.PendingRequests(); n != 0 {
		t.Fatalf("pending map leaked %d entries after timeout", n)
	}
	if _, timeouts := smf.Stats(); timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2 (initial + 1 retransmission)", timeouts)
	}
}

func TestUDPSurvivesCorruptedWire(t *testing.T) {
	smf, upf := udpPair(t)
	upf.SetHandler(echoHandler(t))
	// Corrupt the first transmission: the peer fails to parse (or
	// misroutes) it and the retransmission, sent clean, must succeed.
	inj := faults.New(5).Add(faults.Rule{Point: "pfcp.smf.tx", Kind: faults.Corrupt, Count: 1})
	smf.SetInjector(inj, "pfcp.smf")
	smf.SetRetry(fastRetry())

	resp, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 6})
	if err != nil {
		t.Fatalf("request failed: %v", err)
	}
	if resp.(*HeartbeatResponse).RecoveryTimestamp != 6 {
		t.Fatalf("got %+v", resp)
	}
}

func TestMemRetransmissionAndDedup(t *testing.T) {
	smf, upf := NewMemPair(64)
	defer smf.Close()
	defer upf.Close()
	var calls atomic.Int32
	upf.SetHandler(countingHandler(t, &calls))
	// Drop the first request frame and the first response frame.
	inj := faults.New(7).
		Add(faults.Rule{Point: "pfcp.mem.smf.tx", Kind: faults.Drop, Count: 1}).
		Add(faults.Rule{Point: "pfcp.mem.upf.tx", Kind: faults.Drop, Count: 1})
	smf.SetInjector(inj, "pfcp.mem.smf")
	upf.SetInjector(inj, "pfcp.mem.upf")
	smf.SetRetry(fastRetry())

	resp, err := smf.Request(0, false, &HeartbeatRequest{RecoveryTimestamp: 2})
	if err != nil {
		t.Fatalf("request failed: %v", err)
	}
	if resp.(*HeartbeatResponse).RecoveryTimestamp != 2 {
		t.Fatalf("got %+v", resp)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times", calls.Load())
	}
	if rtx, _ := smf.Stats(); rtx < 1 {
		t.Fatalf("retransmits = %d", rtx)
	}
	if n := smf.PendingRequests(); n != 0 {
		t.Fatalf("pending map leaked %d entries", n)
	}
}

func TestMemRequestTimeoutCleansPending(t *testing.T) {
	smf, upf := NewMemPair(64)
	defer smf.Close()
	defer upf.Close()
	inj := faults.New(8)
	inj.Partition("pfcp.mem.smf")
	smf.SetInjector(inj, "pfcp.mem.smf")
	smf.SetRetry(RetryConfig{T1: 20 * time.Millisecond, N1: 0, Backoff: 1})
	if _, err := smf.Request(0, false, &HeartbeatRequest{}); err == nil {
		t.Fatal("request should time out")
	}
	if n := smf.PendingRequests(); n != 0 {
		t.Fatalf("pending map leaked %d entries", n)
	}
}

func TestRetryConfigNormAndBackoff(t *testing.T) {
	c := RetryConfig{}.norm()
	if c.T1 != DefaultTimeout || c.Backoff != 1 {
		t.Fatalf("norm() = %+v", c)
	}
	g := RetryConfig{T1: time.Second, Backoff: 2, MaxT1: 3 * time.Second}
	if d := g.next(time.Second); d != 2*time.Second {
		t.Fatalf("next = %v", d)
	}
	if d := g.next(2 * time.Second); d != 3*time.Second {
		t.Fatalf("capped next = %v", d)
	}
}

func TestRespCacheEviction(t *testing.T) {
	c := newRespCache[int]()
	for i := 0; i < respCacheSize+10; i++ {
		c.put(uint32(i), i)
	}
	if c.len() != respCacheSize {
		t.Fatalf("cache holds %d entries", c.len())
	}
	if _, ok := c.get(0); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if v, ok := c.get(respCacheSize + 5); !ok || v != respCacheSize+5 {
		t.Fatal("recent entry missing")
	}
	// Re-putting an existing seq must not duplicate the FIFO entry.
	c.put(respCacheSize+5, 99)
	if v, _ := c.get(respCacheSize + 5); v != 99 {
		t.Fatal("overwrite lost")
	}
}
