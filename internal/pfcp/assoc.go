package pfcp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"l25gc/internal/metrics"
	"l25gc/internal/trace"
)

// AssocState is the PFCP association lifecycle state toward one peer.
type AssocState uint8

const (
	// AssocIdle: no AssociationSetup has succeeded yet; sessions must not
	// be established toward the peer.
	AssocIdle AssocState = iota
	// AssocUp: setup succeeded and heartbeats are being answered.
	AssocUp
	// AssocDown: the path failed (heartbeat miss threshold reached, peer
	// restart detected, or a probe setup failed). Established sessions
	// keep forwarding on the data plane; control procedures toward the
	// peer run in degraded mode until a fresh setup + reconcile succeeds.
	AssocDown
)

// String renders the state for logs/metrics attributes.
func (s AssocState) String() string {
	switch s {
	case AssocIdle:
		return "idle"
	case AssocUp:
		return "up"
	case AssocDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// AssocConfig parameterizes an Association. Zero values get defaults from
// DefaultAssocConfig.
type AssocConfig struct {
	// NodeID identifies this end in AssociationSetup (TS 29.244 Node ID).
	NodeID string
	// RecoveryTimestamp is this end's own recovery timestamp, advertised
	// in setup and heartbeat requests. A peer that sees it change knows
	// every session toward us is stale.
	RecoveryTimestamp uint32
	// HeartbeatInterval is the live-mode probe cadence for Start(). Zero
	// means no ticker goroutine: the owner drives Tick() explicitly
	// (deterministic chaos tests, supervised replay).
	HeartbeatInterval time.Duration
	// MissThreshold is the number of consecutive failed heartbeat
	// exchanges (each already carrying the endpoint's full T1/N1
	// retransmission budget) before the path is declared down. Default 2.
	MissThreshold int
	// OnDown fires once per Up→Down transition with the reason
	// ("heartbeat-timeout" or "peer-restart"). Used for the telemetry
	// flight-dump trigger and degraded-mode entry.
	OnDown func(reason string)
	// OnUp runs after a successful AssociationSetup exchange but BEFORE
	// the state flips to Up; peerRestarted reports whether the peer's
	// RecoveryTimestamp changed since we last saw it (its session table
	// is empty/stale). This is where the SMF reconciles: if OnUp returns
	// an error the association stays Down and the next Tick retries the
	// whole setup+reconcile, so a half-reconciled state is never
	// advertised as Up.
	OnUp func(peerRestarted bool) error
	// Clock supplies monotonic elapsed time for detect-latency
	// accounting; defaults to time.Since of construction time.
	Clock func() time.Duration
}

// DefaultAssocConfig fills zero fields.
func DefaultAssocConfig(c AssocConfig) AssocConfig {
	if c.NodeID == "" {
		c.NodeID = "smf.l25gc"
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 2
	}
	if c.Clock == nil {
		base := time.Now()
		c.Clock = func() time.Duration { return time.Since(base) }
	}
	return c
}

// Association is the requester-side PFCP association state machine: it
// owns setup, periodic heartbeats, miss-threshold path-down detection and
// peer-restart detection toward one peer over an Endpoint. All transport
// I/O rides the endpoint's existing T1/N1 retransmission machinery.
//
// Down→Up transitions happen ONLY through a fresh successful
// AssociationSetup (plus OnUp reconcile): a heartbeat response that
// arrives after the path was declared down must not flap the association
// back up, because the two ends may have diverged while partitioned.
type Association struct {
	ep  Endpoint
	cfg AssocConfig

	// tickBusy serializes Tick/Setup without holding a mutex across the
	// blocking Request call (a heartbeat can block for the full retry
	// budget; state readers must not wait behind it).
	tickBusy atomic.Bool

	mu            sync.Mutex
	state         AssocState
	peerNodeID    string
	peerTS        uint32
	peerRestarted bool // restart seen while down; consumed by next OnUp
	misses        int
	firstMissAt   time.Duration
	lastDownAt    time.Duration
	lastDetect    time.Duration // firstMiss→down latency of the last down

	tracec atomic.Pointer[trace.Track]

	heartbeatsOK   atomic.Uint64
	heartbeatsMiss atomic.Uint64
	downs          atomic.Uint64
	ups            atomic.Uint64
	restarts       atomic.Uint64
	setupFails     atomic.Uint64

	tickerMu   sync.Mutex
	tickerStop chan struct{}
	tickerDone chan struct{}
}

// NewAssociation wraps ep with an association state machine. The caller
// still owns ep (handler, retry profile, Close).
func NewAssociation(ep Endpoint, cfg AssocConfig) *Association {
	return &Association{ep: ep, cfg: DefaultAssocConfig(cfg)}
}

// SetTracer installs the track used for assoc transition events.
func (a *Association) SetTracer(tk *trace.Track) { a.tracec.Store(tk) }

// State returns the current association state.
func (a *Association) State() AssocState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// PeerNodeID returns the Node ID the peer advertised at last setup.
func (a *Association) PeerNodeID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peerNodeID
}

// Misses returns the current consecutive heartbeat-failure count (tests).
func (a *Association) Misses() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.misses
}

// LastDetectLatency reports first-miss→declared-down latency of the most
// recent down transition (zero if never down, or down was not miss-driven).
func (a *Association) LastDetectLatency() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastDetect
}

// AssocCounters is a point-in-time read of the lifetime counters, for
// callers that register gauges indirectly (supervised deployments spawn
// one Association per SMF generation but register metric names once).
type AssocCounters struct {
	HeartbeatOK, HeartbeatMiss, Downs, Ups, PeerRestarts, SetupFails uint64
}

// Counters reads the lifetime counters.
func (a *Association) Counters() AssocCounters {
	return AssocCounters{
		HeartbeatOK:   a.heartbeatsOK.Load(),
		HeartbeatMiss: a.heartbeatsMiss.Load(),
		Downs:         a.downs.Load(),
		Ups:           a.ups.Load(),
		PeerRestarts:  a.restarts.Load(),
		SetupFails:    a.setupFails.Load(),
	}
}

// ExportMetrics registers the pfcp.assoc.* gauge family.
func (a *Association) ExportMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterGauge(prefix+".state", func() uint64 { return uint64(a.State()) })
	reg.RegisterGauge(prefix+".heartbeat.ok", a.heartbeatsOK.Load)
	reg.RegisterGauge(prefix+".heartbeat.miss", a.heartbeatsMiss.Load)
	reg.RegisterGauge(prefix+".down.total", a.downs.Load)
	reg.RegisterGauge(prefix+".up.total", a.ups.Load)
	reg.RegisterGauge(prefix+".peer.restarts", a.restarts.Load)
	reg.RegisterGauge(prefix+".setup.fail", a.setupFails.Load)
}

// Tick advances the state machine one step: Up → one heartbeat exchange;
// Idle/Down → one setup (probe) attempt. Concurrent Ticks are coalesced —
// if one is already in flight the call is a no-op, so a slow heartbeat
// (burning its full retry budget) never stacks callers.
func (a *Association) Tick() {
	if !a.tickBusy.CompareAndSwap(false, true) {
		return
	}
	defer a.tickBusy.Store(false)
	switch a.State() {
	case AssocUp:
		a.heartbeat()
	default:
		a.setupLocked()
	}
}

// Setup drives an AssociationSetup exchange (plus OnUp reconcile) and, on
// success, flips the association Up. It shares the Tick coalescing guard;
// a concurrent Tick makes it return an in-progress error.
func (a *Association) Setup() error {
	if !a.tickBusy.CompareAndSwap(false, true) {
		return fmt.Errorf("pfcp: association setup already in progress")
	}
	defer a.tickBusy.Store(false)
	return a.setupLocked()
}

// setupLocked runs the setup exchange; callers hold the tickBusy guard.
func (a *Association) setupLocked() error {
	resp, err := a.ep.Request(0, false, &AssociationSetupRequest{
		NodeID:            a.cfg.NodeID,
		RecoveryTimestamp: a.cfg.RecoveryTimestamp,
	})
	if err != nil {
		a.setupFails.Add(1)
		return err
	}
	ar, ok := resp.(*AssociationSetupResponse)
	if !ok {
		a.setupFails.Add(1)
		return fmt.Errorf("pfcp: unexpected association setup response %T", resp)
	}
	if ar.Cause != CauseAccepted {
		a.setupFails.Add(1)
		return fmt.Errorf("pfcp: association setup rejected, cause %d", ar.Cause)
	}

	a.mu.Lock()
	restarted := a.peerRestarted ||
		(a.peerTS != 0 && ar.RecoveryTimestamp != a.peerTS)
	firstSetup := a.state == AssocIdle && a.peerTS == 0
	a.mu.Unlock()
	if firstSetup {
		restarted = false
	}

	// Reconcile BEFORE advertising Up: an OnUp error keeps the state Down
	// so a later Tick retries setup+reconcile from scratch.
	if a.cfg.OnUp != nil {
		if err := a.cfg.OnUp(restarted); err != nil {
			return fmt.Errorf("pfcp: association reconcile: %w", err)
		}
	}

	a.mu.Lock()
	wasDown := a.state != AssocUp
	a.state = AssocUp
	a.peerNodeID = ar.NodeID
	a.peerTS = ar.RecoveryTimestamp
	a.peerRestarted = false
	a.misses = 0
	a.firstMissAt = 0
	a.mu.Unlock()
	if wasDown {
		a.ups.Add(1)
		a.tracec.Load().Event("pfcp.assoc.up", "peer", ar.NodeID)
	}
	return nil
}

// heartbeat runs one heartbeat exchange and applies miss-threshold and
// peer-restart detection to the outcome.
func (a *Association) heartbeat() {
	resp, err := a.ep.Request(0, false, &HeartbeatRequest{
		RecoveryTimestamp: a.cfg.RecoveryTimestamp,
	})
	if err != nil {
		a.heartbeatsMiss.Add(1)
		a.mu.Lock()
		if a.state != AssocUp { // already down via another path
			a.mu.Unlock()
			return
		}
		a.misses++
		if a.misses == 1 {
			a.firstMissAt = a.cfg.Clock()
		}
		trip := a.misses >= a.cfg.MissThreshold
		a.mu.Unlock()
		if trip {
			a.markDown("heartbeat-timeout")
		}
		return
	}
	hr, ok := resp.(*HeartbeatResponse)
	if !ok {
		return
	}
	a.mu.Lock()
	if a.state != AssocUp {
		// A response landing after the path was declared down must not
		// flap the association back up — only a fresh setup+reconcile may.
		a.mu.Unlock()
		return
	}
	if a.peerTS != 0 && hr.RecoveryTimestamp != a.peerTS {
		a.peerRestarted = true
		a.mu.Unlock()
		a.restarts.Add(1)
		a.markDown("peer-restart")
		return
	}
	a.misses = 0
	a.firstMissAt = 0
	a.mu.Unlock()
	a.heartbeatsOK.Add(1)
}

// markDown performs the Up→Down transition (idempotent) and fires OnDown.
func (a *Association) markDown(reason string) {
	a.mu.Lock()
	if a.state == AssocDown {
		a.mu.Unlock()
		return
	}
	a.state = AssocDown
	now := a.cfg.Clock()
	a.lastDownAt = now
	if a.firstMissAt > 0 {
		a.lastDetect = now - a.firstMissAt
	} else {
		a.lastDetect = 0
	}
	a.misses = 0
	a.firstMissAt = 0
	a.mu.Unlock()
	a.downs.Add(1)
	a.tracec.Load().Event("pfcp.assoc.down", "reason", reason)
	if a.cfg.OnDown != nil {
		a.cfg.OnDown(reason)
	}
}

// MarkDown lets the owner force the association down (e.g. the SMF seeing
// a session-level request fail hard while heartbeats are still in flight).
func (a *Association) MarkDown(reason string) { a.markDown(reason) }

// AssocSnapshot is the deterministic serializable view of the association
// carried in the SMF resilience snapshot, so a standby promoted during a
// partition knows the path is down and which peer epoch it last saw.
type AssocSnapshot struct {
	State         uint8  `json:"state"`
	PeerNodeID    string `json:"peer_node_id,omitempty"`
	PeerTS        uint32 `json:"peer_ts,omitempty"`
	PeerRestarted bool   `json:"peer_restarted,omitempty"`
}

// Snapshot captures the replicable association state.
func (a *Association) Snapshot() AssocSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AssocSnapshot{
		State:         uint8(a.state),
		PeerNodeID:    a.peerNodeID,
		PeerTS:        a.peerTS,
		PeerRestarted: a.peerRestarted,
	}
}

// Restore installs a snapshot taken by Snapshot. Transient counters
// (misses, detect latencies) restart from zero on the new incarnation.
func (a *Association) Restore(s AssocSnapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state = AssocState(s.State)
	a.peerNodeID = s.PeerNodeID
	a.peerTS = s.PeerTS
	a.peerRestarted = s.PeerRestarted
	a.misses = 0
	a.firstMissAt = 0
}

// Start launches the live-mode ticker goroutine driving Tick every
// HeartbeatInterval. No-op if the interval is zero (manual Tick mode) or
// a ticker is already running. In a supervised deployment only the active
// SMF generation Starts its association; standbys stay in manual mode.
func (a *Association) Start() {
	if a.cfg.HeartbeatInterval <= 0 {
		return
	}
	a.tickerMu.Lock()
	defer a.tickerMu.Unlock()
	if a.tickerStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	a.tickerStop, a.tickerDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(a.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a.Tick()
			}
		}
	}()
}

// Stop halts the ticker goroutine (if running) and waits for it to exit.
// The association state itself is preserved; Start may be called again.
func (a *Association) Stop() {
	a.tickerMu.Lock()
	stop, done := a.tickerStop, a.tickerDone
	a.tickerStop, a.tickerDone = nil, nil
	a.tickerMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
