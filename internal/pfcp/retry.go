package pfcp

import (
	"sync"
	"time"
)

// RetryConfig is the N4 retransmission profile: 3GPP TS 29.244 governs
// PFCP request retransmission with a response timer T1 and a maximum
// retransmission count N1. free5GC ships T1=3s/N1=3; here both are
// configurable (chaos tests shrink T1 to tens of milliseconds) and T1
// grows by Backoff per retransmission up to MaxT1, so a congested peer is
// not hammered at a fixed cadence.
type RetryConfig struct {
	// T1 is the initial response wait before the first retransmission.
	T1 time.Duration
	// N1 is the number of retransmissions after the initial send (so a
	// request is transmitted at most N1+1 times).
	N1 int
	// Backoff multiplies T1 after every retransmission (values < 1 are
	// treated as 1: constant timer, the strict 3GPP behaviour).
	Backoff float64
	// MaxT1 caps the grown timer (0 = uncapped).
	MaxT1 time.Duration
}

// DefaultRetry mirrors the free5GC/3GPP defaults, with a 2x backoff cap.
func DefaultRetry() RetryConfig {
	return RetryConfig{T1: DefaultTimeout, N1: 3, Backoff: 2, MaxT1: 12 * time.Second}
}

// norm fills zero fields with defaults so a partially-set config works.
func (c RetryConfig) norm() RetryConfig {
	d := DefaultRetry()
	if c.T1 <= 0 {
		c.T1 = d.T1
	}
	if c.N1 < 0 {
		c.N1 = 0
	}
	if c.Backoff < 1 {
		c.Backoff = 1
	}
	return c
}

// next grows t1 by the backoff factor, clamped to MaxT1.
func (c RetryConfig) next(t1 time.Duration) time.Duration {
	t1 = time.Duration(float64(t1) * c.Backoff)
	if c.MaxT1 > 0 && t1 > c.MaxT1 {
		t1 = c.MaxT1
	}
	return t1
}

// respCacheSize bounds the responder-side dedup cache.
const respCacheSize = 512

// respCache is the responder half of reliable PFCP: retransmitted requests
// (same sequence number) are answered from the cache instead of re-running
// the handler, which keeps non-idempotent handlers (session establishment)
// correct when only the response was lost. Entries age out FIFO.
type respCache[T any] struct {
	mu    sync.Mutex
	bySeq map[uint32]T
	fifo  []uint32
}

func newRespCache[T any]() *respCache[T] {
	return &respCache[T]{bySeq: make(map[uint32]T)}
}

// get returns the cached response for seq, if any.
func (c *respCache[T]) get(seq uint32) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.bySeq[seq]
	return v, ok
}

// put remembers the response sent for seq.
func (c *respCache[T]) put(seq uint32, v T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.bySeq[seq]; !ok {
		c.fifo = append(c.fifo, seq)
		if len(c.fifo) > respCacheSize {
			delete(c.bySeq, c.fifo[0])
			c.fifo = c.fifo[1:]
		}
	}
	c.bySeq[seq] = v
}

// len reports the number of cached responses (tests).
func (c *respCache[T]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bySeq)
}
